(* pak — command-line front end.

   Subcommands:
     list                      enumerate built-in systems
     analyze  <system>         run the full constraint analysis of a system
     eval     <system> <phi>   model-check a formula on a system
     theorems <system>         run every theorem checker on the system's
                               canonical (fact, action) pair
     dot      <system>         emit the pps as graphviz
     load     <file>           load a serialized pps document
     explain  <file>           certify a formula on a loaded system: emit a
                               self-checked witness certificate (--json for
                               machine-readable output)
     random   <seed>           generate a random pps and verify the paper's
                               theorems on it
     sweep                     check a paper result over a family of random
                               systems, optionally across domains (--jobs);
                               --certify re-verifies every verdict through
                               the certificate checker

   Systems take parameters via --loss, --p, --eps, --rounds, ... where
   meaningful; probabilities parse as rationals ("1/10") or decimals
   ("0.1").

   Exit codes (kept stable; checked in CI):
     0  success
     1  the analyzed constraint is violated, or a sweep found a
        violating system
     2  command-line usage error
     3  invalid input (unknown system, unparsable formula or document,
        unreadable file)
     4  a resource budget (--max-*, --timeout-ms) was exceeded *)

open Pak
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Built-in systems registry                                           *)
(* ------------------------------------------------------------------ *)

type instance = {
  tree : Tree.t;
  fact : Fact.t;          (* the canonical condition ϕ *)
  agent : int;
  act : string;
  threshold : Q.t;        (* the canonical constraint threshold *)
  description : string;
  valuation : Semantics.valuation;
}

let q_conv =
  let parse s =
    match Q.of_string s with
    | v when Q.is_probability v -> Ok v
    | _ -> Error (`Msg (Printf.sprintf "%S is not a probability" s))
    | exception _ -> Error (`Msg (Printf.sprintf "cannot parse %S as a rational" s))
  in
  Arg.conv (parse, fun fmt v -> Format.pp_print_string fmt (Q.to_string v))

type params = {
  loss : Q.t;
  p_go : Q.t;
  p : Q.t;
  eps : Q.t;
  rounds : int;
  convict_at : int;
  err : Q.t;
}

(* Generic atoms: "a<i>_<label>" tests agent i's label. Shared with
   the library so [Cert.check] callers can re-verify CLI-produced
   certificates under the identical valuation. *)
let default_valuation = Semantics.generic_valuation

let systems : (string * (params -> instance)) list =
  [ ( "firing-squad",
      fun prm ->
        let t = Systems.Firing_squad.tree ~loss:prm.loss ~p_go:prm.p_go Systems.Firing_squad.Original in
        { tree = t;
          fact = Systems.Firing_squad.phi_both t;
          agent = Systems.Firing_squad.alice;
          act = Systems.Firing_squad.fire;
          threshold = Q.of_ints 19 20;
          description = "Example 1: relaxed firing squad (original FS protocol)";
          valuation = default_valuation
        } );
    ( "firing-squad-improved",
      fun prm ->
        let t = Systems.Firing_squad.tree ~loss:prm.loss ~p_go:prm.p_go Systems.Firing_squad.Improved in
        { tree = t;
          fact = Systems.Firing_squad.phi_both t;
          agent = Systems.Firing_squad.alice;
          act = Systems.Firing_squad.fire;
          threshold = Q.of_ints 19 20;
          description = "Section 8: FS where Alice refrains from firing on 'No'";
          valuation = default_valuation
        } );
    ( "figure-one",
      fun prm ->
        let t = Systems.Figure_one.tree ~p_alpha:prm.p () in
        { tree = t;
          fact = Systems.Figure_one.psi t;
          agent = Systems.Figure_one.agent;
          act = Systems.Figure_one.alpha;
          threshold = Q.half;
          description = "Figure 1: one-agent mixed-action counterexample";
          valuation = default_valuation
        } );
    ( "threshold-gap",
      fun prm ->
        let t = Systems.Threshold_gap.tree ~p:prm.p ~eps:prm.eps in
        { tree = t;
          fact = Systems.Threshold_gap.phi t;
          agent = Systems.Threshold_gap.i;
          act = Systems.Threshold_gap.alpha;
          threshold = prm.p;
          description = "Figure 2 / Theorem 5.2: the T-hat(p, eps) construction";
          valuation = default_valuation
        } );
    ( "coordinated-attack",
      fun prm ->
        let t = Systems.Coordinated_attack.tree ~loss:prm.loss ~p_go:prm.p_go ~rounds:prm.rounds () in
        { tree = t;
          fact = Systems.Coordinated_attack.phi_both t;
          agent = Systems.Coordinated_attack.general_a;
          act = Systems.Coordinated_attack.attack;
          threshold = Q.of_ints 19 20;
          description = "k-round coordinated attack over a lossy channel";
          valuation = default_valuation
        } );
    ( "mutex",
      fun prm ->
        let t = Systems.Mutex.tree ~p_req:prm.p ~err:prm.err () in
        { tree = t;
          fact = Systems.Mutex.phi_alone t ~agent:0;
          agent = 0;
          act = Systems.Mutex.enter;
          threshold = Q.of_ints 19 20;
          description = "relaxed mutual exclusion with a noisy arbiter";
          valuation = default_valuation
        } );
    ( "judge",
      fun prm ->
        let t = Systems.Judge.tree ~rounds:prm.rounds ~convict_at:prm.convict_at () in
        { tree = t;
          fact = Systems.Judge.guilty_fact t;
          agent = Systems.Judge.judge;
          act = Systems.Judge.convict;
          threshold = Q.of_ints 99 100;
          description = "conviction under noisy evidence (beyond reasonable doubt)";
          valuation = default_valuation
        } );
    ( "consensus",
      fun prm ->
        let t = Systems.Consensus.tree ~loss:prm.loss ~rounds:prm.rounds () in
        { tree = t;
          fact = Systems.Consensus.agreement t;
          agent = 0;
          act = Systems.Consensus.decide_act 1;
          threshold = Q.of_ints 19 20;
          description = "bounded randomized agreement over a lossy channel";
          valuation = default_valuation
        } );
    ( "aloha",
      fun prm ->
        let t = Systems.Aloha.tree ~p_tx:prm.p ~n:2 ~slots:prm.rounds () in
        { tree = t;
          fact = Systems.Aloha.phi_free t ~agent:0 ~slot:0;
          agent = 0;
          act = Systems.Aloha.tx ~slot:0;
          threshold = Q.half;
          description = "slotted ALOHA random access (2 agents)";
          valuation = default_valuation
        } );
    ( "interactive-proof",
      fun prm ->
        let t = Systems.Interactive_proof.tree ~p_true:prm.p ~rounds:prm.rounds () in
        { tree = t;
          fact = Systems.Interactive_proof.true_fact t;
          agent = Systems.Interactive_proof.verifier;
          act = Systems.Interactive_proof.accept;
          threshold = Q.of_ints 3 4;
          description = "soundness amplification as a probabilistic constraint";
          valuation = default_valuation
        } )
  ]

let find_system name prm =
  match List.assoc_opt name systems with
  | Some f -> Ok (f prm)
  | None ->
    Error
      (Printf.sprintf "unknown system %S; try: %s" name
         (String.concat ", " (List.map fst systems)))

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let loss_t =
  Arg.(value & opt q_conv (Q.of_ints 1 10) & info [ "loss" ] ~doc:"Message loss probability.")
and p_go_t =
  Arg.(value & opt q_conv Q.half & info [ "p-go" ] ~doc:"Probability that go = 1.")
and p_t = Arg.(value & opt q_conv Q.half & info [ "p" ] ~doc:"Main probability parameter.")
and eps_t =
  Arg.(value & opt q_conv (Q.of_ints 1 10) & info [ "eps" ] ~doc:"Epsilon parameter.")
and rounds_t = Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"Number of rounds.")
and convict_at_t = Arg.(value & opt int 2 & info [ "convict-at" ] ~doc:"Conviction bar.")
and err_t =
  Arg.(value & opt q_conv (Q.of_ints 1 100) & info [ "err" ] ~doc:"Arbiter error probability.")

let params_t =
  let mk loss p_go p eps rounds convict_at err = { loss; p_go; p; eps; rounds; convict_at; err } in
  Term.(const mk $ loss_t $ p_go_t $ p_t $ eps_t $ rounds_t $ convict_at_t $ err_t)

let system_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM" ~doc:"Built-in system name.")

let exit_of_error (e : Error.t) =
  match e.Error.kind with
  | Error.Budget_exceeded -> 4
  | Error.Parse | Error.Invalid_system | Error.Io -> 3

let fail_error e =
  Format.eprintf "pak: %a@." Error.pp e;
  exit_of_error e

(* Commands return their exit code; [Error msg] is invalid input. *)
let handle f = match f () with Ok code -> code | Error msg -> prerr_endline ("pak: " ^ msg); 3

(* Observability options, shared by every subcommand. The term's value
   is (), evaluated for its effect: configuring the pak_obs sinks
   before the command body runs. *)
let obs_t =
  let metrics_t =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Collect counters and span timings, and print a summary table to \
                   stderr on exit.")
  and trace_t =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record a Chrome trace_event-format JSON file, loadable in \
                   about:tracing or Perfetto. Implies metric collection.")
  and metrics_json_t =
    Arg.(value & opt (some string) None
         & info [ "metrics-json" ] ~docv:"FILE"
             ~doc:"Write a versioned machine-readable metrics snapshot (counters, \
                   gauges, latency histograms, span tree) to $(docv) on exit. Implies \
                   metric collection; compare snapshots with tools/bench_diff.exe.")
  and no_alloc_t =
    Arg.(value & flag
         & info [ "no-alloc" ]
             ~doc:"Skip per-span allocation attribution (the GC counter reads at every \
                   span boundary). Timings, counters and the span-tree shape are \
                   unaffected; allocated-words columns read as zero. The gc.* gauges \
                   keep reporting.")
  and gc_sample_t =
    Arg.(value & opt int 32
         & info [ "gc-sample-every" ] ~docv:"N"
             ~doc:"Sample the gc.* gauges every $(docv)-th span exit (default 32; the \
                   very first span exit always samples, so short runs still report). \
                   Lower values sharpen gc.* time-series resolution at the cost of \
                   more GC counter reads.")
  in
  let setup metrics trace metrics_json no_alloc gc_sample =
    if no_alloc then Obs.set_track_allocations false;
    (if gc_sample < 1 then begin
       prerr_endline "pak: --gc-sample-every must be >= 1";
       exit 2
     end
     else Obs.set_gauge_sample_interval gc_sample);
    (match trace with
     | None -> ()
     | Some file ->
       (try Obs.trace_to file
        with Sys_error msg ->
          Printf.eprintf "pak: cannot open trace file: %s\n" msg;
          exit 1);
       at_exit Obs.trace_stop);
    (match metrics_json with
     | None -> ()
     | Some file ->
       Obs.enable ();
       at_exit (fun () ->
           try Obs.Snapshot.write file (Obs.Snapshot.capture ())
           with Sys_error msg -> Printf.eprintf "pak: cannot write metrics snapshot: %s\n" msg));
    if metrics then begin
      Obs.enable ();
      at_exit (fun () -> Obs.print_summary stderr)
    end
  in
  Term.(const setup $ metrics_t $ trace_t $ metrics_json_t $ no_alloc_t $ gc_sample_t)

(* Resource-budget options, shared by every subcommand. Like [obs_t]
   the term's value is (), evaluated for its effect: installing the
   process-global budget before the command body runs. Exhaustion
   anywhere surfaces as exit code 4. *)
let guard_t =
  let max_points_t =
    Arg.(value & opt (some int) None
         & info [ "max-points" ] ~docv:"N"
             ~doc:"Abort (exit 4) after visiting $(docv) tree points across sweeps and \
                   measure queries.")
  and max_nodes_t =
    Arg.(value & opt (some int) None
         & info [ "max-nodes" ] ~docv:"N"
             ~doc:"Abort (exit 4) after constructing $(docv) tree nodes (bounds system \
                   compilation and document loading).")
  and max_limbs_t =
    Arg.(value & opt (some int) None
         & info [ "max-limbs" ] ~docv:"N"
             ~doc:"Abort (exit 4) after $(docv) big-number limb operations (bounds exact \
                   rational blowups).")
  and max_iters_t =
    Arg.(value & opt (some int) None
         & info [ "max-iters" ] ~docv:"N"
             ~doc:"Abort (exit 4) after $(docv) fixpoint iterations (bounds the common \
                   knowledge / common belief computations).")
  and timeout_t =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Abort (exit 4) after $(docv) milliseconds of wall-clock time \
                   (jobs-invariant).")
  in
  let setup max_points max_nodes max_limbs max_iters timeout_ms =
    let lim = { Budget.max_points; max_nodes; max_limbs; max_iters; timeout_ms } in
    if not (Budget.is_unlimited lim) then Budget.install lim
  in
  Term.(const setup $ max_points_t $ max_nodes_t $ max_limbs_t $ max_iters_t $ timeout_t)

(* Parallelism option, shared by every subcommand. Effectful like
   [obs_t]/[guard_t]: records the requested domain count in a ref that
   command bodies consult through [with_jobs_pool]. Every parallel
   code path is deterministic in the job count, so --jobs only changes
   wall time, never output. *)
let jobs_ref = ref 1

let jobs_t =
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Number of domains used by parallel subcommands ($(b,sweep), \
                   $(b,simulate)). 0 selects the machine's recommended domain count. \
                   Output is identical for every value.")
  in
  let setup jobs =
    jobs_ref := (if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs)
  in
  Term.(const setup $ jobs_arg)

let with_jobs_pool f =
  match !jobs_ref with
  | jobs when jobs <= 1 -> f None
  | jobs -> Pool.with_pool ~jobs (fun pool -> f (Some pool))

(* Evaluation-engine option, shared by every subcommand. Effectful like
   [obs_t]/[guard_t]: records the process-wide engine that
   [Semantics.eval_auto] dispatches on. The engines are equivalent
   (same verdicts, satisfying points and fixpoint iteration counts —
   the cross-engine oracle in test/test_logic.ml), so --engine only
   changes the cost profile, never output. *)
let engine_t =
  let engine_conv =
    Arg.enum [ ("recursive", Semantics.Recursive); ("vectorized", Semantics.Vectorized) ]
  in
  let engine_arg =
    Arg.(value & opt engine_conv Semantics.Vectorized
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Formula-evaluation engine: $(b,vectorized) (subformula closure + \
                   packed truth vectors, the default) or $(b,recursive) (structural \
                   recursion with a formula-keyed memo). The engines compute identical \
                   results; see doc/EVALUATION.md.")
  in
  Term.(const Semantics.set_engine $ engine_arg)

let common_t = Term.(const (fun () () () () -> ()) $ obs_t $ guard_t $ jobs_t $ engine_t)

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () () =
    List.iter
      (fun (name, f) ->
        let prm =
          { loss = Q.of_ints 1 10; p_go = Q.half; p = Q.half; eps = Q.of_ints 1 10;
            rounds = 2; convict_at = 2; err = Q.of_ints 1 100 }
        in
        let inst = f prm in
        Printf.printf "%-24s %-60s (%d runs at defaults)\n" name inst.description
          (Tree.n_runs inst.tree))
      systems;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in systems") Term.(const run $ common_t $ const ())

let analyze_cmd =
  let run () name prm =
    handle (fun () ->
        Result.map
          (fun inst ->
            Printf.printf "%s — %s\n" name inst.description;
            Printf.printf "pps: %d nodes, %d runs, %d points\n\n" (Tree.n_nodes inst.tree)
              (Tree.n_runs inst.tree) (Tree.n_points inst.tree);
            let c =
              Constr.make ~agent:inst.agent ~act:inst.act ~fact:inst.fact
                ~threshold:inst.threshold
            in
            (* The constraint verdict degrades to a marked Monte-Carlo
               estimate under budget pressure; the theorem chain has no
               estimated counterpart, so it is attempted and skipped. *)
            let graded = Constr.report_graded c in
            Format.printf "%a@." Constr.pp_report_graded graded;
            (match
               Budget.attempt (fun () ->
                   let fact = inst.fact and agent = inst.agent and act = inst.act in
                   Format.printf "%a@.%a@.%a@.%a@.%a@."
                     Theorems.pp_expectation (Theorems.expectation_identity fact ~agent ~act)
                     Theorems.pp_sufficiency
                     (Theorems.sufficiency fact ~agent ~act ~p:inst.threshold)
                     Theorems.pp_necessity
                     (Theorems.necessity_exists fact ~agent ~act ~p:inst.threshold)
                     Theorems.pp_lemma43 (Theorems.lemma43 fact ~agent ~act)
                     Theorems.pp_kop (Theorems.kop fact ~agent ~act))
             with
             | Ok () -> ()
             | Error e -> Format.printf "theorem checks skipped: %a@." Error.pp e);
            if (Graded.value graded).Constr.satisfied then 0 else 1)
          (find_system name prm))
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze a system's canonical probabilistic constraint")
    Term.(const run $ common_t $ system_arg $ params_t)

let theorems_cmd =
  let certify_t =
    Arg.(value & flag
         & info [ "certify" ]
             ~doc:"For every theorem, also build a witness certificate (the Lemma B.1 \
                   cell decomposition with exact rational weights and belief degrees) \
                   and re-verify it with the independent checker; print each \
                   certificate and exit 1 if any is rejected.")
  in
  let run () name prm certify =
    handle (fun () ->
        Result.map
          (fun inst ->
            let fact = inst.fact and agent = inst.agent and act = inst.act in
            Format.printf "%a@.%a@.%a@.%a@.%a@.%a@."
              Theorems.pp_expectation (Theorems.expectation_identity fact ~agent ~act)
              Theorems.pp_sufficiency (Theorems.sufficiency fact ~agent ~act ~p:inst.threshold)
              Theorems.pp_lemma43 (Theorems.lemma43 fact ~agent ~act)
              Theorems.pp_necessity (Theorems.necessity_exists fact ~agent ~act ~p:inst.threshold)
              Theorems.pp_pak (Theorems.pak_corollary fact ~agent ~act ~eps:prm.eps)
              Theorems.pp_kop (Theorems.kop fact ~agent ~act);
            if not certify then 0
            else
              List.fold_left
                (fun code check ->
                  let tc =
                    Cert.Theorem.certify fact ~check ~agent ~act ~p:inst.threshold
                      ~eps:prm.eps ()
                  in
                  Format.printf "%a" Cert.Theorem.pp tc;
                  match Cert.Theorem.check inst.tree ~fact tc with
                  | Ok () ->
                    Format.printf "  independently verified@.";
                    code
                  | Result.Error v ->
                    Format.printf "  REJECTED: %a@." Cert.pp_violation v;
                    1)
                0 Sweep.all_checks)
          (find_system name prm))
  in
  Cmd.v
    (Cmd.info "theorems" ~doc:"Run every theorem checker on a system")
    Term.(const run $ common_t $ system_arg $ params_t $ certify_t)

let eval_cmd =
  let formula_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FORMULA" ~doc:"Formula text.")
  in
  let run () name text prm =
    handle (fun () ->
        Result.bind (find_system name prm) (fun inst ->
            match Parser.parse_result text with
            | Result.Error e -> Error (Error.to_string e)
            | Ok f ->
              (* One evaluation through the selected engine; validity,
                 the point count and the time-0 probability are all
                 derived from the single resulting fact. *)
              let fact =
                with_jobs_pool (fun pool ->
                    Semantics.eval_auto ?pool inst.tree ~valuation:inst.valuation f)
              in
              let sat_points =
                Tree.fold_points inst.tree ~init:0 ~f:(fun acc ~run ~time ->
                    if Fact.holds fact ~run ~time then acc + 1 else acc)
              in
              let ev = ref (Tree.empty_event inst.tree) in
              for run = 0 to Tree.n_runs inst.tree - 1 do
                if Fact.holds fact ~run ~time:0 then ev := Bitset.add !ev run
              done;
              Printf.printf "formula : %s\n" (Formula.to_string f);
              Printf.printf "valid   : %b\n" (sat_points = Tree.n_points inst.tree);
              Printf.printf "points  : %d of %d satisfy\n" sat_points (Tree.n_points inst.tree);
              Printf.printf "P(time-0): %s\n" (Q.to_string (Tree.measure inst.tree !ev));
              Ok 0))
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Model-check a formula on a system"
       ~man:
         [ `S Manpage.s_description;
           `P "Atoms of the form a0_LABEL hold when agent 0's local label is LABEL \
               (similarly a1_..., for every agent index of the system)."
         ])
    Term.(const run $ common_t $ system_arg $ formula_arg $ params_t)

let profile_cmd =
  let formula_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FORMULA" ~doc:"Formula text.")
  in
  let tree_arg =
    Arg.(value & flag
         & info [ "tree" ]
             ~doc:"Also print the hierarchical span tree (calls, inclusive and self \
                   time and allocated words per span path).")
  in
  let alloc_arg =
    Arg.(value & flag
         & info [ "alloc" ]
             ~doc:"Also print the allocation profile: span paths ranked by \
                   self-allocated words, with the fraction of the process's minor \
                   words the span tree accounts for.")
  in
  let openmetrics_arg =
    Arg.(value & flag
         & info [ "openmetrics" ]
             ~doc:"Instead of the human-readable tables, print the metrics snapshot \
                   as Prometheus/OpenMetrics exposition text (counters, gauges, \
                   histogram buckets with $(i,le) labels) on stdout, ready for a \
                   scrape endpoint or promtool.")
  in
  let flame_arg =
    Arg.(value & flag
         & info [ "flame" ]
             ~doc:"Instead of the human-readable tables, print the span tree in \
                   collapsed-stack format (one $(i,path;to;span weight) line per \
                   span path) on stdout, ready for flamegraph.pl or speedscope.")
  in
  let weight_arg =
    let weight_conv = Arg.enum [ ("time", Obs.Flame_time); ("alloc", Obs.Flame_alloc) ] in
    Arg.(value & opt weight_conv Obs.Flame_time
         & info [ "weight" ] ~docv:"KIND"
             ~doc:"Collapsed-stack weight for $(b,--flame): $(b,time) (self \
                   nanoseconds, the default) or $(b,alloc) (self allocated words).")
  in
  let run () name text prm show_tree show_alloc openmetrics flame weight =
    handle (fun () ->
        if openmetrics && flame then
          Error "--openmetrics and --flame are mutually exclusive"
        else
        Result.bind (find_system name prm) (fun inst ->
            match Parser.parse_result text with
            | Result.Error e -> Error (Error.to_string e)
            | Ok f ->
              Obs.enable ();
              Obs.reset ();
              let t0 = Sys.time () in
              let fact =
                with_jobs_pool (fun pool ->
                    Semantics.eval_auto ?pool inst.tree ~valuation:inst.valuation f)
              in
              let eval_ms = (Sys.time () -. t0) *. 1000. in
              if openmetrics then begin
                (* Machine-readable mode: exposition text only, pipeable. *)
                print_string (Obs.Openmetrics.render (Obs.Snapshot.capture ()));
                Ok 0
              end
              else if flame then begin
                print_string (Obs.flamegraph ~weight ());
                Ok 0
              end
              else begin
                let sat_points =
                  Tree.fold_points inst.tree ~init:0 ~f:(fun acc ~run ~time ->
                      if Fact.holds fact ~run ~time then acc + 1 else acc)
                in
                Printf.printf "%s — %s\n" name inst.description;
                Printf.printf "pps     : %d nodes, %d runs, %d points\n"
                  (Tree.n_nodes inst.tree) (Tree.n_runs inst.tree) (Tree.n_points inst.tree);
                Printf.printf "formula : %s\n" (Formula.to_string f);
                Printf.printf "points  : %d of %d satisfy\n" sat_points (Tree.n_points inst.tree);
                Printf.printf "eval    : %.3f ms\n\n" eval_ms;
                Obs.print_summary stdout;
                if show_tree then begin
                  print_newline ();
                  Obs.print_span_tree stdout
                end;
                if show_alloc then begin
                  print_newline ();
                  Obs.print_alloc_report stdout
                end;
                Ok 0
              end))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Model-check a formula with full metric collection and print the counter \
             and span tables"
       ~man:
         [ `S Manpage.s_description;
           `P "Evaluates FORMULA on SYSTEM with every pak_obs counter and span timer \
               enabled, then prints the metrics table: memoization hits and misses, \
               fixpoint iteration counts, tree points visited, measure calls, bitset \
               set operations, and per-operator evaluation spans. Combine with \
               $(b,--tree) for the hierarchical span tree, $(b,--alloc) for the \
               top-allocating-spans report, or with $(b,--trace) to also record a \
               Chrome trace-event file.";
           `P "Machine-readable modes: $(b,--openmetrics) renders the snapshot as \
               Prometheus/OpenMetrics exposition text, $(b,--flame) renders the span \
               tree as collapsed stacks for flamegraph.pl/speedscope (weighted by \
               $(b,--weight) time or alloc). Both print only their format on stdout."
         ])
    Term.(const run $ common_t $ system_arg $ formula_arg $ params_t $ tree_arg $ alloc_arg
          $ openmetrics_arg $ flame_arg $ weight_arg)

let dot_cmd =
  let run () name prm =
    handle (fun () ->
        Result.map (fun inst -> print_string (Tree.to_dot inst.tree); 0) (find_system name prm))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a system's pps as graphviz")
    Term.(const run $ common_t $ system_arg $ params_t)

let dump_cmd =
  let run () name prm =
    handle (fun () ->
        Result.map
          (fun inst -> print_string (Tree_io.to_string inst.tree); 0)
          (find_system name prm))
  in
  Cmd.v
    (Cmd.info "dump" ~doc:"Serialize a system's pps as an s-expression document")
    Term.(const run $ common_t $ system_arg $ params_t)

let simulate_cmd =
  let samples_t =
    Arg.(value & opt int 10_000 & info [ "samples" ] ~doc:"Number of sampled runs.")
  in
  let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Sampling seed.") in
  let run () name samples seed prm =
    handle (fun () ->
        Result.map
          (fun inst ->
            let tree = inst.tree in
            let given = Action.runs_performing tree ~agent:inst.agent ~act:inst.act in
            let event = Fact.at_action inst.fact ~agent:inst.agent ~act:inst.act in
            let exact = Tree.cond tree event ~given in
            Printf.printf "exact      µ(ϕ@α | α) = %s (%s)\n" (Q.to_string exact)
              (Q.to_decimal_string exact);
            (match
               with_jobs_pool (fun pool ->
                   Simulate.estimate_cond_par ?pool tree ~event ~given ~samples ~seed)
             with
             | Some est ->
               Printf.printf "simulated  µ(ϕ@α | α) = %s (%s) from %d samples\n"
                 (Q.to_string est) (Q.to_decimal_string est) samples;
               Printf.printf "binomial standard error ≈ %.5f\n"
                 (Simulate.standard_error ~p:exact ~samples)
             | None -> print_endline "no sample performed the action");
            0)
          (find_system name prm))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte-Carlo estimate of a system's constraint vs the exact value")
    Term.(const run $ common_t $ system_arg $ samples_t $ seed_t $ params_t)

let sweep_cmd =
  let check_t =
    Arg.(value & opt string "all"
         & info [ "check" ] ~docv:"CHECK"
             ~doc:"Which paper result to sweep: $(b,all) or one of $(b,thm62), \
                   $(b,thm42), $(b,lemma43), $(b,lemma51), $(b,cor72), $(b,kop).")
  and count_t =
    Arg.(value & opt int 100
         & info [ "count" ] ~docv:"N" ~doc:"Number of random systems per check.")
  and first_seed_t =
    Arg.(value & opt int 1
         & info [ "first-seed" ] ~docv:"SEED"
             ~doc:"Seed of the first system; the sweep covers $(docv) .. $(docv)+N-1.")
  and depth_t =
    Arg.(value & opt int Gen.default_params.Gen.depth
         & info [ "depth" ] ~docv:"D" ~doc:"Run length of the generated systems.")
  and certify_t =
    Arg.(value & flag
         & info [ "certify" ]
             ~doc:"Instead of bare verdicts, build a witness certificate for every \
                   checked system and re-verify each with the independent checker; a \
                   rejected certificate fails the sweep like a violated theorem.")
  in
  let run () check count first_seed depth eps certify =
    handle (fun () ->
        let sel =
          if check = "all" then Ok None
          else
            match Sweep.of_name check with
            | Some c -> Ok (Some c)
            | None ->
              Error
                (Printf.sprintf "unknown check %S; try: all, %s" check
                   (String.concat ", " (List.map Sweep.check_name Sweep.all_checks)))
        in
        Result.map
          (fun sel ->
            let params = { Gen.default_params with Gen.depth = depth } in
            let checks =
              match sel with None -> Sweep.all_checks | Some c -> [ c ]
            in
            if certify then begin
              let reports =
                with_jobs_pool (fun pool ->
                    List.map
                      (fun c -> Cert.certify_sweep ?pool ~params ~eps c ~first_seed ~count)
                      checks)
              in
              List.iter (fun r -> Format.printf "%a@." Cert.pp_sweep_report r) reports;
              if List.for_all Cert.sweep_passed reports then 0 else 1
            end
            else begin
              let reports =
                with_jobs_pool (fun pool ->
                    List.map (fun c -> Sweep.run ?pool ~params ~eps c ~first_seed ~count) checks)
              in
              List.iter (fun r -> Format.printf "%a@." Sweep.pp_report r) reports;
              if List.for_all Sweep.passed reports then 0 else 1
            end)
          sel)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Check the paper's theorems over a family of random systems, in parallel"
       ~man:
         [ `S Manpage.s_description;
           `P "Generates protocol-consistent random systems from contiguous seeds and \
               runs the selected theorem checker on each (with a past-based fact and a \
               proper action derived from the same seed). With $(b,--jobs) the seeds \
               are checked across several domains; the report is byte-identical for \
               every job count, and any installed resource budget ($(b,--max-points), \
               ...) is shared by all domains rather than multiplied by them. Exits 1 \
               if any system violates a checked result."
         ])
    Term.(const run $ common_t $ check_t $ count_t $ first_seed_t $ depth_t $ eps_t
          $ certify_t)

let axioms_cmd =
  let run () name prm =
    handle (fun () ->
        Result.map
          (fun inst ->
            let base = Formula.Atom "a0_x" in
            List.iter
              (fun agent ->
                Printf.printf "agent %d:\n" agent;
                List.iter
                  (fun r -> Format.printf "  %a@." Axioms.pp_report r)
                  (Axioms.all inst.tree ~valuation:inst.valuation ~agent ~base))
              (List.init (Tree.n_agents inst.tree) Fun.id);
            0)
          (find_system name prm))
  in
  Cmd.v
    (Cmd.info "axioms" ~doc:"Check the S5/KD45/graded-coherence axioms on a system")
    Term.(const run $ common_t $ system_arg $ params_t)

let frontier_cmd =
  let run () name prm =
    handle (fun () ->
        Result.map
          (fun inst ->
            Printf.printf
              "belief-threshold policy frontier for (agent %d, %s) — Section 8:\n"
              inst.agent inst.act;
            Printf.printf "%-14s %-22s %-16s\n" "threshold" "µ(ϕ@α | α)" "µ(still acts)";
            List.iter
              (fun (thr, mu, mass) ->
                Printf.printf "%-14s %-22s %-16s\n" (Q.to_string thr)
                  (Q.to_decimal_string mu) (Q.to_string mass))
              (Policy.frontier inst.fact ~agent:inst.agent ~act:inst.act);
            Printf.printf "best achievable: %s\n"
              (Q.to_decimal_string (Policy.best inst.fact ~agent:inst.agent ~act:inst.act));
            0)
          (find_system name prm))
  in
  Cmd.v
    (Cmd.info "frontier" ~doc:"Belief-threshold policy-improvement frontier (Section 8)")
    Term.(const run $ common_t $ system_arg $ params_t)

let appendix_cmd =
  let run () name prm =
    handle (fun () ->
        Result.map
          (fun inst ->
            Format.printf "%a@." Appendix.pp_thm62
              (Appendix.theorem62 inst.fact ~agent:inst.agent ~act:inst.act);
            Printf.printf "\nLemma B.1 rows:\n";
            List.iter
              (fun row ->
                Format.printf "  %a: µ(ϕ@α|α@ℓ) = %s, µ(ϕ@ℓ|ℓ) = %s, equal = %b@."
                  Tree.pp_lkey row.Appendix.lstate
                  (Q.to_string row.Appendix.lhs)
                  (Q.to_string row.Appendix.rhs) row.Appendix.equal)
              (Appendix.lemma_b1 inst.fact ~agent:inst.agent ~act:inst.act);
            0)
          (find_system name prm))
  in
  Cmd.v
    (Cmd.info "appendix" ~doc:"Evaluate the paper's Appendix D proof chain on a system")
    Term.(const run $ common_t $ system_arg $ params_t)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Result.Error (Error.make Error.Io msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | doc -> Ok doc
        | exception Sys_error msg -> Result.Error (Error.make Error.Io msg))

let load_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"A pps document (see $(b,pak dump)).")
  in
  let formula_t =
    Arg.(value & opt (some string) None
         & info [ "formula" ] ~docv:"FORMULA"
             ~doc:"Also model-check $(docv) on the loaded system.")
  in
  let run () file formula_text =
    let ( let* ) r f =
      match r with
      | Result.Error e -> fail_error (Error.with_context "pak load" e)
      | Ok v -> f v
    in
    let* doc = read_file file in
    let* tree = Tree_io.of_string_result doc in
    Printf.printf "%s: %d agents, %d nodes, %d runs, %d points\n" file (Tree.n_agents tree)
      (Tree.n_nodes tree) (Tree.n_runs tree) (Tree.n_points tree);
    match formula_text with
    | None -> 0
    | Some text ->
      let* f = Parser.parse_result text in
      let fact =
        with_jobs_pool (fun pool ->
            Semantics.eval_auto ?pool tree ~valuation:default_valuation f)
      in
      let sat_points =
        Tree.fold_points tree ~init:0 ~f:(fun acc ~run ~time ->
            if Fact.holds fact ~run ~time then acc + 1 else acc)
      in
      Printf.printf "formula : %s\n" (Formula.to_string f);
      Printf.printf "valid   : %b\n" (sat_points = Tree.n_points tree);
      Printf.printf "points  : %d of %d satisfy\n" sat_points (Tree.n_points tree);
      0
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load a serialized pps document and optionally model-check it"
       ~man:
         [ `S Manpage.s_description;
           `P "Reads FILE through the typed error boundary: a malformed document, an \
               invariant-violating system or an unreadable file exits 3 with a one-line \
               diagnostic, and a document exceeding the installed resource budgets \
               exits 4 — never a raw exception."
         ])
    Term.(const run $ common_t $ file_arg $ formula_t)

let explain_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"A pps document (see $(b,pak dump)).")
  in
  let formula_t =
    Arg.(required & opt (some string) None
         & info [ "formula" ] ~docv:"FORMULA" ~doc:"The formula to certify.")
  in
  let json_t =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the certificate as one-line JSON (stable schema_version) on \
                   stdout instead of the indented text rendering; pipe into \
                   $(b,tools/check_cert.exe) to re-verify it independently.")
  in
  let depth_t =
    Arg.(value & opt (some int) None
         & info [ "depth" ] ~docv:"N"
             ~doc:"Elide certificate nodes nested deeper than $(docv) subformula levels.")
  in
  let at_conv =
    let parse s =
      let split i =
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Some r, Some t -> Ok (r, t)
        | _ -> Error (`Msg (Printf.sprintf "cannot parse %S as RUN:TIME" s))
      in
      match String.index_opt s ':' with
      | Some i -> split i
      | None -> Error (`Msg (Printf.sprintf "cannot parse %S as RUN:TIME" s))
    in
    Arg.conv (parse, fun fmt (r, t) -> Format.fprintf fmt "%d:%d" r t)
  in
  let at_t =
    Arg.(value & opt (some at_conv) None
         & info [ "at" ] ~docv:"RUN:TIME"
             ~doc:"Focus on one point: print the verdict there and mark every \
                   subformula as holding or failing at $(docv).")
  in
  let run () file text json depth at =
    let ( let* ) r f =
      match r with
      | Result.Error e -> fail_error (Error.with_context "pak explain" e)
      | Ok v -> f v
    in
    let* doc = read_file file in
    let* tree = Tree_io.of_string_result doc in
    let* f = Parser.parse_result text in
    let* () =
      match at with
      | Some (r, t)
        when not (r >= 0 && r < Tree.n_runs tree && t >= 0 && t < Tree.run_length tree r) ->
        Result.Error
          (Error.makef Error.Invalid_system "point (%d,%d) is outside the system" r t)
      | _ -> Ok ()
    in
    let* cert = Cert.certify_result tree ~valuation:default_valuation f in
    (* Self-check: every certificate the CLI emits has already survived
       the independent checker. A failure here is a pak bug, not bad
       input, so it maps to the internal-error exit code. *)
    match Cert.check ~valuation:default_valuation tree cert with
    | Result.Error v ->
      Format.eprintf "pak: internal error: fresh certificate rejected: %s@."
        (Cert.violation_to_string v);
      125
    | Ok () ->
      if json then print_endline (Cert.to_json cert)
      else begin
        Printf.printf "%s: %d agents, %d nodes, %d runs, %d points\n" file
          (Tree.n_agents tree) (Tree.n_nodes tree) (Tree.n_runs tree) (Tree.n_points tree);
        Printf.printf "formula: %s (%d certificate nodes)\n" (Formula.to_string f)
          (Cert.size cert);
        Format.printf "%a" (Cert.pp ?depth ?at) cert
      end;
      0
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Certify a formula on a loaded system: emit a self-checked witness \
             certificate"
       ~man:
         [ `S Manpage.s_description;
           `P "Evaluates FORMULA on the pps document FILE with full provenance: every \
               subformula's satisfying point set, the indistinguishability cell behind \
               each knowledge verdict, the conditioning cell with exact rational \
               measures behind each graded-belief verdict, and the iteration-by- \
               iteration approximants behind each common-knowledge/common-belief \
               fixpoint. The certificate is re-verified by the independent checker \
               before printing; $(b,--json) emits it as machine-readable JSON for \
               external re-verification ($(b,tools/check_cert.exe)). Budgets \
               ($(b,--max-iters), $(b,--timeout-ms), ...) bound certification like \
               every other subcommand (exit 4 on exhaustion)."
         ])
    Term.(const run $ common_t $ file_arg $ formula_t $ json_t $ depth_t $ at_t)

let random_cmd =
  let seed_arg = Arg.(value & pos 0 int 1 & info [] ~docv:"SEED" ~doc:"Generator seed.") in
  let run () seed =
    let tree = Gen.tree seed in
    Printf.printf "random pps (seed %d): %d nodes, %d runs, %d points\n" seed
      (Tree.n_nodes tree) (Tree.n_runs tree) (Tree.n_points tree);
    (match Gen.pick_proper_action tree ~seed with
     | None -> print_endline "no proper action found"
     | Some (agent, act) ->
       let fact = Gen.past_based_fact tree ~seed in
       Printf.printf "checking (agent %d, action %s) against a random past-based fact\n" agent act;
       let r = Theorems.expectation_identity fact ~agent ~act in
       Format.printf "%a@." Theorems.pp_expectation r;
       let pak = Theorems.pak_corollary fact ~agent ~act ~eps:(Q.of_ints 1 10) in
       Format.printf "%a@." Theorems.pp_pak pak);
    0
  in
  Cmd.v
    (Cmd.info "random" ~doc:"Generate a random pps and verify the main theorems on it")
    Term.(const run $ common_t $ seed_arg)

let serve_cmd =
  (* Unlike every other subcommand, serve does NOT install the
     process-global budget (no [guard_t]): its --max-* flags are
     server-level per-request caps, installed as a fresh scope around
     each request so one exhausted query cannot starve the next. *)
  let max_pending_t =
    Arg.(value & opt int Serve.default_config.max_pending
         & info [ "max-pending" ] ~docv:"N"
             ~doc:"Bound on queued-not-yet-executed requests; beyond it new requests \
                   are shed immediately with an $(i,overloaded) response carrying a \
                   retry-after-ms hint.")
  and batch_t =
    Arg.(value & opt int Serve.default_config.batch
         & info [ "batch" ] ~docv:"N"
             ~doc:"Drain the queue once it holds $(docv) requests; 0 means the job \
                   count (keep the pool busy). Responses are always written in \
                   arrival order regardless.")
  and max_frame_t =
    Arg.(value & opt int Serve.default_config.max_frame
         & info [ "max-frame" ] ~docv:"BYTES"
             ~doc:"Frame payload byte cap; oversized frames are skipped and answered \
                   with a typed protocol error.")
  and cache_max_t =
    Arg.(value & opt int Serve.default_config.cache_max
         & info [ "cache-max" ] ~docv:"N"
             ~doc:"Cross-request result-cache entries, keyed by (system digest, \
                   operation, formula, limits); 0 disables the cache.")
  and tree_cache_max_t =
    Arg.(value & opt int Serve.default_config.tree_cache_max
         & info [ "tree-cache-max" ] ~docv:"N"
             ~doc:"Parsed-system cache entries (documents are content-addressed by \
                   digest).")
  and drain_ms_t =
    Arg.(value & opt (some int) Serve.default_config.drain_ms
         & info [ "drain-ms" ] ~docv:"MS"
             ~doc:"Grace deadline for draining in-flight requests on shutdown or EOF; \
                   requests still pending past it are answered with budget errors.")
  and retry_after_t =
    Arg.(value & opt int Serve.default_config.retry_after_ms
         & info [ "retry-after-ms" ] ~docv:"MS"
             ~doc:"Back-off hint attached to $(i,overloaded) responses.")
  and max_points_t =
    Arg.(value & opt (some int) None
         & info [ "max-points" ] ~docv:"N"
             ~doc:"Per-request cap on visited tree points; requests may lower it but \
                   never raise it.")
  and max_nodes_t =
    Arg.(value & opt (some int) None
         & info [ "max-nodes" ] ~docv:"N" ~doc:"Per-request cap on constructed tree nodes.")
  and max_limbs_t =
    Arg.(value & opt (some int) None
         & info [ "max-limbs" ] ~docv:"N" ~doc:"Per-request cap on big-number limb operations.")
  and max_iters_t =
    Arg.(value & opt (some int) None
         & info [ "max-iters" ] ~docv:"N" ~doc:"Per-request cap on fixpoint iterations.")
  and timeout_t =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Per-request wall-clock deadline in milliseconds.")
  and telemetry_every_t =
    Arg.(value & opt int 0
         & info [ "telemetry-every" ] ~docv:"N"
             ~doc:"Emit a streaming-telemetry frame (one JSON line of counter and \
                   histogram-total deltas) to $(b,--telemetry-file) every $(docv) \
                   accepted requests, plus a final frame at shutdown. 0 disables. \
                   Frames are byte-identical at every $(b,--jobs).")
  and telemetry_file_t =
    Arg.(value & opt (some string) None
         & info [ "telemetry-file" ] ~docv:"FILE"
             ~doc:"Side-channel file for $(b,--telemetry-every) frames, line-delimited \
                   JSON, flushed per frame so it can be tailed live.")
  and journal_file_t =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Flight recorder: append every inbound frame and outbound response \
                   (seq, trace id, timestamp, disposition, exit code, payload bytes) \
                   to $(docv), flushed per record. Replay the file later with \
                   $(b,pak replay).")
  and journal_max_t =
    Arg.(value & opt (some int) None
         & info [ "journal-max-bytes" ] ~docv:"BYTES"
             ~doc:"Rotate the journal once the active segment would exceed $(docv) \
                   bytes: it is renamed $(i,FILE.1), $(i,FILE.2), ... (oldest first) \
                   and a fresh segment is opened. Unset = never rotate.")
  in
  let run () () () max_pending batch max_frame cache_max tree_cache_max drain_ms
      retry_after_ms max_points max_nodes max_limbs max_iters timeout_ms
      telemetry_every telemetry_file journal_file journal_max =
    handle (fun () ->
        let tele_chan =
          match telemetry_file with
          | None -> None
          | Some file -> (
              (* Telemetry frames are counter deltas: recording must be
                 on even without --metrics/--trace. *)
              Obs.enable ();
              try Some (open_out file)
              with Sys_error msg ->
                prerr_endline ("pak: cannot open telemetry file: " ^ msg);
                exit 3)
        in
        let telemetry =
          Option.map
            (fun oc line ->
              output_string oc line;
              output_char oc '\n';
              flush oc)
            tele_chan
        in
        let close_telemetry () =
          match tele_chan with Some oc -> close_out_noerr oc | None -> ()
        in
        let cfg =
          {
            Serve.jobs = !jobs_ref;
            max_pending;
            batch;
            max_frame;
            cache_max;
            tree_cache_max;
            drain_ms;
            retry_after_ms;
            limits = { Budget.max_points; max_nodes; max_limbs; max_iters; timeout_ms };
            clock = Some Unix.gettimeofday;
            telemetry_every;
            telemetry;
            journal = None;
          }
        in
        match Serve.validate_config cfg with
        | Result.Error msg ->
            close_telemetry ();
            Result.Error msg
        | Ok () when journal_max <> None && journal_file = None ->
            close_telemetry ();
            Result.Error "--journal-max-bytes requires --journal"
        | Ok () when (match journal_max with Some n -> n < 64 | None -> false) ->
            close_telemetry ();
            Result.Error "--journal-max-bytes must be >= 64"
        | Ok () ->
          (* The journal meta records the effective configuration (and
             engine), so [pak replay] re-executes under the same limits. *)
          let journal_writer =
            match journal_file with
            | None -> None
            | Some file -> (
                match
                  Journal.Writer.create ?max_bytes:journal_max
                    ~meta:(Replay.meta_of_config cfg) file
                with
                | Ok w -> Some w
                | Result.Error msg ->
                    close_telemetry ();
                    prerr_endline ("pak: cannot open journal: " ^ msg);
                    exit 3)
          in
          let cfg =
            { cfg with Serve.journal = Option.map Journal.Writer.sink journal_writer }
          in
          (* A client closing its read end must look like EOF, not a
             process-killing signal: responses go through [write], which
             treats the resulting Sys_error as a clean disconnect. *)
          (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
           with Invalid_argument _ -> ());
          set_binary_mode_in stdin true;
          set_binary_mode_out stdout true;
          let source = Serve.Frame.source_of_channel stdin in
          let write s = output_string stdout s; flush stdout in
          Ok (Fun.protect
                ~finally:(fun () ->
                  Option.iter Journal.Writer.close journal_writer;
                  close_telemetry ())
                (fun () -> Serve.run cfg ~source ~write)))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve framed evaluation requests from stdin with per-request fault \
             isolation"
       ~man:
         [ `S Manpage.s_description;
           `P "Runs a long-lived request loop: length-prefixed s-expression frames \
               ($(b,pak1 <len>\\\\n<payload>)) arrive on stdin, one response frame per \
               request leaves on stdout. Requests ($(b,eval) or $(b,belief) on an \
               inline pps document) are scheduled on $(b,--jobs) worker domains; each \
               runs under its own budget scope, so a malformed frame, an unparsable \
               document, a runaway fixpoint or an exhausted budget degrades exactly \
               one response and never the server.";
           `P "Budget-exhausted belief queries fall back to a budget-exempt \
               Monte-Carlo estimate marked $(i,estimated). When more than \
               $(b,--max-pending) requests are queued, new ones are shed with an \
               $(i,overloaded) response and a retry-after-ms hint. EOF or a \
               $(b,(shutdown)) frame drains in-flight work under $(b,--drain-ms) and \
               exits 0. Per-response codes reuse the exit-code contract: 0 ok, 2 \
               malformed request, 3 invalid input, 4 budget exceeded or shed, 125 \
               internal."
         ])
    Term.(const run $ obs_t $ jobs_t $ engine_t $ max_pending_t $ batch_t $ max_frame_t
          $ cache_max_t $ tree_cache_max_t $ drain_ms_t $ retry_after_t
          $ max_points_t $ max_nodes_t $ max_limbs_t $ max_iters_t $ timeout_t
          $ telemetry_every_t $ telemetry_file_t $ journal_file_t $ journal_max_t)

let replay_cmd =
  let journal_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"JOURNAL"
             ~doc:"Journal base path as given to $(b,pak serve --journal); rotated \
                   segments $(i,JOURNAL.1), $(i,JOURNAL.2), ... are read first, \
                   oldest first.")
  and jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Override the recorded worker-domain count. The response stream is \
                   a pure function of the input stream, so this must not change the \
                   outcome — replaying at a different job count is itself a \
                   determinism check. 0 selects the machine's recommended count.")
  and strict_t =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Also fail (exit 1) when the journal has a truncated or corrupt \
                   tail; without it the tail is reported but only response \
                   divergences fail the replay.")
  in
  let run () journal jobs strict =
    handle (fun () ->
        match Journal.read journal with
        | Result.Error msg -> Result.Error msg
        | Ok rr -> (
            let jobs =
              Option.map
                (fun j ->
                  if j = 0 then Domain.recommended_domain_count () else max 1 j)
                jobs
            in
            match Replay.run ?jobs ~clock:Unix.gettimeofday rr with
            | Result.Error msg -> Result.Error msg
            | Ok rp ->
                Printf.printf
                  "replayed %d request frames from %d segment(s): %d/%d responses \
                   matched (%d junk records skipped)\n"
                  rp.Replay.rp_requests rr.Journal.r_segments rp.Replay.rp_matched
                  rp.Replay.rp_compared rp.Replay.rp_skipped_junk;
                List.iter
                  (fun d ->
                    Printf.printf
                      "divergence at frame seq %d (trace %s):\n  recorded: %s\n  \
                       replayed: %s\n"
                      d.Replay.d_seq
                      (if d.Replay.d_trace = "" then "-" else d.Replay.d_trace)
                      d.Replay.d_want d.Replay.d_got)
                  rp.Replay.rp_divergences;
                if rp.Replay.rp_missing > 0 then
                  Printf.printf
                    "missing: %d recorded response(s) the replay did not produce\n"
                    rp.Replay.rp_missing;
                if rp.Replay.rp_extra > 0 then
                  Printf.printf
                    "extra: %d replayed response(s) beyond the recording\n"
                    rp.Replay.rp_extra;
                (match rp.Replay.rp_tail with
                | Some why -> Printf.printf "journal tail: %s\n" why
                | None -> ());
                let diverged =
                  rp.Replay.rp_divergences <> []
                  || rp.Replay.rp_missing > 0
                  || rp.Replay.rp_extra > 0
                in
                Ok
                  (if diverged || (strict && rp.Replay.rp_tail <> None) then 1
                   else 0)))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a serve journal through the live engine and diff the \
             responses"
       ~man:
         [ `S Manpage.s_description;
           `P "Reads a flight-recorder journal written by $(b,pak serve --journal), \
               rebuilds the input stream from its request records, re-executes it \
               under the configuration and engine recorded in the journal meta, and \
               compares the responses byte-for-byte modulo the observability fields \
               (trace ids, $(b,(metrics ...)) groups, and the $(b,(result ...)) of \
               introspection ops, which report the recording process's own state). \
               Any journal is thus a regression test: exit 0 when every response \
               matches, 1 with a divergence report naming each frame seq and trace \
               id otherwise, 3 on an unreadable journal.";
           `P "Junk records (stream garbage the recorder observed but whose bytes \
               were not kept) are skipped on both sides of the diff. A truncated \
               tail — the recorder died mid-record — is reported and, under \
               $(b,--strict), also fails the replay."
         ])
    Term.(const run $ obs_t $ journal_arg $ jobs_arg $ strict_t)

let () =
  Printexc.record_backtrace false;
  (* The CLI links Unix anyway, so deadlines get the wall clock the
     zero-dependency guard layer cannot provide itself: --timeout-ms
     measures wall time and is jobs-invariant. *)
  Budget.set_wall_clock (Some Unix.gettimeofday);
  let doc = "Probably Approximately Knowing: probabilistic beliefs at action time" in
  let man =
    [ `S Manpage.s_exit_status;
      `P "0 on success; 1 when the analyzed constraint is violated or a sweep found a \
          violating system; 2 on command-line usage errors; 3 on invalid input (unknown \
          system, unparsable formula or document, unreadable file); 4 when a resource \
          budget ($(b,--max-points), $(b,--max-nodes), $(b,--max-limbs), \
          $(b,--max-iters), $(b,--timeout-ms)) is exceeded."
    ]
  in
  let info = Cmd.info "pak" ~version:"1.0.0" ~doc ~man in
  let group =
    Cmd.group info
      [ list_cmd; analyze_cmd; theorems_cmd; eval_cmd; profile_cmd; dot_cmd; dump_cmd;
        simulate_cmd; sweep_cmd; axioms_cmd; frontier_cmd; appendix_cmd; load_cmd;
        explain_cmd; random_cmd; serve_cmd; replay_cmd ]
  in
  (* Top-level boundary: no raw exception escapes as a crash. Typed and
     classifiable errors map onto the exit-code contract; anything else
     is an internal error (125). Usage errors (unknown flags, missing
     arguments) exit 2. *)
  let code =
    match Cmd.eval_value ~catch:false group with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> 0
    | Result.Error (`Parse | `Term | `Exn) -> 2
    | exception exn ->
      (match Error.of_exn exn with
       | Some e -> fail_error e
       | None ->
         Format.eprintf "pak: internal error: %s@." (Printexc.to_string exn);
         125)
  in
  exit code
