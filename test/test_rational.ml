(* Tests for the exact-arithmetic substrate: Bignat, Bigint, Q. *)

open Pak_rational
module Error = Pak_guard.Error

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Bignat unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let nat = Bignat.of_int
let nat_s = Bignat.of_string

let test_nat_of_to_string () =
  check_string "zero" "0" (Bignat.to_string Bignat.zero);
  check_string "one" "1" (Bignat.to_string Bignat.one);
  check_string "small" "12345" (Bignat.to_string (nat 12345));
  check_string "max-ish" "4611686018427387903" (Bignat.to_string (nat 4611686018427387903));
  let big = "123456789012345678901234567890123456789012345678901234567890" in
  check_string "roundtrip big" big (Bignat.to_string (nat_s big));
  check_string "leading zeros normalize" "42" (Bignat.to_string (nat_s "000042"));
  check_string "underscores" "1000000" (Bignat.to_string (nat_s "1_000_000"))

let test_nat_of_string_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Bignat.of_string: empty") (fun () ->
      ignore (nat_s ""));
  Alcotest.check_raises "letters" (Invalid_argument "Bignat.of_string: non-digit") (fun () ->
      ignore (nat_s "12a3"))

let test_nat_add_sub () =
  let a = nat_s "99999999999999999999999999" in
  let b = nat_s "1" in
  check_string "carry chain" "100000000000000000000000000" (Bignat.to_string (Bignat.add a b));
  check_string "sub inverse" (Bignat.to_string a)
    (Bignat.to_string (Bignat.sub (Bignat.add a b) b));
  check_string "a-a=0" "0" (Bignat.to_string (Bignat.sub a a));
  Alcotest.check_raises "negative" (Invalid_argument "Bignat.sub: negative result") (fun () ->
      ignore (Bignat.sub b a))

let test_nat_mul () =
  check_string "0*x" "0" (Bignat.to_string (Bignat.mul Bignat.zero (nat 7)));
  check_string "small" "56088" (Bignat.to_string (Bignat.mul (nat 123) (nat 456)));
  let a = nat_s "123456789123456789" in
  let b = nat_s "987654321987654321" in
  check_string "big schoolbook" "121932631356500531347203169112635269"
    (Bignat.to_string (Bignat.mul a b));
  (* commutativity on a known pair *)
  check_bool "commutes" true (Bignat.equal (Bignat.mul a b) (Bignat.mul b a))

let test_nat_divmod () =
  let a = nat_s "121932631356500531347203169112635269" in
  let b = nat_s "987654321987654321" in
  let q, r = Bignat.divmod a b in
  check_string "exact quotient" "123456789123456789" (Bignat.to_string q);
  check_string "exact remainder" "0" (Bignat.to_string r);
  let q, r = Bignat.divmod (nat 17) (nat 5) in
  check_string "17/5" "3" (Bignat.to_string q);
  check_string "17 mod 5" "2" (Bignat.to_string r);
  let q, r = Bignat.divmod (nat 3) (nat 5) in
  check_string "3/5" "0" (Bignat.to_string q);
  check_string "3 mod 5" "3" (Bignat.to_string r);
  Alcotest.check_raises "div by zero"
    (Error.Division_by_zero "Bignat.divmod: divisor is zero") (fun () ->
      ignore (Bignat.divmod (nat 3) Bignat.zero))

let test_nat_gcd () =
  check_string "gcd(12,18)" "6" (Bignat.to_string (Bignat.gcd (nat 12) (nat 18)));
  check_string "gcd(0,n)" "7" (Bignat.to_string (Bignat.gcd Bignat.zero (nat 7)));
  check_string "gcd(n,0)" "7" (Bignat.to_string (Bignat.gcd (nat 7) Bignat.zero));
  check_string "coprime" "1" (Bignat.to_string (Bignat.gcd (nat 35) (nat 64)));
  let a = Bignat.mul (nat_s "123456789") (nat_s "1000003") in
  let b = Bignat.mul (nat_s "123456789") (nat_s "999983") in
  check_string "big common factor" "123456789" (Bignat.to_string (Bignat.gcd a b))

let test_nat_pow () =
  check_string "10^20" "100000000000000000000" (Bignat.to_string (Bignat.pow (nat 10) 20));
  check_string "x^0" "1" (Bignat.to_string (Bignat.pow (nat 99) 0));
  check_string "0^0" "1" (Bignat.to_string (Bignat.pow Bignat.zero 0));
  check_string "0^5" "0" (Bignat.to_string (Bignat.pow Bignat.zero 5));
  check_string "2^100" "1267650600228229401496703205376" (Bignat.to_string (Bignat.pow Bignat.two 100))

let test_nat_compare_bits () =
  check_int "num_bits 0" 0 (Bignat.num_bits Bignat.zero);
  check_int "num_bits 1" 1 (Bignat.num_bits Bignat.one);
  check_int "num_bits 2^100" 101 (Bignat.num_bits (Bignat.pow Bignat.two 100));
  check_bool "cmp lt" true (Bignat.compare (nat 3) (nat 5) < 0);
  check_bool "cmp across limbs" true (Bignat.compare (nat 32767) (nat 32768) < 0);
  check_bool "shift_left" true
    (Bignat.equal (Bignat.shift_left (nat 3) 20) (nat (3 * (1 lsl 20))))

let test_nat_to_int_opt () =
  Alcotest.(check (option int)) "roundtrip" (Some 123456) (Bignat.to_int_opt (nat 123456));
  Alcotest.(check (option int)) "zero" (Some 0) (Bignat.to_int_opt Bignat.zero);
  Alcotest.(check (option int)) "too big" None
    (Bignat.to_int_opt (Bignat.pow Bignat.two 80))

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let int_ = Bigint.of_int

let test_int_basics () =
  check_string "neg" "-42" (Bigint.to_string (int_ (-42)));
  check_string "neg of pos" "-7" (Bigint.to_string (Bigint.neg (int_ 7)));
  check_string "neg of zero" "0" (Bigint.to_string (Bigint.neg Bigint.zero));
  check_int "sign -" (-1) (Bigint.sign (int_ (-3)));
  check_int "sign 0" 0 (Bigint.sign Bigint.zero);
  check_int "sign +" 1 (Bigint.sign (int_ 3));
  check_string "abs" "5" (Bigint.to_string (Bigint.abs (int_ (-5))));
  check_string "of_string -" "-123" (Bigint.to_string (Bigint.of_string "-123"));
  check_string "of_string +" "123" (Bigint.to_string (Bigint.of_string "+123"))

let test_int_min_int () =
  (* of_int must not overflow on min_int. *)
  let m = Bigint.of_int min_int in
  check_string "min_int" (string_of_int min_int) (Bigint.to_string m)

let test_int_arith () =
  check_string "3 + -5" "-2" (Bigint.to_string (Bigint.add (int_ 3) (int_ (-5))));
  check_string "-3 + -5" "-8" (Bigint.to_string (Bigint.add (int_ (-3)) (int_ (-5))));
  check_string "5 - 3" "2" (Bigint.to_string (Bigint.sub (int_ 5) (int_ 3)));
  check_string "3 - 5" "-2" (Bigint.to_string (Bigint.sub (int_ 3) (int_ 5)));
  check_string "(-3)*(-5)" "15" (Bigint.to_string (Bigint.mul (int_ (-3)) (int_ (-5))));
  check_string "(-3)*5" "-15" (Bigint.to_string (Bigint.mul (int_ (-3)) (int_ 5)));
  check_string "x + -x" "0" (Bigint.to_string (Bigint.add (int_ 12345) (int_ (-12345))))

let test_int_divmod_euclidean () =
  (* Euclidean convention: 0 <= r < |b| in all sign combinations. *)
  let cases = [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (-6, 3) ] in
  List.iter
    (fun (a, b) ->
      let q, r = Bigint.divmod (int_ a) (int_ b) in
      let qi = Option.get (Bigint.to_int_opt q) in
      let ri = Option.get (Bigint.to_int_opt r) in
      check_int (Printf.sprintf "a=%d b=%d reconstruct" a b) a ((qi * b) + ri);
      check_bool (Printf.sprintf "a=%d b=%d rem range" a b) true (ri >= 0 && ri < abs b))
    cases;
  Alcotest.check_raises "div by zero"
    (Error.Division_by_zero "Bigint.divmod: divisor is zero") (fun () ->
      ignore (Bigint.divmod (int_ 3) Bigint.zero))

let test_int_pow_compare () =
  check_string "(-2)^3" "-8" (Bigint.to_string (Bigint.pow (int_ (-2)) 3));
  check_string "(-2)^4" "16" (Bigint.to_string (Bigint.pow (int_ (-2)) 4));
  check_bool "-5 < 3" true (Bigint.compare (int_ (-5)) (int_ 3) < 0);
  check_bool "-5 < -3" true (Bigint.compare (int_ (-5)) (int_ (-3)) < 0);
  check_bool "gcd magnitudes" true (Bignat.equal (Bigint.gcd (int_ (-12)) (int_ 18)) (nat 6))

(* ------------------------------------------------------------------ *)
(* Q unit tests                                                        *)
(* ------------------------------------------------------------------ *)

let q = Q.of_ints
let q_s = Q.of_string

let test_q_normalization () =
  check_string "6/8 -> 3/4" "3/4" (Q.to_string (q 6 8));
  check_string "-6/8" "-3/4" (Q.to_string (q (-6) 8));
  check_string "6/-8" "-3/4" (Q.to_string (q 6 (-8)));
  check_string "-6/-8" "3/4" (Q.to_string (q (-6) (-8)));
  check_string "0/7" "0" (Q.to_string (q 0 7));
  check_string "int" "5" (Q.to_string (q 5 1));
  check_bool "structural equality after normalize" true (Q.equal (q 2 4) (q 1 2));
  Alcotest.check_raises "zero den" (Error.Division_by_zero "Q.make: zero denominator")
    (fun () -> ignore (q 1 0))

let test_q_of_string () =
  check_string "fraction" "3/4" (Q.to_string (q_s "3/4"));
  check_string "unnormalized fraction" "3/4" (Q.to_string (q_s "75/100"));
  check_string "negative fraction" "-3/4" (Q.to_string (q_s "-3/4"));
  check_string "integer" "42" (Q.to_string (q_s "42"));
  check_string "decimal 0.95" "19/20" (Q.to_string (q_s "0.95"));
  check_string "decimal .5" "1/2" (Q.to_string (q_s "0.5"));
  check_string "decimal -1.25" "-5/4" (Q.to_string (q_s "-1.25"));
  check_string "decimal 0.009" "9/1000" (Q.to_string (q_s "0.009"));
  check_string "decimal 0.99899" "99899/100000" (Q.to_string (q_s "0.99899"));
  check_string "whitespace" "1/2" (Q.to_string (q_s " 1/2 "))

let test_q_arith () =
  check_string "1/2 + 1/3" "5/6" (Q.to_string (Q.add (q 1 2) (q 1 3)));
  check_string "1/2 - 1/3" "1/6" (Q.to_string (Q.sub (q 1 2) (q 1 3)));
  check_string "2/3 * 3/4" "1/2" (Q.to_string (Q.mul (q 2 3) (q 3 4)));
  check_string "(1/2)/(1/4)" "2" (Q.to_string (Q.div (q 1 2) (q 1 4)));
  check_string "inv -2/3" "-3/2" (Q.to_string (Q.inv (q (-2) 3)));
  check_string "pow (2/3)^3" "8/27" (Q.to_string (Q.pow (q 2 3) 3));
  check_string "pow (2/3)^-2" "9/4" (Q.to_string (Q.pow (q 2 3) (-2)));
  check_string "pow x^0" "1" (Q.to_string (Q.pow (q 5 7) 0));
  check_string "sum" "1" (Q.to_string (Q.sum [ q 1 2; q 1 3; q 1 6 ]));
  check_string "one_minus 0.95" "1/20" (Q.to_string (Q.one_minus (q_s "0.95")));
  Alcotest.check_raises "inv zero" (Error.Division_by_zero "Q.inv: inverse of zero")
    (fun () -> ignore (Q.inv Q.zero));
  Alcotest.check_raises "div by zero" (Error.Division_by_zero "Q.inv: inverse of zero")
    (fun () -> ignore (Q.div Q.one Q.zero))

let test_q_compare () =
  check_bool "1/3 < 1/2" true (Q.lt (q 1 3) (q 1 2));
  check_bool "-1/2 < 1/3" true (Q.lt (q (-1) 2) (q 1 3));
  check_bool "leq refl" true (Q.leq (q 2 4) (q 1 2));
  check_bool "geq" true (Q.geq (q 3 4) (q 1 2));
  check_bool "min" true (Q.equal (Q.min (q 1 3) (q 1 2)) (q 1 3));
  check_bool "max" true (Q.equal (Q.max (q 1 3) (q 1 2)) (q 1 2));
  check_bool "probability yes" true (Q.is_probability (q 19 20));
  check_bool "probability edge 0" true (Q.is_probability Q.zero);
  check_bool "probability edge 1" true (Q.is_probability Q.one);
  check_bool "probability no (neg)" false (Q.is_probability (q (-1) 2));
  check_bool "probability no (>1)" false (Q.is_probability (q 3 2))

let test_q_decimal_string () =
  check_string "exact terminating" "0.95" (Q.to_decimal_string (q_s "0.95"));
  check_string "integer" "3" (Q.to_decimal_string (q 3 1));
  check_string "negative" "-0.25" (Q.to_decimal_string (q (-1) 4));
  check_string "nonterminating truncated" "0.333333\xe2\x80\xa6"
    (Q.to_decimal_string ~digits:6 (q 1 3));
  check_string "custom digits" "0.66\xe2\x80\xa6" (Q.to_decimal_string ~digits:2 (q 2 3))

let test_q_to_float () =
  Alcotest.(check (float 1e-12)) "3/4" 0.75 (Q.to_float (q 3 4));
  Alcotest.(check (float 1e-12)) "-1/8" (-0.125) (Q.to_float (q (-1) 8));
  Alcotest.(check (float 1e-9)) "0.99 power"
    (0.9 ** 20.)
    (Q.to_float (Q.pow (q 9 10) 20))

let test_q_example1_numbers () =
  (* The exact numbers from Example 1 of the paper, as arithmetic checks:
     0.9*0.9 + 2*0.9*0.1 = 0.99 and 0.1*0.1*0.9 = 0.009, 1 - 0.009 = 0.991. *)
  let p_del = q 9 10 and p_loss = q 1 10 in
  let both_got =
    Q.sum
      [ Q.mul p_del p_del; Q.mul p_del p_loss; Q.mul p_loss p_del ]
  in
  check_string "P(Bob got >=1 msg)" "99/100" (Q.to_string both_got);
  let violation = Q.mul (Q.mul p_loss p_loss) p_del in
  check_string "P(No delivered)" "9/1000" (Q.to_string violation);
  check_string "threshold met measure" "991/1000" (Q.to_string (Q.one_minus violation));
  check_string "improved protocol" "990/991"
    (Q.to_string (Q.div both_got (Q.one_minus violation)))

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let gen_q : Q.t QCheck.arbitrary =
  let open QCheck in
  map
    ~rev:(fun q -> (Option.get (Bigint.to_int_opt (Q.num q)), Option.get (Bignat.to_int_opt (Q.den q))))
    (fun (n, d) -> Q.of_ints n (1 + abs d))
    (pair (int_range (-10000) 10000) (int_range 0 9999))

let gen_nat_pair =
  QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))

let prop_nat_add_commutative =
  QCheck.Test.make ~count:500 ~name:"bignat add commutative" gen_nat_pair (fun (a, b) ->
      Bignat.equal (Bignat.add (nat a) (nat b)) (Bignat.add (nat b) (nat a)))

let prop_nat_mul_matches_int =
  QCheck.Test.make ~count:500 ~name:"bignat mul matches native int"
    QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
    (fun (a, b) -> Bignat.to_int_opt (Bignat.mul (nat a) (nat b)) = Some (a * b))

let prop_nat_divmod_reconstructs =
  QCheck.Test.make ~count:500 ~name:"bignat divmod reconstructs"
    QCheck.(pair (int_range 0 10_000_000) (int_range 1 50_000))
    (fun (a, b) ->
      let q, r = Bignat.divmod (nat a) (nat b) in
      Bignat.equal (nat a) (Bignat.add (Bignat.mul q (nat b)) r)
      && Bignat.compare r (nat b) < 0)

let prop_nat_string_roundtrip =
  QCheck.Test.make ~count:500 ~name:"bignat string roundtrip"
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      let n = nat_s s in
      Bignat.equal n (nat_s (Bignat.to_string n)))

let prop_nat_gcd_divides =
  QCheck.Test.make ~count:500 ~name:"bignat gcd divides both"
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (a, b) ->
      let g = Bignat.gcd (nat a) (nat b) in
      Bignat.is_zero (Bignat.rem (nat a) g) && Bignat.is_zero (Bignat.rem (nat b) g))

let prop_q_add_assoc =
  QCheck.Test.make ~count:300 ~name:"Q add associative"
    QCheck.(triple gen_q gen_q gen_q)
    (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)))

let prop_q_mul_distributes =
  QCheck.Test.make ~count:300 ~name:"Q mul distributes over add"
    QCheck.(triple gen_q gen_q gen_q)
    (fun (a, b, c) -> Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_q_add_neg_zero =
  QCheck.Test.make ~count:300 ~name:"Q x + (-x) = 0" gen_q (fun a ->
      Q.is_zero (Q.add a (Q.neg a)))

let prop_q_mul_inv_one =
  QCheck.Test.make ~count:300 ~name:"Q x * x^-1 = 1" gen_q (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal (Q.mul a (Q.inv a)) Q.one)

let prop_q_string_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Q string roundtrip" gen_q (fun a ->
      Q.equal a (Q.of_string (Q.to_string a)))

let prop_q_compare_consistent_with_float =
  QCheck.Test.make ~count:300 ~name:"Q compare consistent with float on small values"
    QCheck.(pair gen_q gen_q)
    (fun (a, b) ->
      let c = Q.compare a b in
      let fa = Q.to_float a and fb = Q.to_float b in
      (* floats are exact for these small fractions' comparisons unless
         very close; skip near-ties *)
      QCheck.assume (abs_float (fa -. fb) > 1e-9);
      (c < 0) = (fa < fb))

let prop_q_compare_antisym =
  QCheck.Test.make ~count:300 ~name:"Q compare antisymmetric"
    QCheck.(pair gen_q gen_q)
    (fun (a, b) -> Q.compare a b = -Q.compare b a)

let prop_q_normalized_gcd_one =
  QCheck.Test.make ~count:300 ~name:"Q always in lowest terms" gen_q (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Bignat.is_one (Bignat.gcd (Bigint.to_bignat (Q.num a)) (Q.den a)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_nat_add_commutative;
      prop_nat_mul_matches_int;
      prop_nat_divmod_reconstructs;
      prop_nat_string_roundtrip;
      prop_nat_gcd_divides;
      prop_q_add_assoc;
      prop_q_mul_distributes;
      prop_q_add_neg_zero;
      prop_q_mul_inv_one;
      prop_q_string_roundtrip;
      prop_q_compare_consistent_with_float;
      prop_q_compare_antisym;
      prop_q_normalized_gcd_one
    ]

let () =
  Alcotest.run "pak_rational"
    [ ( "bignat",
        [ Alcotest.test_case "string conversions" `Quick test_nat_of_to_string;
          Alcotest.test_case "of_string invalid" `Quick test_nat_of_string_invalid;
          Alcotest.test_case "add/sub" `Quick test_nat_add_sub;
          Alcotest.test_case "mul" `Quick test_nat_mul;
          Alcotest.test_case "divmod" `Quick test_nat_divmod;
          Alcotest.test_case "gcd" `Quick test_nat_gcd;
          Alcotest.test_case "pow" `Quick test_nat_pow;
          Alcotest.test_case "compare/bits/shift" `Quick test_nat_compare_bits;
          Alcotest.test_case "to_int_opt" `Quick test_nat_to_int_opt
        ] );
      ( "bigint",
        [ Alcotest.test_case "basics" `Quick test_int_basics;
          Alcotest.test_case "min_int" `Quick test_int_min_int;
          Alcotest.test_case "arithmetic" `Quick test_int_arith;
          Alcotest.test_case "euclidean divmod" `Quick test_int_divmod_euclidean;
          Alcotest.test_case "pow/compare/gcd" `Quick test_int_pow_compare
        ] );
      ( "q",
        [ Alcotest.test_case "normalization" `Quick test_q_normalization;
          Alcotest.test_case "of_string" `Quick test_q_of_string;
          Alcotest.test_case "arithmetic" `Quick test_q_arith;
          Alcotest.test_case "comparisons" `Quick test_q_compare;
          Alcotest.test_case "decimal rendering" `Quick test_q_decimal_string;
          Alcotest.test_case "to_float" `Quick test_q_to_float;
          Alcotest.test_case "example 1 numbers" `Quick test_q_example1_numbers
        ] );
      ("properties", qcheck_cases)
    ]
