(* Tests for pak_par and its integrations: Pool.map / map_reduce
   against their sequential oracles under every small job count,
   deterministic exception propagation, jobs-independence of
   Simulate.estimate_par and Sweep reports, cross-domain sharing of
   one Budget's fuel, and exact Obs counters under parallel maps. *)

open Pak_rational
open Pak_pps
module Pool = Pak_par.Pool
module Budget = Pak_guard.Budget
module Error = Pak_guard.Error
module Obs = Pak_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Pool primitives vs sequential oracles                               *)
(* ------------------------------------------------------------------ *)

let jobs_under_test = [ 1; 2; 3; 4 ]

let prop_map_oracle =
  QCheck.Test.make ~count:100 ~name:"Pool.map equals Array.map for jobs 1..4"
    QCheck.(pair (list small_int) small_int)
    (fun (items, salt) ->
      let arr = Array.of_list items in
      let f x = (x * 31) + salt in
      let expect = Array.map f arr in
      List.for_all
        (fun jobs -> Pool.with_pool ~jobs (fun pool -> Pool.map pool f arr = expect))
        jobs_under_test)

let prop_map_reduce_oracle =
  QCheck.Test.make ~count:100
    ~name:"Pool.map_reduce equals sequential fold for jobs 1..4"
    QCheck.(list small_int)
    (fun items ->
      let arr = Array.of_list items in
      let f x = (2 * x) + 1 in
      let expect = Array.fold_left (fun acc x -> acc + f x) 0 arr in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              Pool.map_reduce pool ~map:f ~reduce:( + ) ~init:0 arr = expect))
        jobs_under_test)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (* Several chunks raise; the lowest chunk's exception must win,
         deterministically, and the pool must stay usable after. *)
      let arr = Array.init 64 Fun.id in
      (match Pool.map pool (fun x -> if x >= 16 then raise (Boom x) else x) arr with
       | _ -> Alcotest.fail "expected Boom to propagate"
       | exception Boom _ -> ());
      check_int "pool still works after an exception" 18
        (Pool.map_reduce pool ~map:Fun.id ~reduce:( + ) ~init:0 (Array.init 4 (fun i -> 3 * i))))

let test_create_invalid () =
  check_bool "jobs 0 rejected" true
    (match Pool.create ~jobs:0 with
     | exception Invalid_argument _ -> true
     | pool -> Pool.close pool; false)

let test_empty_input () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check_int "map on [||]" 0 (Array.length (Pool.map pool Fun.id [||]));
      check_int "map_reduce on [||]" 7
        (Pool.map_reduce pool ~map:Fun.id ~reduce:( + ) ~init:7 [||]))

(* ------------------------------------------------------------------ *)
(* estimate_par: one result for every pool size                        *)
(* ------------------------------------------------------------------ *)

let test_estimate_par_jobs_invariant () =
  let tree = Gen.tree 11 in
  let event =
    (* the runs where a random past-based fact holds at time 0 *)
    let fact = Gen.past_based_fact tree ~seed:11 in
    let b = ref (Bitset.create (Tree.n_runs tree)) in
    for run = 0 to Tree.n_runs tree - 1 do
      if Fact.holds fact ~run ~time:0 then b := Bitset.add !b run
    done;
    !b
  in
  let samples = 5_000 and seed = 3 in
  let serial = Simulate.estimate_par tree ~event ~samples ~seed in
  List.iter
    (fun jobs ->
      let est =
        Pool.with_pool ~jobs (fun pool -> Simulate.estimate_par ~pool tree ~event ~samples ~seed)
      in
      check_string
        (Printf.sprintf "estimate_par jobs=%d equals no-pool result" jobs)
        (Q.to_string serial) (Q.to_string est))
    jobs_under_test;
  (* And it is a real estimate: within 5 binomial sigma of the measure. *)
  let exact = Tree.measure tree event in
  let sigma = Simulate.standard_error ~p:exact ~samples in
  let err = abs_float (Q.to_float serial -. Q.to_float exact) in
  check_bool "estimate within 5 sigma of exact measure" true (err <= (5. *. sigma) +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Sweep: parallel report equals serial report                         *)
(* ------------------------------------------------------------------ *)

let report_to_string r = Format.asprintf "%a" Sweep.pp_report r

let test_sweep_jobs_invariant () =
  List.iter
    (fun check ->
      let serial = Sweep.run check ~first_seed:1 ~count:25 in
      let par =
        Pool.with_pool ~jobs:3 (fun pool -> Sweep.run ~pool check ~first_seed:1 ~count:25)
      in
      check_string
        (Printf.sprintf "sweep %s: jobs=3 report equals serial" (Sweep.check_name check))
        (report_to_string serial) (report_to_string par);
      check_bool
        (Printf.sprintf "sweep %s passes" (Sweep.check_name check))
        true (Sweep.passed serial))
    Sweep.all_checks

let test_sweep_names_roundtrip () =
  List.iter
    (fun c -> check_bool (Sweep.check_name c) true (Sweep.of_name (Sweep.check_name c) = Some c))
    Sweep.all_checks;
  check_bool "unknown name" true (Sweep.of_name "thm99" = None)

(* ------------------------------------------------------------------ *)
(* One shared budget across domains                                    *)
(* ------------------------------------------------------------------ *)

(* Sum of all points the fixed tree family charges for one full sweep
   of each tree: used to pick limits between "one item fits" and "all
   items together do not". *)
let sweep_points tree =
  Tree.fold_points tree ~init:0 ~f:(fun acc ~run:_ ~time:_ -> acc + 1)

let full_sweep tree = ignore (Tree.fold_points tree ~init:0 ~f:(fun acc ~run:_ ~time:_ -> acc + 1))

let test_budget_shared_across_domains () =
  let tree = Gen.tree 5 in
  let p = sweep_points tree in
  (* Budget for ~2.5 sweeps. Two sweeps (a single chunk's worth when
     only one item exists) fit; six sweeps spread over three domains
     must exhaust the SAME budget even though no single domain performs
     more than two. *)
  let lim = Budget.limits ~max_points:((5 * p / 2) + 1) () in
  let two_ok =
    Budget.with_budget lim (fun () ->
        full_sweep tree;
        full_sweep tree)
  in
  check_bool "two sweeps fit the budget" true (Result.is_ok two_ok);
  Pool.with_pool ~jobs:3 (fun pool ->
      let six =
        Budget.with_budget lim (fun () ->
            ignore (Pool.map pool (fun _ -> full_sweep tree) (Array.init 6 Fun.id)))
      in
      (match six with
       | Ok () -> Alcotest.fail "six parallel sweeps escaped a 2.5-sweep shared budget"
       | Error e -> check_bool "typed budget error" true (e.Error.kind = Error.Budget_exceeded));
      (* The scope was restored: charging outside is free again. *)
      full_sweep tree;
      check_bool "budget inactive after with_budget" false !Budget.active)

let test_budget_not_multiplied () =
  (* The same limit that admits a serial computation admits the
     parallel one: workers inherit the caller's scope instead of
     getting fresh fuel, but they also do not double-charge. *)
  let tree = Gen.tree 6 in
  let p = sweep_points tree in
  let lim = Budget.limits ~max_points:((4 * p) + 1) () in
  Pool.with_pool ~jobs:4 (fun pool ->
      let r =
        Budget.with_budget lim (fun () ->
            ignore (Pool.map pool (fun _ -> full_sweep tree) (Array.init 4 Fun.id)))
      in
      check_bool "four sweeps fit a four-sweep budget across four domains" true
        (Result.is_ok r))

(* ------------------------------------------------------------------ *)
(* Obs counters are exact under parallel bumps                         *)
(* ------------------------------------------------------------------ *)

let test_obs_counters_parallel_exact () =
  let c = Obs.counter "test_par.bumps" in
  let was_enabled = Obs.enabled () in
  Obs.enable ();
  let before = Obs.value c in
  let bumps_per_item = 1000 and items = 32 in
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Pool.map pool
           (fun _ ->
             for _ = 1 to bumps_per_item do
               Obs.incr c
             done)
           (Array.init items Fun.id)));
  check_int "no bump lost across domains" (before + (bumps_per_item * items)) (Obs.value c);
  if not was_enabled then Obs.disable ()

let () =
  Alcotest.run "pak_par"
    [ ( "pool",
        [ QCheck_alcotest.to_alcotest prop_map_oracle;
          QCheck_alcotest.to_alcotest prop_map_reduce_oracle;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "create rejects jobs < 1" `Quick test_create_invalid;
          Alcotest.test_case "empty input" `Quick test_empty_input
        ] );
      ( "simulate",
        [ Alcotest.test_case "estimate_par is jobs-invariant" `Quick
            test_estimate_par_jobs_invariant
        ] );
      ( "sweep",
        [ Alcotest.test_case "reports are jobs-invariant" `Quick test_sweep_jobs_invariant;
          Alcotest.test_case "check names round-trip" `Quick test_sweep_names_roundtrip
        ] );
      ( "budget",
        [ Alcotest.test_case "one budget shared by all domains" `Quick
            test_budget_shared_across_domains;
          Alcotest.test_case "budget not multiplied by domains" `Quick
            test_budget_not_multiplied
        ] );
      ( "obs",
        [ Alcotest.test_case "counters exact under parallel bumps" `Quick
            test_obs_counters_parallel_exact
        ] )
    ]
