(* Tests for pak_obs and the instrumentation threaded through the
   checker/measure/constraint engines: counter identities on the
   Semantics memo table, determinism of fixpoint iteration counts, the
   trace sink's output format, and the core invariant that
   instrumentation never changes results (null sink or not). *)

open Pak_rational
open Pak_pps
open Pak_logic
module Obs = Pak_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [f] with metrics enabled and counters zeroed; always restore the
   null sink so tests cannot leak global state into each other. *)
let with_metrics f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* A three-node chain system with two agents: enough structure for
   knowledge, graded belief and the group fixpoints. *)
let toy () =
  let b = Tree.Builder.create ~n_agents:2 in
  let s0 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i"; "x0" ]) in
  let s1 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i"; "x1" ]) in
  List.iter
    (fun (parent, bit) ->
      ignore
        (Tree.Builder.add_child b ~parent ~prob:Q.one ~acts:[| "env"; "go"; "noop" |]
           (Gstate.of_labels "e" [ "done"; bit ])))
    [ (s0, "x0"); (s1, "x1") ];
  Tree.Builder.finalize b

let valuation atom g =
  match atom with
  | "x1" -> Gstate.local g 1 = "x1"
  | "done" -> Gstate.local g 0 = "done"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Counter mechanics                                                   *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let c = Obs.counter "test.basics" in
  check_bool "same name, same counter" true (c == Obs.counter "test.basics");
  Obs.disable ();
  Obs.incr c;
  check_int "null sink: incr is a no-op" 0 (Obs.value c);
  with_metrics (fun () ->
      Obs.incr c;
      Obs.add c 4;
      check_int "enabled: counts" 5 (Obs.value c);
      check_int "lookup by name" 5 (Obs.counter_value "test.basics");
      check_int "unknown name reads 0" 0 (Obs.counter_value "test.no_such"));
  check_int "reset zeroes" 0 (Obs.value c)

let test_span_stats () =
  with_metrics (fun () ->
      let v = Obs.span "test.span" (fun () -> 41 + 1) in
      check_int "span returns value" 42 v;
      (try Obs.span "test.span" (fun () -> failwith "boom") with Failure _ -> ());
      match List.filter (fun (n, _, _) -> n = "test.span") (Obs.spans ()) with
      | [ (_, count, total) ] ->
        check_int "both calls recorded (incl. raising one)" 2 count;
        check_bool "total time non-negative" true (total >= 0.)
      | _ -> Alcotest.fail "span stat missing")

(* ------------------------------------------------------------------ *)
(* Memo-table counters on a formula with shared structure              *)
(* ------------------------------------------------------------------ *)

let test_memo_counters () =
  let tree = toy () in
  (* f = (x1 ∧ x1) ∧ K_0 (x1 ∧ x1): four distinct subformulas — x1,
     x1∧x1, K_0(x1∧x1), f — visited six times in total. *)
  let g = Formula.Atom "x1" in
  let gg = Formula.And (g, g) in
  let f = Formula.And (gg, Formula.Knows (0, gg)) in
  with_metrics (fun () ->
      ignore (Semantics.eval tree ~valuation f);
      let hits = Obs.counter_value "semantics.memo_hits" in
      let misses = Obs.counter_value "semantics.memo_misses" in
      check_int "misses = distinct subformulas" 4 misses;
      check_int "hits = shared visits" 2 hits;
      check_int "hits + misses = total subformula evaluations" 6 (hits + misses))

(* ------------------------------------------------------------------ *)
(* Fixpoint iteration counters are deterministic                       *)
(* ------------------------------------------------------------------ *)

let test_fixpoint_determinism () =
  let tree = toy () in
  let ck = Parser.parse "C[0,1] true" in
  let cb = Parser.parse "CB[0,1]>=1/2 x1" in
  let iters formula =
    with_metrics (fun () ->
        ignore (Semantics.eval tree ~valuation formula);
        ( Obs.counter_value "semantics.gfp_iters.common_knowledge",
          Obs.counter_value "semantics.gfp_iters.common_belief",
          Obs.counter_value "semantics.gfp_iters" ))
  in
  let ck1 = iters ck and ck2 = iters ck in
  check_bool "C iteration counts repeat exactly" true (ck1 = ck2);
  let cb1 = iters cb and cb2 = iters cb in
  check_bool "CB iteration counts repeat exactly" true (cb1 = cb2);
  let ck_iters, _, total_ck = ck1 in
  check_bool "C evaluation iterates at least once" true (ck_iters >= 1);
  check_int "total = per-operator sum (C)" total_ck ck_iters;
  let _, cb_iters, total_cb = cb1 in
  check_bool "CB evaluation iterates at least once" true (cb_iters >= 1);
  check_int "total = per-operator sum (CB)" total_cb cb_iters

(* ------------------------------------------------------------------ *)
(* Trace sink emits valid Chrome trace_event JSON                      *)
(* ------------------------------------------------------------------ *)

let test_trace_file () =
  let file = Filename.temp_file "pak_obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Sys.remove file)
    (fun () ->
      Obs.trace_to file;
      check_bool "trace_to implies enabled" true (Obs.enabled ());
      check_bool "tracing is on" true (Obs.tracing ());
      let tree = toy () in
      ignore (Semantics.eval tree ~valuation (Parser.parse "B[0]>=1/2 x1"));
      Obs.trace_stop ();
      check_bool "tracing stopped" false (Obs.tracing ());
      match Obs.validate_trace_file file with
      | Ok s ->
        check_bool "trace has events" true (s.Obs.trace_events > 0);
        check_bool "trace has complete span events" true (s.Obs.trace_complete > 0);
        check_bool "trace has counter samples" true (s.Obs.trace_counter_samples > 0);
        check_bool "trace has gc heap-lane samples" true (s.Obs.trace_gc_samples > 0);
        check_bool "trace has at least one tid lane" true (s.Obs.trace_lanes >= 1)
      | Error msg -> Alcotest.fail ("emitted trace rejected: " ^ msg))

let test_validate_rejects_garbage () =
  let reject content =
    let file = Filename.temp_file "pak_obs_bad" ".json" in
    let ch = open_out file in
    output_string ch content;
    close_out ch;
    let r = Obs.validate_trace_file file in
    Sys.remove file;
    match r with Ok _ -> false | Error _ -> true
  in
  check_bool "not JSON" true (reject "[{");
  check_bool "not an array" true (reject "{\"a\":1}");
  check_bool "event not an object" true (reject "[1,2]");
  check_bool "event missing ph" true (reject "[{\"name\":\"x\",\"ts\":0}]");
  check_bool "event missing pid/tid" true
    (reject "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0.5,\"dur\":1}]");
  check_bool "complete event missing dur" true
    (reject "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0.5,\"pid\":1,\"tid\":0}]");
  check_bool "counter sample missing args.value" true
    (reject "[{\"name\":\"c\",\"ph\":\"C\",\"ts\":0.5,\"pid\":1,\"tid\":0,\"args\":{}}]");
  check_bool "accepts a valid complete event" false
    (reject "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0.5,\"dur\":1,\"pid\":1,\"tid\":0}]");
  check_bool "accepts a valid counter sample" false
    (reject
       "[{\"name\":\"c\",\"ph\":\"C\",\"ts\":0.5,\"pid\":1,\"tid\":0,\"args\":{\"value\":3}}]");
  (* gc.* heap lanes are held to a stricter contract: integral,
     non-negative samples. A non-gc lane may carry a fractional value. *)
  check_bool "gc lane with fractional sample" true
    (reject
       "[{\"name\":\"gc.minor_words\",\"ph\":\"C\",\"ts\":0.5,\"pid\":1,\"tid\":0,\"args\":\
        {\"value\":3.5}}]");
  check_bool "gc lane with negative sample" true
    (reject
       "[{\"name\":\"gc.heap_words\",\"ph\":\"C\",\"ts\":0.5,\"pid\":1,\"tid\":0,\"args\":\
        {\"value\":-1}}]");
  check_bool "accepts a valid gc lane sample" false
    (reject
       "[{\"name\":\"gc.minor_words\",\"ph\":\"C\",\"ts\":0.5,\"pid\":1,\"tid\":0,\"args\":\
        {\"value\":4096}}]");
  check_bool "non-gc lane may carry a fractional value" false
    (reject "[{\"name\":\"c\",\"ph\":\"C\",\"ts\":0.5,\"pid\":1,\"tid\":0,\"args\":{\"value\":0.5}}]")

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let prop_bucket_partition =
  QCheck.Test.make ~count:500 ~name:"every int lands in exactly one histogram bucket"
    QCheck.(oneof [ int; int_range (-4) 70; map (fun i -> (1 lsl i) - 1) (int_range 1 61) ])
    (fun v ->
      let b = Obs.bucket_of v in
      0 <= b && b < Obs.n_buckets
      && Obs.bucket_lo b <= max v 0
      && max v 0 <= Obs.bucket_hi b
      && (* no other bucket contains v *)
      List.for_all
        (fun j -> j = b || not (Obs.bucket_lo j <= max v 0 && max v 0 <= Obs.bucket_hi j))
        (List.init Obs.n_buckets Fun.id))

let prop_histogram_merge =
  QCheck.Test.make ~count:100
    ~name:"merge of two histograms = histogram of concatenated samples"
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (xs, ys) ->
      let fill name samples =
        let h = Obs.histogram name in
        List.iter (Obs.record h) samples;
        h
      in
      with_metrics (fun () ->
          let a = fill "test.merge_a" xs
          and b = fill "test.merge_b" ys
          and c = fill "test.merge_c" (xs @ ys) in
          Obs.merge_counts (Obs.histogram_counts a) (Obs.histogram_counts b)
          = Obs.histogram_counts c))

let test_histogram_basics () =
  let h = Obs.histogram "test.hist" in
  Obs.disable ();
  Obs.record h 5;
  check_int "null sink: record is a no-op" 0 (Obs.total_count (Obs.histogram_counts h));
  with_metrics (fun () ->
      List.iter (Obs.record h) [ 1; 2; 3; 500; 0; -7 ];
      let counts = Obs.histogram_counts h in
      check_int "six samples" 6 (Obs.total_count counts);
      check_int "non-positive samples share bucket 0" 2 counts.(0);
      check_int "1 in bucket 1" 1 counts.(Obs.bucket_of 1);
      check_int "500 in its own bucket" 1 counts.(Obs.bucket_of 500);
      check_bool "p99 >= p50" true (Obs.percentile counts 0.99 >= Obs.percentile counts 0.5);
      check_bool "p50 positive" true (Obs.percentile counts 0.5 > 0.));
  check_int "reset zeroes buckets" 0 (Obs.total_count (Obs.histogram_counts h))

let test_span_feeds_histogram () =
  with_metrics (fun () ->
      for _ = 1 to 5 do
        Obs.span "test.span_hist" (fun () -> Sys.opaque_identity (List.init 100 Fun.id))
        |> ignore
      done;
      match List.assoc_opt "test.span_hist" (Obs.histograms ()) with
      | None -> Alcotest.fail "span did not create its duration histogram"
      | Some counts -> check_int "one sample per span call" 5 (Obs.total_count counts))

(* ------------------------------------------------------------------ *)
(* Hierarchical span tree                                              *)
(* ------------------------------------------------------------------ *)

let test_span_tree () =
  with_metrics (fun () ->
      for _ = 1 to 3 do
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () -> ());
            Obs.span "inner" (fun () -> ()))
      done;
      (try Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> failwith "boom"))
       with Failure _ -> ());
      match Obs.span_tree () with
      | [ root ] ->
        check_bool "root is outer" true (root.Obs.sn_name = "outer");
        check_int "outer called 4 times (incl. the raising one)" 4 root.Obs.sn_count;
        (match root.Obs.sn_children with
         | [ child ] ->
           check_bool "child is inner" true (child.Obs.sn_name = "inner");
           check_int "inner called 7 times under outer" 7 child.Obs.sn_count;
           check_bool "paths are outermost-first" true
             (child.Obs.sn_path = [ "outer"; "inner" ]);
           check_bool "child inclusive <= parent inclusive" true
             (child.Obs.sn_total <= root.Obs.sn_total +. 1e-9)
         | cs -> Alcotest.fail (Printf.sprintf "expected 1 child, got %d" (List.length cs)));
        check_bool "self <= inclusive" true (root.Obs.sn_self <= root.Obs.sn_total +. 1e-9);
        check_bool "self >= 0" true (root.Obs.sn_self >= 0.)
      | roots -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots)))

let rec check_self_invariant (n : Obs.span_node) =
  n.Obs.sn_self >= 0.
  && n.Obs.sn_self <= n.Obs.sn_total +. 1e-9
  && List.for_all check_self_invariant n.Obs.sn_children

let test_span_tree_engine () =
  let tree = toy () in
  with_metrics (fun () ->
      ignore (Semantics.eval tree ~valuation (Parser.parse "K[0] (x1 & x1)"));
      let forest = Obs.span_tree () in
      check_bool "engine run produces a span forest" true (forest <> []);
      check_bool "self-time invariant holds on every node" true
        (List.for_all check_self_invariant forest))

(* ------------------------------------------------------------------ *)
(* Allocation attribution                                              *)
(* ------------------------------------------------------------------ *)

(* ~150k minor words (50k boxed pairs) the optimizer cannot elide. *)
let alloc_work () =
  let acc = ref 0 in
  for i = 1 to 50_000 do
    let pair = Sys.opaque_identity (i, i + 1) in
    acc := !acc + fst pair
  done;
  !acc

let test_span_alloc () =
  with_metrics (fun () ->
      ignore (Obs.span "test.alloc" alloc_work);
      (match
         List.find_opt (fun (n, _, _) -> n = "test.alloc") (Obs.span_allocs ())
       with
       | None -> Alcotest.fail "allocating span missing from span_allocs"
       | Some (_, minor, major) ->
         check_bool "allocating span records > 100k minor words" true (minor > 100_000.);
         check_bool "major words non-negative" true (major >= 0.));
      (* The kill switch zeroes attribution without touching stats. *)
      Obs.set_track_allocations false;
      Fun.protect
        ~finally:(fun () -> Obs.set_track_allocations true)
        (fun () ->
          ignore (Obs.span "test.alloc_off" alloc_work);
          match
            List.find_opt (fun (n, _, _) -> n = "test.alloc_off") (Obs.span_allocs ())
          with
          | None -> Alcotest.fail "kill-switch span missing from span_allocs"
          | Some (_, minor, major) ->
            check_bool "kill switch: zero minor words" true (minor = 0.);
            check_bool "kill switch: zero major words" true (major = 0.);
            check_bool "kill switch: calls still counted" true
              (List.exists (fun (n, c, _) -> n = "test.alloc_off" && c = 1) (Obs.spans ()))))

let rec check_alloc_invariant (n : Obs.span_node) =
  n.Obs.sn_self_minor_aw >= 0.
  && n.Obs.sn_self_minor_aw <= n.Obs.sn_minor_aw +. 1e-9
  && n.Obs.sn_self_major_aw >= 0.
  && n.Obs.sn_self_major_aw <= n.Obs.sn_major_aw +. 1e-9
  && List.for_all check_alloc_invariant n.Obs.sn_children

(* The acceptance bar for span attribution: self words summed over the
   tree (= the roots' inclusive words, telescoping) account for the
   process's minor-word delta to within 10%. What escapes is only the
   instrumentation's own allocation at span boundaries. *)
let test_alloc_coverage () =
  with_metrics (fun () ->
      let mw0 = Gc.minor_words () in
      ignore
        (Obs.span "cov.outer" (fun () ->
             ignore (Obs.span "cov.inner" alloc_work);
             alloc_work ()));
      let delta = Gc.minor_words () -. mw0 in
      let forest = Obs.span_tree () in
      let attributed = List.fold_left (fun acc n -> acc +. n.Obs.sn_minor_aw) 0. forest in
      check_bool "alloc self/inclusive invariant holds on every node" true
        (List.for_all check_alloc_invariant forest);
      check_bool "inner span saw its own allocation" true
        (List.exists
           (fun n ->
             List.exists (fun c -> c.Obs.sn_minor_aw > 100_000.) n.Obs.sn_children)
           forest);
      check_bool
        (Printf.sprintf "spans attribute >= 90%% of process minor words (%.0f of %.0f)"
           attributed delta)
        true
        (delta > 0. && Float.abs ((attributed /. delta) -. 1.) <= 0.1))

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let test_gauges () =
  Obs.register_gauges (fun () -> [ ("test.gauge", 0.25) ]);
  check_bool "registered gauge is polled" true
    (List.assoc_opt "test.gauge" (Obs.gauges ()) = Some 0.25)

let test_gc_gauges () =
  let g = Obs.gauges () in
  List.iter
    (fun k ->
      match List.assoc_opt k g with
      | None -> Alcotest.fail ("built-in gc gauge missing: " ^ k)
      | Some v -> check_bool (k ^ " is non-negative") true (v >= 0.))
    [ "gc.minor_words"; "gc.major_words"; "gc.promoted_words"; "gc.minor_collections";
      "gc.major_collections"; "gc.compactions"; "gc.heap_words"; "gc.top_heap_words" ];
  (* Cumulative gc gauges read as deltas since reset: allocating then
     resetting brings gc.minor_words back near zero. *)
  ignore (alloc_work ());
  let before = List.assoc "gc.minor_words" (Obs.gauges ()) in
  check_bool "allocation shows up in gc.minor_words" true (before > 100_000.);
  Obs.reset ();
  let after = List.assoc "gc.minor_words" (Obs.gauges ()) in
  check_bool "reset re-bases the gc gauges" true (after < before)

(* ------------------------------------------------------------------ *)
(* Snapshots and diffing                                               *)
(* ------------------------------------------------------------------ *)

let snapshot_of_toy_run () =
  let tree = toy () in
  with_metrics (fun () ->
      ignore (Semantics.eval tree ~valuation (Parser.parse "CB[0,1]>=1/2 x1"));
      Obs.Snapshot.capture ())

let test_snapshot_roundtrip () =
  let s = snapshot_of_toy_run () in
  check_int "snapshot carries the schema version" Obs.Snapshot.schema_version
    s.Obs.Snapshot.version;
  check_bool "snapshot has counters" true (s.Obs.Snapshot.counters <> []);
  check_bool "snapshot has histograms" true (s.Obs.Snapshot.histograms <> []);
  check_bool "snapshot has a span tree" true (s.Obs.Snapshot.spans <> []);
  match Obs.Snapshot.of_json_string (Obs.Snapshot.to_json s) with
  | Error msg -> Alcotest.fail ("snapshot JSON does not parse back: " ^ msg)
  | Ok s' ->
    check_bool "serialize/parse round-trip is exact" true (s = s');
    (* A second trip through text must be byte-stable. *)
    check_bool "to_json is stable" true
      (String.equal (Obs.Snapshot.to_json s) (Obs.Snapshot.to_json s'))

let test_snapshot_file_roundtrip () =
  let file = Filename.temp_file "pak_obs_snap" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let s = snapshot_of_toy_run () in
      Obs.Snapshot.write file s;
      match Obs.Snapshot.of_file file with
      | Ok s' -> check_bool "file round-trip is exact" true (s = s')
      | Error msg -> Alcotest.fail ("written snapshot rejected: " ^ msg))

let test_diff_fixtures () =
  let base = snapshot_of_toy_run () in
  let fresh = snapshot_of_toy_run () in
  (* Same deterministic workload twice: counters, call counts and
     sample totals agree; a generous tolerance absorbs timing noise. *)
  let cfg = { Obs.Diff.default with Obs.Diff.time_tol = 1000.; time_floor = 10. } in
  (match Obs.Diff.diff cfg ~baseline:base ~fresh with
   | [] -> ()
   | vs -> Alcotest.fail ("identical workload should pass: " ^ String.concat "; " vs));
  (* Counter regression: any perturbed counter must be reported. *)
  let perturbed =
    { base with
      Obs.Snapshot.counters =
        List.map
          (fun (k, v) -> if k = "semantics.memo_misses" then (k, v + 1) else (k, v))
          base.Obs.Snapshot.counters
    }
  in
  (match Obs.Diff.diff cfg ~baseline:perturbed ~fresh with
   | [] -> Alcotest.fail "counter regression not detected"
   | vs ->
     let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
       at 0
     in
     check_bool "report names the counter" true
       (List.exists (fun v -> contains v "semantics.memo_misses") vs));
  (* The allowlist silences exactly that counter. *)
  (match
     Obs.Diff.diff
       { cfg with Obs.Diff.allow = [ "semantics.memo_misses" ] }
       ~baseline:perturbed ~fresh
   with
   | [] -> ()
   | vs -> Alcotest.fail ("allowlisted counter still reported: " ^ String.concat "; " vs));
  (* Wall-time regression: inflate a span time far past tolerance. *)
  let slow =
    { base with
      Obs.Snapshot.spans =
        List.map
          (fun (n : Obs.Snapshot.node) -> { n with Obs.Snapshot.total_s = n.total_s +. 100. })
          base.Obs.Snapshot.spans
    }
  in
  let tight = { Obs.Diff.default with Obs.Diff.time_tol = 0.5; time_floor = 0.001 } in
  (match Obs.Diff.diff tight ~baseline:base ~fresh:slow with
   | [] -> Alcotest.fail "wall-time regression not detected"
   | _ -> ());
  (* Schema mismatch is always a violation. *)
  match Obs.Diff.diff cfg ~baseline:{ base with Obs.Snapshot.version = 999 } ~fresh with
  | [] -> Alcotest.fail "schema version mismatch not detected"
  | _ -> ()

(* The alloc-regression gate: a synthetic 2x allocation regression in a
   hot span must be caught under --alloc-tol, and only there — same
   perturb-and-diff pattern as the time-regression fixtures above. *)
let test_diff_alloc_regression () =
  let snap () =
    with_metrics (fun () ->
        ignore (Obs.span "hot" alloc_work);
        Obs.Snapshot.capture ())
  in
  let base = snap () in
  let cfg =
    { Obs.Diff.default with
      Obs.Diff.time_tol = 1000.;
      time_floor = 10.;
      alloc_tol = 0.5;
      alloc_floor = 1000.
    }
  in
  let regressed =
    { base with
      Obs.Snapshot.spans =
        List.map
          (fun (n : Obs.Snapshot.node) ->
            { n with
              Obs.Snapshot.minor_aw = n.Obs.Snapshot.minor_aw *. 2.;
              Obs.Snapshot.self_minor_aw = n.Obs.Snapshot.self_minor_aw *. 2.
            })
          base.Obs.Snapshot.spans
    }
  in
  (* Gauges/counters are untouched, so the only possible violation is
     the span allocation line. *)
  (match Obs.Diff.diff cfg ~baseline:base ~fresh:regressed with
   | [] -> Alcotest.fail "2x allocation regression not detected"
   | vs ->
     let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
       at 0
     in
     check_bool "report names the span and the words" true
       (List.exists (fun v -> contains v "hot" && contains v "words") vs));
  (* Within tolerance (1.4x < 1 + 0.5) passes. *)
  let mild =
    { base with
      Obs.Snapshot.spans =
        List.map
          (fun (n : Obs.Snapshot.node) ->
            { n with Obs.Snapshot.minor_aw = n.Obs.Snapshot.minor_aw *. 1.4 })
          base.Obs.Snapshot.spans
    }
  in
  (match Obs.Diff.diff cfg ~baseline:base ~fresh:mild with
   | [] -> ()
   | vs -> Alcotest.fail ("1.4x within alloc-tol 50% still reported: " ^ String.concat "; " vs));
  (* The allowlist silences the regressed span. *)
  match
    Obs.Diff.diff { cfg with Obs.Diff.allow = [ "hot" ] } ~baseline:base ~fresh:regressed
  with
  | [] -> ()
  | vs -> Alcotest.fail ("allowlisted span still reported: " ^ String.concat "; " vs)

(* Committed v1 fixture (the pre-alloc baseline format): must keep
   parsing, with the alloc columns defaulting to zero. *)
let test_v1_fixture_parses () =
  match Obs.Snapshot.of_file "fixtures/snapshot_v1.json" with
  | Error msg -> Alcotest.fail ("v1 fixture rejected: " ^ msg)
  | Ok s ->
    check_int "fixture is schema v1" 1 s.Obs.Snapshot.version;
    check_bool "fixture has counters" true (s.Obs.Snapshot.counters <> []);
    check_bool "fixture has a span tree" true (s.Obs.Snapshot.spans <> []);
    let rec zero_alloc (n : Obs.Snapshot.node) =
      n.Obs.Snapshot.minor_aw = 0.
      && n.Obs.Snapshot.self_minor_aw = 0.
      && n.Obs.Snapshot.major_aw = 0.
      && n.Obs.Snapshot.self_major_aw = 0.
      && List.for_all zero_alloc n.Obs.Snapshot.children
    in
    check_bool "absent alloc fields decode as zero" true
      (List.for_all zero_alloc s.Obs.Snapshot.spans)

(* Random v2 snapshots with nonzero alloc fields round-trip through
   JSON exactly (all numbers integral, so %.17g is trivially exact). *)
let prop_snapshot_v2_roundtrip =
  let open QCheck in
  let gen =
    let open Gen in
    let fnum = map float_of_int (int_bound 1_000_000) in
    let leaf name =
      int_bound 1000 >>= fun count ->
      fnum >>= fun total_s ->
      fnum >>= fun self_s ->
      fnum >>= fun minor_aw ->
      fnum >>= fun self_minor_aw ->
      fnum >>= fun major_aw ->
      fnum >>= fun self_major_aw ->
      return
        { Obs.Snapshot.name;
          count;
          total_s;
          self_s;
          minor_aw;
          self_minor_aw;
          major_aw;
          self_major_aw;
          children = []
        }
    in
    let node name =
      leaf name >>= fun n ->
      list_size (int_bound 3) (leaf "child") >>= fun children ->
      return { n with Obs.Snapshot.children } in
    list_size (int_bound 3) (node "root") >>= fun spans ->
    small_nat >>= fun cv ->
    fnum >>= fun gv ->
    return
      { Obs.Snapshot.version = Obs.Snapshot.schema_version;
        counters = [ ("test.counter", cv) ];
        gauges = [ ("test.gauge", gv) ];
        histograms = [];
        spans
      }
  in
  Test.make ~count:100 ~name:"v2 snapshots with alloc fields round-trip through JSON"
    (make gen) (fun s ->
      match Obs.Snapshot.of_json_string (Obs.Snapshot.to_json s) with
      | Ok s' -> s = s'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Instrumentation never changes results                               *)
(* ------------------------------------------------------------------ *)

let facts_agree tree a b =
  Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
      acc && Fact.holds a ~run ~time = Fact.holds b ~run ~time)

let prop_instrumentation_transparent =
  QCheck.Test.make ~count:60 ~name:"metrics on/off leaves eval and measure bit-identical"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let tree = Gen.tree seed in
      let formulas =
        [ Parser.parse "B[0]>=1/2 a0_x | F a0_x";
          Parser.parse "K[0] true & CB[0]>=1/3 true";
          Formula.Believes (0, Formula.Geq, Q.of_ints 1 3, Formula.Atom "a0_x")
        ]
      in
      let valuation atom g =
        String.length atom > 3 && atom.[0] = 'a' && atom.[1] = '0' && atom.[2] = '_'
        && Gstate.local g 0 = String.sub atom 3 (String.length atom - 3)
      in
      Obs.disable ();
      let plain = List.map (Semantics.eval tree ~valuation) formulas in
      let plain_mu =
        List.map (fun f -> Semantics.probability tree ~valuation f) formulas
      in
      (* The instrumented run exercises every PR-4 surface on top of
         the counters: span nesting (histograms + span tree feed off
         it), a histogram record, and a full snapshot capture. None of
         it may perturb the computed facts or measures. *)
      let instrumented, instr_mu =
        with_metrics (fun () ->
            let r =
              Obs.span "transparency.outer" (fun () ->
                  Obs.span "transparency.inner" (fun () ->
                      Obs.record (Obs.histogram "transparency.h") seed;
                      ( List.map (Semantics.eval tree ~valuation) formulas,
                        List.map (fun f -> Semantics.probability tree ~valuation f) formulas )))
            in
            ignore (Obs.Snapshot.to_json (Obs.Snapshot.capture ()));
            r)
      in
      List.for_all2 (facts_agree tree) plain instrumented
      && List.for_all2 Q.equal plain_mu instr_mu)

(* ------------------------------------------------------------------ *)
(* Snapshot.diff_capture                                               *)
(* ------------------------------------------------------------------ *)

let test_diff_capture_attribution () =
  with_metrics (fun () ->
      let c = Obs.counter "diffcap.inner" in
      let before_only = Obs.counter "diffcap.before" in
      Obs.add before_only 7;
      Obs.add c 3;
      let x, d =
        Obs.Snapshot.diff_capture (fun () ->
            Obs.add c 5;
            Obs.record (Obs.histogram "diffcap.h") 1_000;
            "result")
      in
      check_bool "value passes through" true (x = "result");
      check_int "only the inner bumps" 5
        (match List.assoc_opt "diffcap.inner" d.Obs.Snapshot.counters with
         | Some n -> n
         | None -> 0);
      check_bool "counters untouched before the scope are dropped" true
        (List.assoc_opt "diffcap.before" d.Obs.Snapshot.counters = None);
      check_int "no global reset: totals still accumulate" 8 (Obs.value c);
      check_bool "inner histogram records appear" true
        (match List.assoc_opt "diffcap.h" d.Obs.Snapshot.histograms with
         | Some buckets -> Array.fold_left ( + ) 0 buckets = 1
         | None -> false))

(* At --jobs 1 every request runs on the captured domain, so a
   per-request delta must never carry span rows from a surrounding or
   preceding request: diff_capture excludes the (cumulative,
   cross-request) span tree entirely rather than misattributing it. *)
let test_diff_capture_no_span_leakage () =
  with_metrics (fun () ->
      Obs.span "diffcap.outer" (fun () ->
          let _, d =
            Obs.Snapshot.diff_capture (fun () ->
                Obs.span "diffcap.request" (fun () -> ignore (Sys.opaque_identity 1)))
          in
          check_bool "no span rows in a delta" true (d.Obs.Snapshot.spans = []));
      let full = Obs.Snapshot.capture () in
      check_bool "spans still reach a full snapshot" true
        (List.exists
           (fun (n : Obs.Snapshot.node) -> n.Obs.Snapshot.name = "diffcap.outer")
           full.Obs.Snapshot.spans))

(* ------------------------------------------------------------------ *)
(* Rolling time-series (Series)                                        *)
(* ------------------------------------------------------------------ *)

let test_series_deltas_telescope () =
  with_metrics (fun () ->
      let c = Obs.counter "series.c" in
      let h = Obs.histogram "series.h" in
      let s = Obs.Series.create ~capacity:8 in
      check_int "capacity" 8 (Obs.Series.capacity s);
      check_int "empty" 0 (Obs.Series.length s);
      Obs.add c 3;
      Obs.record h 10;
      let a = Obs.Series.record s in
      Obs.add c 4;
      let b = Obs.Series.record s in
      let del sample = List.assoc_opt "series.c" sample.Obs.Series.s_counters in
      check_bool "first delta counts from create" true (del a = Some 3);
      check_bool "second delta counts from the first record" true (del b = Some 4);
      check_int "seqs are 0-based and consecutive" 1
        (b.Obs.Series.s_seq - a.Obs.Series.s_seq);
      check_bool "histogram totals are deltas too" true
        (List.assoc_opt "series.h" a.Obs.Series.s_hist_totals = Some 1
        && List.assoc_opt "series.h" b.Obs.Series.s_hist_totals = None);
      (* An idle interval records no counter rows: zero deltas drop. *)
      let idle = Obs.Series.record s in
      check_bool "zero rows dropped" true
        (List.assoc_opt "series.c" idle.Obs.Series.s_counters = None);
      check_int "three samples held" 3 (Obs.Series.length s))

let test_series_ring_eviction () =
  with_metrics (fun () ->
      let c = Obs.counter "series.ring" in
      let s = Obs.Series.create ~capacity:3 in
      for i = 1 to 7 do
        Obs.add c i;
        ignore (Obs.Series.record s)
      done;
      check_int "length is capped" 3 (Obs.Series.length s);
      let held = Obs.Series.samples s in
      check_bool "latest window, oldest first" true
        (List.map (fun x -> x.Obs.Series.s_seq) held = [ 4; 5; 6 ]);
      (* The basis advanced on every record, evicted or not: the held
         deltas are the original per-record increments. *)
      check_bool "deltas unaffected by eviction" true
        (List.map (fun x -> List.assoc "series.ring" x.Obs.Series.s_counters) held
        = [ 5; 6; 7 ]))

let test_series_capacity_validation () =
  check_bool "capacity 0 rejected" true
    (match Obs.Series.create ~capacity:0 with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                              *)
(* ------------------------------------------------------------------ *)

let om_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_openmetrics_render_checks () =
  let s = snapshot_of_toy_run () in
  let text = Obs.Openmetrics.render s in
  (match Obs.Openmetrics.check text with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("render output rejected by check: " ^ e));
  check_bool "counters become pak_*_total samples" true
    (om_contains text "pak_semantics_memo_misses_total");
  check_bool "TYPE directives present" true (om_contains text "# TYPE ");
  check_bool "histograms expose cumulative buckets" true
    (om_contains text "_bucket{le=\"");
  check_bool "ends with the EOF terminator" true
    (let n = String.length text in
     n >= 6 && String.sub text (n - 6) 6 = "# EOF\n");
  (* Byte-stable: rendering the same snapshot twice is identical. *)
  check_bool "render is deterministic" true
    (String.equal text (Obs.Openmetrics.render s))

let test_openmetrics_sanitizes_names () =
  (* Hostile metric names (spaces, braces, quotes, newlines) must come
     out as legal OpenMetrics names — this is what the fuzzer drives. *)
  with_metrics (fun () ->
      Obs.add (Obs.counter "evil name{x=\"1\"}") 3;
      Obs.add (Obs.counter "semi;colon\nnewline") 1;
      let text = Obs.Openmetrics.render (Obs.Snapshot.capture ()) in
      match Obs.Openmetrics.check text with
      | Ok () -> check_bool "sanitized name appears" true (om_contains text "pak_evil_name")
      | Error e -> Alcotest.fail ("sanitized exposition rejected: " ^ e))

let test_openmetrics_check_rejects () =
  let bad text =
    match Obs.Openmetrics.check text with Ok () -> false | Error _ -> true
  in
  check_bool "missing EOF" true (bad "pak_x_total 1\n");
  check_bool "illegal metric name" true (bad "9bad 1\n# EOF\n");
  check_bool "non-numeric value" true (bad "pak_x_total banana\n# EOF\n");
  check_bool "unbalanced label block" true (bad "pak_x_total{le=\"1\" 1\n# EOF\n");
  check_bool "text after EOF" true (bad "# EOF\npak_x_total 1\n")

(* ------------------------------------------------------------------ *)
(* Flamegraph export                                                   *)
(* ------------------------------------------------------------------ *)

let test_flamegraph_collapsed_stacks () =
  with_metrics (fun () ->
      check_bool "no spans, empty output" true (Obs.flamegraph () = "");
      for _ = 1 to 3 do
        Obs.span "flame.outer" (fun () ->
            Obs.span "flame.inner" (fun () -> ignore (Sys.opaque_identity (alloc_work ()))))
      done;
      let lines text = String.split_on_char '\n' (String.trim text) in
      let parse line =
        match String.rindex_opt line ' ' with
        | Some i ->
          ( String.sub line 0 i,
            int_of_string (String.sub line (i + 1) (String.length line - i - 1)) )
        | None -> Alcotest.fail ("malformed collapsed-stack line: " ^ line)
      in
      let time_rows = List.map parse (lines (Obs.flamegraph ())) in
      check_bool "semicolon-joined paths, outermost first" true
        (List.mem_assoc "flame.outer;flame.inner" time_rows);
      check_bool "weights are non-negative" true
        (List.for_all (fun (_, w) -> w >= 0) time_rows);
      check_bool "paths are sorted" true
        (let ps = List.map fst time_rows in
         ps = List.sort compare ps);
      let alloc_rows = List.map parse (lines (Obs.flamegraph ~weight:Obs.Flame_alloc ())) in
      check_bool "alloc weight: the allocating leaf dominates" true
        (match List.assoc_opt "flame.outer;flame.inner" alloc_rows with
         | Some w -> w > 100_000
         | None -> false))

(* ------------------------------------------------------------------ *)
(* Gc gauge sampling interval + trace context                          *)
(* ------------------------------------------------------------------ *)

let test_gauge_sample_interval () =
  let d = Obs.gauge_sample_interval () in
  Fun.protect
    ~finally:(fun () -> Obs.set_gauge_sample_interval d)
    (fun () ->
      Obs.set_gauge_sample_interval 1;
      check_int "interval readable" 1 (Obs.gauge_sample_interval ());
      check_bool "interval 0 rejected" true
        (match Obs.set_gauge_sample_interval 0 with
         | exception Invalid_argument _ -> true
         | () -> false);
      check_int "rejected set leaves the interval" 1 (Obs.gauge_sample_interval ()))

let test_trace_context () =
  check_bool "no ambient context" true (Obs.trace_context () = None);
  let seen =
    Obs.with_trace_context "deadbeefdeadbeef" (fun () ->
        let outer = Obs.trace_context () in
        let inner =
          Obs.with_trace_context "cafe0000cafe0000" (fun () -> Obs.trace_context ())
        in
        (outer, inner, Obs.trace_context ()))
  in
  check_bool "context installed, nested and restored" true
    (seen
    = (Some "deadbeefdeadbeef", Some "cafe0000cafe0000", Some "deadbeefdeadbeef"));
  check_bool "context cleared at exit" true (Obs.trace_context () = None);
  (* The context survives span detachment and lands in the trace file
     as an args.trace field on the span's X event. *)
  let file = Filename.temp_file "pak_obs_ctx" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Sys.remove file)
    (fun () ->
      Obs.trace_to file;
      Obs.with_trace_context "feedface00000001" (fun () ->
          Obs.span_detach (fun () ->
              Obs.span "ctx.request" (fun () -> ignore (Sys.opaque_identity 1))));
      Obs.trace_stop ();
      let text = In_channel.with_open_bin file In_channel.input_all in
      check_bool "trace event carries the ambient trace id" true
        (om_contains text "\"trace\":\"feedface00000001\""))

let qcheck_cases =
  List.map
    (QCheck_alcotest.to_alcotest ~verbose:false)
    [ prop_instrumentation_transparent; prop_bucket_partition; prop_histogram_merge;
      prop_snapshot_v2_roundtrip ]

let () =
  Alcotest.run "pak_obs"
    [ ( "counters",
        [ Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "spans" `Quick test_span_stats
        ] );
      ( "histograms",
        [ Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "span feeds histogram" `Quick test_span_feeds_histogram
        ] );
      ( "span tree",
        [ Alcotest.test_case "nesting and counts" `Quick test_span_tree;
          Alcotest.test_case "engine run invariant" `Quick test_span_tree_engine
        ] );
      ( "alloc",
        [ Alcotest.test_case "span attribution and kill switch" `Quick test_span_alloc;
          Alcotest.test_case "coverage of process minor words" `Quick test_alloc_coverage
        ] );
      ( "gauges",
        [ Alcotest.test_case "provider polled" `Quick test_gauges;
          Alcotest.test_case "built-in gc gauges" `Quick test_gc_gauges
        ] );
      ( "snapshot",
        [ Alcotest.test_case "json round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "file round-trip" `Quick test_snapshot_file_roundtrip;
          Alcotest.test_case "diff fixtures" `Quick test_diff_fixtures;
          Alcotest.test_case "alloc regression gate" `Quick test_diff_alloc_regression;
          Alcotest.test_case "v1 fixture parse-back" `Quick test_v1_fixture_parses;
          Alcotest.test_case "diff_capture attribution" `Quick test_diff_capture_attribution;
          Alcotest.test_case "diff_capture span leakage" `Quick
            test_diff_capture_no_span_leakage
        ] );
      ( "semantics",
        [ Alcotest.test_case "memo counters" `Quick test_memo_counters;
          Alcotest.test_case "fixpoint determinism" `Quick test_fixpoint_determinism
        ] );
      ( "trace",
        [ Alcotest.test_case "emit + validate" `Quick test_trace_file;
          Alcotest.test_case "validator rejects garbage" `Quick test_validate_rejects_garbage;
          Alcotest.test_case "gauge sample interval" `Quick test_gauge_sample_interval;
          Alcotest.test_case "trace context" `Quick test_trace_context
        ] );
      ( "series",
        [ Alcotest.test_case "deltas telescope" `Quick test_series_deltas_telescope;
          Alcotest.test_case "ring eviction" `Quick test_series_ring_eviction;
          Alcotest.test_case "capacity validation" `Quick test_series_capacity_validation
        ] );
      ( "openmetrics",
        [ Alcotest.test_case "render passes check" `Quick test_openmetrics_render_checks;
          Alcotest.test_case "hostile names sanitized" `Quick test_openmetrics_sanitizes_names;
          Alcotest.test_case "check rejects bad text" `Quick test_openmetrics_check_rejects
        ] );
      ( "flamegraph",
        [ Alcotest.test_case "collapsed stacks" `Quick test_flamegraph_collapsed_stacks ] );
      ("properties", qcheck_cases)
    ]
