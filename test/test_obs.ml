(* Tests for pak_obs and the instrumentation threaded through the
   checker/measure/constraint engines: counter identities on the
   Semantics memo table, determinism of fixpoint iteration counts, the
   trace sink's output format, and the core invariant that
   instrumentation never changes results (null sink or not). *)

open Pak_rational
open Pak_pps
open Pak_logic
module Obs = Pak_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [f] with metrics enabled and counters zeroed; always restore the
   null sink so tests cannot leak global state into each other. *)
let with_metrics f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* A three-node chain system with two agents: enough structure for
   knowledge, graded belief and the group fixpoints. *)
let toy () =
  let b = Tree.Builder.create ~n_agents:2 in
  let s0 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i"; "x0" ]) in
  let s1 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i"; "x1" ]) in
  List.iter
    (fun (parent, bit) ->
      ignore
        (Tree.Builder.add_child b ~parent ~prob:Q.one ~acts:[| "env"; "go"; "noop" |]
           (Gstate.of_labels "e" [ "done"; bit ])))
    [ (s0, "x0"); (s1, "x1") ];
  Tree.Builder.finalize b

let valuation atom g =
  match atom with
  | "x1" -> Gstate.local g 1 = "x1"
  | "done" -> Gstate.local g 0 = "done"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Counter mechanics                                                   *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let c = Obs.counter "test.basics" in
  check_bool "same name, same counter" true (c == Obs.counter "test.basics");
  Obs.disable ();
  Obs.incr c;
  check_int "null sink: incr is a no-op" 0 (Obs.value c);
  with_metrics (fun () ->
      Obs.incr c;
      Obs.add c 4;
      check_int "enabled: counts" 5 (Obs.value c);
      check_int "lookup by name" 5 (Obs.counter_value "test.basics");
      check_int "unknown name reads 0" 0 (Obs.counter_value "test.no_such"));
  check_int "reset zeroes" 0 (Obs.value c)

let test_span_stats () =
  with_metrics (fun () ->
      let v = Obs.span "test.span" (fun () -> 41 + 1) in
      check_int "span returns value" 42 v;
      (try Obs.span "test.span" (fun () -> failwith "boom") with Failure _ -> ());
      match List.filter (fun (n, _, _) -> n = "test.span") (Obs.spans ()) with
      | [ (_, count, total) ] ->
        check_int "both calls recorded (incl. raising one)" 2 count;
        check_bool "total time non-negative" true (total >= 0.)
      | _ -> Alcotest.fail "span stat missing")

(* ------------------------------------------------------------------ *)
(* Memo-table counters on a formula with shared structure              *)
(* ------------------------------------------------------------------ *)

let test_memo_counters () =
  let tree = toy () in
  (* f = (x1 ∧ x1) ∧ K_0 (x1 ∧ x1): four distinct subformulas — x1,
     x1∧x1, K_0(x1∧x1), f — visited six times in total. *)
  let g = Formula.Atom "x1" in
  let gg = Formula.And (g, g) in
  let f = Formula.And (gg, Formula.Knows (0, gg)) in
  with_metrics (fun () ->
      ignore (Semantics.eval tree ~valuation f);
      let hits = Obs.counter_value "semantics.memo_hits" in
      let misses = Obs.counter_value "semantics.memo_misses" in
      check_int "misses = distinct subformulas" 4 misses;
      check_int "hits = shared visits" 2 hits;
      check_int "hits + misses = total subformula evaluations" 6 (hits + misses))

(* ------------------------------------------------------------------ *)
(* Fixpoint iteration counters are deterministic                       *)
(* ------------------------------------------------------------------ *)

let test_fixpoint_determinism () =
  let tree = toy () in
  let ck = Parser.parse "C[0,1] true" in
  let cb = Parser.parse "CB[0,1]>=1/2 x1" in
  let iters formula =
    with_metrics (fun () ->
        ignore (Semantics.eval tree ~valuation formula);
        ( Obs.counter_value "semantics.gfp_iters.common_knowledge",
          Obs.counter_value "semantics.gfp_iters.common_belief",
          Obs.counter_value "semantics.gfp_iters" ))
  in
  let ck1 = iters ck and ck2 = iters ck in
  check_bool "C iteration counts repeat exactly" true (ck1 = ck2);
  let cb1 = iters cb and cb2 = iters cb in
  check_bool "CB iteration counts repeat exactly" true (cb1 = cb2);
  let ck_iters, _, total_ck = ck1 in
  check_bool "C evaluation iterates at least once" true (ck_iters >= 1);
  check_int "total = per-operator sum (C)" total_ck ck_iters;
  let _, cb_iters, total_cb = cb1 in
  check_bool "CB evaluation iterates at least once" true (cb_iters >= 1);
  check_int "total = per-operator sum (CB)" total_cb cb_iters

(* ------------------------------------------------------------------ *)
(* Trace sink emits valid Chrome trace_event JSON                      *)
(* ------------------------------------------------------------------ *)

let test_trace_file () =
  let file = Filename.temp_file "pak_obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Sys.remove file)
    (fun () ->
      Obs.trace_to file;
      check_bool "trace_to implies enabled" true (Obs.enabled ());
      check_bool "tracing is on" true (Obs.tracing ());
      let tree = toy () in
      ignore (Semantics.eval tree ~valuation (Parser.parse "B[0]>=1/2 x1"));
      Obs.trace_stop ();
      check_bool "tracing stopped" false (Obs.tracing ());
      match Obs.validate_trace_file file with
      | Ok n -> check_bool "trace has events" true (n > 0)
      | Error msg -> Alcotest.fail ("emitted trace rejected: " ^ msg))

let test_validate_rejects_garbage () =
  let reject content =
    let file = Filename.temp_file "pak_obs_bad" ".json" in
    let ch = open_out file in
    output_string ch content;
    close_out ch;
    let r = Obs.validate_trace_file file in
    Sys.remove file;
    match r with Ok _ -> false | Error _ -> true
  in
  check_bool "not JSON" true (reject "[{");
  check_bool "not an array" true (reject "{\"a\":1}");
  check_bool "event not an object" true (reject "[1,2]");
  check_bool "event missing ph" true (reject "[{\"name\":\"x\",\"ts\":0}]");
  check_bool "accepts a valid event" false
    (reject "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0.5,\"dur\":1}]")

(* ------------------------------------------------------------------ *)
(* Instrumentation never changes results                               *)
(* ------------------------------------------------------------------ *)

let facts_agree tree a b =
  Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
      acc && Fact.holds a ~run ~time = Fact.holds b ~run ~time)

let prop_instrumentation_transparent =
  QCheck.Test.make ~count:60 ~name:"metrics on/off leaves eval and measure bit-identical"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let tree = Gen.tree seed in
      let formulas =
        [ Parser.parse "B[0]>=1/2 a0_x | F a0_x";
          Parser.parse "K[0] true & CB[0]>=1/3 true";
          Formula.Believes (0, Formula.Geq, Q.of_ints 1 3, Formula.Atom "a0_x")
        ]
      in
      let valuation atom g =
        String.length atom > 3 && atom.[0] = 'a' && atom.[1] = '0' && atom.[2] = '_'
        && Gstate.local g 0 = String.sub atom 3 (String.length atom - 3)
      in
      Obs.disable ();
      let plain = List.map (Semantics.eval tree ~valuation) formulas in
      let plain_mu =
        List.map (fun f -> Semantics.probability tree ~valuation f) formulas
      in
      let instrumented, instr_mu =
        with_metrics (fun () ->
            ( List.map (Semantics.eval tree ~valuation) formulas,
              List.map (fun f -> Semantics.probability tree ~valuation f) formulas ))
      in
      List.for_all2 (facts_agree tree) plain instrumented
      && List.for_all2 Q.equal plain_mu instr_mu)

let qcheck_cases =
  List.map (QCheck_alcotest.to_alcotest ~verbose:false) [ prop_instrumentation_transparent ]

let () =
  Alcotest.run "pak_obs"
    [ ( "counters",
        [ Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "spans" `Quick test_span_stats
        ] );
      ( "semantics",
        [ Alcotest.test_case "memo counters" `Quick test_memo_counters;
          Alcotest.test_case "fixpoint determinism" `Quick test_fixpoint_determinism
        ] );
      ( "trace",
        [ Alcotest.test_case "emit + validate" `Quick test_trace_file;
          Alcotest.test_case "validator rejects garbage" `Quick test_validate_rejects_garbage
        ] );
      ("properties", qcheck_cases)
    ]
