(* Fuzz tests for the untrusted-input boundaries: Parser.parse_result
   and Tree_io.of_string_result must return Ok or a typed Error for
   every input — never raise, never overflow the stack, never hang.
   Three input sources: random byte strings, mutations of valid
   round-trip documents/formulas, and a committed regression corpus of
   inputs that (would) have crashed earlier versions. *)

open Pak_pps
open Pak_logic
open Pak_rational
module Error = Pak_guard.Error

let check_bool = Alcotest.(check bool)

(* The crash-free contract, as a reusable check: evaluates the
   boundary and reports any escaped exception as a counterexample. *)
let no_raise boundary input =
  match boundary input with
  | Ok _ | Error _ -> true
  | exception exn ->
    QCheck.Test.fail_reportf "boundary raised %s on %S" (Printexc.to_string exn) input

let parse_boundary s = Parser.parse_result s
let doc_boundary s = Tree_io.of_string_result s

(* ------------------------------------------------------------------ *)
(* Seed documents for mutation                                         *)
(* ------------------------------------------------------------------ *)

let toy () =
  let b = Tree.Builder.create ~n_agents:2 in
  let s0 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i"; "x0" ]) in
  let s1 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i"; "x1" ]) in
  List.iter
    (fun (parent, bit) ->
      ignore
        (Tree.Builder.add_child b ~parent ~prob:Q.one ~acts:[| "env"; "go"; "noop" |]
           (Gstate.of_labels "e" [ "done"; bit ])))
    [ (s0, "x0"); (s1, "x1") ];
  Tree.Builder.finalize b

let seed_doc = lazy (Tree_io.to_string (toy ()))

let seed_formulas =
  [ "K[0] (x1 -> B[1]>=3/4 done)";
    "CB[0,1]>=1/2 (done & !x1) <-> E[0,1] F done";
    "does[0](go) | G (p -> X q)"
  ]

(* Apply [n] random single edits (flip, insert, delete, duplicate a
   slice, truncate) to a string. Deterministic in the qcheck input. *)
let mutate rng_ints s =
  let buf = Buffer.create (String.length s) in
  Buffer.add_string buf s;
  let apply b k =
    let s = Buffer.contents b in
    let n = String.length s in
    if n = 0 then b
    else begin
      let b' = Buffer.create n in
      let pos = abs k mod n in
      (match abs (k / 7) mod 5 with
       | 0 ->
         (* flip one byte *)
         Buffer.add_string b' (String.sub s 0 pos);
         Buffer.add_char b' (Char.chr (abs (k / 3) mod 256));
         Buffer.add_string b' (String.sub s (pos + 1) (n - pos - 1))
       | 1 ->
         (* insert a structural byte *)
         let c = [| '('; ')'; '"'; '\\'; '-'; '/'; ' '; '\000' |].(abs (k / 3) mod 8) in
         Buffer.add_string b' (String.sub s 0 pos);
         Buffer.add_char b' c;
         Buffer.add_string b' (String.sub s pos (n - pos))
       | 2 ->
         (* delete one byte *)
         Buffer.add_string b' (String.sub s 0 pos);
         Buffer.add_string b' (String.sub s (pos + 1) (n - pos - 1))
       | 3 ->
         (* duplicate a slice *)
         let len = min (abs (k / 11) mod 32) (n - pos) in
         Buffer.add_string b' (String.sub s 0 (pos + len));
         Buffer.add_string b' (String.sub s pos (n - pos))
       | _ ->
         (* truncate *)
         Buffer.add_string b' (String.sub s 0 pos));
      b'
    end
  in
  Buffer.contents (List.fold_left apply buf rng_ints)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_parser_random_bytes =
  QCheck.Test.make ~count:4000 ~name:"parse_result never raises on random bytes"
    QCheck.(string_of_size Gen.(int_bound 200))
    (no_raise parse_boundary)

let prop_doc_random_bytes =
  QCheck.Test.make ~count:4000 ~name:"of_string_result never raises on random bytes"
    QCheck.(string_of_size Gen.(int_bound 300))
    (no_raise doc_boundary)

let prop_parser_mutated =
  QCheck.Test.make ~count:2000 ~name:"parse_result never raises on mutated formulas"
    QCheck.(pair (int_bound 2) (list_of_size Gen.(int_bound 8) int))
    (fun (which, edits) ->
      no_raise parse_boundary (mutate edits (List.nth seed_formulas which)))

let prop_doc_mutated =
  QCheck.Test.make ~count:1500 ~name:"of_string_result never raises on mutated documents"
    QCheck.(list_of_size Gen.(int_bound 8) int)
    (fun edits -> no_raise doc_boundary (mutate edits (Lazy.force seed_doc)))

let prop_roundtrip_still_exact =
  QCheck.Test.make ~count:50 ~name:"unmutated round-trip still parses Ok"
    QCheck.unit
    (fun () ->
      match doc_boundary (Lazy.force seed_doc) with
      | Ok t -> Tree.n_runs t = 2
      | Error e -> QCheck.Test.fail_reportf "round-trip rejected: %s" (Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Regression corpus                                                   *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Corpus naming convention: files starting with [formula] feed the
   formula parser, files starting with [doc] feed Tree_io, files
   starting with [frame] feed the serve front end's wire loop (whose
   contract is stronger still: any byte stream must drain to exit 0,
   faults becoming typed error responses). Every file is a past (or
   would-be) crasher; the contract is typed-error-only. *)
let frame_boundary s =
  let _out, code = Pak_serve.Serve.run_string s in
  if code = 0 then Ok ()
  else Error (Error.make Error.Io "server exited nonzero on corpus stream")
let test_corpus () =
  let dir = "corpus" in
  let entries = Array.to_list (Sys.readdir dir) in
  check_bool "corpus is non-empty" true (List.length entries >= 8);
  List.iter
    (fun name ->
      let input = read_file (Filename.concat dir name) in
      let describe outcome = Printf.sprintf "%s: %s" name outcome in
      let run boundary =
        match boundary input with
        | Ok _ -> ()
        | Error (_ : Error.t) -> ()
        | exception exn -> Alcotest.fail (describe ("raised " ^ Printexc.to_string exn))
      in
      if String.length name >= 7 && String.sub name 0 7 = "formula" then run parse_boundary
      else if String.length name >= 3 && String.sub name 0 3 = "doc" then run doc_boundary
      else if String.length name >= 5 && String.sub name 0 5 = "frame" then run frame_boundary
      else Alcotest.fail (describe "unknown corpus prefix (want formula*, doc* or frame*)"))
    (List.sort compare entries)

(* Pin the typed outcome of a few corpus members so the classification
   itself (not just crash-freedom) is regression-tested. *)
let test_corpus_kinds () =
  let kind_of boundary file =
    match boundary (read_file (Filename.concat "corpus" file)) with
    | Ok _ -> "ok"
    | Error e -> Error.kind_name e.Error.kind
  in
  Alcotest.(check string) "zero-denominator formula" "parse"
    (kind_of parse_boundary "formula_div_zero.txt");
  Alcotest.(check string) "deeply nested formula" "parse"
    (kind_of parse_boundary "formula_deep.txt");
  Alcotest.(check string) "unterminated document" "parse"
    (kind_of doc_boundary "doc_unterminated.pps");
  Alcotest.(check string) "deeply nested document" "parse"
    (kind_of doc_boundary "doc_deep.pps");
  Alcotest.(check string) "forward parent reference" "invalid-system"
    (kind_of doc_boundary "doc_bad_parent.pps");
  Alcotest.(check string) "probabilities exceed 1" "invalid-system"
    (kind_of doc_boundary "doc_bad_prob.pps")

let () =
  Alcotest.run "pak_fuzz"
    [ ( "never-raises",
        [ QCheck_alcotest.to_alcotest prop_parser_random_bytes;
          QCheck_alcotest.to_alcotest prop_doc_random_bytes;
          QCheck_alcotest.to_alcotest prop_parser_mutated;
          QCheck_alcotest.to_alcotest prop_doc_mutated;
          QCheck_alcotest.to_alcotest prop_roundtrip_still_exact
        ] );
      ( "corpus",
        [ Alcotest.test_case "replay crash-free" `Quick test_corpus;
          Alcotest.test_case "pinned error kinds" `Quick test_corpus_kinds
        ] )
    ]
