(* Tests for the probabilistic epistemic logic: formulas, parser,
   printer round-trip, model checker, group knowledge/belief. *)

open Pak_rational
open Pak_pps
open Pak_logic
module Obs = Pak_obs.Obs

let q = Q.of_ints
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_q msg expected actual =
  check_string msg (Q.to_string expected) (Q.to_string actual)

(* The T̂(3/4, 1/4) system from test_pps, reused as the main model. *)
let that () =
  let b = Tree.Builder.create ~n_agents:2 in
  let p = q 3 4 in
  let s0 = Tree.Builder.add_initial b ~prob:(Q.one_minus p) (Gstate.of_labels "e" [ "i0"; "bit0" ]) in
  let s1 = Tree.Builder.add_initial b ~prob:p (Gstate.of_labels "e" [ "i0"; "bit1" ]) in
  let n_r =
    Tree.Builder.add_child b ~parent:s0 ~prob:Q.one ~acts:[| "env"; "recv"; "send_mj" |]
      (Gstate.of_labels "e" [ "got_mj"; "bit0" ])
  in
  let n_r' =
    Tree.Builder.add_child b ~parent:s1 ~prob:(q 2 3) ~acts:[| "env"; "recv"; "send_mj" |]
      (Gstate.of_labels "e" [ "got_mj"; "bit1" ])
  in
  let n_r'' =
    Tree.Builder.add_child b ~parent:s1 ~prob:(q 1 3) ~acts:[| "env"; "recv"; "send_mj'" |]
      (Gstate.of_labels "e" [ "got_mj'"; "bit1" ])
  in
  List.iter
    (fun (parent, bit) ->
      ignore
        (Tree.Builder.add_child b ~parent ~prob:Q.one ~acts:[| "env"; "alpha"; "noop" |]
           (Gstate.of_labels "e" [ "done"; bit ])))
    [ (n_r, "bit0"); (n_r', "bit1"); (n_r'', "bit1") ];
  Tree.Builder.finalize b

let valuation atom g =
  match atom with
  | "bit1" -> Gstate.local g 1 = "bit1"
  | "bit0" -> Gstate.local g 1 = "bit0"
  | "got_mj" -> Gstate.local g 0 = "got_mj"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Formula construction and inspection                                 *)
(* ------------------------------------------------------------------ *)

let test_formula_helpers () =
  let open Formula in
  let f = k 0 (atom "x" &&& neg (atom "y")) ==> b_geq 1 Q.half (does 1 "go") in
  check_int "size" 8 (size f);
  Alcotest.(check (list int)) "agents" [ 0; 1 ] (agents f);
  Alcotest.(check (list string)) "atoms" [ "x"; "y" ] (atoms f);
  check_bool "conj []" true (equal (conj []) True);
  check_bool "disj []" true (equal (disj []) False);
  check_bool "conj assoc" true
    (equal (conj [ atom "a"; atom "b"; atom "c" ])
       (And (And (Atom "a", Atom "b"), Atom "c")))

let test_formula_printing () =
  let open Formula in
  check_string "atom" "x" (to_string (atom "x"));
  check_string "not" "!x" (to_string (neg (atom "x")));
  check_string "and" "x & y" (to_string (atom "x" &&& atom "y"));
  check_string "or of and" "x & y | z" (to_string (atom "x" &&& atom "y" ||| atom "z"));
  check_string "and of or needs parens" "(x | y) & z"
    (to_string (And (Or (Atom "x", Atom "y"), Atom "z")));
  check_string "implies" "x -> y -> z"
    (to_string (Implies (Atom "x", Implies (Atom "y", Atom "z"))));
  check_string "left nested implies" "(x -> y) -> z"
    (to_string (Implies (Implies (Atom "x", Atom "y"), Atom "z")));
  check_string "knowledge" "K[0] x" (to_string (k 0 (atom "x")));
  check_string "belief" "B[1]>=3/4 x" (to_string (b_geq 1 (q 3 4) (atom "x")));
  check_string "belief strict" "B[1]<1/2 x"
    (to_string (Believes (1, Lt, Q.half, Atom "x")));
  check_string "does" "does[0](fire_a)" (to_string (does 0 "fire_a"));
  check_string "group" "CB[0,1]>=19/20 x"
    (to_string (CommonBelief ([ 0; 1 ], q 19 20, Atom "x")));
  check_string "temporal" "F G x" (to_string (Eventually (Globally (Atom "x"))));
  check_string "modality over and" "K[0] (x & y)"
    (to_string (k 0 (atom "x" &&& atom "y")))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser_basics () =
  let open Formula in
  let roundtrip s = Parser.parse s in
  check_bool "true" true (equal (roundtrip "true") True);
  check_bool "atom" true (equal (roundtrip "fire_a") (Atom "fire_a"));
  check_bool "precedence & over |" true
    (equal (roundtrip "a | b & c") (Or (Atom "a", And (Atom "b", Atom "c"))));
  check_bool "imp right assoc" true
    (equal (roundtrip "a -> b -> c") (Implies (Atom "a", Implies (Atom "b", Atom "c"))));
  check_bool "parens" true
    (equal (roundtrip "(a | b) & c") (And (Or (Atom "a", Atom "b"), Atom "c")));
  check_bool "not binds tight" true
    (equal (roundtrip "!a & b") (And (Not (Atom "a"), Atom "b")));
  check_bool "knowledge" true (equal (roundtrip "K[0] x") (Knows (0, Atom "x")));
  check_bool "belief decimal" true
    (equal (roundtrip "B[1]>=0.95 x") (Believes (1, Geq, q 19 20, Atom "x")));
  check_bool "belief eq" true (equal (roundtrip "B[0]=1 x") (Believes (0, Eq, Q.one, Atom "x")));
  check_bool "does" true (equal (roundtrip "does[1](fire_b)") (Does (1, "fire_b")));
  check_bool "group common belief" true
    (equal (roundtrip "CB[0,1]>=3/4 x") (CommonBelief ([ 0; 1 ], q 3 4, Atom "x")));
  check_bool "everyone knows" true
    (equal (roundtrip "E[0,1] x") (EveryoneKnows ([ 0; 1 ], Atom "x")));
  check_bool "temporal chain" true
    (equal (roundtrip "F G X P H x")
       (Eventually (Globally (Next (Once (Historically (Atom "x")))))));
  check_bool "iff right assoc" true
    (equal (roundtrip "a <-> b <-> c") (Iff (Atom "a", Iff (Atom "b", Atom "c"))));
  check_bool "prime in names" true
    (equal (roundtrip "does[0](alpha')") (Does (0, "alpha'")))

let test_parser_errors () =
  let fails s =
    match Parser.parse s with
    | exception Parser.Parse_error _ -> true
    | _ -> false
  in
  check_bool "empty" true (fails "");
  check_bool "dangling op" true (fails "a &");
  check_bool "unclosed paren" true (fails "(a | b");
  check_bool "missing index" true (fails "K[] x");
  check_bool "bad char" true (fails "a # b");
  check_bool "trailing" true (fails "a b");
  check_bool "B missing cmp" true (fails "B[0] x");
  check_bool "CB needs >=" true (fails "CB[0,1]<1/2 x");
  check_bool "bad number" true (fails "B[0]>=1/ x")

(* Random formulas for the round-trip property. *)
let gen_formula : Formula.t QCheck.arbitrary =
  let open QCheck.Gen in
  let atom_gen = map (fun i -> Formula.Atom (Printf.sprintf "p%d" i)) (int_range 0 4) in
  let rat_gen = map (fun (a, b) -> q a (a + b + 1)) (pair (int_range 0 5) (int_range 0 5)) in
  let cmp_gen = oneofl [ Formula.Geq; Formula.Gt; Formula.Leq; Formula.Lt; Formula.Eq ] in
  let group_gen = oneofl [ [ 0 ]; [ 1 ]; [ 0; 1 ] ] in
  (* Generators are values built eagerly, so naive recursion on the
     size would materialize an exponentially large generator tree;
     memoize one generator per size instead. *)
  let max_size = 8 in
  let gens = Array.make (max_size + 1) (return Formula.True) in
  let gen n = gens.(max 0 (min max_size n)) in
  for n = 0 to max_size do
    gens.(n) <-
      (if n <= 0 then oneof [ atom_gen; return Formula.True; return Formula.False ]
       else
         frequency
        [ (2, atom_gen);
          (2, map2 (fun a b -> Formula.And (a, b)) (gen (n / 2)) (gen (n / 2)));
          (2, map2 (fun a b -> Formula.Or (a, b)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun a b -> Formula.Implies (a, b)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun a b -> Formula.Iff (a, b)) (gen (n / 2)) (gen (n / 2)));
          (2, map (fun f -> Formula.Not f) (gen (n - 1)));
          (2, map2 (fun i f -> Formula.Knows (i, f)) (int_range 0 1) (gen (n - 1)));
          ( 2,
            map2
              (fun (c, r) f -> Formula.Believes (0, c, r, f))
              (pair cmp_gen rat_gen) (gen (n - 1)) );
          (1, map (fun i -> Formula.Does (i, "act_a")) (int_range 0 1));
          (1, map (fun f -> Formula.Eventually f) (gen (n - 1)));
          (1, map (fun f -> Formula.Globally f) (gen (n - 1)));
          (1, map (fun f -> Formula.Next f) (gen (n - 1)));
          (1, map (fun f -> Formula.Once f) (gen (n - 1)));
          (1, map (fun f -> Formula.Historically f) (gen (n - 1)));
          (1, map2 (fun g f -> Formula.EveryoneKnows (g, f)) group_gen (gen (n - 1)));
          (1, map2 (fun g f -> Formula.CommonKnows (g, f)) group_gen (gen (n - 1)));
          ( 1,
            map2
              (fun (g, r) f -> Formula.EveryoneBelieves (g, r, f))
              (pair group_gen rat_gen) (gen (n - 1)) );
          ( 1,
            map2
              (fun (g, r) f -> Formula.CommonBelief (g, r, f))
              (pair group_gen rat_gen) (gen (n - 1)) )
        ])
  done;
  QCheck.make ~print:Formula.to_string (gen max_size)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~count:500 ~name:"print/parse round-trip" gen_formula (fun f ->
      Formula.equal f (Parser.parse (Formula.to_string f)))

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

let test_semantics_propositional () =
  let t = that () in
  let sat f ~run ~time = Semantics.sat t ~valuation (Parser.parse f) ~run ~time in
  check_bool "atom true" true (sat "bit0" ~run:0 ~time:0);
  check_bool "atom false" false (sat "bit1" ~run:0 ~time:0);
  check_bool "negation" true (sat "!bit1" ~run:0 ~time:0);
  check_bool "conjunction" true (sat "bit1 & got_mj" ~run:1 ~time:1);
  check_bool "implication vacuous" true (sat "bit1 -> got_mj" ~run:0 ~time:0);
  check_bool "iff" true (sat "bit1 <-> !bit0" ~run:2 ~time:0)

let test_semantics_does_temporal () =
  let t = that () in
  let sat f ~run ~time = Semantics.sat t ~valuation (Parser.parse f) ~run ~time in
  check_bool "does now" true (sat "does[0](alpha)" ~run:0 ~time:1);
  check_bool "does not yet" false (sat "does[0](alpha)" ~run:0 ~time:0);
  check_bool "eventually" true (sat "F does[0](alpha)" ~run:0 ~time:0);
  check_bool "globally fails" false (sat "G does[0](alpha)" ~run:0 ~time:0);
  check_bool "next" true (sat "X does[0](alpha)" ~run:0 ~time:0);
  check_bool "once after" true (sat "P does[1](send_mj)" ~run:0 ~time:2);
  check_bool "historically" true (sat "H !does[0](alpha)" ~run:0 ~time:0)

let test_semantics_knowledge () =
  let t = that () in
  let sat f ~run ~time = Semantics.sat t ~valuation (Parser.parse f) ~run ~time in
  (* j always knows the bit (it is part of j's local state). *)
  check_bool "j knows bit1" true (sat "K[1] bit1" ~run:1 ~time:0);
  check_bool "j knows bit0" true (sat "K[1] bit0" ~run:0 ~time:0);
  (* i does not know the bit at time 0 or at got_mj, but knows at got_mj'. *)
  check_bool "i ignorant at t0" false (sat "K[0] bit1" ~run:1 ~time:0);
  check_bool "i ignorant at got_mj" false (sat "K[0] bit1" ~run:1 ~time:1);
  check_bool "i knows at got_mj'" true (sat "K[0] bit1" ~run:2 ~time:1);
  (* Knowledge is truthful: K phi -> phi is valid. *)
  check_bool "truth axiom" true
    (Semantics.valid t ~valuation (Parser.parse "K[0] bit1 -> bit1"));
  check_bool "positive introspection" true
    (Semantics.valid t ~valuation (Parser.parse "K[0] bit1 -> K[0] K[0] bit1"))

let test_semantics_belief () =
  let t = that () in
  let sat f ~run ~time = Semantics.sat t ~valuation (Parser.parse f) ~run ~time in
  (* At got_mj the posterior for bit1 is 2/3. *)
  check_bool "B >= 2/3 holds" true (sat "B[0]>=2/3 bit1" ~run:1 ~time:1);
  check_bool "B > 2/3 fails" false (sat "B[0]>2/3 bit1" ~run:1 ~time:1);
  check_bool "B = 2/3 holds" true (sat "B[0]=2/3 bit1" ~run:1 ~time:1);
  check_bool "B <= 2/3 holds" true (sat "B[0]<=2/3 bit1" ~run:1 ~time:1);
  check_bool "B < 2/3 fails" false (sat "B[0]<2/3 bit1" ~run:1 ~time:1);
  (* At time 0 the prior is 3/4. *)
  check_bool "prior 3/4" true (sat "B[0]=3/4 bit1" ~run:0 ~time:0);
  (* Certainty where i knows. *)
  check_bool "B = 1 at got_mj'" true (sat "B[0]=1 bit1" ~run:2 ~time:1);
  (* Knowledge implies belief 1 in a pps. *)
  check_bool "K -> B=1 valid" true
    (Semantics.valid t ~valuation (Parser.parse "K[0] bit1 -> B[0]=1 bit1"))

let test_semantics_groups () =
  let t = that () in
  let sat f ~run ~time = Semantics.sat t ~valuation (Parser.parse f) ~run ~time in
  (* Everyone knows bit1 only where both know it: at got_mj' time 1. *)
  check_bool "E at got_mj'" true (sat "E[0,1] bit1" ~run:2 ~time:1);
  check_bool "E fails at got_mj" false (sat "E[0,1] bit1" ~run:1 ~time:1);
  (* Common knowledge of a valid fact holds everywhere. *)
  check_bool "C of valid fact" true (sat "C[0,1] (bit1 | !bit1)" ~run:0 ~time:0);
  (* bit1 never becomes common knowledge: i's knowing state got_mj' is
     not known to j. *)
  check_bool "no common knowledge of bit1" false (sat "C[0,1] bit1" ~run:2 ~time:1);
  (* Everyone 3/4-believes bit1 at (r',0): j is certain, i has prior 3/4. *)
  check_bool "EB at t0" true (sat "EB[0,1]>=3/4 bit1" ~run:1 ~time:0);
  (* Common belief is contained in everyone-believes. *)
  let cb = Semantics.eval t ~valuation (Parser.parse "CB[0,1]>=3/4 bit1") in
  let eb = Semantics.eval t ~valuation (Parser.parse "EB[0,1]>=3/4 bit1") in
  check_bool "CB subset EB" true
    (Tree.fold_points t ~init:true ~f:(fun acc ~run ~time ->
         acc && ((not (Fact.holds cb ~run ~time)) || Fact.holds eb ~run ~time)))

let test_semantics_probability () =
  let t = that () in
  check_q "P(F alpha) = 1" Q.one
    (Semantics.probability t ~valuation (Parser.parse "F does[0](alpha)"));
  check_q "P(bit1) = 3/4" (q 3 4)
    (Semantics.probability t ~valuation (Parser.parse "bit1"));
  check_q "P(F got_mj) = 3/4" (q 3 4)
    (Semantics.probability t ~valuation (Parser.parse "F got_mj"))

let test_semantics_agent_guard () =
  let t = that () in
  Alcotest.check_raises "unknown agent"
    (Invalid_argument "Semantics.eval: agent 7 out of range") (fun () ->
      ignore (Semantics.eval t ~valuation (Parser.parse "K[7] bit1")))

(* ------------------------------------------------------------------ *)
(* Properties on random systems                                        *)
(* ------------------------------------------------------------------ *)

let seeds = QCheck.int_range 0 1_000_000

(* Atoms over generated trees: "even0"/"even1" look at the trailing
   digit of the agent's local label. *)
let gen_valuation atom g =
  match atom with
  | "even0" -> Hashtbl.hash (Gstate.local g 0) mod 2 = 0
  | "even1" -> Hashtbl.hash (Gstate.local g 1) mod 2 = 0
  | _ -> false

let prop_knowledge_axioms =
  QCheck.Test.make ~count:60 ~name:"S5 axioms valid on random systems" seeds (fun seed ->
      let t = Gen.tree seed in
      let valid s = Semantics.valid t ~valuation:gen_valuation (Parser.parse s) in
      valid "K[0] even0 -> even0"
      && valid "K[0] even0 -> K[0] K[0] even0"
      && valid "!K[0] even0 -> K[0] !K[0] even0"
      && valid "K[0] (even0 -> even1) -> K[0] even0 -> K[0] even1")

let prop_belief_matches_pps_layer =
  QCheck.Test.make ~count:60 ~name:"B[i]>=q agrees with Belief.degree" seeds (fun seed ->
      let t = Gen.tree seed in
      let phi = Parser.parse "even1 | X even0" in
      let inner = Semantics.eval t ~valuation:gen_valuation phi in
      let b = Semantics.eval t ~valuation:gen_valuation (Formula.Believes (0, Geq, Q.half, phi)) in
      Tree.fold_points t ~init:true ~f:(fun acc ~run ~time ->
          acc
          && Fact.holds b ~run ~time
             = Q.geq (Belief.degree inner ~agent:0 ~run ~time) Q.half))

let prop_knowledge_implies_certainty =
  QCheck.Test.make ~count:60 ~name:"K implies B=1 on random systems" seeds (fun seed ->
      let t = Gen.tree seed in
      Semantics.valid t ~valuation:gen_valuation
        (Parser.parse "K[1] even0 -> B[1]=1 even0"))

let prop_common_implies_everyone =
  QCheck.Test.make ~count:40 ~name:"C implies E implies K on random systems" seeds
    (fun seed ->
      let t = Gen.tree seed in
      let valid s = Semantics.valid t ~valuation:gen_valuation (Parser.parse s) in
      valid "C[0,1] even0 -> E[0,1] even0" && valid "E[0,1] even0 -> K[0] even0")

let prop_common_belief_subset =
  QCheck.Test.make ~count:40 ~name:"CB>=q implies EB>=q on random systems" seeds
    (fun seed ->
      let t = Gen.tree seed in
      Semantics.valid t ~valuation:gen_valuation
        (Parser.parse "CB[0,1]>=2/3 even0 -> EB[0,1]>=2/3 even0"))

let prop_eval_memo_consistent =
  QCheck.Test.make ~count:40 ~name:"eval consistent with sat" seeds (fun seed ->
      let t = Gen.tree seed in
      let f = Parser.parse "K[0] (even0 | even1) & B[1]>=1/3 F even0" in
      let fact = Semantics.eval t ~valuation:gen_valuation f in
      Tree.fold_points t ~init:true ~f:(fun acc ~run ~time ->
          acc
          && Fact.holds fact ~run ~time
             = Semantics.sat t ~valuation:gen_valuation f ~run ~time))

(* ------------------------------------------------------------------ *)
(* Subformula closure                                                  *)
(* ------------------------------------------------------------------ *)

let test_closure_invariants () =
  let f =
    Parser.parse "K[0] (even0 | even1) & CB[0,1]>=1/3 (even0 | even1) & F even0"
  in
  let c = Closure.of_formula f in
  let entries = Closure.entries c in
  check_int "size = entries" (Closure.size c) (Array.length entries);
  (* Eight distinct subformulas: even0, even1, the disjunction, K, CB,
     K & CB, F even0 and the root conjunction. *)
  check_int "size" 8 (Closure.size c);
  Array.iteri
    (fun b (e : Closure.entry) ->
      check_int "bits dense and in entry order" b e.Closure.bit;
      Array.iter
        (fun child ->
          check_bool "children precede parent" true (0 <= child && child < b))
        e.Closure.children)
    entries;
  check_int "root is the last bit" (Closure.size c - 1) (Closure.root_bit c);
  check_bool "root entry is the formula" true
    (Formula.equal f (Closure.entry c (Closure.root_bit c)).Closure.formula);
  (* The disjunction under CB and even0 under F are hash-consed hits. *)
  check_int "duplicates" 2 (Closure.duplicates c);
  (match Closure.bit_of c (Parser.parse "even0 | even1") with
  | Some b -> check_bool "shared subformula below root" true (b < Closure.root_bit c)
  | None -> Alcotest.fail "shared subformula missing from closure");
  check_string "rebuild is byte-identical" (Closure.digest c)
    (Closure.digest (Closure.of_formula f))

let prop_closure_deterministic =
  QCheck.Test.make ~count:300 ~name:"closure build is deterministic" gen_formula
    (fun f ->
      let c1 = Closure.of_formula f and c2 = Closure.of_formula f in
      let ok_invariants c =
        let n = Closure.size c in
        Closure.root_bit c = n - 1
        && Array.for_all
             (fun (e : Closure.entry) ->
               Array.for_all (fun child -> 0 <= child && child < e.Closure.bit)
                 e.Closure.children)
             (Closure.entries c)
      in
      ok_invariants c1
      && Closure.digest c1 = Closure.digest c2
      && Closure.duplicates c1 = Closure.duplicates c2)

(* The cross-engine oracle: on random systems and random formulas the
   recursive and vectorized engines must return the same point set and
   bump the engine-invariant semantics.* counters identically (memo
   traffic maps onto closure construction, gfp fixpoints iterate in
   lock-step — see doc/EVALUATION.md). 1000 cases = 1000 generated
   systems. *)
let prop_cross_engine_oracle =
  let invariant_counters =
    [ "semantics.gfp_iters";
      "semantics.gfp_iters.common_knowledge";
      "semantics.gfp_iters.common_belief";
      "semantics.memo_misses";
      "semantics.memo_hits"
    ]
  in
  let observe thunk =
    Obs.enable ();
    Fun.protect ~finally:Obs.disable (fun () ->
        let before = List.map Obs.counter_value invariant_counters in
        let fact = thunk () in
        let deltas =
          List.map2
            (fun name b -> Obs.counter_value name - b)
            invariant_counters before
        in
        (fact, deltas))
  in
  QCheck.Test.make ~count:1000 ~name:"recursive/vectorized engines agree"
    (QCheck.pair seeds gen_formula)
    (fun (seed, f) ->
      let t = Gen.tree seed in
      let fr, dr = observe (fun () -> Semantics.eval t ~valuation:gen_valuation f) in
      let fv, dv =
        observe (fun () -> Semantics.eval_vec t ~valuation:gen_valuation f)
      in
      dr = dv
      && Tree.fold_points t ~init:true ~f:(fun acc ~run ~time ->
             acc && Fact.holds fr ~run ~time = Fact.holds fv ~run ~time))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_roundtrip;
      prop_knowledge_axioms;
      prop_belief_matches_pps_layer;
      prop_knowledge_implies_certainty;
      prop_common_implies_everyone;
      prop_common_belief_subset;
      prop_eval_memo_consistent;
      prop_closure_deterministic;
      prop_cross_engine_oracle
    ]

let () =
  Alcotest.run "pak_logic"
    [ ( "formula",
        [ Alcotest.test_case "helpers" `Quick test_formula_helpers;
          Alcotest.test_case "printing" `Quick test_formula_printing
        ] );
      ( "parser",
        [ Alcotest.test_case "basics" `Quick test_parser_basics;
          Alcotest.test_case "errors" `Quick test_parser_errors
        ] );
      ( "semantics",
        [ Alcotest.test_case "propositional" `Quick test_semantics_propositional;
          Alcotest.test_case "does/temporal" `Quick test_semantics_does_temporal;
          Alcotest.test_case "knowledge" `Quick test_semantics_knowledge;
          Alcotest.test_case "graded belief" `Quick test_semantics_belief;
          Alcotest.test_case "group operators" `Quick test_semantics_groups;
          Alcotest.test_case "probability" `Quick test_semantics_probability;
          Alcotest.test_case "agent guard" `Quick test_semantics_agent_guard
        ] );
      ("closure", [ Alcotest.test_case "invariants" `Quick test_closure_invariants ]);
      ("properties", qcheck_cases)
    ]
