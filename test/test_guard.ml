(* Tests for pak_guard: the typed error values, budget enforcement at
   each charge site (nodes, points, limbs, fixpoint iterations,
   deadline), nesting/restore semantics of [with_budget], the exempt
   escape hatch, and graceful degradation of belief/constraint queries
   into marked Monte-Carlo estimates. *)

open Pak_rational
open Pak_pps
open Pak_logic
module Error = Pak_guard.Error
module Budget = Pak_guard.Budget
module Graded = Pak_guard.Graded
module Obs = Pak_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Same three-node chain system as test_obs: two agents, two
   equiprobable initial states, one round. *)
let toy () =
  let b = Tree.Builder.create ~n_agents:2 in
  let s0 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i"; "x0" ]) in
  let s1 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i"; "x1" ]) in
  List.iter
    (fun (parent, bit) ->
      ignore
        (Tree.Builder.add_child b ~parent ~prob:Q.one ~acts:[| "env"; "go"; "noop" |]
           (Gstate.of_labels "e" [ "done"; bit ])))
    [ (s0, "x0"); (s1, "x1") ];
  Tree.Builder.finalize b

let valuation atom g =
  match atom with
  | "x1" -> Gstate.local g 1 = "x1"
  | "done" -> Gstate.local g 0 = "done"
  | _ -> false

let is_budget_error = function
  | { Error.kind = Error.Budget_exceeded; _ } -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Error values                                                        *)
(* ------------------------------------------------------------------ *)

let test_error_values () =
  let e = Error.make Error.Parse "bad token" in
  check_string "to_string" "parse: bad token" (Error.to_string e);
  let e = Error.with_context "Tree_io.of_string" (Error.with_context "parse_sexp" e) in
  check_string "context trail, innermost first"
    "parse: bad token (via parse_sexp < Tree_io.of_string)" (Error.to_string e);
  check_string "kind names" "parse,invalid-system,budget-exceeded,io"
    (String.concat ","
       (List.map Error.kind_name
          [ Error.Parse; Error.Invalid_system; Error.Budget_exceeded; Error.Io ]));
  let e = Error.makef Error.Io "cannot read %s" "x.pps" in
  check_string "makef" "io: cannot read x.pps" (Error.to_string e)

let test_error_of_exn () =
  let kind_of exn =
    match Error.of_exn exn with
    | Some e -> Error.kind_name e.Error.kind
    | None -> "none"
  in
  check_string "own carrier" "io" (kind_of (Error.Error (Error.make Error.Io "x")));
  check_string "typed div-by-zero" "invalid-system" (kind_of (Error.Division_by_zero "Q.inv"));
  check_string "stdlib div-by-zero" "invalid-system" (kind_of Stdlib.Division_by_zero);
  check_string "invalid_arg" "invalid-system" (kind_of (Invalid_argument "agent out of range"));
  check_string "sys_error" "io" (kind_of (Sys_error "no such file"));
  check_string "stack overflow" "budget-exceeded" (kind_of Stack_overflow);
  check_string "unrecognized" "none" (kind_of Exit)

(* ------------------------------------------------------------------ *)
(* Budget enforcement at each charge site                              *)
(* ------------------------------------------------------------------ *)

let test_budget_nodes () =
  match Budget.with_budget (Budget.limits ~max_nodes:3 ()) toy with
  | Ok _ -> Alcotest.fail "6-node build under a 3-node budget should exceed"
  | Error e ->
    check_bool "budget kind" true (is_budget_error e);
    check_bool "names nodes" true
      (String.length e.Error.msg >= 5 && String.sub e.Error.msg 0 5 = "nodes")

let test_budget_points () =
  let tree = toy () in
  (match Budget.with_budget (Budget.limits ~max_points:2 ()) (fun () ->
       Tree.iter_points tree (fun ~run:_ ~time:_ -> ()))
   with
   | Ok () -> Alcotest.fail "4-point sweep under a 2-point budget should exceed"
   | Error e -> check_bool "budget kind" true (is_budget_error e));
  (* A generous budget changes nothing. *)
  match Budget.with_budget (Budget.limits ~max_points:1_000_000 ()) (fun () ->
      Tree.fold_points tree ~init:0 ~f:(fun acc ~run:_ ~time:_ -> acc + 1))
  with
  | Ok n -> check_int "all points visited" 4 n
  | Error e -> Alcotest.fail (Error.to_string e)

let test_budget_limbs () =
  let big = Bignat.pow (Bignat.of_int 10) 200 in
  match Budget.with_budget (Budget.limits ~max_limbs:50 ()) (fun () -> Bignat.mul big big) with
  | Ok _ -> Alcotest.fail "200-digit square under a 50-limb budget should exceed"
  | Error e -> check_bool "budget kind" true (is_budget_error e)

let test_budget_iters () =
  let tree = toy () in
  let f = Parser.parse "C[0,1] done" in
  match Budget.with_budget (Budget.limits ~max_iters:0 ()) (fun () ->
      Semantics.eval tree ~valuation f)
  with
  | Ok _ -> Alcotest.fail "common-knowledge fixpoint under a 0-iteration budget should exceed"
  | Error e -> check_bool "budget kind" true (is_budget_error e)

let test_budget_deadline () =
  let tree = toy () in
  match Budget.with_budget (Budget.limits ~timeout_ms:0 ()) (fun () ->
      (* Keep evaluating until the processor-time clock ticks past the
         (already expired) deadline; charge_iters checks it each
         fixpoint iteration, so this cannot run forever. *)
      let f = Parser.parse "CB[0,1]>=1/2 done" in
      while true do
        ignore (Semantics.eval tree ~valuation f)
      done)
  with
  | Ok () -> Alcotest.fail "unreachable"
  | Error e ->
    check_bool "budget kind" true (is_budget_error e);
    check_bool "names the deadline" true
      (String.length e.Error.msg >= 8 && String.sub e.Error.msg 0 8 = "deadline")

let test_wall_clock_deadline () =
  (* A controllable fake clock: deadlines created while it is
     installed measure "wall" time from it, independent of Sys.time.
     The clock is captured at budget creation, so un-installing it
     afterwards must not retime the live deadline. *)
  let fake = ref 0. in
  Budget.set_wall_clock (Some (fun () -> !fake));
  Fun.protect
    ~finally:(fun () -> Budget.set_wall_clock None)
    (fun () ->
      match
        Budget.with_budget (Budget.limits ~timeout_ms:5_000 ()) (fun () ->
            Budget.check_deadline ();
            fake := 4.9;
            Budget.check_deadline ();
            (* Un-install mid-flight: the captured clock keeps ruling. *)
            Budget.set_wall_clock None;
            fake := 5.1;
            Budget.check_deadline ();
            Alcotest.fail "deadline did not fire at fake-clock 5.1s")
      with
      | Ok _ -> Alcotest.fail "unreachable"
      | Error e ->
        check_bool "budget kind" true (is_budget_error e);
        check_bool "names the deadline" true
          (String.length e.Error.msg >= 8 && String.sub e.Error.msg 0 8 = "deadline"));
  (* With no wall clock installed the CPU-time behavior is unchanged:
     an expired CPU deadline still fires. *)
  match Budget.with_budget (Budget.limits ~timeout_ms:0 ()) (fun () ->
      let rec spin n = if n = 0 then () else (Budget.check_deadline (); spin (n - 1)) in
      (* Sys.time advances with work; keep checking until it fires. *)
      let rec forever () = spin 1_000_000; forever () in
      forever ())
  with
  | Ok () -> Alcotest.fail "unreachable"
  | Error e -> check_bool "cpu fallback still enforces" true (is_budget_error e)

let test_budget_gauges () =
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      (* No budget in scope: the provider stays silent. *)
      Budget.clear ();
      check_bool "no budget, no budget gauges" true
        (List.for_all
           (fun (name, _) -> not (String.length name >= 7 && String.sub name 0 7 = "budget."))
           (Obs.gauges ()));
      match
        Budget.with_budget (Budget.limits ~max_points:100 ~timeout_ms:60_000 ()) (fun () ->
            Budget.charge_points 30;
            let gauges = Obs.gauges () in
            check_bool "spent gauge" true
              (List.assoc_opt "budget.points_spent" gauges = Some 30.);
            check_bool "remaining gauge" true
              (List.assoc_opt "budget.points_remaining" gauges = Some 70.);
            (match List.assoc_opt "budget.deadline_slack_ms" gauges with
             | Some slack -> check_bool "deadline slack positive" true (slack > 0.)
             | None -> Alcotest.fail "deadline slack gauge missing");
            check_bool "unlimited fuel kinds stay silent" true
              (List.assoc_opt "budget.nodes_spent" gauges = None))
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Error.to_string e))

let test_budget_restore_and_exempt () =
  (* No ambient budget: charges are no-ops, attempt returns Ok. *)
  Budget.clear ();
  check_bool "inactive by default" false !Budget.active;
  (match Budget.attempt (fun () -> 41 + 1) with
   | Ok n -> check_int "attempt passthrough" 42 n
   | Error e -> Alcotest.fail (Error.to_string e));
  let tree = toy () in
  let sweep () = Tree.iter_points tree (fun ~run:_ ~time:_ -> ()) in
  (match Budget.with_budget (Budget.limits ~max_points:20 ()) (fun () ->
       sweep ();
       (* Inner scope replaces the ambient budget and restores it. *)
       (match Budget.with_budget (Budget.limits ~max_points:1 ()) sweep with
        | Ok () -> Alcotest.fail "inner budget should exceed"
        | Error _ -> ());
       check_bool "outer budget restored" true !Budget.active;
       (* Exempt suspends charging entirely. *)
       Budget.exempt (fun () -> sweep (); sweep (); sweep ());
       let spent = List.assoc "points" (Budget.spent ()) in
       check_int "exempt sweeps did not charge" 4 spent;
       sweep ())
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail ("outer budget should not exceed: " ^ Error.to_string e));
  check_bool "cleared after with_budget" false !Budget.active

(* ------------------------------------------------------------------ *)
(* Division by zero: one typed error, everywhere                       *)
(* ------------------------------------------------------------------ *)

let test_division_by_zero_sites () =
  let tree = toy () in
  Alcotest.check_raises "Tree.cond"
    (Error.Division_by_zero "Tree.cond: conditioning event has measure zero") (fun () ->
      ignore (Tree.cond tree (Tree.all_runs tree) ~given:(Tree.empty_event tree)));
  Alcotest.check_raises "Q.inv" (Error.Division_by_zero "Q.inv: inverse of zero") (fun () ->
      ignore (Q.inv Q.zero));
  (* The formula parser maps a zero-denominator literal to a Parse
     error instead of letting the arithmetic exception escape. *)
  match Parser.parse_result "B[0]>=1/0 done" with
  | Ok _ -> Alcotest.fail "zero-denominator literal should not parse"
  | Error e -> check_string "parse kind" "parse" (Error.kind_name e.Error.kind)

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)
(* ------------------------------------------------------------------ *)

let test_degree_graded () =
  let tree = toy () in
  let fact = Fact.of_state_pred tree (valuation "x1") in
  let exact = Belief.degree fact ~agent:0 ~run:0 ~time:0 in
  (* Without budget pressure the graded query is exact. *)
  (match Belief.degree_graded fact ~agent:0 ~run:0 ~time:0 with
   | Graded.Exact q -> check_bool "exact matches degree" true (Q.equal q exact)
   | Graded.Estimated _ -> Alcotest.fail "should be exact without a budget");
  (* A zero-point budget kills every exact measure query; the graded
     query must degrade to a marked estimate instead of failing. *)
  match Budget.with_budget (Budget.limits ~max_points:0 ()) (fun () ->
      Belief.degree_graded ~samples:2000 ~seed:7 fact ~agent:0 ~run:0 ~time:0)
  with
  | Error e -> Alcotest.fail ("degradation must absorb the budget error: " ^ Error.to_string e)
  | Ok (Graded.Exact _) -> Alcotest.fail "zero-point budget cannot be exact"
  | Ok (Graded.Estimated { value; samples }) ->
    check_int "sample count carried" 2000 samples;
    let err = abs_float (Q.to_float value -. Q.to_float exact) in
    check_bool "estimate near exact" true
      (err <= (5.0 *. Simulate.standard_error ~p:exact ~samples:2000) +. 0.001)

let test_report_graded () =
  let tree = toy () in
  let fact = Fact.of_state_pred tree (valuation "x1") in
  let c = Constr.make ~agent:0 ~act:"go" ~fact ~threshold:Q.half in
  let exact = Constr.report c in
  (match Constr.report_graded c with
   | Graded.Exact r -> check_bool "exact mu" true (Q.equal r.Constr.mu exact.Constr.mu)
   | Graded.Estimated _ -> Alcotest.fail "should be exact without a budget");
  match Budget.with_budget (Budget.limits ~max_points:0 ()) (fun () ->
      Constr.report_graded ~samples:2000 ~seed:11 c)
  with
  | Error e -> Alcotest.fail ("degradation must absorb the budget error: " ^ Error.to_string e)
  | Ok (Graded.Exact _) -> Alcotest.fail "zero-point budget cannot be exact"
  | Ok (Graded.Estimated { value = r; samples }) ->
    check_int "sample count carried" 2000 samples;
    check_bool "estimated satisfied agrees" true (r.Constr.satisfied = exact.Constr.satisfied);
    check_bool "independence not claimed when estimated" false r.Constr.independent;
    let banner = Format.asprintf "%a" Constr.pp_report_graded (Graded.Estimated { value = r; samples }) in
    check_bool "banner marks the estimate" true
      (String.length banner >= 9 && String.sub banner 0 9 = "ESTIMATED")

(* qcheck property: Monte-Carlo estimates agree with the exact measure
   within the stated binomial confidence on small systems. With n
   samples the standard error is sqrt(p(1-p)/n); 5 sigma plus the
   2^-30 draw granularity fails with probability < 1e-6 per case. *)
let prop_estimate_confidence =
  QCheck.Test.make ~count:60 ~name:"Simulate.estimate within 5 sigma of Tree.measure"
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, which) ->
      let tree = toy () in
      let event =
        match which with
        | 0 -> Tree.all_runs tree
        | 1 -> Tree.empty_event tree
        | 2 -> Bitset.add (Tree.empty_event tree) 0
        | _ -> Bitset.add (Tree.empty_event tree) 1
      in
      let exact = Tree.measure tree event in
      let samples = 2000 in
      let est = Simulate.estimate tree ~event ~samples ~seed:(seed + 1) in
      abs_float (Q.to_float est -. Q.to_float exact)
      <= (5.0 *. Simulate.standard_error ~p:exact ~samples) +. 0.001)

(* Same property through the degradation path: the estimated report's
   mu agrees with the exact report's mu within confidence. *)
let prop_degraded_report_confidence =
  QCheck.Test.make ~count:30 ~name:"degraded report mu within 5 sigma of exact"
    QCheck.small_int
    (fun seed ->
      let tree = toy () in
      let fact = Fact.of_state_pred tree (valuation "x1") in
      let c = Constr.make ~agent:0 ~act:"go" ~fact ~threshold:Q.half in
      let exact = Constr.report c in
      match
        Budget.with_budget (Budget.limits ~max_points:0 ()) (fun () ->
            Constr.report_graded ~samples:2000 ~seed:(seed + 1) c)
      with
      | Ok (Graded.Estimated { value = r; _ }) ->
        abs_float (Q.to_float r.Constr.mu -. Q.to_float exact.Constr.mu)
        <= (5.0 *. Simulate.standard_error ~p:exact.Constr.mu ~samples:2000) +. 0.001
      | Ok (Graded.Exact _) | Error _ -> false)

let () =
  Alcotest.run "pak_guard"
    [ ( "errors",
        [ Alcotest.test_case "values and context" `Quick test_error_values;
          Alcotest.test_case "of_exn classification" `Quick test_error_of_exn;
          Alcotest.test_case "division-by-zero sites" `Quick test_division_by_zero_sites
        ] );
      ( "budgets",
        [ Alcotest.test_case "node fuel" `Quick test_budget_nodes;
          Alcotest.test_case "point fuel" `Quick test_budget_points;
          Alcotest.test_case "limb fuel" `Quick test_budget_limbs;
          Alcotest.test_case "fixpoint iteration fuel" `Quick test_budget_iters;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "wall-clock deadline" `Quick test_wall_clock_deadline;
          Alcotest.test_case "fuel gauges" `Quick test_budget_gauges;
          Alcotest.test_case "restore and exempt" `Quick test_budget_restore_and_exempt
        ] );
      ( "degradation",
        [ Alcotest.test_case "graded belief degree" `Quick test_degree_graded;
          Alcotest.test_case "graded constraint report" `Quick test_report_graded;
          QCheck_alcotest.to_alcotest prop_estimate_confidence;
          QCheck_alcotest.to_alcotest prop_degraded_report_confidence
        ] )
    ]
