(* Tests for pak_serve: the frame codec's round-trip and resync
   behavior, per-request budget isolation, backpressure shedding,
   graceful degradation to marked estimates, result-cache identity,
   and the protocol-error/recovery and shutdown semantics — all
   in-process through Serve.run_string. *)

open Pak_rational
open Pak_pps
open Pak_logic
module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget
module Graded = Pak_guard.Graded
module Serve = Pak_serve.Serve
module Belief = Pak_pps.Belief

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Serve counters are Obs counters: enable metrics around a run and
   read deltas off the new Snapshot.diff_capture, restoring the null
   sink afterwards so tests cannot leak global state. *)
let with_metrics f =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

let delta snapshot name =
  match List.assoc_opt name snapshot.Obs.Snapshot.counters with
  | Some n -> n
  | None -> 0

let fig1 = lazy (Pak_systems.Figure_one.tree ())
let doc1 = lazy (Tree_io.to_string (Lazy.force fig1))

let request ?(extras = []) ~id ~op ~formula () =
  let open Serve.Sexp in
  let field k v = List [ Atom k; v ] in
  to_string
    (List
       (Atom "request"
       :: field "id" (Atom (string_of_int id))
       :: field "op" (Atom op)
       :: field "system" (Str (Lazy.force doc1))
       :: field "formula" (Str formula)
       :: extras))

let ping id = Printf.sprintf "(ping (id %d))" id

let run ?config payloads =
  let input = String.concat "" (List.map Serve.Frame.encode payloads) in
  Serve.run_string ?config input

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let gen_payload =
  QCheck.string_of_size (QCheck.Gen.int_range 0 300)

let test_frame_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame encode/read round-trip"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 8) gen_payload) (fun payloads ->
      let stream = String.concat "" (List.map Serve.Frame.encode payloads) in
      let reader = Serve.Frame.reader (Serve.Frame.source_of_string stream) in
      let rec go acc =
        match Serve.Frame.read reader with
        | Serve.Frame.Eof -> List.rev acc
        | Serve.Frame.Payload p -> go (p :: acc)
        | Serve.Frame.Junk _ -> acc (* forces the inequality below *)
      in
      go [] = payloads)

let test_frame_junk () =
  let stream =
    Serve.Frame.encode "(a)" ^ "!!garbage!!" ^ Serve.Frame.encode "(b)"
  in
  let reader = Serve.Frame.reader (Serve.Frame.source_of_string stream) in
  check_bool "first payload" true (Serve.Frame.read reader = Serve.Frame.Payload "(a)");
  (match Serve.Frame.read reader with
  | Serve.Frame.Junk (Serve.Frame.Garbage n) -> check_int "garbage bytes" 11 n
  | _ -> Alcotest.fail "expected Garbage junk");
  check_bool "resynced payload" true (Serve.Frame.read reader = Serve.Frame.Payload "(b)");
  check_bool "eof" true (Serve.Frame.read reader = Serve.Frame.Eof)

let test_frame_truncated_and_oversized () =
  let reader =
    Serve.Frame.reader (Serve.Frame.source_of_string "pak1 4096\ntoo short")
  in
  check_bool "truncated" true
    (Serve.Frame.read reader = Serve.Frame.Junk Serve.Frame.Truncated);
  check_bool "eof after truncation" true (Serve.Frame.read reader = Serve.Frame.Eof);
  let big = String.make 200 'z' in
  let stream = Serve.Frame.encode big ^ Serve.Frame.encode "(ok)" in
  let reader = Serve.Frame.reader ~max_frame:64 (Serve.Frame.source_of_string stream) in
  (match Serve.Frame.read reader with
  | Serve.Frame.Junk (Serve.Frame.Oversized n) -> check_int "declared length" 200 n
  | _ -> Alcotest.fail "expected Oversized junk");
  check_bool "frame after oversized payload skipped" true
    (Serve.Frame.read reader = Serve.Frame.Payload "(ok)")

(* ------------------------------------------------------------------ *)
(* Request isolation, shedding, degradation, caching                   *)
(* ------------------------------------------------------------------ *)

let test_budget_isolation () =
  (* A doomed fixpoint query must fail alone: the same query without
     the cap, later in the same server run, still succeeds. *)
  let doomed =
    request ~id:1 ~op:"eval" ~formula:"CB[0]>=1/2 a0_g0"
      ~extras:[ Serve.Sexp.List [ Serve.Sexp.Atom "max-iters"; Serve.Sexp.Atom "0" ] ]
      ()
  in
  let fine = request ~id:2 ~op:"eval" ~formula:"CB[0]>=1/2 a0_g0" () in
  let out, code = run [ doomed; fine ] in
  check_int "clean drain" 0 code;
  check_bool "doomed is a typed budget error" true
    (contains out "(id 1) (code 4)" && contains out "budget-exceeded");
  check_bool "same query later succeeds" true (contains out "(id 2) (code 0) (status ok)")

let test_shed_at_capacity () =
  let cfg = { Serve.default_config with Serve.max_pending = 2; retry_after_ms = 9 } in
  let members =
    List.init 5 (fun j ->
        (* distinct thresholds: no result-cache interference *)
        Printf.sprintf "B[0]>=%d/1000 a0_g0" (j + 1))
  in
  let batch =
    let open Serve.Sexp in
    to_string
      (List
         (Atom "batch"
         :: List.mapi
              (fun j f ->
                match Serve.Sexp.parse (request ~id:(10 + j) ~op:"eval" ~formula:f ())
                with
                | Ok sx -> sx
                | Error e -> Alcotest.fail e)
              members))
  in
  with_metrics (fun () ->
      let (out, code), snap =
        Obs.Snapshot.diff_capture (fun () -> run ~config:cfg [ batch ])
      in
      check_int "clean drain" 0 code;
      check_int "three shed" 3 (delta snap "serve.shed");
      check_bool "first two answered" true
        (contains out "(id 10) (code 0)" && contains out "(id 11) (code 0)");
      List.iter
        (fun id ->
          check_bool
            (Printf.sprintf "id %d overloaded" id)
            true
            (contains out
               (Printf.sprintf "(id %d) (code 4) (status overloaded) (retry-after-ms 9)" id)))
        [ 12; 13; 14 ])

(* Size a points budget to exactly what the formula eval spends, so
   the eval succeeds and the first conditional measure inside
   Belief.degree busts (Q's small-int fast path keeps these fractions
   away from the limb counter entirely). *)
let eval_points_spend tree formula =
  match
    Budget.with_budget
      (Budget.limits ~max_points:max_int ())
      (fun () ->
        ignore (Semantics.eval_auto tree ~valuation:Semantics.generic_valuation
                  (Parser.parse formula));
        List.assoc "points" (Budget.spent ()))
  with
  | Ok n -> n
  | Error _ -> Alcotest.fail "spend probe busted"

let test_degraded_identity () =
  let tree = Lazy.force fig1 in
  let spend = eval_points_spend tree "a0_g1" in
  let samples = 300 and seed = 42 in
  let open Serve.Sexp in
  let num n = List [ Atom n.(0); Atom n.(1) ] in
  let req =
    request ~id:5 ~op:"belief" ~formula:"a0_g1"
      ~extras:
        [ num [| "agent"; "0" |]; num [| "run"; "0" |]; num [| "time"; "0" |];
          num [| "samples"; string_of_int samples |];
          num [| "seed"; string_of_int seed |];
          num [| "max-points"; string_of_int spend |]
        ]
      ()
  in
  (* Warm the parsed-system cache first: document parsing charges the
     points budget too, and the sized budget accounts only for the
     eval (the soak harness warms the cache the same way). *)
  let warm = request ~id:4 ~op:"eval" ~formula:"a0_g0" () in
  let out, code = run [ warm; ping 9; req ] in
  check_int "clean drain" 0 code;
  (* The server's answer must be the exact rendering of the direct
     degraded computation under the same per-request budget. *)
  let expected =
    match
      Budget.with_budget
        (Budget.limits ~max_points:spend ())
        (fun () ->
          let fact =
            Semantics.eval_auto tree ~valuation:Semantics.generic_valuation
              (Parser.parse "a0_g1")
          in
          Belief.degree_graded ~samples ~seed fact ~agent:0 ~run:0 ~time:0)
    with
    | Ok (Graded.Estimated { value; samples }) ->
      Printf.sprintf "(id 5) (code 0) (status estimated) (result (degree %s) (samples %d))"
        (Q.to_string value) samples
    | Ok (Graded.Exact _) -> Alcotest.fail "direct computation stayed exact"
    | Error _ -> Alcotest.fail "direct computation failed"
  in
  check_bool "ESTIMATED and identical to the direct fallback" true (contains out expected)

let test_cache_hit_identical () =
  (* The same request twice (same id, so the whole response frame is
     comparable): the second must be a cache hit and byte-identical. *)
  let req = request ~id:7 ~op:"eval" ~formula:"K[0] a0_g0" () in
  with_metrics (fun () ->
      let (out, code), snap =
        Obs.Snapshot.diff_capture (fun () -> run [ req; ping 1; req ])
      in
      check_int "clean drain" 0 code;
      check_int "one miss" 1 (delta snap "serve.cache.misses");
      check_int "one hit" 1 (delta snap "serve.cache.hits");
      let reader = Serve.Frame.reader (Serve.Frame.source_of_string out) in
      let rec collect acc =
        match Serve.Frame.read reader with
        | Serve.Frame.Eof -> List.rev acc
        | Serve.Frame.Payload p -> collect (p :: acc)
        | Serve.Frame.Junk _ -> Alcotest.fail "junk in output"
      in
      match collect [] with
      | [ r1; _pong; r2; _bye ] -> check_string "byte-identical responses" r1 r2
      | other ->
        Alcotest.fail (Printf.sprintf "expected 4 output frames, got %d" (List.length other)))

let test_protocol_error_recovery () =
  let input =
    Serve.Frame.encode (ping 1) ^ "@@ not a frame @@" ^ Serve.Frame.encode (ping 2)
  in
  with_metrics (fun () ->
      let (out, code), snap =
        Obs.Snapshot.diff_capture (fun () -> Serve.run_string input)
      in
      check_int "clean drain" 0 code;
      check_int "one protocol error" 1 (delta snap "serve.errors.protocol");
      check_bool "typed protocol response" true
        (contains out "(id -1) (code 3)" && contains out "(kind protocol)");
      check_bool "both pings answered" true
        (contains out "(pong (id 1))" && contains out "(pong (id 2))"))

let test_shutdown_semantics () =
  let out, code =
    run [ ping 1; "(shutdown)"; ping 2 ]
  in
  check_int "clean drain" 0 code;
  check_bool "pong before shutdown" true (contains out "(pong (id 1))");
  check_bool "bye frame" true (contains out "(bye (reason shutdown))");
  check_bool "frames after shutdown ignored" false (contains out "(pong (id 2))")

let test_bad_requests () =
  let bad_op = request ~id:1 ~op:"frobnicate" ~formula:"a0_g0" () in
  let bad_formula = request ~id:2 ~op:"eval" ~formula:"K[0" () in
  let bad_system =
    "(request (id 3) (op eval) (system \"(pps\") (formula \"a0_g0\"))"
  in
  let out, code = run [ bad_op; bad_formula; bad_system ] in
  check_int "clean drain" 0 code;
  check_bool "unknown op is code 2" true
    (contains out "(id 1) (code 2)" && contains out "(kind request)");
  check_bool "bad formula is code 3 parse" true
    (contains out "(id 2) (code 3)" && contains out "(kind parse)");
  check_bool "bad system is code 3" true (contains out "(id 3) (code 3)")

let test_validate_config () =
  let bad cfg = Result.is_error (Serve.validate_config cfg) in
  check_bool "default ok" true (Serve.validate_config Serve.default_config = Ok ());
  check_bool "jobs < 1" true (bad { Serve.default_config with Serve.jobs = 0 });
  check_bool "max_pending < 1" true
    (bad { Serve.default_config with Serve.max_pending = 0 });
  check_bool "server-level zero budget" true
    (bad
       { Serve.default_config with
         Serve.limits = Budget.limits ~timeout_ms:0 ()
       });
  check_bool "tiny max_frame" true (bad { Serve.default_config with Serve.max_frame = 8 })

let () =
  Alcotest.run "pak_serve"
    [ ( "frame",
        [ QCheck_alcotest.to_alcotest test_frame_roundtrip;
          Alcotest.test_case "junk and resync" `Quick test_frame_junk;
          Alcotest.test_case "truncated and oversized" `Quick
            test_frame_truncated_and_oversized
        ] );
      ( "server",
        [ Alcotest.test_case "budget isolation" `Quick test_budget_isolation;
          Alcotest.test_case "shed at capacity" `Quick test_shed_at_capacity;
          Alcotest.test_case "degraded identity" `Quick test_degraded_identity;
          Alcotest.test_case "cache hit identical" `Quick test_cache_hit_identical;
          Alcotest.test_case "protocol error recovery" `Quick test_protocol_error_recovery;
          Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics;
          Alcotest.test_case "bad requests" `Quick test_bad_requests;
          Alcotest.test_case "validate config" `Quick test_validate_config
        ] )
    ]
