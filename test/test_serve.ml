(* Tests for pak_serve: the frame codec's round-trip and resync
   behavior, per-request budget isolation, backpressure shedding,
   graceful degradation to marked estimates, result-cache identity,
   the protocol-error/recovery and shutdown semantics, request-scoped
   trace ids, the (op metrics) exposition and the streaming-telemetry
   side channel — all in-process through Serve.run_string. *)

open Pak_rational
open Pak_pps
open Pak_logic
module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget
module Graded = Pak_guard.Graded
module Serve = Pak_serve.Serve
module Belief = Pak_pps.Belief

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Serve counters are Obs counters: enable metrics around a run and
   read deltas off the new Snapshot.diff_capture, restoring the null
   sink afterwards so tests cannot leak global state. *)
let with_metrics f =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

let delta snapshot name =
  match List.assoc_opt name snapshot.Obs.Snapshot.counters with
  | Some n -> n
  | None -> 0

let fig1 = lazy (Pak_systems.Figure_one.tree ())
let doc1 = lazy (Tree_io.to_string (Lazy.force fig1))

let request ?(extras = []) ~id ~op ~formula () =
  let open Serve.Sexp in
  let field k v = List [ Atom k; v ] in
  to_string
    (List
       (Atom "request"
       :: field "id" (Atom (string_of_int id))
       :: field "op" (Atom op)
       :: field "system" (Str (Lazy.force doc1))
       :: field "formula" (Str formula)
       :: extras))

let ping id = Printf.sprintf "(ping (id %d))" id

let run ?config payloads =
  let input = String.concat "" (List.map Serve.Frame.encode payloads) in
  Serve.run_string ?config input

let collect_frames out =
  let reader = Serve.Frame.reader (Serve.Frame.source_of_string out) in
  let rec go acc =
    match Serve.Frame.read reader with
    | Serve.Frame.Eof -> List.rev acc
    | Serve.Frame.Payload p -> go (p :: acc)
    | Serve.Frame.Junk _ -> Alcotest.fail "junk in output"
  in
  go []

(* Split a response frame into its trace id and the rendering with the
   trace field removed, so tests can compare responses modulo the
   (per-request, hence necessarily differing) id. *)
let split_trace resp =
  match Serve.Sexp.parse resp with
  | Ok (Serve.Sexp.List (Serve.Sexp.Atom "response" :: fields)) ->
    let trace = ref None in
    let rest =
      List.filter
        (function
          | Serve.Sexp.List [ Serve.Sexp.Atom "trace"; Serve.Sexp.Atom t ] ->
            trace := Some t;
            false
          | _ -> true)
        fields
    in
    (!trace, Serve.Sexp.to_string (Serve.Sexp.List (Serve.Sexp.Atom "response" :: rest)))
  | _ -> (None, resp)

let is_trace_id t =
  String.length t = 16
  && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) t

(* Remove every " (trace <id>)" field from a rendered stream so
   assertions about adjacent (id N) (code M) fields stay readable. *)
let sans_traces s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let pre = " (trace " in
  let plen = String.length pre in
  let i = ref 0 in
  while !i < n do
    if !i + plen <= n && String.sub s !i plen = pre then
      match String.index_from_opt s (!i + plen) ')' with
      | Some j -> i := j + 1
      | None ->
        Buffer.add_char b s.[!i];
        incr i
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let gen_payload =
  QCheck.string_of_size (QCheck.Gen.int_range 0 300)

let test_frame_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame encode/read round-trip"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 8) gen_payload) (fun payloads ->
      let stream = String.concat "" (List.map Serve.Frame.encode payloads) in
      let reader = Serve.Frame.reader (Serve.Frame.source_of_string stream) in
      let rec go acc =
        match Serve.Frame.read reader with
        | Serve.Frame.Eof -> List.rev acc
        | Serve.Frame.Payload p -> go (p :: acc)
        | Serve.Frame.Junk _ -> acc (* forces the inequality below *)
      in
      go [] = payloads)

let test_frame_junk () =
  let stream =
    Serve.Frame.encode "(a)" ^ "!!garbage!!" ^ Serve.Frame.encode "(b)"
  in
  let reader = Serve.Frame.reader (Serve.Frame.source_of_string stream) in
  check_bool "first payload" true (Serve.Frame.read reader = Serve.Frame.Payload "(a)");
  (match Serve.Frame.read reader with
  | Serve.Frame.Junk (Serve.Frame.Garbage n) -> check_int "garbage bytes" 11 n
  | _ -> Alcotest.fail "expected Garbage junk");
  check_bool "resynced payload" true (Serve.Frame.read reader = Serve.Frame.Payload "(b)");
  check_bool "eof" true (Serve.Frame.read reader = Serve.Frame.Eof)

let test_frame_truncated_and_oversized () =
  let reader =
    Serve.Frame.reader (Serve.Frame.source_of_string "pak1 4096\ntoo short")
  in
  check_bool "truncated" true
    (Serve.Frame.read reader = Serve.Frame.Junk Serve.Frame.Truncated);
  check_bool "eof after truncation" true (Serve.Frame.read reader = Serve.Frame.Eof);
  let big = String.make 200 'z' in
  let stream = Serve.Frame.encode big ^ Serve.Frame.encode "(ok)" in
  let reader = Serve.Frame.reader ~max_frame:64 (Serve.Frame.source_of_string stream) in
  (match Serve.Frame.read reader with
  | Serve.Frame.Junk (Serve.Frame.Oversized n) -> check_int "declared length" 200 n
  | _ -> Alcotest.fail "expected Oversized junk");
  check_bool "frame after oversized payload skipped" true
    (Serve.Frame.read reader = Serve.Frame.Payload "(ok)")

(* ------------------------------------------------------------------ *)
(* Request isolation, shedding, degradation, caching                   *)
(* ------------------------------------------------------------------ *)

let test_budget_isolation () =
  (* A doomed fixpoint query must fail alone: the same query without
     the cap, later in the same server run, still succeeds. *)
  let doomed =
    request ~id:1 ~op:"eval" ~formula:"CB[0]>=1/2 a0_g0"
      ~extras:[ Serve.Sexp.List [ Serve.Sexp.Atom "max-iters"; Serve.Sexp.Atom "0" ] ]
      ()
  in
  let fine = request ~id:2 ~op:"eval" ~formula:"CB[0]>=1/2 a0_g0" () in
  let out, code = run [ doomed; fine ] in
  let out = sans_traces out in
  check_int "clean drain" 0 code;
  check_bool "doomed is a typed budget error" true
    (contains out "(id 1) (code 4)" && contains out "budget-exceeded");
  check_bool "same query later succeeds" true (contains out "(id 2) (code 0) (status ok)")

let test_shed_at_capacity () =
  let cfg = { Serve.default_config with Serve.max_pending = 2; retry_after_ms = 9 } in
  let members =
    List.init 5 (fun j ->
        (* distinct thresholds: no result-cache interference *)
        Printf.sprintf "B[0]>=%d/1000 a0_g0" (j + 1))
  in
  let batch =
    let open Serve.Sexp in
    to_string
      (List
         (Atom "batch"
         :: List.mapi
              (fun j f ->
                match Serve.Sexp.parse (request ~id:(10 + j) ~op:"eval" ~formula:f ())
                with
                | Ok sx -> sx
                | Error e -> Alcotest.fail e)
              members))
  in
  with_metrics (fun () ->
      let (out, code), snap =
        Obs.Snapshot.diff_capture (fun () -> run ~config:cfg [ batch ])
      in
      let out = sans_traces out in
      check_int "clean drain" 0 code;
      check_int "three shed" 3 (delta snap "serve.shed");
      check_bool "first two answered" true
        (contains out "(id 10) (code 0)" && contains out "(id 11) (code 0)");
      List.iter
        (fun id ->
          check_bool
            (Printf.sprintf "id %d overloaded" id)
            true
            (contains out
               (Printf.sprintf "(id %d) (code 4) (status overloaded) (retry-after-ms 9)" id)))
        [ 12; 13; 14 ])

(* Size a points budget to exactly what the formula eval spends, so
   the eval succeeds and the first conditional measure inside
   Belief.degree busts (Q's small-int fast path keeps these fractions
   away from the limb counter entirely). *)
let eval_points_spend tree formula =
  match
    Budget.with_budget
      (Budget.limits ~max_points:max_int ())
      (fun () ->
        ignore (Semantics.eval_auto tree ~valuation:Semantics.generic_valuation
                  (Parser.parse formula));
        List.assoc "points" (Budget.spent ()))
  with
  | Ok n -> n
  | Error _ -> Alcotest.fail "spend probe busted"

let test_degraded_identity () =
  let tree = Lazy.force fig1 in
  let spend = eval_points_spend tree "a0_g1" in
  let samples = 300 and seed = 42 in
  let open Serve.Sexp in
  let num n = List [ Atom n.(0); Atom n.(1) ] in
  let req =
    request ~id:5 ~op:"belief" ~formula:"a0_g1"
      ~extras:
        [ num [| "agent"; "0" |]; num [| "run"; "0" |]; num [| "time"; "0" |];
          num [| "samples"; string_of_int samples |];
          num [| "seed"; string_of_int seed |];
          num [| "max-points"; string_of_int spend |]
        ]
      ()
  in
  (* Warm the parsed-system cache first: document parsing charges the
     points budget too, and the sized budget accounts only for the
     eval (the soak harness warms the cache the same way). *)
  let warm = request ~id:4 ~op:"eval" ~formula:"a0_g0" () in
  let out, code = run [ warm; ping 9; req ] in
  let out = sans_traces out in
  check_int "clean drain" 0 code;
  (* The server's answer must be the exact rendering of the direct
     degraded computation under the same per-request budget. *)
  let expected =
    match
      Budget.with_budget
        (Budget.limits ~max_points:spend ())
        (fun () ->
          let fact =
            Semantics.eval_auto tree ~valuation:Semantics.generic_valuation
              (Parser.parse "a0_g1")
          in
          Belief.degree_graded ~samples ~seed fact ~agent:0 ~run:0 ~time:0)
    with
    | Ok (Graded.Estimated { value; samples }) ->
      Printf.sprintf "(id 5) (code 0) (status estimated) (result (degree %s) (samples %d))"
        (Q.to_string value) samples
    | Ok (Graded.Exact _) -> Alcotest.fail "direct computation stayed exact"
    | Error _ -> Alcotest.fail "direct computation failed"
  in
  check_bool "ESTIMATED and identical to the direct fallback" true (contains out expected)

let test_cache_hit_identical () =
  (* The same request twice (same id, so the whole response frame is
     comparable): the second must be a cache hit and byte-identical
     modulo the trace id, which is scoped to the request — not the
     cached result — and so must differ. *)
  let req = request ~id:7 ~op:"eval" ~formula:"K[0] a0_g0" () in
  with_metrics (fun () ->
      let (out, code), snap =
        Obs.Snapshot.diff_capture (fun () -> run [ req; ping 1; req ])
      in
      check_int "clean drain" 0 code;
      check_int "one miss" 1 (delta snap "serve.cache.misses");
      check_int "one hit" 1 (delta snap "serve.cache.hits");
      match collect_frames out with
      | [ r1; _pong; r2; _bye ] ->
        let t1, b1 = split_trace r1 and t2, b2 = split_trace r2 in
        check_string "identical responses modulo trace id" b1 b2;
        (match (t1, t2) with
         | Some t1, Some t2 ->
           check_bool "trace ids are 16-hex" true (is_trace_id t1 && is_trace_id t2);
           check_bool "trace ids are per-request, not per-result" true (t1 <> t2)
         | _ -> Alcotest.fail "response without a trace id")
      | other ->
        Alcotest.fail (Printf.sprintf "expected 4 output frames, got %d" (List.length other)))

(* ------------------------------------------------------------------ *)
(* Request-scoped trace ids, (op metrics), streaming telemetry         *)
(* ------------------------------------------------------------------ *)

let test_trace_ids_deterministic () =
  (* Trace ids are a pure function of the input byte stream: distinct
     per request, byte-identical across runs and across --jobs. *)
  let payloads =
    [ request ~id:1 ~op:"eval" ~formula:"a0_g0" ();
      ping 2;
      request ~id:3 ~op:"eval" ~formula:"K[0] a0_g0" ()
    ]
  in
  let at jobs = run ~config:{ Serve.default_config with Serve.jobs } payloads in
  let out1, code1 = at 1 in
  let out4, code4 = at 4 in
  check_int "clean drain at jobs 1" 0 code1;
  check_int "clean drain at jobs 4" 0 code4;
  check_string "output (trace ids included) is jobs-invariant" out1 out4;
  let out1', _ = at 1 in
  check_string "output is run-invariant" out1 out1';
  let traces =
    List.filter_map (fun f -> fst (split_trace f)) (collect_frames out1)
  in
  check_int "both responses carry trace ids" 2 (List.length traces);
  check_bool "well-formed ids" true (List.for_all is_trace_id traces);
  check_bool "ids are distinct" true
    (match traces with [ a; b ] -> a <> b | _ -> false)

let test_op_metrics () =
  (* (op metrics) needs no system/formula, answers with an OpenMetrics
     exposition that passes the grammar check, and is never cached. *)
  let metrics id = Printf.sprintf "(request (id %d) (op metrics))" id in
  let eval = request ~id:1 ~op:"eval" ~formula:"a0_g0" () in
  with_metrics (fun () ->
      let (out, code), snap =
        Obs.Snapshot.diff_capture (fun () -> run [ eval; metrics 2; metrics 3 ])
      in
      check_int "clean drain" 0 code;
      check_int "metrics requests never hit the cache" 0 (delta snap "serve.cache.hits");
      match collect_frames out with
      | [ _r1; m1; _m2; _bye ] ->
        check_bool "metrics response is ok" true
          (contains (sans_traces m1) "(id 2) (code 0) (status ok)");
        (match Serve.Sexp.parse m1 with
         | Ok sx ->
           let rec find_exposition = function
             | Serve.Sexp.List [ Serve.Sexp.Atom "openmetrics"; Serve.Sexp.Str text ] ->
               Some text
             | Serve.Sexp.List xs -> List.find_map find_exposition xs
             | _ -> None
           in
           (match find_exposition sx with
            | None -> Alcotest.fail "no (openmetrics \"...\") payload in response"
            | Some text ->
              (match Obs.Openmetrics.check text with
               | Ok () -> ()
               | Error e -> Alcotest.fail ("exposition rejected: " ^ e));
              check_bool "exposition reports the serve counters" true
                (contains text "pak_serve_requests_total"))
         | Error e -> Alcotest.fail ("metrics response does not parse: " ^ e))
      | other ->
        Alcotest.fail (Printf.sprintf "expected 4 output frames, got %d" (List.length other)))

let test_op_status () =
  (* (op status) is introspection: answered synchronously at enqueue,
     never cached, ticking the logical frame clock. *)
  let status id = Printf.sprintf "(request (id %d) (op status))" id in
  let eval = request ~id:1 ~op:"eval" ~formula:"a0_g0" () in
  with_metrics (fun () ->
      let (out, code), snap =
        Obs.Snapshot.diff_capture (fun () -> run [ eval; status 2; status 3 ])
      in
      check_int "clean drain" 0 code;
      check_int "status never hits the cache" 0 (delta snap "serve.cache.hits");
      check_bool "status answers are counted as requests" true
        (delta snap "serve.requests" >= 3);
      match collect_frames out with
      | [ _r1; s1; s2; _bye ] ->
        check_bool "status response is ok" true
          (contains (sans_traces s1) "(id 2) (code 0) (status ok)");
        check_bool "uptime ticks the payload-frame clock" true
          (contains s1 "(uptime-ticks 2)");
        check_bool "a later status reports a later tick" true
          (contains s2 "(uptime-ticks 3)");
        check_bool "no journal configured reads (journal none)" true
          (contains s1 "(journal none)");
        check_bool "cache occupancy reported" true
          (contains s1 "(cache (entries 1) (capacity 256) (hits 0) (misses 1)");
        check_bool "latency percentiles quarantined under (metrics ...)" true
          (contains s1 "(metrics (latencies" && contains s1 "serve.request")
      | other ->
        Alcotest.fail (Printf.sprintf "expected 4 output frames, got %d" (List.length other)))

let test_op_status_pending () =
  (* Status is answered at enqueue, before the batch drains: inside a
     (batch eval eval status) it must see both evaluations pending. *)
  let batch =
    let open Serve.Sexp in
    let r id f =
      match parse (request ~id ~op:"eval" ~formula:f ()) with
      | Ok sx -> sx
      | Error e -> Alcotest.fail e
    in
    to_string
      (List
         [ Atom "batch";
           r 1 "B[0]>=1/1000 a0_g0";
           r 2 "B[0]>=2/1000 a0_g0";
           List [ Atom "request"; List [ Atom "id"; Atom "3" ]; List [ Atom "op"; Atom "status" ] ]
         ])
  in
  let out, code = run [ batch ] in
  check_int "clean drain" 0 code;
  check_bool "status sees both queued evaluations" true (contains out "(pending 2)");
  check_bool "and both still get answered" true
    (let out = sans_traces out in
     contains out "(id 1) (code 0)" && contains out "(id 2) (code 0)")

let test_op_status_jobs_invariant () =
  (* With the drain cadence pinned (--batch 1; the default 0 means
     "batch = jobs") and metrics disabled, the status body — pending
     depth, response counts, cache occupancy — is a pure function of
     the input stream, so the whole output is byte-identical at every
     --jobs, trace ids included. *)
  let status id = Printf.sprintf "(request (id %d) (op status))" id in
  let payloads =
    [ request ~id:1 ~op:"eval" ~formula:"a0_g0" ();
      request ~id:2 ~op:"eval" ~formula:"K[0] a0_g0" ();
      status 3;
      request ~id:4 ~op:"eval" ~formula:"a0_g0" ();
      status 5
    ]
  in
  let at jobs =
    run ~config:{ Serve.default_config with Serve.jobs; batch = 1 } payloads
  in
  let out1, code1 = at 1 in
  let out4, code4 = at 4 in
  check_int "clean drain at jobs 1" 0 code1;
  check_int "clean drain at jobs 4" 0 code4;
  check_string "status output is byte-identical across --jobs" out1 out4;
  check_bool "second status saw the cache hit" true
    (contains out1 "(hits 1)")

let test_status_journal_position () =
  (* With a recorder attached, status reports the journal position —
     and the position it reports is the sink's at the moment the
     status itself is journaled (the request record is already in). *)
  let positions = ref [] in
  let bytes = ref 0 in
  let sink =
    { Pak_journal.Journal.emit =
        (fun e -> bytes := !bytes + String.length (Pak_journal.Journal.encode_entry e));
      position =
        (fun () ->
          positions := !bytes :: !positions;
          !bytes);
      rotations = (fun () -> 0)
    }
  in
  let cfg = { Serve.default_config with Serve.journal = Some sink } in
  let out, code = run ~config:cfg [ "(request (id 1) (op status))" ] in
  check_int "clean drain" 0 code;
  check_bool "status reports the live position" true
    (match !positions with
     | p :: _ -> contains out (Printf.sprintf "(journal (position %d)" p)
     | [] -> false);
  check_bool "rotations reported" true (contains out "(rotations 0)")

let telemetry_run ~jobs ~every payloads =
  let frames = ref [] in
  let cfg =
    { Serve.default_config with
      Serve.jobs;
      telemetry_every = every;
      telemetry = Some (fun line -> frames := line :: !frames)
    }
  in
  let out, code = run ~config:cfg payloads in
  (out, code, List.rev !frames)

let telemetry_payloads =
  lazy
    (List.init 5 (fun j ->
         (* distinct thresholds: five real evaluations, no cache hits *)
         request ~id:(20 + j) ~op:"eval"
           ~formula:(Printf.sprintf "B[0]>=%d/1000 a0_g0" (j + 1))
           ()))

let test_telemetry_frames_telescope () =
  let payloads = Lazy.force telemetry_payloads in
  with_metrics (fun () ->
      let (_, code, frames), snap =
        Obs.Snapshot.diff_capture (fun () -> telemetry_run ~jobs:2 ~every:2 payloads)
      in
      check_int "clean drain" 0 code;
      (* 5 requests at --telemetry-every 2: frames after requests 2 and
         4, plus the final frame at shutdown. *)
      check_int "three frames" 3 (List.length frames);
      let field name = function
        | Obs.Json.Obj fields -> List.assoc_opt name fields
        | _ -> None
      in
      let parsed = List.map Obs.Json.parse frames in
      List.iter
        (fun j ->
          check_bool "frame is marked" true (field "telemetry" j = Some (Obs.Json.Num 1.));
          check_bool "frame has a seq" true (field "seq" j <> None);
          check_bool "no drain-cadence counter in a frame" true
            (match field "counters" j with
             | Some (Obs.Json.Obj rows) -> not (List.mem_assoc "serve.drains" rows)
             | _ -> false);
          check_bool "no drain-cadence histogram in a frame" true
            (match field "histogram_totals" j with
             | Some (Obs.Json.Obj rows) -> not (List.mem_assoc "serve.drain" rows)
             | _ -> false))
        parsed;
      (* The deltas telescope: summed per-frame increments equal the
         run's total for every kept counter. *)
      let summed name =
        List.fold_left
          (fun acc j ->
            match field "counters" j with
            | Some (Obs.Json.Obj rows) -> (
                match List.assoc_opt name rows with
                | Some (Obs.Json.Num v) -> acc + int_of_float v
                | _ -> acc)
            | _ -> acc)
          0 parsed
      in
      List.iter
        (fun name ->
          check_int ("frame deltas telescope to the run total: " ^ name)
            (delta snap name) (summed name))
        [ "serve.requests"; "serve.responses"; "serve.frames"; "serve.cache.misses" ];
      match List.rev parsed with
      | last :: _ ->
        check_bool "final frame reports all requests" true
          (field "requests" last = Some (Obs.Json.Num 5.))
      | [] -> ())

let test_telemetry_jobs_invariant () =
  (* The telemetry side channel is part of the determinism contract:
     the frame stream is byte-identical at every --jobs (the
     drain-cadence metrics, the only jobs-dependent ones, are excluded
     from frames). *)
  let payloads = Lazy.force telemetry_payloads in
  let _, code1, frames1 = telemetry_run ~jobs:1 ~every:2 payloads in
  let _, code4, frames4 = telemetry_run ~jobs:4 ~every:2 payloads in
  check_int "clean drain at jobs 1" 0 code1;
  check_int "clean drain at jobs 4" 0 code4;
  check_string "telemetry frames are byte-identical across --jobs"
    (String.concat "\n" frames1)
    (String.concat "\n" frames4)

let test_protocol_error_recovery () =
  let input =
    Serve.Frame.encode (ping 1) ^ "@@ not a frame @@" ^ Serve.Frame.encode (ping 2)
  in
  with_metrics (fun () ->
      let (out, code), snap =
        Obs.Snapshot.diff_capture (fun () -> Serve.run_string input)
      in
      check_int "clean drain" 0 code;
      check_int "one protocol error" 1 (delta snap "serve.errors.protocol");
      check_bool "typed protocol response" true
        (contains out "(id -1) (code 3)" && contains out "(kind protocol)");
      check_bool "both pings answered" true
        (contains out "(pong (id 1))" && contains out "(pong (id 2))"))

let test_shutdown_semantics () =
  let out, code =
    run [ ping 1; "(shutdown)"; ping 2 ]
  in
  check_int "clean drain" 0 code;
  check_bool "pong before shutdown" true (contains out "(pong (id 1))");
  check_bool "bye frame" true (contains out "(bye (reason shutdown))");
  check_bool "frames after shutdown ignored" false (contains out "(pong (id 2))")

let test_bad_requests () =
  let bad_op = request ~id:1 ~op:"frobnicate" ~formula:"a0_g0" () in
  let bad_formula = request ~id:2 ~op:"eval" ~formula:"K[0" () in
  let bad_system =
    "(request (id 3) (op eval) (system \"(pps\") (formula \"a0_g0\"))"
  in
  let out, code = run [ bad_op; bad_formula; bad_system ] in
  let out = sans_traces out in
  check_int "clean drain" 0 code;
  check_bool "unknown op is code 2" true
    (contains out "(id 1) (code 2)" && contains out "(kind request)");
  check_bool "bad formula is code 3 parse" true
    (contains out "(id 2) (code 3)" && contains out "(kind parse)");
  check_bool "bad system is code 3" true (contains out "(id 3) (code 3)")

let test_validate_config () =
  let bad cfg = Result.is_error (Serve.validate_config cfg) in
  check_bool "default ok" true (Serve.validate_config Serve.default_config = Ok ());
  check_bool "jobs < 1" true (bad { Serve.default_config with Serve.jobs = 0 });
  check_bool "max_pending < 1" true
    (bad { Serve.default_config with Serve.max_pending = 0 });
  check_bool "server-level zero budget" true
    (bad
       { Serve.default_config with
         Serve.limits = Budget.limits ~timeout_ms:0 ()
       });
  check_bool "tiny max_frame" true (bad { Serve.default_config with Serve.max_frame = 8 });
  check_bool "negative telemetry_every" true
    (bad { Serve.default_config with Serve.telemetry_every = -1 });
  check_bool "telemetry_every without a sink" true
    (bad { Serve.default_config with Serve.telemetry_every = 4 });
  check_bool "telemetry_every with a sink ok" true
    (Serve.validate_config
       { Serve.default_config with
         Serve.telemetry_every = 4;
         telemetry = Some ignore
       }
    = Ok ())

let () =
  Alcotest.run "pak_serve"
    [ ( "frame",
        [ QCheck_alcotest.to_alcotest test_frame_roundtrip;
          Alcotest.test_case "junk and resync" `Quick test_frame_junk;
          Alcotest.test_case "truncated and oversized" `Quick
            test_frame_truncated_and_oversized
        ] );
      ( "server",
        [ Alcotest.test_case "budget isolation" `Quick test_budget_isolation;
          Alcotest.test_case "shed at capacity" `Quick test_shed_at_capacity;
          Alcotest.test_case "degraded identity" `Quick test_degraded_identity;
          Alcotest.test_case "cache hit identical" `Quick test_cache_hit_identical;
          Alcotest.test_case "trace ids deterministic" `Quick test_trace_ids_deterministic;
          Alcotest.test_case "op metrics" `Quick test_op_metrics;
          Alcotest.test_case "op status" `Quick test_op_status;
          Alcotest.test_case "op status pending" `Quick test_op_status_pending;
          Alcotest.test_case "op status jobs-invariant" `Quick
            test_op_status_jobs_invariant;
          Alcotest.test_case "status journal position" `Quick
            test_status_journal_position;
          Alcotest.test_case "telemetry frames telescope" `Quick
            test_telemetry_frames_telescope;
          Alcotest.test_case "telemetry jobs-invariant" `Quick
            test_telemetry_jobs_invariant;
          Alcotest.test_case "protocol error recovery" `Quick test_protocol_error_recovery;
          Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics;
          Alcotest.test_case "bad requests" `Quick test_bad_requests;
          Alcotest.test_case "validate config" `Quick test_validate_config
        ] )
    ]
