(* Tests for the provenance layer: certificates agree with eval, the
   independent checker accepts fresh certificates and rejects tampered
   ones with precise violations, JSON round-trips, theorem and sweep
   certification, counters and budgets. *)

open Pak_rational
open Pak_pps
open Pak_logic
module Cert = Pak_cert.Cert
module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget
module Error = Pak_guard.Error
module Pool = Pak_par.Pool

let q = Q.of_ints
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let replace_first ~sub ~by s =
  let n = String.length sub and m = String.length s in
  let rec find i =
    if i + n > m then None else if String.sub s i n = sub then Some i else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.fail (Printf.sprintf "substring %S not found" sub)
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + n) (m - (i + n))

(* Atoms p0..p4 interpreted from both agents' local labels, so random
   formulas exercise genuinely state-dependent facts. *)
let valuation atom g =
  match atom with
  | "p0" | "p1" | "p2" | "p3" | "p4" ->
    Hashtbl.hash (atom, Gstate.local g 0, Gstate.local g 1) mod 2 = 0
  | _ -> false

let seeds = QCheck.int_range 0 1_000_000

(* Same memoized size-indexed generator shape as test_logic's, over
   every connective and modality the certifier handles. *)
let gen_formula : Formula.t QCheck.arbitrary =
  let open QCheck.Gen in
  let atom_gen = map (fun i -> Formula.Atom (Printf.sprintf "p%d" i)) (int_range 0 4) in
  let rat_gen = map (fun (a, b) -> q a (a + b + 1)) (pair (int_range 0 5) (int_range 0 5)) in
  let cmp_gen = oneofl [ Formula.Geq; Formula.Gt; Formula.Leq; Formula.Lt; Formula.Eq ] in
  let group_gen = oneofl [ [ 0 ]; [ 1 ]; [ 0; 1 ] ] in
  let max_size = 6 in
  let gens = Array.make (max_size + 1) (return Formula.True) in
  let gen n = gens.(max 0 (min max_size n)) in
  for n = 0 to max_size do
    gens.(n) <-
      (if n <= 0 then oneof [ atom_gen; return Formula.True; return Formula.False ]
       else
         frequency
           [ (2, atom_gen);
             (2, map2 (fun a b -> Formula.And (a, b)) (gen (n / 2)) (gen (n / 2)));
             (2, map2 (fun a b -> Formula.Or (a, b)) (gen (n / 2)) (gen (n / 2)));
             (1, map2 (fun a b -> Formula.Implies (a, b)) (gen (n / 2)) (gen (n / 2)));
             (1, map2 (fun a b -> Formula.Iff (a, b)) (gen (n / 2)) (gen (n / 2)));
             (2, map (fun f -> Formula.Not f) (gen (n - 1)));
             (2, map2 (fun i f -> Formula.Knows (i, f)) (int_range 0 1) (gen (n - 1)));
             ( 2,
               map2
                 (fun (c, r) f -> Formula.Believes (0, c, r, f))
                 (pair cmp_gen rat_gen) (gen (n - 1)) );
             (1, map (fun i -> Formula.Does (i, "act_a")) (int_range 0 1));
             (1, map (fun f -> Formula.Eventually f) (gen (n - 1)));
             (1, map (fun f -> Formula.Globally f) (gen (n - 1)));
             (1, map (fun f -> Formula.Next f) (gen (n - 1)));
             (1, map (fun f -> Formula.Once f) (gen (n - 1)));
             (1, map (fun f -> Formula.Historically f) (gen (n - 1)));
             (1, map2 (fun g f -> Formula.EveryoneKnows (g, f)) group_gen (gen (n - 1)));
             (1, map2 (fun g f -> Formula.CommonKnows (g, f)) group_gen (gen (n - 1)));
             ( 1,
               map2
                 (fun (g, r) f -> Formula.EveryoneBelieves (g, r, f))
                 (pair group_gen rat_gen) (gen (n - 1)) );
             ( 1,
               map2
                 (fun (g, r) f -> Formula.CommonBelief (g, r, f))
                 (pair group_gen rat_gen) (gen (n - 1)) )
           ])
  done;
  QCheck.make ~print:Formula.to_string (gen max_size)

let eval_points tree f =
  let fact = Semantics.eval tree ~valuation f in
  List.rev
    (Tree.fold_points tree ~init:[] ~f:(fun acc ~run ~time ->
         if Fact.holds fact ~run ~time then (run, time) :: acc else acc))

(* ------------------------------------------------------------------ *)
(* The soundness loop (the acceptance criterion)                       *)
(* ------------------------------------------------------------------ *)

let prop_soundness =
  QCheck.Test.make ~count:1000
    ~name:"check t (certify t f) = Ok and root agrees with eval (1000 systems)"
    (QCheck.pair seeds gen_formula)
    (fun (seed, f) ->
      let t = Gen.tree seed in
      let c = Cert.certify t ~valuation f in
      (match Cert.check ~valuation t c with
      | Ok () -> ()
      | Error v -> QCheck.Test.fail_report (Cert.violation_to_string v));
      c.Cert.root.Cert.points = eval_points t f)

let prop_corrupted_rejected =
  QCheck.Test.make ~count:200 ~name:"tampered root point set is rejected"
    (QCheck.pair seeds gen_formula)
    (fun (seed, f) ->
      let t = Gen.tree seed in
      let c = Cert.certify t ~valuation f in
      let root = c.Cert.root in
      let points =
        match root.Cert.points with [] -> [ (0, 0) ] | _ :: rest -> rest
      in
      let c' = { c with Cert.root = { root with Cert.points = points } } in
      match Cert.check ~valuation t c' with
      | Ok () -> QCheck.Test.fail_report "tampered certificate accepted"
      | Error v -> v.Cert.path = "root" && v.Cert.reason <> "")

let prop_check_without_valuation =
  QCheck.Test.make ~count:200 ~name:"check without valuation trusts only atom leaves"
    (QCheck.pair seeds gen_formula)
    (fun (seed, f) ->
      let t = Gen.tree seed in
      let c = Cert.certify t ~valuation f in
      match Cert.check t c with
      | Ok () -> true
      | Error v -> QCheck.Test.fail_report (Cert.violation_to_string v))

(* ------------------------------------------------------------------ *)
(* Precise violations on targeted corruptions                          *)
(* ------------------------------------------------------------------ *)

let fixed_tree () = Gen.tree 42

let is_error = function Ok () -> false | Error (_ : Cert.violation) -> true

let test_violation_wrong_system () =
  let t = fixed_tree () in
  let c = Cert.certify t ~valuation (Parser.parse "K[0] p0") in
  let rec other s =
    let t' = Gen.tree s in
    if Tree.n_runs t' <> Tree.n_runs t then t' else other (s + 1)
  in
  let t' = other 43 in
  match Cert.check ~valuation t' c with
  | Ok () -> Alcotest.fail "certificate accepted against a different system"
  | Error v ->
    check_string "path" "root" v.Cert.path;
    check_bool "names the run counts" true (contains "runs" v.Cert.reason)

let test_violation_belief_measure () =
  let t = fixed_tree () in
  let c = Cert.certify t ~valuation (Parser.parse "B[0]>=1/2 p0") in
  let root = c.Cert.root in
  let evidence =
    match root.Cert.evidence with
    | Cert.Belief (bc :: rest) ->
      Cert.Belief ({ bc with Cert.bc_degree = Q.add bc.Cert.bc_degree Q.one } :: rest)
    | _ -> Alcotest.fail "expected belief evidence"
  in
  let c' = { c with Cert.root = { root with Cert.evidence } } in
  match Cert.check ~valuation t c' with
  | Ok () -> Alcotest.fail "tampered belief degree accepted"
  | Error v ->
    check_string "path" "root" v.Cert.path;
    check_bool "reason names the degree" true (contains "degree" v.Cert.reason)

let test_violation_fixpoint_truncated () =
  let t = fixed_tree () in
  let c = Cert.certify t ~valuation (Parser.parse "CB[0,1]>=1/2 (p0 | p1)") in
  let root = c.Cert.root in
  let evidence =
    match root.Cert.evidence with
    | Cert.Fixpoint iters ->
      let n = List.length iters in
      check_bool "at least one iteration" true (n >= 1);
      Cert.Fixpoint (List.filteri (fun i _ -> i < n - 1) iters)
    | _ -> Alcotest.fail "expected fixpoint evidence"
  in
  let c' = { c with Cert.root = { root with Cert.evidence } } in
  check_bool "truncated fixpoint rejected" true (is_error (Cert.check ~valuation t c'))

let test_violation_missing_cell () =
  let t = fixed_tree () in
  let c = Cert.certify t ~valuation (Parser.parse "K[1] p1") in
  let root = c.Cert.root in
  let evidence =
    match root.Cert.evidence with
    | Cert.Knowledge (_ :: rest) -> Cert.Knowledge rest
    | _ -> Alcotest.fail "expected knowledge evidence"
  in
  let c' = { c with Cert.root = { root with Cert.evidence } } in
  match Cert.check ~valuation t c' with
  | Ok () -> Alcotest.fail "missing K-cell accepted"
  | Error v ->
    check_bool "reason mentions a missing cell" true (contains "missing" v.Cert.reason)

let test_violation_child_formula () =
  let t = fixed_tree () in
  let c = Cert.certify t ~valuation (Parser.parse "!p0") in
  let child = Cert.certify t ~valuation (Parser.parse "p1") in
  let root = c.Cert.root in
  let c' =
    { c with Cert.root = { root with Cert.children = [ child.Cert.root ] } }
  in
  check_bool "wrong child formula rejected" true (is_error (Cert.check ~valuation t c'))

(* ------------------------------------------------------------------ *)
(* JSON round-trip and schema pinning                                  *)
(* ------------------------------------------------------------------ *)

let test_schema_version () = check_int "schema_version" 1 Cert.schema_version

let prop_json_roundtrip =
  QCheck.Test.make ~count:150 ~name:"to_json/of_json_string round-trip is byte-identical"
    (QCheck.pair seeds gen_formula)
    (fun (seed, f) ->
      let t = Gen.tree seed in
      let c = Cert.certify t ~valuation f in
      let j = Cert.to_json c in
      match Cert.of_json_string j with
      | Error msg -> QCheck.Test.fail_report msg
      | Ok c' ->
        if Cert.to_json c' <> j then QCheck.Test.fail_report "re-serialization differs";
        (match Cert.check ~valuation t c' with
        | Ok () -> true
        | Error v -> QCheck.Test.fail_report (Cert.violation_to_string v)))

let test_json_rejects () =
  let t = fixed_tree () in
  let c = Cert.certify t ~valuation (Parser.parse "K[0] p0 & B[1]>=1/3 F p1") in
  let j = Cert.to_json c in
  (match Cert.of_json_string "{ not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (match Cert.of_json_string "" with
  | Ok _ -> Alcotest.fail "empty accepted"
  | Error _ -> ());
  let bumped = replace_first ~sub:"\"schema_version\":1" ~by:"\"schema_version\":2" j in
  (match Cert.of_json_string bumped with
  | Ok _ -> Alcotest.fail "future schema version accepted"
  | Error msg -> check_bool "says schema" true (contains "schema" msg));
  let wrong_kind = replace_first ~sub:"\"kind\":\"and\"" ~by:"\"kind\":\"or\"" j in
  match Cert.of_json_string wrong_kind with
  | Ok _ -> Alcotest.fail "mismatched kind accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Counters, fixpoint parity, budgets                                  *)
(* ------------------------------------------------------------------ *)

let test_gfp_iteration_parity () =
  Obs.enable ();
  let t = fixed_tree () in
  let f = Parser.parse "CB[0,1]>=1/2 (p0 | p1)" in
  let before = Obs.counter_value "semantics.gfp_iters" in
  ignore (Semantics.eval t ~valuation f);
  let eval_iters = Obs.counter_value "semantics.gfp_iters" - before in
  let cert_before = Obs.counter_value "cert.gfp_iters" in
  let c = Cert.certify t ~valuation f in
  let cert_iters = Obs.counter_value "cert.gfp_iters" - cert_before in
  let trace_len =
    match c.Cert.root.Cert.evidence with
    | Cert.Fixpoint iters -> List.length iters
    | _ -> Alcotest.fail "expected fixpoint evidence"
  in
  check_int "trace length = eval gfp iterations" eval_iters trace_len;
  check_int "cert.gfp_iters counts the same iterations" eval_iters cert_iters;
  Obs.disable ()

let test_counters () =
  Obs.enable ();
  let t = fixed_tree () in
  let f = Parser.parse "K[0] p0 & B[1]>=1/3 p1" in
  let nodes_before = Obs.counter_value "cert.nodes" in
  let checks_before = Obs.counter_value "cert.checks" in
  let c = Cert.certify t ~valuation f in
  check_int "cert.nodes counts certificate nodes"
    (nodes_before + Cert.size c)
    (Obs.counter_value "cert.nodes");
  (match Cert.check ~valuation t c with Ok () -> () | Error _ -> Alcotest.fail "check");
  check_int "cert.checks bumped" (checks_before + 1) (Obs.counter_value "cert.checks");
  let viol_before = Obs.counter_value "cert.check_violations" in
  let root = c.Cert.root in
  let c' =
    { c with
      Cert.root =
        { root with
          Cert.points = (match root.Cert.points with [] -> [ (0, 0) ] | _ :: r -> r)
        }
    }
  in
  check_bool "violation" true (is_error (Cert.check ~valuation t c'));
  check_int "cert.check_violations bumped" (viol_before + 1)
    (Obs.counter_value "cert.check_violations");
  Obs.disable ()

let test_budget_bounds_certify () =
  let t = fixed_tree () in
  let f = Parser.parse "CB[0,1]>=1/2 (p0 | p1)" in
  match
    Budget.with_budget
      (Budget.limits ~max_iters:0 ())
      (fun () -> Cert.certify t ~valuation f)
  with
  | Ok _ -> Alcotest.fail "expected budget exhaustion"
  | Error e -> check_string "kind" "budget-exceeded" (Error.kind_name e.Error.kind)

(* ------------------------------------------------------------------ *)
(* holds_at, size, pp                                                  *)
(* ------------------------------------------------------------------ *)

let test_surface_queries () =
  let t = fixed_tree () in
  let f = Parser.parse "K[0] p0 -> p0" in
  let c = Cert.certify t ~valuation f in
  let fact = Semantics.eval t ~valuation f in
  Tree.iter_points t (fun ~run ~time ->
      check_bool
        (Printf.sprintf "holds_at (%d,%d)" run time)
        (Fact.holds fact ~run ~time)
        (Cert.holds_at c ~run ~time));
  (* Implies, its two children, and K's child: the shared [p0] node is
     counted once per child slot. *)
  check_int "size" 4 (Cert.size c);
  let text = Format.asprintf "%a" (fun fmt -> Cert.pp fmt) c in
  check_bool "pp mentions the certificate" true (contains "certificate" text);
  let at_text = Format.asprintf "%a" (fun fmt -> Cert.pp ?at:(Some (0, 0)) fmt) c in
  check_bool "pp ~at shows a verdict" true (contains "verdict at" at_text);
  let shallow = Format.asprintf "%a" (fun fmt -> Cert.pp ?depth:(Some 0) fmt) c in
  check_bool "pp ~depth elides children" true (contains "elided" shallow)

(* ------------------------------------------------------------------ *)
(* Theorem certificates                                                *)
(* ------------------------------------------------------------------ *)

let find_instance () =
  let rec go s =
    match Sweep.seed_instance s with Some x -> x | None -> go (s + 1)
  in
  go 1

let test_theorem_certificates () =
  let tree, (agent, act), fact = find_instance () in
  List.iter
    (fun check ->
      let tc = Cert.Theorem.certify fact ~check ~agent ~act ~eps:(q 1 10) () in
      (match Cert.Theorem.check tree ~fact tc with
      | Ok () -> ()
      | Error v ->
        Alcotest.fail
          (Printf.sprintf "%s: %s" (Sweep.check_name check) (Cert.violation_to_string v)));
      (match Cert.Theorem.check tree tc with
      | Ok () -> ()
      | Error v ->
        Alcotest.fail
          (Printf.sprintf "%s (no fact): %s" (Sweep.check_name check)
             (Cert.violation_to_string v)));
      let bad = { tc with Cert.Theorem.verdict = not tc.Cert.Theorem.verdict } in
      (match Cert.Theorem.check tree ~fact bad with
      | Ok () -> Alcotest.fail "flipped verdict accepted"
      | Error v ->
        check_bool "reason mentions the verdict" true (contains "verdict" v.Cert.reason));
      let bad_mu = { tc with Cert.Theorem.mu = Q.add tc.Cert.Theorem.mu Q.one } in
      check_bool "tampered mu rejected" true
        (is_error (Cert.Theorem.check tree ~fact bad_mu)))
    Sweep.all_checks;
  (* The textual rendering stays total and names the kind. *)
  let tc = Cert.Theorem.certify fact ~check:Sweep.Expectation ~agent ~act ~eps:(q 1 10) () in
  let text = Format.asprintf "%a" Cert.Theorem.pp tc in
  check_bool "theorem pp mentions the kind" true (contains "thm62" text)

let test_certify_sweep () =
  let r = Cert.certify_sweep Sweep.Expectation ~first_seed:1 ~count:25 in
  check_bool "sweep passed" true (Cert.sweep_passed r);
  check_int "all seeds accounted for" 25 (r.Cert.sw_certified + r.Cert.sw_skipped);
  check_int "no failures" 0 (List.length r.Cert.sw_failures);
  (* Jobs invariance: same report under a pool. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let r' = Cert.certify_sweep ~pool Sweep.Expectation ~first_seed:1 ~count:25 in
      check_int "certified" r.Cert.sw_certified r'.Cert.sw_certified;
      check_int "skipped" r.Cert.sw_skipped r'.Cert.sw_skipped;
      check_bool "failures" true (r.Cert.sw_failures = r'.Cert.sw_failures));
  (* The sweep certifies exactly the instances Sweep.run checks. *)
  let sr = Sweep.run Sweep.Expectation ~first_seed:1 ~count:25 in
  check_int "checked = certified" sr.Sweep.checked r.Cert.sw_certified;
  check_int "skipped agree" sr.Sweep.skipped r.Cert.sw_skipped

(* ------------------------------------------------------------------ *)
(* Simplify certifies consistently                                     *)
(* ------------------------------------------------------------------ *)

let prop_simplify_certifies =
  QCheck.Test.make ~count:300
    ~name:"simplified formulas certify to the same root point set"
    (QCheck.pair seeds gen_formula)
    (fun (seed, f) ->
      let t = Gen.tree seed in
      let c = Cert.certify t ~valuation f in
      let c' = Cert.certify t ~valuation (Simplify.simplify f) in
      (match Cert.check ~valuation t c' with
      | Ok () -> ()
      | Error v -> QCheck.Test.fail_report (Cert.violation_to_string v));
      c.Cert.root.Cert.points = c'.Cert.root.Cert.points)

let () =
  Alcotest.run "cert"
    [ ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          [ prop_soundness; prop_corrupted_rejected; prop_check_without_valuation ] );
      ( "violations",
        [ Alcotest.test_case "wrong system" `Quick test_violation_wrong_system;
          Alcotest.test_case "belief measure" `Quick test_violation_belief_measure;
          Alcotest.test_case "fixpoint truncated" `Quick test_violation_fixpoint_truncated;
          Alcotest.test_case "missing cell" `Quick test_violation_missing_cell;
          Alcotest.test_case "child formula" `Quick test_violation_child_formula
        ] );
      ( "json",
        Alcotest.test_case "schema version pinned" `Quick test_schema_version
        :: Alcotest.test_case "malformed and mismatched inputs" `Quick test_json_rejects
        :: List.map QCheck_alcotest.to_alcotest [ prop_json_roundtrip ] );
      ( "observability",
        [ Alcotest.test_case "gfp iteration parity" `Quick test_gfp_iteration_parity;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "budget bounds certify" `Quick test_budget_bounds_certify
        ] );
      ( "surfaces",
        [ Alcotest.test_case "holds_at/size/pp" `Quick test_surface_queries ] );
      ( "theorems",
        [ Alcotest.test_case "certify and re-check every kind" `Quick
            test_theorem_certificates;
          Alcotest.test_case "certify_sweep" `Quick test_certify_sweep
        ] );
      ( "simplify",
        List.map QCheck_alcotest.to_alcotest [ prop_simplify_certifies ] )
    ]
