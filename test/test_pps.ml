(* Tests for the pps core: bitsets, trees, facts, actions, beliefs,
   independence, constraints and theorem checkers. *)

open Pak_rational
open Pak_pps

let q = Q.of_ints
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basics () =
  let s = Bitset.of_list 10 [ 1; 3; 7 ] in
  check_int "cardinal" 3 (Bitset.cardinal s);
  check_bool "mem 3" true (Bitset.mem s 3);
  check_bool "mem 2" false (Bitset.mem s 2);
  Alcotest.(check (list int)) "to_list sorted" [ 1; 3; 7 ] (Bitset.to_list s);
  check_bool "empty" true (Bitset.is_empty (Bitset.create 10));
  check_int "full" 10 (Bitset.cardinal (Bitset.full 10));
  check_int "full across words" 100 (Bitset.cardinal (Bitset.full 100));
  check_bool "remove" false (Bitset.mem (Bitset.remove s 3) 3);
  check_int "add idempotent" 3 (Bitset.cardinal (Bitset.add s 7))

let test_bitset_ops () =
  let a = Bitset.of_list 8 [ 0; 1; 2 ] and b = Bitset.of_list 8 [ 2; 3 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2; 3 ] (Bitset.to_list (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 2 ] (Bitset.to_list (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 1 ] (Bitset.to_list (Bitset.diff a b));
  Alcotest.(check (list int)) "complement" [ 3; 4; 5; 6; 7 ]
    (Bitset.to_list (Bitset.complement a));
  check_bool "subset yes" true (Bitset.subset (Bitset.of_list 8 [ 1 ]) a);
  check_bool "subset no" false (Bitset.subset b a);
  check_bool "for_all" true (Bitset.for_all (fun i -> i < 3) a);
  check_bool "exists" true (Bitset.exists (fun i -> i = 3) b);
  Alcotest.(check (list int)) "filter" [ 0; 2 ]
    (Bitset.to_list (Bitset.filter (fun i -> i mod 2 = 0) a));
  check_int "fold" 3 (Bitset.fold (fun i acc -> acc + i) a 0);
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset.union: capacity mismatch") (fun () ->
      ignore (Bitset.union a (Bitset.create 9)))

let test_bitset_word_boundary () =
  (* Exercise indices straddling the 62-bit word boundary. *)
  let s = Bitset.of_list 130 [ 0; 61; 62; 63; 123; 124; 129 ] in
  check_int "cardinal" 7 (Bitset.cardinal s);
  Alcotest.(check (list int)) "roundtrip" [ 0; 61; 62; 63; 123; 124; 129 ]
    (Bitset.to_list s);
  check_int "complement cardinal" 123 (Bitset.cardinal (Bitset.complement s));
  check_bool "complement no overflow bits" true
    (Bitset.for_all (fun i -> i < 130) (Bitset.complement s))

(* Bulk constructors and word-parallel set operations against a naive
   per-bit bool-array oracle. Capacities are deliberately ragged —
   0, 1, and neighbours of the 62-bit word size — so the masked high
   bits of the last word are exercised on every operation (the
   vectorized evaluation engine leans on exactly these invariants,
   see doc/EVALUATION.md). *)
let gen_bitset_case =
  let open QCheck.Gen in
  let cap_gen = oneof [ oneofl [ 0; 1; 61; 62; 63; 124 ]; int_range 0 200 ] in
  let members cap =
    if cap = 0 then return []
    else list_size (int_range 0 (2 * cap)) (int_range 0 (cap - 1))
  in
  let show xs = String.concat ";" (List.map string_of_int xs) in
  QCheck.make
    ~print:(fun (cap, xs, ys) -> Printf.sprintf "cap=%d a=[%s] b=[%s]" cap (show xs) (show ys))
    (cap_gen >>= fun cap -> map2 (fun xs ys -> (cap, xs, ys)) (members cap) (members cap))

let prop_bitset_bulk_oracle =
  QCheck.Test.make ~count:500 ~name:"bulk bitset ops agree with per-bit oracle"
    gen_bitset_case (fun (cap, xs, ys) ->
      let arr zs =
        let a = Array.make cap false in
        List.iter (fun i -> a.(i) <- true) zs;
        a
      in
      let ax = arr xs and ay = arr ys in
      let sx = Bitset.of_list cap xs and sy = Bitset.of_list cap ys in
      let popcount a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a in
      (* to_list detects spurious indices, cardinal (a word-level
         popcount) detects set bits hiding above the capacity. *)
      let agrees s expect =
        Bitset.to_list s = List.filter (fun i -> expect.(i)) (List.init cap Fun.id)
        && Bitset.cardinal s = popcount expect
      in
      let map2 f a b = Array.init cap (fun i -> f a.(i) b.(i)) in
      agrees (Bitset.init cap (Array.get ax)) ax
      && Bitset.equal (Bitset.init cap (Array.get ax)) sx
      && agrees (Bitset.union sx sy) (map2 ( || ) ax ay)
      && agrees (Bitset.inter sx sy) (map2 ( && ) ax ay)
      && agrees (Bitset.diff sx sy) (map2 (fun a b -> a && not b) ax ay)
      && agrees (Bitset.symdiff sx sy) (map2 ( <> ) ax ay)
      && agrees (Bitset.complement sx) (Array.map not ax)
      && Bitset.equal sx sy = (ax = ay)
      && Bitset.equal (Bitset.complement (Bitset.complement sx)) sx)

(* ------------------------------------------------------------------ *)
(* Hand-built trees                                                    *)
(* ------------------------------------------------------------------ *)

(* Figure 1 of the paper: one agent, one initial state, a fair mixed
   choice between actions alpha and alpha'. *)
let figure1 () =
  let b = Tree.Builder.create ~n_agents:1 in
  let g0 = Tree.Builder.add_initial b ~prob:Q.one (Gstate.of_labels "e0" [ "l0" ]) in
  let _r =
    Tree.Builder.add_child b ~parent:g0 ~prob:Q.half ~acts:[| "env"; "alpha" |]
      (Gstate.of_labels "e1" [ "l1" ])
  in
  let _r' =
    Tree.Builder.add_child b ~parent:g0 ~prob:Q.half ~acts:[| "env"; "alpha'" |]
      (Gstate.of_labels "e1" [ "l1" ])
  in
  Tree.Builder.finalize b

(* The T̂(p, ε) construction of Theorem 5.2 (Figure 2), hardwired at
   p = 3/4, ε = 1/4. Agent 0 is "i" (receives a message, then fires α
   unconditionally at time 1); agent 1 is "j" (holds the bit). *)
let that () =
  let b = Tree.Builder.create ~n_agents:2 in
  let p = q 3 4 in
  let s0 = Tree.Builder.add_initial b ~prob:(Q.one_minus p) (Gstate.of_labels "e" [ "i0"; "bit0" ]) in
  let s1 = Tree.Builder.add_initial b ~prob:p (Gstate.of_labels "e" [ "i0"; "bit1" ]) in
  (* Round 1: j sends m_j or m'_j; i's time-1 label records the message. *)
  let n_r =
    Tree.Builder.add_child b ~parent:s0 ~prob:Q.one ~acts:[| "env"; "recv"; "send_mj" |]
      (Gstate.of_labels "e" [ "got_mj"; "bit0" ])
  in
  let n_r' =
    Tree.Builder.add_child b ~parent:s1 ~prob:(q 2 3) ~acts:[| "env"; "recv"; "send_mj" |]
      (Gstate.of_labels "e" [ "got_mj"; "bit1" ])
  in
  let n_r'' =
    Tree.Builder.add_child b ~parent:s1 ~prob:(q 1 3) ~acts:[| "env"; "recv"; "send_mj'" |]
      (Gstate.of_labels "e" [ "got_mj'"; "bit1" ])
  in
  (* Round 2: i performs alpha unconditionally. *)
  List.iter
    (fun (parent, bit) ->
      ignore
        (Tree.Builder.add_child b ~parent ~prob:Q.one ~acts:[| "env"; "alpha"; "noop" |]
           (Gstate.of_labels "e" [ "done"; bit ])))
    [ (n_r, "bit0"); (n_r', "bit1"); (n_r'', "bit1") ];
  Tree.Builder.finalize b

let test_tree_structure () =
  let t = figure1 () in
  check_int "n_agents" 1 (Tree.n_agents t);
  check_int "n_nodes" 3 (Tree.n_nodes t);
  check_int "n_runs" 2 (Tree.n_runs t);
  check_int "n_points" 4 (Tree.n_points t);
  check_int "run length" 2 (Tree.run_length t 0);
  check_q "run 0 measure" Q.half (Tree.run_measure t 0);
  check_q "run 1 measure" Q.half (Tree.run_measure t 1);
  check_q "total measure" Q.one (Tree.measure t (Tree.all_runs t));
  check_int "initial nodes" 1 (List.length (Tree.initial_nodes t));
  check_int "children of root child" 2 (List.length (Tree.node_children t 0));
  check_bool "parent of initial" true (Tree.node_parent t 0 = None);
  check_bool "parent of child" true (Tree.node_parent t 1 = Some 0);
  check_int "depth" 1 (Tree.node_depth t 1);
  check_bool "runs agree at 0" true (Tree.runs_agree_upto t 0 1 ~time:0);
  check_bool "runs disagree at 1" false (Tree.runs_agree_upto t 0 1 ~time:1)

let test_tree_actions () =
  let t = figure1 () in
  check_bool "action at t=0 run 0" true
    (Tree.action_at t ~agent:0 ~run:0 ~time:0 = Some "alpha");
  check_bool "action at t=0 run 1" true
    (Tree.action_at t ~agent:0 ~run:1 ~time:0 = Some "alpha'");
  check_bool "no action at final point" true (Tree.action_at t ~agent:0 ~run:0 ~time:1 = None);
  check_bool "env action" true (Tree.env_action_at t ~run:0 ~time:0 = Some "env");
  Alcotest.(check (list string)) "agent actions" [ "alpha"; "alpha'" ]
    (Tree.agent_actions t ~agent:0)

let test_tree_lstates () =
  let t = figure1 () in
  let k0 = Tree.lkey t ~agent:0 ~run:0 ~time:0 in
  check_int "lkey time" 0 (Tree.lkey_time k0);
  Alcotest.(check string) "lkey label" "l0" (Tree.lkey_label k0);
  check_int "l0 occurs in both runs" 2 (Bitset.cardinal (Tree.lstate_runs t k0));
  (* Both runs share the time-1 label "l1", so i cannot distinguish them. *)
  let k1 = Tree.lkey t ~agent:0 ~run:0 ~time:1 in
  check_int "l1 shared" 2 (Bitset.cardinal (Tree.lstate_runs t k1));
  check_int "two lstates total" 2 (List.length (Tree.lstates t ~agent:0));
  let missing = Tree.lkey_make ~agent:0 ~time:0 ~label:"nope" in
  check_bool "missing lstate empty" true (Bitset.is_empty (Tree.lstate_runs t missing))

let test_tree_validation () =
  let b = Tree.Builder.create ~n_agents:1 in
  Alcotest.check_raises "no initial" (Invalid_argument "Tree.finalize: no initial states")
    (fun () -> ignore (Tree.Builder.finalize b));
  let b = Tree.Builder.create ~n_agents:1 in
  ignore (Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "x" ]));
  Alcotest.check_raises "initial mass"
    (Invalid_argument "Tree.finalize: initial probabilities sum to 1/2, not 1") (fun () ->
      ignore (Tree.Builder.finalize b));
  let b = Tree.Builder.create ~n_agents:1 in
  let n = Tree.Builder.add_initial b ~prob:Q.one (Gstate.of_labels "e" [ "x" ]) in
  ignore
    (Tree.Builder.add_child b ~parent:n ~prob:(q 1 3) ~acts:[| "e"; "a" |]
       (Gstate.of_labels "e" [ "y" ]));
  Alcotest.check_raises "internal mass"
    (Invalid_argument "Tree.finalize: node 0 edge probabilities sum to 1/3, not 1")
    (fun () -> ignore (Tree.Builder.finalize b));
  let b = Tree.Builder.create ~n_agents:1 in
  let n = Tree.Builder.add_initial b ~prob:Q.one (Gstate.of_labels "e" [ "x" ]) in
  ignore
    (Tree.Builder.add_child b ~parent:n ~prob:Q.half ~acts:[| "e"; "a" |]
       (Gstate.of_labels "e" [ "y" ]));
  Alcotest.check_raises "duplicate joint action"
    (Invalid_argument "Tree.Builder.add_child: duplicate joint action at this node")
    (fun () ->
      ignore
        (Tree.Builder.add_child b ~parent:n ~prob:Q.half ~acts:[| "e"; "a" |]
           (Gstate.of_labels "e" [ "z" ])));
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Tree.Builder: edge probability must be in (0,1]") (fun () ->
      ignore (Tree.Builder.add_initial b ~prob:Q.zero (Gstate.of_labels "e" [ "x" ])));
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Tree.Builder.add_child: acts must have length n_agents + 1")
    (fun () ->
      ignore
        (Tree.Builder.add_child b ~parent:n ~prob:Q.half ~acts:[| "e" |]
           (Gstate.of_labels "e" [ "w" ])))

let test_tree_synchrony_check () =
  let t = figure1 () in
  Alcotest.(check (list (pair int string))) "no label reuse" []
    (Tree.check_labels_synchronous t);
  (* Build a tree reusing label "x" at two depths. *)
  let b = Tree.Builder.create ~n_agents:1 in
  let n = Tree.Builder.add_initial b ~prob:Q.one (Gstate.of_labels "e" [ "x" ]) in
  ignore
    (Tree.Builder.add_child b ~parent:n ~prob:Q.one ~acts:[| "e"; "a" |]
       (Gstate.of_labels "e" [ "x" ]));
  let t2 = Tree.Builder.finalize b in
  Alcotest.(check (list (pair int string))) "reuse reported" [ (0, "x") ]
    (Tree.check_labels_synchronous t2)

let test_tree_protocol_consistency () =
  (* figure1 and that() are protocol-generated: consistent. *)
  check_int "figure1 consistent" 0 (List.length (Tree.check_protocol_consistency (figure1 ())));
  check_int "that consistent" 0 (List.length (Tree.check_protocol_consistency (that ())));
  (* A tree where the same local state performs alpha with different
     probabilities at two nodes (distinguished only by agent 1's state):
     not realizable by any protocol P_0. *)
  let b = Tree.Builder.create ~n_agents:2 in
  let n0 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "same"; "x" ]) in
  let n1 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "same"; "y" ]) in
  let grow parent p_alpha =
    ignore
      (Tree.Builder.add_child b ~parent ~prob:p_alpha ~acts:[| "e"; "alpha"; "n" |]
         (Gstate.of_labels "e" [ "d"; "d" ]));
    ignore
      (Tree.Builder.add_child b ~parent ~prob:(Q.one_minus p_alpha) ~acts:[| "e"; "beta"; "n" |]
         (Gstate.of_labels "e" [ "d"; "d" ]))
  in
  grow n0 (q 1 3);
  grow n1 (q 2 3);
  let t = Tree.Builder.finalize b in
  let violations = Tree.check_protocol_consistency t in
  check_bool "inconsistency detected" true (violations <> []);
  check_bool "agent 0 flagged" true (List.exists (fun (ag, _, _) -> ag = 0) violations);
  (* Generated protocol-consistent trees pass the check. *)
  for seed = 0 to 20 do
    check_int
      (Printf.sprintf "Gen.tree %d consistent" seed)
      0
      (List.length (Tree.check_protocol_consistency (Gen.tree seed)))
  done

let contains_substr haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_tree_dot () =
  let t = figure1 () in
  let dot = Tree.to_dot t in
  check_bool "mentions lambda" true (contains_substr dot "lambda");
  check_bool "mentions alpha" true (contains_substr dot "alpha")

(* ------------------------------------------------------------------ *)
(* Facts                                                               *)
(* ------------------------------------------------------------------ *)

let test_fact_basics () =
  let t = figure1 () in
  let psi = Fact.not_ (Fact.does t ~agent:0 ~act:"alpha") in
  (* psi = "i is not performing alpha": false at (r,0), true elsewhere *)
  check_bool "(r,0)" false (Fact.holds psi ~run:0 ~time:0);
  check_bool "(r,1)" true (Fact.holds psi ~run:0 ~time:1);
  check_bool "(r',0)" true (Fact.holds psi ~run:1 ~time:0);
  check_bool "tt" true (Fact.holds (Fact.tt t) ~run:0 ~time:0);
  check_bool "ff" false (Fact.holds (Fact.ff t) ~run:0 ~time:0);
  let conj = Fact.and_ psi (Fact.tt t) in
  check_bool "and with tt" false (Fact.holds conj ~run:0 ~time:0);
  check_bool "implies" true
    (Fact.holds (Fact.implies (Fact.ff t) psi) ~run:0 ~time:0);
  check_bool "iff" true
    (Fact.holds (Fact.iff psi psi) ~run:0 ~time:0)

let test_fact_cross_tree_guard () =
  let t1 = figure1 () and t2 = figure1 () in
  Alcotest.check_raises "cross-tree"
    (Invalid_argument "Fact: combining facts from different trees") (fun () ->
      ignore (Fact.and_ (Fact.tt t1) (Fact.tt t2)))

let test_fact_temporal () =
  let t = that () in
  let fires = Fact.does t ~agent:0 ~act:"alpha" in
  let ev = Fact.eventually fires in
  check_bool "eventually true early" true (Fact.holds ev ~run:0 ~time:0);
  check_bool "eventually is run fact" true (Fact.is_about_runs ev);
  let glob = Fact.globally fires in
  check_bool "globally false" false (Fact.holds glob ~run:0 ~time:0);
  let onc = Fact.once fires in
  check_bool "once before" false (Fact.holds onc ~run:0 ~time:0);
  check_bool "once at" true (Fact.holds onc ~run:0 ~time:1);
  check_bool "once after" true (Fact.holds onc ~run:0 ~time:2);
  let hist = Fact.historically (Fact.not_ fires) in
  check_bool "historically true then" true (Fact.holds hist ~run:0 ~time:0);
  check_bool "historically falsified" false (Fact.holds hist ~run:0 ~time:2);
  let nxt = Fact.next fires in
  check_bool "next true at 0" true (Fact.holds nxt ~run:0 ~time:0);
  check_bool "next false at final" false (Fact.holds nxt ~run:0 ~time:2);
  let att = Fact.at_time t 1 fires in
  check_bool "at_time run fact" true (Fact.is_about_runs att);
  check_bool "at_time value" true (Fact.holds att ~run:0 ~time:0)

let test_fact_run_facts () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  check_bool "bit1 about runs" true (Fact.is_about_runs bit1);
  check_bool "bit1 past based" true (Fact.is_past_based bit1);
  let ev = Fact.event_of_run_fact bit1 in
  check_q "µ(bit1) = p" (q 3 4) (Tree.measure t ev);
  let fires_now = Fact.does t ~agent:0 ~act:"alpha" in
  check_bool "does not about runs" false (Fact.is_about_runs fires_now);
  Alcotest.check_raises "event_of_run_fact guard"
    (Invalid_argument "Fact.event_of_run_fact: fact is not a fact about runs") (fun () ->
      ignore (Fact.event_of_run_fact fires_now))

let test_fact_past_based () =
  let t = figure1 () in
  (* "does alpha" at time 0 differs across the two runs although they
     share the time-0 node: not past-based. *)
  let f = Fact.does t ~agent:0 ~act:"alpha" in
  check_bool "does is future-dependent" false (Fact.is_past_based f);
  let g = Fact.of_state_pred t (fun st -> Gstate.local st 0 = "l0") in
  check_bool "state pred past-based" true (Fact.is_past_based g)

let test_fact_at_operators () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  (* i's time-1 local state "got_mj" occurs in runs 0 (bit0) and 1 (bit1). *)
  let k = Tree.lkey_make ~agent:0 ~time:1 ~label:"got_mj" in
  check_int "occurrences" 2 (Bitset.cardinal (Tree.lstate_runs t k));
  check_q "µ(bit1@got_mj)" Q.half (Tree.measure t (Fact.at_lstate bit1 k));
  let ev = Fact.at_action bit1 ~agent:0 ~act:"alpha" in
  check_q "µ(ϕ@α)" (q 3 4) (Tree.measure t ev)

(* ------------------------------------------------------------------ *)
(* Actions                                                             *)
(* ------------------------------------------------------------------ *)

let test_action_properness () =
  let t = that () in
  check_bool "alpha proper" true (Action.is_proper t ~agent:0 ~act:"alpha");
  check_bool "unperformed not proper" false (Action.is_proper t ~agent:0 ~act:"nothing");
  check_int "occurrences" 3 (List.length (Action.occurrences t ~agent:0 ~act:"alpha"));
  check_int "R_alpha is everything" 3
    (Bitset.cardinal (Action.runs_performing t ~agent:0 ~act:"alpha"));
  check_bool "time_performed" true
    (Action.time_performed t ~agent:0 ~act:"alpha" ~run:0 = Some 1);
  check_int "count_in_run" 1 (Action.count_in_run t ~agent:0 ~act:"alpha" ~run:2);
  (* An action repeated in one run is not proper. *)
  let b = Tree.Builder.create ~n_agents:1 in
  let n0 = Tree.Builder.add_initial b ~prob:Q.one (Gstate.of_labels "e" [ "x0" ]) in
  let n1 =
    Tree.Builder.add_child b ~parent:n0 ~prob:Q.one ~acts:[| "e"; "a" |]
      (Gstate.of_labels "e" [ "x1" ])
  in
  ignore
    (Tree.Builder.add_child b ~parent:n1 ~prob:Q.one ~acts:[| "e"; "a" |]
       (Gstate.of_labels "e" [ "x2" ]));
  let t2 = Tree.Builder.finalize b in
  check_bool "repeated not proper" false (Action.is_proper t2 ~agent:0 ~act:"a");
  Alcotest.check_raises "check_proper raises" (Action.Not_proper "agent 0, action a")
    (fun () -> Action.check_proper t2 ~agent:0 ~act:"a")

let test_action_determinism () =
  let t1 = figure1 () in
  (* alpha is chosen by a coin flip at l0: mixed, not deterministic. *)
  check_bool "mixed not deterministic" false (Action.is_deterministic t1 ~agent:0 ~act:"alpha");
  let t = that () in
  (* i fires unconditionally at time 1: deterministic. *)
  check_bool "unconditional deterministic" true (Action.is_deterministic t ~agent:0 ~act:"alpha");
  (* j's send_mj' happens only from bit1, probabilistically: mixed. *)
  check_bool "j send mixed" false (Action.is_deterministic t ~agent:1 ~act:"send_mj")

let test_action_lstates () =
  let t = that () in
  let ls = Action.performing_lstates t ~agent:0 ~act:"alpha" in
  check_int "Li[alpha] size" 2 (List.length ls);
  Alcotest.(check (list string)) "Li[alpha] labels" [ "got_mj"; "got_mj'" ]
    (List.map Tree.lkey_label ls);
  let k = Tree.lkey_make ~agent:0 ~time:1 ~label:"got_mj" in
  check_int "alpha@got_mj" 2 (Bitset.cardinal (Action.performed_at_lstate t ~agent:0 ~act:"alpha" k))

(* ------------------------------------------------------------------ *)
(* Beliefs                                                             *)
(* ------------------------------------------------------------------ *)

let test_belief_figure1 () =
  let t = figure1 () in
  let psi = Fact.not_ (Fact.does t ~agent:0 ~act:"alpha") in
  (* beta_i(psi) at the initial state is 1/2 in both runs. *)
  check_q "beta at (r,0)" Q.half (Belief.degree psi ~agent:0 ~run:0 ~time:0);
  check_q "beta at (r',0)" Q.half (Belief.degree psi ~agent:0 ~run:1 ~time:0);
  (* beta@alpha: 1/2 in the run performing alpha, 0 by convention in r'. *)
  check_q "beta@alpha in r" Q.half (Belief.at_action psi ~agent:0 ~act:"alpha" ~run:0);
  check_q "beta@alpha in r'" Q.zero (Belief.at_action psi ~agent:0 ~act:"alpha" ~run:1);
  (* mu(psi@alpha | alpha) = 0 while beliefs meet 1/2: Thm 4.2 premise
     fails to transfer because independence fails. *)
  check_q "mu(psi@alpha|alpha)" Q.zero (Constr.mu_given_action psi ~agent:0 ~act:"alpha")

let test_belief_that () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  (* At "got_mj" the belief is (p-ε)/(1-ε) = 2/3; at "got_mj'" it is 1. *)
  check_q "pooled belief" (q 2 3)
    (Belief.degree_at_lstate bit1 (Tree.lkey_make ~agent:0 ~time:1 ~label:"got_mj"));
  check_q "revealing belief" Q.one
    (Belief.degree_at_lstate bit1 (Tree.lkey_make ~agent:0 ~time:1 ~label:"got_mj'"));
  check_q "mu = p" (q 3 4) (Constr.mu_given_action bit1 ~agent:0 ~act:"alpha");
  (* Theorem 5.2's quantities: µ(β ≥ p | α) = ε = 1/4. *)
  let strong = Belief.threshold_event bit1 ~agent:0 ~act:"alpha" ~cmp:`Geq (q 3 4) in
  check_q "µ(β≥p|α) = ε" (q 1 4)
    (Tree.cond t strong ~given:(Action.runs_performing t ~agent:0 ~act:"alpha"));
  (* Expected belief equals µ (Theorem 6.2): 3/4·(2/3) + 1/4·1 = 3/4. *)
  check_q "expected belief" (q 3 4) (Belief.expected_at_action bit1 ~agent:0 ~act:"alpha");
  check_bool "min belief" true
    (Belief.min_at_action bit1 ~agent:0 ~act:"alpha" = Some (q 2 3))

(* ------------------------------------------------------------------ *)
(* Independence                                                        *)
(* ------------------------------------------------------------------ *)

let test_independence () =
  let t1 = figure1 () in
  let psi = Fact.not_ (Fact.does t1 ~agent:0 ~act:"alpha") in
  check_bool "figure 1 fails" false (Independence.holds psi ~agent:0 ~act:"alpha");
  let fails = Independence.failures psi ~agent:0 ~act:"alpha" in
  check_int "one failing lstate" 1 (List.length fails);
  (match fails with
   | [ f ] ->
     check_q "belief side" Q.half f.Independence.belief;
     check_q "act prob side" Q.half f.Independence.act_prob;
     check_q "joint side" Q.zero f.Independence.joint
   | _ -> Alcotest.fail "expected exactly one failure");
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  check_bool "past-based fact independent" true (Independence.holds bit1 ~agent:0 ~act:"alpha")

(* ------------------------------------------------------------------ *)
(* Constraints and theorems                                            *)
(* ------------------------------------------------------------------ *)

let test_constraint_report () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  let c = Constr.make ~agent:0 ~act:"alpha" ~fact:bit1 ~threshold:(q 7 10) in
  check_bool "holds at 0.7" true (Constr.holds c);
  let r = Constr.report c in
  check_q "report mu" (q 3 4) r.Constr.mu;
  check_q "report action measure" Q.one r.Constr.action_measure;
  check_bool "report satisfied" true r.Constr.satisfied;
  check_bool "report independent" true r.Constr.independent;
  let c2 = Constr.make ~agent:0 ~act:"alpha" ~fact:bit1 ~threshold:(q 4 5) in
  check_bool "fails at 0.8" false (Constr.holds c2);
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Constr.make: threshold must be a probability") (fun () ->
      ignore (Constr.make ~agent:0 ~act:"alpha" ~fact:bit1 ~threshold:(q 3 2)))

let test_theorem_62_counterexample () =
  (* Figure 1 with ϕ = does(α): µ = 1 but E[β] = 1/2; independence
     fails, so Theorem 6.2 is not contradicted. *)
  let t = figure1 () in
  let phi = Fact.does t ~agent:0 ~act:"alpha" in
  let r = Theorems.expectation_identity phi ~agent:0 ~act:"alpha" in
  check_q "mu" Q.one r.Theorems.mu;
  check_q "expected" Q.half r.Theorems.expected_belief;
  check_bool "not independent" false r.Theorems.independent;
  check_bool "identity fails" false r.Theorems.identity;
  check_bool "theorem respected" true r.Theorems.respected

let test_theorem_62_that () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  let r = Theorems.expectation_identity bit1 ~agent:0 ~act:"alpha" in
  check_bool "independent" true r.Theorems.independent;
  check_bool "identity holds" true r.Theorems.identity;
  check_q "both sides 3/4" (q 3 4) r.Theorems.expected_belief

let test_theorem_42 () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  (* p = 2/3: beliefs are 2/3 and 1, so the premise holds; µ = 3/4 ≥ 2/3. *)
  let r = Theorems.sufficiency bit1 ~agent:0 ~act:"alpha" ~p:(q 2 3) in
  check_bool "premise" true r.Theorems.premise;
  check_bool "conclusion" true r.Theorems.conclusion;
  check_bool "respected" true r.Theorems.respected;
  check_q "min belief" (q 2 3) r.Theorems.min_belief;
  (* p = 3/4: premise fails (min belief 2/3), nothing is claimed. *)
  let r2 = Theorems.sufficiency bit1 ~agent:0 ~act:"alpha" ~p:(q 3 4) in
  check_bool "premise fails" false r2.Theorems.premise;
  check_bool "still respected" true r2.Theorems.respected;
  (* Figure 1: premise holds at p=1/2 but µ=0 — independence is false,
     so the implication is vacuous and respected. *)
  let t1 = figure1 () in
  let psi = Fact.not_ (Fact.does t1 ~agent:0 ~act:"alpha") in
  let r3 = Theorems.sufficiency psi ~agent:0 ~act:"alpha" ~p:Q.half in
  check_bool "fig1 premise" true r3.Theorems.premise;
  check_bool "fig1 conclusion fails" false r3.Theorems.conclusion;
  check_bool "fig1 not independent" false r3.Theorems.independent;
  check_bool "fig1 respected" true r3.Theorems.respected

let test_lemma_43 () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  let r = Theorems.lemma43 bit1 ~agent:0 ~act:"alpha" in
  check_bool "alpha deterministic" true r.Theorems.deterministic;
  check_bool "bit1 past based" true r.Theorems.past_based;
  check_bool "independent" true r.Theorems.independent;
  check_bool "respected" true r.Theorems.respected;
  let t1 = figure1 () in
  let psi = Fact.not_ (Fact.does t1 ~agent:0 ~act:"alpha") in
  let r2 = Theorems.lemma43 psi ~agent:0 ~act:"alpha" in
  check_bool "fig1 neither hypothesis" true
    ((not r2.Theorems.deterministic) && not r2.Theorems.past_based);
  check_bool "fig1 respected (vacuous)" true r2.Theorems.respected

let test_lemma_51 () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  let r = Theorems.necessity_exists bit1 ~agent:0 ~act:"alpha" ~p:(q 3 4) in
  check_bool "constraint holds" true r.Theorems.constraint_holds;
  check_bool "witness exists" true (r.Theorems.witness <> None);
  (* The witness must be the m'_j run (belief 1 ≥ 3/4). *)
  (match r.Theorems.witness with
   | Some (run, time) ->
     check_q "witness belief" Q.one (Belief.degree bit1 ~agent:0 ~run ~time)
   | None -> Alcotest.fail "no witness");
  check_bool "respected" true r.Theorems.respected

let test_theorem_71_corollary_72 () =
  let t = that () in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  (* µ = 3/4 = 1 - 1/4 ≥ 1 - δε needs δε ≥ 1/4, e.g. δ = 1/2, ε = 1/2. *)
  let r = Theorems.pak bit1 ~agent:0 ~act:"alpha" ~eps:Q.half ~delta:Q.half in
  check_bool "premise" true r.Theorems.premise;
  check_bool "conclusion" true r.Theorems.conclusion;
  check_bool "respected" true r.Theorems.respected;
  check_q "µ(β ≥ 1/2 | α)" Q.one r.Theorems.strong_belief_measure;
  let r2 = Theorems.pak_corollary bit1 ~agent:0 ~act:"alpha" ~eps:Q.half in
  check_bool "corollary respected" true r2.Theorems.respected;
  Alcotest.check_raises "bad eps" (Invalid_argument "Theorems.pak: eps and delta must lie in (0,1)")
    (fun () -> ignore (Theorems.pak bit1 ~agent:0 ~act:"alpha" ~eps:Q.one ~delta:Q.half))

let test_kop () =
  (* A reliable variant: i performs alpha only when bit = 1 surely
     holds. Tree: two initial states; alpha performed only from bit1. *)
  let b = Tree.Builder.create ~n_agents:2 in
  let s0 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i_idle"; "bit0" ]) in
  let s1 = Tree.Builder.add_initial b ~prob:Q.half (Gstate.of_labels "e" [ "i_go"; "bit1" ]) in
  ignore
    (Tree.Builder.add_child b ~parent:s0 ~prob:Q.one ~acts:[| "e"; "skip"; "noop" |]
       (Gstate.of_labels "e" [ "i_idle1"; "bit0" ]));
  ignore
    (Tree.Builder.add_child b ~parent:s1 ~prob:Q.one ~acts:[| "e"; "alpha"; "noop" |]
       (Gstate.of_labels "e" [ "i_done"; "bit1" ]));
  let t = Tree.Builder.finalize b in
  let bit1 = Fact.of_state_pred t (fun g -> Gstate.local g 1 = "bit1") in
  let r = Theorems.kop bit1 ~agent:0 ~act:"alpha" in
  check_q "mu = 1" Q.one r.Theorems.mu;
  check_bool "premise" true r.Theorems.premise;
  check_q "certainty measure" Q.one r.Theorems.certain_measure;
  check_bool "conclusion" true r.Theorems.conclusion;
  check_bool "respected" true r.Theorems.respected

(* ------------------------------------------------------------------ *)
(* Property-based tests on generated systems                           *)
(* ------------------------------------------------------------------ *)

let seeds = QCheck.int_range 0 1_000_000

let with_proper_action ?params seed k =
  let tree = Gen.tree ?params seed in
  match Gen.pick_proper_action tree ~seed with
  | None -> QCheck.assume_fail ()
  | Some (agent, act) -> k tree agent act

let prop_total_measure_one =
  QCheck.Test.make ~count:100 ~name:"generated tree has total measure 1" seeds (fun seed ->
      let tree = Gen.tree seed in
      Q.equal Q.one (Tree.measure tree (Tree.all_runs tree)))

let prop_run_measures_positive =
  QCheck.Test.make ~count:100 ~name:"every run has positive measure" seeds (fun seed ->
      let tree = Gen.tree seed in
      let ok = ref true in
      for r = 0 to Tree.n_runs tree - 1 do
        if Q.sign (Tree.run_measure tree r) <> 1 then ok := false
      done;
      !ok)

let prop_generated_actions_proper =
  QCheck.Test.make ~count:100 ~name:"generated action labels are proper" seeds (fun seed ->
      let tree = Gen.tree seed in
      (* Depth-tagged labels can occur at most once per run. *)
      List.for_all
        (fun (agent, act) -> Action.is_proper tree ~agent ~act)
        (Gen.proper_actions tree))

let prop_past_based_fact_is_past_based =
  QCheck.Test.make ~count:100 ~name:"Gen.past_based_fact is past-based" seeds (fun seed ->
      let tree = Gen.tree seed in
      Fact.is_past_based (Gen.past_based_fact tree ~seed))

let prop_lemma43_past_based =
  QCheck.Test.make ~count:120 ~name:"Lemma 4.3(b): past-based => independent" seeds
    (fun seed ->
      with_proper_action seed (fun tree agent act ->
          let fact = Gen.past_based_fact tree ~seed in
          let r = Theorems.lemma43 fact ~agent ~act in
          r.Theorems.past_based && r.Theorems.independent))

let det_params = { Gen.default_params with deterministic_acts = true }

let prop_lemma43_deterministic =
  QCheck.Test.make ~count:120 ~name:"Lemma 4.3(a): deterministic => independent" seeds
    (fun seed ->
      with_proper_action ~params:det_params seed (fun tree agent act ->
          QCheck.assume (Action.is_deterministic tree ~agent ~act);
          (* Even an arbitrary future-dependent fact must be independent
             of a deterministic action. *)
          let fact = Gen.transient_fact tree ~seed in
          Independence.holds fact ~agent ~act))

let prop_theorem62_random =
  QCheck.Test.make ~count:120 ~name:"Theorem 6.2 on random systems (past-based facts)"
    seeds (fun seed ->
      with_proper_action seed (fun tree agent act ->
          let fact = Gen.past_based_fact tree ~seed in
          let r = Theorems.expectation_identity fact ~agent ~act in
          r.Theorems.independent && r.Theorems.identity))

let prop_theorem62_transient =
  QCheck.Test.make ~count:120
    ~name:"Theorem 6.2 on random systems (any fact, conditional on independence)" seeds
    (fun seed ->
      with_proper_action seed (fun tree agent act ->
          let fact = Gen.transient_fact tree ~seed in
          (Theorems.expectation_identity fact ~agent ~act).Theorems.respected))

let prop_theorem42_random =
  QCheck.Test.make ~count:120 ~name:"Theorem 4.2 on random systems" seeds (fun seed ->
      with_proper_action seed (fun tree agent act ->
          let fact = Gen.past_based_fact tree ~seed in
          (* Use the minimum belief itself as threshold: premise holds
             by construction; conclusion must follow. *)
          match Belief.min_at_action fact ~agent ~act with
          | None -> false
          | Some p -> (Theorems.sufficiency fact ~agent ~act ~p).Theorems.respected))

let prop_lemma51_random =
  QCheck.Test.make ~count:120 ~name:"Lemma 5.1 on random systems" seeds (fun seed ->
      with_proper_action seed (fun tree agent act ->
          let fact = Gen.past_based_fact tree ~seed in
          let p = Constr.mu_given_action fact ~agent ~act in
          (* Constraint holds with threshold = µ itself. *)
          (Theorems.necessity_exists fact ~agent ~act ~p).Theorems.respected))

let prop_theorem71_random =
  QCheck.Test.make ~count:120 ~name:"Theorem 7.1 on random systems (grid of eps, delta)"
    seeds (fun seed ->
      with_proper_action seed (fun tree agent act ->
          let fact = Gen.past_based_fact tree ~seed in
          List.for_all
            (fun (e, d) ->
              (Theorems.pak fact ~agent ~act ~eps:(q 1 e) ~delta:(q 1 d)).Theorems.respected)
            [ (2, 2); (2, 5); (5, 2); (10, 10); (3, 7) ]))

let prop_corollary72_random =
  QCheck.Test.make ~count:120 ~name:"Corollary 7.2 on random systems" seeds (fun seed ->
      with_proper_action seed (fun tree agent act ->
          let fact = Gen.past_based_fact tree ~seed in
          List.for_all
            (fun e ->
              (Theorems.pak_corollary fact ~agent ~act ~eps:(q 1 e)).Theorems.respected)
            [ 2; 3; 5; 10 ]))

let prop_kop_random =
  QCheck.Test.make ~count:120 ~name:"Lemma F.1 (KoP) on random systems" seeds (fun seed ->
      with_proper_action seed (fun tree agent act ->
          let fact = Gen.past_based_fact tree ~seed in
          (Theorems.kop fact ~agent ~act).Theorems.respected))

let prop_run_facts_constant =
  QCheck.Test.make ~count:100 ~name:"run facts are about runs" seeds (fun seed ->
      let tree = Gen.tree seed in
      Fact.is_about_runs (Gen.run_fact tree ~seed))

let prop_belief_is_probability =
  QCheck.Test.make ~count:100 ~name:"beliefs are probabilities" seeds (fun seed ->
      let tree = Gen.tree seed in
      let fact = Gen.transient_fact tree ~seed in
      Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
          acc
          && (let ok = ref true in
              for agent = 0 to Tree.n_agents tree - 1 do
                if not (Q.is_probability (Belief.degree fact ~agent ~run ~time)) then
                  ok := false
              done;
              !ok)))

let prop_belief_complement =
  QCheck.Test.make ~count:100 ~name:"beta(phi) + beta(not phi) = 1" seeds (fun seed ->
      let tree = Gen.tree seed in
      let fact = Gen.transient_fact tree ~seed in
      let neg = Fact.not_ fact in
      Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
          acc
          && Q.equal Q.one
               (Q.add
                  (Belief.degree fact ~agent:0 ~run ~time)
                  (Belief.degree neg ~agent:0 ~run ~time))))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_bitset_bulk_oracle;
      prop_total_measure_one;
      prop_run_measures_positive;
      prop_generated_actions_proper;
      prop_past_based_fact_is_past_based;
      prop_lemma43_past_based;
      prop_lemma43_deterministic;
      prop_theorem62_random;
      prop_theorem62_transient;
      prop_theorem42_random;
      prop_lemma51_random;
      prop_theorem71_random;
      prop_corollary72_random;
      prop_kop_random;
      prop_run_facts_constant;
      prop_belief_is_probability;
      prop_belief_complement
    ]

let () =
  Alcotest.run "pak_pps"
    [ ( "bitset",
        [ Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "set operations" `Quick test_bitset_ops;
          Alcotest.test_case "word boundaries" `Quick test_bitset_word_boundary
        ] );
      ( "tree",
        [ Alcotest.test_case "structure" `Quick test_tree_structure;
          Alcotest.test_case "actions" `Quick test_tree_actions;
          Alcotest.test_case "local states" `Quick test_tree_lstates;
          Alcotest.test_case "validation" `Quick test_tree_validation;
          Alcotest.test_case "synchrony check" `Quick test_tree_synchrony_check;
          Alcotest.test_case "protocol consistency check" `Quick test_tree_protocol_consistency;
          Alcotest.test_case "dot export" `Quick test_tree_dot
        ] );
      ( "fact",
        [ Alcotest.test_case "basics" `Quick test_fact_basics;
          Alcotest.test_case "cross-tree guard" `Quick test_fact_cross_tree_guard;
          Alcotest.test_case "temporal operators" `Quick test_fact_temporal;
          Alcotest.test_case "run facts" `Quick test_fact_run_facts;
          Alcotest.test_case "past-based" `Quick test_fact_past_based;
          Alcotest.test_case "@-operators" `Quick test_fact_at_operators
        ] );
      ( "action",
        [ Alcotest.test_case "properness" `Quick test_action_properness;
          Alcotest.test_case "determinism" `Quick test_action_determinism;
          Alcotest.test_case "Li[alpha]" `Quick test_action_lstates
        ] );
      ( "belief",
        [ Alcotest.test_case "figure 1" `Quick test_belief_figure1;
          Alcotest.test_case "T-hat" `Quick test_belief_that
        ] );
      ( "independence",
        [ Alcotest.test_case "definition 4.1" `Quick test_independence ] );
      ( "constraints",
        [ Alcotest.test_case "report" `Quick test_constraint_report ] );
      ( "theorems",
        [ Alcotest.test_case "6.2 counterexample (fig 1)" `Quick test_theorem_62_counterexample;
          Alcotest.test_case "6.2 on T-hat" `Quick test_theorem_62_that;
          Alcotest.test_case "4.2 sufficiency" `Quick test_theorem_42;
          Alcotest.test_case "4.3 lemma" `Quick test_lemma_43;
          Alcotest.test_case "5.1 necessity" `Quick test_lemma_51;
          Alcotest.test_case "7.1 and 7.2 PAK" `Quick test_theorem_71_corollary_72;
          Alcotest.test_case "F.1 KoP" `Quick test_kop
        ] );
      ("properties", qcheck_cases)
    ]
