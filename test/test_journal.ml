(* Tests for the flight recorder: the journal codec round-trip,
   size-exact writer rotation, the reader's rotated-segment spanning
   and truncated-tail recovery, the journal.* counter identities, the
   replay normalizer, and the record -> replay -> byte-diff loop
   itself — including the contract that a tampered recording makes the
   replay diverge and name the offending frame. *)

open Pak_pps
module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget
module Semantics = Pak_logic.Semantics
module Journal = Pak_journal.Journal
module Serve = Pak_serve.Serve
module Replay = Pak_serve.Replay

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let find s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

let with_metrics f =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

let delta snapshot name =
  match List.assoc_opt name snapshot.Obs.Snapshot.counters with
  | Some n -> n
  | None -> 0

let entry ?(kind = Journal.Request) ?(seq = 1) ?(code = -1) ?(disp = "frame")
    ?(trace = "") ?(ts = 0) payload =
  { Journal.e_kind = kind;
    e_seq = seq;
    e_code = code;
    e_disp = disp;
    e_trace = trace;
    e_ts_us = ts;
    e_payload = payload
  }

(* A scratch journal base path; rotated segments appear as PATH.N next
   to it, so clean both up afterwards. *)
let with_journal_path f =
  let path = Filename.temp_file "pakjournal_test" ".j" in
  Fun.protect
    ~finally:(fun () ->
      let rm p = try Sys.remove p with Sys_error _ -> () in
      rm path;
      let i = ref 1 in
      while Sys.file_exists (Printf.sprintf "%s.%d" path !i) do
        rm (Printf.sprintf "%s.%d" path !i);
        incr i
      done)
    (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

(* ------------------------------------------------------------------ *)
(* Codec round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let meta = {|(serve-config (version 1) (note "parens ) and quotes"))|} in
  let entries =
    [ entry ~seq:1 "(request (id 1) (op eval))";
      entry ~kind:Journal.Response ~seq:1 ~code:0 ~disp:"ok"
        ~trace:"0123456789abcdef" ~ts:42 "(response (id 1))";
      entry ~seq:2 "multi\nline\npayload\n";
      entry ~kind:Journal.Response ~seq:2 ~code:4 ~disp:"shed" "";
      entry ~seq:3 {|payload with " quotes and (parens|}
    ]
  in
  let s =
    Journal.segment_header ~meta
    ^ String.concat "" (List.map Journal.encode_entry entries)
  in
  match Journal.read_string s with
  | Error e -> Alcotest.fail e
  | Ok rr ->
    check_string "meta round-trips" meta rr.Journal.r_meta;
    check_bool "no tail" true (rr.Journal.r_tail = None);
    check_int "one segment" 1 rr.Journal.r_segments;
    check_bool "entries round-trip byte-exactly" true (rr.Journal.r_entries = entries)

let test_token_sanitization () =
  (* Disposition and trace are single tokens on the record header
     line: spaces and newlines in them must not desynchronize the
     reader, so the encoder rewrites them to '_'. *)
  let e = entry ~disp:"we ird\ndisp" ~trace:"bad trace" "p" in
  let s = Journal.segment_header ~meta:"" ^ Journal.encode_entry e in
  match Journal.read_string s with
  | Error e -> Alcotest.fail e
  | Ok rr -> (
    match rr.Journal.r_entries with
    | [ e' ] ->
      check_bool "no tail despite hostile tokens" true (rr.Journal.r_tail = None);
      check_string "disposition sanitized" "we_ird_disp" e'.Journal.e_disp;
      check_string "trace sanitized" "bad_trace" e'.Journal.e_trace;
      check_string "payload untouched" "p" e'.Journal.e_payload
    | l -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length l)))

(* ------------------------------------------------------------------ *)
(* Writer rotation                                                     *)
(* ------------------------------------------------------------------ *)

let test_rotation_boundary () =
  with_journal_path (fun path ->
      let header_len = String.length (Journal.segment_header ~meta:"m") in
      let e i = entry ~seq:i (Printf.sprintf "ab%d" i) in
      let rlen = String.length (Journal.encode_entry (e 1)) in
      (* Cap = header + exactly two records: landing ON the cap must
         not rotate (the condition is strictly "would exceed"), the
         third record must. *)
      let cap = header_len + (2 * rlen) in
      match Journal.Writer.create ~max_bytes:cap ~meta:"m" path with
      | Error msg -> Alcotest.fail msg
      | Ok w ->
        Journal.Writer.append w (e 1);
        Journal.Writer.append w (e 2);
        check_int "exact fit does not rotate" 0 (Journal.Writer.rotations w);
        Journal.Writer.append w (e 3);
        check_int "overflow rotates" 1 (Journal.Writer.rotations w);
        Journal.Writer.append w (e 4);
        check_int "refilled segment holds two again" 1 (Journal.Writer.rotations w);
        Journal.Writer.append w (e 5);
        check_int "second rotation" 2 (Journal.Writer.rotations w);
        check_int "segments = rotations + 1" 3 (Journal.Writer.segments w);
        check_int "position counts every segment, headers included"
          ((3 * header_len) + (5 * rlen))
          (Journal.Writer.position w);
        Journal.Writer.close w;
        check_bool "active segment on disk" true (Sys.file_exists path);
        check_bool "rotated segments on disk" true
          (Sys.file_exists (path ^ ".1") && Sys.file_exists (path ^ ".2"));
        (* The reader spans all three segments, oldest first. *)
        (match Journal.read path with
         | Error msg -> Alcotest.fail msg
         | Ok rr ->
           check_int "three segments read" 3 rr.Journal.r_segments;
           check_string "meta from the first segment" "m" rr.Journal.r_meta;
           check_bool "clean read" true (rr.Journal.r_tail = None);
           check_string "append order across rotations" "ab1 ab2 ab3 ab4 ab5"
             (String.concat " "
                (List.map (fun e -> e.Journal.e_payload) rr.Journal.r_entries))))

let test_oversized_record_terminates () =
  (* A record bigger than max_bytes still lands (a segment always
     accepts at least one record): rotation is once per oversized
     record, never a loop. *)
  with_journal_path (fun path ->
      match Journal.Writer.create ~max_bytes:64 ~meta:"m" path with
      | Error msg -> Alcotest.fail msg
      | Ok w ->
        let big i = entry ~seq:i (String.make 500 (Char.chr (Char.code 'a' + i))) in
        Journal.Writer.append w (big 0);
        check_int "first oversized record does not rotate" 0
          (Journal.Writer.rotations w);
        Journal.Writer.append w (big 1);
        Journal.Writer.append w (big 2);
        check_int "one rotation per further record" 2 (Journal.Writer.rotations w);
        Journal.Writer.close w;
        match Journal.read path with
        | Error msg -> Alcotest.fail msg
        | Ok rr ->
          check_int "all three records read back" 3
            (List.length rr.Journal.r_entries))

let test_create_removes_stale_segments () =
  with_journal_path (fun path ->
      write_file (path ^ ".1")
        (Journal.segment_header ~meta:"stale" ^ Journal.encode_entry (entry "old"));
      match Journal.Writer.create ~meta:"fresh" path with
      | Error msg -> Alcotest.fail msg
      | Ok w ->
        Journal.Writer.append w (entry "new");
        Journal.Writer.close w;
        check_bool "stale rotated segment removed" false
          (Sys.file_exists (path ^ ".1"));
        match Journal.read path with
        | Error msg -> Alcotest.fail msg
        | Ok rr ->
          check_string "only the fresh session remains" "new"
            (match rr.Journal.r_entries with [ e ] -> e.Journal.e_payload | _ -> ""))

(* ------------------------------------------------------------------ *)
(* Tail recovery and reader errors                                     *)
(* ------------------------------------------------------------------ *)

let test_truncated_tail () =
  let s =
    Journal.segment_header ~meta:"m"
    ^ Journal.encode_entry (entry ~seq:1 "first")
    ^ Journal.encode_entry (entry ~seq:2 "hello world")
  in
  let keeps_first cut expect_why =
    match Journal.read_string (String.sub s 0 cut) with
    | Error e -> Alcotest.fail e
    | Ok rr ->
      check_int "first entry intact" 1 (List.length rr.Journal.r_entries);
      check_string "its payload is whole" "first"
        (List.hd rr.Journal.r_entries).Journal.e_payload;
      (match rr.Journal.r_tail with
       | Some why -> check_bool ("tail says " ^ expect_why) true (contains why expect_why)
       | None -> Alcotest.fail "expected a tail diagnostic")
  in
  keeps_first (String.length s - 3) "truncated record payload";
  let e2_start =
    String.length s
    - String.length (Journal.encode_entry (entry ~seq:2 "hello world"))
  in
  keeps_first (e2_start + 4) "truncated record header";
  (* A mangled (not just cut) record header also degrades to a tail. *)
  let mangled = Bytes.of_string s in
  Bytes.set mangled e2_start 'x';
  (match Journal.read_string (Bytes.to_string mangled) with
   | Error e -> Alcotest.fail e
   | Ok rr ->
     check_int "entries before the mangling intact" 1
       (List.length rr.Journal.r_entries);
     check_bool "mangled header is a tail, not a crash" true
       (match rr.Journal.r_tail with
        | Some why -> contains why "malformed record header"
        | None -> false))

let test_corrupt_segment_stops_spanning () =
  (* A damaged later segment poisons everything after it but keeps
     what was read: base.1 is fine, the active segment is not. *)
  with_journal_path (fun path ->
      write_file (path ^ ".1")
        (Journal.segment_header ~meta:"m" ^ Journal.encode_entry (entry "kept"));
      write_file path "this is not a pak journal";
      match Journal.read path with
      | Error e -> Alcotest.fail e
      | Ok rr ->
        check_int "first segment read" 1 (List.length rr.Journal.r_entries);
        check_bool "bad active segment reported as tail" true
          (match rr.Journal.r_tail with
           | Some why -> contains why "bad magic"
           | None -> false))

let test_reader_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  check_bool "empty input" true (is_err (Journal.read_string ""));
  check_bool "bad magic" true (is_err (Journal.read_string "garbage bytes"));
  check_bool "future version refused" true
    (is_err (Journal.read_string "pakjournal 99 0\n\n"));
  check_bool "missing journal path" true
    (is_err (Journal.read "/nonexistent/journal/path"))

let test_counter_identities () =
  (* journal.read.records = journal.appends, and append_bytes sums the
     encoded record sizes — the identities doc/PERFORMANCE.md sells. *)
  with_journal_path (fun path ->
      with_metrics (fun () ->
          let entries = List.init 3 (fun i -> entry ~seq:i (Printf.sprintf "p%d" i)) in
          let bytes =
            List.fold_left
              (fun acc e -> acc + String.length (Journal.encode_entry e))
              0 entries
          in
          let (), snap =
            Obs.Snapshot.diff_capture (fun () ->
                (match Journal.Writer.create ~meta:"m" path with
                 | Error msg -> Alcotest.fail msg
                 | Ok w ->
                   List.iter (Journal.Writer.append w) entries;
                   Journal.Writer.close w);
                match Journal.read path with
                | Error msg -> Alcotest.fail msg
                | Ok rr -> check_int "read back" 3 (List.length rr.Journal.r_entries))
          in
          check_int "read.records = appends" (delta snap "journal.appends")
            (delta snap "journal.read.records");
          check_int "three appends" 3 (delta snap "journal.appends");
          check_int "append_bytes sums encoded records" bytes
            (delta snap "journal.append_bytes")))

(* ------------------------------------------------------------------ *)
(* Replay normalization                                                *)
(* ------------------------------------------------------------------ *)

let test_strip_groups () =
  check_string "named group and its leading space removed"
    "(response (id 1) (result x))"
    (Replay.strip_groups [ "trace" ] "(response (id 1) (trace abc) (result x))");
  check_string "nested groups removed whole" "(a b)"
    (Replay.strip_groups [ "metrics" ] "(a (metrics (x (y 1)) (z 2)) b)");
  check_string "quoted parens do not confuse the matcher"
    {|(a (result "(trace 2)"))|}
    (Replay.strip_groups [ "trace" ] {|(a (trace 1) (result "(trace 2)"))|});
  check_string "name must match whole atom" "(r (tracex 1))"
    (Replay.strip_groups [ "trace" ] "(r (tracex 1) (trace 2))");
  check_string "status disposition also strips the result"
    "(response (id 1) (code 0) (status ok))"
    (Replay.normalize ~disp:"status"
       "(response (id 1) (code 0) (status ok) (result (uptime-ticks 5)) (metrics (m 1)))");
  check_string "ordinary dispositions keep the result"
    "(response (id 1) (code 0) (status ok) (result true))"
    (Replay.normalize ~disp:"ok"
       "(response (id 1) (code 0) (status ok) (result true) (trace aa))")

let test_meta_roundtrip () =
  let cfg =
    { Serve.default_config with
      Serve.jobs = 3;
      max_pending = 7;
      batch = 2;
      cache_max = 11;
      drain_ms = None;
      limits = Budget.limits ~max_points:1234 ~timeout_ms:500 ()
    }
  in
  let cfg', engine = Replay.config_of_meta (Replay.meta_of_config cfg) in
  check_int "jobs" 3 cfg'.Serve.jobs;
  check_int "max_pending" 7 cfg'.Serve.max_pending;
  check_int "batch" 2 cfg'.Serve.batch;
  check_int "cache_max" 11 cfg'.Serve.cache_max;
  check_bool "drain_ms none survives" true (cfg'.Serve.drain_ms = None);
  check_bool "limits survive" true
    (cfg'.Serve.limits.Budget.max_points = Some 1234
    && cfg'.Serve.limits.Budget.timeout_ms = Some 500
    && cfg'.Serve.limits.Budget.max_nodes = None);
  check_bool "engine recorded" true (engine = Some (Semantics.current_engine ()));
  (* Tolerance: garbage meta degrades to the defaults, no exception. *)
  let dflt, engine = Replay.config_of_meta "not a serve-config" in
  check_int "garbage meta falls back to default jobs"
    Serve.default_config.Serve.jobs dflt.Serve.jobs;
  check_bool "no engine from garbage meta" true (engine = None)

(* ------------------------------------------------------------------ *)
(* Record -> replay round-trip                                         *)
(* ------------------------------------------------------------------ *)

let doc1 = lazy (Tree_io.to_string (Pak_systems.Figure_one.tree ()))

let request ~id ~formula =
  let open Serve.Sexp in
  let field k v = List [ Atom k; v ] in
  to_string
    (List
       [ Atom "request";
         field "id" (Atom (string_of_int id));
         field "op" (Atom "eval");
         field "system" (Str (Lazy.force doc1));
         field "formula" (Str formula)
       ])

(* One recorded session, in memory: two real evaluations (the second a
   cache hit), a junk blob between them, a ping and an (op status) —
   every disposition class the differ treats specially. *)
let record_session () =
  let buf = Buffer.create 4096 in
  let cfg = { Serve.default_config with Serve.batch = 1 } in
  Buffer.add_string buf
    (Journal.segment_header ~meta:(Replay.meta_of_config cfg));
  let sink =
    { Journal.emit = (fun e -> Buffer.add_string buf (Journal.encode_entry e));
      position = (fun () -> Buffer.length buf);
      rotations = (fun () -> 0)
    }
  in
  let input =
    Serve.Frame.encode (request ~id:1 ~formula:"K[0] a0_g0")
    ^ "!!junk!!"
    ^ Serve.Frame.encode (request ~id:2 ~formula:"K[0] a0_g0")
    ^ Serve.Frame.encode "(ping (id 3))"
    ^ Serve.Frame.encode "(request (id 4) (op status))"
  in
  let _out, code =
    Serve.run_string ~config:{ cfg with Serve.journal = Some sink } input
  in
  check_int "recording session drains clean" 0 code;
  Buffer.contents buf

let test_record_replay_roundtrip () =
  let journal = record_session () in
  match Journal.read_string journal with
  | Error e -> Alcotest.fail e
  | Ok rr ->
    let replay jobs =
      match Replay.run ~jobs rr with
      | Error e -> Alcotest.fail e
      | Ok rep ->
        check_int "four request frames" 4 rep.Replay.rp_requests;
        check_int "junk request and its response skipped" 2
          rep.Replay.rp_skipped_junk;
        check_int "five responses compared" 5 rep.Replay.rp_compared;
        check_int "all matched" rep.Replay.rp_compared rep.Replay.rp_matched;
        check_bool "no divergences" true (rep.Replay.rp_divergences = []);
        check_int "nothing missing" 0 rep.Replay.rp_missing;
        check_int "nothing extra" 0 rep.Replay.rp_extra;
        check_bool "clean tail" true (rep.Replay.rp_tail = None)
    in
    replay 1;
    replay 4

let test_tampered_journal_diverges () =
  let journal = record_session () in
  (* The acceptance tamper: flip one byte of the first recorded
     "(status ok)" — sed '0,/(status ok)/s//(status oK)/'. *)
  let ix =
    match find journal "(status ok)" with
    | Some i -> i
    | None -> Alcotest.fail "no (status ok) in the recording"
  in
  let b = Bytes.of_string journal in
  Bytes.set b (ix + String.length "(status o") 'K';
  match Journal.read_string (Bytes.to_string b) with
  | Error e -> Alcotest.fail e
  | Ok rr -> (
    (* The frame the tamper landed in, per the untampered recording. *)
    let expected =
      match Journal.read_string journal with
      | Ok orig ->
        List.find
          (fun e ->
            e.Journal.e_kind = Journal.Response
            && contains e.Journal.e_payload "(status ok)")
          orig.Journal.r_entries
      | Error e -> Alcotest.fail e
    in
    match Replay.run ~jobs:1 rr with
    | Error e -> Alcotest.fail e
    | Ok rep -> (
      match rep.Replay.rp_divergences with
      | [ d ] ->
        check_int "divergence names the tampered frame seq"
          expected.Journal.e_seq d.Replay.d_seq;
        check_string "and carries its trace id" expected.Journal.e_trace
          d.Replay.d_trace;
        check_bool "recorded side shows the tamper" true
          (contains d.Replay.d_want "(status oK)");
        check_bool "replayed side shows the truth" true
          (contains d.Replay.d_got "(status ok)");
        check_int "everything else still matches"
          (rep.Replay.rp_compared - 1) rep.Replay.rp_matched
      | l ->
        Alcotest.fail
          (Printf.sprintf "expected exactly 1 divergence, got %d" (List.length l))))

let () =
  Alcotest.run "pak_journal"
    [ ( "codec",
        [ Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "token sanitization" `Quick test_token_sanitization
        ] );
      ( "writer",
        [ Alcotest.test_case "rotation at the exact size boundary" `Quick
            test_rotation_boundary;
          Alcotest.test_case "oversized record terminates" `Quick
            test_oversized_record_terminates;
          Alcotest.test_case "create removes stale segments" `Quick
            test_create_removes_stale_segments
        ] );
      ( "reader",
        [ Alcotest.test_case "truncated tail recovery" `Quick test_truncated_tail;
          Alcotest.test_case "corrupt segment stops spanning" `Quick
            test_corrupt_segment_stops_spanning;
          Alcotest.test_case "reader errors" `Quick test_reader_errors;
          Alcotest.test_case "counter identities" `Quick test_counter_identities
        ] );
      ( "replay",
        [ Alcotest.test_case "strip groups" `Quick test_strip_groups;
          Alcotest.test_case "meta round-trip" `Quick test_meta_roundtrip;
          Alcotest.test_case "record/replay round-trip" `Quick
            test_record_replay_roundtrip;
          Alcotest.test_case "tampered journal diverges" `Quick
            test_tampered_journal_diverges
        ] )
    ]
