(* check_trace FILE [--min-lanes N] — validate a Chrome trace_event
   file emitted by pak_obs. Checks every event's shape (name/ph/ts and
   integer pid/tid), that "ph":"X" complete events carry a duration,
   and that "ph":"C" counter samples carry a numeric args.value; prints
   the event/lane statistics. Exits 0 on a valid non-empty trace, 1
   with a diagnostic. Used by CI as the smoke check behind
   `pak profile --trace`. *)

let () =
  let file, min_lanes =
    match Sys.argv with
    | [| _; file |] -> (file, 1)
    | [| _; file; "--min-lanes"; n |] ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> (file, n)
       | _ ->
         prerr_endline "check_trace: --min-lanes expects a positive integer";
         exit 2)
    | _ ->
      prerr_endline "usage: check_trace FILE [--min-lanes N]";
      exit 2
  in
  match Pak_obs.Obs.validate_trace_file file with
  | Ok s ->
    Printf.printf "%s: valid trace, %d events (%d complete, %d counter samples, %d lanes)\n"
      file s.Pak_obs.Obs.trace_events s.Pak_obs.Obs.trace_complete
      s.Pak_obs.Obs.trace_counter_samples s.Pak_obs.Obs.trace_lanes;
    if s.Pak_obs.Obs.trace_events = 0 then begin
      prerr_endline "check_trace: trace contains no events";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_complete = 0 then begin
      prerr_endline "check_trace: trace contains no complete (ph X) span events";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_counter_samples = 0 then begin
      prerr_endline "check_trace: trace contains no counter (ph C) samples";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_lanes < min_lanes then begin
      Printf.eprintf "check_trace: expected at least %d tid lane(s), found %d\n" min_lanes
        s.Pak_obs.Obs.trace_lanes;
      exit 1
    end
  | Error msg ->
    Printf.eprintf "check_trace: %s: %s\n" file msg;
    exit 1
