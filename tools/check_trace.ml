(* check_trace FILE — validate a Chrome trace_event file emitted by
   pak_obs. Exits 0 printing the event count, 1 with a diagnostic.
   Used by CI as the smoke check behind `pak profile --trace`. *)

let () =
  match Sys.argv with
  | [| _; file |] ->
    (match Pak_obs.Obs.validate_trace_file file with
     | Ok n ->
       Printf.printf "%s: valid trace, %d events\n" file n;
       if n = 0 then begin
         prerr_endline "check_trace: trace contains no events";
         exit 1
       end
     | Error msg ->
       Printf.eprintf "check_trace: %s: %s\n" file msg;
       exit 1)
  | _ ->
    prerr_endline "usage: check_trace FILE";
    exit 2
