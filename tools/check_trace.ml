(* check_trace FILE [--min-lanes N] [--min-gc-samples N] — validate a
   Chrome trace_event file emitted by pak_obs. Checks every event's
   shape (name/ph/ts and integer pid/tid), that "ph":"X" complete
   events carry a duration, that "ph":"C" counter samples carry a
   numeric args.value, and that samples on gc.* heap lanes are
   non-negative integers; prints the event/lane statistics. Exits 0 on
   a valid non-empty trace, 1 with a diagnostic. Used by CI as the
   smoke check behind `pak profile --trace`. *)

let usage () =
  prerr_endline "usage: check_trace FILE [--min-lanes N] [--min-gc-samples N]";
  exit 2

let () =
  let file = ref None in
  let min_lanes = ref 1 in
  let min_gc_samples = ref 0 in
  let pos_int flag n =
    match int_of_string_opt n with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf "check_trace: %s expects a non-negative integer\n" flag;
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--min-lanes" :: n :: rest ->
      min_lanes := pos_int "--min-lanes" n;
      parse rest
    | "--min-gc-samples" :: n :: rest ->
      min_gc_samples := pos_int "--min-gc-samples" n;
      parse rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | arg :: rest ->
      (match !file with None -> file := Some arg | Some _ -> usage ());
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  match Pak_obs.Obs.validate_trace_file file with
  | Ok s ->
    Printf.printf
      "%s: valid trace, %d events (%d complete, %d counter samples of which %d gc, %d lanes)\n"
      file s.Pak_obs.Obs.trace_events s.Pak_obs.Obs.trace_complete
      s.Pak_obs.Obs.trace_counter_samples s.Pak_obs.Obs.trace_gc_samples
      s.Pak_obs.Obs.trace_lanes;
    if s.Pak_obs.Obs.trace_events = 0 then begin
      prerr_endline "check_trace: trace contains no events";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_complete = 0 then begin
      prerr_endline "check_trace: trace contains no complete (ph X) span events";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_counter_samples = 0 then begin
      prerr_endline "check_trace: trace contains no counter (ph C) samples";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_lanes < !min_lanes then begin
      Printf.eprintf "check_trace: expected at least %d tid lane(s), found %d\n" !min_lanes
        s.Pak_obs.Obs.trace_lanes;
      exit 1
    end;
    if s.Pak_obs.Obs.trace_gc_samples < !min_gc_samples then begin
      Printf.eprintf "check_trace: expected at least %d gc counter sample(s), found %d\n"
        !min_gc_samples s.Pak_obs.Obs.trace_gc_samples;
      exit 1
    end
  | Error msg ->
    Printf.eprintf "check_trace: %s: %s\n" file msg;
    exit 1
