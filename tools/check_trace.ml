(* check_trace FILE [--min-lanes N] [--min-gc-samples N]
   [--require-trace-ids] — validate a Chrome trace_event file emitted
   by pak_obs. Checks every event's shape (name/ph/ts and integer
   pid/tid), that "ph":"X" complete events carry a duration, that
   "ph":"C" counter samples carry a numeric args.value, and that
   samples on gc.* heap lanes are non-negative integers; prints the
   event/lane statistics. With --require-trace-ids, additionally
   re-parses the file and checks the serve request-scoped trace ids:
   every X event under a serve.request path carries a non-empty
   args.trace, root serve.request events carry pairwise-distinct ids,
   and every child span's id matches a root's (stable within the
   request). Exits 0 on a valid non-empty trace, 1 with a diagnostic.
   Used by CI as the smoke check behind `pak profile --trace` and the
   serve soak. *)

module Json = Pak_obs.Obs.Json

let usage () =
  prerr_endline
    "usage: check_trace FILE [--min-lanes N] [--min-gc-samples N] [--require-trace-ids]";
  exit 2

(* The serve trace-id contract, checked over the raw event list. *)
let check_trace_ids file =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "check_trace: %s: %s\n" file m;
        exit 1)
      fmt
  in
  let text = In_channel.with_open_bin file In_channel.input_all in
  let events =
    match Json.parse text with
    | Json.Arr evs -> evs
    | _ -> fail "top level is not an array"
    | exception Json.Bad m -> fail "bad JSON: %s" m
  in
  let field name = function
    | Json.Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let str = function Some (Json.Str s) -> Some s | _ -> None in
  (* Root = a path whose LAST segment is serve.request (at --jobs 1 the
     request runs inline under serve.drain; pooled requests detach to a
     root-level serve.request — both shapes are one request's span). *)
  let is_root path =
    path = "serve.request"
    || (let sfx = ";serve.request" in
        let n = String.length path and m = String.length sfx in
        n > m && String.sub path (n - m) m = sfx)
  in
  let is_child path =
    let rec find i =
      match String.index_from_opt path i 's' with
      | None -> false
      | Some j ->
          (String.length path - j > 14
           && String.sub path j 14 = "serve.request;"
           && (j = 0 || path.[j - 1] = ';'))
          || find (j + 1)
    in
    find 0
  in
  let roots = Hashtbl.create 16 in
  let children = ref [] in
  List.iter
    (fun ev ->
      match (str (field "ph" ev), field "args" ev) with
      | Some "X", Some args -> (
          match str (field "path" args) with
          | Some path when is_root path -> (
              match str (field "trace" args) with
              | Some id when id <> "" ->
                  if Hashtbl.mem roots id then
                    fail "trace id %s on more than one serve.request root" id;
                  Hashtbl.add roots id ()
              | _ -> fail "serve.request root event without a trace id")
          | Some path when is_child path -> (
              match str (field "trace" args) with
              | Some id when id <> "" -> children := (path, id) :: !children
              | _ -> fail "span under %s without a trace id" path)
          | _ -> ())
      | _ -> ())
    events;
  if Hashtbl.length roots = 0 then
    fail "no serve.request span events carry trace ids";
  List.iter
    (fun (path, id) ->
      if not (Hashtbl.mem roots id) then
        fail "span %s carries trace id %s that matches no serve.request root"
          path id)
    !children;
  Printf.printf
    "%s: trace ids ok, %d distinct request(s), %d child span(s) correlated\n"
    file (Hashtbl.length roots)
    (List.length !children)

let () =
  let file = ref None in
  let min_lanes = ref 1 in
  let min_gc_samples = ref 0 in
  let require_trace_ids = ref false in
  let pos_int flag n =
    match int_of_string_opt n with
    | Some n when n >= 0 -> n
    | _ ->
      Printf.eprintf "check_trace: %s expects a non-negative integer\n" flag;
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--min-lanes" :: n :: rest ->
      min_lanes := pos_int "--min-lanes" n;
      parse rest
    | "--min-gc-samples" :: n :: rest ->
      min_gc_samples := pos_int "--min-gc-samples" n;
      parse rest
    | "--require-trace-ids" :: rest ->
      require_trace_ids := true;
      parse rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | arg :: rest ->
      (match !file with None -> file := Some arg | Some _ -> usage ());
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  match Pak_obs.Obs.validate_trace_file file with
  | Ok s ->
    Printf.printf
      "%s: valid trace, %d events (%d complete, %d counter samples of which %d gc, %d lanes)\n"
      file s.Pak_obs.Obs.trace_events s.Pak_obs.Obs.trace_complete
      s.Pak_obs.Obs.trace_counter_samples s.Pak_obs.Obs.trace_gc_samples
      s.Pak_obs.Obs.trace_lanes;
    if s.Pak_obs.Obs.trace_events = 0 then begin
      prerr_endline "check_trace: trace contains no events";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_complete = 0 then begin
      prerr_endline "check_trace: trace contains no complete (ph X) span events";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_counter_samples = 0 then begin
      prerr_endline "check_trace: trace contains no counter (ph C) samples";
      exit 1
    end;
    if s.Pak_obs.Obs.trace_lanes < !min_lanes then begin
      Printf.eprintf "check_trace: expected at least %d tid lane(s), found %d\n" !min_lanes
        s.Pak_obs.Obs.trace_lanes;
      exit 1
    end;
    if s.Pak_obs.Obs.trace_gc_samples < !min_gc_samples then begin
      Printf.eprintf "check_trace: expected at least %d gc counter sample(s), found %d\n"
        !min_gc_samples s.Pak_obs.Obs.trace_gc_samples;
      exit 1
    end;
    if !require_trace_ids then check_trace_ids file
  | Error msg ->
    Printf.eprintf "check_trace: %s: %s\n" file msg;
    exit 1
