(* fuzz [--mode boundaries|explain|frame|eval-vec|openmetrics|journal]
        [--iters N] [--seed S] [--corpus DIR] [--jobs J] — in-process
   fuzzer for the untrusted-input boundaries.

   The default mode feeds three input streams to Parser.parse_result
   and Tree_io.of_string_result, asserting the crash-free contract:
   every input yields Ok or a typed Pak_guard.Error.t — never an
   escaped exception, never a stack overflow, and (under the built-in
   budget) never a hang. Streams:

   - random byte strings, length 0..400;
   - mutations of valid round-trip documents and formulas (byte flips,
     structural-byte insertion, deletion, slice duplication,
     truncation);
   - the committed regression corpus, replayed first when --corpus is
     given.

   --mode explain drives the same streams through the provenance
   pipeline instead: parse -> certify -> independent check -> JSON
   round-trip -> re-check, on a fixed small system. The contract is
   stricter than crash-freedom: a parsed formula must always certify,
   the fresh certificate must always verify, and its JSON must parse
   back to a certificate that verifies again — a rejection anywhere in
   that chain is a finding, not a graceful Rejected. Mutated
   certificate JSON additionally probes Cert.of_json_string, which
   must return Ok or Error without raising.

   --mode eval-vec is a differential mode: any input that parses as a
   formula is evaluated by BOTH engines (recursive and vectorized, see
   doc/EVALUATION.md) on a fixed small system. The contract is the
   cross-engine equivalence guarantee at the fuzzing boundary: the
   engines must agree on the satisfying point set, and neither may
   raise where the other returns — a one-sided exception, a message
   mismatch, or a point-set disagreement is a finding.

   --mode frame targets the serve front end's wire boundary with raw
   bytes, mutated frame streams and valid headers over mutated
   payloads. Two contracts: Serve.Frame.read must turn ANY byte stream
   into a finite sequence of typed events ending in Eof without
   raising; and the full Serve.run_string loop must answer any byte
   stream without raising and always drain to exit code 0 — faults
   become typed error responses, never crashes and never a poisoned
   server.

   --mode journal targets the flight recorder's read side and the
   replay pipeline behind it with random bytes, mutants of a valid
   in-memory recording and truncations of it. Two contracts:
   Journal.read_string must turn ANY byte string into Ok or Error
   without raising (corrupt tails degrade to r_tail, never an
   exception); and any journal that reads must also replay —
   Replay.run re-executes the recorded requests through the live
   engine under the probe budget and may report divergences or reject
   a broken meta, but must never raise. A crash in either is exactly
   the bug a flight recorder cannot afford: the tool you reach for
   after a failure must not fail on the evidence.

   --mode openmetrics targets the exposition writer: any input that
   Obs.Snapshot.of_json_string accepts — including mutants smuggling
   control characters, quotes or UTF-8 junk into metric names — must
   render through Obs.Openmetrics.render without raising, and the
   rendered text must pass Obs.Openmetrics.check (the minimal line
   grammar a Prometheus scraper relies on). A render exception or a
   grammar rejection is a finding.

   Every iteration derives its own generator from (seed, iteration
   index), so the probed inputs — and therefore any finding — are
   identical for every --jobs value; parallelism only divides the wall
   time. Findings are buffered per chunk and printed in iteration
   order after the run.

   Exits 0 after N crash-free iterations, printing a one-line summary;
   on the first contract violation prints the input (escaped) and
   exits 1, so the offender can be added to test/corpus/. Used by CI
   as the fuzz smoke job. *)

open Pak
module Error = Pak.Error

let iters = ref 10_000
let seed = ref 0
let corpus = ref ""
let jobs = ref 1
let mode = ref "boundaries"

let usage () =
  prerr_endline
    "usage: fuzz [--mode boundaries|explain|frame|eval-vec|openmetrics|journal] [--iters N] [--seed S] [--corpus DIR] [--jobs J]";
  exit 2

let rec parse_args = function
  | [] -> ()
  | "--mode" :: v :: rest ->
    (match v with
    | "boundaries" | "explain" | "frame" | "eval-vec" | "openmetrics" | "journal" ->
      mode := v
    | _ -> usage ());
    parse_args rest
  | "--iters" :: v :: rest ->
    (match int_of_string_opt v with Some n when n > 0 -> iters := n | _ -> usage ());
    parse_args rest
  | "--seed" :: v :: rest ->
    (match int_of_string_opt v with Some n -> seed := n | _ -> usage ());
    parse_args rest
  | "--corpus" :: v :: rest ->
    corpus := v;
    parse_args rest
  | "--jobs" :: v :: rest ->
    (match int_of_string_opt v with Some n when n > 0 -> jobs := n | _ -> usage ());
    parse_args rest
  | _ -> usage ()

(* ------------------------------------------------------------------ *)
(* Boundaries under test                                               *)
(* ------------------------------------------------------------------ *)

type outcome = Accepted | Rejected of Error.t

let boundaries =
  [ ( "parser",
      fun input ->
        match Parser.parse_result input with Ok _ -> Accepted | Error e -> Rejected e );
    ( "tree_io",
      fun input ->
        match Tree_io.of_string_result input with Ok _ -> Accepted | Error e -> Rejected e )
  ]

(* Each probe runs under a modest budget so a pathological input that
   is merely slow (rather than crashing) also counts as a finding:
   the contract includes "never a hang". The budget scope is
   domain-local, so parallel probes cannot exhaust each other. The
   iteration cap exists for --mode explain, where a parsed formula may
   drive common-knowledge fixpoints. *)
let probe_limits =
  Budget.limits ~max_nodes:100_000 ~max_limbs:1_000_000 ~max_iters:100_000 ~timeout_ms:2_000 ()

(* --mode explain: the provenance pipeline on one small fixed system.
   Everything past a successful parse is covered by the soundness
   contract, so any rejection downstream is raised (and so counted as
   a crash finding) rather than returned as Rejected. *)
let explain_tree = lazy (Systems.Figure_one.tree ~p_alpha:Q.half ())

let explain_boundaries =
  [ ( "explain",
      fun input ->
        match Parser.parse_result input with
        | Error e -> Rejected e
        | Ok f ->
          let tree = Lazy.force explain_tree in
          let valuation = Semantics.generic_valuation in
          (match Cert.certify_result tree ~valuation f with
          | Error e -> Rejected e
          | Ok cert ->
            (match Cert.check ~valuation tree cert with
            | Ok () -> ()
            | Error v ->
              failwith ("fresh certificate rejected: " ^ Cert.violation_to_string v));
            (match Cert.of_json_string (Cert.to_json cert) with
            | Error msg -> failwith ("emitted JSON does not parse back: " ^ msg)
            | Ok cert' ->
              (match Cert.check ~valuation tree cert' with
              | Ok () -> Accepted
              | Error v ->
                failwith
                  ("re-parsed certificate rejected: " ^ Cert.violation_to_string v)))) );
    ( "cert_json",
      fun input ->
        match Cert.of_json_string input with
        | Ok _ -> Accepted
        | Error msg -> Rejected (Error.make Error.Parse msg) )
  ]

(* --mode eval-vec: differential testing of the two evaluation
   engines. Budget exhaustion inside either engine surfaces as the
   typed outcome of [probe]'s budget scope, so only genuine
   divergences — a one-sided Invalid_argument, different messages, or
   different point sets — count as findings. *)
let eval_vec_boundaries =
  [ ( "eval-vec",
      fun input ->
        match Parser.parse_result input with
        | Error e -> Rejected e
        | Ok f ->
          let tree = Lazy.force explain_tree in
          let valuation = Semantics.generic_valuation in
          let attempt eval =
            match eval () with
            | fact -> Ok fact
            | exception Invalid_argument msg -> Error msg
          in
          let r = attempt (fun () -> Semantics.eval tree ~valuation f) in
          let v = attempt (fun () -> Semantics.eval_vec tree ~valuation f) in
          (match (r, v) with
          | Error a, Error b ->
            if String.equal a b then Rejected (Error.make Error.Invalid_system a)
            else
              failwith (Printf.sprintf "engines raise differently: %S vs %S" a b)
          | Ok _, Error m -> failwith ("only the vectorized engine raised: " ^ m)
          | Error m, Ok _ -> failwith ("only the recursive engine raised: " ^ m)
          | Ok fr, Ok fv ->
            let same =
              Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
                  acc && Fact.holds fr ~run ~time = Fact.holds fv ~run ~time)
            in
            if same then Accepted
            else failwith "engines disagree on the satisfying point set") )
  ]

(* --mode frame: the serve wire boundary. The server's own per-request
   budgets (frame_config.limits) bound fuzzed requests that happen to
   parse; the reader event cap turns a non-terminating resync loop
   into a finding rather than a hang. *)
let frame_config =
  { Serve.default_config with
    Serve.max_pending = 8;
    max_frame = 4096;
    cache_max = 8;
    tree_cache_max = 4;
    drain_ms = Some 1000;
    limits = probe_limits
  }

(* --mode openmetrics: snapshot JSON in, exposition text out. The
   snapshot parser accepts arbitrary strings as metric names, so
   mutants reach the renderer's sanitize/escape paths directly. *)
let openmetrics_boundaries =
  [ ( "openmetrics",
      fun input ->
        match Obs.Snapshot.of_json_string input with
        | Error msg -> Rejected (Error.make Error.Parse msg)
        | Ok snap -> (
          let text = Obs.Openmetrics.render snap in
          match Obs.Openmetrics.check text with
          | Ok () -> Accepted
          | Error msg ->
            failwith
              (Printf.sprintf "rendered exposition fails the grammar: %s" msg)) )
  ]

(* --mode journal: the flight-recorder boundary. [journal-read] is
   pure crash-freedom of the segment decoder; [journal-replay] drives
   anything that decodes through the full replay pipeline —
   meta-to-config parsing, stream reconstruction, a live serve session
   and the response diff. The probe [limits] override neuters
   whatever budgets a mutated meta declares, so a hostile journal can
   slow a probe down only as far as the standard probe budget allows.
   Divergences are the expected outcome on mutants (the recording no
   longer matches what the engine says), so only an escaped exception
   counts as a finding. *)
let journal_boundaries =
  [ ( "journal-read",
      fun input ->
        match Journal.read_string input with
        | Ok _ -> Accepted
        | Error msg -> Rejected (Error.make Error.Parse msg) );
    ( "journal-replay",
      fun input ->
        match Journal.read_string input with
        | Error msg -> Rejected (Error.make Error.Parse msg)
        | Ok rr -> (
          match Replay.run ~jobs:1 ~limits:probe_limits rr with
          | Ok _ -> Accepted
          | Error msg -> Rejected (Error.make Error.Parse msg)) )
  ]

let frame_boundaries =
  [ ( "frame",
      fun input ->
        let reader =
          Serve.Frame.reader ~max_frame:4096 (Serve.Frame.source_of_string input)
        in
        let rec drain n =
          if n > 100_000 then failwith "frame reader did not reach Eof"
          else
            match Serve.Frame.read reader with
            | Serve.Frame.Eof -> Accepted
            | Serve.Frame.Payload _ | Serve.Frame.Junk _ -> drain (n + 1)
        in
        drain 0 );
    ( "serve",
      fun input ->
        let _out, code = Serve.run_string ~config:frame_config input in
        if code = 0 then Accepted
        else failwith (Printf.sprintf "server exited %d on fuzzed stream" code) )
  ]

let crashes = Atomic.make 0

(* [Some report] on a contract violation. *)
let probe name boundary input =
  match Budget.with_budget probe_limits (fun () -> boundary input) with
  | Ok Accepted | Ok (Rejected _) -> None
  | Error (_ : Error.t) -> None (* budget exhaustion is a typed, contractual outcome *)
  | exception exn ->
    ignore (Atomic.fetch_and_add crashes 1);
    Some (Printf.sprintf "CRASH %s: %s\n  input: %S\n" name (Printexc.to_string exn) input)

(* ------------------------------------------------------------------ *)
(* Input generation                                                    *)
(* ------------------------------------------------------------------ *)

type rng = { mutable st : int }

(* SplitMix-style mix of (seed, iteration): each iteration owns an
   independent stream keyed by its INDEX, so the fuzzed inputs do not
   depend on how iterations are divided among domains. *)
let rng_for s i =
  let z = (s + ((i + 1) * 0x9E3779B9)) land max_int in
  let z = (z lxor (z lsr 16)) * 0x85EBCA6B land max_int in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 land max_int in
  { st = ((z lxor (z lsr 16)) lxor 0x9e3779b9) land max_int }

(* xorshift-ish; deterministic, independent of Random. *)
let next r =
  let x = r.st in
  let x = x lxor (x lsl 13) land max_int in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) land max_int in
  r.st <- x;
  x

let random_bytes r =
  let len = next r mod 401 in
  String.init len (fun _ -> Char.chr (next r mod 256))

let structural = [| '('; ')'; '"'; '\\'; '-'; '/'; ' '; '['; ']'; '>'; '='; '\000' |]

let mutate r s =
  if String.length s = 0 then s
  else begin
    let edits = 1 + (next r mod 8) in
    let out = ref s in
    for _ = 1 to edits do
      let s = !out in
      let n = String.length s in
      if n > 0 then begin
        let pos = next r mod n in
        out :=
          (match next r mod 5 with
           | 0 ->
             String.sub s 0 pos
             ^ String.make 1 (Char.chr (next r mod 256))
             ^ String.sub s (pos + 1) (n - pos - 1)
           | 1 ->
             String.sub s 0 pos
             ^ String.make 1 structural.(next r mod Array.length structural)
             ^ String.sub s pos (n - pos)
           | 2 -> String.sub s 0 pos ^ String.sub s (pos + 1) (n - pos - 1)
           | 3 ->
             let len = min (next r mod 32) (n - pos) in
             String.sub s 0 (pos + len) ^ String.sub s pos (n - pos)
           | _ -> String.sub s 0 pos)
      end
    done;
    !out
  end

let seed_formulas =
  [| "K[0] (x1 -> B[1]>=3/4 done)";
     "CB[0,1]>=1/2 (done & !x1) <-> E[0,1] F done";
     "does[0](go) | G (p -> X q)";
     "B[0]>=19/20 (a0_fire & a1_fire)"
  |]

let seed_doc =
  lazy
    (let t = Systems.Figure_one.tree ~p_alpha:Q.half () in
     Tree_io.to_string t)

(* --mode explain seeds: formulas over the fixed system's generic
   atoms, covering every certificate node kind, plus one valid
   certificate JSON for the cert_json boundary's mutants. *)
let explain_formulas =
  [| "K[0] a0_g0 & B[0]>=1/2 F a0_h";
     "CB[0]>=3/4 (a0_g0 | !a0_g0)";
     "C[0] (a0_g1 -> X a0_g2)";
     "does[0](alpha) -> B[0]>=1/3 O a0_g1";
     "EB[0]>=2/3 G (a0_g0 <-> H a0_g0)"
  |]

let seed_cert_json =
  lazy
    (let tree = Lazy.force explain_tree in
     Cert.to_json
       (Semantics.certify tree ~valuation:Semantics.generic_valuation
          (Parser.parse "K[0] a0_g0 | B[0]>=1/4 F a0_g1")))

(* --mode frame seeds: one valid request/ping/shutdown payload set over
   the small fixed system (the Sexp printer handles escaping), and the
   concatenated frame stream built from them. *)
let seed_frame_payloads =
  lazy
    (let open Serve.Sexp in
     let doc = Lazy.force seed_doc in
     let field k v = List [ Atom k; v ] in
     let req id op formula extras =
       to_string
         (List
            (Atom "request"
            :: field "id" (Atom (string_of_int id))
            :: field "op" (Atom op)
            :: field "system" (Str doc)
            :: field "formula" (Str formula)
            :: extras))
     in
     [| req 1 "eval" "K[0] a0_g0" [];
        req 2 "belief" "a0_g1"
          [ field "agent" (Atom "0"); field "run" (Atom "0"); field "time" (Atom "0") ];
        req 3 "eval" "CB[0]>=1/2 a0_g0" [ field "max-iters" (Atom "0") ];
        to_string (List [ Atom "ping"; field "id" (Atom "4") ]);
        to_string (List [ Atom "shutdown" ])
     |])

let seed_frame_stream =
  lazy
    (Lazy.force seed_frame_payloads |> Array.to_list
    |> List.map Serve.Frame.encode |> String.concat "")

(* --mode journal seed: a real recording, made in memory by running a
   serve session over the frame-mode seed stream with a Buffer-backed
   sink — so mutants start from a valid header, meta and record set
   and reach the deep parsing paths instead of dying at the magic. *)
let seed_journal =
  lazy
    (let buf = Buffer.create 4096 in
     Buffer.add_string buf
       (Journal.segment_header ~meta:(Replay.meta_of_config frame_config));
     let sink =
       { Journal.emit = (fun e -> Buffer.add_string buf (Journal.encode_entry e));
         position = (fun () -> Buffer.length buf);
         rotations = (fun () -> 0)
       }
     in
     ignore
       (Serve.run_string
          ~config:{ frame_config with Serve.journal = Some sink }
          (Lazy.force seed_frame_stream));
     Buffer.contents buf)

(* --mode openmetrics seeds: a real snapshot of this process (after a
   little recorded activity, so counters/histograms/spans are all
   non-empty) and a handcrafted one whose metric names smuggle every
   character class the renderer must neutralize. *)
let seed_snapshot_json =
  lazy
    (Obs.enable ();
     ignore
       (Obs.span "fuzz.seed" (fun () ->
            Semantics.eval (Lazy.force explain_tree)
              ~valuation:Semantics.generic_valuation
              (Parser.parse "K[0] a0_g0 | B[0]>=1/4 F a0_g1")));
     Obs.Snapshot.to_json (Obs.Snapshot.capture ()))

let nasty_snapshot_json =
  {|{"schema_version":2,"counters":{"evil\nname":3,"a{b}\"c\\":1,"":7,"sp ace":2},"gauges":{"gx":0.5,"huge":1e308},"histograms":{"h;na me":{"count":2,"p50_ns":10,"p90_ns":10,"p99_ns":10,"buckets":[[0,1],[5,1]]}},"span_tree":[]}|}

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let replay_corpus boundaries dir =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      let ic = open_in_bin path in
      let input =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      List.iter
        (fun (bname, b) ->
          match probe (bname ^ "/" ^ name) b input with
          | None -> ()
          | Some report -> print_string report)
        boundaries)
    files;
  Array.length files

let () =
  parse_args (List.tl (Array.to_list Sys.argv));
  let boundaries =
    match !mode with
    | "explain" -> explain_boundaries
    | "frame" -> frame_boundaries
    | "eval-vec" -> eval_vec_boundaries
    | "openmetrics" -> openmetrics_boundaries
    | "journal" -> journal_boundaries
    | _ -> boundaries
  in
  let replayed = if !corpus = "" then 0 else replay_corpus boundaries !corpus in
  (* Force the seed inputs before any domain spawns: Lazy values are
     not safe to force concurrently. *)
  let doc = Lazy.force seed_doc in
  let cert_json = if !mode = "explain" then Lazy.force seed_cert_json else "" in
  let frame_payloads, frame_stream =
    if !mode = "frame" then (Lazy.force seed_frame_payloads, Lazy.force seed_frame_stream)
    else ([||], "")
  in
  let snapshot_json =
    if !mode = "openmetrics" then Lazy.force seed_snapshot_json else ""
  in
  let journal_seed = if !mode = "journal" then Lazy.force seed_journal else "" in
  let run_iteration i =
    let r = rng_for !seed i in
    let input =
      match !mode with
      | "explain" ->
        (match i mod 3 with
         | 0 -> random_bytes r
         | 1 -> mutate r explain_formulas.(next r mod Array.length explain_formulas)
         | _ -> mutate r cert_json)
      | "eval-vec" ->
        (* Formula mutants dominate: random bytes rarely parse, and
           the differential contract only bites past the parser. *)
        (match i mod 3 with
         | 0 -> random_bytes r
         | 1 -> mutate r explain_formulas.(next r mod Array.length explain_formulas)
         | _ -> mutate r seed_formulas.(next r mod Array.length seed_formulas))
      | "frame" ->
        (* Whole-stream mutants attack the reader's resync; valid
           headers over mutated payloads get past it and attack the
           request parser and evaluator. *)
        (match i mod 3 with
         | 0 -> random_bytes r
         | 1 -> mutate r frame_stream
         | _ ->
           Serve.Frame.encode
             (mutate r frame_payloads.(next r mod Array.length frame_payloads)))
      | "openmetrics" ->
        (* Mutants of valid snapshot JSON dominate: random bytes rarely
           parse, and the grammar contract only bites past the snapshot
           parser. The nasty seed starts inside the renderer's
           worst-case character classes. *)
        (match i mod 3 with
         | 0 -> random_bytes r
         | 1 -> mutate r snapshot_json
         | _ -> mutate r nasty_snapshot_json)
      | "journal" ->
        (* Truncations are a first-class stream, not just a mutation
           arm: the tail-recovery contract is about cuts at every
           byte offset, including mid-header and mid-payload. *)
        (match i mod 3 with
         | 0 -> random_bytes r
         | 1 -> mutate r journal_seed
         | _ -> String.sub journal_seed 0 (next r mod (String.length journal_seed + 1)))
      | _ ->
        (match i mod 3 with
         | 0 -> random_bytes r
         | 1 -> mutate r seed_formulas.(next r mod Array.length seed_formulas)
         | _ -> mutate r doc)
    in
    (* Round-robin keeps both boundaries at iters/2 probes minimum;
       formula mutants also go to the other boundary and vice versa,
       which is the point — boundaries must reject foreign input
       gracefully too. *)
    List.filter_map (fun (name, b) -> probe name b input) boundaries
  in
  let indices = Array.init !iters Fun.id in
  let findings =
    if !jobs <= 1 then Array.map run_iteration indices
    else Pool.with_pool ~jobs:!jobs (fun pool -> Pool.map pool run_iteration indices)
  in
  Array.iter (List.iter print_string) findings;
  Printf.printf "fuzz: %d iterations x %d boundaries (+%d corpus files), %d crashes (seed %d)\n"
    !iters (List.length boundaries) replayed (Atomic.get crashes) !seed;
  if Atomic.get crashes > 0 then exit 1
