(* fuzz [--iters N] [--seed S] [--corpus DIR] — in-process fuzzer for
   the untrusted-input boundaries.

   Feeds three input streams to Parser.parse_result and
   Tree_io.of_string_result, asserting the crash-free contract: every
   input yields Ok or a typed Pak_guard.Error.t — never an escaped
   exception, never a stack overflow, and (under the built-in budget)
   never a hang. Streams:

   - random byte strings, length 0..400;
   - mutations of valid round-trip documents and formulas (byte flips,
     structural-byte insertion, deletion, slice duplication,
     truncation);
   - the committed regression corpus, replayed first when --corpus is
     given.

   Exits 0 after N crash-free iterations, printing a one-line summary;
   on the first contract violation prints the input (escaped) and
   exits 1, so the offender can be added to test/corpus/. Used by CI
   as the fuzz smoke job. *)

open Pak
module Error = Pak.Error

let iters = ref 10_000
let seed = ref 0
let corpus = ref ""

let usage () =
  prerr_endline "usage: fuzz [--iters N] [--seed S] [--corpus DIR]";
  exit 2

let rec parse_args = function
  | [] -> ()
  | "--iters" :: v :: rest ->
    (match int_of_string_opt v with Some n when n > 0 -> iters := n | _ -> usage ());
    parse_args rest
  | "--seed" :: v :: rest ->
    (match int_of_string_opt v with Some n -> seed := n | _ -> usage ());
    parse_args rest
  | "--corpus" :: v :: rest ->
    corpus := v;
    parse_args rest
  | _ -> usage ()

(* ------------------------------------------------------------------ *)
(* Boundaries under test                                               *)
(* ------------------------------------------------------------------ *)

type outcome = Accepted | Rejected of Error.t

let boundaries =
  [ ( "parser",
      fun input ->
        match Parser.parse_result input with Ok _ -> Accepted | Error e -> Rejected e );
    ( "tree_io",
      fun input ->
        match Tree_io.of_string_result input with Ok _ -> Accepted | Error e -> Rejected e )
  ]

(* Each probe runs under a modest budget so a pathological input that
   is merely slow (rather than crashing) also counts as a finding:
   the contract includes "never a hang". *)
let probe_limits = Budget.limits ~max_nodes:100_000 ~max_limbs:1_000_000 ~timeout_ms:2_000 ()

let crashes = ref 0

let probe name boundary input =
  match Budget.with_budget probe_limits (fun () -> boundary input) with
  | Ok Accepted | Ok (Rejected _) -> ()
  | Error (_ : Error.t) -> () (* budget exhaustion is a typed, contractual outcome *)
  | exception exn ->
    incr crashes;
    Printf.printf "CRASH %s: %s\n  input: %S\n" name (Printexc.to_string exn) input

(* ------------------------------------------------------------------ *)
(* Input generation                                                    *)
(* ------------------------------------------------------------------ *)

let rand = ref 0

let init_rand s = rand := (s lxor 0x9e3779b9) land max_int

(* xorshift-ish; deterministic in --seed, independent of Random. *)
let next () =
  let x = !rand in
  let x = x lxor (x lsl 13) land max_int in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) land max_int in
  rand := x;
  x

let random_bytes () =
  let len = next () mod 401 in
  String.init len (fun _ -> Char.chr (next () mod 256))

let structural = [| '('; ')'; '"'; '\\'; '-'; '/'; ' '; '['; ']'; '>'; '='; '\000' |]

let mutate s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let edits = 1 + (next () mod 8) in
    let out = ref (Bytes.to_string b) in
    for _ = 1 to edits do
      let s = !out in
      let n = String.length s in
      if n > 0 then begin
        let pos = next () mod n in
        out :=
          (match next () mod 5 with
           | 0 ->
             String.sub s 0 pos
             ^ String.make 1 (Char.chr (next () mod 256))
             ^ String.sub s (pos + 1) (n - pos - 1)
           | 1 ->
             String.sub s 0 pos
             ^ String.make 1 structural.(next () mod Array.length structural)
             ^ String.sub s pos (n - pos)
           | 2 -> String.sub s 0 pos ^ String.sub s (pos + 1) (n - pos - 1)
           | 3 ->
             let len = min (next () mod 32) (n - pos) in
             String.sub s 0 (pos + len) ^ String.sub s pos (n - pos)
           | _ -> String.sub s 0 pos)
      end
    done;
    !out
  end

let seed_formulas =
  [| "K[0] (x1 -> B[1]>=3/4 done)";
     "CB[0,1]>=1/2 (done & !x1) <-> E[0,1] F done";
     "does[0](go) | G (p -> X q)";
     "B[0]>=19/20 (a0_fire & a1_fire)"
  |]

let seed_doc =
  lazy
    (let t = Systems.Figure_one.tree ~p_alpha:Q.half () in
     Tree_io.to_string t)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let replay_corpus dir =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      let ic = open_in_bin path in
      let input =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      List.iter (fun (bname, b) -> probe (bname ^ "/" ^ name) b input) boundaries)
    files;
  Array.length files

let () =
  parse_args (List.tl (Array.to_list Sys.argv));
  init_rand !seed;
  let replayed = if !corpus = "" then 0 else replay_corpus !corpus in
  for i = 0 to !iters - 1 do
    let input =
      match i mod 3 with
      | 0 -> random_bytes ()
      | 1 -> mutate seed_formulas.(next () mod Array.length seed_formulas)
      | _ -> mutate (Lazy.force seed_doc)
    in
    (* Round-robin keeps both boundaries at iters/2 probes minimum;
       formula mutants also go to tree_io and vice versa, which is the
       point — boundaries must reject foreign input gracefully too. *)
    List.iter (fun (name, b) -> probe name b input) boundaries
  done;
  Printf.printf "fuzz: %d iterations x %d boundaries (+%d corpus files), %d crashes (seed %d)\n"
    !iters (List.length boundaries) replayed !crashes !seed;
  if !crashes > 0 then exit 1
