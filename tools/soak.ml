(* soak [--requests N] [--inject all|none|bitflip|garbage|oversize|truncate]
        [--jobs J] [--shutdown] — the robustness acceptance oracle for
   `pak serve`.

   Plays a deterministic mixed stream of N requests against an
   in-process server (Serve.run_string) and checks the whole response
   stream event-by-event:

   - eval and belief requests over the figure-one and firing-squad
     systems, whose responses must equal a locally recomputed rendering
     (direct Semantics/Belief evaluation — the spot-check against
     `pak load`);
   - deadline-doomed fixpoint queries (per-request max-iters 0) that
     must come back as typed budget errors, never kill the server;
   - budget-degraded belief queries (a per-request max-points cap sized
     so the formula eval fits but the exact degree busts) that
     must come back ESTIMATED with exactly the value the direct
     degree_graded fallback produces under the same budget;
   - batches larger than --max-pending whose overflow must be shed
     with an overloaded + retry-after-ms response, in order;
   - malformed requests (unknown op, unparsable formula) that must get
     typed request/input errors;
   - injected frame faults — bit-flipped payloads, inter-frame
     garbage, oversized frames, a truncated final frame — each of
     which must produce exactly one typed protocol error and a resync;
   - a mid-stream client disconnect (write raises EPIPE) after which
     the server must still return exit code 0.

   Responses must arrive in request order, the server must exit 0, and
   the serve.* counters must account for every injected fault. Exits 0
   and prints SOAK_OK only if every check passes. *)

open Pak
module Serve = Pak.Serve
module Sexp = Serve.Sexp
module Frame = Serve.Frame

let requests = ref 500
let inject = ref "all"
let jobs = ref 2
let shutdown = ref false
let emit_stream = ref None
let journal = ref None

let usage () =
  prerr_endline
    "usage: soak [--requests N] [--inject all|none|bitflip|garbage|oversize|truncate] [--jobs J] [--shutdown]";
  prerr_endline "            [--emit-stream FILE]   write the input stream and exit";
  prerr_endline
    "            [--journal FILE]       record the session to a flight-recorder journal";
  exit 2

let rec parse_args = function
  | [] -> ()
  | "--requests" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n > 0 -> requests := n
      | _ -> usage ());
      parse_args rest
  | "--inject" :: v :: rest ->
      (match v with
      | "all" | "none" | "bitflip" | "garbage" | "oversize" | "truncate" ->
          inject := v
      | _ -> usage ());
      parse_args rest
  | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n > 0 -> jobs := n
      | _ -> usage ());
      parse_args rest
  | "--shutdown" :: rest ->
      shutdown := true;
      parse_args rest
  | "--emit-stream" :: file :: rest ->
      emit_stream := Some file;
      parse_args rest
  | "--journal" :: file :: rest ->
      journal := Some file;
      parse_args rest
  | _ -> usage ()

let want kind = !inject = "all" || !inject = kind

(* ------------------------------------------------------------------ *)
(* Request construction                                                *)
(* ------------------------------------------------------------------ *)

let field k v = Sexp.List [ Sexp.Atom k; v ]
let int_f k v = field k (Sexp.Atom (string_of_int v))

let request_sexp ~id ~op ~system ~formula extras =
  Sexp.List
    (Sexp.Atom "request" :: int_f "id" id
    :: field "op" (Sexp.Atom op)
    :: field "system" (Sexp.Str system)
    :: field "formula" (Sexp.Str formula)
    :: extras)

let frame_of sexp = Frame.encode (Sexp.to_string sexp)

(* ------------------------------------------------------------------ *)
(* The local oracle: recompute what the server must answer             *)
(* ------------------------------------------------------------------ *)

let valuation = Semantics.generic_valuation

(* Must render exactly what lib/serve renders for an ok outcome. *)
let eval_body tree formula =
  let f = Parser.parse formula in
  let fact = Semantics.eval_auto tree ~valuation f in
  let sat = ref 0 in
  Tree.iter_points tree (fun ~run ~time ->
      if Fact.holds fact ~run ~time then incr sat);
  let initially = ref (Tree.empty_event tree) in
  for r = 0 to Tree.n_runs tree - 1 do
    if Fact.holds fact ~run:r ~time:0 then initially := Bitset.add !initially r
  done;
  Printf.sprintf
    "(code 0) (status ok) (result (points %d) (sat %d) (valid %b) (prob %s))"
    (Tree.n_points tree) !sat
    (!sat = Tree.n_points tree)
    (Q.to_string (Tree.measure tree !initially))

let belief_exact_body tree formula ~agent ~run ~time =
  let fact = Semantics.eval_auto tree ~valuation (Parser.parse formula) in
  Printf.sprintf "(code 0) (status ok) (result (degree %s))"
    (Q.to_string (Belief.degree fact ~agent ~run ~time))

(* Q's small-int fast path keeps figure-one's tiny fractions out of
   Bignat entirely, so a limb cap cannot starve the exact degree. Points
   are charged on every [Tree.measure] instead: size a points budget to
   exactly what the formula eval spends, so the eval succeeds and the
   first conditional measure inside [Belief.degree] busts. The probe
   goes through [eval_auto] — the dispatcher the server uses — because
   the two engines charge points differently and the cap must fit the
   engine that will actually serve the request. *)
let eval_points_spend tree formula =
  match
    Budget.with_budget
      (Budget.limits ~max_points:max_int ())
      (fun () ->
        ignore (Semantics.eval_auto tree ~valuation (Parser.parse formula));
        List.assoc "points" (Budget.spent ()))
  with
  | Ok n -> n
  | Error _ -> failwith "oracle: eval spend probe busted"

(* Replicates the degraded path under the same per-request budget the
   server installs: formula eval inside the scope, then the graded
   degree whose exact attempt busts the points cap and falls back to
   the budget-exempt estimator. *)
let belief_degraded_body tree formula ~agent ~run ~time ~samples ~seed
    ~max_points =
  let lim = Budget.limits ~max_points () in
  match
    Budget.with_budget lim (fun () ->
        let fact = Semantics.eval_auto tree ~valuation (Parser.parse formula) in
        Belief.degree_graded ~samples ~seed fact ~agent ~run ~time)
  with
  | Ok (Graded.Estimated { value; samples }) ->
      Printf.sprintf
        "(code 0) (status estimated) (result (degree %s) (samples %d))"
        (Q.to_string value) samples
  | Ok (Graded.Exact _) ->
      failwith "oracle: degraded query unexpectedly stayed exact"
  | Error e -> failwith ("oracle: degraded query failed: " ^ Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Expected response stream                                            *)
(* ------------------------------------------------------------------ *)

type check =
  | Exact of string  (* full body must match *)
  | Code_kind of int * string  (* (code C) and (kind K) must match *)
  | Overloaded of int  (* retry-after-ms hint *)
  | Status_ok  (* (op status): code 0, status ok, uptime-ticks present *)

type expected = X_resp of int * check | X_pong of int | X_bye

(* ------------------------------------------------------------------ *)
(* Stream construction                                                 *)
(* ------------------------------------------------------------------ *)

let max_pending = 16
let max_frame = 65536
let retry_after = 25

let build () =
  let fig1 = Systems.Figure_one.tree () in
  let fsq = Systems.Firing_squad.tree Systems.Firing_squad.Original in
  let doc1 = Tree_io.to_string fig1 in
  let doc2 = Tree_io.to_string fsq in
  let deg_points = eval_points_spend fig1 "a0_g1" in
  let fml1 =
    [|
      "a0_g0";
      "K[0] a0_g0";
      "B[0]>=1/4 F a0_g1";
      "a0_g0 | a0_g1 | a0_g2";
      "CB[0]>=1/2 (a0_g0 | a0_g1 | a0_g2)";
    |]
  in
  let fml2 =
    [| "a0_done"; "K[1] a0_done"; "B[1]>=1/2 F a0_done"; "CB[0,1]>=3/4 a0_done" |]
  in
  let input = Buffer.create (1 lsl 16) in
  let expected = ref [] in
  let protocol_faults = ref 0 in
  let counts =
    object
      val mutable requests = 0
      val mutable pings = 0
      val mutable shed = 0
      val mutable doomed = 0
      val mutable degraded = 0
      val mutable bad_request = 0
      val mutable bad_input = 0
      method bump_requests = requests <- requests + 1
      method bump_pings = pings <- pings + 1
      method bump_shed = shed <- shed + 1
      method bump_doomed = doomed <- doomed + 1
      method bump_degraded = degraded <- degraded + 1
      method bump_bad_request = bad_request <- bad_request + 1
      method bump_bad_input = bad_input <- bad_input + 1
      method requests = requests
      method pings = pings
      method shed = shed
      method doomed = doomed
      method degraded = degraded
      method bad_request = bad_request
      method bad_input = bad_input
    end
  in
  let expect x = expected := x :: !expected in
  let emit_request ?(extras = []) ~id ~op ~system ~formula check =
    counts#bump_requests;
    Buffer.add_string input
      (frame_of (request_sexp ~id ~op ~system ~formula extras));
    expect (X_resp (id, check))
  in
  let protocol_fault () =
    incr protocol_faults;
    expect (X_resp (-1, Code_kind (3, "protocol")))
  in
  (* Warm both parsed-system caches in their own drain so later
     concurrent requests on the same documents hit the tree cache. *)
  emit_request ~id:1 ~op:"eval" ~system:doc1 ~formula:fml1.(0)
    (Exact (eval_body fig1 fml1.(0)));
  emit_request ~id:2 ~op:"eval" ~system:doc2 ~formula:fml2.(0)
    (Exact (eval_body fsq fml2.(0)));
  counts#bump_pings;
  Buffer.add_string input (frame_of (Sexp.List [ Sexp.Atom "ping"; int_f "id" 3 ]));
  expect (X_pong 3);
  for i = 0 to !requests - 1 do
    let id = 100 + (100 * i) in
    (match i mod 10 with
    | 0 | 2 ->
        let f = fml1.((i / 2) mod Array.length fml1) in
        emit_request ~id ~op:"eval" ~system:doc1 ~formula:f
          (Exact (eval_body fig1 f))
    | 1 | 4 ->
        let f = fml2.(i mod Array.length fml2) in
        emit_request ~id ~op:"eval" ~system:doc2 ~formula:f
          (Exact (eval_body fsq f))
    | 3 ->
        let run = i mod Tree.n_runs fig1 in
        emit_request ~id ~op:"belief" ~system:doc1 ~formula:"a0_g1"
          ~extras:[ int_f "agent" 0; int_f "run" run; int_f "time" 0 ]
          (Exact (belief_exact_body fig1 "a0_g1" ~agent:0 ~run ~time:0))
    | 5 ->
        counts#bump_pings;
        Buffer.add_string input
          (frame_of (Sexp.List [ Sexp.Atom "ping"; int_f "id" id ]));
        expect (X_pong id);
        (* Introspection after a forced drain: the queue is empty, so
           the status answer is a pure function of the stream prefix —
           deterministic at every --jobs. *)
        counts#bump_requests;
        Buffer.add_string input
          (frame_of
             (Sexp.List
                [
                  Sexp.Atom "request";
                  int_f "id" (id + 1);
                  field "op" (Sexp.Atom "status");
                ]));
        expect (X_resp (id + 1, Status_ok))
    | 6 ->
        (* Deadline-doomed fixpoint query: the per-request iteration
           cap kills the C/CB gfp immediately, as a typed budget error. *)
        counts#bump_doomed;
        emit_request ~id ~op:"eval" ~system:doc1 ~formula:fml1.(4)
          ~extras:[ int_f "max-iters" 0 ]
          (Code_kind (4, "budget-exceeded"))
    | 7 ->
        let run = (i / 2) mod Tree.n_runs fsq in
        emit_request ~id ~op:"belief" ~system:doc2 ~formula:"a0_done"
          ~extras:[ int_f "agent" 1; int_f "run" run; int_f "time" 0 ]
          (Exact (belief_exact_body fsq "a0_done" ~agent:1 ~run ~time:0))
    | 8 ->
        counts#bump_degraded;
        let samples = 400 and seed = 1000 + i in
        emit_request ~id ~op:"belief" ~system:doc1 ~formula:"a0_g1"
          ~extras:
            [
              int_f "agent" 0;
              int_f "run" 0;
              int_f "time" 0;
              int_f "samples" samples;
              int_f "seed" seed;
              int_f "max-points" deg_points;
            ]
          (Exact
             (belief_degraded_body fig1 "a0_g1" ~agent:0 ~run:0 ~time:0 ~samples
                ~seed ~max_points:deg_points))
    | 9 ->
        if i / 10 mod 3 = 0 then begin
          (* A batch bigger than --max-pending: the tail must shed. A
             ping first forces a full drain so the batch meets an empty
             queue and the shed boundary is exact at any --jobs; the
             threshold numerator is the globally unique request id so no
             member ever hits the result cache and every slot is really
             occupied by live work. *)
          counts#bump_pings;
          Buffer.add_string input
            (frame_of (Sexp.List [ Sexp.Atom "ping"; int_f "id" (id - 1) ]));
          expect (X_pong (id - 1));
          let n = max_pending + 3 in
          let members =
            List.init n (fun j ->
                counts#bump_requests;
                let f = Printf.sprintf "B[0]>=%d/1000000 a0_g0" (id + j) in
                let check =
                  if j < max_pending then Exact (eval_body fig1 f)
                  else begin
                    counts#bump_shed;
                    Overloaded retry_after
                  end
                in
                expect (X_resp (id + j, check));
                request_sexp ~id:(id + j) ~op:"eval" ~system:doc1 ~formula:f [])
          in
          Buffer.add_string input
            (frame_of (Sexp.List (Sexp.Atom "batch" :: members)))
        end
        else if i mod 2 = 0 then begin
          counts#bump_bad_request;
          emit_request ~id ~op:"frobnicate" ~system:doc1 ~formula:"a0_g0"
            (Code_kind (2, "request"))
        end
        else begin
          counts#bump_bad_input;
          emit_request ~id ~op:"eval" ~system:doc1 ~formula:"K[0"
            (Code_kind (3, "parse"))
        end
    | _ -> assert false);
    (* Frame-level fault injection, always between frames so the
       oracle stays exact: each fault costs one typed protocol error
       and nothing else. *)
    if want "bitflip" && i mod 13 = 5 then begin
      let payload = Sexp.to_string (Sexp.List [ Sexp.Atom "ping" ]) in
      let flipped = Bytes.of_string payload in
      Bytes.set flipped 0 ')';
      Buffer.add_string input (Frame.encode (Bytes.to_string flipped));
      protocol_fault ()
    end;
    if want "garbage" && i mod 7 = 3 then begin
      Buffer.add_string input "@@@ line noise, not a frame @@@";
      protocol_fault ()
    end;
    if want "oversize" && i mod 17 = 11 then begin
      Buffer.add_string input
        (Printf.sprintf "pak1 %d\n%s" (max_frame + 1)
           (String.make (max_frame + 1) 'z'));
      protocol_fault ()
    end
  done;
  if !shutdown then begin
    Buffer.add_string input (frame_of (Sexp.List [ Sexp.Atom "shutdown" ]));
    (* Anything after shutdown must be ignored, not answered. *)
    Buffer.add_string input
      (frame_of (request_sexp ~id:99 ~op:"eval" ~system:doc1 ~formula:"a0_g0" []))
  end
  else if want "truncate" then begin
    (* The stream dies mid-frame: one protocol error, then a clean
       EOF drain. *)
    Buffer.add_string input "pak1 4096\ntoo short";
    protocol_fault ()
  end;
  expect X_bye;
  (Buffer.contents input, List.rev !expected, !protocol_faults, counts)

(* ------------------------------------------------------------------ *)
(* Response stream checking                                            *)
(* ------------------------------------------------------------------ *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failures;
      if !failures <= 20 then prerr_endline ("FAIL: " ^ m))
    fmt

let fields_of = function
  | Sexp.List (Sexp.Atom tag :: fields) -> Some (tag, fields)
  | _ -> None

let get_int fields name =
  List.find_map
    (function
      | Sexp.List [ Sexp.Atom k; Sexp.Atom v ] when k = name ->
          int_of_string_opt v
      | _ -> None)
    fields

let get_atom fields name =
  List.find_map
    (function
      | Sexp.List [ Sexp.Atom k; Sexp.Atom v ] when k = name -> Some v
      | _ -> None)
    fields

(* The response body as rendered: everything after "(id N)" and the
   request-scoped "(trace <id>)" field (present on every response that
   had a request behind it; its value is input-dependent, so the exact
   oracle compares the remainder). *)
let body_of_response payload =
  let marker = ") " in
  match String.index_opt payload ')' with
  | Some i when i + 2 <= String.length payload ->
      let start = i + String.length marker in
      (* payload = "(response (id N) [(trace T) ]BODY)" *)
      let start =
        let pfx = "(trace " in
        if
          String.length payload - start > String.length pfx
          && String.sub payload start (String.length pfx) = pfx
        then
          match String.index_from_opt payload start ')' with
          | Some j when j + 2 <= String.length payload -> j + 2
          | _ -> start
        else start
      in
      String.sub payload start (String.length payload - start - 1)
  | _ -> payload

let check_event i payload x =
  match (Sexp.parse payload, x) with
  | Error m, _ -> fail "event %d: unparsable response frame (%s): %s" i m payload
  | Ok sx, X_pong want_id -> (
      match fields_of sx with
      | Some ("pong", fields) when get_int fields "id" = Some want_id -> ()
      | _ -> fail "event %d: expected (pong (id %d)), got %s" i want_id payload)
  | Ok sx, X_bye -> (
      match fields_of sx with
      | Some ("bye", _) -> ()
      | _ -> fail "event %d: expected (bye ...), got %s" i payload)
  | Ok sx, X_resp (want_id, check) -> (
      match fields_of sx with
      | Some ("response", fields) -> (
          (match get_int fields "id" with
          | Some got when got = want_id -> ()
          | got ->
              fail "event %d: expected id %d, got %s" i want_id
                (match got with Some g -> string_of_int g | None -> "none"));
          match check with
          | Exact body ->
              let got = body_of_response payload in
              if got <> body then
                fail "event %d (id %d): body mismatch\n  want: %s\n  got:  %s" i
                  want_id body got
          | Code_kind (code, kind) ->
              if get_int fields "code" <> Some code then
                fail "event %d (id %d): expected code %d in %s" i want_id code
                  payload;
              if get_atom fields "kind" <> Some kind then
                fail "event %d (id %d): expected kind %s in %s" i want_id kind
                  payload
          | Overloaded retry ->
              if get_atom fields "status" <> Some "overloaded" then
                fail "event %d (id %d): expected overloaded status in %s" i
                  want_id payload;
              if get_int fields "retry-after-ms" <> Some retry then
                fail "event %d (id %d): expected retry-after-ms %d in %s" i
                  want_id retry payload
          | Status_ok ->
              if get_int fields "code" <> Some 0 then
                fail "event %d (id %d): expected code 0 in %s" i want_id payload;
              if get_atom fields "status" <> Some "ok" then
                fail "event %d (id %d): expected status ok in %s" i want_id
                  payload;
              let contains hay needle =
                let nh = String.length hay and nn = String.length needle in
                let rec go k =
                  k + nn <= nh && (String.sub hay k nn = needle || go (k + 1))
                in
                go 0
              in
              if not (contains payload "(uptime-ticks ") then
                fail "event %d (id %d): status without uptime-ticks: %s" i
                  want_id payload)
      | _ -> fail "event %d: expected a response frame, got %s" i payload)

let counter delta name =
  match List.assoc_opt name delta.Obs.Snapshot.counters with
  | Some v -> v
  | None -> 0

let check_counter delta name want =
  let got = counter delta name in
  if got <> want then fail "counter %s = %d, want %d" name got want

let () =
  parse_args (List.tl (Array.to_list Sys.argv));
  Obs.enable ();
  Budget.set_wall_clock (Some Unix.gettimeofday);
  let input, expected, protocol_faults, counts = build () in
  (match !emit_stream with
  | Some file ->
      (* Stream-generator mode: write the deterministic input stream
         for an out-of-process `pak serve` (the CI telemetry and
         trace-id smoke) and stop — the in-process checks don't run. *)
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc input);
      Printf.printf "soak: wrote %d-byte input stream (%d requests) to %s\n"
        (String.length input) counts#requests file;
      exit 0
  | None -> ());
  let cfg =
    {
      Serve.default_config with
      jobs = !jobs;
      max_pending;
      max_frame;
      cache_max = 64;
      retry_after_ms = retry_after;
      drain_ms = Some 10_000;
      clock = Some Unix.gettimeofday;
    }
  in
  (* Flight recorder: the journal meta records [cfg] so a later
     `pak replay` re-executes this session under identical limits. *)
  let journal_writer =
    match !journal with
    | None -> None
    | Some file -> (
        match
          Journal.Writer.create ~meta:(Replay.meta_of_config cfg) file
        with
        | Ok w -> Some w
        | Error msg ->
            Printf.eprintf "soak: cannot open journal %s: %s\n" file msg;
            exit 2)
  in
  let cfg =
    { cfg with Serve.journal = Option.map Journal.Writer.sink journal_writer }
  in
  let t0 = Unix.gettimeofday () in
  let (output, code), delta =
    Obs.Snapshot.diff_capture (fun () -> Serve.run_string ~config:cfg input)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Option.iter Journal.Writer.close journal_writer;
  if code <> 0 then fail "server exited %d, want 0" code;
  (* Replay the response stream against the expected event list. *)
  let rd = Frame.reader ~max_frame:(1 lsl 24) (Frame.source_of_string output) in
  let remaining = ref expected in
  let events = ref 0 in
  let stop = ref false in
  while not !stop do
    match Frame.read rd with
    | Frame.Eof -> stop := true
    | Frame.Junk _ ->
        fail "response stream contains junk";
        stop := true
    | Frame.Payload p -> (
        incr events;
        match !remaining with
        | [] -> fail "unexpected extra response: %s" p
        | x :: rest ->
            check_event !events p x;
            remaining := rest)
  done;
  List.iter
    (fun x ->
      match x with
      | X_resp (id, _) -> fail "missing response for id %d" id
      | X_pong id -> fail "missing pong %d" id
      | X_bye -> fail "missing bye frame")
    !remaining;
  (* Counter accounting: every injected fault and every shed/degraded/
     doomed request shows up in serve.*. *)
  check_counter delta "serve.errors.protocol" protocol_faults;
  check_counter delta "serve.shed" counts#shed;
  check_counter delta "serve.errors.budget" counts#doomed;
  check_counter delta "serve.errors.request" counts#bad_request;
  check_counter delta "serve.errors.input" counts#bad_input;
  check_counter delta "serve.degraded" counts#degraded;
  check_counter delta "serve.requests" counts#requests;
  check_counter delta "serve.pings" counts#pings;
  check_counter delta "serve.errors.internal" 0;
  if counter delta "serve.cache.hits" = 0 then
    fail "expected some result-cache hits (formulas repeat)";
  (* Mid-stream client disconnect: the writer dies, the server must
     still drain quietly and exit 0. *)
  let writes = ref 0 in
  let dead_write _ =
    incr writes;
    if !writes > 3 then raise (Sys_error "Broken pipe")
  in
  let disconnect_code =
    (* The journal writer is closed: this re-run must not record. *)
    Serve.run { cfg with Serve.journal = None }
      ~source:(Frame.source_of_string input) ~write:dead_write
  in
  if disconnect_code <> 0 then
    fail "disconnected-client run exited %d, want 0" disconnect_code;
  Printf.printf
    "soak: %d requests (%d shed, %d degraded, %d doomed), %d pings, %d faults injected, %d responses checked, jobs=%d, %.2fs\n"
    counts#requests counts#shed counts#degraded counts#doomed counts#pings
    protocol_faults !events !jobs dt;
  if !failures > 0 then begin
    Printf.eprintf "soak: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "SOAK_OK"
