(* bench_diff BASELINE FRESH [--time-tol PCT] [--time-floor-ms MS]
               [--alloc-tol PCT] [--alloc-floor-w WORDS] [--allow NAME]...
               [--append-history DIR]
   bench_diff --write-baseline

   Compare a fresh metrics snapshot (pak --metrics-json / bench
   --metrics-json) against a committed baseline from bench/baselines/.
   Deterministic quantities — counters, span call counts, histogram
   sample totals — must match exactly (modulo --allow entries; a
   trailing '*' matches a prefix); wall times and gauges must agree
   within the relative tolerance, with an absolute floor under which
   noise drowns any signal. Per-span allocated words and gc.* gauges
   are compared under their own --alloc-tol / --alloc-floor-w pair:
   allocation is deterministic for a fixed compiler and workload, but
   drifts across OCaml releases and with --jobs, so the CI flags are
   looser than exact. Exits 0 when the snapshots agree, 1 with one
   readable line per violation, 2 on usage or unreadable input. CI
   runs this as the perf- and alloc-regression gate.

   --write-baseline regenerates both committed baselines in one
   command: it runs the sibling bench and CLI executables with the
   exact flags doc/PERFORMANCE.md documents, writes
   bench/baselines/{bench,sweep}.json relative to the current
   directory (run it from the repository root), and re-parses each
   file as a round-trip check.

   --append-history DIR archives the FRESH snapshot into DIR as
   <series>-NNNN.json, where <series> is the baseline's basename and
   NNNN the next zero-padded sequence number — the versioned-snapshot
   store tools/trend.exe fits per-metric trends over. Archival happens
   whether or not the diff passes (a run that trips the gate is
   exactly the one the trend should record). *)

module Obs = Pak_obs.Obs

let usage () =
  prerr_endline
    "usage: bench_diff BASELINE FRESH [--time-tol PCT] [--time-floor-ms MS] [--alloc-tol PCT]";
  prerr_endline "                  [--alloc-floor-w WORDS] [--allow NAME]... [--append-history DIR]";
  prerr_endline "       bench_diff --write-baseline";
  exit 2

(* Copy FRESH into the history store as the next <series>-NNNN.json. *)
let append_history ~baseline_file ~fresh_file dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "bench_diff: history directory %s not found\n" dir;
    exit 2
  end;
  let series =
    Filename.remove_extension (Filename.basename baseline_file)
  in
  let next =
    Array.fold_left
      (fun acc name ->
        match
          if String.length name > String.length series + 1
             && String.sub name 0 (String.length series) = series
             && name.[String.length series] = '-'
          then
            String.sub name
              (String.length series + 1)
              (String.length name - String.length series - 1)
            |> Filename.remove_extension |> int_of_string_opt
          else None
        with
        | Some n -> max acc n
        | None -> acc)
      0
      (Sys.readdir dir)
    + 1
  in
  let dst = Filename.concat dir (Printf.sprintf "%s-%04d.json" series next) in
  let body = In_channel.with_open_bin fresh_file In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc body);
  Printf.printf "bench_diff: archived %s as %s\n" fresh_file dst

(* The two baseline commands of doc/PERFORMANCE.md, run against the
   executables built next to this one so the snapshots always reflect
   the current build. *)
let write_baseline () =
  let dir = Filename.dirname Sys.executable_name in
  let sibling parts = List.fold_left Filename.concat dir parts in
  let bench_exe = sibling [ Filename.parent_dir_name; "bench"; "main.exe" ] in
  let cli_exe = sibling [ Filename.parent_dir_name; "bin"; "pak_cli.exe" ] in
  List.iter
    (fun exe ->
      if not (Sys.file_exists exe) then begin
        Printf.eprintf "bench_diff: %s not built — run `dune build` first\n" exe;
        exit 2
      end)
    [ bench_exe; cli_exe ];
  let out_dir = Filename.concat "bench" "baselines" in
  if not (Sys.file_exists out_dir && Sys.is_directory out_dir) then begin
    Printf.eprintf "bench_diff: %s/ not found — run from the repository root\n" out_dir;
    exit 2
  end;
  let run cmd =
    print_endline cmd;
    match Sys.command cmd with
    | 0 -> ()
    | code ->
      Printf.eprintf "bench_diff: baseline command failed with exit %d\n" code;
      exit 1
  in
  run
    (Printf.sprintf "%s --no-timing --metrics-json %s" (Filename.quote bench_exe)
       (Filename.quote (Filename.concat out_dir "bench.json")));
  run
    (Printf.sprintf "%s sweep --count 20 --jobs 1 --metrics-json %s"
       (Filename.quote cli_exe)
       (Filename.quote (Filename.concat out_dir "sweep.json")));
  List.iter
    (fun name ->
      let file = Filename.concat out_dir name in
      match Obs.Snapshot.of_file file with
      | Ok s ->
        Printf.printf "bench_diff: wrote %s (schema %d, %d counters, %d histograms)\n" file
          s.Obs.Snapshot.version
          (List.length s.Obs.Snapshot.counters)
          (List.length s.Obs.Snapshot.histograms)
      | Error msg ->
        Printf.eprintf "bench_diff: %s does not parse back: %s\n" file msg;
        exit 1)
    [ "bench.json"; "sweep.json" ]

let () =
  if Array.to_list Sys.argv |> List.tl = [ "--write-baseline" ] then begin
    write_baseline ();
    exit 0
  end;
  let files = ref [] in
  let cfg = ref Obs.Diff.default in
  let history = ref None in
  let rec parse = function
    | [] -> ()
    | "--append-history" :: dir :: rest ->
      history := Some dir;
      parse rest
    | "--time-tol" :: v :: rest ->
      (match float_of_string_opt v with
       | Some pct when pct >= 0. ->
         cfg := { !cfg with Obs.Diff.time_tol = pct /. 100. };
         parse rest
       | _ -> usage ())
    | "--time-floor-ms" :: v :: rest ->
      (match float_of_string_opt v with
       | Some ms when ms >= 0. ->
         cfg := { !cfg with Obs.Diff.time_floor = ms /. 1e3 };
         parse rest
       | _ -> usage ())
    | "--alloc-tol" :: v :: rest ->
      (match float_of_string_opt v with
       | Some pct when pct >= 0. ->
         cfg := { !cfg with Obs.Diff.alloc_tol = pct /. 100. };
         parse rest
       | _ -> usage ())
    | "--alloc-floor-w" :: v :: rest ->
      (match float_of_string_opt v with
       | Some w when w >= 0. ->
         cfg := { !cfg with Obs.Diff.alloc_floor = w };
         parse rest
       | _ -> usage ())
    | "--allow" :: name :: rest ->
      cfg := { !cfg with Obs.Diff.allow = name :: !cfg.Obs.Diff.allow };
      parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | file :: rest ->
      files := file :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline_file; fresh_file ] ->
    let load role file =
      match Obs.Snapshot.of_file file with
      | Ok s -> s
      | Error msg ->
        Printf.eprintf "bench_diff: cannot read %s snapshot: %s\n" role msg;
        exit 2
    in
    let baseline = load "baseline" baseline_file in
    let fresh = load "fresh" fresh_file in
    (match !history with
     | Some dir -> append_history ~baseline_file ~fresh_file dir
     | None -> ());
    (match Obs.Diff.diff !cfg ~baseline ~fresh with
     | [] ->
       Printf.printf "bench_diff: %s vs %s: OK (%d counters, %d histograms checked)\n"
         fresh_file baseline_file
         (List.length baseline.Obs.Snapshot.counters)
         (List.length baseline.Obs.Snapshot.histograms)
     | violations ->
       Printf.eprintf "bench_diff: %s regressed against %s:\n" fresh_file baseline_file;
       List.iter (fun v -> Printf.eprintf "  %s\n" v) violations;
       Printf.eprintf "%d violation(s). If the change is intentional, refresh the baseline\n"
         (List.length violations);
       Printf.eprintf "(see doc/PERFORMANCE.md, \"Refreshing bench/baselines\").\n";
       exit 1)
  | _ -> usage ()
