(* bench_diff BASELINE FRESH [--time-tol PCT] [--time-floor-ms MS]
               [--allow NAME]...

   Compare a fresh metrics snapshot (pak --metrics-json / bench
   --metrics-json) against a committed baseline from bench/baselines/.
   Deterministic quantities — counters, span call counts, histogram
   sample totals — must match exactly (modulo --allow entries; a
   trailing '*' matches a prefix); wall times and gauges must agree
   within the relative tolerance, with an absolute floor under which
   noise drowns any signal. Exits 0 when the snapshots agree, 1 with
   one readable line per violation, 2 on usage or unreadable input.
   CI runs this as the perf-regression gate. *)

module Obs = Pak_obs.Obs

let usage () =
  prerr_endline
    "usage: bench_diff BASELINE FRESH [--time-tol PCT] [--time-floor-ms MS] [--allow NAME]...";
  exit 2

let () =
  let files = ref [] in
  let cfg = ref Obs.Diff.default in
  let rec parse = function
    | [] -> ()
    | "--time-tol" :: v :: rest ->
      (match float_of_string_opt v with
       | Some pct when pct >= 0. ->
         cfg := { !cfg with Obs.Diff.time_tol = pct /. 100. };
         parse rest
       | _ -> usage ())
    | "--time-floor-ms" :: v :: rest ->
      (match float_of_string_opt v with
       | Some ms when ms >= 0. ->
         cfg := { !cfg with Obs.Diff.time_floor = ms /. 1e3 };
         parse rest
       | _ -> usage ())
    | "--allow" :: name :: rest ->
      cfg := { !cfg with Obs.Diff.allow = name :: !cfg.Obs.Diff.allow };
      parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | file :: rest ->
      files := file :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline_file; fresh_file ] ->
    let load role file =
      match Obs.Snapshot.of_file file with
      | Ok s -> s
      | Error msg ->
        Printf.eprintf "bench_diff: cannot read %s snapshot: %s\n" role msg;
        exit 2
    in
    let baseline = load "baseline" baseline_file in
    let fresh = load "fresh" fresh_file in
    (match Obs.Diff.diff !cfg ~baseline ~fresh with
     | [] ->
       Printf.printf "bench_diff: %s vs %s: OK (%d counters, %d histograms checked)\n"
         fresh_file baseline_file
         (List.length baseline.Obs.Snapshot.counters)
         (List.length baseline.Obs.Snapshot.histograms)
     | violations ->
       Printf.eprintf "bench_diff: %s regressed against %s:\n" fresh_file baseline_file;
       List.iter (fun v -> Printf.eprintf "  %s\n" v) violations;
       Printf.eprintf "%d violation(s). If the change is intentional, refresh the baseline\n"
         (List.length violations);
       Printf.eprintf "(see doc/PERFORMANCE.md, \"Refreshing bench/baselines\").\n";
       exit 1)
  | _ -> usage ()
