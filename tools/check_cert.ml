(* check_cert SYSTEM.pps CERT.json — independently re-verify a witness
   certificate emitted by `pak explain --json` against the system it
   certifies. The checker shares no code with the evaluator: it decodes
   the JSON with the zero-dependency reader and re-derives every point
   set, conditioning cell, rational measure and fixpoint approximant
   from the pps document alone. CERT.json may be "-" to read stdin, so
   `pak explain FILE --formula F --json | check_cert FILE -` is the CI
   smoke pipeline.

   Exits 0 when the certificate verifies, 1 when it is rejected (the
   precise violation is printed), 2 on usage errors, 3 on unreadable or
   unparsable inputs. *)

module Cert = Pak_cert.Cert
module Tree_io = Pak_pps.Tree_io
module Semantics = Pak_logic.Semantics
module Error = Pak_guard.Error

let read_file path =
  if path = "-" then In_channel.input_all stdin
  else In_channel.with_open_bin path In_channel.input_all

let () =
  let system_file, cert_file =
    match Sys.argv with
    | [| _; system_file; cert_file |] -> (system_file, cert_file)
    | _ ->
      prerr_endline "usage: check_cert SYSTEM.pps CERT.json   (CERT.json may be -)";
      exit 2
  in
  let doc =
    try read_file system_file
    with Sys_error msg ->
      Printf.eprintf "check_cert: %s\n" msg;
      exit 3
  in
  let tree =
    match Tree_io.of_string_result doc with
    | Ok tree -> tree
    | Error e ->
      Printf.eprintf "check_cert: %s: %s\n" system_file (Error.to_string e);
      exit 3
  in
  let cert_text =
    try read_file cert_file
    with Sys_error msg ->
      Printf.eprintf "check_cert: %s\n" msg;
      exit 3
  in
  let cert =
    match Cert.of_json_string cert_text with
    | Ok cert -> cert
    | Error msg ->
      Printf.eprintf "check_cert: %s: %s\n" cert_file msg;
      exit 3
  in
  match Cert.check ~valuation:Semantics.generic_valuation tree cert with
  | Ok () ->
    Printf.printf "%s: certificate verified (%d nodes, root holds at %d of %d points)\n"
      cert_file (Cert.size cert)
      (List.length cert.Cert.root.Cert.points)
      cert.Cert.n_points
  | Error v ->
    Printf.eprintf "check_cert: REJECTED: %s\n" (Cert.violation_to_string v);
    exit 1
