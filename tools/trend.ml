(* trend DIR [--last K] [--threshold-pct PCT] [--strict]

   Bench-trend analyzer over a directory of versioned metrics
   snapshots named <series>-NNNN.json (the store bench_diff
   --append-history maintains, seeded from bench/baselines/). Where
   bench_diff compares one pair of runs under a tolerance, trend looks
   at the trajectory: for every metric of every series it fits a
   least-squares line over the last K runs and flags *sustained*
   movement — a relative drift beyond the threshold in which most
   consecutive steps move the same way. A 3%-per-PR slowdown passes
   every pairwise gate with a 5% tolerance; after four PRs the trend
   is 12% and this tool is the one that notices.

   Tracked per snapshot: counters, gauges, histogram sample totals and
   top-level span total seconds. Increase is treated as regression
   (more work, more memory, more time), decrease as improvement; both
   are reported, only regressions affect --strict.

   Exit codes: 0 on a clean report (or any report without --strict),
   1 with --strict when a sustained regression is found, 2 on usage or
   an unreadable store. CI runs this as a non-blocking report step. *)

module Obs = Pak_obs.Obs

let usage () =
  prerr_endline "usage: trend DIR [--last K] [--threshold-pct PCT] [--strict]";
  exit 2

(* <series>-NNNN.json -> Some (series, seq) *)
let parse_name name =
  if Filename.check_suffix name ".json" then
    let stem = Filename.remove_extension name in
    match String.rindex_opt stem '-' with
    | Some i when i > 0 && i < String.length stem - 1 -> (
        let series = String.sub stem 0 i in
        let seq = String.sub stem (i + 1) (String.length stem - i - 1) in
        match int_of_string_opt seq with
        | Some n -> Some (series, n)
        | None -> None)
    | _ -> None
  else None

(* One flat (metric, value) view of a snapshot. *)
let metrics_of (s : Obs.Snapshot.t) =
  let rows = ref [] in
  List.iter
    (fun (n, v) -> rows := ("counter " ^ n, float_of_int v) :: !rows)
    s.Obs.Snapshot.counters;
  List.iter (fun (n, v) -> rows := ("gauge " ^ n, v) :: !rows) s.Obs.Snapshot.gauges;
  List.iter
    (fun (n, counts) ->
      rows := ("hist-total " ^ n, float_of_int (Obs.total_count counts)) :: !rows)
    s.Obs.Snapshot.histograms;
  List.iter
    (fun (node : Obs.Snapshot.node) ->
      rows := ("span-total-s " ^ node.Obs.Snapshot.name, node.Obs.Snapshot.total_s) :: !rows)
    s.Obs.Snapshot.spans;
  List.rev !rows

type verdict = Regression | Improvement

type finding = {
  f_series : string;
  f_metric : string;
  f_verdict : verdict;
  f_first : float;
  f_last : float;
  f_drift : float;  (* relative, signed *)
  f_slope : float;  (* least-squares, per run *)
  f_points : int;
}

(* Sustained movement over [vs] (chronological): relative drift beyond
   [threshold] with a majority of consecutive steps in the drift's
   direction. Needs >= 3 points — two runs are a pair, not a trend. *)
let classify ~threshold vs =
  let n = Array.length vs in
  if n < 3 then None
  else begin
    let first = vs.(0) and last = vs.(n - 1) in
    let base = max (abs_float first) 1e-9 in
    let drift = (last -. first) /. base in
    let ups = ref 0 and downs = ref 0 in
    for i = 1 to n - 1 do
      if vs.(i) > vs.(i - 1) then incr ups
      else if vs.(i) < vs.(i - 1) then incr downs
    done;
    (* least squares on (0..n-1, vs) *)
    let nf = float_of_int n in
    let sx = nf *. (nf -. 1.) /. 2. in
    let sxx = nf *. (nf -. 1.) *. ((2. *. nf) -. 1.) /. 6. in
    let sy = Array.fold_left ( +. ) 0. vs in
    let sxy = ref 0. in
    Array.iteri (fun i v -> sxy := !sxy +. (float_of_int i *. v)) vs;
    let denom = (nf *. sxx) -. (sx *. sx) in
    let slope = if denom = 0. then 0. else ((nf *. !sxy) -. (sx *. sy)) /. denom in
    if drift > threshold && !ups > !downs then Some (Regression, drift, slope)
    else if drift < -.threshold && !downs > !ups then
      Some (Improvement, drift, slope)
    else None
  end

let () =
  let dir = ref None in
  let last = ref 8 in
  let threshold_pct = ref 10. in
  let strict = ref false in
  let rec parse = function
    | [] -> ()
    | "--last" :: v :: rest -> (
        match int_of_string_opt v with
        | Some k when k >= 3 ->
          last := k;
          parse rest
        | _ ->
          prerr_endline "trend: --last expects an integer >= 3";
          exit 2)
    | "--threshold-pct" :: v :: rest -> (
        match float_of_string_opt v with
        | Some p when p > 0. ->
          threshold_pct := p;
          parse rest
        | _ ->
          prerr_endline "trend: --threshold-pct expects a positive number";
          exit 2)
    | "--strict" :: rest ->
      strict := true;
      parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | arg :: rest ->
      (match !dir with None -> dir := Some arg | Some _ -> usage ());
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dir = match !dir with Some d -> d | None -> usage () in
  (* All three probes can raise Sys_error (permission, TOCTOU races):
     a missing or unreadable history directory is a friendly exit 2,
     never an uncaught exception. *)
  let listing =
    match
      if Sys.file_exists dir && Sys.is_directory dir then Some (Sys.readdir dir)
      else None
    with
    | Some names -> names
    | None | (exception Sys_error _) ->
      Printf.eprintf "trend: %s is not a readable directory\n" dir;
      exit 2
  in
  let by_series = Hashtbl.create 4 in
  Array.iter
    (fun name ->
      match parse_name name with
      | Some (series, seq) ->
        let prev = Option.value (Hashtbl.find_opt by_series series) ~default:[] in
        Hashtbl.replace by_series series ((seq, Filename.concat dir name) :: prev)
      | None -> ())
    listing;
  if Hashtbl.length by_series = 0 then begin
    Printf.eprintf "trend: no <series>-NNNN.json snapshots in %s\n" dir;
    exit 2
  end;
  let threshold = !threshold_pct /. 100. in
  let findings = ref [] in
  let series_names =
    Hashtbl.fold (fun k _ acc -> k :: acc) by_series [] |> List.sort compare
  in
  List.iter
    (fun series ->
      let runs =
        Hashtbl.find by_series series
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let runs =
        let n = List.length runs in
        if n > !last then List.filteri (fun i _ -> i >= n - !last) runs else runs
      in
      let snaps =
        List.filter_map
          (fun (seq, path) ->
            match Obs.Snapshot.of_file path with
            | Ok s -> Some (seq, metrics_of s)
            | Error msg ->
              Printf.eprintf "trend: skipping %s: %s\n" path msg;
              None)
          runs
      in
      Printf.printf "%s: %d run(s)" series (List.length snaps);
      (match (snaps, List.rev snaps) with
       | (lo, _) :: _, (hi, _) :: _ -> Printf.printf " [%04d..%04d]" lo hi
       | _ -> ());
      print_newline ();
      if List.length snaps >= 3 then begin
        (* Metrics present in every run of the window: a metric that
           appears or disappears mid-window has no single trajectory. *)
        let names =
          match snaps with
          | (_, first) :: rest ->
            List.filter
              (fun (n, _) ->
                List.for_all (fun (_, ms) -> List.mem_assoc n ms) rest)
              first
            |> List.map fst
          | [] -> []
        in
        List.iter
          (fun metric ->
            let vs =
              snaps
              |> List.map (fun (_, ms) -> List.assoc metric ms)
              |> Array.of_list
            in
            match classify ~threshold vs with
            | None -> ()
            | Some (verdict, drift, slope) ->
              findings :=
                {
                  f_series = series;
                  f_metric = metric;
                  f_verdict = verdict;
                  f_first = vs.(0);
                  f_last = vs.(Array.length vs - 1);
                  f_drift = drift;
                  f_slope = slope;
                  f_points = Array.length vs;
                }
                :: !findings)
          names
      end)
    series_names;
  let findings = List.rev !findings in
  let regressions =
    List.filter (fun f -> f.f_verdict = Regression) findings
  in
  let improvements =
    List.filter (fun f -> f.f_verdict = Improvement) findings
  in
  let print_finding f =
    Printf.printf "  %-10s %s %s: %g -> %g (%+.1f%% over %d runs, slope %+g/run)\n"
      (match f.f_verdict with
       | Regression -> "REGRESSION"
       | Improvement -> "improved")
      f.f_series f.f_metric f.f_first f.f_last (100. *. f.f_drift) f.f_points
      f.f_slope
  in
  if findings = [] then
    Printf.printf "trend: no sustained movement beyond %.1f%% over the last %d run(s)\n"
      !threshold_pct !last
  else begin
    Printf.printf "trend: %d sustained regression(s), %d sustained improvement(s):\n"
      (List.length regressions) (List.length improvements);
    List.iter print_finding regressions;
    List.iter print_finding improvements
  end;
  if !strict && regressions <> [] then exit 1
