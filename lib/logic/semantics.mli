(** Model checking of {!Formula.t} over a pps.

    A formula is evaluated to a {!Pak_pps.Fact.t} — its set of
    satisfying points — given a valuation interpreting atoms at global
    states. Knowledge [K_i] quantifies over the points the agent cannot
    distinguish (same local state, hence by synchrony the same time);
    graded belief [B_i^{⋈q}] compares the agent's posterior degree of
    belief against [q]; the group fixpoints [C_G]/[CB_G^q] are computed
    by finite iteration, which terminates because the lattice of point
    sets is finite. *)

open Pak_pps

type valuation = string -> Gstate.t -> bool
(** [valuation atom state] decides the atom at a global state.
    Unknown atoms should raise or return [false] consistently. *)

val generic_valuation : valuation
(** The label-testing valuation shared by the CLI and the provenance
    layer: atom ["a<i>_<label>"] holds iff agent [i]'s current
    local-state label is [label] (any agent count); every other atom is
    false. *)

val eval : Tree.t -> valuation:valuation -> Formula.t -> Fact.t
(** Evaluate a formula to the fact (set of points) where it holds, by
    structural recursion with a formula-keyed memo (the {e recursive}
    engine). Subformulas are memoized, so shared structure is
    evaluated once. *)

val eval_vec : ?pool:Pak_par.Pool.t -> Tree.t -> valuation:valuation -> Formula.t -> Fact.t
(** The {e vectorized} engine: build the {!Closure} of the formula
    once, then evaluate bottom-up with one packed truth-vector
    ({!Pak_pps.Bitset.t} over dense point indices) per closure entry —
    connectives are bulk bitset operations, [K_i]/[E_G] and
    [B_i^{⋈q}]/[EB_G^q] are per-indistinguishability-cell sweeps
    (sharded on [pool] when given), and the [C_G]/[CB_G^q] fixpoints
    iterate whole vectors. Extensionally equal to {!eval} — same fact,
    same raised errors — and bumps [semantics.memo_hits]/[_misses] and
    the [semantics.gfp_iters*] counters identically (one miss per
    closure entry, one hit per hash-consed duplicate, one iteration
    per fixpoint step); the vector work itself is profiled by the
    [closure.*], [eval_vec.*] and [bitset.*] counters and the
    [semantics.eval_vec(.op)] spans. Charges the points budget one
    whole vector per entry and per fixpoint equality test.
    See [doc/EVALUATION.md] for the pipeline spec. *)

(** {1 Engine selection}

    Front ends choose the engine once (the [--engine] flag); library
    callers that want the process-wide selection go through
    {!eval_auto}. Calling {!eval} or {!eval_vec} directly always uses
    that specific engine. *)

type engine = Recursive | Vectorized

val engine_name : engine -> string
(** ["recursive"] / ["vectorized"] — the [--engine] flag's values. *)

val engine_of_string : string -> engine option

val set_engine : engine -> unit
(** Set the process-wide engine used by {!eval_auto}. The default is
    [Vectorized]. The selection is stored atomically, so setting it
    once at startup and reading from pool domains is race-free. *)

val current_engine : unit -> engine

val eval_auto : ?pool:Pak_par.Pool.t -> Tree.t -> valuation:valuation -> Formula.t -> Fact.t
(** {!eval} or {!eval_vec} according to {!current_engine}. [pool] is
    used only by the vectorized engine (cell sweeps); the recursive
    engine ignores it. *)

(** {1 Evaluation primitives}

    The building blocks [eval] combines, exposed so the provenance
    layer ([Pak_cert]) can certify with {e exactly} the evaluator's
    semantics rather than a reimplementation. *)

val satisfies_cmp : Formula.cmp -> Pak_rational.Q.t -> Pak_rational.Q.t -> bool
(** [satisfies_cmp cmp degree threshold] is [degree ⋈ threshold]. *)

val knows_fact : Tree.t -> agent:int -> Fact.t -> Fact.t
(** The fact [K_i ϕ] given the fact for ϕ: true at a point iff ϕ holds
    at every run of the agent's indistinguishability cell there. *)

val believes_fact :
  Tree.t ->
  agent:int ->
  cmp:Formula.cmp ->
  threshold:Pak_rational.Q.t ->
  Fact.t ->
  Fact.t
(** The fact [B_i^{⋈q} ϕ] given the fact for ϕ: true at a point iff the
    agent's degree of belief ({!Pak_pps.Belief.degree_at_lstate}) at
    its local state compares as required against the threshold. *)

val sat : Tree.t -> valuation:valuation -> Formula.t -> run:int -> time:int -> bool
(** [(T, r, t) ⊨ ϕ]. *)

val valid : Tree.t -> valuation:valuation -> Formula.t -> bool
(** True at every point of the system. *)

val valid_initially : Tree.t -> valuation:valuation -> Formula.t -> bool
(** True at time 0 of every run. *)

val probability : Tree.t -> valuation:valuation -> Formula.t -> Pak_rational.Q.t
(** [µ_T] of the runs whose time-0 point satisfies the formula. For
    formulas whose fact is a fact about runs this is the probability of
    the formula; exposed for reporting. *)
