(** Parser for the concrete formula syntax produced by
    {!Formula.to_string}.

    Grammar (usual precedences, tightest first):
    {v
    unary   ::= '!' unary | 'K[i]' unary | 'B[i]⋈q' unary
              | 'E[i,j]' unary | 'C[i,j]' unary
              | 'EB[i,j]>=q' unary | 'CB[i,j]>=q' unary
              | 'F'|'G'|'X'|'P'|'H' unary | primary
    primary ::= 'true' | 'false' | 'does[i](act)' | atom | '(' formula ')'
    and     ::= unary ('&' unary)*
    or      ::= and ('|' and)*
    implies ::= or ('->' implies)?          (right associative)
    iff     ::= implies ('<->' iff)?        (right associative)
    v}
    where [⋈ ∈ {>=, >, <=, <, =}] and [q] is a rational ([3/4], [0.95],
    [1]). [K], [B], [E], [C], [EB], [CB], [F], [G], [X], [P], [H],
    [true], [false] and [does] are reserved words; atoms are other
    identifiers matching [\[A-Za-z_\]\[A-Za-z0-9_'\]*]. *)

val parse_result : string -> (Formula.t, Pak_guard.Error.t) result
(** The typed boundary for untrusted formula text: never raises.
    Returns [Error] with kind [Parse] on malformed input (including
    bad rational literals such as a zero denominator, and nesting
    deeper than an internal cap) and [Budget_exceeded] when an
    installed {!Pak_guard.Budget} runs out mid-parse. Messages include
    the offending byte offset. *)

exception Parse_error of string
(** Raised on malformed input, with a human-readable description
    including the offending position. Deprecated shim retained for
    source compatibility; prefer {!parse_result}. *)

val parse : string -> Formula.t
(** [parse s] is [parse_result s], unwrapped.
    @raise Parse_error on malformed input.
    @raise Pak_guard.Error.Error on budget exhaustion. *)
