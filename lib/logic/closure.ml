(* Subformula closure with deterministic bit positions. Bits are
   assigned by a left-to-right depth-first post-order walk, so the
   assignment is a pure function of the formula: children always get
   smaller bits than their parents, the first occurrence of a repeated
   subformula fixes its bit, and the root ends up last. Hash-consing
   uses structural equality on Formula.t — the same keying as the
   recursive evaluator's memo table, so the two engines agree on what
   counts as "one distinct subformula". *)

module Obs = Pak_obs.Obs

let c_builds = Obs.counter "closure.builds"
let c_entries = Obs.counter "closure.entries"

type entry = { bit : int; formula : Formula.t; children : int array }

type t = {
  root : int;
  table : entry array;
  index : (Formula.t, int) Hashtbl.t;
  duplicates : int;
}

let of_formula formula =
  Obs.span "closure.build" @@ fun () ->
  Obs.incr c_builds;
  let index : (Formula.t, int) Hashtbl.t = Hashtbl.create 64 in
  let rev_entries = ref [] in
  let count = ref 0 in
  let dups = ref 0 in
  let rec go (f : Formula.t) =
    match Hashtbl.find_opt index f with
    | Some bit ->
      incr dups;
      bit
    | None ->
      let children =
        match f with
        | True | False | Atom _ | Does _ -> [||]
        | Not g | Eventually g | Globally g | Next g | Once g | Historically g
        | Knows (_, g)
        | Believes (_, _, _, g)
        | EveryoneKnows (_, g)
        | CommonKnows (_, g)
        | EveryoneBelieves (_, _, g)
        | CommonBelief (_, _, g) ->
          [| go g |]
        | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
          (* Explicit lets: array-literal evaluation order is
             unspecified, and the left child must be visited first for
             the bit order to be deterministic. *)
          let ba = go a in
          let bb = go b in
          [| ba; bb |]
      in
      let bit = !count in
      incr count;
      Hashtbl.add index f bit;
      rev_entries := { bit; formula = f; children } :: !rev_entries;
      Obs.incr c_entries;
      bit
  in
  let root = go formula in
  { root; table = Array.of_list (List.rev !rev_entries); index; duplicates = !dups }

let size t = Array.length t.table
let root_bit t = t.root
let entries t = t.table

let entry t bit =
  if bit < 0 || bit >= Array.length t.table then
    invalid_arg (Printf.sprintf "Closure.entry: bit %d out of range" bit);
  t.table.(bit)

let bit_of t f = Hashtbl.find_opt t.index f
let duplicates t = t.duplicates

let render_entry buf e =
  Buffer.add_string buf (string_of_int e.bit);
  Buffer.add_char buf '|';
  Buffer.add_string buf (Formula.to_string e.formula);
  Buffer.add_char buf '|';
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int c))
    e.children;
  Buffer.add_char buf '\n'

let digest t =
  let buf = Buffer.create 256 in
  Array.iter (render_entry buf) t.table;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf fmt "@ ";
      Format.fprintf fmt "b%d <- [%s] %s" e.bit
        (String.concat "," (Array.to_list (Array.map string_of_int e.children)))
        (Formula.to_string e.formula))
    t.table;
  Format.fprintf fmt "@]"
