(** Subformula closure of a query formula, with deterministic bit
    positions — the front half of the vectorized evaluation pipeline
    (see [doc/EVALUATION.md]).

    The closure of a formula ϕ is the set of its distinct subformulas
    (hash-consed: structurally equal subformulas share one entry).
    Each entry is assigned a {e bit position} — a dense index into the
    truth-vector table used by {!Semantics.eval_vec}, where entry [b]'s
    packed vector holds the satisfying point set of its formula.

    Bit positions are assigned by a left-to-right depth-first
    post-order walk of ϕ: a subformula's children always receive
    smaller bits than the subformula itself, and the first occurrence
    of a repeated subformula fixes its bit. The assignment is a pure
    function of the formula — independent of hash-table layout, run
    count, or [--jobs] — so [digest] is byte-identical across runs
    (pinned by the closure-determinism test in [test/test_logic.ml]).

    Invariants, relied on by the evaluator and by {!Cert.certify}'s
    skeleton traversal:
    - [entries t] is sorted by bit: [(entries t).(b).bit = b];
    - children before parents: every child bit of entry [b] is [< b];
    - the root formula's entry is the last one:
      [root_bit t = size t - 1]. *)

type entry = {
  bit : int;  (** This entry's position in the truth-vector table. *)
  formula : Formula.t;  (** The subformula the bit stands for. *)
  children : int array;
      (** Bits of the direct subformulas, in syntactic (left-to-right)
          order; empty for leaves ([true]/[false]/atoms/[does]). *)
}

type t
(** A closure table. Immutable once built. *)

val of_formula : Formula.t -> t
(** Build the closure of a formula. One pass over the syntax tree;
    bumps the [closure.builds]/[closure.entries] counters and runs
    under a [closure.build] span. *)

val size : t -> int
(** Number of entries, i.e. distinct subformulas. *)

val root_bit : t -> int
(** Bit of the query formula itself (always [size t - 1]). *)

val entries : t -> entry array
(** All entries in bit order. Evaluating them left to right is a valid
    bottom-up schedule: children precede parents. Callers must not
    mutate the returned array. *)

val entry : t -> int -> entry
(** [entry t b] is the entry at bit [b].
    @raise Invalid_argument if [b] is out of range. *)

val bit_of : t -> Formula.t -> int option
(** The bit assigned to a (sub)formula, or [None] if it is not in the
    closure. *)

val duplicates : t -> int
(** Number of subformula {e occurrences} resolved by hash-consing
    during the build — occurrences minus distinct subformulas. Equals
    the recursive engine's [semantics.memo_hits] count for the same
    formula, which is how {!Semantics.eval_vec} keeps the memo
    counters engine-invariant. *)

val digest : t -> string
(** Hex digest of the full bit assignment (every entry's bit, rendered
    formula, and children bits). Two formulas have equal digests iff
    they produce identical closures; the serve front end uses this as
    the formula component of its result-cache key, so differently
    spelled but structurally identical queries share a cache slot. *)

val pp : Format.formatter -> t -> unit
(** One line per entry: [b<bit> <- [children] formula]. *)
