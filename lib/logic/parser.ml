open Pak_rational
module Error = Pak_guard.Error

exception Parse_error of string

type token =
  | TRUE
  | FALSE
  | IDENT of string
  | NUMBER of Q.t
  | INT of int
  | KNOWS      (* K *)
  | BELIEF     (* B *)
  | DOES
  | FUT | GLOB | NEXT | ONCE | HIST
  | EVERY | COMMON | EVERYB | COMMONB
  | LBRACKET | RBRACKET | LPAREN | RPAREN | COMMA
  | NOT | AND | OR | ARROW | IFF_TOK
  | CMP of Formula.cmp
  | EOF

let fail pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''
let is_digit c = c >= '0' && c <= '9'

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let push tok pos = tokens := (tok, pos) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit input.[!j] do incr j done;
      if !j < n && (input.[!j] = '/' || input.[!j] = '.') then begin
        incr j;
        if !j >= n || not (is_digit input.[!j]) then fail !j "digit expected after '/' or '.'";
        while !j < n && is_digit input.[!j] do incr j done
      end;
      let text = String.sub input !i (!j - !i) in
      i := !j;
      (match int_of_string_opt text with
       | Some k -> push (INT k) start
       | None -> push (NUMBER (Q.of_string text)) start)
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do incr j done;
      let text = String.sub input !i (!j - !i) in
      i := !j;
      let tok =
        match text with
        | "true" -> TRUE
        | "false" -> FALSE
        | "does" -> DOES
        | "K" -> KNOWS
        | "B" -> BELIEF
        | "F" -> FUT
        | "G" -> GLOB
        | "X" -> NEXT
        | "P" -> ONCE
        | "H" -> HIST
        | "E" -> EVERY
        | "C" -> COMMON
        | "EB" -> EVERYB
        | "CB" -> COMMONB
        | _ -> IDENT text
      in
      push tok start
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      let three = if !i + 2 < n then String.sub input !i 3 else "" in
      if three = "<->" then (push IFF_TOK start; i := !i + 3)
      else if two = "->" then (push ARROW start; i := !i + 2)
      else if two = ">=" then (push (CMP Formula.Geq) start; i := !i + 2)
      else if two = "<=" then (push (CMP Formula.Leq) start; i := !i + 2)
      else
        match c with
        | '!' -> push NOT start; incr i
        | '&' -> push AND start; incr i
        | '|' -> push OR start; incr i
        | '>' -> push (CMP Formula.Gt) start; incr i
        | '<' -> push (CMP Formula.Lt) start; incr i
        | '=' -> push (CMP Formula.Eq) start; incr i
        | '[' -> push LBRACKET start; incr i
        | ']' -> push RBRACKET start; incr i
        | '(' -> push LPAREN start; incr i
        | ')' -> push RPAREN start; incr i
        | ',' -> push COMMA start; incr i
        | _ -> fail start (Printf.sprintf "unexpected character %C" c)
    end
  done;
  push EOF n;
  List.rev !tokens

(* Recursive-descent parser over the token list, threaded through a
   mutable cursor. [depth] tracks the live recursion depth (entered
   minus exited frames): input is untrusted and recursion depth is
   input-controlled, so without the cap a deeply nested formula
   overflows the OCaml stack instead of failing with a typed error. *)
type state = { mutable toks : (token * int) list; mutable depth : int }

let max_depth = 5000

let peek st = match st.toks with [] -> (EOF, 0) | t :: _ -> t

let enter st =
  st.depth <- st.depth + 1;
  if st.depth > max_depth then
    let _, pos = peek st in
    fail pos (Printf.sprintf "formula nested deeper than %d" max_depth)

let leave st = st.depth <- st.depth - 1

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok msg =
  let got, pos = peek st in
  if got = tok then advance st else fail pos msg

let parse_int st =
  match peek st with
  | INT k, _ ->
    advance st;
    k
  | _, pos -> fail pos "agent index expected"

let parse_group st =
  expect st LBRACKET "'[' expected";
  let first = parse_int st in
  let rec rest acc =
    match peek st with
    | COMMA, _ ->
      advance st;
      rest (parse_int st :: acc)
    | _ -> List.rev acc
  in
  let grp = rest [ first ] in
  expect st RBRACKET "']' expected";
  grp

let parse_number st =
  match peek st with
  | NUMBER q, _ ->
    advance st;
    q
  | INT k, _ ->
    advance st;
    Q.of_int k
  | _, pos -> fail pos "rational number expected"

let parse_cmp st =
  match peek st with
  | CMP c, _ ->
    advance st;
    c
  | _, pos -> fail pos "comparison operator expected"

let parse_geq_number st =
  let _, pos = peek st in
  match parse_cmp st with
  | Formula.Geq -> parse_number st
  | _ -> fail pos "'>=' expected for group belief"

let rec parse_unary st : Formula.t =
  enter st;
  let f = parse_unary_body st in
  leave st;
  f

and parse_unary_body st : Formula.t =
  match peek st with
  | NOT, _ ->
    advance st;
    Formula.Not (parse_unary st)
  | FUT, _ ->
    advance st;
    Formula.Eventually (parse_unary st)
  | GLOB, _ ->
    advance st;
    Formula.Globally (parse_unary st)
  | NEXT, _ ->
    advance st;
    Formula.Next (parse_unary st)
  | ONCE, _ ->
    advance st;
    Formula.Once (parse_unary st)
  | HIST, _ ->
    advance st;
    Formula.Historically (parse_unary st)
  | KNOWS, _ ->
    advance st;
    expect st LBRACKET "'[' expected after K";
    let i = parse_int st in
    expect st RBRACKET "']' expected";
    Formula.Knows (i, parse_unary st)
  | BELIEF, _ ->
    advance st;
    expect st LBRACKET "'[' expected after B";
    let i = parse_int st in
    expect st RBRACKET "']' expected";
    let c = parse_cmp st in
    let q = parse_number st in
    Formula.Believes (i, c, q, parse_unary st)
  | EVERY, _ ->
    advance st;
    let grp = parse_group st in
    Formula.EveryoneKnows (grp, parse_unary st)
  | COMMON, _ ->
    advance st;
    let grp = parse_group st in
    Formula.CommonKnows (grp, parse_unary st)
  | EVERYB, _ ->
    advance st;
    let grp = parse_group st in
    let q = parse_geq_number st in
    Formula.EveryoneBelieves (grp, q, parse_unary st)
  | COMMONB, _ ->
    advance st;
    let grp = parse_group st in
    let q = parse_geq_number st in
    Formula.CommonBelief (grp, q, parse_unary st)
  | _ -> parse_primary st

and parse_primary st : Formula.t =
  match peek st with
  | TRUE, _ ->
    advance st;
    Formula.True
  | FALSE, _ ->
    advance st;
    Formula.False
  | IDENT s, _ ->
    advance st;
    Formula.Atom s
  | DOES, _ ->
    advance st;
    expect st LBRACKET "'[' expected after does";
    let i = parse_int st in
    expect st RBRACKET "']' expected";
    expect st LPAREN "'(' expected";
    let act =
      match peek st with
      | IDENT s, _ ->
        advance st;
        s
      | _, pos -> fail pos "action name expected"
    in
    expect st RPAREN "')' expected";
    Formula.Does (i, act)
  | LPAREN, _ ->
    advance st;
    let f = parse_formula st in
    expect st RPAREN "')' expected";
    f
  | _, pos -> fail pos "formula expected"

and parse_and st =
  let rec go acc =
    match peek st with
    | AND, _ ->
      advance st;
      go (Formula.And (acc, parse_unary st))
    | _ -> acc
  in
  go (parse_unary st)

and parse_or st =
  let rec go acc =
    match peek st with
    | OR, _ ->
      advance st;
      go (Formula.Or (acc, parse_and st))
    | _ -> acc
  in
  go (parse_and st)

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | ARROW, _ ->
    advance st;
    enter st;
    let rhs = parse_implies st in
    leave st;
    Formula.Implies (lhs, rhs)
  | _ -> lhs

and parse_formula st =
  let lhs = parse_implies st in
  match peek st with
  | IFF_TOK, _ ->
    advance st;
    enter st;
    let rhs = parse_formula st in
    leave st;
    Formula.Iff (lhs, rhs)
  | _ -> lhs

let parse_exn input =
  let st = { toks = lex input; depth = 0 } in
  let f = parse_formula st in
  (match peek st with
   | EOF, _ -> ()
   | _, pos -> fail pos "trailing input after formula");
  f

(* The typed boundary for untrusted formula text: never raises.
   Rational-literal failures (e.g. the zero-denominator "B[0]>=1/0",
   which historically escaped the lexer as a division-by-zero) are
   parse errors here; budget exhaustion passes through typed. *)
let parse_result input =
  match parse_exn input with
  | f -> Ok f
  | exception Parse_error msg ->
    Result.Error (Error.with_context "Parser.parse" (Error.make Error.Parse msg))
  | exception Error.Division_by_zero ctx ->
    Result.Error
      (Error.with_context "Parser.parse" (Error.make Error.Parse ("invalid rational: " ^ ctx)))
  | exception Invalid_argument msg ->
    Result.Error
      (Error.with_context "Parser.parse" (Error.make Error.Parse ("invalid literal: " ^ msg)))
  | exception Error.Error e -> Result.Error (Error.with_context "Parser.parse" e)
  | exception Stack_overflow ->
    Result.Error
      (Error.with_context "Parser.parse"
         (Error.make Error.Budget_exceeded "stack overflow (formula nested too deeply)"))

(* Deprecated shim: all parse-kind failures surface as [Parse_error];
   budget exhaustion propagates as the typed error. *)
let parse input =
  match parse_result input with
  | Ok f -> f
  | Result.Error ({ Error.kind = Error.Budget_exceeded; _ } as e) -> raise (Error.Error e)
  | Result.Error e -> raise (Parse_error e.Error.msg)
