open Pak_rational
open Pak_pps

module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget

let c_memo_hits = Obs.counter "semantics.memo_hits"
let c_memo_misses = Obs.counter "semantics.memo_misses"
let c_gfp_iters = Obs.counter "semantics.gfp_iters"
let c_gfp_iters_ck = Obs.counter "semantics.gfp_iters.common_knowledge"
let c_gfp_iters_cb = Obs.counter "semantics.gfp_iters.common_belief"

(* Memo effectiveness as a sampled gauge: hits / (hits + misses).
   Deterministic — both inputs are exact work counters — so snapshot
   diffs can hold it to tolerance like any other gauge. Reported only
   once any lookup happened, so unrelated workloads snapshot clean. *)
let () =
  Obs.register_gauges (fun () ->
      let hits = Obs.value c_memo_hits and misses = Obs.value c_memo_misses in
      let total = hits + misses in
      if total = 0 then []
      else [ ("semantics.memo_hit_rate", float_of_int hits /. float_of_int total) ])

(* Span label per syntactic operator, so traces show where evaluation
   time goes by connective rather than by (unbounded) formula text. *)
let op_tag : Formula.t -> string = function
  | True -> "true"
  | False -> "false"
  | Atom _ -> "atom"
  | Not _ -> "not"
  | And _ -> "and"
  | Or _ -> "or"
  | Implies _ -> "implies"
  | Iff _ -> "iff"
  | Does _ -> "does"
  | Eventually _ -> "eventually"
  | Globally _ -> "globally"
  | Next _ -> "next"
  | Once _ -> "once"
  | Historically _ -> "historically"
  | Knows _ -> "K"
  | Believes _ -> "B"
  | EveryoneKnows _ -> "E"
  | CommonKnows _ -> "C"
  | EveryoneBelieves _ -> "Ep"
  | CommonBelief _ -> "CB"

type valuation = string -> Gstate.t -> bool

let generic_valuation atom g =
  (* generic atoms: "a<i>_<label>" tests agent i's label. The agent
     index is every digit up to the first underscore, so the valuation
     works for systems with any number of agents. *)
  match String.index_opt atom '_' with
  | Some sep when sep > 1 && atom.[0] = 'a' ->
    (match int_of_string_opt (String.sub atom 1 (sep - 1)) with
     | Some i when i >= 0 && i < Gstate.n_agents g ->
       Gstate.local g i = String.sub atom (sep + 1) (String.length atom - sep - 1)
     | _ -> false)
  | _ -> false

(* A fact from a per-local-state boolean: true at (r,t) iff the bit for
   the local state of [agent] at (r,t) is set. Used for K and B, whose
   truth value only depends on the agent's local state. *)
let fact_of_lstate_pred tree ~agent pred =
  let cache : (Tree.lkey, bool) Hashtbl.t = Hashtbl.create 32 in
  Fact.of_pred tree (fun ~run ~time ->
      let key = Tree.lkey tree ~agent ~run ~time in
      match Hashtbl.find_opt cache key with
      | Some v -> v
      | None ->
        let v = pred key in
        Hashtbl.add cache key v;
        v)

let knows_fact tree ~agent inner =
  fact_of_lstate_pred tree ~agent (fun key ->
      let time = Tree.lkey_time key in
      Bitset.for_all
        (fun run -> Fact.holds inner ~run ~time)
        (Tree.lstate_runs tree key))

let satisfies_cmp (c : Formula.cmp) degree threshold =
  match c with
  | Formula.Geq -> Q.geq degree threshold
  | Formula.Gt -> Q.gt degree threshold
  | Formula.Leq -> Q.leq degree threshold
  | Formula.Lt -> Q.lt degree threshold
  | Formula.Eq -> Q.equal degree threshold

let believes_fact tree ~agent ~cmp ~threshold inner =
  fact_of_lstate_pred tree ~agent (fun key ->
      satisfies_cmp cmp (Belief.degree_at_lstate inner key) threshold)

let check_group = function
  | [] -> invalid_arg "Semantics: empty agent group"
  | g -> g

(* Greatest fixpoint of a monotone (decreasing-from-top) operator on
   facts, by iteration; terminates because each step removes points
   from a finite set. Equality of facts is tested extensionally. *)
let facts_equal tree a b =
  Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
      acc && Fact.holds a ~run ~time = Fact.holds b ~run ~time)

let gfp tree ~counter step =
  let rec iterate x =
    Obs.incr c_gfp_iters;
    Obs.incr counter;
    (* Fuel + deadline: the fixpoint is the coarsest loop the budget
       must be able to interrupt (each step sweeps every point). *)
    Budget.charge_iters 1;
    let x' = step x in
    if facts_equal tree x x' then x else iterate x'
  in
  iterate (Fact.tt tree)

let eval tree ~valuation formula =
  let memo : (Formula.t, Fact.t) Hashtbl.t = Hashtbl.create 32 in
  let check_agent i =
    if i < 0 || i >= Tree.n_agents tree then
      invalid_arg (Printf.sprintf "Semantics.eval: agent %d out of range" i)
  in
  let rec go (f : Formula.t) =
    match Hashtbl.find_opt memo f with
    | Some fact ->
      Obs.incr c_memo_hits;
      fact
    | None ->
      Obs.incr c_memo_misses;
      let fact =
        Obs.span ("semantics.eval." ^ op_tag f) @@ fun () ->
        match f with
        | True -> Fact.tt tree
        | False -> Fact.ff tree
        | Atom a -> Fact.of_state_pred tree (valuation a)
        | Not g -> Fact.not_ (go g)
        | And (a, b) -> Fact.and_ (go a) (go b)
        | Or (a, b) -> Fact.or_ (go a) (go b)
        | Implies (a, b) -> Fact.implies (go a) (go b)
        | Iff (a, b) -> Fact.iff (go a) (go b)
        | Does (i, act) ->
          check_agent i;
          Fact.does tree ~agent:i ~act
        | Eventually g -> Fact.eventually (go g)
        | Globally g -> Fact.globally (go g)
        | Next g -> Fact.next (go g)
        | Once g -> Fact.once (go g)
        | Historically g -> Fact.historically (go g)
        | Knows (i, g) ->
          check_agent i;
          knows_fact tree ~agent:i (go g)
        | Believes (i, cmp, threshold, g) ->
          check_agent i;
          believes_fact tree ~agent:i ~cmp ~threshold (go g)
        | EveryoneKnows (grp, g) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = go g in
          Fact.conj tree (List.map (fun i -> knows_fact tree ~agent:i inner) grp)
        | CommonKnows (grp, g) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = go g in
          (* gfp X. E_G(inner ∧ X) *)
          gfp tree ~counter:c_gfp_iters_ck (fun x ->
              let body = Fact.and_ inner x in
              Fact.conj tree (List.map (fun i -> knows_fact tree ~agent:i body) grp))
        | EveryoneBelieves (grp, threshold, g) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = go g in
          Fact.conj tree
            (List.map
               (fun i -> believes_fact tree ~agent:i ~cmp:Formula.Geq ~threshold inner)
               grp)
        | CommonBelief (grp, threshold, g) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = go g in
          (* Monderer–Samet common p-belief as the greatest fixpoint
             X = E^p_G(inner) ∧ E^p_G(X): the largest "p-evident" event
             within everyone-p-believes-ϕ. *)
          let ep fact =
            Fact.conj tree
              (List.map
                 (fun i -> believes_fact tree ~agent:i ~cmp:Formula.Geq ~threshold fact)
                 grp)
          in
          let base = ep inner in
          gfp tree ~counter:c_gfp_iters_cb (fun x -> Fact.and_ base (ep x))
      in
      Hashtbl.add memo f fact;
      fact
  in
  Obs.span "semantics.eval" (fun () -> go formula)

let sat tree ~valuation formula ~run ~time =
  Fact.holds (eval tree ~valuation formula) ~run ~time

let valid tree ~valuation formula =
  let fact = eval tree ~valuation formula in
  Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
      acc && Fact.holds fact ~run ~time)

let valid_initially tree ~valuation formula =
  let fact = eval tree ~valuation formula in
  let ok = ref true in
  for run = 0 to Tree.n_runs tree - 1 do
    if not (Fact.holds fact ~run ~time:0) then ok := false
  done;
  !ok

let probability tree ~valuation formula =
  let fact = eval tree ~valuation formula in
  let ev = ref (Tree.empty_event tree) in
  for run = 0 to Tree.n_runs tree - 1 do
    if Fact.holds fact ~run ~time:0 then ev := Bitset.add !ev run
  done;
  Tree.measure tree !ev
