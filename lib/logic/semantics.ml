open Pak_rational
open Pak_pps

module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget

let c_memo_hits = Obs.counter "semantics.memo_hits"
let c_memo_misses = Obs.counter "semantics.memo_misses"
let c_gfp_iters = Obs.counter "semantics.gfp_iters"
let c_gfp_iters_ck = Obs.counter "semantics.gfp_iters.common_knowledge"
let c_gfp_iters_cb = Obs.counter "semantics.gfp_iters.common_belief"

(* Memo effectiveness as a sampled gauge: hits / (hits + misses).
   Deterministic — both inputs are exact work counters — so snapshot
   diffs can hold it to tolerance like any other gauge. Reported only
   once any lookup happened, so unrelated workloads snapshot clean. *)
let () =
  Obs.register_gauges (fun () ->
      let hits = Obs.value c_memo_hits and misses = Obs.value c_memo_misses in
      let total = hits + misses in
      if total = 0 then []
      else [ ("semantics.memo_hit_rate", float_of_int hits /. float_of_int total) ])

(* Span label per syntactic operator, so traces show where evaluation
   time goes by connective rather than by (unbounded) formula text. *)
let op_tag : Formula.t -> string = function
  | True -> "true"
  | False -> "false"
  | Atom _ -> "atom"
  | Not _ -> "not"
  | And _ -> "and"
  | Or _ -> "or"
  | Implies _ -> "implies"
  | Iff _ -> "iff"
  | Does _ -> "does"
  | Eventually _ -> "eventually"
  | Globally _ -> "globally"
  | Next _ -> "next"
  | Once _ -> "once"
  | Historically _ -> "historically"
  | Knows _ -> "K"
  | Believes _ -> "B"
  | EveryoneKnows _ -> "E"
  | CommonKnows _ -> "C"
  | EveryoneBelieves _ -> "Ep"
  | CommonBelief _ -> "CB"

type valuation = string -> Gstate.t -> bool

let generic_valuation atom g =
  (* generic atoms: "a<i>_<label>" tests agent i's label. The agent
     index is every digit up to the first underscore, so the valuation
     works for systems with any number of agents. *)
  match String.index_opt atom '_' with
  | Some sep when sep > 1 && atom.[0] = 'a' ->
    (match int_of_string_opt (String.sub atom 1 (sep - 1)) with
     | Some i when i >= 0 && i < Gstate.n_agents g ->
       Gstate.local g i = String.sub atom (sep + 1) (String.length atom - sep - 1)
     | _ -> false)
  | _ -> false

(* A fact from a per-local-state boolean: true at (r,t) iff the bit for
   the local state of [agent] at (r,t) is set. Used for K and B, whose
   truth value only depends on the agent's local state. *)
let fact_of_lstate_pred tree ~agent pred =
  let cache : (Tree.lkey, bool) Hashtbl.t = Hashtbl.create 32 in
  Fact.of_pred tree (fun ~run ~time ->
      let key = Tree.lkey tree ~agent ~run ~time in
      match Hashtbl.find_opt cache key with
      | Some v -> v
      | None ->
        let v = pred key in
        Hashtbl.add cache key v;
        v)

let knows_fact tree ~agent inner =
  fact_of_lstate_pred tree ~agent (fun key ->
      let time = Tree.lkey_time key in
      Bitset.for_all
        (fun run -> Fact.holds inner ~run ~time)
        (Tree.lstate_runs tree key))

let satisfies_cmp (c : Formula.cmp) degree threshold =
  match c with
  | Formula.Geq -> Q.geq degree threshold
  | Formula.Gt -> Q.gt degree threshold
  | Formula.Leq -> Q.leq degree threshold
  | Formula.Lt -> Q.lt degree threshold
  | Formula.Eq -> Q.equal degree threshold

let believes_fact tree ~agent ~cmp ~threshold inner =
  fact_of_lstate_pred tree ~agent (fun key ->
      satisfies_cmp cmp (Belief.degree_at_lstate inner key) threshold)

let check_group = function
  | [] -> invalid_arg "Semantics: empty agent group"
  | g -> g

(* Greatest fixpoint of a monotone (decreasing-from-top) operator on
   facts, by iteration; terminates because each step removes points
   from a finite set. Equality of facts is tested extensionally. *)
let facts_equal tree a b =
  Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
      acc && Fact.holds a ~run ~time = Fact.holds b ~run ~time)

let gfp tree ~counter step =
  let rec iterate x =
    Obs.incr c_gfp_iters;
    Obs.incr counter;
    (* Fuel + deadline: the fixpoint is the coarsest loop the budget
       must be able to interrupt (each step sweeps every point). *)
    Budget.charge_iters 1;
    let x' = step x in
    if facts_equal tree x x' then x else iterate x'
  in
  iterate (Fact.tt tree)

let eval tree ~valuation formula =
  let memo : (Formula.t, Fact.t) Hashtbl.t = Hashtbl.create 32 in
  let check_agent i =
    if i < 0 || i >= Tree.n_agents tree then
      invalid_arg (Printf.sprintf "Semantics.eval: agent %d out of range" i)
  in
  let rec go (f : Formula.t) =
    match Hashtbl.find_opt memo f with
    | Some fact ->
      Obs.incr c_memo_hits;
      fact
    | None ->
      Obs.incr c_memo_misses;
      let fact =
        Obs.span ("semantics.eval." ^ op_tag f) @@ fun () ->
        match f with
        | True -> Fact.tt tree
        | False -> Fact.ff tree
        | Atom a -> Fact.of_state_pred tree (valuation a)
        | Not g -> Fact.not_ (go g)
        | And (a, b) -> Fact.and_ (go a) (go b)
        | Or (a, b) -> Fact.or_ (go a) (go b)
        | Implies (a, b) -> Fact.implies (go a) (go b)
        | Iff (a, b) -> Fact.iff (go a) (go b)
        | Does (i, act) ->
          check_agent i;
          Fact.does tree ~agent:i ~act
        | Eventually g -> Fact.eventually (go g)
        | Globally g -> Fact.globally (go g)
        | Next g -> Fact.next (go g)
        | Once g -> Fact.once (go g)
        | Historically g -> Fact.historically (go g)
        | Knows (i, g) ->
          check_agent i;
          knows_fact tree ~agent:i (go g)
        | Believes (i, cmp, threshold, g) ->
          check_agent i;
          believes_fact tree ~agent:i ~cmp ~threshold (go g)
        | EveryoneKnows (grp, g) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = go g in
          Fact.conj tree (List.map (fun i -> knows_fact tree ~agent:i inner) grp)
        | CommonKnows (grp, g) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = go g in
          (* gfp X. E_G(inner ∧ X) *)
          gfp tree ~counter:c_gfp_iters_ck (fun x ->
              let body = Fact.and_ inner x in
              Fact.conj tree (List.map (fun i -> knows_fact tree ~agent:i body) grp))
        | EveryoneBelieves (grp, threshold, g) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = go g in
          Fact.conj tree
            (List.map
               (fun i -> believes_fact tree ~agent:i ~cmp:Formula.Geq ~threshold inner)
               grp)
        | CommonBelief (grp, threshold, g) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = go g in
          (* Monderer–Samet common p-belief as the greatest fixpoint
             X = E^p_G(inner) ∧ E^p_G(X): the largest "p-evident" event
             within everyone-p-believes-ϕ. *)
          let ep fact =
            Fact.conj tree
              (List.map
                 (fun i -> believes_fact tree ~agent:i ~cmp:Formula.Geq ~threshold fact)
                 grp)
          in
          let base = ep inner in
          gfp tree ~counter:c_gfp_iters_cb (fun x -> Fact.and_ base (ep x))
      in
      Hashtbl.add memo f fact;
      fact
  in
  Obs.span "semantics.eval" (fun () -> go formula)

(* ------------------------------------------------------------------ *)
(* Vectorized engine: closure table + packed truth vectors              *)
(* ------------------------------------------------------------------ *)

module Pool = Pak_par.Pool

let c_vec_evals = Obs.counter "eval_vec.evals"
let c_vec_entries = Obs.counter "eval_vec.entries"
let c_vec_cells = Obs.counter "eval_vec.cells"

(* One evaluation = one Closure.of_formula + one packed Bitset.t over
   point indices per closure entry, filled bottom-up (children first —
   the closure's bit order is a valid schedule). Point (r,t) gets the
   dense index offsets.(r) + t. Counter contract with the recursive
   engine: semantics.memo_misses = closure entries (one "miss" per
   distinct subformula), semantics.memo_hits = hash-consed duplicate
   occurrences, and the gfp iteration counters are bumped step-for-step
   identically — so the memo and fixpoint telemetry is engine-invariant
   while bitset.*/eval_vec.*/closure.* profile the vector work. *)
let eval_vec ?pool tree ~valuation formula =
  Obs.span "semantics.eval_vec" @@ fun () ->
  Obs.incr c_vec_evals;
  let clo = Closure.of_formula formula in
  let n_runs = Tree.n_runs tree in
  let offsets = Array.make (max 1 n_runs) 0 in
  let total = ref 0 in
  for r = 0 to n_runs - 1 do
    offsets.(r) <- !total;
    total := !total + Tree.run_length tree r
  done;
  let n = !total in
  let run_of = Array.make (max 1 n) 0 and time_of = Array.make (max 1 n) 0 in
  for r = 0 to n_runs - 1 do
    for t = 0 to Tree.run_length tree r - 1 do
      run_of.(offsets.(r) + t) <- r;
      time_of.(offsets.(r) + t) <- t
    done
  done;
  let check_agent i =
    if i < 0 || i >= Tree.n_agents tree then
      invalid_arg (Printf.sprintf "Semantics.eval: agent %d out of range" i)
  in
  (* Per-indistinguishability-cell sweeps (K/B and their group forms):
     each of the agent's local states is one independent cell, so the
     cell array shards on the pool when one is given. The pool
     re-installs the caller's budget scope in its workers, so charges
     made inside a cell count against the same budget at any job
     count; results are assembled in cell order, so the outcome is
     jobs-invariant. *)
  let shard cells f =
    match pool with
    | Some p when Array.length cells > 1 -> Pool.map p f cells
    | _ -> Array.map f cells
  in
  let cellwise ~agent holds_at =
    let cells = Array.of_list (Tree.lstates tree ~agent) in
    Obs.add c_vec_cells (Array.length cells);
    let holds = shard cells holds_at in
    let out = Array.make (max 1 n) false in
    Array.iteri
      (fun c key ->
        if holds.(c) then begin
          let time = Tree.lkey_time key in
          Bitset.iter
            (fun run -> out.(offsets.(run) + time) <- true)
            (Tree.lstate_runs tree key)
        end)
      cells;
    Bitset.init n (Array.get out)
  in
  let kvec ~agent inner =
    cellwise ~agent (fun key ->
        let time = Tree.lkey_time key in
        Bitset.for_all
          (fun run -> Bitset.mem inner (offsets.(run) + time))
          (Tree.lstate_runs tree key))
  in
  let bvec ~agent ~cmp ~threshold inner =
    cellwise ~agent (fun key ->
        let time = Tree.lkey_time key in
        let cell = Tree.lstate_runs tree key in
        (* [inner@ℓ] as an event, then the same conditional measure the
           recursive engine takes via Belief.degree_at_lstate. *)
        let sat =
          Bitset.init n_runs (fun run ->
              Bitset.mem cell run && Bitset.mem inner (offsets.(run) + time))
        in
        satisfies_cmp cmp (Tree.cond tree sat ~given:cell) threshold)
  in
  let inter_all = function
    | [] -> invalid_arg "Semantics: empty agent group"
    | v :: rest -> List.fold_left Bitset.inter v rest
  in
  let evec grp inner = inter_all (List.map (fun i -> kvec ~agent:i inner) grp) in
  let epvec grp threshold x =
    inter_all (List.map (fun i -> bvec ~agent:i ~cmp:Formula.Geq ~threshold x) grp)
  in
  (* Same counting discipline as [gfp]: one iteration = one step
     application, bumped before the step so an exhausted --max-iters
     budget trips identically; the whole-vector equality test charges
     the points [facts_equal] would have folded over. The approximant
     sequences of the two engines are extensionally equal (both start
     at ⊤ and apply pointwise-equal steps), so the iteration counts
     match exactly. *)
  let gfp_vec ~counter step =
    let rec iterate x =
      Obs.incr c_gfp_iters;
      Obs.incr counter;
      Budget.charge_iters 1;
      let x' = step x in
      Budget.charge_points n;
      if Bitset.equal x x' then x else iterate x'
    in
    iterate (Bitset.full n)
  in
  let per_run fill =
    let out = Array.make (max 1 n) false in
    for r = 0 to n_runs - 1 do
      fill r (Tree.run_length tree r) offsets.(r) out
    done;
    Bitset.init n (Array.get out)
  in
  let nvec = Array.make (Closure.size clo) (Bitset.create 0) in
  Array.iter
    (fun (e : Closure.entry) ->
      Obs.incr c_vec_entries;
      Obs.incr c_memo_misses;
      (* One whole-vector pass per entry. *)
      Budget.charge_points n;
      let v =
        Obs.span ("semantics.eval_vec." ^ op_tag e.formula) @@ fun () ->
        let child k = nvec.(e.children.(k)) in
        match e.formula with
        | True -> Bitset.full n
        | False -> Bitset.create n
        | Atom a ->
          (* Node-memoized like Fact.of_state_pred: points sharing a
             prefix query the valuation once. *)
          let cache : (int, bool) Hashtbl.t = Hashtbl.create 64 in
          Bitset.init n (fun i ->
              let node = Tree.run_node tree ~run:run_of.(i) ~time:time_of.(i) in
              match Hashtbl.find_opt cache node with
              | Some v -> v
              | None ->
                let v = valuation a (Tree.node_state tree node) in
                Hashtbl.add cache node v;
                v)
        | Not _ -> Bitset.complement (child 0)
        | And _ -> Bitset.inter (child 0) (child 1)
        | Or _ -> Bitset.union (child 0) (child 1)
        | Implies _ -> Bitset.union (Bitset.complement (child 0)) (child 1)
        | Iff _ -> Bitset.complement (Bitset.symdiff (child 0) (child 1))
        | Does (i, act) ->
          check_agent i;
          Bitset.init n (fun p ->
              Tree.action_at tree ~agent:i ~run:run_of.(p) ~time:time_of.(p) = Some act)
        | Eventually _ ->
          let c = child 0 in
          per_run (fun _ len off out ->
              let any = ref false in
              for t = 0 to len - 1 do
                if Bitset.mem c (off + t) then any := true
              done;
              if !any then for t = 0 to len - 1 do out.(off + t) <- true done)
        | Globally _ ->
          let c = child 0 in
          per_run (fun _ len off out ->
              let all = ref true in
              for t = 0 to len - 1 do
                if not (Bitset.mem c (off + t)) then all := false
              done;
              if !all then for t = 0 to len - 1 do out.(off + t) <- true done)
        | Next _ ->
          let c = child 0 in
          per_run (fun _ len off out ->
              for t = 0 to len - 2 do
                out.(off + t) <- Bitset.mem c (off + t + 1)
              done)
        | Once _ ->
          let c = child 0 in
          per_run (fun _ len off out ->
              let seen = ref false in
              for t = 0 to len - 1 do
                if Bitset.mem c (off + t) then seen := true;
                out.(off + t) <- !seen
              done)
        | Historically _ ->
          let c = child 0 in
          per_run (fun _ len off out ->
              let sofar = ref true in
              for t = 0 to len - 1 do
                if not (Bitset.mem c (off + t)) then sofar := false;
                out.(off + t) <- !sofar
              done)
        | Knows (i, _) ->
          check_agent i;
          kvec ~agent:i (child 0)
        | Believes (i, cmp, threshold, _) ->
          check_agent i;
          bvec ~agent:i ~cmp ~threshold (child 0)
        | EveryoneKnows (grp, _) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          evec grp (child 0)
        | CommonKnows (grp, _) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let inner = child 0 in
          gfp_vec ~counter:c_gfp_iters_ck (fun x -> evec grp (Bitset.inter inner x))
        | EveryoneBelieves (grp, threshold, _) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          epvec grp threshold (child 0)
        | CommonBelief (grp, threshold, _) ->
          let grp = check_group grp in
          List.iter check_agent grp;
          let base = epvec grp threshold (child 0) in
          gfp_vec ~counter:c_gfp_iters_cb (fun x -> Bitset.inter base (epvec grp threshold x))
      in
      nvec.(e.bit) <- v)
    (Closure.entries clo);
  Obs.add c_memo_hits (Closure.duplicates clo);
  let root = nvec.(Closure.root_bit clo) in
  Fact.of_pred tree (fun ~run ~time -> Bitset.mem root (offsets.(run) + time))

(* ------------------------------------------------------------------ *)
(* Engine selection                                                     *)
(* ------------------------------------------------------------------ *)

type engine = Recursive | Vectorized

let engine_name = function Recursive -> "recursive" | Vectorized -> "vectorized"

let engine_of_string = function
  | "recursive" -> Some Recursive
  | "vectorized" -> Some Vectorized
  | _ -> None

(* Atomic so front ends that set it once at startup and then evaluate
   from pool domains (serve) read it race-free. *)
let selected_engine = Atomic.make Vectorized
let set_engine e = Atomic.set selected_engine e
let current_engine () = Atomic.get selected_engine

let eval_auto ?pool tree ~valuation formula =
  match current_engine () with
  | Recursive -> eval tree ~valuation formula
  | Vectorized -> eval_vec ?pool tree ~valuation formula

let sat tree ~valuation formula ~run ~time =
  Fact.holds (eval tree ~valuation formula) ~run ~time

let valid tree ~valuation formula =
  let fact = eval tree ~valuation formula in
  Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
      acc && Fact.holds fact ~run ~time)

let valid_initially tree ~valuation formula =
  let fact = eval tree ~valuation formula in
  let ok = ref true in
  for run = 0 to Tree.n_runs tree - 1 do
    if not (Fact.holds fact ~run ~time:0) then ok := false
  done;
  !ok

let probability tree ~valuation formula =
  let fact = eval tree ~valuation formula in
  let ev = ref (Tree.empty_event tree) in
  for run = 0 to Tree.n_runs tree - 1 do
    if Fact.holds fact ~run ~time:0 then ev := Bitset.add !ev run
  done;
  Tree.measure tree !ev
