(** pak_par — a Domain-based worker pool with deterministic work
    chunking.

    The pool parallelizes the embarrassingly parallel fan-out paths of
    pak (theorem sweeps over generated system families, Monte-Carlo
    simulation, fuzzing) across OCaml 5 domains, while keeping every
    result {e bit-for-bit deterministic}:

    - {!map} assembles per-element results in input order, so its
      output never depends on the number of jobs or on scheduling;
    - {!map_reduce} folds chunks in index order; when [reduce] is
      associative with [init] as a neutral element, the result equals
      the sequential fold for every job count;
    - work is split into {e deterministic chunks} — chunk [c] of [n]
      items under [k] chunks is the index interval
      [\[c·n/k, (c+1)·n/k)], a pure function of [(n, k)]. Scheduling
      decides only {e which domain} runs a chunk, never what the chunk
      contains.

    The calling domain participates in every call (a pool created with
    [~jobs] uses [jobs - 1] worker domains plus the caller), so a pool
    of one job degrades to plain sequential execution with no domain
    spawned and no synchronization taken.

    Resource budgets compose: each pool call captures the caller's
    ambient {!Pak_guard.Budget} scope ({!Pak_guard.Budget.snapshot})
    and re-installs it inside every worker domain, so all domains
    charge the {e same} shared atomic fuel counters — one budget bounds
    the whole parallel computation, and exhaustion in any domain
    surfaces in the caller (see {!Pak_guard.Budget.under}).

    Exceptions raised by the mapped function are re-raised in the
    caller after all chunks have settled; when several chunks fail, the
    exception of the lowest-numbered chunk wins, which keeps failure
    deterministic too. *)

type t
(** A worker pool. Values of this type are safe to share: any domain
    may submit work, but a single {!map} / {!map_reduce} call must not
    be re-entered from inside its own mapped function (workers do not
    nest participation). *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains that wait for
    work. [jobs = 1] spawns nothing. A good default for [jobs] is
    [Domain.recommended_domain_count ()].

    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism degree the pool was created with (workers + the
    participating caller). *)

val close : t -> unit
(** Shut the worker domains down and join them. Idempotent. Calls in
    flight finish first; submitting after [close] raises
    [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and closes it
    afterwards, whether [f] returns or raises. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] is [Array.map f arr], computed across the pool's
    domains. Per-element results are assembled in input order: the
    output is identical for every job count, provided [f] itself is a
    function of its argument alone (the engines parallelized by pak —
    theorem checking, simulation blocks, fuzz probes — are). *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** [map_reduce pool ~map ~reduce ~init arr] maps every element and
    folds the results, chunk by chunk, combining chunk accumulators in
    chunk-index order. Each chunk folds
    [reduce (... (reduce init (map x_lo)) ...) (map x_hi)], and chunk
    results are folded left starting from [init] again — so the result
    equals [Array.fold_left (fun acc x -> reduce acc (map x)) init arr]
    for {e every} job count exactly when [reduce] is associative and
    [init] is a neutral element of it (integer/rational sums and
    maxima, report merges, list concatenation all qualify). *)
