(* Domain pool with deterministic chunking. Design notes:

   - Work arrives as "participation" tasks: a map call carves its input
     into nchunks deterministic index intervals and posts one
     participation closure per would-be helper; every participant
     (workers that picked the closure up, plus the caller) claims chunk
     indices from a shared atomic cursor until none remain. If all
     workers are busy with other calls the caller simply claims every
     chunk itself — calls never deadlock waiting for a worker.

   - Chunk CONTENTS are a pure function of (n, nchunks); scheduling
     only decides which domain runs a chunk. Results land in a
     per-chunk slot array and are assembled in chunk order, so output
     never depends on timing.

   - The caller's ambient Budget scope is captured once per call and
     re-installed inside each worker (Budget.under), so every domain
     charges the same shared fuel counters: one budget bounds the
     whole parallel computation.

   - A participation closure left in the queue after its call finished
     (all chunks claimed) finds the cursor exhausted and returns
     immediately; stale tasks are harmless. *)

module Budget = Pak_guard.Budget

type task = Participate of (unit -> unit) | Quit

type t = {
  n_jobs : int;
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.queue do
    Condition.wait pool.nonempty pool.lock
  done;
  let task = Queue.pop pool.queue in
  Mutex.unlock pool.lock;
  match task with
  | Quit -> ()
  | Participate f ->
    f ();
    worker_loop pool

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be at least 1";
  let pool =
    { n_jobs = jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.n_jobs

let post pool tasks =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool: closed"
  end;
  List.iter (fun t -> Queue.push t pool.queue) tasks;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock

let close pool =
  let workers =
    Mutex.protect pool.lock (fun () ->
        if pool.closed then []
        else begin
          pool.closed <- true;
          List.iter (fun _ -> Queue.push Quit pool.queue) pool.workers;
          Condition.broadcast pool.nonempty;
          let ws = pool.workers in
          pool.workers <- [];
          ws
        end)
  in
  List.iter Domain.join workers

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> close pool) (fun () -> f pool)

(* Run [run_chunk c] for every c in [0, nchunks) across the pool.
   Participation tasks never let an exception escape into the worker
   loop: failures are parked per chunk and re-raised — lowest chunk
   first, for determinism — in the caller once every chunk settled. *)
let dispatch pool nchunks run_chunk =
  if nchunks <= 1 then run_chunk 0
  else begin
    let snap = Budget.snapshot () in
    let errors = Array.make nchunks None in
    let next = Atomic.make 0 in
    let settled = ref 0 in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let claim () =
      let rec go () =
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          (try run_chunk c
           with e -> errors.(c) <- Some (e, Printexc.get_raw_backtrace ()));
          Mutex.protect done_lock (fun () ->
              incr settled;
              if !settled = nchunks then Condition.broadcast all_done);
          go ()
        end
      in
      go ()
    in
    let helpers = min (pool.n_jobs - 1) (nchunks - 1) in
    post pool (List.init helpers (fun _ -> Participate (fun () -> Budget.under snap claim)));
    claim ();
    Mutex.lock done_lock;
    while !settled < nchunks do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

(* Chunk c of n items under k chunks covers [c*n/k, (c+1)*n/k): a pure
   function of (n, k), independent of scheduling. *)
let bounds ~n ~nchunks c = (c * n / nchunks, (c + 1) * n / nchunks)

let map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let nchunks = min pool.n_jobs n in
    let slots = Array.make nchunks [||] in
    dispatch pool nchunks (fun c ->
        let lo, hi = bounds ~n ~nchunks c in
        slots.(c) <- Array.init (hi - lo) (fun i -> f arr.(lo + i)));
    Array.concat (Array.to_list slots)
  end

let map_reduce pool ~map:fm ~reduce ~init arr =
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let nchunks = min pool.n_jobs n in
    let slots = Array.make nchunks None in
    dispatch pool nchunks (fun c ->
        let lo, hi = bounds ~n ~nchunks c in
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := reduce !acc (fm arr.(i))
        done;
        slots.(c) <- Some !acc);
    Array.fold_left
      (fun acc slot -> match slot with Some v -> reduce acc v | None -> acc)
      init slots
  end
