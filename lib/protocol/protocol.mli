(** Probabilistic joint protocols and their compilation into pps trees
    (paper, Section 2.2).

    A {!spec} packages, for a fixed adversary (initial-state
    distribution plus a probabilistic environment):
    - a probabilistic protocol [P_i : L_i → ∆(Act_i)] per agent — a
      distribution over actions as a function of the agent's local
      state (and the time, which by synchrony is part of the local
      state);
    - a probabilistic environment protocol over environment actions
      (delivery patterns, coin flips, scheduling choices);
    - a deterministic transition function: the joint action performed
      at a global state determines the unique successor state.

    {!compile} unrolls a spec to the bounded horizon, producing exactly
    the paper's pps tree: one node per reachable (history, state), one
    edge per joint action in the support, with the product transition
    probability. Since protocols terminate in bounded time and supports
    are finite, the tree is finite.

    Labelling functions name local states and actions in the tree.
    [agent_label] {b must be injective} on the local states reachable
    at each time: two distinct local states mapped to the same label
    would be conflated into one information set, silently changing the
    agents' beliefs. (Post-compile,
    {!Pak_pps.Tree.check_protocol_consistency} will usually catch such
    conflation, since the conflated states rarely share an action
    distribution.) *)

open Pak_rational
open Pak_dist
open Pak_pps

type ('env, 'ls, 'act) spec = {
  n_agents : int;
  horizon : int;                       (** maximum number of rounds *)
  init : (('env * 'ls array) * Q.t) list;
      (** initial global states with probabilities summing to 1 *)
  env_protocol : time:int -> 'env -> 'act Dist.t;
  agent_protocol : agent:int -> time:int -> 'ls -> 'act Dist.t;
  transition : time:int -> 'env * 'ls array -> 'act -> 'act array -> 'env * 'ls array;
      (** [transition ~time (env, locals) env_act agent_acts] is the
          unique successor global state *)
  halts : time:int -> 'env * 'ls array -> bool;
      (** stop expanding this branch before the horizon (a leaf) *)
  env_label : 'env -> string;
  agent_label : agent:int -> 'ls -> string;
  act_label : 'act -> string;          (** must be injective on each
                                           distribution's support *)
}

val compile : ('env, 'ls, 'act) spec -> Tree.t
(** Unroll the joint protocol to a pps tree.
    @raise Invalid_argument if the initial probabilities do not sum
    to 1, if [horizon < 1] or [n_agents < 1], or if [act_label]
    collides on a support (reported as a duplicate joint action). *)

val compile_result : ('env, 'ls, 'act) spec -> (Tree.t, Pak_guard.Error.t) result
(** The typed boundary around {!compile}: never raises. Spec-shape
    errors (probabilities not summing to 1, bad horizon or agent
    count, label collisions, exceptions escaping user-supplied
    protocol closures) are returned with kind [Invalid_system];
    exhausting an installed {!Pak_guard.Budget} (node fuel, point
    fuel, deadline) returns kind [Budget_exceeded]. *)

val count_nodes : ('env, 'ls, 'act) spec -> int
(** Number of tree nodes [compile] would create, without building
    facts/indexes — useful to sanity-check a spec's size first. *)
