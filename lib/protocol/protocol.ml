open Pak_rational
open Pak_dist
open Pak_pps
module Error = Pak_guard.Error

type ('env, 'ls, 'act) spec = {
  n_agents : int;
  horizon : int;
  init : (('env * 'ls array) * Q.t) list;
  env_protocol : time:int -> 'env -> 'act Dist.t;
  agent_protocol : agent:int -> time:int -> 'ls -> 'act Dist.t;
  transition : time:int -> 'env * 'ls array -> 'act -> 'act array -> 'env * 'ls array;
  halts : time:int -> 'env * 'ls array -> bool;
  env_label : 'env -> string;
  agent_label : agent:int -> 'ls -> string;
  act_label : 'act -> string;
}

let check_spec spec =
  if spec.n_agents < 1 then invalid_arg "Protocol.compile: need at least one agent";
  if spec.horizon < 1 then invalid_arg "Protocol.compile: horizon must be at least 1";
  let total = Q.sum (List.map snd spec.init) in
  if not (Q.equal total Q.one) then
    invalid_arg
      (Format.asprintf "Protocol.compile: initial probabilities sum to %a, not 1" Q.pp total)

let gstate_of spec (env, locals) =
  Gstate.make ~env:(spec.env_label env)
    ~locals:(List.init spec.n_agents (fun i -> spec.agent_label ~agent:i locals.(i)))

(* One round's joint outcomes at a global state: the independent
   product of the environment's choice and every agent's choice, with
   the resulting successor state. *)
let round_outcomes spec ~time (env, locals) =
  let env_dist = spec.env_protocol ~time env in
  let agent_dists =
    List.init spec.n_agents (fun i -> spec.agent_protocol ~agent:i ~time locals.(i))
  in
  let joint = Dist.product env_dist (Dist.product_list agent_dists) in
  List.map
    (fun ((env_act, agent_acts), prob) ->
      let agent_acts = Array.of_list agent_acts in
      let labels =
        Array.of_list (spec.act_label env_act :: List.map spec.act_label (Array.to_list agent_acts))
      in
      let next = spec.transition ~time (env, locals) env_act agent_acts in
      (prob, labels, next))
    (Dist.to_list joint)

let compile spec =
  check_spec spec;
  let b = Tree.Builder.create ~n_agents:spec.n_agents in
  let rec expand node config time =
    if time < spec.horizon && not (spec.halts ~time config) then
      List.iter
        (fun (prob, acts, next) ->
          let child = Tree.Builder.add_child b ~parent:node ~prob ~acts (gstate_of spec next) in
          expand child next (time + 1))
        (round_outcomes spec ~time config)
  in
  List.iter
    (fun (config, prob) ->
      let node = Tree.Builder.add_initial b ~prob (gstate_of spec config) in
      expand node config 0)
    spec.init;
  Tree.Builder.finalize b

(* The typed boundary for untrusted specs: never raises. Bad spec
   shapes (probabilities not summing to 1, label collisions, zero
   denominators produced by user-supplied protocol closures) come back
   as [Invalid_system]; budget exhaustion (node fuel charged by
   [Tree.Builder.push], point fuel at finalize, deadline) comes back
   as [Budget_exceeded]. *)
let compile_result spec =
  match compile spec with
  | tree -> Ok tree
  | exception Invalid_argument msg ->
    Result.Error (Error.with_context "Protocol.compile" (Error.make Error.Invalid_system msg))
  | exception Error.Division_by_zero ctx ->
    Result.Error (Error.with_context "Protocol.compile" (Error.make Error.Invalid_system ctx))
  | exception Error.Error e -> Result.Error (Error.with_context "Protocol.compile" e)
  | exception Stack_overflow ->
    Result.Error
      (Error.with_context "Protocol.compile"
         (Error.make Error.Budget_exceeded "stack overflow (tree nested too deeply)"))

let count_nodes spec =
  check_spec spec;
  let count = ref 0 in
  let rec expand config time =
    incr count;
    if time < spec.horizon && not (spec.halts ~time config) then
      List.iter (fun (_, _, next) -> expand next (time + 1)) (round_outcomes spec ~time config)
  in
  List.iter (fun (config, _) -> expand config 0) spec.init;
  !count
