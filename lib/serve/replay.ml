(* Deterministic journal replay (see replay.mli for the contract).

   The whole scheme rests on serve's responses being a pure function
   of the input byte stream: trace ids are digests of (frame seq, item
   index, payload), shed boundaries are batch-exact at every --jobs,
   and Monte-Carlo degradation is seeded. The only impurities are the
   observability fields — (trace ...) / (metrics ...) groups and the
   (result ...) of introspection ops — which [normalize] strips before
   the byte comparison. *)

module Journal = Pak_journal.Journal
module Budget = Pak_guard.Budget
module Semantics = Pak_logic.Semantics

type divergence = {
  d_seq : int;
  d_trace : string;
  d_want : string;
  d_got : string;
}

type report = {
  rp_requests : int;
  rp_skipped_junk : int;
  rp_compared : int;
  rp_matched : int;
  rp_divergences : divergence list;
  rp_missing : int;
  rp_extra : int;
  rp_tail : string option;
}

(* ------------------------------------------------------------------ *)
(* Meta: the recorded serve configuration                              *)
(* ------------------------------------------------------------------ *)

let meta_of_config (cfg : Serve.config) =
  let lim = function None -> "none" | Some v -> string_of_int v in
  let l = cfg.Serve.limits in
  Printf.sprintf
    "(serve-config (version 1) (engine %s) (jobs %d) (max-pending %d) \
     (batch %d) (max-frame %d) (cache-max %d) (tree-cache-max %d) \
     (drain-ms %s) (retry-after-ms %d) (max-points %s) (max-nodes %s) \
     (max-limbs %s) (max-iters %s) (timeout-ms %s))"
    (Semantics.engine_name (Semantics.current_engine ()))
    cfg.Serve.jobs cfg.Serve.max_pending cfg.Serve.batch cfg.Serve.max_frame
    cfg.Serve.cache_max cfg.Serve.tree_cache_max
    (lim cfg.Serve.drain_ms)
    cfg.Serve.retry_after_ms
    (lim l.Budget.max_points)
    (lim l.Budget.max_nodes)
    (lim l.Budget.max_limbs)
    (lim l.Budget.max_iters)
    (lim l.Budget.timeout_ms)

let config_of_meta s =
  let cfg = ref Serve.default_config in
  let engine = ref None in
  let set f = cfg := f !cfg in
  let set_limits f = set (fun c -> { c with Serve.limits = f c.Serve.limits }) in
  (match Serve.Sexp.parse s with
  | Ok (Serve.Sexp.List (Serve.Sexp.Atom "serve-config" :: fields)) ->
      List.iter
        (fun field ->
          match field with
          | Serve.Sexp.List [ Serve.Sexp.Atom key; Serve.Sexp.Atom v ] -> (
              let int_v f =
                match int_of_string_opt v with Some n -> f n | None -> ()
              in
              let opt_v f =
                if v = "none" then f None
                else
                  match int_of_string_opt v with
                  | Some n -> f (Some n)
                  | None -> ()
              in
              match key with
              | "engine" -> engine := Semantics.engine_of_string v
              | "jobs" -> int_v (fun n -> set (fun c -> { c with Serve.jobs = n }))
              | "max-pending" ->
                  int_v (fun n -> set (fun c -> { c with Serve.max_pending = n }))
              | "batch" ->
                  int_v (fun n -> set (fun c -> { c with Serve.batch = n }))
              | "max-frame" ->
                  int_v (fun n -> set (fun c -> { c with Serve.max_frame = n }))
              | "cache-max" ->
                  int_v (fun n -> set (fun c -> { c with Serve.cache_max = n }))
              | "tree-cache-max" ->
                  int_v (fun n ->
                      set (fun c -> { c with Serve.tree_cache_max = n }))
              | "drain-ms" ->
                  opt_v (fun n -> set (fun c -> { c with Serve.drain_ms = n }))
              | "retry-after-ms" ->
                  int_v (fun n ->
                      set (fun c -> { c with Serve.retry_after_ms = n }))
              | "max-points" ->
                  opt_v (fun n ->
                      set_limits (fun l -> { l with Budget.max_points = n }))
              | "max-nodes" ->
                  opt_v (fun n ->
                      set_limits (fun l -> { l with Budget.max_nodes = n }))
              | "max-limbs" ->
                  opt_v (fun n ->
                      set_limits (fun l -> { l with Budget.max_limbs = n }))
              | "max-iters" ->
                  opt_v (fun n ->
                      set_limits (fun l -> { l with Budget.max_iters = n }))
              | "timeout-ms" ->
                  opt_v (fun n ->
                      set_limits (fun l -> { l with Budget.timeout_ms = n }))
              | _ -> () (* a newer recorder's field: ignore *))
          | _ -> ())
        fields
  | _ -> ());
  (!cfg, !engine)

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

let strip_groups names s =
  let n = String.length s in
  let b = Buffer.create n in
  (* Is [( name] (followed by a space, ')' or the end) at [i]? *)
  let matches_at i name =
    let l = String.length name in
    i + 1 + l <= n
    && String.sub s (i + 1) l = name
    && (i + 1 + l = n || s.[i + 1 + l] = ' ' || s.[i + 1 + l] = ')')
  in
  (* [s.[i0] = '(']: index just past the matching ')'. Quote-aware —
     parens inside "..." (with backslash escapes) do not count. *)
  let skip_group i0 =
    let depth = ref 0 in
    let j = ref i0 in
    let in_str = ref false in
    let continue = ref true in
    while !continue && !j < n do
      (match s.[!j] with
      | '"' -> in_str := not !in_str
      | '\\' when !in_str -> incr j
      | '(' when not !in_str -> incr depth
      | ')' when not !in_str ->
          decr depth;
          if !depth = 0 then continue := false
      | _ -> ());
      incr j
    done;
    !j
  in
  let i = ref 0 in
  let in_str = ref false in
  while !i < n do
    let c = s.[!i] in
    if (not !in_str) && c = '(' && List.exists (matches_at !i) names then begin
      (* Drop one already-emitted separating space with the group. *)
      let bl = Buffer.length b in
      if bl > 0 && Buffer.nth b (bl - 1) = ' ' then Buffer.truncate b (bl - 1);
      i := skip_group !i
    end
    else begin
      (match c with
      | '"' -> in_str := not !in_str
      | '\\' when !in_str && !i + 1 < n ->
          Buffer.add_char b c;
          incr i
      | _ -> ());
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let normalize ~disp s =
  let s = strip_groups [ "trace"; "metrics" ] s in
  if disp = "metrics" || disp = "status" then strip_groups [ "result" ] s else s

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

(* Split a response byte stream back into frame payloads. The stream
   is our own output, so junk here would itself be a bug — surface it
   as a payload so it shows up as a divergence, not silently. *)
let decode_frames bytes =
  let rd = Serve.Frame.reader (Serve.Frame.source_of_string bytes) in
  let rec go acc =
    match Serve.Frame.read rd with
    | Serve.Frame.Eof -> List.rev acc
    | Serve.Frame.Payload p -> go (p :: acc)
    | Serve.Frame.Junk _ -> go ("<unframed bytes in replay output>" :: acc)
  in
  go []

let run ?jobs ?clock ?limits (rr : Journal.read_result) =
  let cfg, engine = config_of_meta rr.Journal.r_meta in
  (match engine with Some e -> Semantics.set_engine e | None -> ());
  let cfg =
    {
      cfg with
      Serve.journal = None;
      telemetry = None;
      telemetry_every = 0;
      clock;
    }
  in
  let cfg = match jobs with Some j -> { cfg with Serve.jobs = j } | None -> cfg in
  let cfg =
    match limits with Some l -> { cfg with Serve.limits = l } | None -> cfg
  in
  match Serve.validate_config cfg with
  | Result.Error m ->
      Result.Error ("journal meta yields an invalid configuration: " ^ m)
  | Ok () ->
      let requests, junk_requests =
        List.partition
          (fun e -> e.Journal.e_disp <> "junk")
          (List.filter
             (fun e -> e.Journal.e_kind = Journal.Request)
             rr.Journal.r_entries)
      in
      let expected, junk_responses =
        List.partition
          (fun e -> e.Journal.e_disp <> "junk")
          (List.filter
             (fun e -> e.Journal.e_kind = Journal.Response)
             rr.Journal.r_entries)
      in
      let input = Buffer.create 4096 in
      List.iter
        (fun e ->
          Buffer.add_string input (Serve.Frame.encode e.Journal.e_payload))
        requests;
      let out, _code = Serve.run_string ~config:cfg (Buffer.contents input) in
      let got = decode_frames out in
      let rec pair exp got compared matched divs =
        match (exp, got) with
        | [], rest ->
            (compared, matched, List.rev divs, 0, List.length rest)
        | rest, [] ->
            (compared, matched, List.rev divs, List.length rest, 0)
        | e :: exp', g :: got' ->
            let want = normalize ~disp:e.Journal.e_disp e.Journal.e_payload in
            let got_n = normalize ~disp:e.Journal.e_disp g in
            if want = got_n then pair exp' got' (compared + 1) (matched + 1) divs
            else
              pair exp' got' (compared + 1) matched
                ({
                   d_seq = e.Journal.e_seq;
                   d_trace = e.Journal.e_trace;
                   d_want = want;
                   d_got = got_n;
                 }
                :: divs)
      in
      let compared, matched, divergences, missing, extra =
        pair expected got 0 0 []
      in
      Ok
        {
          rp_requests = List.length requests;
          rp_skipped_junk = List.length junk_requests + List.length junk_responses;
          rp_compared = compared;
          rp_matched = matched;
          rp_divergences = divergences;
          rp_missing = missing;
          rp_extra = extra;
          rp_tail = rr.Journal.r_tail;
        }
