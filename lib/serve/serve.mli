(** [pak serve] — a fault-isolated batch/server front end.

    A long-lived request loop: length-prefixed s-expression frames
    arrive on a byte source, one response frame leaves per request, and
    evaluation is scheduled on the {!Pak_par.Pool}. The defining
    property is {e fault isolation}: a malformed frame, a runaway
    fixpoint, an exhausted budget or a worker exception degrades exactly
    one response — never the server process.

    {2 Frame format}

    Every frame, in both directions, is

    {v pak1 <len>\n<payload> v}

    where ["pak1 "] is a literal 5-byte magic, [<len>] is the payload
    length in bytes as decimal ASCII, and [<payload>] is one
    s-expression. Anything else on the stream is junk: the reader emits
    a typed {!Frame.junk} event and resynchronizes at the next magic.

    {2 Request grammar}

    {v
(request (id 1) (op eval) (system "<pps document>") (formula "K[0] a0_g0"))
(request (id 2) (op belief) (system "...") (formula "a0_g0")
         (agent 0) (run 1) (time 1) (samples 500) (seed 7)
         (max-limbs 1) (timeout-ms 100) (metrics true))
(request (id 3) (op metrics))
(request (id 4) (op status))
(batch (request ...) (request ...) ...)
(ping (id 9))
(shutdown)
    v}

    Per-request [max-points]/[max-nodes]/[max-limbs]/[max-iters]/
    [timeout-ms] override the server-level caps but can only lower
    them; [metrics true] attaches a per-request
    {!Pak_obs.Obs.Snapshot.diff_capture} delta to the response.
    [(op metrics)] needs no system or formula: it answers with the
    server's cumulative metrics rendered as OpenMetrics text,
    [(result (openmetrics "..."))]; it is never cached.

    [(op status)] likewise needs no system or formula. It is answered
    synchronously on the main domain the moment it is enqueued — never
    queued (so it can report the pending depth ahead of it), never shed
    (so it works under load), and never cached. Its
    [(result ...)] carries [uptime-ticks] (payload frames received — a
    logical clock, so the field is byte-stable across [--jobs]),
    [pending], request/response/shed/degraded totals, result-cache and
    tree-cache occupancy and hit rates, and the journal position; a
    trailing [(metrics (latencies ...))] group reports count/p50/p90/p99
    nanoseconds for every [serve.*] histogram (wall-clock data, hence
    quarantined under [(metrics ...)], which replay ignores).

    {2 Responses}

    [(response (id I) (trace T) (code C) (status S) ...)] where [code]
    reuses the CLI exit-code taxonomy per request: 0 ok, 2 malformed
    request, 3 invalid input (unparsable system/formula, protocol
    junk), 4 budget exceeded or shed under load, 125 internal bug.
    [status] is [ok], [estimated] (budget-degraded Monte-Carlo
    fallback), [overloaded] (shed, with a [(retry-after-ms N)] hint) or
    [error] (with [(kind ...)] and [(error "...")]). [ping] gets
    [(pong (id I))]; shutdown and EOF drain in-flight requests under
    the configured grace deadline and end with [(bye (reason ...))] and
    exit code 0.

    {2 Trace ids}

    Every request parsed from a payload frame — including malformed
    ones — is assigned a 16-hex-char trace id, a digest of (frame
    sequence number, item index within the frame, payload digest). It
    is a pure function of the input byte stream, so it is byte-stable
    across [--jobs] and across re-runs of the same stream. The id comes
    back as the [(trace T)] response field, is installed as the
    {!Pak_obs.Obs.with_trace_context} trace context while the request
    executes (so every span the request opens carries
    [args.trace = T] in the Chrome trace), and prefixes the
    per-request [(metrics (trace T) ...)] delta. Frame-level junk
    ([code 3] protocol responses with no request behind them) carries
    no trace field.

    {2 Telemetry frames}

    With [telemetry_every = N > 0] and a [telemetry] sink, the server
    emits one line-delimited JSON object per [N] accepted requests
    (plus a final frame at shutdown/EOF), each carrying counter and
    histogram-total {e deltas} since the previous frame — summing a
    metric over all frames telescopes to its session total. Before
    sampling, the queue is force-drained so deltas cover whole
    requests. The drain-cadence metrics (counter [serve.drains],
    histogram [serve.drain]) are excluded — they track scheduling, not
    work, and depend on [--jobs]; everything kept is a pure function of
    the input stream, so telemetry frames are byte-identical at every
    job count. *)

(** Minimal s-expression values shared by the request and response
    grammar (same dialect as [Tree_io]: atoms, quoted strings with
    backslash escapes for the quote and backslash characters, lists). *)
module Sexp : sig
  type t = Atom of string | Str of string | List of t list

  val parse : string -> (t, string) result
  (** One toplevel form; depth-capped, never raises. *)

  val add_to_buffer : Buffer.t -> t -> unit
  val to_string : t -> string
end

(** The length-prefixed frame codec. *)
module Frame : sig
  val magic : string
  (** ["pak1 "]. *)

  val default_max_frame : int
  (** 1 MiB. *)

  type source = bytes -> int -> int -> int
  (** [source buf pos len] reads at most [len] bytes into [buf] at
      [pos] and returns how many were read; 0 (or any exception) means
      end of stream. *)

  val source_of_string : string -> source
  val source_of_channel : in_channel -> source

  type junk =
    | Garbage of int  (** [n] bytes skipped to the next magic/EOF *)
    | Oversized of int  (** declared length above the frame cap; payload skipped *)
    | Truncated  (** stream ended inside a frame *)

  type event = Eof | Payload of string | Junk of junk

  type reader

  val reader : ?max_frame:int -> source -> reader

  val read : reader -> event
  (** Next event. Never raises; after [Junk] the reader is positioned
      at the next plausible frame (resync). [Eof] is sticky. *)

  val encode : string -> string
  (** Wrap a payload in a frame header. *)
end

(** Server configuration. All limits are validated by
    {!validate_config}; `pak serve` refuses to start (exit 3) on an
    invalid configuration. *)
type config = {
  jobs : int;  (** worker domains; 1 = run requests on the caller *)
  max_pending : int;
      (** bound on queued-not-yet-executed requests; beyond it new
          requests are shed with an [overloaded] response *)
  batch : int;
      (** drain the queue once it holds this many entries; 0 means
          [jobs] (keep the pool busy) *)
  max_frame : int;  (** frame payload byte cap *)
  cache_max : int;
      (** cross-request result-cache entries; 0 disables the cache *)
  tree_cache_max : int;  (** parsed-system cache entries *)
  drain_ms : int option;
      (** grace deadline for draining in-flight requests on
          shutdown/EOF; [None] = drain without a deadline *)
  retry_after_ms : int;  (** hint attached to [overloaded] responses *)
  limits : Pak_guard.Budget.limits;
      (** server-level per-request caps; requests may only lower them *)
  clock : (unit -> float) option;
      (** wall clock for the drain deadline (e.g. [Unix.gettimeofday]);
          [None] falls back to [Sys.time] *)
  telemetry_every : int;
      (** emit a telemetry frame every N accepted requests; 0 disables.
          Requires a [telemetry] sink when positive. *)
  telemetry : (string -> unit) option;
      (** side-channel sink for telemetry frames: called with one JSON
          object (no trailing newline) per frame *)
  journal : Pak_journal.Journal.sink option;
      (** flight recorder: every inbound frame and outbound response is
          appended as a {!Pak_journal.Journal.entry}; [None] = off *)
}

val default_config : config

val validate_config : config -> (unit, string) result

val run : config -> source:Frame.source -> write:(string -> unit) -> int
(** Serve until EOF or a [shutdown] frame; returns the process exit
    code (0 on a clean drain, including when the client disappears
    mid-write; 3 if the configuration is invalid). [write] receives
    complete response frames; if it raises [Sys_error] (broken pipe)
    the server drains quietly and still returns 0. Request failures
    never escape: they become error responses. *)

val run_string : ?config:config -> string -> string * int
(** In-process convenience (tests, soak, bench): feed a whole input
    stream, collect the response stream, return it with the exit
    code. *)
