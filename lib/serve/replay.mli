(** Deterministic journal replay: re-execute a flight-recorder journal
    through the live engine and diff the responses.

    Replay reconstructs the input byte stream from the journal's
    request records ([Journal.Request] entries with a [frame]
    disposition; [junk] request records are skipped — their bytes were
    never kept), runs it through {!Serve.run_string} under the
    configuration recorded in the journal meta, and compares the
    produced response payloads pairwise, in order, against the recorded
    [Journal.Response] entries (again skipping [junk]-disposition
    records, which replay by construction does not reproduce).

    The comparison is byte-for-byte {e modulo} the fields that are not
    pure functions of the input stream:

    - [(trace ...)] groups are stripped from both sides — trace ids are
      reproduced exactly in practice (they are a pure function of the
      stream), but the diff must not depend on that;
    - [(metrics ...)] groups are stripped — per-request metric deltas
      and [(op status)] latency percentiles read global, wall-clock
      observability state;
    - for responses recorded with a [metrics] or [status] disposition,
      [(result ...)] is also stripped — an OpenMetrics dump or a status
      result reports the {e recording} process's cumulative state
      (journal position included), which a replaying process cannot
      reproduce. The response envelope (id, code, status) still has to
      match.

    Everything else — results, probabilities, error messages, shed
    boundaries, cache-hit bodies, pong/bye frames — must match
    byte-for-byte. *)

type divergence = {
  d_seq : int;  (** payload-frame sequence number of the recorded response *)
  d_trace : string;  (** its recorded trace id ([""] = none) *)
  d_want : string;  (** normalized recorded payload *)
  d_got : string;  (** normalized replayed payload *)
}

type report = {
  rp_requests : int;  (** request frames re-executed *)
  rp_skipped_junk : int;  (** junk records dropped (both kinds) *)
  rp_compared : int;  (** response pairs compared *)
  rp_matched : int;
  rp_divergences : divergence list;  (** in journal order *)
  rp_missing : int;  (** recorded responses the replay did not produce *)
  rp_extra : int;  (** replayed responses beyond the recording *)
  rp_tail : string option;  (** carried from {!Pak_journal.Journal.read} *)
}

val meta_of_config : Serve.config -> string
(** Render the replay-relevant configuration (plus the active
    {!Pak_logic.Semantics} engine) as the journal meta string: a
    [(serve-config (version 1) (engine E) (jobs N) ... )] s-expression.
    Sinks and clocks are process-local and are not recorded. *)

val config_of_meta :
  string -> Serve.config * Pak_logic.Semantics.engine option
(** Parse a journal meta string back into a configuration, tolerantly:
    unknown fields are ignored and missing or malformed ones fall back
    to {!Serve.default_config}, so a replay binary can read journals
    from both older and newer recorders. *)

val strip_groups : string list -> string -> string
(** [strip_groups names s] removes every balanced [(name ...)] group
    whose head atom is in [names] (plus one preceding space), tracking
    quoted strings so parentheses inside ["..."] do not miscount.
    Exposed for tests. *)

val normalize : disp:string -> string -> string
(** The per-response normalization described above, keyed by the
    recorded disposition token. *)

val run :
  ?jobs:int ->
  ?clock:(unit -> float) ->
  ?limits:Pak_guard.Budget.limits ->
  Pak_journal.Journal.read_result ->
  (report, string) result
(** Replay a read journal. [jobs] overrides the recorded job count
    (the response stream must not change — that is the point); [clock]
    supplies the drain-deadline clock; [limits] replaces the recorded
    server-level caps (the fuzzer uses it to bound replays of hostile
    journals whose meta declares no limits). [Error] when the meta does
    not yield a runnable configuration. Never raises on corrupt
    journals: garbage entries simply become divergences or
    missing/extra counts. *)
