(* pak_serve — a fault-isolated batch/server front end (ROADMAP item 2).

   One long-lived process, many (system × formula) requests:
   length-prefixed s-expression frames arrive on a byte source,
   responses leave through a write callback, evaluation is scheduled on
   the pak_par pool. The invariants this file defends:

   - a request failure of any kind (malformed frame, unparsable
     system/formula, exhausted budget, worker exception) produces an
     error *response* and never terminates the loop;
   - memory is bounded: frames are capped, the pending queue is
     bounded by shedding, caches are FIFO-bounded;
   - responses are written in arrival order (shed and error responses
     join the same queue as real results);
   - everything observable is a serve.* counter or span. *)

module Error = Pak_guard.Error
module Budget = Pak_guard.Budget
module Graded = Pak_guard.Graded
module Obs = Pak_obs.Obs
module Journal = Pak_journal.Journal
module Pool = Pak_par.Pool
module Q = Pak_rational.Q
module Tree = Pak_pps.Tree
module Tree_io = Pak_pps.Tree_io
module Fact = Pak_pps.Fact
module Belief = Pak_pps.Belief
module Bitset = Pak_pps.Bitset
module Parser = Pak_logic.Parser
module Semantics = Pak_logic.Semantics
module Closure = Pak_logic.Closure

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let c_frames = Obs.counter "serve.frames"
let c_requests = Obs.counter "serve.requests"
let c_responses = Obs.counter "serve.responses"
let c_batches = Obs.counter "serve.batches"
let c_pings = Obs.counter "serve.pings"
let c_drains = Obs.counter "serve.drains"
let c_shed = Obs.counter "serve.shed"
let c_degraded = Obs.counter "serve.degraded"
let c_err_protocol = Obs.counter "serve.errors.protocol"
let c_err_request = Obs.counter "serve.errors.request"
let c_err_input = Obs.counter "serve.errors.input"
let c_err_budget = Obs.counter "serve.errors.budget"
let c_err_internal = Obs.counter "serve.errors.internal"
let c_cache_hits = Obs.counter "serve.cache.hits"
let c_cache_misses = Obs.counter "serve.cache.misses"
let c_cache_evictions = Obs.counter "serve.cache.evictions"
let c_tree_hits = Obs.counter "serve.tree_cache.hits"
let c_tree_misses = Obs.counter "serve.tree_cache.misses"

(* Live levels for the gauge provider. Deterministic at capture time:
   the queue is empty whenever control is outside [drain], and the
   cache level is a pure function of the request history. *)
let g_pending = Atomic.make 0
let g_cache_entries = Atomic.make 0

let () =
  Obs.register_gauges (fun () ->
      [
        ("serve.pending", float_of_int (Atomic.get g_pending));
        ("serve.cache_entries", float_of_int (Atomic.get g_cache_entries));
      ])

(* ------------------------------------------------------------------ *)
(* S-expressions (same dialect as Tree_io)                             *)
(* ------------------------------------------------------------------ *)

module Sexp = struct
  type t = Atom of string | Str of string | List of t list

  let max_nesting = 200

  exception Bad of string

  let quote buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let rec add_to_buffer buf = function
    | Atom s -> Buffer.add_string buf s
    | Str s -> quote buf s
    | List xs ->
        Buffer.add_char buf '(';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ' ';
            add_to_buffer buf x)
          xs;
        Buffer.add_char buf ')'

  let to_string x =
    let buf = Buffer.create 64 in
    add_to_buffer buf x;
    Buffer.contents buf

  let tokenize input =
    let n = String.length input in
    let toks = ref [] in
    let i = ref 0 in
    while !i < n do
      let c = input.[!i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
      else if c = '(' then begin
        toks := `Open :: !toks;
        incr i
      end
      else if c = ')' then begin
        toks := `Close :: !toks;
        incr i
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          (match input.[!i] with
          | '"' -> closed := true
          | '\\' ->
              if !i + 1 >= n then raise (Bad "dangling escape in string");
              incr i;
              Buffer.add_char buf input.[!i]
          | c -> Buffer.add_char buf c);
          incr i
        done;
        if not !closed then raise (Bad "unterminated string");
        toks := `Str (Buffer.contents buf) :: !toks
      end
      else begin
        let start = !i in
        while
          !i < n
          &&
          let c = input.[!i] in
          not
            (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '(' || c = ')'
           || c = '"')
        do
          incr i
        done;
        toks := `Atom (String.sub input start (!i - start)) :: !toks
      end
    done;
    List.rev !toks

  let parse input =
    try
      let stack = ref [] in
      let depth = ref 0 in
      let result = ref None in
      let push v =
        match !stack with
        | items :: rest -> stack := (v :: items) :: rest
        | [] -> (
            match !result with
            | None -> result := Some v
            | Some _ -> raise (Bad "trailing data after toplevel form"))
      in
      List.iter
        (function
          | `Open ->
              if !depth >= max_nesting then raise (Bad "nesting too deep");
              incr depth;
              stack := [] :: !stack
          | `Close -> (
              match !stack with
              | items :: rest ->
                  decr depth;
                  stack := rest;
                  push (List (List.rev items))
              | [] -> raise (Bad "unbalanced ')'"))
          | `Atom s -> push (Atom s)
          | `Str s -> push (Str s))
        (tokenize input);
      if !stack <> [] then raise (Bad "unbalanced '('");
      match !result with None -> raise (Bad "empty frame") | Some v -> Ok v
    with Bad m -> Result.Error m
end

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

module Frame = struct
  let magic = "pak1 "
  let magic_len = String.length magic
  let default_max_frame = 1 lsl 20

  type source = bytes -> int -> int -> int

  let source_of_channel ic buf pos len = input ic buf pos len

  let source_of_string s =
    let off = ref 0 in
    fun buf pos len ->
      let n = min len (String.length s - !off) in
      Bytes.blit_string s !off buf pos n;
      off := !off + n;
      n

  type junk = Garbage of int | Oversized of int | Truncated
  type event = Eof | Payload of string | Junk of junk

  type reader = {
    source : source;
    max_frame : int;
    mutable buf : Bytes.t;
    mutable pos : int;  (* start of unconsumed data *)
    mutable len : int;  (* end of valid data *)
    mutable eof : bool;  (* the source is exhausted *)
  }

  let reader ?(max_frame = default_max_frame) source =
    { source; max_frame; buf = Bytes.create 8192; pos = 0; len = 0; eof = false }

  (* Refill until at least [n] bytes are buffered past [pos] or the
     source ends; returns how many are available. A source exception is
     end-of-stream (robustness: a dying client must not kill us). *)
  let ensure r n =
    while r.len - r.pos < n && not r.eof do
      if r.pos > 0 then begin
        Bytes.blit r.buf r.pos r.buf 0 (r.len - r.pos);
        r.len <- r.len - r.pos;
        r.pos <- 0
      end;
      if Bytes.length r.buf < n then begin
        let b = Bytes.create (max n (2 * Bytes.length r.buf)) in
        Bytes.blit r.buf 0 b 0 r.len;
        r.buf <- b
      end;
      let got =
        try r.source r.buf r.len (Bytes.length r.buf - r.len) with _ -> 0
      in
      if got <= 0 then r.eof <- true else r.len <- r.len + got
    done;
    r.len - r.pos

  let magic_at r i =
    let ok = ref true in
    for k = 0 to magic_len - 1 do
      if Bytes.get r.buf (i + k) <> magic.[k] then ok := false
    done;
    !ok

  (* Skip up to [n] payload bytes without growing the buffer; returns
     how many were actually consumed (fewer only at EOF). *)
  let skip_n r n =
    let remaining = ref n in
    let stop = ref false in
    while !remaining > 0 && not !stop do
      let avail = r.len - r.pos in
      if avail > 0 then begin
        let take = min avail !remaining in
        r.pos <- r.pos + take;
        remaining := !remaining - take
      end
      else if ensure r 1 = 0 then stop := true
    done;
    n - !remaining

  (* The reader is mispositioned: drop at least one byte, then scan
     forward to the next magic (or EOF) and report how much was
     dropped. *)
  let resync r =
    r.pos <- r.pos + 1;
    let skipped = ref 1 in
    let result = ref (-1) in
    while !result < 0 do
      let avail = ensure r magic_len in
      if avail < magic_len then begin
        (* EOF tail shorter than a magic: drop it. *)
        skipped := !skipped + avail;
        r.pos <- r.len;
        result := 0
      end
      else begin
        let last = r.len - magic_len in
        let found = ref (-1) in
        let i = ref r.pos in
        while !found < 0 && !i <= last do
          if Bytes.get r.buf !i = 'p' && magic_at r !i then found := !i
          else incr i
        done;
        match !found with
        | -1 ->
            (* Keep a magic-sized tail for the next scan. *)
            let keep_from = r.len - (magic_len - 1) in
            skipped := !skipped + (keep_from - r.pos);
            r.pos <- keep_from
        | at ->
            skipped := !skipped + (at - r.pos);
            r.pos <- at;
            result := 0
      end
    done;
    Junk (Garbage !skipped)

  let is_digit c = c >= '0' && c <= '9'

  (* At most 11 length digits: fits in an int, and anything longer is
     garbage by fiat. *)
  let max_digits = 11

  let read r =
    if ensure r 1 = 0 then Eof
    else begin
      let avail = ensure r (magic_len + max_digits + 2) in
      if avail < magic_len || not (magic_at r r.pos) then resync r
      else begin
        let base = r.pos + magic_len in
        let limit = min r.len (base + max_digits + 1) in
        let j = ref base in
        while !j < limit && is_digit (Bytes.get r.buf !j) do
          incr j
        done;
        let ndigits = !j - base in
        if ndigits = 0 || ndigits > max_digits then resync r
        else if !j >= r.len then
          if r.eof then begin
            (* "pak1 123" then EOF: a frame was started, never finished. *)
            r.pos <- r.len;
            Junk Truncated
          end
          else resync r
        else if Bytes.get r.buf !j <> '\n' then resync r
        else begin
          let len = int_of_string (Bytes.sub_string r.buf base ndigits) in
          r.pos <- !j + 1;
          if len > r.max_frame then
            (* Oversized but plausibly honest: skip the declared
               payload so the next frame parses. Absurd declared
               lengths (16x the cap) are treated as garbage instead of
               skipping gigabytes of a hostile stream. *)
            if len > 16 * r.max_frame then begin
              r.pos <- r.pos - 1;
              resync r
            end
            else begin
              let skipped = skip_n r len in
              if skipped < len then Junk Truncated else Junk (Oversized len)
            end
          else begin
            let got = ensure r len in
            if got < len then begin
              r.pos <- r.len;
              Junk Truncated
            end
            else begin
              let payload = Bytes.sub_string r.buf r.pos len in
              r.pos <- r.pos + len;
              Payload payload
            end
          end
        end
      end
    end

  let encode payload =
    let b = Buffer.create (String.length payload + magic_len + 8) in
    Buffer.add_string b magic;
    Buffer.add_string b (string_of_int (String.length payload));
    Buffer.add_char b '\n';
    Buffer.add_string b payload;
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type op =
  | Op_eval
  | Op_belief of {
      agent : int;
      run : int;
      time : int;
      samples : int option;
      seed : int option;
    }
  | Op_metrics
  | Op_status

type request = {
  req_id : int;
  op : op;
  system : string;
  formula : string;
  req_limits : Budget.limits;
  want_metrics : bool;
  req_trace : string;
  req_seq : int;  (* originating payload-frame sequence number *)
}

(* Request-scoped trace id: a digest of (payload-frame sequence number,
   item index within the frame, payload digest), truncated to 16 hex
   chars. A pure function of the input byte stream — byte-identical at
   every --jobs — and unique per request: distinct frames differ in
   [seq], batch members in [ix]. Returned in the response, installed
   as the Obs trace context while the request runs (so its spans'
   trace events carry it), and stamped into per-request metrics. *)
let trace_id ~seq ~ix payload =
  String.sub
    (Digest.to_hex
       (Digest.string (Printf.sprintf "%d:%d:%s" seq ix (Digest.string payload))))
    0 16

exception Bad_request of string

let parse_request fields =
  let id = ref None in
  let op = ref None in
  let system = ref None in
  let formula = ref None in
  let agent = ref None in
  let run = ref None in
  let time = ref None in
  let samples = ref None in
  let seed = ref None in
  let mp = ref None in
  let mn = ref None in
  let ml = ref None in
  let mi = ref None in
  let tm = ref None in
  let metrics = ref false in
  try
    List.iter
      (function
        | Sexp.List (Sexp.Atom key :: rest) -> (
            let one () =
              match rest with
              | [ v ] -> v
              | _ -> raise (Bad_request (key ^ ": expected one value"))
            in
            let int_v () =
              match one () with
              | Sexp.Atom s -> (
                  match int_of_string_opt s with
                  | Some v -> v
                  | None -> raise (Bad_request (key ^ ": not an integer")))
              | _ -> raise (Bad_request (key ^ ": not an integer"))
            in
            let text_v () =
              match one () with
              | Sexp.Atom s | Sexp.Str s -> s
              | _ -> raise (Bad_request (key ^ ": expected text"))
            in
            let cap r =
              let v = int_v () in
              if v < 0 then raise (Bad_request (key ^ ": negative"));
              r := Some v
            in
            match key with
            | "id" -> id := Some (int_v ())
            | "op" -> (
                match text_v () with
                | "eval" -> op := Some `Eval
                | "belief" -> op := Some `Belief
                | "metrics" -> op := Some `Metrics
                | "status" -> op := Some `Status
                | other -> raise (Bad_request ("unknown op " ^ other)))
            | "system" -> system := Some (text_v ())
            | "formula" -> formula := Some (text_v ())
            | "agent" -> agent := Some (int_v ())
            | "run" -> run := Some (int_v ())
            | "time" -> time := Some (int_v ())
            | "samples" ->
                let v = int_v () in
                if v < 1 then raise (Bad_request "samples: must be >= 1");
                samples := Some v
            | "seed" -> seed := Some (int_v ())
            | "max-points" -> cap mp
            | "max-nodes" -> cap mn
            | "max-limbs" -> cap ml
            | "max-iters" -> cap mi
            | "timeout-ms" -> cap tm
            | "metrics" -> (
                match text_v () with
                | "true" -> metrics := true
                | "false" -> metrics := false
                | _ -> raise (Bad_request "metrics: expected true or false"))
            | other -> raise (Bad_request ("unknown field " ^ other)))
        | _ -> raise (Bad_request "request fields must be (key value) lists"))
      fields;
    let need key r =
      match !r with
      | Some v -> v
      | None -> raise (Bad_request ("missing field " ^ key))
    in
    let rid = need "id" id in
    let op =
      match need "op" op with
      | `Eval -> Op_eval
      | `Belief ->
          Op_belief
            {
              agent = need "agent" agent;
              run = need "run" run;
              time = need "time" time;
              samples = !samples;
              seed = !seed;
            }
      | `Metrics -> Op_metrics
      | `Status -> Op_status
    in
    (* A metrics or status request introspects the server itself; it
       carries no system or formula. *)
    let text key r =
      if op = Op_metrics || op = Op_status then Option.value !r ~default:""
      else need key r
    in
    Ok
      {
        req_id = rid;
        op;
        system = text "system" system;
        formula = text "formula" formula;
        req_limits =
          {
            Budget.max_points = !mp;
            max_nodes = !mn;
            max_limbs = !ml;
            max_iters = !mi;
            timeout_ms = !tm;
          };
        want_metrics = !metrics;
        req_trace = "";
        req_seq = 0;
      }
  with Bad_request m ->
    Result.Error ((match !id with Some i -> i | None -> -1), m)

type item = Item_req of request | Item_bad of int * string * string  (* trace *)

type msg = Msg_items of item list * bool  (* is_batch *) | Msg_ping of int | Msg_shutdown

let item_of_fields ~seq ~trace fields =
  match parse_request fields with
  | Ok r -> Item_req { r with req_trace = trace; req_seq = seq }
  | Error (id, m) -> Item_bad (id, m, trace)

(* [trace ix] yields the trace id for item index [ix] of the frame. *)
let parse_msg ~seq ~trace = function
  | Sexp.List (Sexp.Atom "request" :: fields) ->
      Msg_items ([ item_of_fields ~seq ~trace:(trace 0) fields ], false)
  | Sexp.List (Sexp.Atom "batch" :: entries) ->
      let items =
        List.mapi
          (fun ix entry ->
            match entry with
            | Sexp.List (Sexp.Atom "request" :: fields) ->
                item_of_fields ~seq ~trace:(trace ix) fields
            | _ -> Item_bad (-1, "batch entries must be (request ...)", trace ix))
          entries
      in
      Msg_items (items, true)
  | Sexp.List [ Sexp.Atom "ping" ] -> Msg_ping 0
  | Sexp.List [ Sexp.Atom "ping"; Sexp.List [ Sexp.Atom "id"; Sexp.Atom v ] ]
    when int_of_string_opt v <> None ->
      Msg_ping (int_of_string v)
  | Sexp.List [ Sexp.Atom "shutdown" ] -> Msg_shutdown
  | _ -> Msg_items ([ Item_bad (-1, "unknown frame form", trace 0) ], false)

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  jobs : int;
  max_pending : int;
  batch : int;
  max_frame : int;
  cache_max : int;
  tree_cache_max : int;
  drain_ms : int option;
  retry_after_ms : int;
  limits : Budget.limits;
  clock : (unit -> float) option;
  telemetry_every : int;  (* 0 = off: emit a telemetry frame per N requests *)
  telemetry : (string -> unit) option;  (* side-channel sink, one line per frame *)
  journal : Journal.sink option;  (* flight recorder, None = off *)
}

let default_config =
  {
    jobs = 1;
    max_pending = 64;
    batch = 0;
    max_frame = Frame.default_max_frame;
    cache_max = 256;
    tree_cache_max = 32;
    drain_ms = Some 2_000;
    retry_after_ms = 50;
    limits = Budget.unlimited;
    clock = None;
    telemetry_every = 0;
    telemetry = None;
    journal = None;
  }

let validate_config cfg =
  let err fmt = Printf.ksprintf (fun m -> Result.Error m) fmt in
  if cfg.jobs < 1 then err "--jobs must be >= 1 (got %d)" cfg.jobs
  else if cfg.max_pending < 1 then
    err "--max-pending must be >= 1 (got %d)" cfg.max_pending
  else if cfg.batch < 0 then err "--batch must be >= 0 (got %d)" cfg.batch
  else if cfg.batch > cfg.max_pending then
    err "--batch %d exceeds --max-pending %d" cfg.batch cfg.max_pending
  else if cfg.max_frame < 64 then
    err "--max-frame must be >= 64 bytes (got %d)" cfg.max_frame
  else if cfg.cache_max < 0 then
    err "--cache-max must be >= 0 (got %d)" cfg.cache_max
  else if cfg.tree_cache_max < 1 then
    err "--tree-cache-max must be >= 1 (got %d)" cfg.tree_cache_max
  else if cfg.retry_after_ms < 1 then
    err "--retry-after-ms must be >= 1 (got %d)" cfg.retry_after_ms
  else if (match cfg.drain_ms with Some d -> d < 0 | None -> false) then
    err "--drain-ms must be >= 0"
  else if cfg.telemetry_every < 0 then
    err "--telemetry-every must be >= 0 (got %d)" cfg.telemetry_every
  else if cfg.telemetry_every > 0 && Option.is_none cfg.telemetry then
    err "--telemetry-every requires a telemetry sink (--telemetry-file)"
  else
    let bad_cap =
      List.find_opt
        (fun (_, v) -> match v with Some v -> v <= 0 | None -> false)
        [
          ("--max-points", cfg.limits.Budget.max_points);
          ("--max-nodes", cfg.limits.Budget.max_nodes);
          ("--max-limbs", cfg.limits.Budget.max_limbs);
          ("--max-iters", cfg.limits.Budget.max_iters);
          ("--timeout-ms", cfg.limits.Budget.timeout_ms);
        ]
    in
    match bad_cap with
    | Some (name, _) ->
        err "server-level %s of 0 or less would fail every request" name
    | None -> Ok ()

(* A request may only lower the server-level caps. *)
let merge_limits server req =
  let field s r =
    match (s, r) with
    | None, v | v, None -> v
    | Some s, Some r -> Some (min s r)
  in
  {
    Budget.max_points = field server.Budget.max_points req.Budget.max_points;
    max_nodes = field server.Budget.max_nodes req.Budget.max_nodes;
    max_limbs = field server.Budget.max_limbs req.Budget.max_limbs;
    max_iters = field server.Budget.max_iters req.Budget.max_iters;
    timeout_ms = field server.Budget.timeout_ms req.Budget.timeout_ms;
  }

(* ------------------------------------------------------------------ *)
(* Outcomes and rendering                                              *)
(* ------------------------------------------------------------------ *)

type outcome = {
  out_id : int;
  out_body : string;  (* rendered "(code ..) (status ..) ..." fields *)
  out_metrics : string;  (* "" or a rendered " (metrics ...)" *)
  out_cacheable : bool;
  out_trace : string;  (* "" = no trace field (junk/protocol outcomes) *)
  out_code : int;  (* exit-taxonomy code, journaled with the response *)
  out_disp : string;  (* journal disposition token *)
  out_seq : int;  (* originating payload-frame sequence number *)
}

let quoted s =
  let b = Buffer.create (String.length s + 2) in
  Sexp.quote b s;
  Buffer.contents b

let ok_outcome ?(disp = "ok") id body ~cacheable =
  {
    out_id = id;
    out_body = body;
    out_metrics = "";
    out_cacheable = cacheable;
    out_trace = "";
    out_code = 0;
    out_disp = disp;
    out_seq = 0;
  }

let error_outcome id (e : Error.t) =
  let code =
    match e.Error.kind with
    | Error.Budget_exceeded ->
        Obs.incr c_err_budget;
        4
    | Error.Parse | Error.Invalid_system | Error.Io ->
        Obs.incr c_err_input;
        3
  in
  {
    out_id = id;
    out_body =
      Printf.sprintf "(code %d) (status error) (kind %s) (error %s)" code
        (Error.kind_name e.Error.kind)
        (quoted (Error.to_string e));
    out_metrics = "";
    out_cacheable = false;
    out_trace = "";
    out_code = code;
    out_disp = "error";
    out_seq = 0;
  }

let internal_outcome id exn =
  Obs.incr c_err_internal;
  {
    out_id = id;
    out_body =
      Printf.sprintf "(code 125) (status error) (kind internal) (error %s)"
        (quoted (Printexc.to_string exn));
    out_metrics = "";
    out_cacheable = false;
    out_trace = "";
    out_code = 125;
    out_disp = "internal";
    out_seq = 0;
  }

let bad_request_outcome id msg =
  Obs.incr c_err_request;
  {
    out_id = id;
    out_body =
      Printf.sprintf "(code 2) (status error) (kind request) (error %s)"
        (quoted msg);
    out_metrics = "";
    out_cacheable = false;
    out_trace = "";
    out_code = 2;
    out_disp = "bad-request";
    out_seq = 0;
  }

let protocol_outcome msg =
  {
    out_id = -1;
    out_body =
      Printf.sprintf "(code 3) (status error) (kind protocol) (error %s)"
        (quoted msg);
    out_metrics = "";
    out_cacheable = false;
    out_trace = "";
    out_code = 3;
    out_disp = "protocol";
    out_seq = 0;
  }

let junk_outcome j =
  let o =
    match j with
    | Frame.Garbage n ->
        protocol_outcome (Printf.sprintf "garbage on stream: skipped %d bytes" n)
    | Frame.Oversized n ->
        protocol_outcome (Printf.sprintf "frame of %d bytes exceeds the cap" n)
    | Frame.Truncated -> protocol_outcome "stream ended inside a frame"
  in
  { o with out_disp = "junk" }

let overloaded_outcome cfg id =
  {
    out_id = id;
    out_body =
      Printf.sprintf "(code 4) (status overloaded) (retry-after-ms %d)"
        cfg.retry_after_ms;
    out_metrics = "";
    out_cacheable = false;
    out_trace = "";
    out_code = 4;
    out_disp = "shed";
    out_seq = 0;
  }

let render_metrics ~trace (d : Obs.Snapshot.t) =
  let b = Buffer.create 128 in
  Buffer.add_string b " (metrics";
  if trace <> "" then Printf.bprintf b " (trace %s)" trace;
  Buffer.add_string b " (counters";
  List.iter
    (fun (n, v) -> Printf.bprintf b " (%s %d)" n v)
    d.Obs.Snapshot.counters;
  Buffer.add_string b ") (histograms";
  List.iter
    (fun (n, counts) -> Printf.bprintf b " (%s %d)" n (Obs.total_count counts))
    d.Obs.Snapshot.histograms;
  Buffer.add_string b "))";
  Buffer.contents b

let render_response o =
  let trace =
    if o.out_trace = "" then "" else Printf.sprintf " (trace %s)" o.out_trace
  in
  Printf.sprintf "(response (id %d)%s %s%s)" o.out_id trace o.out_body
    o.out_metrics

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type pending = P_live of request * string option  (* cache key *) | P_done of outcome

type state = {
  cfg : config;
  pool : Pool.t option;
  q : pending Queue.t;
  mutable live : int;  (* P_live entries in [q] *)
  (* Parsed-system cache: written from worker domains, hence the
     mutex. FIFO-bounded. *)
  trees : (string, Tree.t) Hashtbl.t;
  tree_order : string Queue.t;
  tree_mutex : Mutex.t;
  (* Cross-request result cache: touched only on the main domain
     (lookups at enqueue, inserts after a drain), so no lock. *)
  results : (string, string) Hashtbl.t;
  result_order : string Queue.t;
  write_frame : string -> unit;
  (* (op status) tallies. The mutable ints are touched only on the main
     domain (enqueue / write_response / cache_put); the atomics are
     bumped from worker domains mid-drain. A status request is answered
     at enqueue time, when no drain is in flight, so every field below
     is settled — a pure function of the input stream so far, hence
     byte-identical at every --jobs. *)
  mutable frames : int;  (* payload-frame sequence counter *)
  mutable n_requests : int;
  mutable n_responses : int;
  mutable n_shed : int;
  mutable n_cache_hits : int;
  mutable n_cache_misses : int;
  mutable n_cache_evictions : int;
  n_degraded : int Atomic.t;
  n_tree_hits : int Atomic.t;
  n_tree_misses : int Atomic.t;
  t0 : float;  (* session start per the injected clock *)
}

let now st = match st.cfg.clock with Some f -> f () | None -> Sys.time ()

(* Injected-clock timestamp for journal records, in microseconds since
   the session began. *)
let ts_us st = int_of_float ((now st -. st.t0) *. 1e6)

let journal_emit st ~kind ~seq ~code ~disp ~trace payload =
  match st.cfg.journal with
  | None -> ()
  | Some sink ->
      sink.Journal.emit
        {
          Journal.e_kind = kind;
          e_seq = seq;
          e_code = code;
          e_disp = disp;
          e_trace = trace;
          e_ts_us = ts_us st;
          e_payload = payload;
        }

let cache_key cfg req =
  if cfg.cache_max = 0 || req.op = Op_metrics || req.op = Op_status then None
  else begin
    let b = Buffer.create 96 in
    Buffer.add_string b (Digest.to_hex (Digest.string req.system));
    Buffer.add_char b '|';
    (match req.op with
    | Op_eval -> Buffer.add_string b "eval"
    | Op_belief { agent; run; time; samples; seed } ->
        Printf.bprintf b "belief:%d:%d:%d:%d:%d" agent run time
          (Option.value samples ~default:(-1))
          (Option.value seed ~default:(-1))
    | Op_metrics | Op_status -> assert false  (* cache_key returns None above *));
    Buffer.add_char b '|';
    (* Formula component: the engine name plus the formula's closure
       digest when it parses — the digest canonicalizes spelling, so
       differently written but structurally identical queries share a
       cache slot (and closure-identical queries at the same limits are
       subsumed by one computed entry). A formula that does not parse
       keys on its raw text; its request fails in the worker and is
       never cached, so the fallback only disambiguates misses. *)
    Buffer.add_string b (Semantics.engine_name (Semantics.current_engine ()));
    Buffer.add_char b ':';
    (match Parser.parse_result req.formula with
    | Ok f -> Buffer.add_string b (Closure.digest (Closure.of_formula f))
    | Result.Error _ -> Buffer.add_string b req.formula);
    Buffer.add_char b '|';
    let lim = function None -> "-" | Some v -> string_of_int v in
    let l = req.req_limits in
    Printf.bprintf b "%s,%s,%s,%s,%s" (lim l.Budget.max_points)
      (lim l.Budget.max_nodes) (lim l.Budget.max_limbs) (lim l.Budget.max_iters)
      (lim l.Budget.timeout_ms);
    Some (Buffer.contents b)
  end

let cache_put st key body =
  if not (Hashtbl.mem st.results key) then begin
    Hashtbl.add st.results key body;
    Queue.add key st.result_order;
    while Hashtbl.length st.results > st.cfg.cache_max do
      Obs.incr c_cache_evictions;
      st.n_cache_evictions <- st.n_cache_evictions + 1;
      Hashtbl.remove st.results (Queue.pop st.result_order)
    done;
    Atomic.set g_cache_entries (Hashtbl.length st.results)
  end

let tree_of_system st doc =
  let digest = Digest.string doc in
  let cached =
    Mutex.lock st.tree_mutex;
    let r = Hashtbl.find_opt st.trees digest in
    Mutex.unlock st.tree_mutex;
    r
  in
  match cached with
  | Some t ->
      Obs.incr c_tree_hits;
      Atomic.incr st.n_tree_hits;
      t
  | None -> (
      Obs.incr c_tree_misses;
      Atomic.incr st.n_tree_misses;
      match Tree_io.of_string_result doc with
      | Result.Error e -> raise (Error.Error (Error.with_context "system" e))
      | Ok t ->
          Mutex.lock st.tree_mutex;
          if not (Hashtbl.mem st.trees digest) then begin
            Hashtbl.add st.trees digest t;
            Queue.add digest st.tree_order;
            while Hashtbl.length st.trees > st.cfg.tree_cache_max do
              Hashtbl.remove st.trees (Queue.pop st.tree_order)
            done
          end;
          Mutex.unlock st.tree_mutex;
          t)

(* ------------------------------------------------------------------ *)
(* Request execution (worker side)                                     *)
(* ------------------------------------------------------------------ *)

let rec perform st req =
  match req.op with
  | Op_metrics ->
      (* Introspection: render the server's cumulative metrics as
         OpenMetrics text. Never cached — the answer changes with every
         request served. *)
      ok_outcome ~disp:"metrics" req.req_id
        (Printf.sprintf "(code 0) (status ok) (result (openmetrics %s))"
           (quoted (Obs.Openmetrics.render (Obs.Snapshot.capture ()))))
        ~cacheable:false
  | Op_status ->
      (* Answered at enqueue time on the main domain (status_outcome);
         it never reaches a worker. *)
      assert false
  | Op_eval | Op_belief _ -> perform_query st req

and perform_query st req =
  let tree = tree_of_system st req.system in
  let formula =
    match Parser.parse_result req.formula with
    | Ok f -> f
    | Result.Error e -> raise (Error.Error (Error.with_context "formula" e))
  in
  (* Engine-dispatching evaluation, no pool: serve's parallelism is
     across requests (one worker domain each), not within one. *)
  let fact = Semantics.eval_auto tree ~valuation:Semantics.generic_valuation formula in
  match req.op with
  | Op_eval ->
      let sat = ref 0 in
      Tree.iter_points tree (fun ~run ~time ->
          if Fact.holds fact ~run ~time then incr sat);
      let initially = ref (Tree.empty_event tree) in
      for r = 0 to Tree.n_runs tree - 1 do
        if Fact.holds fact ~run:r ~time:0 then
          initially := Bitset.add !initially r
      done;
      let prob = Tree.measure tree !initially in
      ok_outcome req.req_id
        (Printf.sprintf
           "(code 0) (status ok) (result (points %d) (sat %d) (valid %b) (prob %s))"
           (Tree.n_points tree) !sat
           (!sat = Tree.n_points tree)
           (Q.to_string prob))
        ~cacheable:true
  | Op_belief { agent; run; time; samples; seed } ->
      let bound name v hi =
        if v < 0 || v >= hi then
          raise
            (Error.Error
               (Error.makef Error.Invalid_system "%s %d out of range [0,%d)"
                  name v hi))
      in
      bound "agent" agent (Tree.n_agents tree);
      bound "run" run (Tree.n_runs tree);
      bound "time" time (Tree.run_length tree run);
      (match Belief.degree_graded ?samples ?seed fact ~agent ~run ~time with
      | Graded.Exact q ->
          ok_outcome req.req_id
            (Printf.sprintf "(code 0) (status ok) (result (degree %s))"
               (Q.to_string q))
            ~cacheable:true
      | Graded.Estimated { value; samples } ->
          Obs.incr c_degraded;
          Atomic.incr st.n_degraded;
          ok_outcome ~disp:"estimated" req.req_id
            (Printf.sprintf
               "(code 0) (status estimated) (result (degree %s) (samples %d))"
               (Q.to_string value) samples)
            ~cacheable:false)
  | Op_metrics | Op_status -> assert false  (* handled in [perform] *)

(* Per-request fault isolation: a fresh budget scope per request, and
   every failure mode folded into an error outcome. Nothing escapes. *)
let execute st ~grace req =
  let eff = merge_limits st.cfg.limits req.req_limits in
  let eff =
    match grace with
    | None -> eff
    | Some (t0, grace_ms) ->
        let elapsed_ms = int_of_float ((now st -. t0) *. 1000.) in
        let remaining = max 0 (grace_ms - elapsed_ms) in
        {
          eff with
          Budget.timeout_ms =
            Some
              (match eff.Budget.timeout_ms with
              | None -> remaining
              | Some t -> min t remaining);
        }
  in
  if eff.Budget.timeout_ms = Some 0 then
    error_outcome req.req_id
      (Error.make Error.Budget_exceeded "drain grace deadline exceeded")
  else
    (* Per-op latency histograms: the (op status) percentiles read these. *)
    let op_span =
      match req.op with
      | Op_eval -> "serve.op.eval"
      | Op_belief _ -> "serve.op.belief"
      | Op_metrics -> "serve.op.metrics"
      | Op_status -> "serve.op.status"
    in
    match
      Budget.with_budget eff (fun () -> Obs.span op_span (fun () -> perform st req))
    with
    | Ok o -> o
    | Result.Error e -> error_outcome req.req_id e
    | exception Error.Error e -> error_outcome req.req_id e
    | exception exn -> (
        match Error.of_exn exn with
        | Some e -> error_outcome req.req_id e
        | None -> internal_outcome req.req_id exn)

let process st ~grace req =
  (* The trace context rides its own DLS slot, so it survives the
     span-stack detach in pooled drains and every span this request
     opens carries its id in the Chrome trace. *)
  let compute () =
    Obs.with_trace_context req.req_trace (fun () ->
        Obs.span "serve.request" (fun () -> execute st ~grace req))
  in
  let o =
    if req.want_metrics then begin
      let o, delta = Obs.Snapshot.diff_capture compute in
      { o with out_metrics = render_metrics ~trace:req.req_trace delta }
    end
    else compute ()
  in
  { o with out_trace = req.req_trace; out_seq = req.req_seq }

(* ------------------------------------------------------------------ *)
(* (op status): live introspection (main-domain side)                  *)
(* ------------------------------------------------------------------ *)

(* Answered synchronously at enqueue time: never queued, never shed,
   never cached. Everything in (result ...) is a pure function of the
   input stream so far — byte-identical at every --jobs. The trailing
   (metrics (latencies ...)) group reads wall-clock histograms, which
   is why it lives under (metrics ...): replay diffs responses modulo
   that field. [uptime-ticks] is the logical clock — payload frames
   received — not wall time, for the same determinism reason. *)
let status_outcome st req =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "(code 0) (status ok) (result (uptime-ticks %d) (pending %d) (requests %d) \
     (responses %d) (shed %d) (degraded %d)"
    st.frames st.live st.n_requests st.n_responses st.n_shed
    (Atomic.get st.n_degraded);
  Printf.bprintf b
    " (cache (entries %d) (capacity %d) (hits %d) (misses %d) (evictions %d))"
    (Hashtbl.length st.results)
    st.cfg.cache_max st.n_cache_hits st.n_cache_misses st.n_cache_evictions;
  let tree_entries =
    Mutex.lock st.tree_mutex;
    let n = Hashtbl.length st.trees in
    Mutex.unlock st.tree_mutex;
    n
  in
  Printf.bprintf b
    " (tree-cache (entries %d) (capacity %d) (hits %d) (misses %d))"
    tree_entries st.cfg.tree_cache_max
    (Atomic.get st.n_tree_hits)
    (Atomic.get st.n_tree_misses);
  (match st.cfg.journal with
  | None -> Buffer.add_string b " (journal none)"
  | Some s ->
      Printf.bprintf b " (journal (position %d) (rotations %d))"
        (s.Journal.position ()) (s.Journal.rotations ()));
  Buffer.add_string b ")";
  let snap = Obs.Snapshot.capture () in
  Buffer.add_string b " (metrics (latencies";
  List.iter
    (fun (n, counts) ->
      if String.length n >= 6 && String.sub n 0 6 = "serve." then
        Printf.bprintf b
          " (%s (count %d) (p50-ns %.0f) (p90-ns %.0f) (p99-ns %.0f))" n
          (Obs.total_count counts) (Obs.percentile counts 50.)
          (Obs.percentile counts 90.) (Obs.percentile counts 99.))
    snap.Obs.Snapshot.histograms;
  Buffer.add_string b "))";
  {
    (ok_outcome ~disp:"status" req.req_id (Buffer.contents b) ~cacheable:false) with
    out_trace = req.req_trace;
    out_seq = req.req_seq;
  }

(* ------------------------------------------------------------------ *)
(* Queue, drain, shed                                                  *)
(* ------------------------------------------------------------------ *)

let write_response st o =
  Obs.incr c_responses;
  st.n_responses <- st.n_responses + 1;
  let text = render_response o in
  journal_emit st ~kind:Journal.Response ~seq:o.out_seq ~code:o.out_code
    ~disp:o.out_disp ~trace:o.out_trace text;
  st.write_frame text

let enqueue st ~seq = function
  | Item_bad (id, msg, trace) ->
      Queue.add
        (P_done
           { (bad_request_outcome id msg) with out_trace = trace; out_seq = seq })
        st.q
  | Item_req req -> (
      Obs.incr c_requests;
      st.n_requests <- st.n_requests + 1;
      if req.op = Op_status then
        (* Introspection is answered inline: never queued (so it can
           report pending depth), never shed (so it works under load),
           never cached. *)
        Queue.add (P_done (status_outcome st req)) st.q
      else if st.live >= st.cfg.max_pending then begin
        Obs.incr c_shed;
        st.n_shed <- st.n_shed + 1;
        Queue.add
          (P_done
             {
               (overloaded_outcome st.cfg req.req_id) with
               out_trace = req.req_trace;
               out_seq = seq;
             })
          st.q
      end
      else
        let key = cache_key st.cfg req in
        match key with
        | Some k when Hashtbl.mem st.results k ->
            Obs.incr c_cache_hits;
            st.n_cache_hits <- st.n_cache_hits + 1;
            Queue.add
              (P_done
                 {
                   out_id = req.req_id;
                   out_body = Hashtbl.find st.results k;
                   out_metrics = "";
                   out_cacheable = false;
                   out_trace = req.req_trace;
                   out_code = 0;
                   out_disp = "cache-hit";
                   out_seq = seq;
                 })
              st.q
        | _ ->
            if key <> None then begin
              Obs.incr c_cache_misses;
              st.n_cache_misses <- st.n_cache_misses + 1
            end;
            st.live <- st.live + 1;
            Atomic.set g_pending st.live;
            Queue.add (P_live (req, key)) st.q)

let drain st ~final =
  if not (Queue.is_empty st.q) then begin
    Obs.incr c_drains;
    Obs.span "serve.drain" (fun () ->
        let entries = Array.make (Queue.length st.q) (P_done (protocol_outcome "")) in
        let n = Array.length entries in
        for i = 0 to n - 1 do
          entries.(i) <- Queue.pop st.q
        done;
        st.live <- 0;
        Atomic.set g_pending 0;
        let grace =
          if final then
            match st.cfg.drain_ms with
            | Some ms -> Some (now st, ms)
            | None -> None
          else None
        in
        let live_ix = ref [] in
        Array.iteri
          (fun i e -> match e with P_live _ -> live_ix := i :: !live_ix | P_done _ -> ())
          entries;
        let ixs = Array.of_list (List.rev !live_ix) in
        let compute i =
          match entries.(i) with
          | P_live (req, _) -> (i, process st ~grace req)
          | P_done _ -> assert false
        in
        let outcomes =
          match st.pool with
          | Some pool when Array.length ixs > 1 ->
              (* A pool task may be claimed by a worker (empty span
                 stack) or by the caller (inside serve.drain): detach
                 the span stack so every pooled request records the
                 same root-level serve.request path and the span tree
                 stays deterministic at every job count. *)
              Pool.map pool (fun i -> Obs.span_detach (fun () -> compute i)) ixs
          | _ -> Array.map compute ixs
        in
        let resolved = Hashtbl.create (max 1 (Array.length outcomes)) in
        Array.iter (fun (i, o) -> Hashtbl.replace resolved i o) outcomes;
        Array.iteri
          (fun i e ->
            match e with
            | P_done o -> write_response st o
            | P_live (_, key) ->
                let o = Hashtbl.find resolved i in
                (match key with
                | Some k when o.out_cacheable -> cache_put st k o.out_body
                | _ -> ());
                write_response st o)
          entries)
  end

(* ------------------------------------------------------------------ *)
(* The request loop                                                    *)
(* ------------------------------------------------------------------ *)

exception Client_gone

let run cfg ~source ~write =
  match validate_config cfg with
  | Result.Error _ -> 3
  | Ok () ->
      let rd = Frame.reader ~max_frame:cfg.max_frame source in
      let write_frame text =
        try write (Frame.encode text) with Sys_error _ -> raise Client_gone
      in
      let st =
        {
          cfg;
          pool = (if cfg.jobs > 1 then Some (Pool.create ~jobs:cfg.jobs) else None);
          q = Queue.create ();
          live = 0;
          trees = Hashtbl.create 8;
          tree_order = Queue.create ();
          tree_mutex = Mutex.create ();
          results = Hashtbl.create 64;
          result_order = Queue.create ();
          write_frame;
          frames = 0;
          n_requests = 0;
          n_responses = 0;
          n_shed = 0;
          n_cache_hits = 0;
          n_cache_misses = 0;
          n_cache_evictions = 0;
          n_degraded = Atomic.make 0;
          n_tree_hits = Atomic.make 0;
          n_tree_misses = Atomic.make 0;
          t0 = (match cfg.clock with Some f -> f () | None -> Sys.time ());
        }
      in
      let batch_threshold = if cfg.batch = 0 then cfg.jobs else cfg.batch in
      let maybe_drain () =
        if Queue.length st.q >= batch_threshold then drain st ~final:false
      in
      (* Streaming telemetry: every [telemetry_every] requests, force a
         drain (so the delta covers whole requests, independent of the
         jobs-dependent batching cadence) and emit one line-delimited
         JSON frame of counter / histogram-total deltas since the last
         frame. The drain-cadence metrics themselves (counter
         serve.drains, histogram serve.drain) are excluded: they track
         scheduling, not work, and differ across --jobs. Everything
         kept is a pure function of the input stream, so frames are
         byte-identical at every job count. *)
      let telemetry_on = cfg.telemetry_every > 0 in
      let series =
        if telemetry_on then Some (Obs.Series.create ~capacity:64) else None
      in
      let tele_reqs = ref 0 in
      let tele_mark = ref 0 in
      let emit_telemetry () =
        match (series, cfg.telemetry) with
        | Some series, Some sink ->
            drain st ~final:false;
            let s = Obs.Series.record series in
            let b = Buffer.create 256 in
            Printf.bprintf b "{\"telemetry\":1,\"seq\":%d,\"requests\":%d"
              s.Obs.Series.s_seq !tele_reqs;
            let obj label skip rows render =
              Printf.bprintf b ",\"%s\":{" label;
              let first = ref true in
              List.iter
                (fun (n, v) ->
                  if n <> skip then begin
                    if not !first then Buffer.add_char b ',';
                    first := false;
                    Printf.bprintf b "\"%s\":%s" n (render v)
                  end)
                rows;
              Buffer.add_char b '}'
            in
            obj "counters" "serve.drains" s.Obs.Series.s_counters
              string_of_int;
            obj "histogram_totals" "serve.drain" s.Obs.Series.s_hist_totals
              string_of_int;
            Buffer.add_char b '}';
            sink (Buffer.contents b)
        | _ -> ()
      in
      let maybe_telemetry () =
        if telemetry_on && !tele_reqs - !tele_mark >= cfg.telemetry_every
        then begin
          tele_mark := !tele_reqs;
          emit_telemetry ()
        end
      in
      let finish reason =
        drain st ~final:true;
        if telemetry_on then emit_telemetry ();
        let bye = Printf.sprintf "(bye (reason %s))" reason in
        journal_emit st ~kind:Journal.Response ~seq:st.frames ~code:0
          ~disp:"bye" ~trace:"" bye;
        write_frame bye;
        0
      in
      let rec loop () =
        match Frame.read rd with
        | Frame.Eof -> finish "eof"
        | Frame.Junk j ->
            Obs.incr c_err_protocol;
            (* Junk does not advance the frame sequence (replay drops
               it and must reproduce the recorded trace ids); the bytes
               themselves are gone, so journal a description. *)
            journal_emit st ~kind:Journal.Request ~seq:st.frames ~code:(-1)
              ~disp:"junk" ~trace:""
              (match j with
              | Frame.Garbage n -> Printf.sprintf "garbage %d" n
              | Frame.Oversized n -> Printf.sprintf "oversized %d" n
              | Frame.Truncated -> "truncated");
            Queue.add (P_done { (junk_outcome j) with out_seq = st.frames }) st.q;
            maybe_drain ();
            loop ()
        | Frame.Payload p -> (
            Obs.incr c_frames;
            st.frames <- st.frames + 1;
            let seq = st.frames in
            journal_emit st ~kind:Journal.Request ~seq ~code:(-1) ~disp:"frame"
              ~trace:(trace_id ~seq ~ix:0 p) p;
            let trace ix = trace_id ~seq ~ix p in
            match Sexp.parse p with
            | Result.Error m ->
                Obs.incr c_err_protocol;
                Queue.add
                  (P_done
                     {
                       (protocol_outcome ("unparsable frame payload: " ^ m)) with
                       out_seq = seq;
                     })
                  st.q;
                maybe_drain ();
                loop ()
            | Ok sx -> (
                match parse_msg ~seq ~trace sx with
                | Msg_ping id ->
                    Obs.incr c_pings;
                    drain st ~final:false;
                    let pong = Printf.sprintf "(pong (id %d))" id in
                    journal_emit st ~kind:Journal.Response ~seq ~code:0
                      ~disp:"pong" ~trace:"" pong;
                    write_frame pong;
                    loop ()
                | Msg_shutdown -> finish "shutdown"
                | Msg_items (items, is_batch) ->
                    if is_batch then Obs.incr c_batches;
                    List.iter (enqueue st ~seq) items;
                    List.iter
                      (function Item_req _ -> incr tele_reqs | Item_bad _ -> ())
                      items;
                    maybe_drain ();
                    maybe_telemetry ();
                    loop ()))
      in
      Fun.protect
        ~finally:(fun () ->
          (match st.pool with Some p -> Pool.close p | None -> ());
          Atomic.set g_pending 0)
        (fun () -> try loop () with Client_gone -> 0)

let run_string ?(config = default_config) input =
  let buf = Buffer.create 1024 in
  let code =
    run config ~source:(Frame.source_of_string input)
      ~write:(Buffer.add_string buf)
  in
  (Buffer.contents buf, code)
