open Pak_rational
open Pak_pps
open Pak_logic

module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget
module Error = Pak_guard.Error
module Pool = Pak_par.Pool

let schema_version = 1

let c_certify = Obs.counter "cert.certify_calls"
let c_nodes = Obs.counter "cert.nodes"
let c_points = Obs.counter "cert.points"
let c_gfp = Obs.counter "cert.gfp_iters"
let c_checks = Obs.counter "cert.checks"
let c_check_violations = Obs.counter "cert.check_violations"
let c_claims = Obs.counter "cert.claims"
let c_claim_checks = Obs.counter "cert.claim_checks"
let c_claim_violations = Obs.counter "cert.claim_violations"

type points = (int * int) list

type kcell = {
  kc_agent : int;
  kc_time : int;
  kc_label : string;
  kc_cell : int list;
  kc_holds : bool;
}

type bcell = {
  bc_agent : int;
  bc_time : int;
  bc_label : string;
  bc_cell : int list;
  bc_sat : int list;
  bc_cell_measure : Q.t;
  bc_sat_measure : Q.t;
  bc_degree : Q.t;
  bc_holds : bool;
}

type evidence =
  | Direct
  | Knowledge of kcell list
  | Belief of bcell list
  | Fixpoint of points list

type node = {
  formula : Formula.t;
  points : points;
  evidence : evidence;
  children : node list;
}

type t = {
  version : int;
  n_agents : int;
  n_runs : int;
  n_points : int;
  root : node;
}

type violation = { path : string; formula : string; reason : string }

let pp_violation fmt v =
  Format.fprintf fmt "certificate violation at %s (%s): %s" v.path v.formula v.reason

let violation_to_string v = Format.asprintf "%a" pp_violation v

(* Span label per connective, mirroring the semantics' op tags so the
   JSON "kind" field and the trace labels agree. *)
let kind_of : Formula.t -> string = function
  | True -> "true"
  | False -> "false"
  | Atom _ -> "atom"
  | Not _ -> "not"
  | And _ -> "and"
  | Or _ -> "or"
  | Implies _ -> "implies"
  | Iff _ -> "iff"
  | Does _ -> "does"
  | Eventually _ -> "eventually"
  | Globally _ -> "globally"
  | Next _ -> "next"
  | Once _ -> "once"
  | Historically _ -> "historically"
  | Knows _ -> "K"
  | Believes _ -> "B"
  | EveryoneKnows _ -> "E"
  | CommonKnows _ -> "C"
  | EveryoneBelieves _ -> "Ep"
  | CommonBelief _ -> "CB"

let points_of fact =
  let tree = Fact.tree fact in
  List.rev
    (Tree.fold_points tree ~init:[] ~f:(fun acc ~run ~time ->
         if Fact.holds fact ~run ~time then (run, time) :: acc else acc))

let facts_equal tree a b =
  Tree.fold_points tree ~init:true ~f:(fun acc ~run ~time ->
      acc && Fact.holds a ~run ~time = Fact.holds b ~run ~time)

(* The same iteration as [Semantics.gfp], additionally recording every
   approximant's point set. The trace length equals the number of
   gfp-iteration counter bumps [eval] performs on the same formula. *)
let gfp_trace tree step =
  let rec iterate x trace =
    Obs.incr c_gfp;
    Budget.charge_iters 1;
    let x' = step x in
    let trace = points_of x' :: trace in
    if facts_equal tree x x' then (x, List.rev trace) else iterate x' trace
  in
  iterate (Fact.tt tree) []

let kcells_of tree ~agent inner =
  List.map
    (fun key ->
      let time = Tree.lkey_time key in
      let cell = Tree.lstate_runs tree key in
      {
        kc_agent = agent;
        kc_time = time;
        kc_label = Tree.lkey_label key;
        kc_cell = Bitset.to_list cell;
        kc_holds = Bitset.for_all (fun run -> Fact.holds inner ~run ~time) cell;
      })
    (Tree.lstates tree ~agent)

let bcells_of tree ~agent ~cmp ~threshold inner =
  List.map
    (fun key ->
      let cell = Tree.lstate_runs tree key in
      let sat = Fact.at_lstate inner key in
      let cell_measure = Tree.measure tree cell in
      let sat_measure = Tree.measure tree sat in
      let degree = Belief.degree_at_lstate inner key in
      {
        bc_agent = agent;
        bc_time = Tree.lkey_time key;
        bc_label = Tree.lkey_label key;
        bc_cell = Bitset.to_list cell;
        bc_sat = Bitset.to_list sat;
        bc_cell_measure = cell_measure;
        bc_sat_measure = sat_measure;
        bc_degree = degree;
        bc_holds = Semantics.satisfies_cmp cmp degree threshold;
      })
    (Tree.lstates tree ~agent)

let group_agents grp = List.sort_uniq Stdlib.compare grp

let certify tree ~valuation formula =
  Obs.incr c_certify;
  Obs.span "cert.certify" @@ fun () ->
  let check_agent i =
    if i < 0 || i >= Tree.n_agents tree then
      invalid_arg (Printf.sprintf "Cert.certify: agent %d out of range" i)
  in
  let check_group = function
    | [] -> invalid_arg "Cert.certify: empty agent group"
    | g -> g
  in
  let memo : (Formula.t, node * Fact.t) Hashtbl.t = Hashtbl.create 32 in
  let rec go (f : Formula.t) : node * Fact.t =
    match Hashtbl.find_opt memo f with
    | Some res -> res
    | None ->
      let res = build f in
      Hashtbl.add memo f res;
      res
  and build f =
    let mk ?(evidence = Direct) fact children =
      let points = points_of fact in
      Obs.incr c_nodes;
      Obs.add c_points (List.length points);
      ({ formula = f; points; evidence; children }, fact)
    in
    match f with
    | Formula.True -> mk (Fact.tt tree) []
    | False -> mk (Fact.ff tree) []
    | Atom a -> mk (Fact.of_state_pred tree (valuation a)) []
    | Not g ->
      let n, fg = go g in
      mk (Fact.not_ fg) [ n ]
    | And (a, b) ->
      let na, fa = go a and nb, fb = go b in
      mk (Fact.and_ fa fb) [ na; nb ]
    | Or (a, b) ->
      let na, fa = go a and nb, fb = go b in
      mk (Fact.or_ fa fb) [ na; nb ]
    | Implies (a, b) ->
      let na, fa = go a and nb, fb = go b in
      mk (Fact.implies fa fb) [ na; nb ]
    | Iff (a, b) ->
      let na, fa = go a and nb, fb = go b in
      mk (Fact.iff fa fb) [ na; nb ]
    | Does (i, act) ->
      check_agent i;
      mk (Fact.does tree ~agent:i ~act) []
    | Eventually g ->
      let n, fg = go g in
      mk (Fact.eventually fg) [ n ]
    | Globally g ->
      let n, fg = go g in
      mk (Fact.globally fg) [ n ]
    | Next g ->
      let n, fg = go g in
      mk (Fact.next fg) [ n ]
    | Once g ->
      let n, fg = go g in
      mk (Fact.once fg) [ n ]
    | Historically g ->
      let n, fg = go g in
      mk (Fact.historically fg) [ n ]
    | Knows (i, g) ->
      check_agent i;
      let n, fg = go g in
      let fact = Semantics.knows_fact tree ~agent:i fg in
      mk ~evidence:(Knowledge (kcells_of tree ~agent:i fg)) fact [ n ]
    | Believes (i, cmp, threshold, g) ->
      check_agent i;
      let n, fg = go g in
      let fact = Semantics.believes_fact tree ~agent:i ~cmp ~threshold fg in
      mk ~evidence:(Belief (bcells_of tree ~agent:i ~cmp ~threshold fg)) fact [ n ]
    | EveryoneKnows (grp, g) ->
      let grp = check_group grp in
      List.iter check_agent grp;
      let n, fg = go g in
      let fact =
        Fact.conj tree (List.map (fun i -> Semantics.knows_fact tree ~agent:i fg) grp)
      in
      let cells =
        List.concat_map (fun i -> kcells_of tree ~agent:i fg) (group_agents grp)
      in
      mk ~evidence:(Knowledge cells) fact [ n ]
    | CommonKnows (grp, g) ->
      let grp = check_group grp in
      List.iter check_agent grp;
      let n, fg = go g in
      let fact, trace =
        gfp_trace tree (fun x ->
            let body = Fact.and_ fg x in
            Fact.conj tree
              (List.map (fun i -> Semantics.knows_fact tree ~agent:i body) grp))
      in
      mk ~evidence:(Fixpoint trace) fact [ n ]
    | EveryoneBelieves (grp, threshold, g) ->
      let grp = check_group grp in
      List.iter check_agent grp;
      let n, fg = go g in
      let fact =
        Fact.conj tree
          (List.map
             (fun i ->
               Semantics.believes_fact tree ~agent:i ~cmp:Formula.Geq ~threshold fg)
             grp)
      in
      let cells =
        List.concat_map
          (fun i -> bcells_of tree ~agent:i ~cmp:Formula.Geq ~threshold fg)
          (group_agents grp)
      in
      mk ~evidence:(Belief cells) fact [ n ]
    | CommonBelief (grp, threshold, g) ->
      let grp = check_group grp in
      List.iter check_agent grp;
      let n, fg = go g in
      let ep fact =
        Fact.conj tree
          (List.map
             (fun i ->
               Semantics.believes_fact tree ~agent:i ~cmp:Formula.Geq ~threshold fact)
             grp)
      in
      let base = ep fg in
      let fact, trace = gfp_trace tree (fun x -> Fact.and_ base (ep x)) in
      mk ~evidence:(Fixpoint trace) fact [ n ]
  in
  (* The closure table is the certificate skeleton: its entries list
     every distinct subformula children-before-parents, so walking it
     in bit order certifies bottom-up — each [go] finds its children
     already memoized, and the final [go formula] just reads the root
     entry back. Node structure, sharing and JSON are identical to the
     plain recursive descent (the memo is keyed the same way); the
     table only fixes the construction schedule, which is what lets
     the certificate mirror the vectorized engine's evaluation order. *)
  Array.iter
    (fun (e : Closure.entry) -> ignore (go e.formula))
    (Closure.entries (Closure.of_formula formula));
  let root, _fact = go formula in
  {
    version = schema_version;
    n_agents = Tree.n_agents tree;
    n_runs = Tree.n_runs tree;
    n_points = Tree.n_points tree;
    root;
  }

let certify_result tree ~valuation formula =
  match certify tree ~valuation formula with
  | c -> Ok c
  | exception Invalid_argument msg -> Result.Error (Error.make Error.Invalid_system msg)

(* ------------------------------------------------------------------ *)
(* Independent checking                                                *)
(* ------------------------------------------------------------------ *)

exception Violation of violation

let holds_at cert ~run ~time = List.mem (run, time) cert.root.points

let size cert =
  let rec count (n : node) = List.fold_left (fun acc c -> acc + count c) 1 n.children in
  count cert.root

let expected_children : Formula.t -> Formula.t list = function
  | True | False | Atom _ | Does _ -> []
  | Not g | Eventually g | Globally g | Next g | Once g | Historically g
  | Knows (_, g)
  | Believes (_, _, _, g)
  | EveryoneKnows (_, g)
  | CommonKnows (_, g)
  | EveryoneBelieves (_, _, g)
  | CommonBelief (_, _, g) ->
    [ g ]
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> [ a; b ]

let check ?valuation tree cert =
  Obs.incr c_checks;
  Obs.span "cert.check" @@ fun () ->
  let fail path formula reason =
    raise (Violation { path; formula = Formula.to_string formula; reason })
  in
  let failf path formula fmt = Printf.ksprintf (fail path formula) fmt in
  let n_runs = Tree.n_runs tree in
  let validate_points path f pts =
    let rec go prev = function
      | [] -> ()
      | (r, t) :: rest ->
        if r < 0 || r >= n_runs then
          failf path f "point (%d,%d): run index out of range" r t;
        if t < 0 || t >= Tree.run_length tree r then
          failf path f "point (%d,%d): time out of range for the run" r t;
        (match prev with
        | Some (pr, pt) when not (pr < r || (pr = r && pt < t)) ->
          failf path f "point list not strictly increasing at (%d,%d)" r t
        | _ -> ());
        go (Some (r, t)) rest
    in
    go None pts
  in
  let pset_of pts =
    let h = Hashtbl.create (List.length pts * 2 + 1) in
    List.iter (fun p -> Hashtbl.replace h p ()) pts;
    h
  in
  let pmem h run time = Hashtbl.mem h (run, time) in
  let assert_pointwise path f pset pred =
    Tree.iter_points tree (fun ~run ~time ->
        let recorded = pmem pset run time in
        let derived = pred ~run ~time in
        if recorded <> derived then
          failf path f
            "point (%d,%d): certificate records the subformula as %s but re-derivation says %s"
            run time
            (if recorded then "holding" else "not holding")
            (if derived then "holding" else "not holding"))
  in
  let check_agent path f i =
    if i < 0 || i >= Tree.n_agents tree then
      failf path f "agent %d out of range (system has %d agents)" i (Tree.n_agents tree)
  in
  let check_group path f grp =
    if grp = [] then failf path f "empty agent group";
    List.iter (check_agent path f) grp;
    group_agents grp
  in
  (* Exact coverage: one cell per (agent, local state), no extras. *)
  let check_coverage path f agents keys =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun ((a, time, label) as key) ->
        if Hashtbl.mem seen key then
          failf path f "duplicate evidence cell for agent %d local state (t=%d, %S)" a time
            label;
        Hashtbl.add seen key ())
      keys;
    List.iter
      (fun i ->
        List.iter
          (fun lk ->
            let key = (i, Tree.lkey_time lk, Tree.lkey_label lk) in
            if not (Hashtbl.mem seen key) then
              failf path f "missing evidence cell for agent %d local state (t=%d, %S)" i
                (Tree.lkey_time lk) (Tree.lkey_label lk);
            Hashtbl.remove seen key)
          (Tree.lstates tree ~agent:i))
      agents;
    Hashtbl.iter
      (fun (a, time, label) () ->
        failf path f "evidence cell for unknown agent/local state: agent %d, (t=%d, %S)" a
          time label)
      seen
  in
  (* Truth of a per-local-state table at a point: look the agent's local
     state up. The coverage check above guarantees presence. *)
  let table_pred tables ~run ~time =
    List.for_all
      (fun (i, h) ->
        let key = Tree.lkey tree ~agent:i ~run ~time in
        match Hashtbl.find_opt h (Tree.lkey_time key, Tree.lkey_label key) with
        | Some b -> b
        | None -> false)
      tables
  in
  (* Re-derived evidence tables for one fixpoint step. *)
  let know_tables agents member =
    List.map
      (fun i ->
        let h = Hashtbl.create 16 in
        List.iter
          (fun lk ->
            let time = Tree.lkey_time lk in
            let ok =
              Bitset.for_all (fun r -> member ~run:r ~time) (Tree.lstate_runs tree lk)
            in
            Hashtbl.replace h (time, Tree.lkey_label lk) ok)
          (Tree.lstates tree ~agent:i);
        (i, h))
      agents
  in
  let believe_tables agents threshold member =
    List.map
      (fun i ->
        let h = Hashtbl.create 16 in
        List.iter
          (fun lk ->
            let time = Tree.lkey_time lk in
            let cell = Tree.lstate_runs tree lk in
            let sat = Bitset.filter (fun r -> member ~run:r ~time) cell in
            let degree = Q.div (Tree.measure tree sat) (Tree.measure tree cell) in
            Hashtbl.replace h (time, Tree.lkey_label lk) (Q.geq degree threshold))
          (Tree.lstates tree ~agent:i);
        (i, h))
      agents
  in
  let all_points =
    List.rev
      (Tree.fold_points tree ~init:[] ~f:(fun acc ~run ~time -> (run, time) :: acc))
  in
  let check_kcells path f agents child_pset cells =
    check_coverage path f agents
      (List.map (fun kc -> (kc.kc_agent, kc.kc_time, kc.kc_label)) cells);
    let tables = List.map (fun i -> (i, Hashtbl.create 16)) agents in
    List.iter
      (fun kc ->
        let lk = Tree.lkey_make ~agent:kc.kc_agent ~time:kc.kc_time ~label:kc.kc_label in
        let cell = Tree.lstate_runs tree lk in
        if Bitset.to_list cell <> kc.kc_cell then
          failf path f
            "K-cell for agent %d (t=%d, %S): recorded runs do not match the tree's indistinguishability cell"
            kc.kc_agent kc.kc_time kc.kc_label;
        let holds = Bitset.for_all (fun r -> pmem child_pset r kc.kc_time) cell in
        if holds <> kc.kc_holds then
          failf path f
            "K-cell for agent %d (t=%d, %S): recorded holds=%b but the inner formula %s at every run of the cell"
            kc.kc_agent kc.kc_time kc.kc_label kc.kc_holds
            (if holds then "does hold" else "does not hold");
        Hashtbl.replace (List.assoc kc.kc_agent tables) (kc.kc_time, kc.kc_label)
          kc.kc_holds)
      cells;
    tables
  in
  let check_bcells path f agents ~cmp ~threshold child_pset cells =
    check_coverage path f agents
      (List.map (fun bc -> (bc.bc_agent, bc.bc_time, bc.bc_label)) cells);
    let tables = List.map (fun i -> (i, Hashtbl.create 16)) agents in
    List.iter
      (fun bc ->
        let lk = Tree.lkey_make ~agent:bc.bc_agent ~time:bc.bc_time ~label:bc.bc_label in
        let cell = Tree.lstate_runs tree lk in
        if Bitset.to_list cell <> bc.bc_cell then
          failf path f
            "B-cell for agent %d (t=%d, %S): recorded conditioning cell does not match the tree"
            bc.bc_agent bc.bc_time bc.bc_label;
        let sat = Bitset.filter (fun r -> pmem child_pset r bc.bc_time) cell in
        if Bitset.to_list sat <> bc.bc_sat then
          failf path f
            "B-cell for agent %d (t=%d, %S): recorded satisfying runs do not match the inner formula"
            bc.bc_agent bc.bc_time bc.bc_label;
        let cell_measure = Tree.measure tree cell in
        let sat_measure = Tree.measure tree sat in
        if not (Q.equal cell_measure bc.bc_cell_measure) then
          failf path f "B-cell for agent %d (t=%d, %S): µ(cell) is %s, certificate says %s"
            bc.bc_agent bc.bc_time bc.bc_label (Q.to_string cell_measure)
            (Q.to_string bc.bc_cell_measure);
        if not (Q.equal sat_measure bc.bc_sat_measure) then
          failf path f "B-cell for agent %d (t=%d, %S): µ(ϕ@ℓ) is %s, certificate says %s"
            bc.bc_agent bc.bc_time bc.bc_label (Q.to_string sat_measure)
            (Q.to_string bc.bc_sat_measure);
        let degree = Q.div sat_measure cell_measure in
        if not (Q.equal degree bc.bc_degree) then
          failf path f
            "B-cell for agent %d (t=%d, %S): degree of belief is %s, certificate says %s"
            bc.bc_agent bc.bc_time bc.bc_label (Q.to_string degree)
            (Q.to_string bc.bc_degree);
        let holds = Semantics.satisfies_cmp cmp degree threshold in
        if holds <> bc.bc_holds then
          failf path f
            "B-cell for agent %d (t=%d, %S): threshold comparison re-derives to %b, certificate says %b"
            bc.bc_agent bc.bc_time bc.bc_label holds bc.bc_holds;
        Hashtbl.replace (List.assoc bc.bc_agent tables) (bc.bc_time, bc.bc_label)
          bc.bc_holds)
      cells;
    tables
  in
  let check_fixpoint path f node_pts iters step =
    if iters = [] then failf path f "fixpoint evidence records no iterations";
    List.iter (validate_points path f) iters;
    let prev = ref (pset_of all_points) in
    List.iteri
      (fun k pts ->
        Budget.charge_iters 1;
        let pset = pset_of pts in
        let derived = step (fun ~run ~time -> pmem !prev run time) in
        Tree.iter_points tree (fun ~run ~time ->
            if pmem pset run time <> derived ~run ~time then
              failf path f
                "fixpoint iteration %d: recorded approximant differs from the re-computed step at point (%d,%d)"
                (k + 1) run time);
        prev := pset)
      iters;
    let n = List.length iters in
    let last = List.nth iters (n - 1) in
    let before_last = if n = 1 then all_points else List.nth iters (n - 2) in
    if last <> before_last then
      failf path f
        "fixpoint evidence is not terminated: the last two approximants differ (not a fixed point)";
    if node_pts <> last then
      failf path f "node point set differs from the final fixpoint approximant"
  in
  let checked : (Formula.t, node * (int * int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  let rec check_node path (n : node) : (int * int, unit) Hashtbl.t =
    match Hashtbl.find_opt checked n.formula with
    (* Certify shares subtrees for repeated subformulas; re-checking a
       physically identical node would repeat identical work. A node
       that merely *claims* an already-checked formula is still checked
       in full. *)
    | Some (n0, pset) when n0 == n -> pset
    | _ ->
      let pset = check_node_uncached path n in
      Hashtbl.replace checked n.formula (n, pset);
      pset
  and check_node_uncached path (n : node) =
    let f = n.formula in
    validate_points path f n.points;
    let expected = expected_children f in
    if List.length n.children <> List.length expected then
      failf path f "expected %d children, certificate has %d" (List.length expected)
        (List.length n.children);
    List.iteri
      (fun i ((child : node), ef) ->
        if not (Formula.equal child.formula ef) then
          failf path f "child %d carries formula %s, expected subformula %s" i
            (Formula.to_string child.formula)
            (Formula.to_string ef))
      (List.combine n.children expected);
    let child_psets =
      List.mapi (fun i c -> check_node (path ^ "." ^ string_of_int i) c) n.children
    in
    let pset = pset_of n.points in
    let direct pred =
      (match n.evidence with
      | Direct -> ()
      | _ -> failf path f "unexpected evidence kind for a %s node" (kind_of f));
      match pred with Some pred -> assert_pointwise path f pset pred | None -> ()
    in
    let child_pset i = List.nth child_psets i in
    (match f with
    | True -> direct (Some (fun ~run:_ ~time:_ -> true))
    | False -> direct (Some (fun ~run:_ ~time:_ -> false))
    | Atom a ->
      direct
        (match valuation with
        | None -> None (* leaf trusted when the valuation is not supplied *)
        | Some v ->
          Some
            (fun ~run ~time ->
              v a (Tree.node_state tree (Tree.run_node tree ~run ~time))))
    | Not _ ->
      let c = child_pset 0 in
      direct (Some (fun ~run ~time -> not (pmem c run time)))
    | And _ ->
      let a = child_pset 0 and b = child_pset 1 in
      direct (Some (fun ~run ~time -> pmem a run time && pmem b run time))
    | Or _ ->
      let a = child_pset 0 and b = child_pset 1 in
      direct (Some (fun ~run ~time -> pmem a run time || pmem b run time))
    | Implies _ ->
      let a = child_pset 0 and b = child_pset 1 in
      direct (Some (fun ~run ~time -> (not (pmem a run time)) || pmem b run time))
    | Iff _ ->
      let a = child_pset 0 and b = child_pset 1 in
      direct (Some (fun ~run ~time -> pmem a run time = pmem b run time))
    | Does (i, act) ->
      check_agent path f i;
      direct
        (Some (fun ~run ~time -> Tree.action_at tree ~agent:i ~run ~time = Some act))
    | Eventually _ ->
      let c = child_pset 0 in
      let flags =
        Array.init n_runs (fun r ->
            let len = Tree.run_length tree r in
            let rec ex t = t < len && (pmem c r t || ex (t + 1)) in
            ex 0)
      in
      direct (Some (fun ~run ~time:_ -> flags.(run)))
    | Globally _ ->
      let c = child_pset 0 in
      let flags =
        Array.init n_runs (fun r ->
            let len = Tree.run_length tree r in
            let rec all t = t >= len || (pmem c r t && all (t + 1)) in
            all 0)
      in
      direct (Some (fun ~run ~time:_ -> flags.(run)))
    | Next _ ->
      let c = child_pset 0 in
      direct
        (Some
           (fun ~run ~time ->
             time + 1 < Tree.run_length tree run && pmem c run (time + 1)))
    | Once _ ->
      let c = child_pset 0 in
      direct
        (Some
           (fun ~run ~time ->
             let rec ex t = t >= 0 && (pmem c run t || ex (t - 1)) in
             ex time))
    | Historically _ ->
      let c = child_pset 0 in
      direct
        (Some
           (fun ~run ~time ->
             let rec all t = t < 0 || (pmem c run t && all (t - 1)) in
             all time))
    | Knows _ | EveryoneKnows _ -> (
      let agents =
        match f with
        | Knows (i, _) ->
          check_agent path f i;
          [ i ]
        | EveryoneKnows (grp, _) -> check_group path f grp
        | _ -> assert false
      in
      match n.evidence with
      | Knowledge cells ->
        let tables = check_kcells path f agents (child_pset 0) cells in
        assert_pointwise path f pset (table_pred tables)
      | _ -> failf path f "expected knowledge-cell evidence for a %s node" (kind_of f))
    | Believes (_, _, _, _) | EveryoneBelieves (_, _, _) -> (
      let agents, cmp, threshold =
        match f with
        | Believes (i, cmp, q, _) ->
          check_agent path f i;
          ([ i ], cmp, q)
        | EveryoneBelieves (grp, q, _) -> (check_group path f grp, Formula.Geq, q)
        | _ -> assert false
      in
      match n.evidence with
      | Belief cells ->
        let tables = check_bcells path f agents ~cmp ~threshold (child_pset 0) cells in
        assert_pointwise path f pset (table_pred tables)
      | _ -> failf path f "expected belief-cell evidence for a %s node" (kind_of f))
    | CommonKnows (grp, _) -> (
      let agents = check_group path f grp in
      match n.evidence with
      | Fixpoint iters ->
        let c = child_pset 0 in
        check_fixpoint path f n.points iters (fun x ->
            let tables =
              know_tables agents (fun ~run ~time -> pmem c run time && x ~run ~time)
            in
            table_pred tables)
      | _ -> failf path f "expected fixpoint evidence for a C node")
    | CommonBelief (grp, threshold, _) -> (
      let agents = check_group path f grp in
      match n.evidence with
      | Fixpoint iters ->
        let c = child_pset 0 in
        let base =
          let tables =
            believe_tables agents threshold (fun ~run ~time -> pmem c run time)
          in
          let pred = table_pred tables in
          let h = Hashtbl.create 64 in
          Tree.iter_points tree (fun ~run ~time ->
              if pred ~run ~time then Hashtbl.replace h (run, time) ());
          h
        in
        check_fixpoint path f n.points iters (fun x ->
            let tables = believe_tables agents threshold x in
            let pred = table_pred tables in
            fun ~run ~time -> pmem base run time && pred ~run ~time)
      | _ -> failf path f "expected fixpoint evidence for a CB node"));
    pset
  in
  try
    if cert.version <> schema_version then
      failf "root" cert.root.formula "certificate schema version %d, this checker expects %d"
        cert.version schema_version;
    if cert.n_agents <> Tree.n_agents tree then
      failf "root" cert.root.formula "certificate is for %d agents, the system has %d"
        cert.n_agents (Tree.n_agents tree);
    if cert.n_runs <> Tree.n_runs tree then
      failf "root" cert.root.formula "certificate is for %d runs, the system has %d"
        cert.n_runs (Tree.n_runs tree);
    if cert.n_points <> Tree.n_points tree then
      failf "root" cert.root.formula "certificate is for %d points, the system has %d"
        cert.n_points (Tree.n_points tree);
    ignore (check_node "root" cert.root);
    Ok ()
  with Violation v ->
    Obs.incr c_check_violations;
    Result.Error v

(* ------------------------------------------------------------------ *)
(* JSON serialization                                                  *)
(* ------------------------------------------------------------------ *)

let add_jstring buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_ints buf l =
  Buffer.add_char buf '[';
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int n))
    l;
  Buffer.add_char buf ']'

let add_points buf pts =
  Buffer.add_char buf '[';
  List.iteri
    (fun i (r, t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%d]" r t))
    pts;
  Buffer.add_char buf ']'

let add_q buf q = add_jstring buf (Q.to_string q)

let to_json cert =
  let buf = Buffer.create 4096 in
  let rec add_node (n : node) =
    Buffer.add_string buf "{\"formula\":";
    add_jstring buf (Formula.to_string n.formula);
    Buffer.add_string buf ",\"kind\":";
    add_jstring buf (kind_of n.formula);
    Buffer.add_string buf ",\"points\":";
    add_points buf n.points;
    (match n.evidence with
    | Direct -> ()
    | Knowledge cells ->
      Buffer.add_string buf ",\"evidence\":{\"type\":\"knowledge\",\"cells\":[";
      List.iteri
        (fun i kc ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "{\"agent\":%d,\"time\":%d,\"label\":" kc.kc_agent kc.kc_time);
          add_jstring buf kc.kc_label;
          Buffer.add_string buf ",\"cell\":";
          add_ints buf kc.kc_cell;
          Buffer.add_string buf (Printf.sprintf ",\"holds\":%b}" kc.kc_holds))
        cells;
      Buffer.add_string buf "]}"
    | Belief cells ->
      Buffer.add_string buf ",\"evidence\":{\"type\":\"belief\",\"cells\":[";
      List.iteri
        (fun i bc ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "{\"agent\":%d,\"time\":%d,\"label\":" bc.bc_agent bc.bc_time);
          add_jstring buf bc.bc_label;
          Buffer.add_string buf ",\"cell\":";
          add_ints buf bc.bc_cell;
          Buffer.add_string buf ",\"sat\":";
          add_ints buf bc.bc_sat;
          Buffer.add_string buf ",\"cell_measure\":";
          add_q buf bc.bc_cell_measure;
          Buffer.add_string buf ",\"sat_measure\":";
          add_q buf bc.bc_sat_measure;
          Buffer.add_string buf ",\"degree\":";
          add_q buf bc.bc_degree;
          Buffer.add_string buf (Printf.sprintf ",\"holds\":%b}" bc.bc_holds))
        cells;
      Buffer.add_string buf "]}"
    | Fixpoint iters ->
      Buffer.add_string buf ",\"evidence\":{\"type\":\"fixpoint\",\"iterations\":[";
      List.iteri
        (fun i pts ->
          if i > 0 then Buffer.add_char buf ',';
          add_points buf pts)
        iters;
      Buffer.add_string buf "]}");
    Buffer.add_string buf ",\"children\":[";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        add_node c)
      n.children;
    Buffer.add_string buf "]}"
  in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema_version\":%d,\"system\":{\"agents\":%d,\"runs\":%d,\"points\":%d},\"root\":"
       cert.version cert.n_agents cert.n_runs cert.n_points);
  add_node cert.root;
  Buffer.add_char buf '}';
  Buffer.contents buf

module J = Pak_obs.Obs.Json

exception Decode of string

let jfield o name =
  match List.assoc_opt name o with
  | Some v -> v
  | None -> raise (Decode (Printf.sprintf "missing field %S" name))

let jint = function
  | J.Num f when Float.is_integer f -> int_of_float f
  | _ -> raise (Decode "expected an integer")

let jstr = function J.Str s -> s | _ -> raise (Decode "expected a string")
let jbool = function J.Bool b -> b | _ -> raise (Decode "expected a boolean")
let jarr = function J.Arr l -> l | _ -> raise (Decode "expected an array")
let jobj = function J.Obj o -> o | _ -> raise (Decode "expected an object")

let jq v =
  let s = jstr v in
  try Q.of_string s with
  | Invalid_argument _ -> raise (Decode (Printf.sprintf "malformed rational %S" s))
  | Error.Division_by_zero _ -> raise (Decode (Printf.sprintf "malformed rational %S" s))

let jpoint = function
  | J.Arr [ a; b ] -> (jint a, jint b)
  | _ -> raise (Decode "expected a [run,time] pair")

let jpoints v = List.map jpoint (jarr v)

let kcell_of v =
  let o = jobj v in
  {
    kc_agent = jint (jfield o "agent");
    kc_time = jint (jfield o "time");
    kc_label = jstr (jfield o "label");
    kc_cell = List.map jint (jarr (jfield o "cell"));
    kc_holds = jbool (jfield o "holds");
  }

let bcell_of v =
  let o = jobj v in
  {
    bc_agent = jint (jfield o "agent");
    bc_time = jint (jfield o "time");
    bc_label = jstr (jfield o "label");
    bc_cell = List.map jint (jarr (jfield o "cell"));
    bc_sat = List.map jint (jarr (jfield o "sat"));
    bc_cell_measure = jq (jfield o "cell_measure");
    bc_sat_measure = jq (jfield o "sat_measure");
    bc_degree = jq (jfield o "degree");
    bc_holds = jbool (jfield o "holds");
  }

let rec node_of v =
  let o = jobj v in
  let text = jstr (jfield o "formula") in
  let formula =
    match Parser.parse_result text with
    | Ok f -> f
    | Result.Error e -> raise (Decode (Printf.sprintf "unparseable formula %S: %s" text (Error.to_string e)))
  in
  let kind = jstr (jfield o "kind") in
  if kind <> kind_of formula then
    raise
      (Decode (Printf.sprintf "node kind %S does not match formula %S (%s)" kind text (kind_of formula)));
  let points = jpoints (jfield o "points") in
  let evidence =
    match List.assoc_opt "evidence" o with
    | None -> Direct
    | Some ev -> (
      let eo = jobj ev in
      match jstr (jfield eo "type") with
      | "knowledge" -> Knowledge (List.map kcell_of (jarr (jfield eo "cells")))
      | "belief" -> Belief (List.map bcell_of (jarr (jfield eo "cells")))
      | "fixpoint" -> Fixpoint (List.map jpoints (jarr (jfield eo "iterations")))
      | s -> raise (Decode (Printf.sprintf "unknown evidence type %S" s)))
  in
  let children = List.map node_of (jarr (jfield o "children")) in
  { formula; points; evidence; children }

let of_json_string s =
  match J.parse s with
  | exception J.Bad msg -> Result.Error ("Cert.of_json_string: " ^ msg)
  | v -> (
    try
      let o = jobj v in
      let version = jint (jfield o "schema_version") in
      if version <> schema_version then
        raise
          (Decode (Printf.sprintf "unsupported schema version %d (expected %d)" version schema_version));
      let sys = jobj (jfield o "system") in
      Ok
        {
          version;
          n_agents = jint (jfield sys "agents");
          n_runs = jint (jfield sys "runs");
          n_points = jint (jfield sys "points");
          root = node_of (jfield o "root");
        }
    with Decode msg -> Result.Error ("Cert.of_json_string: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let truncate_text s =
  if String.length s <= 72 then s else String.sub s 0 69 ^ "..."

let pp_int_list fmt l =
  List.iteri (fun i n -> Format.fprintf fmt "%s%d" (if i > 0 then " " else "") n) l

let pp ?depth ?at fmt cert =
  Format.fprintf fmt "certificate (schema %d): system with %d agents, %d runs, %d points@\n"
    cert.version cert.n_agents cert.n_runs cert.n_points;
  (match at with
  | Some (r, t) ->
    Format.fprintf fmt "verdict at (run %d, time %d): %s@\n" r t
      (if List.mem (r, t) cert.root.points then "HOLDS" else "DOES NOT HOLD")
  | None -> ());
  let max_cells = 12 in
  let rec go level (n : node) =
    let indent = String.make (2 * level) ' ' in
    let mark =
      match at with
      | None -> ""
      | Some (r, t) -> if List.mem (r, t) n.points then "  [holds here]" else "  [fails here]"
    in
    Format.fprintf fmt "%s%s  [%d/%d]%s@\n" indent
      (truncate_text (Formula.to_string n.formula))
      (List.length n.points) cert.n_points mark;
    (match n.evidence with
    | Direct -> ()
    | Knowledge cells ->
      let cells' =
        match at with
        | Some (r, t) ->
          List.filter (fun kc -> kc.kc_time = t && List.mem r kc.kc_cell) cells
        | None -> cells
      in
      let total = List.length cells' in
      let shown = List.filteri (fun i _ -> i < max_cells) cells' in
      List.iter
        (fun kc ->
          Format.fprintf fmt "%s  cell agent %d (t=%d, %S): runs {%a} - inner %s@\n" indent
            kc.kc_agent kc.kc_time kc.kc_label pp_int_list kc.kc_cell
            (if kc.kc_holds then "holds throughout" else "fails somewhere"))
        shown;
      if total > max_cells then
        Format.fprintf fmt "%s  ... (%d more cells)@\n" indent (total - max_cells)
    | Belief cells ->
      let cells' =
        match at with
        | Some (r, t) ->
          List.filter (fun bc -> bc.bc_time = t && List.mem r bc.bc_cell) cells
        | None -> cells
      in
      let total = List.length cells' in
      let shown = List.filteri (fun i _ -> i < max_cells) cells' in
      List.iter
        (fun bc ->
          Format.fprintf fmt
            "%s  cell agent %d (t=%d, %S): µ(cell)=%s µ(ϕ@cell)=%s degree=%s - %s@\n" indent
            bc.bc_agent bc.bc_time bc.bc_label
            (Q.to_string bc.bc_cell_measure)
            (Q.to_string bc.bc_sat_measure)
            (Q.to_string bc.bc_degree)
            (if bc.bc_holds then "meets the threshold" else "misses the threshold"))
        shown;
      if total > max_cells then
        Format.fprintf fmt "%s  ... (%d more cells)@\n" indent (total - max_cells)
    | Fixpoint iters ->
      Format.fprintf fmt "%s  fixpoint: %d iteration(s), |X| = %s@\n" indent
        (List.length iters)
        (String.concat " -> " (List.map (fun l -> string_of_int (List.length l)) iters)));
    let elide = match depth with Some d -> level >= d | None -> false in
    if elide && n.children <> [] then
      Format.fprintf fmt "%s  ... (children elided at depth %d)@\n" indent level
    else List.iter (go (level + 1)) n.children
  in
  go 0 cert.root

(* ------------------------------------------------------------------ *)
(* Theorem certificates                                                *)
(* ------------------------------------------------------------------ *)

module Theorem = struct
  type cell_line = {
    cl_time : int;
    cl_label : string;
    cl_cell : int list;
    cl_weight_event : int list;
    cl_weight : Q.t;
    cl_belief_event : int list;
    cl_belief : Q.t;
  }

  type t = {
    version : int;
    kind : string;
    paper : string;
    agent : int;
    act : string;
    p : Q.t option;
    eps : Q.t option;
    r_alpha : int list;
    mu_event : int list;
    mu : Q.t;
    cells : cell_line list;
    independent : bool;
    deterministic : bool;
    past_based : bool;
    verdict : bool;
  }

  let certify fact ~check ~agent ~act ?p ~eps () =
    Obs.incr c_claims;
    Obs.span "cert.theorem" @@ fun () ->
    let tree = Fact.tree fact in
    Action.check_proper tree ~agent ~act;
    let r_alpha = Action.runs_performing tree ~agent ~act in
    let mu_event = Fact.at_action fact ~agent ~act in
    let mu = Tree.cond tree mu_event ~given:r_alpha in
    let cells =
      List.map
        (fun key ->
          let cell = Tree.lstate_runs tree key in
          let wev = Action.performed_at_lstate tree ~agent ~act key in
          let bev = Fact.at_lstate fact key in
          {
            cl_time = Tree.lkey_time key;
            cl_label = Tree.lkey_label key;
            cl_cell = Bitset.to_list cell;
            cl_weight_event = Bitset.to_list wev;
            cl_weight = Tree.cond tree wev ~given:r_alpha;
            cl_belief_event = Bitset.to_list bev;
            cl_belief = Q.div (Tree.measure tree bev) (Tree.measure tree cell);
          })
        (Action.performing_lstates tree ~agent ~act)
    in
    let independent = Independence.holds fact ~agent ~act in
    let deterministic = Action.is_deterministic tree ~agent ~act in
    let past_based = Fact.is_past_based fact in
    let p_used, eps_used, verdict =
      match check with
      | Sweep.Expectation ->
        let r = Theorems.expectation_identity fact ~agent ~act in
        (None, None, r.Theorems.respected)
      | Sweep.Sufficiency ->
        let p =
          match p with
          | Some p -> p
          | None -> (
            match Belief.min_at_action fact ~agent ~act with
            | Some m -> m
            | None -> Q.one)
        in
        let r = Theorems.sufficiency fact ~agent ~act ~p in
        (Some p, None, r.Theorems.respected)
      | Sweep.Lemma43 ->
        let r = Theorems.lemma43 fact ~agent ~act in
        (None, None, r.Theorems.respected)
      | Sweep.Necessity ->
        let p = match p with Some p -> p | None -> mu in
        let r = Theorems.necessity_exists fact ~agent ~act ~p in
        (Some p, None, r.Theorems.respected)
      | Sweep.Pak_corollary ->
        let r = Theorems.pak_corollary fact ~agent ~act ~eps in
        (None, Some eps, r.Theorems.respected)
      | Sweep.Kop ->
        let r = Theorems.kop fact ~agent ~act in
        (None, None, r.Theorems.respected)
    in
    {
      version = schema_version;
      kind = Sweep.check_name check;
      paper = Sweep.paper_result check;
      agent;
      act;
      p = p_used;
      eps = eps_used;
      r_alpha = Bitset.to_list r_alpha;
      mu_event = Bitset.to_list mu_event;
      mu;
      cells;
      independent;
      deterministic;
      past_based;
      verdict;
    }

  let check tree ?fact (tc : t) =
    Obs.incr c_claim_checks;
    Obs.span "cert.theorem.check" @@ fun () ->
    let formula_text = Printf.sprintf "%s: agent %d, action %S" tc.kind tc.agent tc.act in
    let fail reason = raise (Violation { path = "theorem"; formula = formula_text; reason }) in
    let failf fmt = Printf.ksprintf fail fmt in
    try
      let check_kind =
        match Sweep.of_name tc.kind with
        | Some c -> c
        | None -> failf "unknown theorem kind %S" tc.kind
      in
      if tc.version <> schema_version then
        failf "certificate schema version %d, this checker expects %d" tc.version
          schema_version;
      if tc.paper <> Sweep.paper_result check_kind then
        failf "paper reference %S does not match kind %s (%s)" tc.paper tc.kind
          (Sweep.paper_result check_kind);
      if tc.agent < 0 || tc.agent >= Tree.n_agents tree then
        failf "agent %d out of range" tc.agent;
      let agent = tc.agent and act = tc.act in
      if not (Action.is_proper tree ~agent ~act) then
        failf "action %S is not proper for agent %d in this system" act agent;
      (match fact with
      | Some f when Tree.tree_id (Fact.tree f) <> Tree.tree_id tree ->
        failf "the supplied fact belongs to a different tree"
      | _ -> ());
      let n_runs = Tree.n_runs tree in
      let of_runs l = Bitset.of_list n_runs l in
      let r_alpha = Action.runs_performing tree ~agent ~act in
      if Bitset.to_list r_alpha <> tc.r_alpha then
        failf "recorded R_alpha does not match the runs performing the action";
      (* Cell coverage: exactly the performing local states. *)
      let perf = Action.performing_lstates tree ~agent ~act in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun cl ->
          let key = (cl.cl_time, cl.cl_label) in
          if Hashtbl.mem seen key then
            failf "duplicate cell for local state (t=%d, %S)" cl.cl_time cl.cl_label;
          Hashtbl.add seen key ())
        tc.cells;
      List.iter
        (fun lk ->
          let key = (Tree.lkey_time lk, Tree.lkey_label lk) in
          if not (Hashtbl.mem seen key) then
            failf "missing cell for performing local state (t=%d, %S)" (Tree.lkey_time lk)
              (Tree.lkey_label lk);
          Hashtbl.remove seen key)
        perf;
      Hashtbl.iter
        (fun (time, label) () ->
          failf "cell for (t=%d, %S), which is not a performing local state" time label)
        seen;
      (* Per-cell re-derivation. *)
      List.iter
        (fun cl ->
          let lk = Tree.lkey_make ~agent ~time:cl.cl_time ~label:cl.cl_label in
          let cell = Tree.lstate_runs tree lk in
          if Bitset.to_list cell <> cl.cl_cell then
            failf "cell (t=%d, %S): recorded runs do not match the tree" cl.cl_time
              cl.cl_label;
          let wev = Action.performed_at_lstate tree ~agent ~act lk in
          if Bitset.to_list wev <> cl.cl_weight_event then
            failf "cell (t=%d, %S): recorded weight event differs from alpha@l" cl.cl_time
              cl.cl_label;
          let w = Tree.cond tree wev ~given:r_alpha in
          if not (Q.equal w cl.cl_weight) then
            failf "cell (t=%d, %S): weight is %s, certificate says %s" cl.cl_time
              cl.cl_label (Q.to_string w) (Q.to_string cl.cl_weight);
          let bev = of_runs cl.cl_belief_event in
          if not (Bitset.subset bev cell) then
            failf "cell (t=%d, %S): belief event is not contained in the cell" cl.cl_time
              cl.cl_label;
          (match fact with
          | Some f ->
            if Bitset.to_list (Fact.at_lstate f lk) <> cl.cl_belief_event then
              failf "cell (t=%d, %S): recorded belief event differs from phi@l" cl.cl_time
                cl.cl_label
          | None -> ());
          let beta = Q.div (Tree.measure tree bev) (Tree.measure tree cell) in
          if not (Q.equal beta cl.cl_belief) then
            failf "cell (t=%d, %S): degree of belief is %s, certificate says %s" cl.cl_time
              cl.cl_label (Q.to_string beta) (Q.to_string cl.cl_belief))
        tc.cells;
      (* Weights form a distribution over R_alpha. *)
      let weight_sum = Q.sum (List.map (fun cl -> cl.cl_weight) tc.cells) in
      if not (Q.equal weight_sum Q.one) then
        failf "cell weights sum to %s, not 1" (Q.to_string weight_sum);
      (* Lemma B.1: phi@alpha decomposes over the performing local
         states as the union of alpha@l inter phi@l. *)
      let mu_event = of_runs tc.mu_event in
      let decomposed =
        List.fold_left
          (fun acc cl ->
            Bitset.union acc
              (Bitset.inter (of_runs cl.cl_weight_event) (of_runs cl.cl_belief_event)))
          (Tree.empty_event tree) tc.cells
      in
      if not (Bitset.equal mu_event decomposed) then
        failf
          "recorded phi@alpha does not equal the union of (alpha@l inter phi@l) over the cells (Lemma B.1)";
      (match fact with
      | Some f ->
        if Bitset.to_list (Fact.at_action f ~agent ~act) <> tc.mu_event then
          failf "recorded phi@alpha differs from the fact's at-action event"
      | None -> ());
      let mu = Tree.cond tree mu_event ~given:r_alpha in
      if not (Q.equal mu tc.mu) then
        failf "mu(phi@alpha | alpha) is %s, certificate says %s" (Q.to_string mu)
          (Q.to_string tc.mu);
      let deterministic = Action.is_deterministic tree ~agent ~act in
      if deterministic <> tc.deterministic then
        failf "action determinism re-derives to %b, certificate says %b" deterministic
          tc.deterministic;
      let independent =
        match fact with
        | Some f ->
          let ind = Independence.holds f ~agent ~act in
          if ind <> tc.independent then
            failf "local-state independence re-derives to %b, certificate says %b" ind
              tc.independent;
          ind
        | None -> tc.independent
      in
      let past_based =
        match fact with
        | Some f ->
          let pb = Fact.is_past_based f in
          if pb <> tc.past_based then
            failf "past-basedness re-derives to %b, certificate says %b" pb tc.past_based;
          pb
        | None -> tc.past_based
      in
      let imp a b = (not a) || b in
      let require_p () =
        match tc.p with Some p -> p | None -> failf "kind %s requires a threshold p" tc.kind
      in
      let mass pred =
        (* µ({r ∈ R_α : β at r's acting cell satisfies pred} | R_α) *)
        let ev =
          List.fold_left
            (fun acc cl ->
              if pred cl.cl_belief then Bitset.union acc (of_runs cl.cl_weight_event)
              else acc)
            (Tree.empty_event tree) tc.cells
        in
        Tree.cond tree ev ~given:r_alpha
      in
      let verdict =
        match check_kind with
        | Sweep.Expectation ->
          let expected =
            Q.sum (List.map (fun cl -> Q.mul cl.cl_weight cl.cl_belief) tc.cells)
          in
          imp independent (Q.equal mu expected)
        | Sweep.Sufficiency ->
          let p = require_p () in
          let min_belief =
            List.fold_left (fun acc cl -> Q.min acc cl.cl_belief) Q.one tc.cells
          in
          imp (independent && Q.geq min_belief p) (Q.geq mu p)
        | Sweep.Lemma43 -> imp (deterministic || past_based) independent
        | Sweep.Necessity ->
          let p = require_p () in
          imp
            (independent && Q.geq mu p)
            (List.exists (fun cl -> Q.geq cl.cl_belief p) tc.cells)
        | Sweep.Pak_corollary ->
          let eps =
            match tc.eps with
            | Some e -> e
            | None -> failf "kind cor72 requires an epsilon"
          in
          let premise = Q.geq mu (Q.one_minus (Q.mul eps eps)) in
          let strong = mass (fun beta -> Q.geq beta (Q.one_minus eps)) in
          imp (independent && premise) (Q.geq strong (Q.one_minus eps))
        | Sweep.Kop ->
          let premise = Q.equal mu Q.one in
          let certain = mass (fun beta -> Q.equal beta Q.one) in
          imp (independent && premise) (Q.equal certain Q.one)
      in
      if verdict <> tc.verdict then
        failf "verdict re-derives to %b, certificate says %b" verdict tc.verdict;
      Ok ()
    with Violation v ->
      Obs.incr c_claim_violations;
      Result.Error v

  let pp fmt (tc : t) =
    Format.fprintf fmt "%s (%s) certificate: agent %d, action %S@\n" tc.kind tc.paper
      tc.agent tc.act;
    (match tc.p with
    | Some p -> Format.fprintf fmt "  threshold p = %s@\n" (Q.to_string p)
    | None -> ());
    (match tc.eps with
    | Some e -> Format.fprintf fmt "  epsilon = %s@\n" (Q.to_string e)
    | None -> ());
    Format.fprintf fmt "  R_alpha = {%a}, mu(phi@@alpha | alpha) = %s@\n" pp_int_list
      tc.r_alpha (Q.to_string tc.mu);
    Format.fprintf fmt "  independent=%b deterministic=%b past_based=%b@\n" tc.independent
      tc.deterministic tc.past_based;
    List.iter
      (fun cl ->
        Format.fprintf fmt "  cell (t=%d, %S): w=%s beta=%s@\n" cl.cl_time cl.cl_label
          (Q.to_string cl.cl_weight) (Q.to_string cl.cl_belief))
      tc.cells;
    Format.fprintf fmt "  verdict: %s@\n" (if tc.verdict then "respected" else "VIOLATED")
end

(* ------------------------------------------------------------------ *)
(* Sweep certification                                                 *)
(* ------------------------------------------------------------------ *)

type sweep_report = {
  sw_check : Sweep.check;
  sw_eps : Q.t;
  sw_first_seed : int;
  sw_count : int;
  sw_certified : int;
  sw_skipped : int;
  sw_failures : (int * violation) list;
}

type sweep_outcome = Certified | Skip | Failed of violation

let certify_sweep ?pool ?(params = Gen.default_params) ?(eps = Q.of_ints 1 10) check
    ~first_seed ~count =
  if count < 0 then invalid_arg "Cert.certify_sweep: negative count";
  Obs.span "cert.sweep" @@ fun () ->
  let seeds = Array.init count (fun i -> first_seed + i) in
  let eval seed =
    match Sweep.seed_instance ~params seed with
    | None -> Skip
    | Some (tree, (agent, act), fact) -> (
      let tc = Theorem.certify fact ~check ~agent ~act ~eps () in
      match Theorem.check tree ~fact tc with
      | Ok () -> Certified
      | Result.Error v -> Failed v)
  in
  let outcomes =
    match pool with Some pool -> Pool.map pool eval seeds | None -> Array.map eval seeds
  in
  let certified = ref 0 and skipped = ref 0 and failures = ref [] in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Skip -> incr skipped
      | Certified -> incr certified
      | Failed v -> failures := (seeds.(i), v) :: !failures)
    outcomes;
  {
    sw_check = check;
    sw_eps = eps;
    sw_first_seed = first_seed;
    sw_count = count;
    sw_certified = !certified;
    sw_skipped = !skipped;
    sw_failures = List.rev !failures;
  }

let sweep_passed r = r.sw_failures = [] && r.sw_certified > 0

let pp_sweep_report fmt r =
  Format.fprintf fmt
    "%-8s (%s) certificates: seeds %d..%d: %d certified, %d skipped, %d rejected  %s"
    (Sweep.check_name r.sw_check)
    (Sweep.paper_result r.sw_check)
    r.sw_first_seed
    (r.sw_first_seed + r.sw_count - 1)
    r.sw_certified r.sw_skipped
    (List.length r.sw_failures)
    (if sweep_passed r then "OK" else "FAIL");
  List.iter
    (fun (seed, v) -> Format.fprintf fmt "@\n  seed %d: %s" seed (violation_to_string v))
    r.sw_failures
