(** Evaluation provenance: witness certificates for {!Pak_logic.Semantics}
    verdicts, and an independent checker that re-verifies them.

    {!certify} evaluates a formula the same way [Semantics.eval] does —
    through the same [knows_fact]/[believes_fact]/fixpoint building
    blocks — but records {e why} at every step: per subformula the
    satisfying point set, and per modality the local evidence (the
    indistinguishability cell scanned for [K_i], the conditioning cell
    with its exact rational measures for [B_i^{⋈q}], the
    iteration-by-iteration shrinking approximants for the [C_G]/[CB_G^q]
    greatest fixpoints).

    {!check} then re-verifies every node {e locally and independently}:
    it never calls [Semantics.eval], re-derives every measure from
    {!Pak_pps.Tree.measure}, recomputes every fixpoint step from the
    recorded previous approximant, and compares each node's point set
    against the semantics of its connective applied to its children. A
    certificate is evidence, not a transcript — a tampered point set,
    cell, measure or iteration is rejected with a precise {!violation}.

    Certificates serialize to versioned JSON ({!to_json} /
    {!of_json_string}, parsed back with the zero-dependency
    {!Pak_obs.Obs.Json} reader) and render as text ({!pp}) for
    [pak explain]. The {!Theorem} submodule provides the same
    certify-then-recheck pairing for the paper's theorem checkers, and
    {!certify_sweep} runs it over a {!Pak_pps.Gen} family. *)

open Pak_rational
open Pak_pps
open Pak_logic

val schema_version : int
(** Version of the certificate JSON schema; bumped on incompatible
    change. Currently 1. *)

type points = (int * int) list
(** A set of points as a sorted (lexicographically strictly increasing)
    list of [(run, time)] pairs. *)

type kcell = {
  kc_agent : int;
  kc_time : int;
  kc_label : string;  (** the local state [ℓ = (agent, time, label)] *)
  kc_cell : int list;  (** runs in the indistinguishability cell, sorted *)
  kc_holds : bool;  (** the inner formula holds at [(r, time)] for every
                        run [r] of the cell *)
}
(** Evidence for [K_i] / [E_G]: one scanned indistinguishability cell. *)

type bcell = {
  bc_agent : int;
  bc_time : int;
  bc_label : string;  (** the conditioning local state [ℓ] *)
  bc_cell : int list;  (** runs of [ℓ], sorted — the conditioning cell *)
  bc_sat : int list;  (** runs of [ϕ@ℓ]: cell runs whose point at
                          [bc_time] satisfies the inner formula *)
  bc_cell_measure : Q.t;  (** [µ(cell)], exact *)
  bc_sat_measure : Q.t;  (** [µ(ϕ@ℓ)], exact *)
  bc_degree : Q.t;  (** [β = µ(ϕ@ℓ) / µ(cell)] *)
  bc_holds : bool;  (** [β ⋈ q] for the node's comparison and threshold *)
}
(** Evidence for [B_i^{⋈q}] / [EB_G^q]: one conditioning cell with the
    exact measure arithmetic behind the threshold comparison. *)

type evidence =
  | Direct
      (** truth-functional, temporal and leaf nodes: the point set
          follows pointwise from the children (or the valuation) *)
  | Knowledge of kcell list  (** [K_i] (one agent) or [E_G] (per-agent
                                 cells concatenated) *)
  | Belief of bcell list  (** [B_i^{⋈q}] or [EB_G^q] *)
  | Fixpoint of points list
      (** [C_G] / [CB_G^q]: the successive approximants [X_1, …, X_n]
          of the greatest-fixpoint iteration from the top element;
          [X_n = X_{n-1}] witnesses termination and [X_n] is the node's
          point set. The list length equals the number of
          [semantics.gfp_iters.*] counter bumps [eval] performs. *)

type node = {
  formula : Formula.t;
  points : points;  (** where the subformula holds *)
  evidence : evidence;
  children : node list;  (** immediate subformulas, in syntactic order *)
}

type t = {
  version : int;  (** = {!schema_version} *)
  n_agents : int;
  n_runs : int;
  n_points : int;  (** shape of the certified system, cross-checked by
                       {!check} against the tree it is given *)
  root : node;
}

type violation = {
  path : string;  (** root-to-node path, e.g. ["root.0.1"] *)
  formula : string;  (** text of the offending node's formula *)
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

val certify : Tree.t -> valuation:Semantics.valuation -> Formula.t -> t
(** Evaluate [formula] on [tree], recording a witness tree. The root
    point set always equals [Semantics.eval]'s fact extensionally (both
    are built from the same {!Semantics.knows_fact} /
    {!Semantics.believes_fact} primitives and the same fixpoint loop);
    the qcheck suite enforces this on thousands of generated systems.
    Fixpoint iterations charge the installed {!Pak_guard.Budget} like
    [eval] does.

    @raise Invalid_argument on an out-of-range agent or empty group,
    exactly as [Semantics.eval]. *)

val certify_result :
  Tree.t -> valuation:Semantics.valuation -> Formula.t -> (t, Pak_guard.Error.t) result
(** {!certify} behind the typed error boundary: [Invalid_argument]
    becomes an [Invalid_system] error instead of an exception. Budget
    exhaustion still propagates as the usual typed budget exception so
    an enclosing [Budget.with_budget]/[attempt] can catch it. *)

val check : ?valuation:Semantics.valuation -> Tree.t -> t -> (unit, violation) result
(** Independently re-verify a certificate against [tree], without
    calling [Semantics.eval]: system shape, point-set well-formedness,
    pointwise agreement of every connective with its children, cell
    coverage and membership for [K]/[E], exact measure re-derivation
    via {!Tree.measure} for [B]/[EB], and step-by-step re-computation
    of every fixpoint approximant (initial element, each step, the
    terminating [X_n = X_{n-1}] condition). With [?valuation], atom
    leaves are re-derived too; without it they are trusted (useful when
    checking a certificate shipped without its valuation). *)

val holds_at : t -> run:int -> time:int -> bool
(** Root verdict at a point (membership in the root point set). *)

val size : t -> int
(** Number of nodes in the certificate. *)

val to_json : t -> string
(** Versioned JSON. Rationals serialize as exact strings (["3/4"]),
    formulas as their concrete syntax (re-parsed on read). *)

val of_json_string : string -> (t, string) result
(** Parse {!to_json} output back (via {!Pak_obs.Obs.Json}); rejects
    unknown schema versions and malformed structure with a readable
    message. [to_json] of the result is byte-identical to the input
    produced by [to_json]. *)

val pp : ?depth:int -> ?at:int * int -> Format.formatter -> t -> unit
(** Render as an indented explanation tree. [?depth] truncates below
    the given nesting depth; [?at:(run, time)] annotates every node
    with its verdict at that point and narrows cell evidence to the
    cells containing it. *)

(** {1 Theorem certificates}

    The same certify-then-recheck pairing for the paper's theorem
    checkers ({!Pak_pps.Theorems}). A theorem certificate records the
    events (run sets) and exact conditional measures behind one verdict
    — [µ(ϕ@α|α)], the per-local-state beliefs and weights of the
    Theorem 6.2 expectation, the strong-belief mass of Corollary 7.2 —
    and {!Theorem.check} re-derives every measure from {!Tree.measure},
    re-checks the structural decomposition
    [ϕ@α = ⋃_ℓ (α@ℓ ∩ ϕ@ℓ)] (Lemma B.1), and recomputes the verdict. *)

module Theorem : sig
  type cell_line = {
    cl_time : int;
    cl_label : string;  (** a performing local state [ℓ] of the agent *)
    cl_cell : int list;  (** runs of [ℓ] *)
    cl_weight_event : int list;  (** [α@ℓ]: cell runs performing [α] at [ℓ] *)
    cl_weight : Q.t;  (** [w_ℓ = µ(α@ℓ | R_α)] *)
    cl_belief_event : int list;  (** [ϕ@ℓ]: cell runs satisfying [ϕ] at [ℓ] *)
    cl_belief : Q.t;  (** [β_ℓ = µ(ϕ@ℓ | ℓ)] *)
  }

  type t = {
    version : int;
    kind : string;  (** {!Pak_pps.Sweep.check_name}: [thm62] … [kop] *)
    paper : string;  (** e.g. ["Theorem 6.2"] *)
    agent : int;
    act : string;
    p : Q.t option;  (** threshold parameter ([thm42]/[lemma51]) *)
    eps : Q.t option;  (** ε parameter ([cor72]) *)
    r_alpha : int list;  (** [R_α], the runs performing the action *)
    mu_event : int list;  (** [ϕ@α] *)
    mu : Q.t;  (** [µ(ϕ@α | R_α)] *)
    cells : cell_line list;  (** one line per performing local state *)
    independent : bool;  (** local-state independence of [(ϕ, α)] *)
    deterministic : bool;  (** the action is deterministic (Lemma 4.3) *)
    past_based : bool;  (** the fact is past-based (Lemma 4.3) *)
    verdict : bool;  (** the checker's [respected] field *)
  }

  val certify :
    Fact.t ->
    check:Sweep.check ->
    agent:int ->
    act:string ->
    ?p:Q.t ->
    eps:Q.t ->
    unit ->
    t
  (** Run the {!Pak_pps.Theorems} checker selected by [check] and record
      its full evidence. [?p] overrides the threshold for
      [Sufficiency]/[Necessity]; the defaults are the {!Sweep}
      conventions ([p] = minimal belief at the action, resp.
      [p = µ(ϕ@α|α)]). [verdict] equals the corresponding report's
      [respected] field.

      @raise Action.Not_proper if the action is not proper. *)

  val check : Tree.t -> ?fact:Fact.t -> t -> (unit, violation) result
  (** Re-verify: [R_α], the per-cell run sets and weight events, and
      the action's determinism are re-derived from [tree]; every
      measure is recomputed with {!Tree.measure} and compared exactly;
      the Lemma B.1 decomposition of [mu_event] over the cells is
      re-checked; and the verdict is recomputed from the re-derived
      quantities under the [kind]'s implication. With [?fact] the
      belief events, [mu_event], independence and past-basedness are
      re-derived as well instead of trusted. *)

  val pp : Format.formatter -> t -> unit
end

(** {1 Sweep certification} *)

type sweep_report = {
  sw_check : Sweep.check;
  sw_eps : Q.t;
  sw_first_seed : int;
  sw_count : int;
  sw_certified : int;  (** seeds whose certificate re-checked [Ok] *)
  sw_skipped : int;  (** seeds with no proper action *)
  sw_failures : (int * violation) list;  (** seeds whose fresh
                                             certificate was rejected *)
}

val certify_sweep :
  ?pool:Pak_par.Pool.t ->
  ?params:Gen.params ->
  ?eps:Q.t ->
  Sweep.check ->
  first_seed:int ->
  count:int ->
  sweep_report
(** For every seed of the family (same generation as {!Sweep.run}):
    build the theorem certificate and immediately re-check it with the
    full [?fact] re-derivation. Jobs-invariant like every sweep — the
    report does not depend on [?pool]. *)

val sweep_passed : sweep_report -> bool
(** No failures and at least one seed certified. *)

val pp_sweep_report : Format.formatter -> sweep_report -> unit
