open Pak_rational

module Obs = Pak_obs.Obs

let c_samples = Obs.counter "simulate.samples"
let c_accepted = Obs.counter "simulate.accepted"

(* Same SplitMix-style generator as Gen; duplicated locally to keep the
   modules' streams independent. *)
module Prng = struct
  type t = { mutable state : int }

  let create seed = { state = (seed * 2_654_435_769) lxor 0x51D2B4C7 }

  let next g =
    g.state <- (g.state + 0x1E3779B97F4A7C15) land max_int;
    let z = g.state in
    let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
    (z lxor (z lsr 31)) land max_int
end

(* Draw a uniform rational in [0,1) with denominator 2^30 — plenty of
   resolution against the edge probabilities that occur in practice. *)
let uniform rng =
  let bits = Prng.next rng land ((1 lsl 30) - 1) in
  Q.of_ints bits (1 lsl 30)

let pick rng choices =
  (* choices: (weight, value) list with weights summing to 1. *)
  let u = uniform rng in
  let rec go acc = function
    | [] -> invalid_arg "Simulate.pick: weights below 1"
    | [ (_, v) ] -> v
    | (w, v) :: rest ->
      let acc = Q.add acc w in
      if Q.lt u acc then v else go acc rest
  in
  go Q.zero choices

(* Leaf node -> run index. Runs are enumerated depth-first at finalize,
   but recomputing the map here keeps Simulate independent of that
   ordering detail. *)
let leaf_index tree =
  let map = Hashtbl.create (Tree.n_runs tree) in
  for run = 0 to Tree.n_runs tree - 1 do
    let last = Tree.run_length tree run - 1 in
    Hashtbl.replace map (Tree.run_node tree ~run ~time:last) run
  done;
  map

let walk tree rng leaves =
  let node =
    ref (pick rng (List.map (fun (p, id) -> (p, id)) (Tree.initial_nodes tree)))
  in
  let rec descend () =
    match Tree.node_children tree !node with
    | [] -> ()
    | children ->
      node := pick rng (List.map (fun (p, _, id) -> (p, id)) children);
      descend ()
  in
  descend ();
  Hashtbl.find leaves !node

let sample_run tree ~seed =
  let rng = Prng.create seed in
  Obs.incr c_samples;
  walk tree rng (leaf_index tree)

let sample_runs tree ~samples ~seed =
  if samples < 0 then invalid_arg "Simulate.sample_runs: negative sample count";
  let rng = Prng.create seed in
  let leaves = leaf_index tree in
  Obs.add c_samples samples;
  Array.init samples (fun _ -> walk tree rng leaves)

let estimate tree ~event ~samples ~seed =
  if samples <= 0 then invalid_arg "Simulate.estimate: need at least one sample";
  let runs = sample_runs tree ~samples ~seed in
  let hits = Array.fold_left (fun acc r -> if Bitset.mem event r then acc + 1 else acc) 0 runs in
  Q.of_ints hits samples

let estimate_cond tree ~event ~given ~samples ~seed =
  if samples <= 0 then invalid_arg "Simulate.estimate_cond: need at least one sample";
  let runs = sample_runs tree ~samples ~seed in
  let hits = ref 0 and given_hits = ref 0 in
  Array.iter
    (fun r ->
      if Bitset.mem given r then begin
        incr given_hits;
        if Bitset.mem event r then incr hits
      end)
    runs;
  Obs.add c_accepted !given_hits;
  if !given_hits = 0 then None else Some (Q.of_ints !hits !given_hits)

(* ------------------------------------------------------------------ *)
(* Parallel estimation with splittable seeds                           *)
(* ------------------------------------------------------------------ *)

module Pool = Pak_par.Pool

let sample_block = 1024

(* SplitMix-style finalizer over (seed, block): every fixed-size block
   of samples gets its own independent stream, derived from the block
   INDEX rather than from whichever domain runs it. The estimate is
   therefore a pure function of (seed, samples) — the same for every
   pool size, including no pool at all. *)
let mix_seed seed b =
  let z = (seed + ((b + 1) * 0x9E3779B9)) land max_int in
  let z = (z lxor (z lsr 16)) * 0x85EBCA6B land max_int in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 land max_int in
  (z lxor (z lsr 16)) land max_int

let block_counts tree ~event ~given leaves ~seed ~n =
  let rng = Prng.create seed in
  let hits = ref 0 and given_hits = ref 0 in
  for _ = 1 to n do
    let r = walk tree rng leaves in
    match given with
    | None -> if Bitset.mem event r then incr hits
    | Some g ->
      if Bitset.mem g r then begin
        incr given_hits;
        if Bitset.mem event r then incr hits
      end
  done;
  (!hits, !given_hits)

let par_counts ?pool tree ~event ~given ~samples ~seed =
  let leaves = leaf_index tree in
  let nblocks = (samples + sample_block - 1) / sample_block in
  let blocks =
    Array.init nblocks (fun b ->
        (b, min sample_block (samples - (b * sample_block))))
  in
  let count (b, n) = block_counts tree ~event ~given leaves ~seed:(mix_seed seed b) ~n in
  let combine (h1, g1) (h2, g2) = (h1 + h2, g1 + g2) in
  Obs.add c_samples samples;
  match pool with
  | Some pool -> Pool.map_reduce pool ~map:count ~reduce:combine ~init:(0, 0) blocks
  | None -> Array.fold_left (fun acc bn -> combine acc (count bn)) (0, 0) blocks

let estimate_par ?pool tree ~event ~samples ~seed =
  if samples <= 0 then invalid_arg "Simulate.estimate_par: need at least one sample";
  let hits, _ = par_counts ?pool tree ~event ~given:None ~samples ~seed in
  Q.of_ints hits samples

let estimate_cond_par ?pool tree ~event ~given ~samples ~seed =
  if samples <= 0 then invalid_arg "Simulate.estimate_cond_par: need at least one sample";
  let hits, given_hits = par_counts ?pool tree ~event ~given:(Some given) ~samples ~seed in
  Obs.add c_accepted given_hits;
  if given_hits = 0 then None else Some (Q.of_ints hits given_hits)

let standard_error ~p ~samples =
  let pf = Q.to_float p in
  sqrt (pf *. (1. -. pf) /. float_of_int samples)
