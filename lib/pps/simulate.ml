open Pak_rational

module Obs = Pak_obs.Obs

let c_samples = Obs.counter "simulate.samples"
let c_accepted = Obs.counter "simulate.accepted"

(* Same SplitMix-style generator as Gen; duplicated locally to keep the
   modules' streams independent. *)
module Prng = struct
  type t = { mutable state : int }

  let create seed = { state = (seed * 2_654_435_769) lxor 0x51D2B4C7 }

  let next g =
    g.state <- (g.state + 0x1E3779B97F4A7C15) land max_int;
    let z = g.state in
    let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
    (z lxor (z lsr 31)) land max_int
end

(* Draw a uniform rational in [0,1) with denominator 2^30 — plenty of
   resolution against the edge probabilities that occur in practice. *)
let uniform rng =
  let bits = Prng.next rng land ((1 lsl 30) - 1) in
  Q.of_ints bits (1 lsl 30)

let pick rng choices =
  (* choices: (weight, value) list with weights summing to 1. *)
  let u = uniform rng in
  let rec go acc = function
    | [] -> invalid_arg "Simulate.pick: weights below 1"
    | [ (_, v) ] -> v
    | (w, v) :: rest ->
      let acc = Q.add acc w in
      if Q.lt u acc then v else go acc rest
  in
  go Q.zero choices

(* Leaf node -> run index. Runs are enumerated depth-first at finalize,
   but recomputing the map here keeps Simulate independent of that
   ordering detail. *)
let leaf_index tree =
  let map = Hashtbl.create (Tree.n_runs tree) in
  for run = 0 to Tree.n_runs tree - 1 do
    let last = Tree.run_length tree run - 1 in
    Hashtbl.replace map (Tree.run_node tree ~run ~time:last) run
  done;
  map

let walk tree rng leaves =
  let node =
    ref (pick rng (List.map (fun (p, id) -> (p, id)) (Tree.initial_nodes tree)))
  in
  let rec descend () =
    match Tree.node_children tree !node with
    | [] -> ()
    | children ->
      node := pick rng (List.map (fun (p, _, id) -> (p, id)) children);
      descend ()
  in
  descend ();
  Hashtbl.find leaves !node

let sample_run tree ~seed =
  let rng = Prng.create seed in
  Obs.incr c_samples;
  walk tree rng (leaf_index tree)

let sample_runs tree ~samples ~seed =
  if samples < 0 then invalid_arg "Simulate.sample_runs: negative sample count";
  let rng = Prng.create seed in
  let leaves = leaf_index tree in
  Obs.add c_samples samples;
  Array.init samples (fun _ -> walk tree rng leaves)

let estimate tree ~event ~samples ~seed =
  if samples <= 0 then invalid_arg "Simulate.estimate: need at least one sample";
  let runs = sample_runs tree ~samples ~seed in
  let hits = Array.fold_left (fun acc r -> if Bitset.mem event r then acc + 1 else acc) 0 runs in
  Q.of_ints hits samples

let estimate_cond tree ~event ~given ~samples ~seed =
  if samples <= 0 then invalid_arg "Simulate.estimate_cond: need at least one sample";
  let runs = sample_runs tree ~samples ~seed in
  let hits = ref 0 and given_hits = ref 0 in
  Array.iter
    (fun r ->
      if Bitset.mem given r then begin
        incr given_hits;
        if Bitset.mem event r then incr hits
      end)
    runs;
  Obs.add c_accepted !given_hits;
  if !given_hits = 0 then None else Some (Q.of_ints !hits !given_hits)

let standard_error ~p ~samples =
  let pf = Q.to_float p in
  sqrt (pf *. (1. -. pf) /. float_of_int samples)
