(** Monte-Carlo simulation of a pps.

    Samples runs by walking the tree from the root, choosing each child
    with its transition probability. Estimation is the empirical
    counterpart of {!Tree.measure}: the library never uses it for
    theorem checking (that is exact), but it provides an independent
    cross-check of the measure computations and a way to work with
    systems too large to enumerate events over (sampling is O(depth)
    per run regardless of the number of runs).

    All sampling is a pure function of the [seed]. *)

open Pak_rational

val sample_run : Tree.t -> seed:int -> int
(** One run index, drawn from [µ_T] (up to the 2⁻³⁰ granularity of the
    underlying uniform draws). *)

val sample_runs : Tree.t -> samples:int -> seed:int -> int array

val estimate : Tree.t -> event:Bitset.t -> samples:int -> seed:int -> Q.t
(** Empirical frequency of the event, as the exact fraction
    hits/samples. Converges to [Tree.measure] as samples grows. *)

val estimate_cond :
  Tree.t -> event:Bitset.t -> given:Bitset.t -> samples:int -> seed:int -> Q.t option
(** Empirical conditional frequency; [None] if no sample hit [given]. *)

(** {1 Parallel estimation}

    Samples are drawn in fixed blocks of {!sample_block}; block [b] of
    seed [s] uses the stream seeded by a SplitMix-style mix of [(s, b)].
    Because streams attach to block {e indices}, not domains, the
    result is a pure function of [(seed, samples)]: identical for every
    pool size and for [?pool:None] — stronger than mere per-job-count
    reproducibility. The parallel estimators draw from different
    streams than {!estimate}/{!estimate_cond}, so their values differ
    from the sequential ones by sampling noise (both converge to
    [Tree.measure]). *)

val sample_block : int
(** Number of samples per independently-seeded block (1024). *)

val estimate_par :
  ?pool:Pak_par.Pool.t -> Tree.t -> event:Bitset.t -> samples:int -> seed:int -> Q.t
(** Like {!estimate}, computed block-wise across the pool's domains
    (sequentially when [pool] is absent — same result either way). *)

val estimate_cond_par :
  ?pool:Pak_par.Pool.t ->
  Tree.t ->
  event:Bitset.t ->
  given:Bitset.t ->
  samples:int ->
  seed:int ->
  Q.t option
(** Like {!estimate_cond}, computed block-wise across the pool's
    domains. [None] iff no sample hit [given]. *)

val standard_error : p:Q.t -> samples:int -> float
(** [sqrt(p(1-p)/n)] — the binomial standard error, for tolerance
    checks in tests and harnesses. *)
