(* Packed bit vector over 62-bit words. The capacity is stored so that
   [complement] and [full] know where the universe ends; the unused high
   bits of the last word are kept at zero as an invariant. *)

let word_bits = 62

module Obs = Pak_obs.Obs

(* Word-wise combinators vs whole-set scans: the two shapes of work an
   event-set workload is made of. *)
let c_set_ops = Obs.counter "bitset.set_ops"
let c_scans = Obs.counter "bitset.scans"

type t = { cap : int; words : int array }

let n_words cap = (cap + word_bits - 1) / word_bits

let create cap =
  if cap < 0 then invalid_arg "Bitset.create: negative capacity";
  { cap; words = Array.make (n_words cap) 0 }

let check_bounds t i name =
  if i < 0 || i >= t.cap then invalid_arg (name ^ ": index out of capacity")

let check_same a b name =
  if a.cap <> b.cap then invalid_arg (name ^ ": capacity mismatch")

let mask_last cap =
  let rem = cap mod word_bits in
  if rem = 0 then -1 land ((1 lsl word_bits) - 1) else (1 lsl rem) - 1

let full cap =
  let t = create cap in
  let words = Array.map (fun _ -> (1 lsl word_bits) - 1) t.words in
  let nw = Array.length words in
  if nw > 0 then words.(nw - 1) <- mask_last cap;
  { cap; words }

let mem t i =
  check_bounds t i "Bitset.mem";
  (t.words.(i / word_bits) lsr (i mod word_bits)) land 1 = 1

let add t i =
  check_bounds t i "Bitset.add";
  let words = Array.copy t.words in
  words.(i / word_bits) <- words.(i / word_bits) lor (1 lsl (i mod word_bits));
  { t with words }

let remove t i =
  check_bounds t i "Bitset.remove";
  let words = Array.copy t.words in
  words.(i / word_bits) <- words.(i / word_bits) land lnot (1 lsl (i mod word_bits));
  { t with words }

let singleton cap i = add (create cap) i
let of_list cap is = List.fold_left add (create cap) is

(* Bulk constructor: one fresh words array, no per-bit copying. The
   loop only ever sets bits below [cap], so the unused high bits of the
   last word stay zero by construction. *)
let init cap p =
  if cap < 0 then invalid_arg "Bitset.init: negative capacity";
  let words = Array.make (n_words cap) 0 in
  for i = 0 to cap - 1 do
    if p i then words.(i / word_bits) <- words.(i / word_bits) lor (1 lsl (i mod word_bits))
  done;
  { cap; words }

let map2 name f a b =
  check_same a b name;
  Obs.incr c_set_ops;
  { cap = a.cap; words = Array.init (Array.length a.words) (fun k -> f a.words.(k) b.words.(k)) }

let union a b = map2 "Bitset.union" ( lor ) a b
let inter a b = map2 "Bitset.inter" ( land ) a b
let diff a b = map2 "Bitset.diff" (fun x y -> x land lnot y) a b

(* lxor preserves the zero-high-bits invariant: both operands have
   their unused bits at zero, so the xor does too. *)
let symdiff a b = map2 "Bitset.symdiff" ( lxor ) a b

let complement t =
  let all = full t.cap in
  diff all t

let equal a b = check_same a b "Bitset.equal"; a.words = b.words

let subset a b =
  check_same a b "Bitset.subset";
  Array.for_all2 (fun x y -> x land lnot y = 0) a.words b.words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words
let capacity t = t.cap

let iter f t =
  Obs.incr c_scans;
  for k = 0 to Array.length t.words - 1 do
    let w = ref t.words.(k) in
    while !w <> 0 do
      let bit = !w land - !w in
      let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
      f ((k * word_bits) + log2 bit 0);
      w := !w land lnot bit
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

exception Short_circuit

let for_all p t =
  try
    iter (fun i -> if not (p i) then raise Short_circuit) t;
    true
  with Short_circuit -> false

let exists p t = not (for_all (fun i -> not (p i)) t)

let filter p t = fold (fun i acc -> if p i then add acc i else acc) t (create t.cap)

let pp fmt t =
  Format.fprintf fmt "@[<hov 1>{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") Format.pp_print_int)
    (to_list t)
