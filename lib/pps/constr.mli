(** Probabilistic constraints (paper, Definition 3.2).

    A probabilistic constraint on a proper action α in a pps [T] is a
    statement [µ_T(ϕ@α | α) ≥ p]: when the agent performs α, the
    condition ϕ should hold with probability at least the threshold
    [p]. For facts about runs this reduces to [µ_T(ϕ | α) ≥ p]. *)

open Pak_rational

type t = {
  agent : int;
  act : string;
  fact : Fact.t;
  threshold : Q.t;
}

val make : agent:int -> act:string -> fact:Fact.t -> threshold:Q.t -> t
(** @raise Invalid_argument if the threshold is not a probability.
    @raise Action.Not_proper if the action is not proper in the fact's
    tree. *)

val mu_given_action : Fact.t -> agent:int -> act:string -> Q.t
(** [µ_T(ϕ@α | α)], the left-hand side of a probabilistic constraint.
    @raise Action.Not_proper if the action is not proper.
    @raise Pak_guard.Error.Division_by_zero if the action is never performed. *)

val holds : t -> bool
(** Whether the constraint is satisfied (exact comparison). *)

type report = {
  constr : t;
  mu : Q.t;               (** µ(ϕ@α | α) *)
  action_measure : Q.t;   (** µ(R_α) *)
  satisfied : bool;
  independent : bool;     (** Definition 4.1 for this (ϕ, α) *)
}

val report : t -> report

val report_graded : ?samples:int -> ?seed:int -> t -> report Pak_guard.Graded.t
(** {!report} with graceful degradation: if the exact computation
    exceeds the installed {!Pak_guard.Budget}, [mu] and
    [action_measure] are recomputed as bounded Monte-Carlo estimates
    (default 10000 samples) and the report is returned [Estimated]
    with the sample count. In an estimated report [satisfied] compares
    the estimate against the threshold and [independent] is not
    estimated (always [false]). *)

val pp_report : Format.formatter -> report -> unit

val pp_report_graded : Format.formatter -> report Pak_guard.Graded.t -> unit
(** Prints like {!pp_report}, with an unmissable
    ["ESTIMATED (n samples, not exact)"] banner when degraded. *)
