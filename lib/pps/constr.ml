open Pak_rational

module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget
module Graded = Pak_guard.Graded

let c_mu_queries = Obs.counter "constr.mu_queries"

type t = {
  agent : int;
  act : string;
  fact : Fact.t;
  threshold : Q.t;
}

let mu_given_action fact ~agent ~act =
  Obs.incr c_mu_queries;
  let tree = Fact.tree fact in
  Tree.cond tree
    (Fact.at_action fact ~agent ~act)
    ~given:(Action.runs_performing tree ~agent ~act)

let make ~agent ~act ~fact ~threshold =
  if not (Q.is_probability threshold) then
    invalid_arg "Constr.make: threshold must be a probability";
  Action.check_proper (Fact.tree fact) ~agent ~act;
  { agent; act; fact; threshold }

let holds c = Q.geq (mu_given_action c.fact ~agent:c.agent ~act:c.act) c.threshold

type report = {
  constr : t;
  mu : Q.t;
  action_measure : Q.t;
  satisfied : bool;
  independent : bool;
}

let report c =
  Obs.span "constr.report" (fun () ->
      let tree = Fact.tree c.fact in
      let mu = mu_given_action c.fact ~agent:c.agent ~act:c.act in
      { constr = c;
        mu;
        action_measure =
          Tree.measure tree (Action.runs_performing tree ~agent:c.agent ~act:c.act);
        satisfied = Q.geq mu c.threshold;
        independent = Independence.holds c.fact ~agent:c.agent ~act:c.act
      })

(* Graceful degradation: when the exact report blows the installed
   budget, fall back to Monte-Carlo estimates of µ(ϕ@α | α) and µ(R_α)
   (budget-exempt; cost bounded by [samples] O(depth) walks). The
   [independent] flag is not estimated — it reports false in an
   estimated report, which only weakens the claim. *)
let report_graded ?(samples = 10_000) ?(seed = 1) c =
  match Budget.attempt (fun () -> report c) with
  | Ok r -> Graded.Exact r
  | Error _ ->
    Budget.exempt (fun () ->
        let tree = Fact.tree c.fact in
        let given = Action.runs_performing tree ~agent:c.agent ~act:c.act in
        let event = Fact.at_action c.fact ~agent:c.agent ~act:c.act in
        let mu =
          match Simulate.estimate_cond tree ~event ~given ~samples ~seed with
          | Some q -> q
          | None -> Q.zero
        in
        Graded.Estimated
          { value =
              { constr = c;
                mu;
                action_measure = Simulate.estimate tree ~event:given ~samples ~seed;
                satisfied = Q.geq mu c.threshold;
                independent = false
              };
            samples
          })

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>constraint µ(ϕ@@%s | %s) ≥ %a for agent %d:@ measured µ = %a (= %s)@ µ(R_α) = %a@ satisfied: %b@ local-state independent: %b@]"
    r.constr.act r.constr.act Q.pp r.constr.threshold r.constr.agent Q.pp r.mu
    (Q.to_decimal_string r.mu) Q.pp r.action_measure r.satisfied r.independent

let pp_report_graded fmt = function
  | Graded.Exact r -> pp_report fmt r
  | Graded.Estimated { value; samples } ->
    Format.fprintf fmt "@[<v>ESTIMATED (%d samples, not exact):@ %a@]" samples pp_report value
