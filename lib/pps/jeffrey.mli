(** Jeffrey conditionalization / the law of total probability
    (Section 6.1), as executable checks over a pps.

    The paper grounds Theorem 6.2 in two classical identities. With
    events [X₁ … Xₙ] partitioning the runs and [E], [Y] arbitrary
    events:

    {v Pr(E)   = Σᵢ Pr(Xᵢ) · Pr(E | Xᵢ)                (total probability)
    Pr(E|Y) = Σᵢ Pr(Xᵢ|Y) · Pr(E | Xᵢ ∩ Y)         (generalized)  v}

    In the proof of Theorem 6.2 the cells [Xᵢ] are the events [α@ℓ]
    (the action performed at a given local state) and [Y = R_α]. This
    module exposes the identities directly — both for arbitrary
    partitions and for the canonical local-state partitions — so the
    probabilistic engine under the paper's main result is itself
    tested, independently of the belief layer. *)

open Pak_rational

val is_partition : Tree.t -> Bitset.t list -> bool
(** Cells are pairwise disjoint and cover all runs. *)

val total_probability : Tree.t -> cells:Bitset.t list -> event:Bitset.t -> Q.t
(** [Σᵢ µ(Xᵢ) · µ(E | Xᵢ)] over the cells of positive measure (cells
    of measure zero cannot occur in a pps partition built from
    nonempty events, but empty cells are skipped for convenience).
    @raise Invalid_argument if the cells do not partition the runs. *)

val conditional_total_probability :
  Tree.t -> cells:Bitset.t list -> event:Bitset.t -> given:Bitset.t -> Q.t
(** [Σᵢ µ(Xᵢ|Y) · µ(E | Xᵢ ∩ Y)], the generalized identity.
    @raise Invalid_argument if the cells do not partition the runs.
    @raise Pak_guard.Error.Division_by_zero if [µ(Y) = 0]. *)

val lstate_partition : Tree.t -> agent:int -> time:int -> Bitset.t list
(** The partition of the runs {e alive at [time]} by the agent's local
    state, plus one cell for runs shorter than [time+1]. This is the
    "experiment outcome" partition of Section 6.1. *)

val action_partition : Tree.t -> agent:int -> act:string -> Bitset.t list
(** The partition of [R_α] by the local state at which the (proper)
    action is performed, plus the complement cell [¬R_α] — the exact
    partition used in the proof of Theorem 6.2.
    @raise Action.Not_proper if the action is not proper. *)
