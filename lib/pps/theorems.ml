open Pak_rational

module Obs = Pak_obs.Obs

(* Each checker computes hypothesis and conclusion separately and then
   records the material implication, so that the test suite can assert
   [respected = true] on arbitrary generated systems without first
   filtering for the hypothesis. *)

type expectation_report = {
  mu : Q.t;
  expected_belief : Q.t;
  independent : bool;
  identity : bool;
  respected : bool;
}

let expectation_identity fact ~agent ~act =
  Obs.span "theorems.expectation_identity" @@ fun () ->
    let mu = Constr.mu_given_action fact ~agent ~act in
    let expected_belief = Belief.expected_at_action fact ~agent ~act in
    let independent = Independence.holds fact ~agent ~act in
    let identity = Q.equal mu expected_belief in
    { mu; expected_belief; independent; identity; respected = (not independent) || identity }

type sufficiency_report = {
  threshold : Q.t;
  independent : bool;
  min_belief : Q.t;
  premise : bool;
  mu : Q.t;
  conclusion : bool;
  respected : bool;
}

let sufficiency fact ~agent ~act ~p =
  Obs.span "theorems.sufficiency" @@ fun () ->
    let tree = Fact.tree fact in
    Action.check_proper tree ~agent ~act;
    let min_belief =
      match Belief.min_at_action fact ~agent ~act with
      | Some m -> m
      | None -> Q.one (* unreachable for proper actions *)
    in
    let premise = Q.geq min_belief p in
    let mu = Constr.mu_given_action fact ~agent ~act in
    let independent = Independence.holds fact ~agent ~act in
    let conclusion = Q.geq mu p in
    { threshold = p;
      independent;
      min_belief;
      premise;
      mu;
      conclusion;
      respected = (not (independent && premise)) || conclusion
    }

type lemma43_report = {
  deterministic : bool;
  past_based : bool;
  independent : bool;
  respected : bool;
}

let lemma43 fact ~agent ~act =
  Obs.span "theorems.lemma43" @@ fun () ->
    let tree = Fact.tree fact in
    Action.check_proper tree ~agent ~act;
    let deterministic = Action.is_deterministic tree ~agent ~act in
    let past_based = Fact.is_past_based fact in
    let independent = Independence.holds fact ~agent ~act in
    { deterministic;
      past_based;
      independent;
      respected = (not (deterministic || past_based)) || independent
    }

type necessity_report = {
  threshold : Q.t;
  independent : bool;
  constraint_holds : bool;
  witness : (int * int) option;
  respected : bool;
}

let necessity_exists fact ~agent ~act ~p =
  Obs.span "theorems.necessity_exists" @@ fun () ->
    let tree = Fact.tree fact in
    Action.check_proper tree ~agent ~act;
    let mu = Constr.mu_given_action fact ~agent ~act in
    let constraint_holds = Q.geq mu p in
    let independent = Independence.holds fact ~agent ~act in
    let witness =
      List.find_opt
        (fun (run, time) -> Q.geq (Belief.degree fact ~agent ~run ~time) p)
        (Action.occurrences tree ~agent ~act)
    in
    { threshold = p;
      independent;
      constraint_holds;
      witness;
      respected = (not (independent && constraint_holds)) || witness <> None
    }

type pak_report = {
  eps : Q.t;
  delta : Q.t;
  independent : bool;
  mu : Q.t;
  premise : bool;
  strong_belief_measure : Q.t;
  conclusion : bool;
  respected : bool;
}

let pak_general fact ~agent ~act ~eps ~delta =
  Obs.span "theorems.pak" @@ fun () ->
    let tree = Fact.tree fact in
    Action.check_proper tree ~agent ~act;
    let mu = Constr.mu_given_action fact ~agent ~act in
    let independent = Independence.holds fact ~agent ~act in
    let premise = Q.geq mu (Q.one_minus (Q.mul delta eps)) in
    let strong_belief_measure =
      Tree.cond tree
        (Belief.threshold_event fact ~agent ~act ~cmp:`Geq (Q.one_minus eps))
        ~given:(Action.runs_performing tree ~agent ~act)
    in
    let conclusion = Q.geq strong_belief_measure (Q.one_minus delta) in
    { eps;
      delta;
      independent;
      mu;
      premise;
      strong_belief_measure;
      conclusion;
      respected = (not (independent && premise)) || conclusion
    }

let pak fact ~agent ~act ~eps ~delta =
  let open_unit q = Q.gt q Q.zero && Q.lt q Q.one in
  if not (open_unit eps && open_unit delta) then
    invalid_arg "Theorems.pak: eps and delta must lie in (0,1)";
  pak_general fact ~agent ~act ~eps ~delta

let pak_corollary fact ~agent ~act ~eps =
  if not (Q.is_probability eps) then
    invalid_arg "Theorems.pak_corollary: eps must lie in [0,1]";
  pak_general fact ~agent ~act ~eps ~delta:eps

type kop_report = {
  mu : Q.t;
  premise : bool;
  certain_measure : Q.t;
  conclusion : bool;
  respected : bool;
}

let kop fact ~agent ~act =
  Obs.span "theorems.kop" @@ fun () ->
    let tree = Fact.tree fact in
    Action.check_proper tree ~agent ~act;
    let mu = Constr.mu_given_action fact ~agent ~act in
    let independent = Independence.holds fact ~agent ~act in
    let premise = Q.equal mu Q.one in
    let certain_measure =
      Tree.cond tree
        (Belief.threshold_event fact ~agent ~act ~cmp:`Eq Q.one)
        ~given:(Action.runs_performing tree ~agent ~act)
    in
    let conclusion = Q.equal certain_measure Q.one in
    { mu;
      premise;
      certain_measure;
      conclusion;
      respected = (not (independent && premise)) || conclusion
    }

let pp_expectation fmt (r : expectation_report) =
  Format.fprintf fmt
    "@[<v>Theorem 6.2: µ(ϕ@@α|α) = %a, E(β@@α|α) = %a, independent=%b, identity=%b, respected=%b@]"
    Q.pp r.mu Q.pp r.expected_belief r.independent r.identity r.respected

let pp_sufficiency fmt (r : sufficiency_report) =
  Format.fprintf fmt
    "@[<v>Theorem 4.2 (p=%a): min β@@α = %a, premise=%b, µ=%a, conclusion=%b, independent=%b, respected=%b@]"
    Q.pp r.threshold Q.pp r.min_belief r.premise Q.pp r.mu r.conclusion r.independent
    r.respected

let pp_lemma43 fmt (r : lemma43_report) =
  Format.fprintf fmt
    "@[<v>Lemma 4.3: deterministic=%b, past-based=%b, independent=%b, respected=%b@]"
    r.deterministic r.past_based r.independent r.respected

let pp_necessity fmt (r : necessity_report) =
  Format.fprintf fmt
    "@[<v>Lemma 5.1 (p=%a): constraint=%b, witness=%s, independent=%b, respected=%b@]"
    Q.pp r.threshold r.constraint_holds
    (match r.witness with
     | Some (run, time) -> Printf.sprintf "(r%d,t%d)" run time
     | None -> "none")
    r.independent r.respected

let pp_pak fmt (r : pak_report) =
  Format.fprintf fmt
    "@[<v>Theorem 7.1 (ε=%a, δ=%a): µ=%a, premise (µ ≥ 1−δε)=%b, µ(β ≥ 1−ε | α)=%a, conclusion (≥ 1−δ)=%b, respected=%b@]"
    Q.pp r.eps Q.pp r.delta Q.pp r.mu r.premise Q.pp r.strong_belief_measure r.conclusion
    r.respected

let pp_kop fmt (r : kop_report) =
  Format.fprintf fmt
    "@[<v>Lemma F.1 (KoP): µ=%a, premise (µ=1)=%b, µ(β=1|α)=%a, conclusion=%b, respected=%b@]"
    Q.pp r.mu r.premise Q.pp r.certain_measure r.conclusion r.respected
