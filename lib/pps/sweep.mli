(** Parallel theorem sweeps: run one {!Theorems} checker over a whole
    {!Gen}-generated family of random systems, optionally across the
    domains of a {!Pak_par.Pool}.

    A sweep evaluates seeds [first_seed .. first_seed + count - 1]. For
    each seed it generates the protocol-consistent tree [Gen.tree seed],
    picks a proper action and a past-based fact from the same seed, and
    runs the selected checker; seeds whose tree has no proper action
    are counted as skipped. The per-seed computation is a pure function
    of the seed, so a sweep's {!report} is {e identical for every job
    count} — outcomes are assembled in seed order regardless of which
    domain checked which seed ([pak sweep --jobs 4] is byte-for-byte
    [pak sweep --jobs 1]).

    Budgets compose: a sweep running inside {!Pak_guard.Budget.install}
    or [with_budget] spends one shared pool of fuel across all its
    domains, so [--max-points] bounds the whole sweep, not each domain
    separately. *)

open Pak_rational

(** Which paper result to check on every generated system. *)
type check =
  | Expectation  (** Theorem 6.2: exact expectation identity. *)
  | Sufficiency  (** Theorem 4.2 at [p] = the minimal belief. *)
  | Lemma43  (** Lemma 4.3(b): past-based facts are independent. *)
  | Necessity  (** Lemma 5.1 at [p = µ(ϕ@α | α)]. *)
  | Pak_corollary  (** Corollary 7.2 at the sweep's [eps]. *)
  | Kop  (** Lemma F.1, the Knowledge-of-Preconditions limit. *)

val all_checks : check list
(** Every check, in the fixed order above. *)

val check_name : check -> string
(** Stable CLI name: [thm62], [thm42], [lemma43], [lemma51], [cor72],
    [kop]. *)

val of_name : string -> check option
(** Inverse of {!check_name}; [None] for unknown names. *)

val paper_result : check -> string
(** The paper result the check exercises, e.g. ["Theorem 6.2"]. *)

val seed_instance : ?params:Gen.params -> int -> (Tree.t * (int * string) * Fact.t) option
(** The per-seed instance a sweep checks: the generated tree, the
    picked proper (agent, action) pair and the past-based fact — [None]
    when the seed's tree offers no proper action. A pure function of
    [(params, seed)]; {!run} checks exactly these instances, and the
    certificate layer ([Pak_cert.certify_sweep]) re-derives them from
    the same seeds. *)

type report = {
  check : check;
  eps : Q.t;  (** the ε used by [Pak_corollary]; recorded for all. *)
  first_seed : int;
  count : int;
  checked : int;  (** seeds with a proper action, actually checked *)
  skipped : int;  (** seeds whose tree offered no proper action *)
  violations : int list;  (** seeds whose check came back false, ascending *)
}

val passed : report -> bool
(** No violations and at least one system actually checked — the same
    criterion the reproduction bench applies to its random sweeps. *)

val run :
  ?pool:Pak_par.Pool.t ->
  ?params:Gen.params ->
  ?eps:Q.t ->
  check ->
  first_seed:int ->
  count:int ->
  report
(** Run one check over [count] seeds starting at [first_seed],
    generating trees with [params] (default {!Gen.default_params}) and
    using [eps] (default 1/10) for {!Pak_corollary}. Work is split
    across [pool] when given; the report does not depend on the pool.

    @raise Invalid_argument if [count < 0]. *)

val run_all :
  ?pool:Pak_par.Pool.t ->
  ?params:Gen.params ->
  ?eps:Q.t ->
  first_seed:int ->
  count:int ->
  unit ->
  report list
(** {!run} for every member of {!all_checks}, in order. *)

val pp_report : Format.formatter -> report -> unit
(** One line per sweep:
    [thm62 (Theorem 6.2): seeds 1..400: 400 checked, 0 skipped, 0
    violations  OK] — with the violating seeds listed when any. *)
