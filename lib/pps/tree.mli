(** Purely probabilistic systems (pps) as finite labelled trees.

    A pps (paper, Section 2.1) is a finite directed tree [T = (V,E,π)]
    whose root [λ] only fixes a distribution over initial global states,
    whose other nodes carry global states, and whose edges carry
    strictly positive probabilities summing to one at every internal
    node. A {e run} is a path from a child of the root to a leaf, and
    the product of edge probabilities along a run defines the prior
    measure [µ_T] over the (finite) set of runs.

    Edges additionally carry the joint action tuple that produced the
    transition, which plays the role of the history component of the
    environment state in the paper: [does_i(α)] at [(r,t)] is read off
    the edge from [r(t)] to [r(t+1)].

    Local-state identity is the pair (time, label) per agent ({!lkey}),
    which realizes the paper's synchrony assumption that every local
    state contains the current time.

    Runs are referred to by dense indices [0 .. n_runs t - 1]; points
    are pairs of a run index and a time. *)

open Pak_rational

type t

type lkey
(** Identity of a local state: agent, time, and label. *)

(** {1 Building} *)

module Builder : sig
  type tree := t
  type t

  val create : n_agents:int -> t
  (** Start a pps with [n_agents] agents (numbered [0 .. n_agents-1]).
      @raise Invalid_argument if [n_agents < 1]. *)

  val add_initial : t -> prob:Q.t -> Gstate.t -> int
  (** Add an initial global state (a child of the root) reached with the
      given probability; returns its node id.
      @raise Invalid_argument if the probability is not in (0,1] or the
      state has the wrong number of agents. *)

  val add_child : t -> parent:int -> prob:Q.t -> acts:string array -> Gstate.t -> int
  (** Add a successor of [parent], reached when the joint action [acts]
      is performed, with the given transition probability. [acts] has
      length [n_agents + 1]: index 0 is the environment's action, index
      [i+1] is agent [i]'s. Returns the new node id.
      @raise Invalid_argument on a bad probability, a bad [acts] length,
      an unknown parent, or a duplicate joint action among the parent's
      existing edges (a joint action must determine a unique successor). *)

  val finalize : t -> tree
  (** Check global invariants (at least one initial state; edge
      probabilities sum to exactly one at the root and at every internal
      node) and freeze the tree, enumerating runs and indexing local
      states. @raise Invalid_argument if an invariant fails. *)
end

(** {1 Structure} *)

val tree_id : t -> int
(** Unique id of this tree value, used to detect facts applied to the
    wrong tree. *)

val n_agents : t -> int
val n_nodes : t -> int
(** Number of state-bearing nodes (the root [λ] is not counted). *)

val n_runs : t -> int
val n_points : t -> int

val node_state : t -> int -> Gstate.t
val node_depth : t -> int -> int
val node_parent : t -> int -> int option
(** [None] for initial states (children of the root). *)

val node_children : t -> int -> (Q.t * string array * int) list
(** Outgoing edges as (probability, joint action, child id). *)

val initial_nodes : t -> (Q.t * int) list
(** The root's children with their probabilities. *)

(** {1 Runs and points} *)

val run_length : t -> int -> int
(** Number of points of the run (final time is [run_length - 1]). *)

val run_measure : t -> int -> Q.t
(** Prior measure [µ_T(r)]; strictly positive. *)

val run_node : t -> run:int -> time:int -> int
(** Node id at [(r,t)]. @raise Invalid_argument if [time] is out of
    range for the run. *)

val runs_agree_upto : t -> int -> int -> time:int -> bool
(** Whether two runs share the same prefix up to and including [time]
    (equivalently: pass through the same node at [time]). Runs shorter
    than [time+1] agree with nothing. *)

val node_runs : t -> int -> Bitset.t
(** Event of all runs passing through the given node. *)

val iter_points : t -> (run:int -> time:int -> unit) -> unit
val fold_points : t -> init:'a -> f:('a -> run:int -> time:int -> 'a) -> 'a

(** {1 Measure} *)

val all_runs : t -> Bitset.t
val empty_event : t -> Bitset.t

val measure : t -> Bitset.t -> Q.t
(** [µ_T(Q)] for an event [Q] (a set of runs). *)

val cond : t -> Bitset.t -> given:Bitset.t -> Q.t
(** Conditional probability [µ_T(A | B)].
    @raise Pak_guard.Error.Division_by_zero if [µ_T(B) = 0]. *)

(** {1 Local states} *)

val lkey : t -> agent:int -> run:int -> time:int -> lkey
(** The local state [r_i(t)]. *)

val lkey_make : agent:int -> time:int -> label:string -> lkey
val lkey_agent : lkey -> int
val lkey_time : lkey -> int
val lkey_label : lkey -> string
val lkey_equal : lkey -> lkey -> bool
val pp_lkey : Format.formatter -> lkey -> unit

val lstate_runs : t -> lkey -> Bitset.t
(** The event [ℓ_i]: runs in which the local state occurs (paper,
    Section 2.3). Empty if the local state never occurs in [t]. *)

val lstates : t -> agent:int -> lkey list
(** All local states of the agent occurring in the tree. *)

(** {1 Actions} *)

val action_at : t -> agent:int -> run:int -> time:int -> string option
(** Agent [agent]'s action at [(r,t)], or [None] at the run's final
    point (no action is performed at leaves). *)

val env_action_at : t -> run:int -> time:int -> string option

val agent_actions : t -> agent:int -> string list
(** All distinct action labels the agent ever performs, sorted. *)

(** {1 Diagnostics} *)

val check_protocol_consistency : t -> (int * lkey * string) list
(** Check that the tree could have been generated by probabilistic
    protocols (Section 2.2): for every agent [i], local state [ℓ] and
    action [α], the conditional probability that [i] performs [α] must
    be the same at every non-final node carrying [ℓ] (it is fixed by
    [P_i(ℓ)]). Returns the violating (agent, local state, action)
    triples — empty iff the tree is protocol-consistent for the agents.
    This property is what makes Lemma 4.3(b) sound; a hand-built tree
    violating it can have past-based facts that are {e not} local-state
    independent of mixed actions. A local state occurring both at final
    and non-final points is reported with action ["<none>"]. *)

val check_labels_synchronous : t -> (int * string) list
(** Local-state labels reused by one agent at two different depths.
    Such labels denote {e distinct} local states here (time is part of
    the key); this check reports them so model authors can confirm the
    reuse is intended. *)

val to_dot : t -> string
(** Graphviz rendering of the tree (states, probabilities, actions). *)
