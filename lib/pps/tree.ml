open Pak_rational

module Obs = Pak_obs.Obs
module Error = Pak_guard.Error
module Budget = Pak_guard.Budget

let c_measure_calls = Obs.counter "tree.measure_calls"
let c_measure_runs = Obs.counter "tree.measure_runs"
let c_points_visited = Obs.counter "tree.points_visited"
let c_node_lookups = Obs.counter "tree.node_lookups"

(* Nodes store their incoming edge (probability and joint action), so a
   finalized tree is a flat array. Runs are enumerated at finalize time
   as root-to-leaf node paths, and local states are indexed into events
   (bitsets of run indices) keyed by (agent, time, label). *)

type node = {
  depth : int;
  state : Gstate.t;
  parent : int; (* -1 for initial states *)
  in_prob : Q.t;
  in_acts : string array; (* [||] for initial states *)
  mutable children : int list; (* in insertion order after finalize *)
}

type run = { nodes : int array; meas : Q.t }

type lkey = { agent : int; time : int; label : string }

type t = {
  id : int;
  n_agents : int;
  nodes : node array;
  runs : run array;
  n_points : int;
  lstate_index : (lkey, Bitset.t) Hashtbl.t;
  node_runs : Bitset.t array; (* runs passing through each node *)
}

let next_id = ref 0

module Builder = struct
  type tree = t

  type t = {
    b_n_agents : int;
    mutable b_nodes : node array; (* growable; first b_count slots live *)
    mutable b_count : int;
  }

  let dummy_node =
    { depth = 0; state = Gstate.make ~env:"" ~locals:[ "" ]; parent = -1;
      in_prob = Q.one; in_acts = [||]; children = [] }

  let create ~n_agents =
    if n_agents < 1 then invalid_arg "Tree.Builder.create: need at least one agent";
    { b_n_agents = n_agents; b_nodes = Array.make 16 dummy_node; b_count = 0 }

  let check_prob prob =
    if not (Q.gt prob Q.zero && Q.leq prob Q.one) then
      invalid_arg "Tree.Builder: edge probability must be in (0,1]"

  let check_state b state =
    if Gstate.n_agents state <> b.b_n_agents then
      invalid_arg "Tree.Builder: global state has wrong number of agents"

  let push b node =
    Budget.charge_nodes 1;
    if b.b_count = Array.length b.b_nodes then begin
      let bigger = Array.make (2 * b.b_count) dummy_node in
      Array.blit b.b_nodes 0 bigger 0 b.b_count;
      b.b_nodes <- bigger
    end;
    b.b_nodes.(b.b_count) <- node;
    b.b_count <- b.b_count + 1;
    b.b_count - 1

  let nth_node b id =
    if id < 0 || id >= b.b_count then invalid_arg "Tree.Builder: unknown node id";
    b.b_nodes.(id)

  let add_initial b ~prob state =
    check_prob prob;
    check_state b state;
    push b { depth = 0; state; parent = -1; in_prob = prob; in_acts = [||]; children = [] }

  let add_child b ~parent ~prob ~acts state =
    check_prob prob;
    check_state b state;
    if Array.length acts <> b.b_n_agents + 1 then
      invalid_arg "Tree.Builder.add_child: acts must have length n_agents + 1";
    let parent_node = nth_node b parent in
    (* A joint action tuple determines a unique successor (Section 2.2). *)
    List.iter
      (fun child_id ->
        let child = nth_node b child_id in
        if child.in_acts = acts then
          invalid_arg "Tree.Builder.add_child: duplicate joint action at this node")
      parent_node.children;
    let id =
      push b
        { depth = parent_node.depth + 1; state; parent; in_prob = prob; in_acts = acts;
          children = [] }
    in
    parent_node.children <- id :: parent_node.children;
    id

  let finalize b : tree =
    if b.b_count = 0 then invalid_arg "Tree.finalize: no initial states";
    let nodes = Array.sub b.b_nodes 0 b.b_count in
    Array.iter (fun n -> n.children <- List.rev n.children) nodes;
    (* Edge probabilities must sum to one at the root and at every
       internal node. *)
    let initial_mass = ref Q.zero in
    Array.iter (fun n -> if n.parent = -1 then initial_mass := Q.add !initial_mass n.in_prob) nodes;
    if not (Q.equal !initial_mass Q.one) then
      invalid_arg
        (Format.asprintf "Tree.finalize: initial probabilities sum to %a, not 1" Q.pp
           !initial_mass);
    Array.iteri
      (fun id n ->
        match n.children with
        | [] -> ()
        | children ->
          let mass = Q.sum (List.map (fun c -> nodes.(c).in_prob) children) in
          if not (Q.equal mass Q.one) then
            invalid_arg
              (Format.asprintf
                 "Tree.finalize: node %d edge probabilities sum to %a, not 1" id Q.pp mass))
      nodes;
    (* Enumerate runs: depth-first, recording node paths to each leaf. *)
    let runs = ref [] in
    let rec descend path meas id =
      let n = nodes.(id) in
      let path = id :: path in
      let meas = Q.mul meas n.in_prob in
      match n.children with
      | [] -> runs := ({ nodes = Array.of_list (List.rev path); meas } : run) :: !runs
      | children -> List.iter (descend path meas) children
    in
    Array.iteri (fun id n -> if n.parent = -1 then descend [] Q.one id) nodes;
    let runs = Array.of_list (List.rev !runs) in
    let n_runs = Array.length runs in
    let n_points = Array.fold_left (fun acc (r : run) -> acc + Array.length r.nodes) 0 runs in
    (* Building the local-state index below visits every point once. *)
    Budget.charge_points n_points;
    (* Index: local state -> event of runs in which it occurs; and node
       -> event of runs passing through it. *)
    let lstate_index = Hashtbl.create 64 in
    let node_run_lists = Array.make b.b_count [] in
    Array.iteri
      (fun ri (r : run) ->
        Array.iteri
          (fun time node_id ->
            node_run_lists.(node_id) <- ri :: node_run_lists.(node_id);
            let state = nodes.(node_id).state in
            for agent = 0 to b.b_n_agents - 1 do
              let key = { agent; time; label = Gstate.local state agent } in
              let prev =
                match Hashtbl.find_opt lstate_index key with
                | Some s -> s
                | None -> Bitset.create n_runs
              in
              Hashtbl.replace lstate_index key (Bitset.add prev ri)
            done)
          r.nodes)
      runs;
    let node_runs = Array.map (Bitset.of_list n_runs) node_run_lists in
    incr next_id;
    { id = !next_id;
      n_agents = b.b_n_agents;
      nodes;
      runs;
      n_points;
      lstate_index;
      node_runs
    }
end

let tree_id t = t.id
let n_agents t = t.n_agents
let n_nodes t = Array.length t.nodes
let n_runs t = Array.length t.runs
let n_points t = t.n_points

let check_node t id name =
  if id < 0 || id >= Array.length t.nodes then invalid_arg (name ^ ": unknown node id")

let check_run t r name =
  if r < 0 || r >= Array.length t.runs then invalid_arg (name ^ ": unknown run index")

let node_state t id = check_node t id "Tree.node_state"; t.nodes.(id).state
let node_depth t id = check_node t id "Tree.node_depth"; t.nodes.(id).depth

let node_parent t id =
  check_node t id "Tree.node_parent";
  match t.nodes.(id).parent with -1 -> None | p -> Some p

let node_children t id =
  check_node t id "Tree.node_children";
  List.map
    (fun c -> (t.nodes.(c).in_prob, t.nodes.(c).in_acts, c))
    t.nodes.(id).children

let initial_nodes t =
  Array.to_list t.nodes
  |> List.mapi (fun id n -> (id, n))
  |> List.filter_map (fun (id, n) -> if n.parent = -1 then Some (n.in_prob, id) else None)

let run_length t r = check_run t r "Tree.run_length"; Array.length t.runs.(r).nodes
let run_measure t r = check_run t r "Tree.run_measure"; t.runs.(r).meas

let run_node t ~run ~time =
  Obs.incr c_node_lookups;
  check_run t run "Tree.run_node";
  let nodes = t.runs.(run).nodes in
  if time < 0 || time >= Array.length nodes then
    invalid_arg "Tree.run_node: time out of range for run";
  nodes.(time)

let runs_agree_upto t r1 r2 ~time =
  check_run t r1 "Tree.runs_agree_upto";
  check_run t r2 "Tree.runs_agree_upto";
  let n1 = t.runs.(r1).nodes and n2 = t.runs.(r2).nodes in
  time < Array.length n1 && time < Array.length n2 && n1.(time) = n2.(time)

let iter_points t f =
  Obs.add c_points_visited t.n_points;
  Budget.charge_points t.n_points;
  Array.iteri
    (fun run (r : run) ->
      for time = 0 to Array.length r.nodes - 1 do
        f ~run ~time
      done)
    t.runs

let fold_points t ~init ~f =
  let acc = ref init in
  iter_points t (fun ~run ~time -> acc := f !acc ~run ~time);
  !acc

let all_runs t = Bitset.full (Array.length t.runs)
let empty_event t = Bitset.create (Array.length t.runs)

let measure t ev =
  if Bitset.capacity ev <> Array.length t.runs then
    invalid_arg "Tree.measure: event capacity does not match run count";
  Obs.incr c_measure_calls;
  if !Obs.on then Obs.add c_measure_runs (Bitset.cardinal ev);
  if !Budget.active then Budget.charge_points (Bitset.cardinal ev);
  Bitset.fold (fun r acc -> Q.add acc t.runs.(r).meas) ev Q.zero

let cond t a ~given =
  let mb = measure t given in
  if Q.is_zero mb then
    raise (Error.Division_by_zero "Tree.cond: conditioning event has measure zero");
  Q.div (measure t (Bitset.inter a given)) mb

let lkey t ~agent ~run ~time =
  if agent < 0 || agent >= t.n_agents then invalid_arg "Tree.lkey: agent out of range";
  let node = run_node t ~run ~time in
  { agent; time; label = Gstate.local t.nodes.(node).state agent }

let lkey_make ~agent ~time ~label = { agent; time; label }
let lkey_agent k = k.agent
let lkey_time k = k.time
let lkey_label k = k.label
let lkey_equal a b = a = b

let pp_lkey fmt k = Format.fprintf fmt "agent %d @@ t=%d: %s" k.agent k.time k.label

let lstate_runs t key =
  match Hashtbl.find_opt t.lstate_index key with
  | Some s -> s
  | None -> empty_event t

let lstates t ~agent =
  Hashtbl.fold (fun k _ acc -> if k.agent = agent then k :: acc else acc) t.lstate_index []
  |> List.sort compare

let action_at t ~agent ~run ~time =
  if agent < 0 || agent >= t.n_agents then invalid_arg "Tree.action_at: agent out of range";
  check_run t run "Tree.action_at";
  let nodes = t.runs.(run).nodes in
  if time < 0 || time >= Array.length nodes then
    invalid_arg "Tree.action_at: time out of range for run";
  if time = Array.length nodes - 1 then None
  else Some t.nodes.(nodes.(time + 1)).in_acts.(agent + 1)

let env_action_at t ~run ~time =
  check_run t run "Tree.env_action_at";
  let nodes = t.runs.(run).nodes in
  if time < 0 || time >= Array.length nodes then
    invalid_arg "Tree.env_action_at: time out of range for run";
  if time = Array.length nodes - 1 then None else Some t.nodes.(nodes.(time + 1)).in_acts.(0)

let agent_actions t ~agent =
  if agent < 0 || agent >= t.n_agents then invalid_arg "Tree.agent_actions: agent out of range";
  let acc = Hashtbl.create 16 in
  Array.iter
    (fun n -> if Array.length n.in_acts > 0 then Hashtbl.replace acc n.in_acts.(agent + 1) ())
    t.nodes;
  Hashtbl.fold (fun a () l -> a :: l) acc [] |> List.sort String.compare

let check_protocol_consistency t =
  (* Per-node conditional action distribution for an agent: sum of
     outgoing edge probabilities by the agent's action label; [None] at
     leaves (no action performed). *)
  let node_dist node agent =
    match t.nodes.(node).children with
    | [] -> None
    | children ->
      let acc = Hashtbl.create 4 in
      List.iter
        (fun c ->
          let child = t.nodes.(c) in
          let a = child.in_acts.(agent + 1) in
          let prev = match Hashtbl.find_opt acc a with Some q -> q | None -> Q.zero in
          Hashtbl.replace acc a (Q.add prev child.in_prob))
        children;
      Some (Hashtbl.fold (fun a q l -> (a, q) :: l) acc [] |> List.sort compare)
  in
  (* Nodes grouped by (agent, lkey). *)
  let groups = Hashtbl.create 64 in
  Array.iteri
    (fun id n ->
      for agent = 0 to t.n_agents - 1 do
        let key = { agent; time = n.depth; label = Gstate.local n.state agent } in
        let prev = match Hashtbl.find_opt groups key with Some l -> l | None -> [] in
        Hashtbl.replace groups key (id :: prev)
      done)
    t.nodes;
  let violations = ref [] in
  Hashtbl.iter
    (fun key nodes ->
      let agent = key.agent in
      match List.map (fun id -> node_dist id agent) nodes with
      | [] | [ _ ] -> ()
      | first :: rest ->
        List.iter
          (fun d ->
            if d <> first then begin
              (* Name one action on which they differ, or <none> when a
                 final point mixes with non-final ones. *)
              let offending =
                match (first, d) with
                | Some xs, Some ys ->
                  let labels = List.sort_uniq compare (List.map fst (xs @ ys)) in
                  (try
                     List.find
                       (fun a -> List.assoc_opt a xs <> List.assoc_opt a ys)
                       labels
                   with Not_found -> "<none>")
                | _ -> "<none>"
              in
              if
                not
                  (List.exists
                     (fun (ag, k, a) -> ag = agent && k = key && a = offending)
                     !violations)
              then violations := (agent, key, offending) :: !violations
            end)
          rest)
    groups;
  List.sort compare !violations

let check_labels_synchronous t =
  (* Report (agent, label) pairs appearing at more than one depth. *)
  let seen = Hashtbl.create 64 in
  let offenders = Hashtbl.create 8 in
  Hashtbl.iter
    (fun k _ ->
      match Hashtbl.find_opt seen (k.agent, k.label) with
      | Some time when time <> k.time -> Hashtbl.replace offenders (k.agent, k.label) ()
      | Some _ -> ()
      | None -> Hashtbl.add seen (k.agent, k.label) k.time)
    t.lstate_index;
  Hashtbl.fold (fun k () acc -> k :: acc) offenders [] |> List.sort compare

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph pps {\n  rankdir=TB;\n  lambda [label=\"λ\", shape=point];\n";
  Array.iteri
    (fun id n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\nt=%d\", shape=box];\n" id
           (String.concat "|" (n.state.Gstate.env :: Array.to_list n.state.Gstate.locals))
           n.depth))
    t.nodes;
  Array.iteri
    (fun id n ->
      let src = if n.parent = -1 then "lambda" else Printf.sprintf "n%d" n.parent in
      let acts =
        if Array.length n.in_acts = 0 then ""
        else "\\n" ^ String.concat "," (Array.to_list n.in_acts)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> n%d [label=\"%s%s\"];\n" src id (Q.to_string n.in_prob) acts))
    t.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Used by the node-constancy test for past-based facts. *)
let node_runs t id = check_node t id "Tree.node_runs"; t.node_runs.(id)
