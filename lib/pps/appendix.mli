(** The paper's Appendix, executable.

    The appendix proves the main results by chains of exact equalities
    between conditional measures. This module computes {e every
    intermediate expression} of those chains on a concrete system, so a
    reproduction can check not only each theorem's statement but each
    step of its proof.

    - {!lemma_a1}: the five pointwise equivalences of Lemma A.1
      relating [α@ℓ], [[ϕ∧α]@ℓ], [ϕ@α] and their conjunctions.
    - {!lemma_b1}: Lemma B.1, [µ(ϕ@α | α@ℓ) = µ(ϕ@ℓ | ℓ)] for every
      [ℓ ∈ L_i[α]] — where local-state independence enters.
    - {!theorem62}: the Appendix D chain, equations (10)–(23): the
      expectation of Definition 6.1 rewritten step by step into
      [µ(ϕ@α | α)]. Every field must be equal under local-state
      independence; without it the chain breaks exactly at the
      (18)→(19) step, which the report also records. *)

open Pak_rational

(** {1 Lemma A.1} *)

type a1_report = {
  a : bool;  (** α@ℓ ⇔ α@ℓ ∧ ℓ *)
  b : bool;  (** [ϕ∧α]@ℓ ⇔ [ϕ∧α]@ℓ ∧ ℓ *)
  c : bool;  (** [ϕ∧α]@ℓ ∧ α@ℓ ⇔ [ϕ∧α]@ℓ *)
  d : bool;  (** α@ℓ ⇔ α@ℓ ∧ α *)
  e : bool;  (** ϕ@α ⇔ ϕ@α ∧ α *)
}

val lemma_a1 : Fact.t -> agent:int -> act:string -> Tree.lkey -> a1_report
(** Check each equivalence extensionally (as equality of run events).
    All five are identities of the model, so every field is always
    [true]; exposed so the test suite states Lemma A.1 positively.
    @raise Action.Not_proper for (e), which mentions ϕ@α. *)

(** {1 Lemma B.1} *)

type b1_row = {
  lstate : Tree.lkey;
  lhs : Q.t;   (** µ(ϕ@α │ α@ℓ) *)
  rhs : Q.t;   (** µ(ϕ@ℓ │ ℓ) *)
  equal : bool;
}

val lemma_b1 : Fact.t -> agent:int -> act:string -> b1_row list
(** One row per [ℓ ∈ L_i[α]]. Under local-state independence every row
    has [equal = true]. *)

(** {1 Theorem 6.2, equations (10)–(23)} *)

type thm62_derivation = {
  independent : bool;
  eq10 : Q.t;  (** Σ_{r∈R_α} µ(r|α)·(β_i(ϕ)@α)[r] — Definition 6.1 *)
  eq12 : Q.t;  (** Σ_ℓ Σ_{r∈Q^ℓ} µ(r|α)·µ(ϕ@ℓ|ℓ) *)
  eq14 : Q.t;  (** Σ_ℓ µ(ϕ@ℓ|ℓ)·µ(α@ℓ|α) *)
  eq16 : Q.t;  (** µ(α)⁻¹·Σ_ℓ µ(ϕ@ℓ|ℓ)·µ(α@ℓ) *)
  eq18 : Q.t;  (** µ(α)⁻¹·Σ_ℓ µ(ϕ@ℓ|ℓ)·µ(α@ℓ|ℓ)·µ(ℓ) *)
  eq19 : Q.t;  (** µ(α)⁻¹·Σ_ℓ µ([ϕ∧α]@ℓ|ℓ)·µ(ℓ) — uses independence *)
  eq21 : Q.t;  (** µ(α)⁻¹·Σ_ℓ µ([ϕ∧α]@ℓ) = µ(α)⁻¹·µ(ϕ@α) *)
  eq23 : Q.t;  (** µ(ϕ@α|α) *)
  chain_upto_18 : bool;  (** eq10 = eq12 = eq14 = eq16 = eq18 — always *)
  chain_19_on : bool;    (** eq19 = eq21 = eq23 — always *)
  bridge : bool;         (** eq18 = eq19 — iff the independence products
                             agree on L_i[α]; implied by independence *)
}

val theorem62 : Fact.t -> agent:int -> act:string -> thm62_derivation
(** @raise Action.Not_proper if the action is not proper.
    @raise Pak_guard.Error.Division_by_zero if the action is never performed. *)

val pp_thm62 : Format.formatter -> thm62_derivation -> unit
