open Pak_rational

module Obs = Pak_obs.Obs
module Budget = Pak_guard.Budget
module Graded = Pak_guard.Graded

let c_posterior_evals = Obs.counter "belief.posterior_evals"

type cmp = [ `Geq | `Gt | `Leq | `Lt | `Eq ]

let degree_at_lstate fact key =
  Obs.incr c_posterior_evals;
  let tree = Fact.tree fact in
  Tree.cond tree (Fact.at_lstate fact key) ~given:(Tree.lstate_runs tree key)

let degree fact ~agent ~run ~time =
  let tree = Fact.tree fact in
  degree_at_lstate fact (Tree.lkey tree ~agent ~run ~time)

let at_action fact ~agent ~act ~run =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  match Action.time_performed tree ~agent ~act ~run with
  | None -> Q.zero
  | Some time -> degree fact ~agent ~run ~time

let expected_at_action fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  let r_alpha = Action.runs_performing tree ~agent ~act in
  let mass = Tree.measure tree r_alpha in
  if Q.is_zero mass then
    raise
      (Pak_guard.Error.Division_by_zero "Belief.expected_at_action: action is never performed");
  (* Beliefs are constant per local state; group the runs of R_α by the
     local state at which α is performed so each belief is computed
     once. *)
  Q.div
    (List.fold_left
       (fun acc key ->
         let beta = degree_at_lstate fact key in
         let weight =
           Tree.measure tree (Action.performed_at_lstate tree ~agent ~act key)
         in
         Q.add acc (Q.mul beta weight))
       Q.zero
       (Action.performing_lstates tree ~agent ~act))
    mass

(* Degradation path (ISSUE: graceful degradation; paper, Section 7).
   When the exact computation exhausts the installed budget, retry as
   a bounded Monte-Carlo estimate and mark the result as such. The
   fallback runs budget-exempt: its cost is bounded by [samples] walks
   of O(depth) each, so it cannot hang, and the exhausted budget must
   not kill the recovery itself. *)

let degree_graded ?(samples = 10_000) ?(seed = 1) fact ~agent ~run ~time =
  match Budget.attempt (fun () -> degree fact ~agent ~run ~time) with
  | Ok v -> Graded.Exact v
  | Error _ ->
    Budget.exempt (fun () ->
        let tree = Fact.tree fact in
        let key = Tree.lkey tree ~agent ~run ~time in
        let event = Fact.at_lstate fact key in
        let given = Tree.lstate_runs tree key in
        let value =
          match Simulate.estimate_cond tree ~event ~given ~samples ~seed with
          | Some q -> q
          | None -> Q.zero
        in
        Graded.Estimated { value; samples })

let expected_at_action_graded ?(samples = 10_000) ?(seed = 1) fact ~agent ~act =
  match Budget.attempt (fun () -> expected_at_action fact ~agent ~act) with
  | Ok v -> Graded.Exact v
  | Error _ ->
    Budget.exempt (fun () ->
        (* By the paper's Theorem 6.2, E[β_i(ϕ@α) | α] = µ(ϕ@α | α),
           so the estimator for the expectation is the conditional
           frequency of ϕ@α among sampled runs performing α. *)
        let tree = Fact.tree fact in
        let given = Action.runs_performing tree ~agent ~act in
        let event = Fact.at_action fact ~agent ~act in
        let value =
          match Simulate.estimate_cond tree ~event ~given ~samples ~seed with
          | Some q -> q
          | None -> Q.zero
        in
        Graded.Estimated { value; samples })

let satisfies cmp q threshold =
  match cmp with
  | `Geq -> Q.geq q threshold
  | `Gt -> Q.gt q threshold
  | `Leq -> Q.leq q threshold
  | `Lt -> Q.lt q threshold
  | `Eq -> Q.equal q threshold

let threshold_event fact ~agent ~act ~cmp threshold =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  List.fold_left
    (fun ev key ->
      if satisfies cmp (degree_at_lstate fact key) threshold then
        Bitset.union ev (Action.performed_at_lstate tree ~agent ~act key)
      else ev)
    (Tree.empty_event tree)
    (Action.performing_lstates tree ~agent ~act)

let distribution_at_action fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  let r_alpha = Action.runs_performing tree ~agent ~act in
  List.map
    (fun key ->
      ( key,
        Tree.cond tree (Action.performed_at_lstate tree ~agent ~act key) ~given:r_alpha,
        degree_at_lstate fact key ))
    (Action.performing_lstates tree ~agent ~act)

let min_at_action fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  match Action.performing_lstates tree ~agent ~act with
  | [] -> None
  | keys ->
    Some
      (List.fold_left
         (fun acc key -> Q.min acc (degree_at_lstate fact key))
         Q.one keys)
