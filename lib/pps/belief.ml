open Pak_rational

module Obs = Pak_obs.Obs

let c_posterior_evals = Obs.counter "belief.posterior_evals"

type cmp = [ `Geq | `Gt | `Leq | `Lt | `Eq ]

let degree_at_lstate fact key =
  Obs.incr c_posterior_evals;
  let tree = Fact.tree fact in
  Tree.cond tree (Fact.at_lstate fact key) ~given:(Tree.lstate_runs tree key)

let degree fact ~agent ~run ~time =
  let tree = Fact.tree fact in
  degree_at_lstate fact (Tree.lkey tree ~agent ~run ~time)

let at_action fact ~agent ~act ~run =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  match Action.time_performed tree ~agent ~act ~run with
  | None -> Q.zero
  | Some time -> degree fact ~agent ~run ~time

let expected_at_action fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  let r_alpha = Action.runs_performing tree ~agent ~act in
  let mass = Tree.measure tree r_alpha in
  if Q.is_zero mass then raise Division_by_zero;
  (* Beliefs are constant per local state; group the runs of R_α by the
     local state at which α is performed so each belief is computed
     once. *)
  Q.div
    (List.fold_left
       (fun acc key ->
         let beta = degree_at_lstate fact key in
         let weight =
           Tree.measure tree (Action.performed_at_lstate tree ~agent ~act key)
         in
         Q.add acc (Q.mul beta weight))
       Q.zero
       (Action.performing_lstates tree ~agent ~act))
    mass

let satisfies cmp q threshold =
  match cmp with
  | `Geq -> Q.geq q threshold
  | `Gt -> Q.gt q threshold
  | `Leq -> Q.leq q threshold
  | `Lt -> Q.lt q threshold
  | `Eq -> Q.equal q threshold

let threshold_event fact ~agent ~act ~cmp threshold =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  List.fold_left
    (fun ev key ->
      if satisfies cmp (degree_at_lstate fact key) threshold then
        Bitset.union ev (Action.performed_at_lstate tree ~agent ~act key)
      else ev)
    (Tree.empty_event tree)
    (Action.performing_lstates tree ~agent ~act)

let distribution_at_action fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  let r_alpha = Action.runs_performing tree ~agent ~act in
  List.map
    (fun key ->
      ( key,
        Tree.cond tree (Action.performed_at_lstate tree ~agent ~act key) ~given:r_alpha,
        degree_at_lstate fact key ))
    (Action.performing_lstates tree ~agent ~act)

let min_at_action fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  match Action.performing_lstates tree ~agent ~act with
  | [] -> None
  | keys ->
    Some
      (List.fold_left
         (fun acc key -> Q.min acc (degree_at_lstate fact key))
         Q.one keys)
