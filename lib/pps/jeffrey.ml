open Pak_rational

let is_partition tree cells =
  let full = Tree.all_runs tree in
  let union = List.fold_left Bitset.union (Tree.empty_event tree) cells in
  Bitset.equal union full
  && (let rec pairwise_disjoint = function
        | [] -> true
        | c :: rest ->
          List.for_all (fun c' -> Bitset.is_empty (Bitset.inter c c')) rest
          && pairwise_disjoint rest
      in
      pairwise_disjoint cells)

let check_partition tree cells name =
  if not (is_partition tree cells) then invalid_arg (name ^ ": cells do not partition the runs")

let total_probability tree ~cells ~event =
  check_partition tree cells "Jeffrey.total_probability";
  List.fold_left
    (fun acc cell ->
      let m = Tree.measure tree cell in
      if Q.is_zero m then acc else Q.add acc (Q.mul m (Tree.cond tree event ~given:cell)))
    Q.zero cells

let conditional_total_probability tree ~cells ~event ~given =
  check_partition tree cells "Jeffrey.conditional_total_probability";
  let mu_given = Tree.measure tree given in
  if Q.is_zero mu_given then
    raise
      (Pak_guard.Error.Division_by_zero
         "Jeffrey.conditional_total_probability: given event has measure zero");
  List.fold_left
    (fun acc cell ->
      let inter = Bitset.inter cell given in
      let m = Tree.measure tree inter in
      if Q.is_zero m then acc
      else
        Q.add acc
          (Q.mul (Q.div m mu_given) (Tree.cond tree event ~given:inter)))
    Q.zero cells

let lstate_partition tree ~agent ~time =
  let alive = ref (Tree.empty_event tree) in
  for run = 0 to Tree.n_runs tree - 1 do
    if Tree.run_length tree run > time then alive := Bitset.add !alive run
  done;
  let keys =
    List.filter (fun k -> Tree.lkey_time k = time) (Tree.lstates tree ~agent)
  in
  let cells = List.map (Tree.lstate_runs tree) keys in
  let dead = Bitset.complement !alive in
  if Bitset.is_empty dead then cells else dead :: cells

let action_partition tree ~agent ~act =
  Action.check_proper tree ~agent ~act;
  let cells =
    List.map
      (fun key -> Action.performed_at_lstate tree ~agent ~act key)
      (Action.performing_lstates tree ~agent ~act)
  in
  let r_alpha = Action.runs_performing tree ~agent ~act in
  let rest = Bitset.complement r_alpha in
  if Bitset.is_empty rest then cells else rest :: cells
