open Pak_rational
module Error = Pak_guard.Error

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let quote buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "(pps (agents %d)\n" (Tree.n_agents tree));
  (* Emit nodes in id order. Initial nodes carry parent -1; every other
     node's incoming edge is found through its parent's children. *)
  let incoming = Hashtbl.create 64 in
  List.iter
    (fun (prob, id) -> Hashtbl.replace incoming id (prob, [||], -1))
    (Tree.initial_nodes tree);
  for id = 0 to Tree.n_nodes tree - 1 do
    List.iter
      (fun (prob, acts, child) -> Hashtbl.replace incoming child (prob, acts, id))
      (Tree.node_children tree id)
  done;
  for id = 0 to Tree.n_nodes tree - 1 do
    let prob, acts, parent =
      match Hashtbl.find_opt incoming id with
      | Some v -> v
      | None -> invalid_arg "Tree_io.to_string: orphan node"
    in
    let state = Tree.node_state tree id in
    Buffer.add_string buf
      (Printf.sprintf "  (node (parent %d) (prob %s) (acts" parent (Q.to_string prob));
    Array.iter
      (fun a ->
        Buffer.add_char buf ' ';
        quote buf a)
      acts;
    Buffer.add_string buf ") (env ";
    quote buf state.Gstate.env;
    Buffer.add_string buf ") (locals";
    Array.iter
      (fun l ->
        Buffer.add_char buf ' ';
        quote buf l)
      state.Gstate.locals;
    Buffer.add_string buf "))\n"
  done;
  Buffer.add_string buf ")\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: a minimal s-expression reader                              *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | Str of string | List of sexp list

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then begin
      tokens := `Open :: !tokens;
      incr i
    end
    else if c = ')' then begin
      tokens := `Close :: !tokens;
      incr i
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match input.[!i] with
         | '"' -> closed := true
         | '\\' ->
           if !i + 1 >= n then raise (Parse_error "dangling escape in string");
           incr i;
           Buffer.add_char buf input.[!i]
         | c -> Buffer.add_char buf c);
        incr i
      done;
      if not !closed then raise (Parse_error "unterminated string");
      tokens := `Str (Buffer.contents buf) :: !tokens
    end
    else begin
      let j = ref !i in
      while
        !j < n
        &&
        let c = input.[!j] in
        c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r' && c <> '(' && c <> ')' && c <> '"'
      do
        incr j
      done;
      tokens := `Atom (String.sub input !i (!j - !i)) :: !tokens;
      i := !j
    end
  done;
  List.rev !tokens

(* Nesting bound: documents are untrusted, and the depth of legitimate
   pps documents is constant (node fields), so any deeply-nested input
   is garbage. The explicit accumulator stack keeps parsing
   tail-recursive — parse depth and list length are both
   input-controlled and must not be able to overflow the OCaml stack. *)
let max_nesting = 1000

let parse_sexp tokens =
  let rec go depth stack acc tokens =
    match tokens with
    | [] ->
      if depth > 0 then raise (Parse_error "unterminated '('")
      else (
        match List.rev acc with
        | [ sexp ] -> sexp
        | [] -> raise (Parse_error "unexpected end of input")
        | _ -> raise (Parse_error "trailing input after document"))
    | `Open :: rest ->
      if depth >= max_nesting then
        raise (Parse_error (Printf.sprintf "nesting deeper than %d" max_nesting));
      go (depth + 1) (acc :: stack) [] rest
    | `Close :: rest ->
      (match stack with
       | [] -> raise (Parse_error "unexpected ')'")
       | parent :: stack' -> go (depth - 1) stack' (List (List.rev acc) :: parent) rest)
    | `Atom a :: rest -> go depth stack (Atom a :: acc) rest
    | `Str s :: rest -> go depth stack (Str s :: acc) rest
  in
  go 0 [] [] tokens

(* ------------------------------------------------------------------ *)
(* Document interpretation                                             *)
(* ------------------------------------------------------------------ *)

let field name = function
  | List (Atom key :: rest) when key = name -> rest
  | _ -> raise (Parse_error (Printf.sprintf "expected (%s ...)" name))

let as_int what = function
  | Atom a ->
    (match int_of_string_opt a with
     | Some v -> v
     | None -> raise (Parse_error (what ^ ": not an integer")))
  | _ -> raise (Parse_error (what ^ ": not an integer"))

let as_string what = function
  | Str s -> s
  | _ -> raise (Parse_error (what ^ ": not a string"))

let as_q what = function
  | Atom a ->
    (try Q.of_string a
     with _ -> raise (Parse_error (what ^ ": not a rational")))
  | _ -> raise (Parse_error (what ^ ": not a rational"))

let interpret input =
  match parse_sexp (tokenize input) with
  | List (Atom "pps" :: header :: nodes) ->
    let n_agents =
      match field "agents" header with
      | [ v ] -> as_int "agents" v
      | _ -> raise (Parse_error "(agents n) expected")
    in
    let b = Tree.Builder.create ~n_agents in
    List.iter
      (fun node ->
        match node with
        | List (Atom "node" :: fields) ->
          (match fields with
           | [ parent_f; prob_f; acts_f; env_f; locals_f ] ->
             let parent =
               match field "parent" parent_f with
               | [ v ] -> as_int "parent" v
               | _ -> raise (Parse_error "(parent id) expected")
             in
             let prob =
               match field "prob" prob_f with
               | [ v ] -> as_q "prob" v
               | _ -> raise (Parse_error "(prob q) expected")
             in
             let acts =
               field "acts" acts_f |> List.map (as_string "acts") |> Array.of_list
             in
             let env =
               match field "env" env_f with
               | [ v ] -> as_string "env" v
               | _ -> raise (Parse_error "(env label) expected")
             in
             let locals = field "locals" locals_f |> List.map (as_string "locals") in
             let state = Gstate.make ~env ~locals in
             if parent = -1 then ignore (Tree.Builder.add_initial b ~prob state)
             else ignore (Tree.Builder.add_child b ~parent ~prob ~acts state)
           | _ -> raise (Parse_error "node: expected (parent)(prob)(acts)(env)(locals)"))
        | _ -> raise (Parse_error "expected (node ...)"))
      nodes;
    Tree.Builder.finalize b
  | _ -> raise (Parse_error "expected (pps (agents n) (node ...) ...)")

(* The typed boundary. Lexical/grammatical failures are [Parse];
   well-formed documents violating a tree invariant (bad probabilities,
   duplicate joint actions, wrong arities — historically escaping as
   [Invalid_argument]) are [Invalid_system]; budget errors pass
   through. *)
let of_string_result input =
  match interpret input with
  | tree -> Ok tree
  | exception Parse_error msg ->
    Result.Error (Error.with_context "Tree_io.of_string" (Error.make Error.Parse msg))
  | exception Error.Error e -> Result.Error (Error.with_context "Tree_io.of_string" e)
  | exception Invalid_argument msg ->
    Result.Error (Error.with_context "Tree_io.of_string" (Error.make Error.Invalid_system msg))
  | exception Error.Division_by_zero ctx ->
    Result.Error
      (Error.with_context "Tree_io.of_string"
         (Error.make Error.Invalid_system ("division by zero: " ^ ctx)))
  | exception Stack_overflow ->
    Result.Error
      (Error.with_context "Tree_io.of_string"
         (Error.make Error.Budget_exceeded "stack overflow (document nested too deeply)"))

(* Deprecated shim: every failure — including builder-invariant
   violations that used to escape as [Invalid_argument] — surfaces as
   [Parse_error], as the interface always documented callers should
   expect. Budget exhaustion still propagates as the typed error. *)
let of_string input =
  match of_string_result input with
  | Ok tree -> tree
  | Result.Error ({ Error.kind = Error.Budget_exceeded; _ } as e) -> raise (Error.Error e)
  | Result.Error e -> raise (Parse_error (Error.to_string e))
