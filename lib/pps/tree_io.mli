(** Textual serialization of pps trees.

    A tree serializes to a small s-expression document:

    {v
    (pps (agents 2)
      (node (parent -1) (prob 1/2) (acts) (env "e") (locals "a" "b"))
      (node (parent 0) (prob 9/10) (acts "env" "x" "y") (env "e") (locals "a" "c")))
    v}

    Nodes appear in id order (so parents always precede children), with
    [parent -1] marking initial states. Labels are quoted strings with
    ["\\"]-escapes for quotes and backslashes; probabilities are exact
    rationals. Parsing rebuilds the tree through {!Tree.Builder}, so
    every structural invariant is re-validated on load; a parsed tree
    is observationally identical to the original (same runs, measures,
    labels, actions — checked in the test suite). *)

val to_string : Tree.t -> string

val of_string_result : string -> (Tree.t, Pak_guard.Error.t) result
(** The typed boundary for untrusted documents: never raises. Returns
    [Error] with kind [Parse] for malformed text, [Invalid_system] for
    well-formed documents violating a tree invariant (bad
    probabilities, duplicate joint actions, wrong arities — the checks
    {!Tree.Builder} enforces), and [Budget_exceeded] when an installed
    {!Pak_guard.Budget} runs out while building the tree. *)

exception Parse_error of string
(** Deprecated shim retained for source compatibility; prefer
    {!of_string_result}. *)

val of_string : string -> Tree.t
(** [of_string s] is [of_string_result s], unwrapped.
    @raise Parse_error on any malformed or invariant-violating
    document (the historical split where builder errors escaped as
    [Invalid_argument] is gone).
    @raise Pak_guard.Error.Error on budget exhaustion. *)
