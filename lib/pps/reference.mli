(** A deliberately naive reference implementation of the measure and
    belief layer, straight from the paper's definitions.

    Every function here recomputes from first principles — enumerating
    runs, comparing local states pointwise, building no indexes — and
    exists solely so the property suite can assert that the optimized
    engine ({!Tree}'s measure, {!Belief}, {!Independence}, {!Constr})
    agrees with an independent transcription of the definitions. If a
    bug ever slipped into the indexed engine and a matching bug into a
    test expectation, this second implementation would still catch it.

    Do not use in application code: complexity is whatever the
    definition dictates (typically O(runs²) or worse). *)

open Pak_rational

val mu : Tree.t -> (int -> bool) -> Q.t
(** Measure of the set of runs satisfying a predicate: [Σ µ(r)]. *)

val mu_cond : Tree.t -> (int -> bool) -> given:(int -> bool) -> Q.t
(** [µ(A|B)] by the definition of conditional probability.
    @raise Pak_guard.Error.Division_by_zero if [µ(B) = 0]. *)

val same_lstate : Tree.t -> agent:int -> int * int -> int * int -> bool
(** Whether the agent's local states at two points coincide: equal
    labels at equal times (the synchrony assumption makes unequal
    times distinguishable). *)

val beta : Fact.t -> agent:int -> run:int -> time:int -> Q.t
(** Definition 3.1, literally: [µ(ϕ@ℓ | ℓ)] where both events are
    rebuilt by scanning all runs for occurrences of the local state. *)

val performs : Tree.t -> agent:int -> act:string -> run:int -> time:int -> bool

val is_proper : Tree.t -> agent:int -> act:string -> bool

val mu_phi_at_alpha_given_alpha : Fact.t -> agent:int -> act:string -> Q.t
(** [µ(ϕ@α | α)] from the definitions in Section 3.1. *)

val expected_beta_at_alpha : Fact.t -> agent:int -> act:string -> Q.t
(** Definition 6.1 as the literal sum over all runs (with the
    convention [β@α = 0] off [R_α]). *)

val local_state_independent : Fact.t -> agent:int -> act:string -> bool
(** Definition 4.1 quantifying over every local state the agent ever
    takes, each event rebuilt by scanning. *)
