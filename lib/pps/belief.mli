(** Subjective probabilistic beliefs (paper, Section 3).

    Agent [i]'s degree of belief in a fact ϕ at a point [(r,t)] is

    {v β_i(ϕ)(r,t) = µ_T(ϕ@ℓ_i | ℓ_i)    where ℓ_i = r_i(t), v}

    the posterior probability of "ϕ holds when I am in this local
    state", conditioned on the local state occurring — the [P_post]
    notion of Halpern–Tuttle. Because every run of a pps has positive
    measure, the conditional is always well defined.

    [β_i(ϕ)@α] lifts this to the (unique) point of each run at which a
    proper action α is performed, with the paper's convention that it is
    0 in runs where α is not performed; {!expected_at_action} is the
    expected degree of belief of Definition 6.1. *)

open Pak_rational

type cmp = [ `Geq | `Gt | `Leq | `Lt | `Eq ]

val degree_at_lstate : Fact.t -> Tree.lkey -> Q.t
(** [µ(ϕ@ℓ | ℓ)]: the degree of belief any point with local state [ℓ]
    assigns to the fact.
    @raise Pak_guard.Error.Division_by_zero if the local state never occurs. *)

val degree : Fact.t -> agent:int -> run:int -> time:int -> Q.t
(** [β_i(ϕ)] at the point [(run, time)]. *)

val degree_graded :
  ?samples:int ->
  ?seed:int ->
  Fact.t ->
  agent:int ->
  run:int ->
  time:int ->
  Q.t Pak_guard.Graded.t
(** {!degree} with graceful degradation: if the exact computation
    exceeds the installed {!Pak_guard.Budget}, retries as a bounded
    Monte-Carlo estimate (default 10000 samples) and returns it as
    [Estimated] with the sample count; otherwise [Exact]. *)

val at_action : Fact.t -> agent:int -> act:string -> run:int -> Q.t
(** [(β_i(ϕ)@α)\[r\]]: the agent's degree of belief in ϕ at the unique
    point of [r] where it performs α, or 0 if α is not performed in [r].
    @raise Action.Not_proper if the action is not proper. *)

val expected_at_action : Fact.t -> agent:int -> act:string -> Q.t
(** Definition 6.1: [E_µ(β_i(ϕ)@α | α)], the expectation of the random
    variable [β_i(ϕ)@α] conditioned on [α] being performed.
    @raise Action.Not_proper if the action is not proper.
    @raise Pak_guard.Error.Division_by_zero if the action is never performed. *)

val expected_at_action_graded :
  ?samples:int -> ?seed:int -> Fact.t -> agent:int -> act:string -> Q.t Pak_guard.Graded.t
(** {!expected_at_action} with graceful degradation. The estimator
    relies on the paper's Theorem 6.2 identity
    [E(β_i(ϕ@α) | α) = µ(ϕ@α | α)]: on budget exhaustion it samples
    runs and returns the conditional frequency of [ϕ@α] among those
    performing [α], marked [Estimated]. *)

val threshold_event : Fact.t -> agent:int -> act:string -> cmp:cmp -> Q.t -> Bitset.t
(** Runs in [R_α] whose belief-at-action satisfies the comparison, e.g.
    [threshold_event ϕ ~agent ~act ~cmp:`Geq q] is the event
    [{r ∈ R_α : β_i(ϕ)@α ≥ q}] used in Theorems 5.2 and 7.1. *)

val min_at_action : Fact.t -> agent:int -> act:string -> Q.t option
(** Minimum of [β_i(ϕ)] over the points where the action is performed
    ([None] if it never is). *)

val distribution_at_action :
  Fact.t -> agent:int -> act:string -> (Tree.lkey * Q.t * Q.t) list
(** The full distribution of the random variable [β_i(ϕ)@α]
    conditioned on [α]: one entry [(ℓ, w, β)] per local state in
    [L_i\[α\]], where [w = µ(α@ℓ | α)] and [β] is the degree of belief
    at [ℓ]. The weights sum to 1 and [Σ w·β] is
    {!expected_at_action} — Definition 6.1 made inspectable.
    @raise Action.Not_proper if the action is not proper. *)
