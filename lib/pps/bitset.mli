(** Fixed-capacity sets of small integers, used for events (sets of run
    indices) over a pps. Operations are functional: inputs are never
    mutated. Both operands of binary operations must share a capacity. *)

type t

val create : int -> t
(** [create n] is the empty set of capacity [n] (members range over
    [0 .. n-1]). @raise Invalid_argument if [n < 0]. *)

val full : int -> t
(** The set containing all of [0 .. n-1]. *)

val singleton : int -> int -> t
(** [singleton n i] has capacity [n] and sole member [i]. *)

val of_list : int -> int list -> t
val to_list : t -> int list
(** Members in increasing order. *)

val init : int -> (int -> bool) -> t
(** [init n p] is the set of capacity [n] containing every
    [i < n] with [p i]. Bulk constructor: builds the packed words
    directly, so it costs one word array plus [n] predicate calls —
    use it instead of folding {!add} (which copies per element).
    @raise Invalid_argument if [n < 0]. *)

val capacity : t -> int
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val symdiff : t -> t -> t
(** Symmetric difference: members of exactly one operand. Word-wise
    [lxor]; counts as one [bitset.set_ops] like the other
    combinators. *)

val complement : t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val pp : Format.formatter -> t -> unit
