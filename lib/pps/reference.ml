open Pak_rational

let mu tree pred =
  let acc = ref Q.zero in
  for run = 0 to Tree.n_runs tree - 1 do
    if pred run then acc := Q.add !acc (Tree.run_measure tree run)
  done;
  !acc

let mu_cond tree pred ~given =
  let mb = mu tree given in
  if Q.is_zero mb then
    raise (Pak_guard.Error.Division_by_zero "Reference.mu_cond: conditioning event has measure zero");
  Q.div (mu tree (fun r -> pred r && given r)) mb

let same_lstate tree ~agent (r1, t1) (r2, t2) =
  t1 = t2
  && Gstate.local (Tree.node_state tree (Tree.run_node tree ~run:r1 ~time:t1)) agent
     = Gstate.local (Tree.node_state tree (Tree.run_node tree ~run:r2 ~time:t2)) agent

(* The event ℓ_i for the local state at (run, time): all runs in which
   the agent passes through an indistinguishable point. *)
let lstate_occurs tree ~agent ~run ~time run' =
  let len = Tree.run_length tree run' in
  let rec scan t = t < len && (same_lstate tree ~agent (run, time) (run', t) || scan (t + 1)) in
  scan 0

(* ϕ@ℓ: ℓ occurs in run' and ϕ holds at the occurrence point. *)
let phi_at_lstate fact ~agent ~run ~time run' =
  let tree = Fact.tree fact in
  let len = Tree.run_length tree run' in
  let rec scan t =
    t < len
    && ((same_lstate tree ~agent (run, time) (run', t) && Fact.holds fact ~run:run' ~time:t)
        || scan (t + 1))
  in
  scan 0

let beta fact ~agent ~run ~time =
  let tree = Fact.tree fact in
  mu_cond tree
    (phi_at_lstate fact ~agent ~run ~time)
    ~given:(lstate_occurs tree ~agent ~run ~time)

let performs tree ~agent ~act ~run ~time = Tree.action_at tree ~agent ~run ~time = Some act

let performed_in_run tree ~agent ~act run =
  let len = Tree.run_length tree run in
  let rec scan t = t < len && (performs tree ~agent ~act ~run ~time:t || scan (t + 1)) in
  scan 0

let occurrences_in_run tree ~agent ~act run =
  let acc = ref [] in
  for time = Tree.run_length tree run - 1 downto 0 do
    if performs tree ~agent ~act ~run ~time then acc := time :: !acc
  done;
  !acc

let is_proper tree ~agent ~act =
  let performed_somewhere = ref false in
  let at_most_once = ref true in
  for run = 0 to Tree.n_runs tree - 1 do
    match occurrences_in_run tree ~agent ~act run with
    | [] -> ()
    | [ _ ] -> performed_somewhere := true
    | _ -> at_most_once := false
  done;
  !performed_somewhere && !at_most_once

let check_proper tree ~agent ~act =
  if not (is_proper tree ~agent ~act) then
    raise (Action.Not_proper (Printf.sprintf "agent %d, action %s" agent act))

(* ϕ@α as a run predicate. *)
let phi_at_alpha fact ~agent ~act run =
  let tree = Fact.tree fact in
  match occurrences_in_run tree ~agent ~act run with
  | [ time ] -> Fact.holds fact ~run ~time
  | _ -> false

let mu_phi_at_alpha_given_alpha fact ~agent ~act =
  let tree = Fact.tree fact in
  check_proper tree ~agent ~act;
  mu_cond tree (phi_at_alpha fact ~agent ~act) ~given:(performed_in_run tree ~agent ~act)

let expected_beta_at_alpha fact ~agent ~act =
  let tree = Fact.tree fact in
  check_proper tree ~agent ~act;
  let mu_alpha = mu tree (performed_in_run tree ~agent ~act) in
  if Q.is_zero mu_alpha then
    raise (Pak_guard.Error.Division_by_zero "Reference: action is never performed");
  let acc = ref Q.zero in
  for run = 0 to Tree.n_runs tree - 1 do
    match occurrences_in_run tree ~agent ~act run with
    | [ time ] ->
      acc :=
        Q.add !acc
          (Q.mul (Q.div (Tree.run_measure tree run) mu_alpha) (beta fact ~agent ~run ~time))
    | _ -> ()
  done;
  !acc

let local_state_independent fact ~agent ~act =
  let tree = Fact.tree fact in
  (* Quantify over one representative point per distinct local state. *)
  let seen = ref [] in
  let ok = ref true in
  Tree.iter_points tree (fun ~run ~time ->
      if !ok && not (List.exists (fun pt -> same_lstate tree ~agent pt (run, time)) !seen)
      then begin
        seen := (run, time) :: !seen;
        let given = lstate_occurs tree ~agent ~run ~time in
        let belief = mu_cond tree (phi_at_lstate fact ~agent ~run ~time) ~given in
        let act_here run' =
          let len = Tree.run_length tree run' in
          let rec scan t =
            t < len
            && ((same_lstate tree ~agent (run, time) (run', t)
                 && performs tree ~agent ~act ~run:run' ~time:t)
                || scan (t + 1))
          in
          scan 0
        in
        let act_prob = mu_cond tree act_here ~given in
        let joint run' =
          let len = Tree.run_length tree run' in
          let rec scan t =
            t < len
            && ((same_lstate tree ~agent (run, time) (run', t)
                 && performs tree ~agent ~act ~run:run' ~time:t
                 && Fact.holds fact ~run:run' ~time:t)
                || scan (t + 1))
          in
          scan 0
        in
        if not (Q.equal (Q.mul belief act_prob) (mu_cond tree joint ~given)) then ok := false
      end);
  !ok
