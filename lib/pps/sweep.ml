open Pak_rational
module Obs = Pak_obs.Obs
module Pool = Pak_par.Pool

let c_checked = Obs.counter "sweep.systems_checked"
let c_skipped = Obs.counter "sweep.systems_skipped"

type check = Expectation | Sufficiency | Lemma43 | Necessity | Pak_corollary | Kop

let all_checks = [ Expectation; Sufficiency; Lemma43; Necessity; Pak_corollary; Kop ]

let check_name = function
  | Expectation -> "thm62"
  | Sufficiency -> "thm42"
  | Lemma43 -> "lemma43"
  | Necessity -> "lemma51"
  | Pak_corollary -> "cor72"
  | Kop -> "kop"

let of_name = function
  | "thm62" -> Some Expectation
  | "thm42" -> Some Sufficiency
  | "lemma43" -> Some Lemma43
  | "lemma51" -> Some Necessity
  | "cor72" -> Some Pak_corollary
  | "kop" -> Some Kop
  | _ -> None

let paper_result = function
  | Expectation -> "Theorem 6.2"
  | Sufficiency -> "Theorem 4.2"
  | Lemma43 -> "Lemma 4.3(b)"
  | Necessity -> "Lemma 5.1"
  | Pak_corollary -> "Corollary 7.2"
  | Kop -> "Lemma F.1"

type report = {
  check : check;
  eps : Q.t;
  first_seed : int;
  count : int;
  checked : int;
  skipped : int;
  violations : int list;
}

let passed r = r.violations = [] && r.checked > 0

type outcome = Checked of bool | Skipped

(* The instance a seed contributes: generate the tree, pick the proper
   action, derive the past-based fact. A pure function of
   (params, seed) — the property every determinism guarantee of this
   module rests on. *)
let seed_instance ?(params = Gen.default_params) seed =
  let tree = Gen.tree ~params seed in
  match Gen.pick_proper_action tree ~seed with
  | None -> None
  | Some (agent, act) -> Some (tree, (agent, act), Gen.past_based_fact tree ~seed)

(* One seed: generate, pick, check. The per-seed semantics mirror the
   reproduction bench's random sweeps exactly. *)
let run_seed ~params ~eps check seed =
  match seed_instance ~params seed with
  | None ->
    Obs.incr c_skipped;
    Skipped
  | Some (_tree, (agent, act), fact) ->
    Obs.incr c_checked;
    let ok =
      match check with
      | Expectation ->
        let r = Theorems.expectation_identity fact ~agent ~act in
        r.Theorems.independent && r.Theorems.identity
      | Sufficiency ->
        (match Belief.min_at_action fact ~agent ~act with
         | None -> false
         | Some p -> (Theorems.sufficiency fact ~agent ~act ~p).Theorems.respected)
      | Lemma43 -> (Theorems.lemma43 fact ~agent ~act).Theorems.independent
      | Necessity ->
        let p = Constr.mu_given_action fact ~agent ~act in
        (Theorems.necessity_exists fact ~agent ~act ~p).Theorems.respected
      | Pak_corollary -> (Theorems.pak_corollary fact ~agent ~act ~eps).Theorems.respected
      | Kop -> (Theorems.kop fact ~agent ~act).Theorems.respected
    in
    Checked ok

let run ?pool ?(params = Gen.default_params) ?(eps = Q.of_ints 1 10) check ~first_seed ~count =
  if count < 0 then invalid_arg "Sweep.run: negative count";
  let seeds = Array.init count (fun i -> first_seed + i) in
  let eval seed = run_seed ~params ~eps check seed in
  (* Pool.map assembles outcomes in seed order whatever the schedule,
     so folding them here yields a job-count-independent report. *)
  let outcomes =
    match pool with Some pool -> Pool.map pool eval seeds | None -> Array.map eval seeds
  in
  let checked = ref 0 and skipped = ref 0 and violations = ref [] in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Skipped -> incr skipped
      | Checked ok ->
        incr checked;
        if not ok then violations := seeds.(i) :: !violations)
    outcomes;
  { check; eps; first_seed; count; checked = !checked; skipped = !skipped;
    violations = List.rev !violations }

let run_all ?pool ?params ?eps ~first_seed ~count () =
  List.map (fun check -> run ?pool ?params ?eps check ~first_seed ~count) all_checks

let pp_report fmt r =
  Format.fprintf fmt "%-8s (%s): seeds %d..%d: %d checked, %d skipped, %d violations  %s"
    (check_name r.check) (paper_result r.check) r.first_seed
    (r.first_seed + r.count - 1)
    r.checked r.skipped
    (List.length r.violations)
    (if passed r then "OK" else "FAIL");
  if r.violations <> [] then begin
    Format.fprintf fmt "@\n  violating seeds:";
    List.iter (fun s -> Format.fprintf fmt " %d" s) r.violations
  end
