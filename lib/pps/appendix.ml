open Pak_rational

(* ------------------------------------------------------------------ *)
(* Lemma A.1                                                           *)
(* ------------------------------------------------------------------ *)

type a1_report = {
  a : bool;
  b : bool;
  c : bool;
  d : bool;
  e : bool;
}

let lemma_a1 fact ~agent ~act key =
  let tree = Fact.tree fact in
  let alpha_at_l = Action.performed_at_lstate tree ~agent ~act key in
  let l_occurs = Tree.lstate_runs tree key in
  let phi_and_alpha_at_l = Fact.and_action_at_lstate fact ~agent ~act key in
  let r_alpha = Action.runs_performing tree ~agent ~act in
  let phi_at_alpha = Fact.at_action fact ~agent ~act in
  { a = Bitset.equal alpha_at_l (Bitset.inter alpha_at_l l_occurs);
    b = Bitset.equal phi_and_alpha_at_l (Bitset.inter phi_and_alpha_at_l l_occurs);
    c = Bitset.equal (Bitset.inter phi_and_alpha_at_l alpha_at_l) phi_and_alpha_at_l;
    d = Bitset.equal alpha_at_l (Bitset.inter alpha_at_l r_alpha);
    e = Bitset.equal phi_at_alpha (Bitset.inter phi_at_alpha r_alpha)
  }

(* ------------------------------------------------------------------ *)
(* Lemma B.1                                                           *)
(* ------------------------------------------------------------------ *)

type b1_row = {
  lstate : Tree.lkey;
  lhs : Q.t;
  rhs : Q.t;
  equal : bool;
}

let lemma_b1 fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  let phi_at_alpha = Fact.at_action fact ~agent ~act in
  List.map
    (fun key ->
      let lhs =
        Tree.cond tree phi_at_alpha ~given:(Action.performed_at_lstate tree ~agent ~act key)
      in
      let rhs = Belief.degree_at_lstate fact key in
      { lstate = key; lhs; rhs; equal = Q.equal lhs rhs })
    (Action.performing_lstates tree ~agent ~act)

(* ------------------------------------------------------------------ *)
(* Theorem 6.2, equations (10)–(23)                                    *)
(* ------------------------------------------------------------------ *)

type thm62_derivation = {
  independent : bool;
  eq10 : Q.t;
  eq12 : Q.t;
  eq14 : Q.t;
  eq16 : Q.t;
  eq18 : Q.t;
  eq19 : Q.t;
  eq21 : Q.t;
  eq23 : Q.t;
  chain_upto_18 : bool;
  chain_19_on : bool;
  bridge : bool;
}

let theorem62 fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  let r_alpha = Action.runs_performing tree ~agent ~act in
  let mu_alpha = Tree.measure tree r_alpha in
  if Q.is_zero mu_alpha then
    raise (Pak_guard.Error.Division_by_zero "Appendix.theorem62: action is never performed");
  let lstates = Action.performing_lstates tree ~agent ~act in
  (* Equation (10): the raw Definition 6.1 sum over runs. *)
  let eq10 =
    Bitset.fold
      (fun run acc ->
        Q.add acc
          (Q.mul
             (Q.div (Tree.run_measure tree run) mu_alpha)
             (Belief.at_action fact ~agent ~act ~run)))
      r_alpha Q.zero
  in
  (* Equation (12): partition the sum by the performing local state,
     replacing the per-run belief with the per-state posterior. *)
  let eq12 =
    List.fold_left
      (fun acc key ->
        let beta = Belief.degree_at_lstate fact key in
        Bitset.fold
          (fun run acc ->
            Q.add acc (Q.mul (Q.div (Tree.run_measure tree run) mu_alpha) beta))
          (Action.performed_at_lstate tree ~agent ~act key)
          acc)
      Q.zero lstates
  in
  (* Equation (14): collapse each inner sum to µ(α@ℓ | α). *)
  let eq14 =
    List.fold_left
      (fun acc key ->
        Q.add acc
          (Q.mul
             (Belief.degree_at_lstate fact key)
             (Tree.cond tree (Action.performed_at_lstate tree ~agent ~act key) ~given:r_alpha)))
      Q.zero lstates
  in
  (* Equation (16): expand the conditional with the definition. *)
  let eq16 =
    Q.div
      (List.fold_left
         (fun acc key ->
           Q.add acc
             (Q.mul
                (Belief.degree_at_lstate fact key)
                (Tree.measure tree (Action.performed_at_lstate tree ~agent ~act key))))
         Q.zero lstates)
      mu_alpha
  in
  (* Equation (18): multiply and divide by µ(ℓ). *)
  let eq18 =
    Q.div
      (List.fold_left
         (fun acc key ->
           let l_occurs = Tree.lstate_runs tree key in
           Q.add acc
             (Q.mul
                (Q.mul
                   (Belief.degree_at_lstate fact key)
                   (Tree.cond tree (Action.performed_at_lstate tree ~agent ~act key)
                      ~given:l_occurs))
                (Tree.measure tree l_occurs)))
         Q.zero lstates)
      mu_alpha
  in
  (* Equation (19): apply Definition 4.1 to fuse the product into
     µ([ϕ∧α]@ℓ | ℓ) — the only step needing independence. *)
  let eq19 =
    Q.div
      (List.fold_left
         (fun acc key ->
           let l_occurs = Tree.lstate_runs tree key in
           Q.add acc
             (Q.mul
                (Tree.cond tree (Fact.and_action_at_lstate fact ~agent ~act key)
                   ~given:l_occurs)
                (Tree.measure tree l_occurs)))
         Q.zero lstates)
      mu_alpha
  in
  (* Equations (20)–(21): the cells Q^ℓ_ϕ partition ϕ@α. *)
  let eq21 =
    Q.div
      (List.fold_left
         (fun acc key ->
           Q.add acc (Tree.measure tree (Fact.and_action_at_lstate fact ~agent ~act key)))
         Q.zero lstates)
      mu_alpha
  in
  (* Equation (23): the target conditional. *)
  let eq23 = Tree.cond tree (Fact.at_action fact ~agent ~act) ~given:r_alpha in
  let all_equal qs = match qs with
    | [] -> true
    | first :: rest -> List.for_all (Q.equal first) rest
  in
  { independent = Independence.holds fact ~agent ~act;
    eq10;
    eq12;
    eq14;
    eq16;
    eq18;
    eq19;
    eq21;
    eq23;
    chain_upto_18 = all_equal [ eq10; eq12; eq14; eq16; eq18 ];
    chain_19_on = all_equal [ eq19; eq21; eq23 ];
    bridge = Q.equal eq18 eq19
  }

let pp_thm62 fmt d =
  Format.fprintf fmt
    "@[<v>Appendix D derivation:@ (10) %a@ (12) %a@ (14) %a@ (16) %a@ (18) %a@ (19) %a@ (21) %a@ (23) %a@ chain (10)-(18): %b, bridge (18)=(19): %b, chain (19)-(23): %b, independent: %b@]"
    Q.pp d.eq10 Q.pp d.eq12 Q.pp d.eq14 Q.pp d.eq16 Q.pp d.eq18 Q.pp d.eq19 Q.pp d.eq21
    Q.pp d.eq23 d.chain_upto_18 d.bridge d.chain_19_on d.independent
