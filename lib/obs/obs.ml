(* Process-global, domain-safe observability state. The null sink is
   the [on = false] state: every instrumentation site reduces to one
   load and branch, so hot paths keep their uninstrumented cost
   profile. With a sink enabled, counter bumps and histogram records
   are single atomic adds (no lock on the hot path); registry lookups,
   span statistics, span-tree folding and trace emission — all rare or
   already channel-bound — share one mutex. *)

let on = ref false

let enable () = on := true
let disable () = on := false
let enabled () = !on

(* Allocation attribution kill switch. When on (the default), every
   span site also reads the domain-local GC allocation counters at
   entry and exit; when off, spans record only time and the alloc
   columns stay 0. The switch exists so the ~per-span cost of the
   [Gc.quick_stat] reads can be shed if it ever shows up in the
   bench overhead pair (BENCH_obs.json, alloc_off/on scenarios). *)
let alloc_on = ref true

let set_track_allocations b = alloc_on := b
let track_allocations () = !alloc_on

(* [Gc.minor_words ()] is exact (it includes the un-collected young
   fill) and domain-local — precisely what per-span attribution
   wants, at no allocation cost in native code. [Gc.quick_stat ()]
   supplies the major-heap counters; direct major allocation is
   [major_words] growth not explained by promotion. The quick_stat
   record itself costs ~24 minor words per call; reads are ordered so
   a span's own counters never include its entry/exit bookkeeping. *)
let major_counters () =
  let s = Gc.quick_stat () in
  (s.Gc.major_words, s.Gc.promoted_words)

(* One lock for everything that is not a counter bump: the registries,
   span-statistic and span-tree updates, gauge-provider registration
   and trace emission. Contention is negligible — spans wrap whole
   engine calls, and registry lookups happen once per counter per
   module load. *)
let lock = Mutex.create ()
let locked f = Mutex.protect lock f

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_value : int Atomic.t }

let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counter_registry name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.add counter_registry name c;
        c)

let incr c = if !on then ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = if !on then ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value

let counters () =
  locked (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_value) :: acc) counter_registry [])
  |> List.sort compare

let counter_value name =
  match locked (fun () -> Hashtbl.find_opt counter_registry name) with
  | Some c -> Atomic.get c.c_value
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

(* Log-bucketed integer histograms with exact counts. Bucket 0 collects
   every non-positive value; bucket [i >= 1] collects [2^(i-1), 2^i).
   63 buckets therefore cover every OCaml int, so a record can never
   fall outside the histogram. Buckets are atomics: recording is one
   atomic add, the same hot-path discipline as counters. *)

let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits v 0
  end

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

let bucket_hi i =
  if i <= 0 then 0 else if i >= n_buckets - 1 then max_int else (1 lsl i) - 1

type histogram = { h_name : string; h_buckets : int Atomic.t array }

let histogram_registry : (string, histogram) Hashtbl.t = Hashtbl.create 32

(* Callers hold [lock]. *)
let histogram_locked name =
  match Hashtbl.find_opt histogram_registry name with
  | Some h -> h
  | None ->
    let h = { h_name = name; h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0) } in
    Hashtbl.add histogram_registry name h;
    h

let histogram name = locked (fun () -> histogram_locked name)

let record h v = if !on then ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1)

let histogram_counts h = Array.map Atomic.get h.h_buckets

let histograms () =
  locked (fun () ->
      Hashtbl.fold
        (fun name h acc -> (name, Array.map Atomic.get h.h_buckets) :: acc)
        histogram_registry [])
  |> List.sort compare

let merge_counts a b =
  Array.init (max (Array.length a) (Array.length b)) (fun i ->
      (if i < Array.length a then a.(i) else 0) + if i < Array.length b then b.(i) else 0)

let total_count counts = Array.fold_left ( + ) 0 counts

(* Quantile estimate from bucket counts: find the bucket holding the
   q-th sample and interpolate linearly inside it. Exact sample values
   are gone, so the estimate is bucket-resolution (a factor of 2); the
   counts themselves stay exact. *)
let percentile counts q =
  let q = Float.max 0. (Float.min 1. q) in
  let total = total_count counts in
  if total = 0 then 0.
  else begin
    let target = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let rec find i cum =
      if i >= Array.length counts then float_of_int (bucket_hi (Array.length counts - 1))
      else begin
        let c = counts.(i) in
        if cum + c >= target then begin
          let lo = float_of_int (bucket_lo i) and hi = float_of_int (bucket_hi i) in
          if c = 0 then lo
          else lo +. ((hi -. lo) *. (float_of_int (target - cum) /. float_of_int c))
        end
        else find (i + 1) (cum + c)
      end
    in
    find 0 0
  end

(* ------------------------------------------------------------------ *)
(* Spans: flat statistics                                              *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  mutable s_count : int;
  mutable s_total : float;
  mutable s_minor_aw : float;  (* inclusive minor-heap allocated words *)
  mutable s_major_aw : float;  (* inclusive direct major-heap allocated words *)
}

let span_registry : (string, span_stat) Hashtbl.t = Hashtbl.create 32

(* Callers hold [lock]. *)
let span_stat_locked name =
  match Hashtbl.find_opt span_registry name with
  | Some s -> s
  | None ->
    let s = { s_count = 0; s_total = 0.; s_minor_aw = 0.; s_major_aw = 0. } in
    Hashtbl.add span_registry name s;
    s

let spans () =
  locked (fun () ->
      Hashtbl.fold (fun name s acc -> (name, s.s_count, s.s_total) :: acc) span_registry [])
  |> List.sort compare

let span_allocs () =
  locked (fun () ->
      Hashtbl.fold
        (fun name s acc -> (name, s.s_minor_aw, s.s_major_aw) :: acc)
        span_registry [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Spans: hierarchical statistics                                      *)
(* ------------------------------------------------------------------ *)

(* Each domain tracks its stack of open spans in domain-local storage;
   at span exit the (path, duration) sample folds into one
   process-global table keyed by the full path, so nested engine calls
   render as a tree with inclusive and self time. Paths are stored
   innermost-first (the natural push order); reporting reverses them.
   Domains merge by path: a worker running a checker at top level
   contributes to the same root node as the caller would. *)

type tree_stat = {
  mutable t_count : int;
  mutable t_total : float;
  mutable t_minor_aw : float;
  mutable t_major_aw : float;
}

let tree_registry : (string list, tree_stat) Hashtbl.t = Hashtbl.create 32
let path_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

(* Callers hold [lock]. *)
let tree_stat_locked path =
  match Hashtbl.find_opt tree_registry path with
  | Some s -> s
  | None ->
    let s = { t_count = 0; t_total = 0.; t_minor_aw = 0.; t_major_aw = 0. } in
    Hashtbl.add tree_registry path s;
    s

type span_node = {
  sn_name : string;
  sn_path : string list;
  sn_count : int;
  sn_total : float;
  sn_self : float;
  sn_minor_aw : float;
  sn_self_minor_aw : float;
  sn_major_aw : float;
  sn_self_major_aw : float;
  sn_children : span_node list;
}

(* [path = prefix @ [leaf]]? Returns the leaf when so. *)
let rec leaf_under prefix path =
  match (prefix, path) with
  | [], [ leaf ] -> Some leaf
  | p :: ps, q :: qs when String.equal p q -> leaf_under ps qs
  | _ -> None

let span_tree () =
  let entries =
    locked (fun () ->
        Hashtbl.fold
          (fun path st acc ->
            (List.rev path, (st.t_count, st.t_total, st.t_minor_aw, st.t_major_aw)) :: acc)
          tree_registry [])
  in
  let rec build prefix =
    entries
    |> List.filter_map (fun (path, stat) ->
           match leaf_under prefix path with
           | Some leaf -> Some (leaf, stat)
           | None -> None)
    |> List.sort compare
    |> List.map (fun (leaf, (c, t, mnr, mjr)) ->
           let path = prefix @ [ leaf ] in
           let children = build path in
           let child_sum f = List.fold_left (fun acc n -> acc +. f n) 0. children in
           let child_total = child_sum (fun n -> n.sn_total) in
           (* Clamped: float rounding can push the children's sum a
              hair past the parent's inclusive total, and a child span
              can allocate on a domain whose parent frame was opened
              with allocation tracking off. *)
           let self incl children_sum = Float.max 0. (incl -. children_sum) in
           { sn_name = leaf;
             sn_path = path;
             sn_count = c;
             sn_total = t;
             sn_self = self t child_total;
             sn_minor_aw = mnr;
             sn_self_minor_aw = self mnr (child_sum (fun n -> n.sn_minor_aw));
             sn_major_aw = mjr;
             sn_self_major_aw = self mjr (child_sum (fun n -> n.sn_major_aw));
             sn_children = children
           })
  in
  build []

(* Baseline for the gc.* gauges: the cumulative GC counters captured
   at the last [reset] (and at module load), so snapshots report
   allocation since the workload under observation began rather than
   since the process started. Sampled from the calling domain;
   [Gc.quick_stat] also absorbs the counters of terminated domains,
   so a capture taken after a worker pool is torn down covers the
   workers' allocation too. [Gc.minor_words] is exact but strictly
   domain-local; quick_stat's minor count excludes the current young
   fill — the max of the two is exact single-domain and within one
   minor heap of exact otherwise. *)
type gc_base = {
  mutable b_minor_w : float;
  mutable b_major_w : float;
  mutable b_promoted_w : float;
  mutable b_minor_c : int;
  mutable b_major_c : int;
  mutable b_compactions : int;
}

let gc_minor_words_total () =
  Float.max (Gc.minor_words ()) (Gc.quick_stat ()).Gc.minor_words

let gc_base =
  { b_minor_w = 0.; b_major_w = 0.; b_promoted_w = 0.;
    b_minor_c = 0; b_major_c = 0; b_compactions = 0 }

let rebase_gc () =
  let s = Gc.quick_stat () in
  gc_base.b_minor_w <- gc_minor_words_total ();
  gc_base.b_major_w <- s.Gc.major_words;
  gc_base.b_promoted_w <- s.Gc.promoted_words;
  gc_base.b_minor_c <- s.Gc.minor_collections;
  gc_base.b_major_c <- s.Gc.major_collections;
  gc_base.b_compactions <- s.Gc.compactions

let () = rebase_gc ()

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counter_registry;
      Hashtbl.iter
        (fun _ h -> Array.iter (fun cell -> Atomic.set cell 0) h.h_buckets)
        histogram_registry;
      Hashtbl.iter
        (fun _ s ->
          s.s_count <- 0;
          s.s_total <- 0.;
          s.s_minor_aw <- 0.;
          s.s_major_aw <- 0.)
        span_registry;
      Hashtbl.reset tree_registry);
  rebase_gc ()

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

(* Gauges are sampled, not accumulated: providers registered by other
   layers (budget fuel in pak_guard, memo hit-rate in the semantics
   engine) are polled when a summary or snapshot is taken. A provider
   returning [] simply has nothing to report right now. *)

(* The built-in provider: per-domain GC gauges, reported as deltas
   from the last [reset] for the cumulative counters and as levels
   for the heap sizes. Always available — polling is per-capture, not
   hot-path, so the allocation kill switch does not disable it. *)
let gc_gauges () =
  let s = Gc.quick_stat () in
  let d f b = Float.max 0. (f -. b) in
  let di i b = float_of_int (Stdlib.max 0 (i - b)) in
  [ ("gc.minor_words", d (gc_minor_words_total ()) gc_base.b_minor_w);
    ("gc.major_words", d s.Gc.major_words gc_base.b_major_w);
    ("gc.promoted_words", d s.Gc.promoted_words gc_base.b_promoted_w);
    ("gc.minor_collections", di s.Gc.minor_collections gc_base.b_minor_c);
    ("gc.major_collections", di s.Gc.major_collections gc_base.b_major_c);
    ("gc.compactions", di s.Gc.compactions gc_base.b_compactions);
    ("gc.heap_words", float_of_int s.Gc.heap_words);
    ("gc.top_heap_words", float_of_int s.Gc.top_heap_words)
  ]

let gauge_providers : (unit -> (string * float) list) list ref = ref [ gc_gauges ]

let register_gauges f = locked (fun () -> gauge_providers := f :: !gauge_providers)

let gauges () =
  let providers = locked (fun () -> !gauge_providers) in
  List.concat_map (fun f -> f ()) providers |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Trace sink (Chrome trace_event JSON array)                          *)
(* ------------------------------------------------------------------ *)

type trace = { ch : out_channel; mutable first : bool; t0 : float }

let trace_state : trace option ref = ref None

let tracing () = !trace_state <> None

let now () = Sys.time ()

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Callers hold [lock]: the channel and [first] are shared. *)
let emit_raw tr json =
  if tr.first then tr.first <- false else output_string tr.ch ",\n";
  output_string tr.ch json

(* Timestamps are microseconds since the trace opened, from [Sys.time]
   (processor time): monotone within a process, which is all the trace
   viewer needs. Under parallel execution the process clock advances
   with total CPU work, so concurrent spans overlap in the viewer but
   durations read as CPU time, not wall time. *)
let usec tr t = (t -. tr.t0) *. 1e6

(* Each domain gets its own trace row: [tid] is the domain id, so a
   parallel sweep renders as one lane per worker in Perfetto. *)
let tid () = (Domain.self () :> int)

(* Request-scoped trace context: an ambient id carried in domain-local
   storage and stamped into every trace event emitted while it is
   installed. Deliberately a *separate* DLS key from [path_key], so
   [span_detach] — which masks the span stack to keep pooled span
   paths jobs-invariant — does not strip the request identity: a
   pooled serve request detaches its path but keeps its trace id. *)
let trace_ctx_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let trace_context () = Domain.DLS.get trace_ctx_key

let with_trace_context id f =
  let saved = Domain.DLS.get trace_ctx_key in
  Domain.DLS.set trace_ctx_key (Some id);
  Fun.protect ~finally:(fun () -> Domain.DLS.set trace_ctx_key saved) f

(* Callers hold [lock]. The full span path rides along as an argument,
   so the hierarchical tree survives into the exported trace even when
   a viewer flattens the lanes; [trace] — read from the emitting
   domain's context *before* the lock is taken — joins a span to the
   request that ran it. *)
let emit_complete_locked name ~path ~trace ~t_start ~t_end =
  match !trace_state with
  | None -> ()
  | Some tr ->
    let trace_arg =
      match trace with
      | None -> ""
      | Some id -> Printf.sprintf ",\"trace\":\"%s\"" (json_escape id)
    in
    emit_raw tr
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"pak\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\
          \"tid\":%d,\"args\":{\"path\":\"%s\"%s}}"
         (json_escape name) (usec tr t_start)
         (usec tr (max t_end t_start))
         (tid ())
         (json_escape (String.concat ";" (List.rev path)))
         trace_arg)

let emit_counter_sample tr name v =
  emit_raw tr
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"pak\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"value\":%d}}"
       (json_escape name) (usec tr (now ())) (tid ()) v)

(* GC heap lanes: "ph":"C" samples of the emitting domain's raw GC
   counters (always integers, never negative — validated by
   tools/check_trace.exe). Values are cumulative per domain, not
   rebased, so each domain's lane is monotone in the viewer. Callers
   hold [lock]. *)
let emit_gc_samples_locked () =
  match !trace_state with
  | None -> ()
  | Some tr ->
    let s = Gc.quick_stat () in
    let clamp v = Stdlib.max 0 v in
    List.iter
      (fun (name, v) -> emit_counter_sample tr name (clamp v))
      [ ("gc.minor_words", int_of_float (Gc.minor_words ()));
        ("gc.major_words", int_of_float s.Gc.major_words);
        ("gc.promoted_words", int_of_float s.Gc.promoted_words);
        ("gc.minor_collections", s.Gc.minor_collections);
        ("gc.major_collections", s.Gc.major_collections);
        ("gc.compactions", s.Gc.compactions);
        ("gc.heap_words", s.Gc.heap_words);
        ("gc.top_heap_words", s.Gc.top_heap_words)
      ]

(* One gc sample burst every N span exits per domain: frequent enough
   to draw heap lanes over time, cheap enough not to swamp the trace
   with counter events. The interval is configurable (--gc-sample-every
   in the CLI); the very first span exit per domain always samples, so
   short runs — fewer spans than one interval — still get at least one
   mid-run heap sample before the closing burst. *)
let gauge_sample_interval_cell = Atomic.make 32

let set_gauge_sample_interval n =
  if n < 1 then invalid_arg "Obs.set_gauge_sample_interval: interval must be >= 1";
  Atomic.set gauge_sample_interval_cell n

let gauge_sample_interval () = Atomic.get gauge_sample_interval_cell

let gc_tick_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let trace_stop () =
  locked (fun () ->
      match !trace_state with
      | None -> ()
      | Some tr ->
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_value) :: acc) counter_registry []
        |> List.sort compare
        |> List.iter (fun (name, v) -> emit_counter_sample tr name v);
        emit_gc_samples_locked ();
        output_string tr.ch "\n]\n";
        close_out tr.ch;
        trace_state := None)

let trace_to file =
  trace_stop ();
  let ch = open_out file in
  locked (fun () ->
      output_string ch "[\n";
      trace_state := Some { ch; first = true; t0 = now () });
  enable ()

(* ------------------------------------------------------------------ *)
(* Span timing                                                         *)
(* ------------------------------------------------------------------ *)

let span_detach f =
  if not !on then f ()
  else begin
    let saved = Domain.DLS.get path_key in
    Domain.DLS.set path_key [];
    Fun.protect ~finally:(fun () -> Domain.DLS.set path_key saved) f
  end

let span name f =
  if not !on then f ()
  else begin
    let parent = Domain.DLS.get path_key in
    let path = name :: parent in
    Domain.DLS.set path_key path;
    (* Read order keeps a span's own bookkeeping out of its counts:
       at entry the quick_stat record (~24 words) is allocated before
       [mw0] is read; at exit [mw1] is read before the quick_stat
       call, whose words land in the parent's self column instead. *)
    let track = !alloc_on in
    let mj0, pr0 = if track then major_counters () else (0., 0.) in
    let mw0 = if track then Gc.minor_words () else 0. in
    let t0 = now () in
    let finish () =
      let t1 = now () in
      let minor_aw, major_aw =
        if not track then (0., 0.)
        else begin
          let mw1 = Gc.minor_words () in
          let mj1, pr1 = major_counters () in
          ( Float.max 0. (mw1 -. mw0),
            Float.max 0. (mj1 -. mj0 -. Float.max 0. (pr1 -. pr0)) )
        end
      in
      Domain.DLS.set path_key parent;
      let dt = Float.max 0. (t1 -. t0) in
      let ns = int_of_float (dt *. 1e9) in
      let gc_tick =
        if track && !trace_state <> None then begin
          let tick = Domain.DLS.get gc_tick_key in
          Stdlib.incr tick;
          !tick = 1 || !tick mod Atomic.get gauge_sample_interval_cell = 0
        end
        else false
      in
      let trace_ctx = Domain.DLS.get trace_ctx_key in
      locked (fun () ->
          let stat = span_stat_locked name in
          stat.s_count <- stat.s_count + 1;
          stat.s_total <- stat.s_total +. dt;
          stat.s_minor_aw <- stat.s_minor_aw +. minor_aw;
          stat.s_major_aw <- stat.s_major_aw +. major_aw;
          let h = histogram_locked name in
          ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of ns) 1);
          let ts = tree_stat_locked path in
          ts.t_count <- ts.t_count + 1;
          ts.t_total <- ts.t_total +. dt;
          ts.t_minor_aw <- ts.t_minor_aw +. minor_aw;
          ts.t_major_aw <- ts.t_major_aw +. major_aw;
          emit_complete_locked name ~path ~trace:trace_ctx ~t_start:t0 ~t_end:t1;
          if gc_tick then emit_gc_samples_locked ())
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Summary sink                                                        *)
(* ------------------------------------------------------------------ *)

let pp_summary fmt () =
  Format.fprintf fmt "== pak metrics ==@\n";
  Format.fprintf fmt "counters:@\n";
  (match counters () with
   | [] -> Format.fprintf fmt "  (none registered)@\n"
   | cs ->
     List.iter (fun (name, v) -> Format.fprintf fmt "  %-42s %12d@\n" name v) cs);
  (match gauges () with
   | [] -> ()
   | gs ->
     Format.fprintf fmt "gauges:@\n";
     List.iter (fun (name, v) -> Format.fprintf fmt "  %-42s %12.4f@\n" name v) gs);
  Format.fprintf fmt "spans:@\n";
  match spans () with
  | [] -> Format.fprintf fmt "  (none recorded)@\n"
  | ss ->
    let hists = histograms () in
    let allocs = span_allocs () in
    Format.fprintf fmt "  %-42s %10s %12s %12s %10s %10s %10s %12s@\n" "" "calls" "total ms"
      "mean us" "p50 us" "p90 us" "p99 us" "alloc kw";
    List.iter
      (fun (name, count, total) ->
        let mean_us = if count = 0 then 0. else total /. float_of_int count *. 1e6 in
        let p q =
          match List.assoc_opt name hists with
          | Some counts -> percentile counts q /. 1e3
          | None -> 0.
        in
        let alloc_kw =
          match List.find_opt (fun (n, _, _) -> String.equal n name) allocs with
          | Some (_, mnr, mjr) -> (mnr +. mjr) /. 1e3
          | None -> 0.
        in
        Format.fprintf fmt "  %-42s %10d %12.3f %12.3f %10.1f %10.1f %10.1f %12.1f@\n" name
          count (total *. 1e3) mean_us (p 0.5) (p 0.9) (p 0.99) alloc_kw)
      ss

let print_summary ch =
  let fmt = Format.formatter_of_out_channel ch in
  pp_summary fmt ();
  Format.pp_print_flush fmt ()

let pp_span_tree fmt () =
  Format.fprintf fmt "span tree:@\n";
  match span_tree () with
  | [] -> Format.fprintf fmt "  (no spans recorded)@\n"
  | roots ->
    Format.fprintf fmt "  %-46s %10s %12s %12s %12s %12s@\n" "" "calls" "incl ms" "self ms"
      "incl kw" "self kw";
    let rec pp depth node =
      let label = String.make (2 * depth) ' ' ^ node.sn_name in
      Format.fprintf fmt "  %-46s %10d %12.3f %12.3f %12.1f %12.1f@\n" label node.sn_count
        (node.sn_total *. 1e3) (node.sn_self *. 1e3)
        ((node.sn_minor_aw +. node.sn_major_aw) /. 1e3)
        ((node.sn_self_minor_aw +. node.sn_self_major_aw) /. 1e3);
      List.iter (pp (depth + 1)) node.sn_children
    in
    List.iter (pp 0) roots

let print_span_tree ch =
  let fmt = Format.formatter_of_out_channel ch in
  pp_span_tree fmt ();
  Format.pp_print_flush fmt ()

(* The allocation profile: every span path ranked by self-allocated
   words — where the words actually come from, with double counting
   removed by the self column (a parent's self excludes children). *)
let pp_alloc_report ?(top = 20) fmt () =
  let rec flatten acc n = List.fold_left flatten (n :: acc) n.sn_children in
  let nodes = List.fold_left flatten [] (span_tree ()) in
  let self n = n.sn_self_minor_aw +. n.sn_self_major_aw in
  let ranked =
    List.filter (fun n -> self n > 0.) nodes
    |> List.sort (fun a b -> compare (self b, a.sn_path) (self a, b.sn_path))
  in
  let attributed = List.fold_left (fun acc n -> acc +. self n) 0. ranked in
  let process_minor =
    match List.assoc_opt "gc.minor_words" (gc_gauges ()) with Some v -> v | None -> 0.
  in
  Format.fprintf fmt "top allocating spans (self words; kw = 1000 words):@\n";
  if ranked = [] then Format.fprintf fmt "  (no span allocation recorded)@\n"
  else begin
    Format.fprintf fmt "  %-52s %10s %12s %12s %12s@\n" "" "calls" "self kw" "incl kw"
      "w/call";
    List.iteri
      (fun i n ->
        if i < top then
          Format.fprintf fmt "  %-52s %10d %12.1f %12.1f %12.0f@\n"
            (String.concat ";" n.sn_path) n.sn_count (self n /. 1e3)
            ((n.sn_minor_aw +. n.sn_major_aw) /. 1e3)
            (if n.sn_count = 0 then 0. else self n /. float_of_int n.sn_count))
      ranked;
    if List.length ranked > top then
      Format.fprintf fmt "  ... %d more span paths@\n" (List.length ranked - top)
  end;
  Format.fprintf fmt "  attributed: %.1f kw across %d span paths" (attributed /. 1e3)
    (List.length ranked);
  if process_minor > 0. then
    Format.fprintf fmt " (%.1f%% of %.1f kw minor words since reset)"
      (100. *. attributed /. process_minor)
      (process_minor /. 1e3);
  Format.fprintf fmt "@\n"

let print_alloc_report ?top ch =
  let fmt = Format.formatter_of_out_channel ch in
  pp_alloc_report ?top fmt ();
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Flamegraph export (collapsed-stack format)                          *)
(* ------------------------------------------------------------------ *)

(* One line per span path, `a;b;c <weight>`, the input format of
   flamegraph.pl and speedscope. Weights are *self* values — the
   flamegraph tool re-derives inclusive totals by summing subtrees, so
   exporting inclusive numbers would double-count. Self time in whole
   nanoseconds, or self allocated words (minor + direct major). Lines
   are sorted by path and zero-weight rows dropped, so the output is a
   pure function of the span registry. *)
type flame_weight = Flame_time | Flame_alloc

let flamegraph ?(weight = Flame_time) () =
  let rec flatten acc n = List.fold_left flatten (n :: acc) n.sn_children in
  let nodes = List.fold_left flatten [] (span_tree ()) in
  let weight_of n =
    match weight with
    | Flame_time -> int_of_float (n.sn_self *. 1e9)
    | Flame_alloc -> int_of_float (n.sn_self_minor_aw +. n.sn_self_major_aw)
  in
  nodes
  |> List.filter_map (fun n ->
         let w = weight_of n in
         if w <= 0 then None else Some (String.concat ";" n.sn_path, w))
  |> List.sort compare
  |> List.map (fun (path, w) -> Printf.sprintf "%s %d\n" path w)
  |> String.concat ""

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader: enough to validate emitted traces and to
   parse metric snapshots back, with no external dependency.           *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  type state = { src : string; mutable pos : int }

  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let skip_ws st =
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done

  let expect st c =
    match peek st with
    | Some c' when c' = c -> st.pos <- st.pos + 1
    | _ -> raise (Bad (Printf.sprintf "expected %c at offset %d" c st.pos))

  let literal st word v =
    let n = String.length word in
    if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
      st.pos <- st.pos + n;
      v
    end
    else raise (Bad (Printf.sprintf "bad literal at offset %d" st.pos))

  let string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if st.pos >= String.length st.src then raise (Bad "unterminated string");
      let c = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if st.pos >= String.length st.src then raise (Bad "unterminated escape");
         let e = st.src.[st.pos] in
         st.pos <- st.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if st.pos + 4 > String.length st.src then raise (Bad "short \\u escape");
           (* Decoded only far enough for validation purposes. *)
           st.pos <- st.pos + 4;
           Buffer.add_char buf '?'
         | _ -> raise (Bad "unknown escape"));
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()

  let number st =
    let start = st.pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
      st.pos <- st.pos + 1
    done;
    match float_of_string_opt (String.sub st.src start (st.pos - start)) with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "bad number at offset %d" start))

  let rec value st =
    skip_ws st;
    match peek st with
    | None -> raise (Bad "unexpected end of input")
    | Some '"' -> Str (string st)
    | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (expect st '}'; Obj [])
      else begin
        let rec members acc =
          skip_ws st;
          let k = string st in
          skip_ws st;
          expect st ':';
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; members ((k, v) :: acc)
          | Some '}' -> expect st '}'; Obj (List.rev ((k, v) :: acc))
          | _ -> raise (Bad (Printf.sprintf "expected , or } at offset %d" st.pos))
        in
        members []
      end
    | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (expect st ']'; Arr [])
      else begin
        let rec elements acc =
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; elements (v :: acc)
          | Some ']' -> expect st ']'; Arr (List.rev (v :: acc))
          | _ -> raise (Bad (Printf.sprintf "expected , or ] at offset %d" st.pos))
        in
        elements []
      end
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> Num (number st)

  let parse src =
    let st = { src; pos = 0 } in
    let v = value st in
    skip_ws st;
    if st.pos <> String.length src then raise (Bad "trailing data after JSON value");
    v
end

let read_file_string file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Versioned metrics snapshots                                         *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  (* v2 adds the four allocated-words columns to span nodes. v1 files
     (no alloc keys) still decode — the alloc fields default to 0. *)
  let schema_version = 2

  type node = {
    name : string;
    count : int;
    total_s : float;
    self_s : float;
    minor_aw : float;
    self_minor_aw : float;
    major_aw : float;
    self_major_aw : float;
    children : node list;
  }

  type t = {
    version : int;
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * int array) list;
    spans : node list;
  }

  let rec node_of_span n =
    { name = n.sn_name;
      count = n.sn_count;
      total_s = n.sn_total;
      self_s = n.sn_self;
      minor_aw = n.sn_minor_aw;
      self_minor_aw = n.sn_self_minor_aw;
      major_aw = n.sn_major_aw;
      self_major_aw = n.sn_self_major_aw;
      children = List.map node_of_span n.sn_children
    }

  let capture () =
    { version = schema_version;
      counters = counters ();
      gauges = gauges ();
      histograms = histograms ();
      spans = List.map node_of_span (span_tree ())
    }

  (* Per-call attribution without resetting the global registries:
     capture, run, capture, subtract. Counters and histograms are
     after-minus-before with all-zero rows dropped; gauges keep the
     after values (levels, not flows); the span tree is left empty
     because span paths accumulate per domain and a single call's
     share cannot be recovered by subtraction across domains. *)
  let diff_against ~before after =
    let counters =
      List.filter_map
        (fun (name, v) ->
          let b =
            match List.assoc_opt name before.counters with
            | Some x -> x
            | None -> 0
          in
          if v - b = 0 then None else Some (name, v - b))
        after.counters
    in
    let histograms =
      List.filter_map
        (fun (name, counts) ->
          let b =
            match List.assoc_opt name before.histograms with
            | Some x -> x
            | None -> [||]
          in
          let d =
            Array.mapi
              (fun i c -> c - (if i < Array.length b then b.(i) else 0))
              counts
          in
          if Array.for_all (fun x -> x = 0) d then None else Some (name, d))
        after.histograms
    in
    { version = schema_version;
      counters;
      gauges = after.gauges;
      histograms;
      spans = []
    }

  let diff_capture f =
    let before = capture () in
    let x = f () in
    (x, diff_against ~before (capture ()))

  (* %.17g round-trips every finite double through float_of_string
     exactly, so serialize/parse is lossless. *)
  let json_float f = if Float.is_finite f then Printf.sprintf "%.17g" f else "0"

  let to_json t =
    let buf = Buffer.create 4096 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "{\n  \"schema_version\": %d,\n" t.version;
    add "  \"counters\": {";
    List.iteri
      (fun i (k, v) -> add "%s\n    \"%s\": %d" (if i > 0 then "," else "") (json_escape k) v)
      t.counters;
    add "\n  },\n  \"gauges\": {";
    List.iteri
      (fun i (k, v) ->
        add "%s\n    \"%s\": %s" (if i > 0 then "," else "") (json_escape k) (json_float v))
      t.gauges;
    add "\n  },\n  \"histograms\": {";
    List.iteri
      (fun i (k, counts) ->
        add "%s\n    \"%s\": {\"count\": %d, \"p50_ns\": %s, \"p90_ns\": %s, \"p99_ns\": %s, \
             \"buckets\": ["
          (if i > 0 then "," else "")
          (json_escape k) (total_count counts)
          (json_float (percentile counts 0.5))
          (json_float (percentile counts 0.9))
          (json_float (percentile counts 0.99));
        let first = ref true in
        Array.iteri
          (fun b c ->
            if c <> 0 then begin
              if not !first then add ",";
              first := false;
              add "[%d,%d]" b c
            end)
          counts;
        add "]}")
      t.histograms;
    add "\n  },\n  \"span_tree\": [";
    let rec add_node indent first n =
      if not first then add ",";
      add
        "\n%s{\"name\": \"%s\", \"count\": %d, \"total_s\": %s, \"self_s\": %s, \"minor_aw\": \
         %s, \"self_minor_aw\": %s, \"major_aw\": %s, \"self_major_aw\": %s, \"children\": ["
        indent (json_escape n.name) n.count (json_float n.total_s) (json_float n.self_s)
        (json_float n.minor_aw) (json_float n.self_minor_aw) (json_float n.major_aw)
        (json_float n.self_major_aw);
      List.iteri (fun i c -> add_node (indent ^ "  ") (i = 0) c) n.children;
      if n.children <> [] then add "\n%s" indent;
      add "]}"
    in
    List.iteri (fun i n -> add_node "    " (i = 0) n) t.spans;
    if t.spans <> [] then add "\n  ";
    add "]\n}\n";
    Buffer.contents buf

  exception Decode of string

  let obj = function Json.Obj o -> o | _ -> raise (Decode "expected a JSON object")
  let arr = function Json.Arr a -> a | _ -> raise (Decode "expected a JSON array")
  let num = function Json.Num f -> f | _ -> raise (Decode "expected a number")
  let str = function Json.Str s -> s | _ -> raise (Decode "expected a string")
  let int_ v = int_of_float (num v)

  let field name o =
    match List.assoc_opt name o with
    | Some v -> v
    | None -> raise (Decode ("missing field \"" ^ name ^ "\""))

  (* Alloc columns are optional so v1 snapshots decode with 0s. *)
  let opt_num name o = match List.assoc_opt name o with Some v -> num v | None -> 0.

  let rec decode_node v =
    let o = obj v in
    { name = str (field "name" o);
      count = int_ (field "count" o);
      total_s = num (field "total_s" o);
      self_s = num (field "self_s" o);
      minor_aw = opt_num "minor_aw" o;
      self_minor_aw = opt_num "self_minor_aw" o;
      major_aw = opt_num "major_aw" o;
      self_major_aw = opt_num "self_major_aw" o;
      children = List.map decode_node (arr (field "children" o))
    }

  let decode_hist v =
    let o = obj v in
    let counts = Array.make n_buckets 0 in
    List.iter
      (fun pair ->
        match arr pair with
        | [ i; c ] ->
          let i = int_ i in
          if i < 0 || i >= n_buckets then raise (Decode "bucket index out of range");
          counts.(i) <- int_ c
        | _ -> raise (Decode "histogram bucket entries must be [index, count] pairs"))
      (arr (field "buckets" o));
    counts

  let decode json =
    let o = obj json in
    { version = int_ (field "schema_version" o);
      counters = List.map (fun (k, v) -> (k, int_ v)) (obj (field "counters" o));
      gauges = List.map (fun (k, v) -> (k, num v)) (obj (field "gauges" o));
      histograms = List.map (fun (k, v) -> (k, decode_hist v)) (obj (field "histograms" o));
      spans = List.map decode_node (arr (field "span_tree" o))
    }

  let of_json_string src =
    match Json.parse src with
    | exception Json.Bad msg -> Error ("invalid JSON: " ^ msg)
    | json -> ( try Ok (decode json) with Decode msg -> Error msg)

  let of_file file =
    match read_file_string file with
    | exception Sys_error msg -> Error msg
    | src ->
      (match of_json_string src with
       | Ok _ as ok -> ok
       | Error msg -> Error (file ^ ": " ^ msg))

  let write file t =
    let ch = open_out file in
    Fun.protect ~finally:(fun () -> close_out ch) (fun () -> output_string ch (to_json t))
end

(* ------------------------------------------------------------------ *)
(* Rolling time-series: a fixed-size ring of metric deltas             *)
(* ------------------------------------------------------------------ *)

module Series = struct
  (* Each [record] captures the *delta* since the previous record (or
     since [create] for the first): counter increments with zero rows
     dropped, histogram sample-count increments, and gauge levels
     (gauges are levels, not flows — a delta of a sampled level is
     noise). The delta basis advances on every record independently of
     ring eviction, so the recorded deltas always telescope: summing a
     counter across *all* samples ever recorded equals its total growth
     since [create], even after old samples fell out of the ring. *)

  type sample = {
    s_seq : int;
    s_counters : (string * int) list;
    s_gauges : (string * float) list;
    s_hist_totals : (string * int) list;
  }

  type t = {
    cap : int;
    ring : sample option array;
    mutable next_seq : int;
    mutable base_counters : (string * int) list;
    mutable base_hists : (string * int) list;
    m : Mutex.t;
  }

  let hist_totals () = List.map (fun (name, counts) -> (name, total_count counts)) (histograms ())

  let create ~capacity =
    if capacity < 1 then invalid_arg "Obs.Series.create: capacity must be >= 1";
    { cap = capacity;
      ring = Array.make capacity None;
      next_seq = 0;
      base_counters = counters ();
      base_hists = hist_totals ();
      m = Mutex.create ()
    }

  let delta_int now base =
    List.filter_map
      (fun (name, v) ->
        let b = match List.assoc_opt name base with Some x -> x | None -> 0 in
        if v - b = 0 then None else Some (name, v - b))
      now

  let record t =
    let now_counters = counters () in
    let now_hists = hist_totals () in
    let now_gauges = gauges () in
    Mutex.protect t.m (fun () ->
        let s =
          { s_seq = t.next_seq;
            s_counters = delta_int now_counters t.base_counters;
            s_gauges = now_gauges;
            s_hist_totals = delta_int now_hists t.base_hists
          }
        in
        t.ring.(t.next_seq mod t.cap) <- Some s;
        t.next_seq <- t.next_seq + 1;
        t.base_counters <- now_counters;
        t.base_hists <- now_hists;
        s)

  let capacity t = t.cap
  let length t = Mutex.protect t.m (fun () -> Stdlib.min t.next_seq t.cap)

  let samples t =
    Mutex.protect t.m (fun () ->
        let n = Stdlib.min t.next_seq t.cap in
        List.init n (fun i ->
            match t.ring.((t.next_seq - n + i) mod t.cap) with
            | Some s -> s
            | None -> assert false))
end

(* ------------------------------------------------------------------ *)
(* OpenMetrics / Prometheus text exposition                            *)
(* ------------------------------------------------------------------ *)

module Openmetrics = struct
  (* Renders any snapshot in the OpenMetrics text format: counters as
     [_total] samples, gauges as levels, span-latency histograms as
     cumulative [_bucket{le="..."}] series with [_count]/[_sum].
     Metric names are the pak names with every character outside
     [a-zA-Z0-9_:] mapped to '_' and a "pak_" prefix (which also
     guarantees a legal leading character). The histogram [_sum] is a
     lower-bound estimate (sum of bucket lower bounds times counts):
     exact sample values are gone by design — the bucket counts are
     the exact data, the sum is advisory, as the HELP line says. *)

  let sanitize name =
    let buf = Buffer.create (String.length name + 4) in
    Buffer.add_string buf "pak_";
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char buf c
        | _ -> Buffer.add_char buf '_')
      name;
    Buffer.contents buf

  (* OpenMetrics floats: finite decimal, never "nan"/"inf" out of a
     snapshot (snapshot floats are already finite by construction, but
     a hand-edited file must not crash the renderer). *)
  let num f = if Float.is_finite f then Printf.sprintf "%.17g" f else "0"

  (* HELP text carries the *raw* pak metric name; escape the two
     characters OpenMetrics escapes in help strings plus anything that
     would break the line grammar (a fuzzed snapshot can smuggle a
     newline into a metric name). *)
  let help_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let render (s : Snapshot.t) =
    let buf = Buffer.create 4096 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    List.iter
      (fun (name, v) ->
        let m = sanitize name in
        add "# TYPE %s counter\n" m;
        add "# HELP %s pak counter %s\n" m (help_escape name);
        add "%s_total %d\n" m v)
      s.Snapshot.counters;
    List.iter
      (fun (name, v) ->
        let m = sanitize name in
        add "# TYPE %s gauge\n" m;
        add "# HELP %s pak gauge %s\n" m (help_escape name);
        add "%s %s\n" m (num v))
      s.Snapshot.gauges;
    List.iter
      (fun (name, counts) ->
        let m = sanitize name in
        add "# TYPE %s histogram\n" m;
        add "# HELP %s pak span latency ns (sum is a bucket-floor lower bound) %s\n" m
          (help_escape name);
        let cum = ref 0 in
        Array.iteri
          (fun i c ->
            if c <> 0 then begin
              cum := !cum + c;
              add "%s_bucket{le=\"%d\"} %d\n" m (bucket_hi i) !cum
            end)
          counts;
        add "%s_bucket{le=\"+Inf\"} %d\n" m !cum;
        add "%s_count %d\n" m !cum;
        let sum =
          let acc = ref 0. in
          Array.iteri (fun i c -> acc := !acc +. (float_of_int (bucket_lo i) *. float_of_int c)) counts;
          !acc
        in
        add "%s_sum %s\n" m (num sum))
      s.Snapshot.histograms;
    add "# EOF\n";
    Buffer.contents buf

  (* A minimal line-grammar check, shared by the fuzz mode, the CI
     smoke and the tests: every line is a comment directive or a
     sample with a legal metric name, an optional {label="value"} set
     and a finite numeric value; the text ends with exactly one
     "# EOF" line and nothing after it. *)
  let metric_name_ok name =
    String.length name > 0
    && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (fun c ->
           match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         name

  let sample_line_ok line =
    (* name[{labels}] value — split the name at '{' or ' '. *)
    let n = String.length line in
    let name_end =
      let rec go i = if i >= n then i else (match line.[i] with '{' | ' ' -> i | _ -> go (i + 1)) in
      go 0
    in
    let name = String.sub line 0 name_end in
    if not (metric_name_ok name) then Error (Printf.sprintf "bad metric name in %S" line)
    else begin
      (* Skip a balanced {..} label block; quotes may contain anything
         except an unescaped quote. *)
      let i = ref name_end in
      let ok = ref true in
      if !i < n && line.[!i] = '{' then begin
        Stdlib.incr i;
        let in_str = ref false in
        let closed = ref false in
        while (not !closed) && !i < n do
          (match line.[!i] with
           | '\\' when !in_str -> Stdlib.incr i (* skip the escaped char *)
           | '"' -> in_str := not !in_str
           | '}' when not !in_str -> closed := true
           | _ -> ());
          Stdlib.incr i
        done;
        if not !closed then ok := false
      end;
      if not !ok then Error (Printf.sprintf "unbalanced label block in %S" line)
      else begin
        let rest = String.sub line !i (n - !i) in
        let rest = String.trim rest in
        match float_of_string_opt rest with
        | Some f when Float.is_finite f -> Ok ()
        | _ -> Error (Printf.sprintf "bad sample value in %S" line)
      end
    end

  let check text =
    let lines = String.split_on_char '\n' text in
    (* A well-formed exposition ends "...# EOF\n", so splitting yields
       a final empty chunk. *)
    let rec go = function
      | [] -> Error "missing # EOF terminator"
      | [ "# EOF"; "" ] -> Ok ()
      | [ "# EOF" ] -> Error "missing trailing newline after # EOF"
      | line :: rest ->
        if line = "" then Error "empty line before # EOF"
        else if String.length line >= 1 && line.[0] = '#' then begin
          if
            String.length line >= 7
            && (String.sub line 0 7 = "# TYPE " || String.sub line 0 7 = "# HELP ")
          then go rest
          else Error (Printf.sprintf "bad comment directive %S" line)
        end
        else (match sample_line_ok line with Ok () -> go rest | Error _ as e -> e)
    in
    go lines
end

(* ------------------------------------------------------------------ *)
(* Snapshot diffing: the perf-regression oracle                        *)
(* ------------------------------------------------------------------ *)

module Diff = struct
  (* Counters, span call counts and histogram sample totals are exact
     work counts — bit-deterministic for a fixed workload, on any
     machine and at any --jobs — so they must match the baseline
     exactly (modulo [allow]). Wall times and gauges are compared
     within a relative tolerance, with an absolute floor below which
     noise drowns any signal. *)

  (* Allocated-words columns sit in between: deterministic for a fixed
     workload on a fixed compiler, but they drift across OCaml versions
     and with --jobs (per-domain minor heaps), so they get their own
     relative tolerance [alloc_tol] and absolute floor [alloc_floor]
     (in words). gc.* gauges are allocation-denominated and use the
     same pair. *)
  type config = {
    time_tol : float;
    time_floor : float;
    alloc_tol : float;
    alloc_floor : float;
    allow : string list;
  }

  let default =
    { time_tol = 1.0; time_floor = 0.01; alloc_tol = 1.0; alloc_floor = 65536.; allow = [] }

  let allowed cfg name =
    List.exists
      (fun pat ->
        let np = String.length pat in
        if np > 0 && pat.[np - 1] = '*' then
          String.length name >= np - 1 && String.sub name 0 (np - 1) = String.sub pat 0 (np - 1)
        else String.equal pat name)
      cfg.allow

  let within cfg base fresh =
    Float.abs (fresh -. base) <= cfg.time_floor
    || (fresh <= base *. (1. +. cfg.time_tol) && base <= fresh *. (1. +. cfg.time_tol))

  let within_alloc cfg base fresh =
    Float.abs (fresh -. base) <= cfg.alloc_floor
    || (fresh <= base *. (1. +. cfg.alloc_tol) && base <= fresh *. (1. +. cfg.alloc_tol))

  let is_gc_gauge k = String.length k >= 3 && String.sub k 0 3 = "gc."

  let diff cfg ~(baseline : Snapshot.t) ~(fresh : Snapshot.t) =
    let out = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
    if baseline.Snapshot.version <> fresh.Snapshot.version then
      fail "schema version: baseline v%d, fresh v%d" baseline.Snapshot.version
        fresh.Snapshot.version;
    List.iter
      (fun (k, vb) ->
        if not (allowed cfg k) then
          match List.assoc_opt k fresh.Snapshot.counters with
          | None -> fail "counter %-40s baseline %d, missing from fresh snapshot" k vb
          | Some vf when vf <> vb ->
            fail "counter %-40s baseline %d, fresh %d (deterministic counters must match)" k vb
              vf
          | Some _ -> ())
      baseline.Snapshot.counters;
    List.iter
      (fun (k, vf) ->
        if vf <> 0 && (not (allowed cfg k))
           && List.assoc_opt k baseline.Snapshot.counters = None
        then fail "counter %-40s new nonzero counter (%d); refresh the baseline" k vf)
      fresh.Snapshot.counters;
    List.iter
      (fun (k, vb) ->
        if not (allowed cfg k) then
          match List.assoc_opt k fresh.Snapshot.gauges with
          | None -> fail "gauge   %-40s missing from fresh snapshot" k
          | Some vf when is_gc_gauge k ->
            if not (within_alloc cfg vb vf) then
              fail
                "gauge   %-40s baseline %g, fresh %g (outside alloc tolerance %g%%, floor %g \
                 words)"
                k vb vf (cfg.alloc_tol *. 100.) cfg.alloc_floor
          | Some vf when not (within cfg vb vf) ->
            fail "gauge   %-40s baseline %g, fresh %g (outside tolerance)" k vb vf
          | Some _ -> ())
      baseline.Snapshot.gauges;
    List.iter
      (fun (k, cb) ->
        if not (allowed cfg k) then
          match List.assoc_opt k fresh.Snapshot.histograms with
          | None -> fail "histogram %-38s missing from fresh snapshot" k
          | Some cf ->
            let tb = total_count cb and tf = total_count cf in
            if tb <> tf then
              fail "histogram %-38s baseline %d samples, fresh %d (sample totals are \
                    deterministic)"
                k tb tf)
      baseline.Snapshot.histograms;
    List.iter
      (fun (k, cf) ->
        if total_count cf <> 0 && (not (allowed cfg k))
           && List.assoc_opt k baseline.Snapshot.histograms = None
        then fail "histogram %-38s new histogram (%d samples); refresh the baseline" k
               (total_count cf))
      fresh.Snapshot.histograms;
    let rec flatten prefix nodes =
      List.concat_map
        (fun (n : Snapshot.node) ->
          let path = if prefix = "" then n.Snapshot.name else prefix ^ "/" ^ n.Snapshot.name in
          (path, (n.Snapshot.count, n.Snapshot.total_s, n.Snapshot.minor_aw +. n.Snapshot.major_aw))
          :: flatten path n.Snapshot.children)
        nodes
    in
    let fb = flatten "" baseline.Snapshot.spans and ff = flatten "" fresh.Snapshot.spans in
    List.iter
      (fun (path, (cb, tb, ab)) ->
        if not (allowed cfg path) then
          match List.assoc_opt path ff with
          | None -> fail "span    %-40s missing from fresh snapshot" path
          | Some (cf, tf, af) ->
            if cf <> cb then
              fail "span    %-40s baseline %d calls, fresh %d (call counts are deterministic)"
                path cb cf;
            if not (within cfg tb tf) then
              fail "span    %-40s inclusive %.3f ms vs baseline %.3f ms (tol %g%%, floor %g ms)"
                path (tf *. 1e3) (tb *. 1e3)
                (cfg.time_tol *. 100.)
                (cfg.time_floor *. 1e3);
            if not (within_alloc cfg ab af) then
              fail
                "span    %-40s inclusive %.0f words vs baseline %.0f words (alloc tol %g%%, \
                 floor %g words)"
                path af ab (cfg.alloc_tol *. 100.) cfg.alloc_floor)
      fb;
    List.iter
      (fun (path, (cf, _, _)) ->
        if cf <> 0 && (not (allowed cfg path)) && List.assoc_opt path fb = None then
          fail "span    %-40s new span path (%d calls); refresh the baseline" path cf)
      ff;
    List.rev !out
end

(* ------------------------------------------------------------------ *)
(* Trace validation                                                    *)
(* ------------------------------------------------------------------ *)

type trace_stats = {
  trace_events : int;
  trace_complete : int;
  trace_counter_samples : int;
  trace_gc_samples : int;
  trace_lanes : int;
}

let validate_trace_file file =
  match Json.parse (read_file_string file) with
  | exception Json.Bad msg -> Error ("invalid JSON: " ^ msg)
  | exception Sys_error msg -> Error msg
  | Json.Arr events ->
    let complete = ref 0 and samples = ref 0 and gc_samples = ref 0 in
    let tids : (float, unit) Hashtbl.t = Hashtbl.create 8 in
    let is_gc_lane name = String.length name >= 3 && String.sub name 0 3 = "gc." in
    let check i = function
      | Json.Obj fields ->
        let field k = List.assoc_opt k fields in
        let err fmt = Printf.ksprintf (fun s -> Some (Printf.sprintf "event %d: %s" i s)) fmt in
        (match (field "name", field "ph", field "ts") with
         | Some (Json.Str name), Some (Json.Str ph), Some (Json.Num _) ->
           (match (field "pid", field "tid") with
            | Some (Json.Num pid), Some (Json.Num tid)
              when Float.is_integer pid && Float.is_integer tid && tid >= 0. ->
              Hashtbl.replace tids tid ();
              (match ph with
               | "X" ->
                 (match field "dur" with
                  | Some (Json.Num d) when d >= 0. ->
                    Stdlib.incr complete;
                    None
                  | Some _ -> err "complete event with non-numeric or negative \"dur\""
                  | None -> err "complete (ph X) event missing \"dur\"")
               | "C" ->
                 (match field "args" with
                  | Some (Json.Obj args) ->
                    (match List.assoc_opt "value" args with
                     | Some (Json.Num v) when is_gc_lane name ->
                       (* GC heap lanes are cumulative word/collection
                          counts: whole numbers, never negative. *)
                       if not (Float.is_integer v) then
                         err "gc counter lane %S with non-integer sample %g" name v
                       else if v < 0. then
                         err "gc counter lane %S with negative sample %g" name v
                       else begin
                         Stdlib.incr samples;
                         Stdlib.incr gc_samples;
                         None
                       end
                     | Some (Json.Num _) ->
                       Stdlib.incr samples;
                       None
                     | _ -> err "counter sample missing numeric \"args.value\"")
                  | _ -> err "counter (ph C) event missing \"args\" object")
               | _ -> None)
            | _ -> err "missing or non-integer \"pid\"/\"tid\"")
         | None, _, _ -> err "missing \"name\""
         | _, None, _ -> err "missing \"ph\""
         | _, _, None -> err "missing \"ts\""
         | _ -> err "wrong field types")
      | _ -> Some (Printf.sprintf "event %d: not an object" i)
    in
    let rec go i = function
      | [] ->
        Ok
          { trace_events = List.length events;
            trace_complete = !complete;
            trace_counter_samples = !samples;
            trace_gc_samples = !gc_samples;
            trace_lanes = Hashtbl.length tids
          }
      | e :: rest -> (match check i e with None -> go (i + 1) rest | Some err -> Error err)
    in
    go 0 events
  | _ -> Error "top-level JSON value is not an array"
