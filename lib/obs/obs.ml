(* Process-global, domain-safe observability state. The null sink is
   the [on = false] state: every instrumentation site reduces to one
   load and branch, so hot paths keep their uninstrumented cost
   profile. With a sink enabled, counter bumps are single atomic adds
   (no lock on the hot path); registry lookups, span statistics and
   trace emission — all rare or already channel-bound — share one
   mutex. *)

let on = ref false

let enable () = on := true
let disable () = on := false
let enabled () = !on

(* One lock for everything that is not a counter bump: the two
   registries, span-statistic updates and trace emission. Contention is
   negligible — spans wrap whole engine calls, and registry lookups
   happen once per counter per module load. *)
let lock = Mutex.create ()
let locked f = Mutex.protect lock f

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_value : int Atomic.t }

let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counter_registry name with
      | Some c -> c
      | None ->
        let c = { c_name = name; c_value = Atomic.make 0 } in
        Hashtbl.add counter_registry name c;
        c)

let incr c = if !on then ignore (Atomic.fetch_and_add c.c_value 1)
let add c n = if !on then ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value

let counters () =
  locked (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_value) :: acc) counter_registry [])
  |> List.sort compare

let counter_value name =
  match locked (fun () -> Hashtbl.find_opt counter_registry name) with
  | Some c -> Atomic.get c.c_value
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span_stat = { mutable s_count : int; mutable s_total : float }

let span_registry : (string, span_stat) Hashtbl.t = Hashtbl.create 32

(* Callers hold [lock]. *)
let span_stat_locked name =
  match Hashtbl.find_opt span_registry name with
  | Some s -> s
  | None ->
    let s = { s_count = 0; s_total = 0. } in
    Hashtbl.add span_registry name s;
    s

let spans () =
  locked (fun () ->
      Hashtbl.fold (fun name s acc -> (name, s.s_count, s.s_total) :: acc) span_registry [])
  |> List.sort compare

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counter_registry;
      Hashtbl.iter
        (fun _ s ->
          s.s_count <- 0;
          s.s_total <- 0.)
        span_registry)

(* ------------------------------------------------------------------ *)
(* Trace sink (Chrome trace_event JSON array)                          *)
(* ------------------------------------------------------------------ *)

type trace = { ch : out_channel; mutable first : bool; t0 : float }

let trace_state : trace option ref = ref None

let tracing () = !trace_state <> None

let now () = Sys.time ()

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Callers hold [lock]: the channel and [first] are shared. *)
let emit_raw tr json =
  if tr.first then tr.first <- false else output_string tr.ch ",\n";
  output_string tr.ch json

(* Timestamps are microseconds since the trace opened, from [Sys.time]
   (processor time): monotone within a process, which is all the trace
   viewer needs. Under parallel execution the process clock advances
   with total CPU work, so concurrent spans overlap in the viewer but
   durations read as CPU time, not wall time. *)
let usec tr t = (t -. tr.t0) *. 1e6

(* Each domain gets its own trace row: [tid] is the domain id, so a
   parallel sweep renders as one lane per worker in Perfetto. *)
let tid () = (Domain.self () :> int)

(* Callers hold [lock]. *)
let emit_complete_locked name ~t_start ~t_end =
  match !trace_state with
  | None -> ()
  | Some tr ->
    emit_raw tr
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"pak\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}"
         (json_escape name) (usec tr t_start) (usec tr (max t_end t_start)) (tid ()))

let emit_counter_sample tr name v =
  emit_raw tr
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"pak\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"value\":%d}}"
       (json_escape name) (usec tr (now ())) (tid ()) v)

let trace_stop () =
  locked (fun () ->
      match !trace_state with
      | None -> ()
      | Some tr ->
        Hashtbl.fold (fun name c acc -> (name, Atomic.get c.c_value) :: acc) counter_registry []
        |> List.sort compare
        |> List.iter (fun (name, v) -> emit_counter_sample tr name v);
        output_string tr.ch "\n]\n";
        close_out tr.ch;
        trace_state := None)

let trace_to file =
  trace_stop ();
  let ch = open_out file in
  locked (fun () ->
      output_string ch "[\n";
      trace_state := Some { ch; first = true; t0 = now () });
  enable ()

(* ------------------------------------------------------------------ *)
(* Span timing                                                         *)
(* ------------------------------------------------------------------ *)

let span name f =
  if not !on then f ()
  else begin
    let t0 = now () in
    let finish () =
      let t1 = now () in
      locked (fun () ->
          let stat = span_stat_locked name in
          stat.s_count <- stat.s_count + 1;
          stat.s_total <- stat.s_total +. (t1 -. t0);
          emit_complete_locked name ~t_start:t0 ~t_end:t1)
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Summary sink                                                        *)
(* ------------------------------------------------------------------ *)

let pp_summary fmt () =
  Format.fprintf fmt "== pak metrics ==@\n";
  Format.fprintf fmt "counters:@\n";
  (match counters () with
   | [] -> Format.fprintf fmt "  (none registered)@\n"
   | cs ->
     List.iter (fun (name, v) -> Format.fprintf fmt "  %-42s %12d@\n" name v) cs);
  Format.fprintf fmt "spans:@\n";
  match spans () with
  | [] -> Format.fprintf fmt "  (none recorded)@\n"
  | ss ->
    Format.fprintf fmt "  %-42s %10s %12s %12s@\n" "" "calls" "total ms" "mean us";
    List.iter
      (fun (name, count, total) ->
        let mean_us = if count = 0 then 0. else total /. float_of_int count *. 1e6 in
        Format.fprintf fmt "  %-42s %10d %12.3f %12.3f@\n" name count (total *. 1e3) mean_us)
      ss

let print_summary ch =
  let fmt = Format.formatter_of_out_channel ch in
  pp_summary fmt ();
  Format.pp_print_flush fmt ()

(* ------------------------------------------------------------------ *)
(* Trace validation: a minimal JSON reader, enough to check that an
   emitted trace is well-formed trace_event data.                      *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  type state = { src : string; mutable pos : int }

  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let skip_ws st =
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done

  let expect st c =
    match peek st with
    | Some c' when c' = c -> st.pos <- st.pos + 1
    | _ -> raise (Bad (Printf.sprintf "expected %c at offset %d" c st.pos))

  let literal st word v =
    let n = String.length word in
    if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
      st.pos <- st.pos + n;
      v
    end
    else raise (Bad (Printf.sprintf "bad literal at offset %d" st.pos))

  let string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if st.pos >= String.length st.src then raise (Bad "unterminated string");
      let c = st.src.[st.pos] in
      st.pos <- st.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if st.pos >= String.length st.src then raise (Bad "unterminated escape");
         let e = st.src.[st.pos] in
         st.pos <- st.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if st.pos + 4 > String.length st.src then raise (Bad "short \\u escape");
           (* Decoded only far enough for validation purposes. *)
           st.pos <- st.pos + 4;
           Buffer.add_char buf '?'
         | _ -> raise (Bad "unknown escape"));
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()

  let number st =
    let start = st.pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
      st.pos <- st.pos + 1
    done;
    match float_of_string_opt (String.sub st.src start (st.pos - start)) with
    | Some f -> f
    | None -> raise (Bad (Printf.sprintf "bad number at offset %d" start))

  let rec value st =
    skip_ws st;
    match peek st with
    | None -> raise (Bad "unexpected end of input")
    | Some '"' -> Str (string st)
    | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (expect st '}'; Obj [])
      else begin
        let rec members acc =
          skip_ws st;
          let k = string st in
          skip_ws st;
          expect st ':';
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; members ((k, v) :: acc)
          | Some '}' -> expect st '}'; Obj (List.rev ((k, v) :: acc))
          | _ -> raise (Bad (Printf.sprintf "expected , or } at offset %d" st.pos))
        in
        members []
      end
    | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (expect st ']'; Arr [])
      else begin
        let rec elements acc =
          let v = value st in
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; elements (v :: acc)
          | Some ']' -> expect st ']'; Arr (List.rev (v :: acc))
          | _ -> raise (Bad (Printf.sprintf "expected , or ] at offset %d" st.pos))
        in
        elements []
      end
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> Num (number st)

  let parse src =
    let st = { src; pos = 0 } in
    let v = value st in
    skip_ws st;
    if st.pos <> String.length src then raise (Bad "trailing data after JSON value");
    v
end

let validate_trace_file file =
  let read_all file =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse (read_all file) with
  | exception Json.Bad msg -> Error ("invalid JSON: " ^ msg)
  | exception Sys_error msg -> Error msg
  | Json.Arr events ->
    let check i = function
      | Json.Obj fields ->
        let field k = List.assoc_opt k fields in
        (match (field "name", field "ph", field "ts") with
         | Some (Json.Str _), Some (Json.Str _), Some (Json.Num _) -> Ok ()
         | None, _, _ -> Error (Printf.sprintf "event %d: missing \"name\"" i)
         | _, None, _ -> Error (Printf.sprintf "event %d: missing \"ph\"" i)
         | _, _, None -> Error (Printf.sprintf "event %d: missing \"ts\"" i)
         | _ -> Error (Printf.sprintf "event %d: wrong field types" i))
      | _ -> Error (Printf.sprintf "event %d: not an object" i)
    in
    let rec go i = function
      | [] -> Ok (List.length events)
      | e :: rest -> (match check i e with Ok () -> go (i + 1) rest | Error _ as err -> err)
    in
    go 0 events
  | _ -> Error "top-level JSON value is not an array"
