(** pak_obs — zero-dependency observability: counters, histograms, span
    timers (flat and hierarchical) and structured trace events with
    pluggable sinks.

    The library is deliberately tiny and dependency-free so that every
    layer of pak can be instrumented without widening the build. Three
    sinks are provided:

    - the {e null sink} (default): instrumentation compiles to a single
      load-and-branch on {!on}, so the uninstrumented fast path is
      preserved;
    - a {e summary sink}: accumulated counters, latency histograms and
      span statistics, printable as human-readable tables
      ({!print_summary}, {!print_span_tree});
    - a {e trace sink}: Chrome [trace_event]-format JSON written
      incrementally to a file ({!trace_to}), loadable in
      [about:tracing] / Perfetto.

    On top of the sinks, {!Snapshot} freezes everything into one
    versioned, machine-readable value (serialized as zero-dependency
    JSON), and {!Diff} compares two snapshots as a perf-regression
    oracle: deterministic work counts must match exactly, wall times
    within a tolerance.

    Counters, histograms and spans are process-global and
    {e domain-safe}: counter bumps and histogram records are single
    atomic adds (no lock on the hot path, no lost updates under
    parallel sweeps), while registry lookups, span statistics and trace
    emission serialize on one internal mutex. Trace events carry the
    emitting domain's id as their [tid], so a parallel run renders as
    one lane per worker in Perfetto. Instrumented code must not change
    observable results: enabling or disabling any sink leaves every
    computation bit-identical (tested by the qcheck suite). *)

val on : bool ref
(** Master switch read on every instrumentation fast path. Treat as
    read-only; flip it via {!enable} / {!disable}. *)

val enable : unit -> unit
(** Start accumulating counters, histograms and span statistics. *)

val disable : unit -> unit
(** Return to the null sink. Accumulated values are kept until
    {!reset}; a running trace sink keeps recording only if re-enabled. *)

val enabled : unit -> bool

val set_track_allocations : bool -> unit
(** Kill switch for per-span allocation attribution. When off, {!span}
    skips its [Gc] counter reads and records zero allocated words;
    timings, counters and the span tree shape are unaffected. On by
    default. The built-in [gc.*] gauges keep reporting either way —
    they are polled, not on the hot path. *)

val track_allocations : unit -> bool

val reset : unit -> unit
(** Zero every counter, histogram bucket and span statistic (flat and
    hierarchical, including allocated words), and re-base the built-in
    [gc.*] gauges so cumulative GC counters read as deltas since this
    call. Does not touch sinks or gauge providers. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] returns the process-global counter registered under
    [name], creating it on first use. Dotted names ([engine.metric])
    group related counters in summaries. *)

val incr : counter -> unit
(** Add one (atomically); a no-op unless {!on}. *)

val add : counter -> int -> unit
(** Add [n] (atomically); a no-op unless {!on}. *)

val value : counter -> int

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val counter_value : string -> int
(** Value of a counter by name; [0] if it was never registered. *)

(** {1 Histograms}

    Log-bucketed integer histograms with exact bucket counts. Bucket
    [0] collects every non-positive value; bucket [i >= 1] collects
    the interval [\[2{^i-1}, 2{^i})], so 63 buckets cover every OCaml
    [int] and a record can never fall outside the histogram. Recording
    is one atomic add — the same hot-path discipline as counters.
    Every {!span} site feeds a histogram of the same name with its
    duration in nanoseconds. *)

type histogram

val n_buckets : int
(** Number of buckets (63). *)

val bucket_of : int -> int
(** Bucket index for a value: [0] for [v <= 0], otherwise the number
    of significant bits of [v]. Total on [int]: every value lands in
    exactly one bucket. *)

val bucket_lo : int -> int
(** Smallest value belonging to a bucket ([0] for bucket 0). *)

val bucket_hi : int -> int
(** Largest value belonging to a bucket ([max_int] for the last). *)

val histogram : string -> histogram
(** The process-global histogram registered under a name, created on
    first use. *)

val record : histogram -> int -> unit
(** Record one sample (atomically); a no-op unless {!on}. *)

val histogram_counts : histogram -> int array
(** Current per-bucket counts, length {!n_buckets}. *)

val histograms : unit -> (string * int array) list
(** Every registered histogram with its bucket counts, sorted by name. *)

val merge_counts : int array -> int array -> int array
(** Pointwise sum — the histogram of the concatenated sample streams. *)

val total_count : int array -> int
(** Total samples across all buckets. *)

val percentile : int array -> float -> float
(** [percentile counts q] estimates the [q]-quantile ([0. <= q <= 1.])
    by locating the bucket holding the [⌈q·total⌉]-th sample and
    interpolating linearly inside it. Bucket-resolution accuracy (a
    factor of 2); [0.] when the histogram is empty. *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]. When {!on}, its inclusive wall time is
    accumulated under [name] (flat statistics, a duration histogram in
    nanoseconds, and a node in the hierarchical span tree keyed by the
    enclosing open spans of the current domain) and, if a trace sink is
    active, a complete ("ph":"X") trace event carrying the full span
    path is emitted. Exceptions still close the span. When off,
    [span name f] is exactly [f ()].

    When {!track_allocations} is on, each call also records the words
    the span allocated: minor words from the current domain's
    allocation counter ([Gc.minor_words], precise), and words
    allocated directly on the major heap as the [Gc.quick_stat] delta
    of [major_words - promoted_words]. The counter reads are ordered
    so the instrumentation's own allocation (~24 words per span for
    the [quick_stat] records) is attributed to the {e enclosing}
    span's self column, not to the span being measured. Counters are
    domain-local, so under a parallel sweep each worker's spans
    measure that worker's allocation and equal paths merge — the same
    jobs-invariance as call counts, up to GC-timing jitter in
    promotion. *)

val span_detach : (unit -> 'a) -> 'a
(** [span_detach f] runs [f ()] with the current domain's open-span
    stack masked: spans opened inside record as if at top level, and
    the enclosing stack is restored afterwards. For work whose
    executing domain is scheduling-dependent — a pool task that may be
    claimed by a worker (empty stack) or by the caller (inside its
    open spans) — detaching makes the recorded span paths, and so the
    span-tree shape, identical at every job count. When off,
    [span_detach f] is exactly [f ()]. *)

val with_trace_context : string -> (unit -> 'a) -> 'a
(** [with_trace_context id f] runs [f ()] with [id] installed as the
    current domain's ambient {e trace context}: every trace event a
    {!span} emits while it is installed carries [id] as an
    ["args.trace"] field, joining the event to the request (or other
    unit of work) that ran it. Contexts nest — the previous context is
    restored afterwards, exceptions included. The context is a
    {e separate} domain-local key from the span stack, so
    {!span_detach} masks span paths but keeps the trace id: a pooled
    server request records root-level span paths that still carry its
    request identity. Pure bookkeeping — installs fine with the null
    sink too. *)

val trace_context : unit -> string option
(** The currently installed trace context of the calling domain. *)

val spans : unit -> (string * int * float) list
(** [(name, calls, total_seconds)] per span name, sorted by name. *)

val span_allocs : unit -> (string * float * float) list
(** [(name, minor_words, major_words)] allocated inside each span
    (flat, inclusive of nested spans), sorted by name. *)

(** {2 Hierarchical span tree}

    Each domain tracks its stack of open spans in domain-local
    storage; samples fold into one process-global table keyed by the
    full path. Equal paths from different domains merge, so a parallel
    sweep's workers contribute to the same tree nodes the serial run
    produces — call counts per path are jobs-invariant. *)

type span_node = {
  sn_name : string;  (** leaf name *)
  sn_path : string list;  (** full path, outermost first *)
  sn_count : int;  (** completed calls at this path *)
  sn_total : float;  (** inclusive seconds *)
  sn_self : float;  (** inclusive minus children's inclusive, clamped at 0 *)
  sn_minor_aw : float;  (** inclusive minor allocated words *)
  sn_self_minor_aw : float;  (** minor words minus children's, clamped at 0 *)
  sn_major_aw : float;  (** inclusive words allocated directly on the major heap *)
  sn_self_major_aw : float;  (** direct-major words minus children's, clamped at 0 *)
  sn_children : span_node list;  (** sorted by name *)
}

val span_tree : unit -> span_node list
(** Current hierarchical statistics as a forest of root spans, sorted
    by name at every level. *)

val pp_span_tree : Format.formatter -> unit -> unit
(** Indented tree of calls / inclusive ms / self ms / inclusive kw /
    self kw per span path (kw = thousands of allocated words). *)

val print_span_tree : out_channel -> unit

val pp_alloc_report : ?top:int -> Format.formatter -> unit -> unit
(** Span paths ranked by self-allocated words (minor + direct major),
    top [top] (default 20) shown with calls, self/inclusive kw and
    words per call, followed by the total attributed words and — when
    the [gc.minor_words] gauge is nonzero — the fraction of the
    process's minor words since {!reset} that the span tree accounts
    for. Backs [pak profile --alloc]. *)

val print_alloc_report : ?top:int -> out_channel -> unit

(** {2 Flamegraph export} *)

type flame_weight =
  | Flame_time  (** self nanoseconds per span path *)
  | Flame_alloc  (** self allocated words (minor + direct major) per span path *)

val flamegraph : ?weight:flame_weight -> unit -> string
(** The current span tree in collapsed-stack format — one
    [a;b;c <weight>] line per span path, the input format of
    [flamegraph.pl] and speedscope. Weights are {e self} values
    (inclusive totals would double-count once the tool sums subtrees):
    self time in whole nanoseconds ({!Flame_time}, the default) or
    self allocated words ({!Flame_alloc}). Zero-weight paths are
    dropped and lines sorted by path, so the output is a deterministic
    function of the recorded statistics. Backs [pak profile --flame].
    Empty string when no spans were recorded. *)

(** {1 Gauges}

    Gauges are sampled, not accumulated: other layers register
    providers (budget fuel in [pak_guard], memo hit-rate in the
    semantics engine) that are polled when a summary or snapshot is
    taken.

    A built-in provider reports the GC under [gc.*]: [gc.minor_words],
    [gc.major_words], [gc.promoted_words], [gc.minor_collections],
    [gc.major_collections] and [gc.compactions] as deltas since the
    last {!reset}, plus the absolute heap levels [gc.heap_words] and
    [gc.top_heap_words]. Word counts come from [Gc.quick_stat]
    combined with the domain-local [Gc.minor_words] counter, so the
    minor total is exact on a single domain and accurate to within one
    unflushed minor heap per live domain otherwise. *)

val register_gauges : (unit -> (string * float) list) -> unit
(** Register a provider. Providers survive {!reset}; a provider with
    nothing to report returns []. *)

val gauges : unit -> (string * float) list
(** Poll every provider, sorted by name. *)

(** {1 Trace sink} *)

val trace_to : string -> unit
(** Open [file] and start recording span events as a Chrome
    trace-event JSON array. Implies {!enable}. Raises [Sys_error] if
    the file cannot be opened; calling while a trace is already open
    closes the previous one first.

    While a trace is open (and {!track_allocations} is on), every
    {!gauge_sample_interval}-th span exit per domain — plus the very
    first, so short runs get at least one mid-run sample — also emits
    one "ph":"C" sample per [gc.*] lane: raw cumulative values, so the
    heap lanes render as non-decreasing counter tracks in Perfetto. *)

val set_gauge_sample_interval : int -> unit
(** Set how many span exits (per domain) separate consecutive [gc.*]
    heap-lane sample bursts while a trace is recording. Default [32];
    [1] samples at every span exit. The first span exit per domain
    always samples regardless of the interval.
    @raise Invalid_argument on an interval below 1. *)

val gauge_sample_interval : unit -> int
(** The current [gc.*] trace-sampling interval. *)

val trace_stop : unit -> unit
(** Emit one final "ph":"C" counter sample per registered counter and
    per [gc.*] heap lane, close the JSON array and the file. A no-op
    if no trace is open. *)

val tracing : unit -> bool

(** {1 Reporting} *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable tables: counters, polled gauges, and span
    statistics with p50/p90/p99 from the duration histograms. *)

val print_summary : out_channel -> unit

(** {1 Minimal JSON reader}

    The zero-dependency JSON parser used internally to validate traces
    and parse {!Snapshot} values back, exposed so other layers (the
    certificate decoder in [Pak_cert], tools) can read the JSON this
    library and its clients emit without adding a dependency. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string
  (** Raised by {!parse} on malformed input, with a position-bearing
      message. *)

  val parse : string -> t
  (** Parse one JSON document. @raise Bad on malformed input. *)
end

(** {1 Versioned metrics snapshots} *)

module Snapshot : sig
  val schema_version : int
  (** Version of the snapshot schema; bumped on incompatible change.
      Currently [2]: v2 added the four allocated-words fields to span
      nodes. v1 files still decode — the alloc fields read as [0.]. *)

  type node = {
    name : string;
    count : int;
    total_s : float;
    self_s : float;
    minor_aw : float;
    self_minor_aw : float;
    major_aw : float;
    self_major_aw : float;
    children : node list;
  }

  type t = {
    version : int;
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * int array) list;
    spans : node list;
  }

  val capture : unit -> t
  (** Freeze the current counters, polled gauges, histograms and span
      tree into one value stamped with {!schema_version}. *)

  val to_json : t -> string
  (** Serialize as JSON. Floats print as [%.17g], so
      {!of_json_string} round-trips every finite value exactly. *)

  val of_json_string : string -> (t, string) result

  val of_file : string -> (t, string) result

  val write : string -> t -> unit
  (** Write [to_json t] to a file. Raises [Sys_error] on failure. *)

  val diff_capture : (unit -> 'a) -> 'a * t
  (** [diff_capture f] captures a snapshot, runs [f], captures again
      and returns [f ()] together with the per-call delta — without
      resetting any global registry. Counters and histograms are
      after−before (all-zero rows dropped); gauges keep the after
      values (they are levels, not flows); [spans] is empty, because
      span paths accumulate per domain and a single call's share
      cannot be attributed by subtraction. Bumps made by {e other}
      domains while [f] runs land in the delta; single-domain callers
      get an exact attribution. *)
end

(** {1 Rolling time-series}

    A fixed-capacity ring of metric {e deltas}: each {!Series.record}
    samples the registries and stores what changed since the previous
    record, so a long-lived process (a [pak serve] session under
    [--telemetry-every]) exposes rates-over-time, not just
    totals-at-exit. *)

module Series : sig
  type t

  type sample = {
    s_seq : int;  (** 0-based record index, monotone across evictions *)
    s_counters : (string * int) list;
        (** counter increments since the previous record, zero rows
            dropped, sorted by name *)
    s_gauges : (string * float) list;
        (** gauge {e levels} at record time (gauges are sampled, not
            accumulated — a delta of a level is noise) *)
    s_hist_totals : (string * int) list;
        (** histogram sample-count increments since the previous
            record, zero rows dropped *)
  }

  val create : capacity:int -> t
  (** A new recorder holding at most [capacity] samples, with its
      delta basis set to the registries' current values.
      @raise Invalid_argument when [capacity < 1]. *)

  val record : t -> sample
  (** Sample the registries, store and return the delta since the
      previous record (or since {!create} for the first). The basis
      advances on {e every} record, independent of ring eviction, so
      summing a counter across all samples ever recorded telescopes to
      its total growth since {!create} — even after old samples fell
      out of the ring. Thread-safe. *)

  val capacity : t -> int

  val length : t -> int
  (** Samples currently held: [min (records so far) capacity]. *)

  val samples : t -> sample list
  (** Held samples, oldest first. When more than [capacity] records
      were made, these are the latest [capacity] of them — consecutive
      [s_seq] values ending at the newest record. *)
end

(** {1 OpenMetrics exposition} *)

module Openmetrics : sig
  val render : Snapshot.t -> string
  (** The snapshot in OpenMetrics / Prometheus text format: counters
      as [_total] samples, gauges as levels, span-latency histograms
      as cumulative [_bucket{le="<ns>"}] series with [_count] and
      [_sum], each preceded by [# TYPE] / [# HELP] directives, ending
      with the [# EOF] terminator. Metric names are the pak names
      under a [pak_] prefix with every character outside
      [\[a-zA-Z0-9_:\]] mapped to ['_']. The histogram [_sum] is a
      lower-bound estimate (bucket lower bound × count summed): the
      log-bucket counts are the exact data; exact sample values are
      gone by design. Total for every snapshot — never raises.
      Surfaced as [pak profile --openmetrics] and the serve
      [(op metrics)] request. *)

  val check : string -> (unit, string) result
  (** Minimal line-grammar validation of an exposition: every line is
      a [# TYPE] / [# HELP] directive or a sample line with a legal
      metric name, an optional balanced [{...}] label block and a
      finite numeric value, and the text ends with exactly one
      [# EOF] line. [render] output always passes (fuzzed by
      [tools/fuzz.exe --mode openmetrics]). *)
end

(** {1 Snapshot diffing — the perf-regression oracle}

    Counters, span call counts and histogram sample totals are exact
    work counts — bit-deterministic for a fixed workload, on any
    machine and at any [--jobs] — so they must match a baseline
    exactly. Wall times and gauges are compared within a relative
    tolerance with an absolute floor. [tools/bench_diff.exe] wraps
    this as a CLI and CI gate. *)

module Diff : sig
  type config = {
    time_tol : float;
        (** relative tolerance for times/gauges: [fresh] may differ
            from [base] by a factor of [1 + time_tol] either way *)
    time_floor : float;
        (** absolute slack (seconds) below which differences pass *)
    alloc_tol : float;
        (** relative tolerance for span allocated words and [gc.*]
            gauges — deterministic per compiler version and workload,
            but they drift across OCaml releases and with [--jobs] *)
    alloc_floor : float;
        (** absolute slack (words) below which allocation differences
            pass *)
    allow : string list;
        (** names exempt from comparison; a trailing ['*'] matches a
            prefix *)
  }

  val default : config
  (** [time_tol = 1.0] (2x either way), [time_floor = 0.01] s,
      [alloc_tol = 1.0], [alloc_floor = 65536.] words, empty
      allowlist. *)

  val diff : config -> baseline:Snapshot.t -> fresh:Snapshot.t -> string list
  (** All violations of [fresh] against [baseline], one readable line
      each; [[]] means the snapshots agree. *)
end

(** {1 Trace validation}

    A minimal JSON reader used by CI to sanity-check emitted traces
    without external tooling. *)

type trace_stats = {
  trace_events : int;  (** total events in the array *)
  trace_complete : int;  (** ["ph":"X"] complete events *)
  trace_counter_samples : int;  (** ["ph":"C"] counter samples *)
  trace_gc_samples : int;  (** the subset of those on [gc.*] heap lanes *)
  trace_lanes : int;  (** distinct [tid] values (domain lanes) *)
}

val validate_trace_file : string -> (trace_stats, string) result
(** Parse [file] as JSON and check it is an array of objects each
    carrying a string ["name"], a string ["ph"], a numeric ["ts"] and
    integer ["pid"]/["tid"]; ["ph":"X"] events must carry a
    non-negative numeric ["dur"], ["ph":"C"] events a numeric
    ["args.value"] — and on [gc.*] heap lanes the value must further
    be a non-negative integer (cumulative word/collection counts).
    Returns event statistics, or a description of the first
    violation. *)
