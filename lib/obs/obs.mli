(** pak_obs — zero-dependency observability: counters, span timers and
    structured trace events with pluggable sinks.

    The library is deliberately tiny and dependency-free so that every
    layer of pak can be instrumented without widening the build. Three
    sinks are provided:

    - the {e null sink} (default): instrumentation compiles to a single
      load-and-branch on {!on}, so the uninstrumented fast path is
      preserved;
    - a {e summary sink}: accumulated counters and span statistics,
      printable as a human-readable table ({!print_summary});
    - a {e trace sink}: Chrome [trace_event]-format JSON written
      incrementally to a file ({!trace_to}), loadable in
      [about:tracing] / Perfetto.

    Counters and spans are process-global and {e domain-safe}: counter
    bumps are single atomic adds (no lock on the hot path, no lost
    updates under parallel sweeps), while registry lookups, span
    statistics and trace emission serialize on one internal mutex.
    Trace events carry the emitting domain's id as their [tid], so a
    parallel run renders as one lane per worker in Perfetto.
    Instrumented code must not change observable results: enabling or
    disabling any sink leaves every computation bit-identical (tested
    by the qcheck suite). *)

val on : bool ref
(** Master switch read on every instrumentation fast path. Treat as
    read-only; flip it via {!enable} / {!disable}. *)

val enable : unit -> unit
(** Start accumulating counters and span statistics. *)

val disable : unit -> unit
(** Return to the null sink. Accumulated values are kept until
    {!reset}; a running trace sink keeps recording only if re-enabled. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Zero every counter and span statistic. Does not touch sinks. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** [counter name] returns the process-global counter registered under
    [name], creating it on first use. Dotted names ([engine.metric])
    group related counters in summaries. *)

val incr : counter -> unit
(** Add one (atomically); a no-op unless {!on}. *)

val add : counter -> int -> unit
(** Add [n] (atomically); a no-op unless {!on}. *)

val value : counter -> int

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val counter_value : string -> int
(** Value of a counter by name; [0] if it was never registered. *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]. When {!on}, its inclusive wall time is
    accumulated under [name] and, if a trace sink is active, a complete
    ("ph":"X") trace event is emitted. Exceptions still close the
    span. When off, [span name f] is exactly [f ()]. *)

val spans : unit -> (string * int * float) list
(** [(name, calls, total_seconds)] per span name, sorted by name. *)

(** {1 Trace sink} *)

val trace_to : string -> unit
(** Open [file] and start recording span events as a Chrome
    trace-event JSON array. Implies {!enable}. Raises [Sys_error] if
    the file cannot be opened; calling while a trace is already open
    closes the previous one first. *)

val trace_stop : unit -> unit
(** Emit one final "ph":"C" counter sample per registered counter,
    close the JSON array and the file. A no-op if no trace is open. *)

val tracing : unit -> bool

(** {1 Reporting} *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable table of all counters and span statistics. *)

val print_summary : out_channel -> unit

(** {1 Trace validation}

    A minimal JSON reader used by CI to sanity-check emitted traces
    without external tooling. *)

val validate_trace_file : string -> (int, string) result
(** Parse [file] as JSON and check it is an array of objects each
    carrying a string ["name"], a string ["ph"] and a numeric ["ts"].
    Returns the number of events, or a description of the first
    violation. *)
