(** Probably Approximately Knowing — umbrella API.

    One-stop entry point re-exporting the whole library, plus a
    convenience analysis that runs every theorem checker on a single
    (fact, agent, action) triple at once.

    Layers (bottom-up):
    - {!Error}, {!Budget}, {!Graded}: the guardrails — typed errors,
      resource budgets, and graceful degradation to marked estimates;
    - {!Q}, {!Bignat}, {!Bigint}: exact rational arithmetic;
    - {!Dist}: finite distributions with rational weights;
    - {!Obs}: counters, span timers and trace sinks threaded through
      the checker, measure and constraint engines;
    - {!Pool}, {!Sweep}: Domain-based parallelism — a deterministic
      worker pool and parallel theorem sweeps over generated families;
    - {!Gstate}, {!Tree}, {!Bitset}: purely probabilistic systems;
    - {!Fact}, {!Action}, {!Belief}, {!Independence}, {!Constr},
      {!Theorems}, {!Gen}: the paper's Sections 3–7, executable;
    - {!Formula}, {!Parser}, {!Semantics}: probabilistic epistemic
      logic with a model checker;
    - {!Cert}: evaluation provenance — witness certificates for every
      verdict and an independent certificate checker;
    - {!Serve}: the fault-isolated batch/server front end behind
      [pak serve] — framed requests, budgets, backpressure, caching;
    - {!Protocol}, {!Network}: joint protocols compiled to pps;
    - {!Systems}: every example system of the paper. *)

module Error = Pak_guard.Error
module Budget = Pak_guard.Budget
module Graded = Pak_guard.Graded
module Q = Pak_rational.Q
module Bignat = Pak_rational.Bignat
module Bigint = Pak_rational.Bigint
module Dist = Pak_dist.Dist
module Obs = Pak_obs.Obs
module Pool = Pak_par.Pool
module Bitset = Pak_pps.Bitset
module Gstate = Pak_pps.Gstate
module Tree = Pak_pps.Tree
module Fact = Pak_pps.Fact
module Action = Pak_pps.Action
module Belief = Pak_pps.Belief
module Independence = Pak_pps.Independence
module Constr = Pak_pps.Constr
module Theorems = Pak_pps.Theorems
module Gen = Pak_pps.Gen
module Jeffrey = Pak_pps.Jeffrey
module Aumann = Pak_pps.Aumann
module Appendix = Pak_pps.Appendix
module Reference = Pak_pps.Reference
module Policy = Pak_pps.Policy
module Kripke = Pak_pps.Kripke
module Simulate = Pak_pps.Simulate
module Sweep = Pak_pps.Sweep
module Tree_io = Pak_pps.Tree_io
module Formula = Pak_logic.Formula
module Parser = Pak_logic.Parser

(** {!Pak_logic.Semantics} extended with the provenance layer's
    certifying evaluator: [Semantics.certify] produces a
    {!Cert.t} witness tree whose root verdict always agrees with
    [Semantics.eval]. *)
module Semantics : sig
  include module type of Pak_logic.Semantics

  val certify : Pak_pps.Tree.t -> valuation:valuation -> Pak_logic.Formula.t -> Pak_cert.Cert.t
end

module Cert = Pak_cert.Cert
module Serve = Pak_serve.Serve
module Journal = Pak_journal.Journal
module Replay = Pak_serve.Replay
module Axioms = Pak_logic.Axioms
module Simplify = Pak_logic.Simplify
module Protocol = Pak_protocol.Protocol
module Network = Pak_protocol.Network

module Systems : sig
  module Firing_squad = Pak_systems.Firing_squad
  module Figure_one = Pak_systems.Figure_one
  module Threshold_gap = Pak_systems.Threshold_gap
  module Coordinated_attack = Pak_systems.Coordinated_attack
  module Mutex = Pak_systems.Mutex
  module Judge = Pak_systems.Judge
  module Monderer_samet = Pak_systems.Monderer_samet
  module Consensus = Pak_systems.Consensus
  module Aloha = Pak_systems.Aloha
  module Interactive_proof = Pak_systems.Interactive_proof
end

(** Everything the paper says about one probabilistic constraint, in
    one record. *)
type constraint_analysis = {
  report : Constr.report;                        (** Definition 3.2 *)
  expectation : Theorems.expectation_report;     (** Theorem 6.2 *)
  sufficiency : Theorems.sufficiency_report;     (** Theorem 4.2 at the threshold *)
  necessity : Theorems.necessity_report;         (** Lemma 5.1 at the threshold *)
  lemma43 : Theorems.lemma43_report;             (** Lemma 4.3 *)
  kop : Theorems.kop_report;                     (** Lemma F.1 *)
}

val analyze_constraint :
  fact:Fact.t -> agent:int -> act:string -> threshold:Q.t -> constraint_analysis
(** Run every checker on the constraint [µ(fact@act | act) ≥ threshold].
    @raise Action.Not_proper if the action is not proper. *)

val pp_constraint_analysis : Format.formatter -> constraint_analysis -> unit
