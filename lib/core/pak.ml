module Error = Pak_guard.Error
module Budget = Pak_guard.Budget
module Graded = Pak_guard.Graded
module Q = Pak_rational.Q
module Bignat = Pak_rational.Bignat
module Bigint = Pak_rational.Bigint
module Dist = Pak_dist.Dist
module Obs = Pak_obs.Obs
module Pool = Pak_par.Pool
module Bitset = Pak_pps.Bitset
module Gstate = Pak_pps.Gstate
module Tree = Pak_pps.Tree
module Fact = Pak_pps.Fact
module Action = Pak_pps.Action
module Belief = Pak_pps.Belief
module Independence = Pak_pps.Independence
module Constr = Pak_pps.Constr
module Theorems = Pak_pps.Theorems
module Gen = Pak_pps.Gen
module Jeffrey = Pak_pps.Jeffrey
module Aumann = Pak_pps.Aumann
module Appendix = Pak_pps.Appendix
module Reference = Pak_pps.Reference
module Policy = Pak_pps.Policy
module Kripke = Pak_pps.Kripke
module Simulate = Pak_pps.Simulate
module Sweep = Pak_pps.Sweep
module Tree_io = Pak_pps.Tree_io
module Formula = Pak_logic.Formula
module Parser = Pak_logic.Parser
module Closure = Pak_logic.Closure

module Semantics = struct
  include Pak_logic.Semantics

  (* The provenance layer's certifying evaluator, re-exported here so
     the umbrella API offers [Semantics.certify] next to [eval]. *)
  let certify = Pak_cert.Cert.certify
end

module Cert = Pak_cert.Cert
module Serve = Pak_serve.Serve
module Journal = Pak_journal.Journal
module Replay = Pak_serve.Replay
module Axioms = Pak_logic.Axioms
module Simplify = Pak_logic.Simplify
module Protocol = Pak_protocol.Protocol
module Network = Pak_protocol.Network

module Systems = struct
  module Firing_squad = Pak_systems.Firing_squad
  module Figure_one = Pak_systems.Figure_one
  module Threshold_gap = Pak_systems.Threshold_gap
  module Coordinated_attack = Pak_systems.Coordinated_attack
  module Mutex = Pak_systems.Mutex
  module Judge = Pak_systems.Judge
  module Monderer_samet = Pak_systems.Monderer_samet
  module Consensus = Pak_systems.Consensus
  module Aloha = Pak_systems.Aloha
  module Interactive_proof = Pak_systems.Interactive_proof
end

type constraint_analysis = {
  report : Constr.report;
  expectation : Theorems.expectation_report;
  sufficiency : Theorems.sufficiency_report;
  necessity : Theorems.necessity_report;
  lemma43 : Theorems.lemma43_report;
  kop : Theorems.kop_report;
}

let analyze_constraint ~fact ~agent ~act ~threshold =
  let constr = Constr.make ~agent ~act ~fact ~threshold in
  { report = Constr.report constr;
    expectation = Theorems.expectation_identity fact ~agent ~act;
    sufficiency = Theorems.sufficiency fact ~agent ~act ~p:threshold;
    necessity = Theorems.necessity_exists fact ~agent ~act ~p:threshold;
    lemma43 = Theorems.lemma43 fact ~agent ~act;
    kop = Theorems.kop fact ~agent ~act
  }

let pp_constraint_analysis fmt a =
  Format.fprintf fmt "@[<v>%a@ %a@ %a@ %a@ %a@ %a@]" Constr.pp_report a.report
    Theorems.pp_expectation a.expectation Theorems.pp_sufficiency a.sufficiency
    Theorems.pp_necessity a.necessity Theorems.pp_lemma43 a.lemma43 Theorems.pp_kop a.kop
