(** Resource budgets: fuel counters and a deadline, enforced at the
    engines' existing instrumentation sites.

    A budget bounds four kinds of fuel plus wall time:

    - {e points}: tree points visited by full sweeps
      ([Tree.iter_points] / [fold_points]) and run-slots touched by
      measure queries — the units the [pak_obs] counters
      [tree.points_visited] and [tree.measure_runs] measure;
    - {e nodes}: tree nodes constructed through [Tree.Builder] (the
      horizon compiler, [Tree_io] loading, generators);
    - {e limbs}: big-number limbs touched by [Bignat]
      multiplication/division — bounds rational-arithmetic blowups;
    - {e iters}: fixpoint iterations of the [C_G]/[CB_G^q] greatest
      fixpoints in [Semantics.eval];
    - {e deadline}: milliseconds of processor time from installation
      (measured with [Sys.time], the same monotone-within-process
      clock the trace sink uses).

    Budgets are process-global, mirroring the [pak_obs] design: when
    no budget is installed ({!active} false) every charge site reduces
    to one load-and-branch. Exhaustion raises
    [Error.Error] with kind {!Error.Budget_exceeded} — computations
    never hang and never overflow the stack; callers catch it with
    {!attempt} or {!with_budget}, or let it reach the CLI's top-level
    handler (exit code 4). *)

type limits = {
  max_points : int option;
  max_nodes : int option;
  max_limbs : int option;
  max_iters : int option;
  timeout_ms : int option;
}

val unlimited : limits

val limits :
  ?max_points:int ->
  ?max_nodes:int ->
  ?max_limbs:int ->
  ?max_iters:int ->
  ?timeout_ms:int ->
  unit ->
  limits

val is_unlimited : limits -> bool

(** {1 Scoped and global enforcement} *)

val with_budget : limits -> (unit -> 'a) -> ('a, Error.t) result
(** [with_budget l f] runs [f] with [l] installed (fuel counters
    zeroed, deadline started), restoring the previously-installed
    budget afterwards. Returns [Error e] iff the budget was exceeded;
    other exceptions propagate. *)

val install : limits -> unit
(** Install a process-global budget (the CLI's [--max-*] /
    [--timeout-ms] flags). Fuel counters restart from zero and the
    deadline clock starts now. *)

val clear : unit -> unit
(** Remove any installed budget; charges become no-ops again. *)

val attempt : (unit -> 'a) -> ('a, Error.t) result
(** [attempt f] runs [f] under the ambient budget, catching only
    budget exhaustion. The degradation entry point: try exact, fall
    back to estimation on [Error _]. *)

val exempt : (unit -> 'a) -> 'a
(** Run [f] with charging suspended (the ambient budget resumes
    afterwards, with fuel spent so far intact). Used by the
    degradation path so a bounded Monte-Carlo fallback cannot itself
    be killed by the already-exhausted budget. *)

(** {1 Charge points}

    All are no-ops (one load and branch) unless a budget is active. *)

val active : bool ref
(** Read-only fast-path switch, true while a budget is installed. *)

val charge_points : int -> unit
val charge_nodes : int -> unit
val charge_limbs : int -> unit

val charge_iters : int -> unit
(** Also forces a deadline check: fixpoint iterations are the
    coarsest-grained loop the budget must interrupt. *)

val check_deadline : unit -> unit
(** Explicit deadline check, for long loops with no natural fuel. *)

val spent : unit -> (string * int) list
(** Fuel spent under the current budget, by charge-point name
    ([points], [nodes], [limbs], [iters]) — for error messages and
    the bench harness. *)
