(** Resource budgets: fuel counters and a deadline, enforced at the
    engines' existing instrumentation sites — and shared across
    domains, so one budget bounds a whole parallel computation.

    A budget bounds four kinds of fuel plus wall time:

    - {e points}: tree points visited by full sweeps
      ([Tree.iter_points] / [fold_points]) and run-slots touched by
      measure queries — the units the [pak_obs] counters
      [tree.points_visited] and [tree.measure_runs] measure;
    - {e nodes}: tree nodes constructed through [Tree.Builder] (the
      horizon compiler, [Tree_io] loading, generators);
    - {e limbs}: big-number limbs touched by [Bignat]
      multiplication/division — bounds rational-arithmetic blowups;
    - {e iters}: fixpoint iterations of the [C_G]/[CB_G^q] greatest
      fixpoints in [Semantics.eval];
    - {e deadline}: milliseconds from installation. By default the
      clock is [Sys.time] (processor time, the only clock available to
      the zero-dependency guard layer) — note that processor time
      accumulates across running domains, so a 4-domain computation
      consumes a CPU deadline roughly 4× faster than wall time.
      Executables that link [Unix] can inject a wall clock with
      {!set_wall_clock}; deadlines created afterwards are then
      measured in wall time and [--timeout-ms] becomes jobs-invariant
      (the CLI and the bench do this at startup).

    {2 Scopes and domains}

    Fuel cells are atomics. Two scopes exist:

    - the {e process-global installed budget} ({!install}, the CLI's
      [--max-*] flags): every domain that holds no closer scope
      charges it, so a parallel sweep under [pak sweep --jobs N] spends
      one shared pool of fuel, not [N] private ones;
    - a {e domain-local scoped budget} pushed by {!with_budget},
      visible only to the pushing domain — plus any worker domain that
      re-installs it via {!snapshot}/{!under}, as the [pak_par] pool
      does around every task. Re-installed scopes share the original's
      atomic fuel cells, so scoped budgets bound parallel work too.

    When no budget is in scope ({!active} false) every charge site
    reduces to one load-and-branch. Exhaustion raises [Error.Error]
    with kind {!Error.Budget_exceeded} — computations never hang and
    never overflow the stack; callers catch it with {!attempt} or
    {!with_budget}, or let it reach the CLI's top-level handler (exit
    code 4). *)

type limits = {
  max_points : int option;
  max_nodes : int option;
  max_limbs : int option;
  max_iters : int option;
  timeout_ms : int option;
}

val unlimited : limits

val limits :
  ?max_points:int ->
  ?max_nodes:int ->
  ?max_limbs:int ->
  ?max_iters:int ->
  ?timeout_ms:int ->
  unit ->
  limits

val is_unlimited : limits -> bool

val set_wall_clock : (unit -> float) option -> unit
(** Install (or remove, with [None]) the clock used for deadlines
    created from now on: a function returning absolute seconds, e.g.
    [Unix.gettimeofday] injected by an executable that links [Unix].
    With a wall clock installed, [timeout_ms] measures wall time and is
    jobs-invariant; without one it measures processor time via
    [Sys.time]. The clock function is captured when a budget is
    created, so changing it never retimes a live deadline. *)

(** {1 Scoped and global enforcement} *)

val with_budget : limits -> (unit -> 'a) -> ('a, Error.t) result
(** [with_budget l f] runs [f] with [l] in scope for the calling
    domain (fuel counters zeroed, deadline started), restoring the
    previous scope afterwards. Returns [Error e] iff the budget was
    exceeded; other exceptions propagate. Scopes nest: the innermost
    one is charged. Worker domains spawned through the [pak_par] pool
    inherit the scope (see {!snapshot}); charges from every inheriting
    domain hit the same shared fuel. *)

val install : limits -> unit
(** Install the process-global budget (the CLI's [--max-*] /
    [--timeout-ms] flags). Fuel counters restart from zero and the
    deadline clock starts now. The global budget is charged by every
    domain not inside a {!with_budget} scope. *)

val clear : unit -> unit
(** Remove the installed global budget; charges outside scoped budgets
    become no-ops again. *)

val attempt : (unit -> 'a) -> ('a, Error.t) result
(** [attempt f] runs [f] under the ambient budget, catching only
    budget exhaustion. The degradation entry point: try exact, fall
    back to estimation on [Error _]. *)

val exempt : (unit -> 'a) -> 'a
(** Run [f] with charging suspended {e on the calling domain} (the
    ambient budget resumes afterwards, with fuel spent so far intact).
    Used by the degradation path so a bounded Monte-Carlo fallback
    cannot itself be killed by the already-exhausted budget. *)

(** {1 Cross-domain propagation}

    The bridge the [pak_par] pool uses to make worker domains charge
    the caller's budget. Library code rarely calls these directly. *)

type snapshot
(** The calling domain's current budget context: its scoped budget (if
    any) and exempt flag. A snapshot aliases the scope's fuel cells
    rather than copying them — re-installing it elsewhere shares the
    fuel. *)

val snapshot : unit -> snapshot
(** Capture the calling domain's ambient scope and exempt flag. *)

val under : snapshot -> (unit -> 'a) -> 'a
(** [under snap f] runs [f] with [snap]'s scope and exempt flag
    installed on the calling domain, restoring the domain's previous
    context afterwards (also on exceptions, which propagate). Charges
    made by [f] spend the snapshotted scope's shared fuel; budget
    exhaustion raises here exactly as it would have in the snapshotting
    domain. *)

(** {1 Charge points}

    All are no-ops (one load and branch) unless a budget is in scope. *)

val active : bool ref
(** Read-only fast-path switch: true while the global budget is
    installed or any domain holds a scoped budget. *)

val charge_points : int -> unit
val charge_nodes : int -> unit
val charge_limbs : int -> unit

val charge_iters : int -> unit
(** Also forces a deadline check: fixpoint iterations are the
    coarsest-grained loop the budget must interrupt. *)

val check_deadline : unit -> unit
(** Explicit deadline check, for long loops with no natural fuel. *)

val spent : unit -> (string * int) list
(** Fuel spent under the ambient budget (the calling domain's scope,
    else the global one), by charge-point name ([points], [nodes],
    [limbs], [iters]) — for error messages and the bench harness.
    Totals include charges made by every domain sharing the budget. *)
