type 'a t = Exact of 'a | Estimated of { value : 'a; samples : int }

let value = function Exact v -> v | Estimated { value; _ } -> value
let is_estimated = function Exact _ -> false | Estimated _ -> true
let samples = function Exact _ -> None | Estimated { samples; _ } -> Some samples

let map f = function
  | Exact v -> Exact (f v)
  | Estimated { value; samples } -> Estimated { value = f value; samples }

let pp pp_v fmt = function
  | Exact v -> pp_v fmt v
  | Estimated { value; samples } ->
    Format.fprintf fmt "%a (estimated from %d samples)" pp_v value samples
