type kind = Parse | Invalid_system | Budget_exceeded | Io

type t = { kind : kind; msg : string; context : string list }

let make kind msg = { kind; msg; context = [] }

let makef kind fmt = Format.kasprintf (fun msg -> make kind msg) fmt

let with_context layer e = { e with context = e.context @ [ layer ] }

let kind_name = function
  | Parse -> "parse"
  | Invalid_system -> "invalid-system"
  | Budget_exceeded -> "budget-exceeded"
  | Io -> "io"

let to_string e =
  let flat s = String.map (function '\n' | '\r' -> ' ' | c -> c) s in
  let base = kind_name e.kind ^ ": " ^ flat e.msg in
  match e.context with
  | [] -> base
  | trail -> base ^ " (via " ^ String.concat " < " trail ^ ")"

let pp fmt e = Format.pp_print_string fmt (to_string e)

exception Division_by_zero of string

exception Error of t

let of_exn = function
  | Error e -> Some e
  | Division_by_zero ctx -> Some (make Invalid_system ("division by zero: " ^ ctx))
  | Stdlib.Division_by_zero -> Some (make Invalid_system "division by zero")
  | Invalid_argument msg -> Some (make Invalid_system msg)
  | Failure msg -> Some (make Invalid_system msg)
  | Sys_error msg -> Some (make Io msg)
  | Stack_overflow -> Some (make Budget_exceeded "stack overflow (input nested too deeply)")
  | Out_of_memory -> Some (make Budget_exceeded "out of memory")
  | _ -> None

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Pak_guard.Error.Error(" ^ to_string e ^ ")")
    | Division_by_zero ctx -> Some ("Pak_guard.Error.Division_by_zero(" ^ ctx ^ ")")
    | _ -> None)
