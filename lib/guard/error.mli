(** The typed error boundary of pak.

    Every untrusted-input boundary ({!Pak_logic.Parser},
    {!Pak_pps.Tree_io}, the protocol compiler, CLI file loading) and
    every budget-enforced engine reports failure as a value of
    {!t}: a {e kind} for dispatch (exit codes, retry policy), a
    human-readable message, and a context trail recording the layers
    the error crossed. Boundaries expose [_result] variants returning
    [('a, Error.t) result]; the historical exceptions are kept as thin
    deprecated shims built on top of them. *)

type kind =
  | Parse  (** malformed textual input: formulas, pps documents *)
  | Invalid_system
      (** structurally well-formed input violating a semantic
          invariant: probabilities not summing to 1, agent indices out
          of range, improper actions, divisions by zero *)
  | Budget_exceeded
      (** a resource budget (points, nodes, limbs, fixpoint
          iterations, deadline) was exhausted — see {!Budget} *)
  | Io  (** the outside world: unreadable files, write failures *)

type t = {
  kind : kind;
  msg : string;  (** human-readable description of the failure *)
  context : string list;
      (** layers crossed, innermost first — e.g.
          [["Tree.Builder.add_child"; "Tree_io.of_string"]] *)
}

val make : kind -> string -> t

val makef : kind -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [makef kind fmt ...] builds the message with a format string. *)

val with_context : string -> t -> t
(** Push a layer name onto the context trail (innermost first). *)

val kind_name : kind -> string
(** ["parse"], ["invalid-system"], ["budget-exceeded"], ["io"]. *)

val to_string : t -> string
(** ["kind: msg (via inner < outer)"] — one line, no newlines. *)

val pp : Format.formatter -> t -> unit

exception Division_by_zero of string
(** The one division-by-zero error of the whole codebase. The payload
    names the operation and operand context
    (["Q.inv: inverse of zero"]). Replaces the historical mix of
    [Stdlib.Division_by_zero] and bare [Invalid_argument] across
    [Q]/[Bigint]/[Bignat] and the measure-conditioning paths. *)

exception Error of t
(** Carrier used by code that must signal a typed error across an
    exception boundary (e.g. budget enforcement deep inside a
    fixpoint). Prefer the [_result] interfaces where available. *)

val of_exn : exn -> t option
(** Classify the exceptions this library owns ({!Division_by_zero},
    {!Error}) plus the stdlib ones every boundary maps the same way
    ([Invalid_argument], [Failure], [Stdlib.Division_by_zero],
    [Sys_error], [Stack_overflow], [Out_of_memory]). [None] for
    anything unrecognized — callers decide whether to re-raise. *)
