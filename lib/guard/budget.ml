type limits = {
  max_points : int option;
  max_nodes : int option;
  max_limbs : int option;
  max_iters : int option;
  timeout_ms : int option;
}

let unlimited =
  { max_points = None; max_nodes = None; max_limbs = None; max_iters = None; timeout_ms = None }

let limits ?max_points ?max_nodes ?max_limbs ?max_iters ?timeout_ms () =
  { max_points; max_nodes; max_limbs; max_iters; timeout_ms }

let is_unlimited l = l = unlimited

(* Fuel lives in atomics so every domain of a parallel computation can
   charge the same budget: a sweep across N domains is bounded by ONE
   shared pool of fuel, not N private ones. Two scopes exist:

   - the process-global installed budget (the CLI's --max-* flags),
     charged by every domain that has no closer scope;
   - a domain-local scoped budget pushed by [with_budget], visible only
     to the pushing domain — and to worker domains that re-install it
     via [snapshot]/[under] (the pak_par pool does this), which again
     share the same atomic fuel cells.

   [active] stays the single load-and-branch on the uncharged fast
   path; it is true while the global budget is installed or any domain
   holds a local scope. *)
(* The zero-dependency guard layer has no wall clock of its own:
   [Sys.time] is processor time, which accumulates across running
   domains, so a CPU deadline burns roughly [jobs]x faster than wall
   time under the pool. Executables that may link [Unix] (the CLI, the
   bench) inject [Unix.gettimeofday] here once at startup; deadlines
   created while a wall clock is installed are then measured in wall
   time, making [--timeout-ms] jobs-invariant. Without injection the
   documented CPU-time behavior is unchanged. *)
let wall_clock : (unit -> float) option ref = ref None

let set_wall_clock c = wall_clock := c

(* The clock function is captured at budget creation, so un-installing
   the wall clock later cannot change the meaning of a live deadline. *)
type deadline =
  | No_deadline
  | Cpu_deadline of float (* Sys.time seconds, absolute *)
  | Wall_deadline of (unit -> float) * float (* clock, absolute *)

type state = {
  lim : limits;
  points : int Atomic.t;
  nodes : int Atomic.t;
  limbs : int Atomic.t;
  iters : int Atomic.t;
  deadline : deadline;
  countdown : int Atomic.t; (* charges until the next deadline check *)
}

let active = ref false

let fresh lim =
  let deadline =
    match lim.timeout_ms with
    | None -> No_deadline
    | Some ms ->
      let s = float_of_int ms /. 1000. in
      (match !wall_clock with
       | Some clk -> Wall_deadline (clk, clk () +. s)
       | None -> Cpu_deadline (Sys.time () +. s))
  in
  { lim;
    points = Atomic.make 0;
    nodes = Atomic.make 0;
    limbs = Atomic.make 0;
    iters = Atomic.make 0;
    deadline;
    countdown = Atomic.make 0
  }

let global : state option ref = ref None
let local_key : state option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let exempt_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Number of domains currently holding a local scope; [active] is
   derived from it plus the global installation. A racing update may
   leave [active] conservatively stale for the duration of a concurrent
   scope push/pop on another domain; charge sites re-check the actual
   scopes behind the flag, so staleness never misdirects a charge. *)
let local_scopes = Atomic.make 0

let refresh_active () = active := Option.is_some !global || Atomic.get local_scopes > 0

let current () =
  match Domain.DLS.get local_key with Some _ as s -> s | None -> !global

let set_local scope =
  let prev = Domain.DLS.get local_key in
  Domain.DLS.set local_key scope;
  (match (prev, scope) with
   | None, Some _ -> Atomic.incr local_scopes
   | Some _, None -> Atomic.decr local_scopes
   | _ -> ());
  refresh_active ();
  prev

(* How many charges may pass between two reads of the clock. Small
   enough that a runaway loop overshoots its deadline by microseconds,
   large enough that Bignat-level charging does not pay a clock read
   per multiplication. *)
let deadline_stride = 64

let exceeded what limit used =
  raise
    (Error.Error
       (Error.makef Error.Budget_exceeded "%s budget exceeded (limit %d, needed %d)" what
          limit used))

let deadline_expired = function
  | No_deadline -> false
  | Cpu_deadline d -> Sys.time () > d
  | Wall_deadline (clk, d) -> clk () > d

let check_deadline_now s =
  if deadline_expired s.deadline then
    raise
      (Error.Error
         (Error.makef Error.Budget_exceeded "deadline of %d ms exceeded"
            (match s.lim.timeout_ms with Some ms -> ms | None -> 0)))

let tick s =
  if Atomic.fetch_and_add s.countdown (-1) <= 0 then begin
    Atomic.set s.countdown deadline_stride;
    check_deadline_now s
  end

(* Fuel is spent before the limit check (fetch-and-add), so concurrent
   charges from several domains cannot jointly sneak past the limit:
   whichever charge crosses it observes the full shared total and
   raises. *)
let charge what limit cell n =
  let used = Atomic.fetch_and_add cell n + n in
  match limit with Some l when used > l -> exceeded what l used | _ -> ()

let charging () =
  if not !active then None
  else if Domain.DLS.get exempt_key then None
  else current ()

let charge_points n =
  match charging () with
  | None -> ()
  | Some s ->
    tick s;
    charge "points" s.lim.max_points s.points n

let charge_nodes n =
  match charging () with
  | None -> ()
  | Some s ->
    tick s;
    charge "nodes" s.lim.max_nodes s.nodes n

let charge_limbs n =
  match charging () with
  | None -> ()
  | Some s ->
    tick s;
    charge "limbs" s.lim.max_limbs s.limbs n

let charge_iters n =
  match charging () with
  | None -> ()
  | Some s ->
    check_deadline_now s;
    charge "fixpoint-iteration" s.lim.max_iters s.iters n

let check_deadline () =
  match charging () with None -> () | Some s -> check_deadline_now s

let install lim =
  global := (if is_unlimited lim then None else Some (fresh lim));
  refresh_active ()

let clear () =
  global := None;
  refresh_active ()

let with_budget lim f =
  let prev = set_local (Some (fresh lim)) in
  let restore () = ignore (set_local prev) in
  match f () with
  | v ->
    restore ();
    Ok v
  | exception Error.Error ({ kind = Error.Budget_exceeded; _ } as e) ->
    restore ();
    Result.Error e
  | exception e ->
    restore ();
    raise e

let attempt f =
  match f () with
  | v -> Ok v
  | exception Error.Error ({ kind = Error.Budget_exceeded; _ } as e) -> Result.Error e

let exempt f =
  let saved = Domain.DLS.get exempt_key in
  Domain.DLS.set exempt_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set exempt_key saved) f

type snapshot = { snap_scope : state option; snap_exempt : bool }

let snapshot () =
  { snap_scope = Domain.DLS.get local_key; snap_exempt = Domain.DLS.get exempt_key }

let under snap f =
  let prev_scope = set_local snap.snap_scope in
  let prev_exempt = Domain.DLS.get exempt_key in
  Domain.DLS.set exempt_key snap.snap_exempt;
  Fun.protect
    ~finally:(fun () ->
      Domain.DLS.set exempt_key prev_exempt;
      ignore (set_local prev_scope))
    f

let spent () =
  match current () with
  | None -> [ ("points", 0); ("nodes", 0); ("limbs", 0); ("iters", 0) ]
  | Some s ->
    [ ("points", Atomic.get s.points);
      ("nodes", Atomic.get s.nodes);
      ("limbs", Atomic.get s.limbs);
      ("iters", Atomic.get s.iters)
    ]

(* Fuel and deadline slack as Obs gauges: sampled whenever a metrics
   summary or snapshot is taken. Only limited fuel kinds report (an
   unlimited kind has no "remaining" to speak of, and its spent total
   is already a counter-like quantity visible via [spent]); with no
   budget in scope the provider reports nothing, keeping snapshots of
   unbudgeted runs free of noise. *)
let () =
  Pak_obs.Obs.register_gauges (fun () ->
      match current () with
      | None -> []
      | Some s ->
        let fuel name limit cell acc =
          match limit with
          | None -> acc
          | Some l ->
            let used = Atomic.get cell in
            ("budget." ^ name ^ "_spent", float_of_int used)
            :: ("budget." ^ name ^ "_remaining", float_of_int (Stdlib.max 0 (l - used)))
            :: acc
        in
        let slack =
          match s.deadline with
          | No_deadline -> []
          | Cpu_deadline d -> [ ("budget.deadline_slack_ms", (d -. Sys.time ()) *. 1e3) ]
          | Wall_deadline (clk, d) -> [ ("budget.deadline_slack_ms", (d -. clk ()) *. 1e3) ]
        in
        fuel "points" s.lim.max_points s.points
          (fuel "nodes" s.lim.max_nodes s.nodes
             (fuel "limbs" s.lim.max_limbs s.limbs
                (fuel "iters" s.lim.max_iters s.iters slack))))
