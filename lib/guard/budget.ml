type limits = {
  max_points : int option;
  max_nodes : int option;
  max_limbs : int option;
  max_iters : int option;
  timeout_ms : int option;
}

let unlimited =
  { max_points = None; max_nodes = None; max_limbs = None; max_iters = None; timeout_ms = None }

let limits ?max_points ?max_nodes ?max_limbs ?max_iters ?timeout_ms () =
  { max_points; max_nodes; max_limbs; max_iters; timeout_ms }

let is_unlimited l = l = unlimited

(* One process-global mutable budget, mirroring the pak_obs sink
   design: [active] is the single load-and-branch on the fast path. *)
type state = {
  lim : limits;
  mutable points : int;
  mutable nodes : int;
  mutable limbs : int;
  mutable iters : int;
  deadline : float option; (* Sys.time seconds, absolute *)
  mutable countdown : int; (* charges until the next deadline check *)
}

let active = ref false

let fresh lim =
  let deadline =
    match lim.timeout_ms with
    | None -> None
    | Some ms -> Some (Sys.time () +. (float_of_int ms /. 1000.))
  in
  { lim; points = 0; nodes = 0; limbs = 0; iters = 0; deadline; countdown = 0 }

let st = ref (fresh unlimited)

(* How many charges may pass between two reads of the clock. Small
   enough that a runaway loop overshoots its deadline by microseconds,
   large enough that Bignat-level charging does not pay a clock read
   per multiplication. *)
let deadline_stride = 64

let exceeded what limit used =
  raise
    (Error.Error
       (Error.makef Error.Budget_exceeded "%s budget exceeded (limit %d, needed %d)" what
          limit used))

let check_deadline_now s =
  match s.deadline with
  | None -> ()
  | Some d ->
    if Sys.time () > d then
      raise
        (Error.Error
           (Error.makef Error.Budget_exceeded "deadline of %d ms exceeded"
              (match s.lim.timeout_ms with Some ms -> ms | None -> 0)))

let tick s =
  if s.countdown <= 0 then begin
    s.countdown <- deadline_stride;
    check_deadline_now s
  end
  else s.countdown <- s.countdown - 1

let charge what limit used n =
  (match limit with Some l when used + n > l -> exceeded what l (used + n) | _ -> ());
  used + n

let charge_points n =
  if !active then begin
    let s = !st in
    tick s;
    s.points <- charge "points" s.lim.max_points s.points n
  end

let charge_nodes n =
  if !active then begin
    let s = !st in
    tick s;
    s.nodes <- charge "nodes" s.lim.max_nodes s.nodes n
  end

let charge_limbs n =
  if !active then begin
    let s = !st in
    tick s;
    s.limbs <- charge "limbs" s.lim.max_limbs s.limbs n
  end

let charge_iters n =
  if !active then begin
    let s = !st in
    check_deadline_now s;
    s.iters <- charge "fixpoint-iteration" s.lim.max_iters s.iters n
  end

let check_deadline () = if !active then check_deadline_now !st

let install lim =
  st := fresh lim;
  active := not (is_unlimited lim)

let clear () =
  active := false;
  st := fresh unlimited

let with_budget lim f =
  let saved_st = !st and saved_active = !active in
  install lim;
  let restore () =
    st := saved_st;
    active := saved_active
  in
  match f () with
  | v ->
    restore ();
    Ok v
  | exception Error.Error ({ kind = Error.Budget_exceeded; _ } as e) ->
    restore ();
    Result.Error e
  | exception e ->
    restore ();
    raise e

let attempt f =
  match f () with
  | v -> Ok v
  | exception Error.Error ({ kind = Error.Budget_exceeded; _ } as e) -> Result.Error e

let exempt f =
  let saved = !active in
  active := false;
  Fun.protect ~finally:(fun () -> active := saved) f

let spent () =
  let s = !st in
  [ ("points", s.points); ("nodes", s.nodes); ("limbs", s.limbs); ("iters", s.iters) ]
