(** Exact-or-estimated results — the degradation contract.

    The paper's Section 7 theme, turned into an API: when an exact
    computation exceeds its resource budget, engines may retry with a
    bounded Monte-Carlo estimate and return it {e clearly marked} as
    such, carrying the sample count, instead of failing. Callers can
    always distinguish the two; nothing silently downgrades. *)

type 'a t =
  | Exact of 'a
  | Estimated of { value : 'a; samples : int }
      (** [value] was computed from [samples] Monte-Carlo samples
          after the exact computation exhausted its budget. *)

val value : 'a t -> 'a
val is_estimated : 'a t -> bool
val samples : 'a t -> int option

val map : ('a -> 'b) -> 'a t -> 'b t

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
(** Prints the payload, suffixed with [" (estimated from N samples)"]
    when estimated. *)
