(** Exact rational numbers.

    Every probability and degree of belief in the library is a value of
    this type, so theorem checks such as the expectation identity of
    Theorem 6.2 ([µ(ϕ@α|α) = E(β_i(ϕ)@α|α)]) are decided as exact
    equalities rather than floating-point approximations.

    Values are kept in lowest terms with a strictly positive denominator;
    zero is canonically [0/1]. Equality is therefore structural. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val half : t
val minus_one : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized rational [num/den].
    @raise Pak_guard.Error.Division_by_zero if [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints n d] is [n/d].
    @raise Pak_guard.Error.Division_by_zero if [d = 0]. *)

val of_string : string -> t
(** Accepts ["n"], ["n/d"], and decimal notation ["0.95"], ["-1.25"],
    each part optionally signed. Underscores are ignored inside numerals.
    @raise Invalid_argument on malformed input.
    @raise Pak_guard.Error.Division_by_zero on a zero denominator. *)

(** {1 Accessors and conversions} *)

val num : t -> Bigint.t
val den : t -> Bignat.t
val to_string : t -> string
(** Lowest-terms rendering: ["3/4"], ["-1/2"], or just ["5"] when the
    denominator is one. *)

val to_decimal_string : ?digits:int -> t -> string
(** Decimal rendering truncated to [digits] (default 6) fractional digits,
    for human-facing reports. Exact when the expansion terminates within
    [digits]; otherwise suffixed with ["…"]. *)

val to_float : t -> float
(** Nearest float, for display and plotting only — never used in proofs. *)

(** {1 Predicates and comparison} *)

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val lt : t -> t -> bool
val leq : t -> t -> bool
val gt : t -> t -> bool
val geq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val is_probability : t -> bool
(** [0 <= q <= 1]. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val inv : t -> t
(** @raise Pak_guard.Error.Division_by_zero on zero. *)

val div : t -> t -> t
(** @raise Pak_guard.Error.Division_by_zero if the divisor is zero. *)

val pow : t -> int -> t
(** Integer exponent of either sign.
    @raise Pak_guard.Error.Division_by_zero when raising zero to a negative power. *)

val sum : t list -> t
val one_minus : t -> t
(** [one_minus q] is [1 - q], the complement of a probability. *)

(** {1 Infix operators}

    [open Q.Infix] (or a local [let open]) for formula-dense code. *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

val pp : Format.formatter -> t -> unit
