(** Arbitrary-precision natural numbers (non-negative integers).

    This is the lowest layer of the exact-arithmetic substrate used
    throughout the library. Probabilities of runs in a purely probabilistic
    system are products of many rational transition probabilities, whose
    denominators quickly exceed 63-bit integers; all higher layers
    ({!Bigint}, {!Q}) are built on this module.

    Representation: little-endian array of 15-bit limbs with no trailing
    zero limbs. The interface is purely functional: all operations return
    fresh values and never mutate their arguments. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] is the natural number [n].
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)

val of_string : string -> t
(** Parse a decimal numeral (digits only, ignoring [_] separators).
    @raise Invalid_argument on the empty string or non-digit characters. *)

val to_string : t -> string
(** Decimal rendering with no leading zeros (["0"] for zero). *)

(** {1 Predicates and comparison} *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Arithmetic} *)

val add : t -> t -> t
val succ : t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].
    @raise Invalid_argument if [b > a] (naturals are not closed under
    subtraction). *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b].
    @raise Pak_guard.Error.Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; [gcd zero n = n]. *)

val pow : t -> int -> t
(** [pow b e] is [b] raised to the non-negative exponent [e].
    @raise Invalid_argument if [e < 0]. *)

val shift_left : t -> int -> t
(** [shift_left n k] is [n * 2^k]. *)

(** {1 Inspection} *)

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val pp : Format.formatter -> t -> unit
