(** Arbitrary-precision signed integers, built on {!Bignat}.

    Values are a sign ([-1], [0] or [+1]) paired with a magnitude; zero
    is canonical (sign [0], magnitude {!Bignat.zero}). *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int_opt : t -> int option

val of_bignat : Bignat.t -> t
val to_bignat : t -> Bignat.t
(** Magnitude of the argument (absolute value as a natural). *)

val of_string : string -> t
(** Parse an optionally signed decimal numeral ([-42], [+7], [13]).
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

(** {1 Predicates and comparison} *)

val sign : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Euclidean division: [divmod a b = (q, r)] with [a = q*b + r] and
    [0 <= r < |b|].
    @raise Pak_guard.Error.Division_by_zero if [b] is zero. *)

val gcd : t -> t -> Bignat.t
(** Non-negative gcd of the magnitudes. *)

val pow : t -> int -> t
(** @raise Invalid_argument if the exponent is negative. *)

val pp : Format.formatter -> t -> unit
