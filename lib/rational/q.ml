(* Invariant: den > 0, gcd(|num|, den) = 1, and zero is 0/1. Structural
   equality of the record coincides with numeric equality. *)
module Error = Pak_guard.Error

type t = { num : Bigint.t; den : Bignat.t }

let mk_normalized num den_nat =
  if Bignat.is_zero den_nat then
    raise (Error.Division_by_zero "Q: zero denominator");
  if Bigint.is_zero num then { num = Bigint.zero; den = Bignat.one }
  else begin
    let g = Bignat.gcd (Bigint.to_bignat num) den_nat in
    if Bignat.is_one g then { num; den = den_nat }
    else
      let num_mag = Bignat.div (Bigint.to_bignat num) g in
      let den = Bignat.div den_nat g in
      let num = if Bigint.sign num < 0 then Bigint.neg (Bigint.of_bignat num_mag) else Bigint.of_bignat num_mag in
      { num; den }
  end

let make num den =
  match Bigint.sign den with
  | 0 -> raise (Error.Division_by_zero "Q.make: zero denominator")
  | s ->
    let num = if s < 0 then Bigint.neg num else num in
    mk_normalized num (Bigint.to_bignat den)

let zero = { num = Bigint.zero; den = Bignat.one }
let one = { num = Bigint.one; den = Bignat.one }
let minus_one = { num = Bigint.minus_one; den = Bignat.one }
let half = { num = Bigint.one; den = Bignat.two }

let of_int n = { num = Bigint.of_int n; den = Bignat.one }
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let num t = t.num
let den t = t.den
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num

let equal a b = Bigint.equal a.num b.num && Bignat.equal a.den b.den
let hash t = Bigint.hash t.num + (7 * Bignat.hash t.den)

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den *)
  match (Bigint.to_int_opt a.num, Bignat.to_int_opt a.den,
         Bigint.to_int_opt b.num, Bignat.to_int_opt b.den) with
  | Some an, Some ad, Some bn, Some bd
    when an > -(1 lsl 30) && an < 1 lsl 30 && ad < 1 lsl 30
         && bn > -(1 lsl 30) && bn < 1 lsl 30 && bd < 1 lsl 30 ->
    Stdlib.compare (an * bd) (bn * ad)
  | _ ->
    Bigint.compare
      (Bigint.mul a.num (Bigint.of_bignat b.den))
      (Bigint.mul b.num (Bigint.of_bignat a.den))

let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let gt a b = compare a b > 0
let geq a b = compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let neg t = { num = Bigint.neg t.num; den = t.den }
let abs t = { num = Bigint.abs t.num; den = t.den }

(* Fast path: when numerators and denominators fit well below the
   native word size, do the arithmetic and the gcd on ints. The
   probabilities arising from protocol trees are overwhelmingly small
   fractions, so this path dominates in practice; the bignum path is
   the fallback that keeps all results exact. *)
let small_bound = 1 lsl 30

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let of_ints_normalized n d =
  (* d > 0; gcd on ints, then build the canonical record. *)
  if n = 0 then zero
  else begin
    let g = gcd_int (Stdlib.abs n) d in
    { num = Bigint.of_int (n / g); den = Bignat.of_int (d / g) }
  end

let as_small t =
  match (Bigint.to_int_opt t.num, Bignat.to_int_opt t.den) with
  | Some n, Some d when n > -small_bound && n < small_bound && d < small_bound ->
    Some (n, d)
  | _ -> None

let add a b =
  match (as_small a, as_small b) with
  | Some (an, ad), Some (bn, bd) ->
    of_ints_normalized ((an * bd) + (bn * ad)) (ad * bd)
  | _ ->
    mk_normalized
      (Bigint.add
         (Bigint.mul a.num (Bigint.of_bignat b.den))
         (Bigint.mul b.num (Bigint.of_bignat a.den)))
      (Bignat.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  match (as_small a, as_small b) with
  | Some (an, ad), Some (bn, bd) -> of_ints_normalized (an * bn) (ad * bd)
  | _ -> mk_normalized (Bigint.mul a.num b.num) (Bignat.mul a.den b.den)

let inv t =
  match Bigint.sign t.num with
  | 0 -> raise (Error.Division_by_zero "Q.inv: inverse of zero")
  | s ->
    let num = Bigint.of_bignat t.den in
    { num = (if s < 0 then Bigint.neg num else num); den = Bigint.to_bignat t.num }

let div a b = mul a (inv b)

let pow t e =
  if e >= 0 then { num = Bigint.pow t.num e; den = Bignat.pow t.den e }
  else inv { num = Bigint.pow t.num (-e); den = Bignat.pow t.den (-e) }

let sum qs = List.fold_left add zero qs
let one_minus q = sub one q
let is_probability q = leq zero q && leq q one

let to_string t =
  if Bignat.is_one t.den then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bignat.to_string t.den

let to_float t =
  (* Scale so the integer parts fit a float mantissa well enough for
     display; exactness is never required of this function. *)
  let n = Bigint.to_bignat t.num in
  let rec shrink n d =
    match (Bignat.to_int_opt n, Bignat.to_int_opt d) with
    | Some ni, Some di -> float_of_int ni /. float_of_int di
    | _ ->
      shrink (Bignat.div n Bignat.two) (Bignat.div d Bignat.two)
  in
  let v = shrink n t.den in
  if Bigint.sign t.num < 0 then -.v else v

let to_decimal_string ?(digits = 6) t =
  let neg_prefix = if sign t < 0 then "-" else "" in
  let mag_num = Bigint.to_bignat t.num in
  let int_part, r = Bignat.divmod mag_num t.den in
  let buf = Buffer.create 24 in
  Buffer.add_string buf neg_prefix;
  Buffer.add_string buf (Bignat.to_string int_part);
  if not (Bignat.is_zero r) then begin
    Buffer.add_char buf '.';
    let ten = Bignat.of_int 10 in
    let r = ref r in
    let k = ref 0 in
    while (not (Bignat.is_zero !r)) && !k < digits do
      let q, r' = Bignat.divmod (Bignat.mul !r ten) t.den in
      Buffer.add_string buf (Bignat.to_string q);
      r := r';
      incr k
    done;
    if not (Bignat.is_zero !r) then Buffer.add_string buf "\xe2\x80\xa6"
  end;
  Buffer.contents buf

let of_string s =
  let s = String.trim s in
  if String.length s = 0 then invalid_arg "Q.of_string: empty";
  match String.index_opt s '/' with
  | Some i ->
    let n = Bigint.of_string (String.sub s 0 i) in
    let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make n d
  | None ->
    (match String.index_opt s '.' with
     | None -> { num = Bigint.of_string s; den = Bignat.one }
     | Some i ->
       let int_str = String.sub s 0 i in
       let frac_str = String.sub s (i + 1) (String.length s - i - 1) in
       let frac_digits =
         String.to_seq frac_str |> Seq.filter (fun c -> c <> '_') |> String.of_seq
       in
       if String.length frac_digits = 0 then invalid_arg "Q.of_string: trailing dot";
       let negative = String.length int_str > 0 && int_str.[0] = '-' in
       let int_part =
         if int_str = "" || int_str = "-" || int_str = "+" then Bigint.zero
         else Bigint.of_string int_str
       in
       let scale = Bignat.pow (Bignat.of_int 10) (String.length frac_digits) in
       let frac = Bigint.of_bignat (Bignat.of_string frac_digits) in
       let frac = if negative then Bigint.neg frac else frac in
       let num = Bigint.add (Bigint.mul int_part (Bigint.of_bignat scale)) frac in
       mk_normalized num scale)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) = lt
  let ( <= ) = leq
  let ( > ) = gt
  let ( >= ) = geq
end

let pp fmt t = Format.pp_print_string fmt (to_string t)
