module Error = Pak_guard.Error

type t = { sign : int; mag : Bignat.t }

let mk sign mag = if Bignat.is_zero mag then { sign = 0; mag = Bignat.zero } else { sign; mag }

let zero = { sign = 0; mag = Bignat.zero }
let one = { sign = 1; mag = Bignat.one }
let minus_one = { sign = -1; mag = Bignat.one }

let of_bignat m = mk 1 m
let to_bignat t = t.mag

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = Bignat.of_int n }
  else if n = min_int then
    (* -min_int overflows; go through the magnitude as a string. *)
    { sign = -1; mag = Bignat.of_string (String.sub (string_of_int n) 1 (String.length (string_of_int n) - 1)) }
  else { sign = -1; mag = Bignat.of_int (-n) }

let to_int_opt t =
  match Bignat.to_int_opt t.mag with
  | None -> None
  | Some m -> Some (t.sign * m)

let sign t = t.sign
let is_zero t = t.sign = 0
let neg t = mk (-t.sign) t.mag
let abs t = mk (if t.sign = 0 then 0 else 1) t.mag

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else
    match a.sign with
    | 0 -> 0
    | s -> s * Bignat.compare a.mag b.mag

let equal a b = compare a b = 0
let hash t = (t.sign + 1) + (3 * Bignat.hash t.mag)

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { sign = a.sign; mag = Bignat.add a.mag b.mag }
  else begin
    let c = Bignat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then { sign = a.sign; mag = Bignat.sub a.mag b.mag }
    else { sign = b.sign; mag = Bignat.sub b.mag a.mag }
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = Bignat.mul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise (Error.Division_by_zero "Bigint.divmod: divisor is zero");
  let q, r = Bignat.divmod a.mag b.mag in
  if a.sign >= 0 then (mk b.sign q, mk 1 r)
  else if Bignat.is_zero r then (mk (-b.sign) q, zero)
  else
    (* Euclidean convention: remainder stays non-negative. *)
    (mk (-b.sign) (Bignat.succ q), mk 1 (Bignat.sub b.mag r))

let gcd a b = Bignat.gcd a.mag b.mag

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let sign = if b.sign < 0 && e land 1 = 1 then -1 else if b.sign = 0 && e > 0 then 0 else 1 in
  if b.sign = 0 && e > 0 then zero
  else if e = 0 then one
  else mk sign (Bignat.pow b.mag e)

let to_string t =
  match t.sign with
  | 0 -> "0"
  | s -> (if s < 0 then "-" else "") ^ Bignat.to_string t.mag

let of_string s =
  if String.length s = 0 then invalid_arg "Bigint.of_string: empty";
  match s.[0] with
  | '-' -> mk (-1) (Bignat.of_string (String.sub s 1 (String.length s - 1)))
  | '+' -> mk 1 (Bignat.of_string (String.sub s 1 (String.length s - 1)))
  | _ -> mk 1 (Bignat.of_string s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
