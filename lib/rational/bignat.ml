(* Little-endian limbs in base 2^15. The 15-bit base keeps every
   intermediate of schoolbook multiplication (limb product + carry,
   bounded by 2^30 + 2^15) comfortably inside a 63-bit native int, and
   makes bit-level access for long division cheap. *)

module Error = Pak_guard.Error
module Budget = Pak_guard.Budget

let base_bits = 15
let base = 1 lsl base_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let is_zero a = Array.length a = 0

(* Trim trailing (most-significant) zero limbs so that representations
   are canonical and [compare] can test lengths first. *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count k acc = if k = 0 then acc else count (k lsr base_bits) (acc + 1) in
    let len = count n 0 in
    let a = Array.make len 0 in
    let rec fill i k =
      if k <> 0 then begin
        a.(i) <- k land limb_mask;
        fill (i + 1) (k lsr base_bits)
      end
    in
    fill 0 n;
    a
  end

let one = of_int 1
let two = of_int 2
let is_one a = Array.length a = 1 && a.(0) = 1

let to_int_opt a =
  let len = Array.length a in
  (* 4 limbs = 60 bits always fits; 5 limbs may overflow. *)
  if len > 5 then None
  else begin
    let rec go i acc =
      if i < 0 then Some acc
      else
        let limb = a.(i) in
        if acc > (max_int - limb) lsr base_bits then None
        else go (i - 1) ((acc lsl base_bits) lor limb)
    in
    go (len - 1) 0
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let hash a = Array.fold_left (fun h limb -> (h * 31 + limb) land max_int) 17 a

let add a b =
  let la = Array.length a and lb = Array.length b in
  let len = 1 + max la lb in
  let out = Array.make len 0 in
  let carry = ref 0 in
  for i = 0 to len - 1 do
    let x = if i < la then a.(i) else 0 in
    let y = if i < lb then b.(i) else 0 in
    let s = x + y + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  normalize out

let succ a = add a one

let sub a b =
  if compare a b < 0 then invalid_arg "Bignat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let y = if i < lb then b.(i) else 0 in
    let d = a.(i) - y - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    (* Fuel: schoolbook multiplication touches la*lb limb products. *)
    Budget.charge_limbs (la * lb);
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- cur land limb_mask;
        carry := cur lsr base_bits
      done;
      (* Propagate the final carry; it fits in one limb because
         ai*b.(j) < 2^30 and accumulated carries stay below base. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = out.(!k) + !carry in
        out.(!k) <- cur land limb_mask;
        carry := cur lsr base_bits;
        incr k
      done
    done;
    normalize out
  end

let num_bits a =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width k acc = if k = 0 then acc else width (k lsr 1) (acc + 1) in
    ((la - 1) * base_bits) + width top 0
  end

let get_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

let shift_left a k =
  if is_zero a || k = 0 then a
  else begin
    let bits = num_bits a + k in
    let len = (bits + base_bits - 1) / base_bits in
    let out = Array.make len 0 in
    let limb_shift = k / base_bits and bit_shift = k mod base_bits in
    let la = Array.length a in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      out.(i + limb_shift) <- out.(i + limb_shift) lor (v land limb_mask);
      let hi = v lsr base_bits in
      if hi <> 0 then out.(i + limb_shift + 1) <- out.(i + limb_shift + 1) lor hi
    done;
    normalize out
  end

(* Long division, one bit of the dividend at a time. The operands in
   this library are run-measure denominators (a few hundred bits at
   most), for which this simple algorithm is more than fast enough and
   easy to trust. The remainder is kept in a mutable scratch buffer to
   avoid reallocating per bit. *)
let divmod a b =
  if is_zero b then raise (Error.Division_by_zero "Bignat.divmod: divisor is zero");
  if compare a b < 0 then (zero, a)
  else begin
    let nbits = num_bits a in
    (* Fuel: bitwise long division walks nbits bits against lb limbs. *)
    Budget.charge_limbs ((nbits / base_bits + 1) * Array.length b);
    let scratch_len = Array.length a + 1 in
    let rem = Array.make scratch_len 0 in
    let rem_limbs = ref 0 in
    let qbits = Array.make nbits false in
    let lb = Array.length b in
    (* rem := rem*2 + bit, in place *)
    let push_bit bit =
      let carry = ref bit in
      for i = 0 to !rem_limbs - 1 do
        let v = (rem.(i) lsl 1) lor !carry in
        rem.(i) <- v land limb_mask;
        carry := v lsr base_bits
      done;
      if !carry <> 0 then begin
        rem.(!rem_limbs) <- !carry;
        incr rem_limbs
      end
    in
    let rem_ge_b () =
      if !rem_limbs <> lb then !rem_limbs > lb
      else begin
        let rec go i =
          if i < 0 then true
          else if rem.(i) <> b.(i) then rem.(i) > b.(i)
          else go (i - 1)
        in
        go (lb - 1)
      end
    in
    let rem_sub_b () =
      let borrow = ref 0 in
      for i = 0 to !rem_limbs - 1 do
        let y = if i < lb then b.(i) else 0 in
        let d = rem.(i) - y - !borrow in
        if d < 0 then begin
          rem.(i) <- d + base;
          borrow := 1
        end else begin
          rem.(i) <- d;
          borrow := 0
        end
      done;
      while !rem_limbs > 0 && rem.(!rem_limbs - 1) = 0 do
        decr rem_limbs
      done
    in
    for i = nbits - 1 downto 0 do
      push_bit (get_bit a i);
      if rem_ge_b () then begin
        rem_sub_b ();
        qbits.(i) <- true
      end
    done;
    let qlen = (nbits + base_bits - 1) / base_bits in
    let q = Array.make qlen 0 in
    for i = 0 to nbits - 1 do
      if qbits.(i) then begin
        let limb = i / base_bits and off = i mod base_bits in
        q.(limb) <- q.(limb) lor (1 lsl off)
      end
    done;
    (normalize q, normalize (Array.sub rem 0 !rem_limbs))
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let pow b e =
  if e < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

(* Decimal i/o uses short division/multiplication by 10^4, which fits a
   limb and avoids the general long-division path. *)
let decimal_chunk = 10_000
let decimal_chunk_digits = 4

let divmod_small a m =
  (* m must satisfy m*base <= max_int, true for m = 10^4. *)
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / m;
    r := cur mod m
  done;
  (normalize q, !r)

let mul_small_add a m c =
  (* a*m + c for small m, c (each < 2^15 or so) *)
  let la = Array.length a in
  let out = Array.make (la + 2) 0 in
  let carry = ref c in
  for i = 0 to la - 1 do
    let cur = (a.(i) * m) + !carry in
    out.(i) <- cur land limb_mask;
    carry := cur lsr base_bits
  done;
  let k = ref la in
  while !carry <> 0 do
    out.(!k) <- !carry land limb_mask;
    carry := !carry lsr base_bits;
    incr k
  done;
  normalize out

let to_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a chunks =
      if is_zero a then chunks
      else begin
        let q, r = divmod_small a decimal_chunk in
        go q (r :: chunks)
      end
    in
    (match go a [] with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter
         (fun chunk -> Buffer.add_string buf (Printf.sprintf "%0*d" decimal_chunk_digits chunk))
         rest);
    Buffer.contents buf
  end

let of_string s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> String.of_seq
  in
  if String.length digits = 0 then invalid_arg "Bignat.of_string: empty";
  String.iter
    (fun c -> if c < '0' || c > '9' then invalid_arg "Bignat.of_string: non-digit")
    digits;
  let acc = ref zero in
  let n = String.length digits in
  let i = ref 0 in
  while !i < n do
    let take = min decimal_chunk_digits (n - !i) in
    let chunk = int_of_string (String.sub digits !i take) in
    let m = match take with 1 -> 10 | 2 -> 100 | 3 -> 1_000 | _ -> 10_000 in
    acc := mul_small_add !acc m chunk;
    i := !i + take
  done;
  !acc

let pp fmt a = Format.pp_print_string fmt (to_string a)
