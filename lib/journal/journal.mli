(** The serve flight recorder: an append-only, size-rotated journal of
    inbound frames and outbound responses.

    A journal is a sequence of {e segments}. The active segment lives
    at the path given to {!Writer.create}; on rotation it is renamed to
    [PATH.1], [PATH.2], ... (oldest first) and a fresh active segment
    is opened. Each segment is self-describing:

    {v
pakjournal <version> <meta-len>\n<meta-bytes>\n
r <kind> <seq> <code> <disp> <trace> <ts-us> <payload-len>\n<payload>\n
r ...
    v}

    where [<kind>] is [>] (inbound request frame) or [<] (outbound
    response frame), [<seq>] the originating payload-frame sequence
    number, [<code>] the response's exit-taxonomy code ([-1] on
    request records), [<disp>] a disposition token
    ([frame]/[junk]/[ok]/[estimated]/[cache-hit]/[shed]/[error]/...),
    [<trace>] the 16-hex request trace id (or [-]), [<ts-us>] the
    injected-clock timestamp in microseconds since the session began,
    and the payload is length-prefixed raw bytes. [meta] is an opaque
    application string (serve records its configuration there so
    [pak replay] can re-execute under the same limits).

    The format is versioned like [Obs.Snapshot]: {!read} refuses a
    future [version], ignores nothing it understands, and — the
    critical robustness property — {e never raises} on corrupt bytes.
    A truncated or mangled tail is reported via [r_tail], not an
    exception: everything before it is still usable.

    Recording is observable through the usual Obs families:
    [journal.appends] / [journal.append_bytes] / [journal.rotations]
    counters and a [journal.append] span on the write path,
    [journal.read.records] / [journal.read.tails] on the read path.
    Reading a journal back completely satisfies
    [journal.read.records = journal.appends] and (summed over
    segments) bytes read = [journal.append_bytes]. *)

val schema_version : int
(** Version written in every segment header (currently 1). *)

type kind = Request | Response

type entry = {
  e_kind : kind;
  e_seq : int;  (** payload-frame sequence number (0 if none) *)
  e_code : int;  (** response exit-taxonomy code; [-1] on requests *)
  e_disp : string;  (** disposition token; sanitized to [A-Za-z0-9._-] *)
  e_trace : string;  (** 16-hex trace id, [""] = none *)
  e_ts_us : int;  (** injected-clock microseconds since session start *)
  e_payload : string;  (** raw payload bytes *)
}

val encode_entry : entry -> string
(** One record, exactly as {!Writer.append} writes it. *)

val segment_header : meta:string -> string
(** The bytes opening every segment. *)

type read_result = {
  r_meta : string;  (** from the first segment read *)
  r_entries : entry list;  (** in append order across segments *)
  r_tail : string option;
      (** [Some why] when reading stopped before the end of the bytes
          (truncated or corrupt tail); the entries before it are
          intact. [None] = clean. *)
  r_segments : int;  (** segments read *)
}

val read_string : string -> (read_result, string) result
(** Decode one segment's bytes. [Error] only when the bytes do not
    begin with a readable journal header (wrong magic, unsupported
    version, truncated header); anything after a valid header
    degrades to [r_tail]. Never raises. *)

val read : string -> (read_result, string) result
(** Read a journal by its base path: rotated segments [PATH.1],
    [PATH.2], ... (consecutive, oldest first) then the active segment
    [PATH]. [Error] when no segment exists or the first one has no
    valid header; a bad later segment stops reading with [r_tail] set.
    Never raises. *)

(** What a recording front end needs from a journal: an append hook
    plus position introspection (the [(op status)] journal fields).
    Decoupled from {!Writer} so tests can record in memory. *)
type sink = {
  emit : entry -> unit;
  position : unit -> int;  (** total bytes appended, all segments *)
  rotations : unit -> int;
}

module Writer : sig
  type t

  val create : ?max_bytes:int -> meta:string -> string -> (t, string) result
  (** Open (truncate) the active segment at the given path and write
      its header; stale [PATH.N] segments from an earlier session are
      removed. With [max_bytes], a record that would push the active
      segment past the limit rotates first — except that a segment
      always accepts at least one record, so one oversized record can
      never rotate forever. [Error] on an unopenable path. *)

  val append : t -> entry -> unit
  (** Append one record and flush (journals must survive a crash of
      the next instruction). *)

  val position : t -> int
  (** Total bytes written across all segments, headers included. *)

  val rotations : t -> int

  val segments : t -> int
  (** [rotations + 1]: rotated segments plus the active one. *)

  val sink : t -> sink

  val close : t -> unit
end
