(* The serve flight recorder (see journal.mli for the format).

   Invariants this file defends:

   - the writer's output is byte-reconstructible from [encode_entry]
     and [segment_header] alone (the fuzzer and tests build journals in
     memory from exactly those two functions);
   - the reader NEVER raises: a corrupt or truncated tail degrades to
     [r_tail] and everything before it is returned intact;
   - rotation is size-exact: a record that would push the active
     segment past [max_bytes] rotates first, but a segment always
     accepts at least one record, so a single oversized record cannot
     rotate forever. *)

module Obs = Pak_obs.Obs

let schema_version = 1
let magic = "pakjournal "

let c_appends = Obs.counter "journal.appends"
let c_append_bytes = Obs.counter "journal.append_bytes"
let c_rotations = Obs.counter "journal.rotations"
let c_read_records = Obs.counter "journal.read.records"
let c_read_tails = Obs.counter "journal.read.tails"

type kind = Request | Response

type entry = {
  e_kind : kind;
  e_seq : int;
  e_code : int;
  e_disp : string;
  e_trace : string;
  e_ts_us : int;
  e_payload : string;
}

(* Disposition and trace fields are single space-free tokens on the
   record header line; anything else would desynchronize the reader. *)
let token s =
  if s = "" then "-"
  else
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      s

let encode_entry e =
  Printf.sprintf "r %c %d %d %s %s %d %d\n%s\n"
    (match e.e_kind with Request -> '>' | Response -> '<')
    e.e_seq e.e_code (token e.e_disp) (token e.e_trace) e.e_ts_us
    (String.length e.e_payload) e.e_payload

let segment_header ~meta =
  Printf.sprintf "%s%d %d\n%s\n" magic schema_version (String.length meta) meta

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type read_result = {
  r_meta : string;
  r_entries : entry list;
  r_tail : string option;
  r_segments : int;
}

(* Decode one segment: returns (meta, entries in order, tail). Written
   so that no input can raise — every malformed shape maps to either
   Error (unreadable header) or a tail diagnostic. *)
let read_segment src =
  let n = String.length src in
  let starts_with_magic =
    String.length src >= String.length magic
    && String.sub src 0 (String.length magic) = magic
  in
  if not starts_with_magic then Result.Error "not a pak journal (bad magic)"
  else begin
    (* Header line: "pakjournal <version> <meta-len>\n" *)
    match String.index_from_opt src 0 '\n' with
    | None -> Result.Error "truncated journal header"
    | Some eol -> (
        let rest =
          String.sub src (String.length magic) (eol - String.length magic)
        in
        match String.split_on_char ' ' rest with
        | [ v; m ] -> (
            match (int_of_string_opt v, int_of_string_opt m) with
            | Some version, _ when version > schema_version ->
                Result.Error
                  (Printf.sprintf
                     "journal version %d is newer than supported version %d"
                     version schema_version)
            | Some _, Some meta_len
              when meta_len >= 0 && eol + 1 + meta_len + 1 <= n
                   && src.[eol + 1 + meta_len] = '\n' -> (
                let meta = String.sub src (eol + 1) meta_len in
                let entries = ref [] in
                let tail = ref None in
                let pos = ref (eol + 1 + meta_len + 1) in
                let stop = ref false in
                let bad msg =
                  tail := Some msg;
                  stop := true
                in
                while not !stop do
                  if !pos >= n then stop := true
                  else
                    match String.index_from_opt src !pos '\n' with
                    | None -> bad "truncated record header"
                    | Some reol -> (
                        let line = String.sub src !pos (reol - !pos) in
                        match String.split_on_char ' ' line with
                        | [ "r"; k; seq; code; disp; trace; ts; len ] -> (
                            match
                              ( (match k with
                                | ">" -> Some Request
                                | "<" -> Some Response
                                | _ -> None),
                                int_of_string_opt seq,
                                int_of_string_opt code,
                                int_of_string_opt ts,
                                int_of_string_opt len )
                            with
                            | Some kind, Some seq, Some code, Some ts, Some len
                              when len >= 0 ->
                                if reol + 1 + len + 1 > n then
                                  bad "truncated record payload"
                                else if src.[reol + 1 + len] <> '\n' then
                                  bad "record payload not newline-terminated"
                                else begin
                                  entries :=
                                    {
                                      e_kind = kind;
                                      e_seq = seq;
                                      e_code = code;
                                      e_disp = disp;
                                      e_trace = (if trace = "-" then "" else trace);
                                      e_ts_us = ts;
                                      e_payload = String.sub src (reol + 1) len;
                                    }
                                    :: !entries;
                                  Obs.incr c_read_records;
                                  pos := reol + 1 + len + 1
                                end
                            | _ ->
                                bad
                                  (Printf.sprintf
                                     "malformed record header at byte %d" !pos))
                        | _ ->
                            bad
                              (Printf.sprintf "malformed record header at byte %d"
                                 !pos))
                done;
                if !tail <> None then Obs.incr c_read_tails;
                Ok (meta, List.rev !entries, !tail))
            | Some _, _ -> Result.Error "truncated journal header"
            | None, _ -> Result.Error "unreadable journal version")
        | _ -> Result.Error "malformed journal header")
  end

let read_string src =
  match read_segment src with
  | Result.Error _ as e -> e
  | Ok (meta, entries, tail) ->
      Ok { r_meta = meta; r_entries = entries; r_tail = tail; r_segments = 1 }

let read_file_string path =
  match open_in_bin path with
  | exception Sys_error msg -> Result.Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception _ -> Result.Error (path ^ ": unreadable"))

let read base =
  (* Rotated segments first (oldest-first), then the active one. *)
  let exists p = try Sys.file_exists p with Sys_error _ -> false in
  let rec rotated i acc =
    let p = Printf.sprintf "%s.%d" base i in
    if exists p then rotated (i + 1) (p :: acc) else List.rev acc
  in
  let segments = rotated 1 [] @ (if exists base then [ base ] else []) in
  match segments with
  | [] -> Result.Error (base ^ ": no such journal")
  | first :: _ -> (
      let rec go segs acc_entries meta count =
        match segs with
        | [] ->
            Ok
              {
                r_meta = meta;
                r_entries = List.rev acc_entries;
                r_tail = None;
                r_segments = count;
              }
        | seg :: rest -> (
            match read_file_string seg with
            | Result.Error msg ->
                if count = 0 then Result.Error msg
                else
                  Ok
                    {
                      r_meta = meta;
                      r_entries = List.rev acc_entries;
                      r_tail = Some (seg ^ ": " ^ msg);
                      r_segments = count;
                    }
            | Ok src -> (
                match read_segment src with
                | Result.Error msg ->
                    if count = 0 then Result.Error (seg ^ ": " ^ msg)
                    else
                      Ok
                        {
                          r_meta = meta;
                          r_entries = List.rev acc_entries;
                          r_tail = Some (seg ^ ": " ^ msg);
                          r_segments = count;
                        }
                | Ok (seg_meta, entries, tail) -> (
                    let meta = if count = 0 then seg_meta else meta in
                    let acc = List.rev_append entries acc_entries in
                    match tail with
                    | Some why ->
                        (* A damaged segment poisons everything after
                           it: stop, report, keep what was read. *)
                        Ok
                          {
                            r_meta = meta;
                            r_entries = List.rev acc;
                            r_tail = Some (seg ^ ": " ^ why);
                            r_segments = count + 1;
                          }
                    | None -> go rest acc meta (count + 1))))
      in
      ignore first;
      go segments [] "" 0)

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type sink = {
  emit : entry -> unit;
  position : unit -> int;
  rotations : unit -> int;
}

module Writer = struct
  type t = {
    base : string;
    meta : string;
    max_bytes : int option;
    mutable oc : out_channel;
    mutable seg_bytes : int;  (* bytes in the active segment *)
    mutable seg_records : int;
    mutable total : int;  (* bytes across all segments *)
    mutable rotated : int;
    mutable closed : bool;
  }

  let open_segment w =
    let oc = open_out_bin w.base in
    let header = segment_header ~meta:w.meta in
    output_string oc header;
    flush oc;
    w.oc <- oc;
    w.seg_bytes <- String.length header;
    w.seg_records <- 0;
    w.total <- w.total + String.length header

  let create ?max_bytes ~meta base =
    match
      (* Stale rotated segments from an earlier session would be
         prepended by the reader: remove them. *)
      let i = ref 1 in
      let continue = ref true in
      while !continue do
        let p = Printf.sprintf "%s.%d" base !i in
        if Sys.file_exists p then begin
          Sys.remove p;
          incr i
        end
        else continue := false
      done;
      let w =
        {
          base;
          meta;
          max_bytes;
          oc = stdout (* replaced below *);
          seg_bytes = 0;
          seg_records = 0;
          total = 0;
          rotated = 0;
          closed = false;
        }
      in
      let oc = open_out_bin base in
      let header = segment_header ~meta in
      output_string oc header;
      flush oc;
      w.oc <- oc;
      w.seg_bytes <- String.length header;
      w.total <- String.length header;
      w
    with
    | w -> Ok w
    | exception Sys_error msg -> Result.Error msg

  let rotate w =
    close_out_noerr w.oc;
    w.rotated <- w.rotated + 1;
    (try Sys.rename w.base (Printf.sprintf "%s.%d" w.base w.rotated)
     with Sys_error _ -> ());
    Obs.incr c_rotations;
    open_segment w

  let append w e =
    if not w.closed then
      Obs.span "journal.append" (fun () ->
          let record = encode_entry e in
          (match w.max_bytes with
          | Some cap
            when w.seg_records > 0 && w.seg_bytes + String.length record > cap
            ->
              rotate w
          | _ -> ());
          output_string w.oc record;
          flush w.oc;
          w.seg_bytes <- w.seg_bytes + String.length record;
          w.seg_records <- w.seg_records + 1;
          w.total <- w.total + String.length record;
          Obs.incr c_appends;
          Obs.add c_append_bytes (String.length record))

  let position w = w.total
  let rotations w = w.rotated
  let segments w = w.rotated + 1

  let sink w =
    {
      emit = (fun e -> append w e);
      position = (fun () -> position w);
      rotations = (fun () -> rotations w);
    }

  let close w =
    if not w.closed then begin
      w.closed <- true;
      close_out_noerr w.oc
    end
end
