open Pak_rational

(* Invariant: weights strictly positive, summing to exactly one, no
   structurally-equal duplicate values. Order of entries is the order
   of first appearance at construction, which keeps compiled pps trees
   deterministic. *)
type 'a t = ('a * Q.t) list

let merge_duplicates entries =
  (* Quadratic, but supports here are small (action sets, coin vectors). *)
  let rec go acc = function
    | [] -> List.rev acc
    | (v, w) :: rest ->
      (match List.assoc_opt v acc with
       | Some _ ->
         let acc = List.map (fun (v', w') -> if v' = v then (v', Q.add w' w) else (v', w')) acc in
         go acc rest
       | None -> go ((v, w) :: acc) rest)
  in
  go [] entries

let of_weights entries =
  List.iter
    (fun (_, w) -> if Q.sign w < 0 then invalid_arg "Dist: negative weight")
    entries;
  let entries = List.filter (fun (_, w) -> not (Q.is_zero w)) entries in
  if entries = [] then invalid_arg "Dist: empty support";
  let entries = merge_duplicates entries in
  let total = Q.sum (List.map snd entries) in
  if Q.equal total Q.one then entries
  else List.map (fun (v, w) -> (v, Q.div w total)) entries

let of_list entries =
  List.iter
    (fun (_, w) -> if Q.sign w < 0 then invalid_arg "Dist: negative weight")
    entries;
  let entries = List.filter (fun (_, w) -> not (Q.is_zero w)) entries in
  if entries = [] then invalid_arg "Dist: empty support";
  let entries = merge_duplicates entries in
  let total = Q.sum (List.map snd entries) in
  if not (Q.equal total Q.one) then
    invalid_arg
      (Format.asprintf "Dist.of_list: weights sum to %a, not 1" Q.pp total);
  entries

let return v = [ (v, Q.one) ]

let uniform vs =
  if vs = [] then invalid_arg "Dist.uniform: empty list";
  let w = Q.inv (Q.of_int (List.length vs)) in
  of_weights (List.map (fun v -> (v, w)) vs)

let bernoulli p =
  if not (Q.is_probability p) then invalid_arg "Dist.bernoulli: not a probability";
  if Q.equal p Q.one then return true
  else if Q.is_zero p then return false
  else [ (true, p); (false, Q.one_minus p) ]

let coin p ~yes ~no =
  if not (Q.is_probability p) then invalid_arg "Dist.coin: not a probability";
  if Q.equal p Q.one then return yes
  else if Q.is_zero p then return no
  else [ (yes, p); (no, Q.one_minus p) ]

let support t = List.map fst t
let to_list t = t
let size t = List.length t
let is_deterministic t = List.length t = 1
let total_mass t = Q.sum (List.map snd t)

let prob t v = match List.assoc_opt v t with Some w -> w | None -> Q.zero
let prob_pred t pred = Q.sum (List.filter_map (fun (v, w) -> if pred v then Some w else None) t)

let map f t = merge_duplicates (List.map (fun (v, w) -> (f v, w)) t)

let bind t f =
  merge_duplicates
    (List.concat_map (fun (v, w) -> List.map (fun (u, w') -> (u, Q.mul w w')) (f v)) t)

let product a b = bind a (fun x -> map (fun y -> (x, y)) b)

let product_list dists =
  List.fold_right (fun d acc -> bind d (fun x -> map (fun xs -> x :: xs) acc)) dists (return [])

let condition t pred =
  let kept = List.filter (fun (v, _) -> pred v) t in
  if kept = [] then invalid_arg "Dist.condition: zero-probability event";
  let total = Q.sum (List.map snd kept) in
  List.map (fun (v, w) -> (v, Q.div w total)) kept

let expectation t f = Q.sum (List.map (fun (v, w) -> Q.mul w (f v)) t)

let filter_map f t =
  let kept = List.filter_map (fun (v, w) -> Option.map (fun u -> (u, w)) (f v)) t in
  if kept = [] then invalid_arg "Dist.filter_map: empty result";
  of_weights kept

let pp pp_v fmt t =
  Format.fprintf fmt "@[<hov 1>{";
  List.iteri
    (fun i (v, w) ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%a: %a" pp_v v Q.pp w)
    t;
  Format.fprintf fmt "}@]"
