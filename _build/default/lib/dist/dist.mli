(** Finite probability distributions with exact rational weights.

    A value of type ['a t] is a finite probability distribution over
    values of type ['a]: a list of (value, weight) pairs whose weights
    are strictly positive rationals summing to one, with no duplicate
    values (duplicates are merged at construction).

    This is the type of the probabilistic protocols of the paper
    (Section 2.2): a protocol for agent [i] is a function
    [P_i : L_i -> ∆(Act_i)], i.e. local state to distribution over
    actions. It is also how the environment's coin flips (message loss
    patterns, initial-state choices) are described before compilation
    into a pps tree.

    Merging of duplicate values uses polymorphic structural equality;
    use {!map} with an injective function or distinct value types if
    your values are not structurally comparable. *)

open Pak_rational

type 'a t

(** {1 Construction} *)

val return : 'a -> 'a t
(** The point mass (Dirac distribution). *)

val of_list : ('a * Q.t) list -> 'a t
(** Build a distribution from weighted values. Weights must be
    non-negative; zero-weight entries are dropped; duplicate values are
    merged by summing weights; the result is normalized to total mass 1
    only if the total is already 1.
    @raise Invalid_argument if a weight is negative, if the list is
    empty after dropping zero weights, or if the weights do not sum
    to 1. Use {!of_weights} for unnormalized input. *)

val of_weights : ('a * Q.t) list -> 'a t
(** Like {!of_list} but rescales arbitrary non-negative weights so they
    sum to one.
    @raise Invalid_argument if all weights are zero or any is negative. *)

val uniform : 'a list -> 'a t
(** Uniform distribution over a non-empty list (duplicates merged).
    @raise Invalid_argument on the empty list. *)

val bernoulli : Q.t -> bool t
(** [bernoulli p] is [true] with probability [p].
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val coin : Q.t -> yes:'a -> no:'a -> 'a t
(** [coin p ~yes ~no] is [yes] with probability [p], else [no]. *)

(** {1 Observation} *)

val support : 'a t -> 'a list
(** Values with strictly positive probability. *)

val to_list : 'a t -> ('a * Q.t) list
(** The (value, probability) pairs; probabilities sum to one exactly. *)

val prob : 'a t -> 'a -> Q.t
(** Probability of one value (zero if outside the support). *)

val prob_pred : 'a t -> ('a -> bool) -> Q.t
(** Probability mass of a predicate (an event). *)

val size : 'a t -> int
val is_deterministic : 'a t -> bool
(** True when the support is a single value — the paper's
    "non-mixed action step". *)

val total_mass : 'a t -> Q.t
(** Always [Q.one]; exported for tests. *)

(** {1 Transformation} *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Push-forward distribution (merges values colliding under [f]). *)

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Monadic sequencing: sample [a], then sample from [f a]. *)

val product : 'a t -> 'b t -> ('a * 'b) t
(** Independent product. *)

val product_list : 'a t list -> 'a list t
(** Independent product of a list of distributions; the distribution of
    the list of outcomes (size is the product of supports — use with
    care). [product_list [] = return []]. *)

val condition : 'a t -> ('a -> bool) -> 'a t
(** Conditional distribution given a positive-probability event.
    @raise Invalid_argument if the event has probability zero. *)

val expectation : 'a t -> ('a -> Q.t) -> Q.t
(** Expected value of a rational-valued random variable. *)

val filter_map : ('a -> 'b option) -> 'a t -> 'b t
(** Map and condition on the result being [Some _] in one step.
    @raise Invalid_argument if nothing survives. *)

(** {1 Pretty-printing} *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
