lib/dist/dist.mli: Format Pak_rational Q
