lib/dist/dist.ml: Format List Option Pak_rational Q
