open Pak_rational
open Pak_dist

type msg = { src : int; dst : int; payload : string }

let msg ~src ~dst payload = { src; dst; payload }

let delivery_patterns ~loss msgs =
  if not (Q.is_probability loss) then
    invalid_arg "Network.delivery_patterns: loss must be a probability";
  let deliver = Q.one_minus loss in
  let coins = List.map (fun m -> Dist.coin deliver ~yes:(Some m) ~no:None) msgs in
  Dist.map (List.filter_map Fun.id) (Dist.product_list coins)

let pattern_label pattern =
  let one m = Printf.sprintf "%d>%d:%s" m.src m.dst m.payload in
  Printf.sprintf "deliver{%s}" (String.concat "," (List.map one pattern))

let delivered pattern ~dst = List.filter (fun m -> m.dst = dst) pattern
