lib/protocol/network.ml: Dist Fun List Pak_dist Pak_rational Printf Q String
