lib/protocol/protocol.mli: Dist Pak_dist Pak_pps Pak_rational Q Tree
