lib/protocol/network.mli: Dist Pak_dist Pak_rational Q
