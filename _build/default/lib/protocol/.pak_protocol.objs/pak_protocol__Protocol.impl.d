lib/protocol/protocol.ml: Array Dist Format Gstate List Pak_dist Pak_pps Pak_rational Q Tree
