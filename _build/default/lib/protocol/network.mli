(** Synchronous lossy message passing — the communication substrate of
    Example 1 and of the coordinated-attack systems.

    Messages sent in a round are delivered at the end of that round or
    lost, each independently with a fixed loss probability (no late or
    reordered delivery, as in the paper's model). The environment's
    probabilistic choice in a round is a {e delivery pattern}: the
    subset of that round's messages that get through. *)

open Pak_rational
open Pak_dist

type msg = { src : int; dst : int; payload : string }

val msg : src:int -> dst:int -> string -> msg

val delivery_patterns : loss:Q.t -> msg list -> msg list Dist.t
(** All subsets of the given messages as delivery outcomes, with the
    product Bernoulli probabilities (each message is delivered
    independently with probability [1 - loss]). With [loss = 0] or an
    empty message list this is a point mass. The order of messages
    within each outcome follows the input order.
    @raise Invalid_argument if [loss] is not a probability. *)

val pattern_label : msg list -> string
(** Compact textual encoding of a delivery pattern, usable as an
    environment action label ("deliver{1>2:m1,2>1:ack}" or
    "deliver{}"). *)

val delivered : msg list -> dst:int -> msg list
(** Messages of a pattern addressed to the given agent. *)
