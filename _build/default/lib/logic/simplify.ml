open Pak_rational

(* Bottom-up rewriting; every rule is an equivalence valid on all pps
   (beliefs are probabilities in [0,1], K/E/C are S5 necessity-like,
   temporal operators are classical). *)
let rec simplify (f : Formula.t) : Formula.t =
  match f with
  | True | False | Atom _ | Does _ -> f
  | Not g ->
    (match simplify g with
     | True -> False
     | False -> True
     | Not h -> h
     | h -> Not h)
  | And (a, b) ->
    (match (simplify a, simplify b) with
     | False, _ | _, False -> False
     | True, h | h, True -> h
     | ha, hb when Formula.equal ha hb -> ha
     | ha, hb -> And (ha, hb))
  | Or (a, b) ->
    (match (simplify a, simplify b) with
     | True, _ | _, True -> True
     | False, h | h, False -> h
     | ha, hb when Formula.equal ha hb -> ha
     | ha, hb -> Or (ha, hb))
  | Implies (a, b) ->
    (match (simplify a, simplify b) with
     | False, _ -> True
     | True, h -> h
     | _, True -> True
     | ha, False -> simplify (Not ha)
     | ha, hb when Formula.equal ha hb -> True
     | ha, hb -> Implies (ha, hb))
  | Iff (a, b) ->
    (match (simplify a, simplify b) with
     | True, h | h, True -> h
     | False, h | h, False -> simplify (Not h)
     | ha, hb when Formula.equal ha hb -> True
     | ha, hb -> Iff (ha, hb))
  | Knows (i, g) ->
    (match simplify g with
     | True -> True
     | False -> False (* every agent considers at least the actual point possible *)
     | h -> Knows (i, h))
  | Believes (i, cmp, q, g) ->
    let h = simplify g in
    (* Grade bounds that hold or fail for any probability value. *)
    let trivially_true =
      match cmp with
      | Formula.Geq -> Q.leq q Q.zero
      | Formula.Gt -> Q.lt q Q.zero
      | Formula.Leq -> Q.geq q Q.one
      | Formula.Lt -> Q.gt q Q.one
      | Formula.Eq -> false
    and trivially_false =
      match cmp with
      | Formula.Geq -> Q.gt q Q.one
      | Formula.Gt -> Q.geq q Q.one
      | Formula.Leq -> Q.lt q Q.zero
      | Formula.Lt -> Q.leq q Q.zero
      | Formula.Eq -> not (Q.is_probability q)
    in
    if trivially_true then True
    else if trivially_false then False
    else begin
      (* β(true) = 1 and β(false) = 0 at every point. *)
      match h with
      | True ->
        (match cmp with
         | Formula.Geq | Formula.Leq | Formula.Eq when Q.equal q Q.one -> True
         | Formula.Geq -> True (* q < 1 after the trivial cases *)
         | Formula.Gt -> if Q.lt q Q.one then True else False
         | Formula.Leq | Formula.Lt | Formula.Eq -> False)
      | False ->
        (match cmp with
         | Formula.Leq | Formula.Geq | Formula.Eq when Q.is_zero q -> True
         | Formula.Leq -> True (* q > 0 after the trivial cases *)
         | Formula.Lt -> if Q.gt q Q.zero then True else False
         | Formula.Geq | Formula.Gt | Formula.Eq -> False)
      | h -> Believes (i, cmp, q, h)
    end
  | Eventually g ->
    (match simplify g with
     | True -> True
     | False -> False
     | Eventually h -> Eventually h (* FF = F *)
     | h -> Eventually h)
  | Globally g ->
    (match simplify g with
     | True -> True
     | False -> False
     | Globally h -> Globally h
     | h -> Globally h)
  | Next g ->
    (match simplify g with
     | False -> False (* no next point at run ends, so X false = false *)
     | h -> Next h)
  | Once g ->
    (match simplify g with
     | True -> True
     | False -> False
     | Once h -> Once h
     | h -> Once h)
  | Historically g ->
    (match simplify g with
     | True -> True
     | False -> False
     | Historically h -> Historically h
     | h -> Historically h)
  | EveryoneKnows (grp, g) ->
    (match (List.sort_uniq compare grp, simplify g) with
     | _, True -> True
     | _, False -> False
     | [ i ], h -> Knows (i, h)
     | grp, h -> EveryoneKnows (grp, h))
  | CommonKnows (grp, g) ->
    (match (List.sort_uniq compare grp, simplify g) with
     | _, True -> True
     | _, False -> False
     | grp, h -> CommonKnows (grp, h))
  | EveryoneBelieves (grp, q, g) ->
    if Q.leq q Q.zero then True
    else if Q.gt q Q.one then False
    else
      (match (List.sort_uniq compare grp, simplify g) with
       | _, True -> True
       | [ i ], h -> simplify (Believes (i, Formula.Geq, q, h))
       | grp, h -> EveryoneBelieves (grp, q, h))
  | CommonBelief (grp, q, g) ->
    if Q.leq q Q.zero then True
    else if Q.gt q Q.one then False
    else
      (match (List.sort_uniq compare grp, simplify g) with
       | _, True -> True
       | grp, h -> CommonBelief (grp, q, h))
