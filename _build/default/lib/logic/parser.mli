(** Parser for the concrete formula syntax produced by
    {!Formula.to_string}.

    Grammar (usual precedences, tightest first):
    {v
    unary   ::= '!' unary | 'K[i]' unary | 'B[i]⋈q' unary
              | 'E[i,j]' unary | 'C[i,j]' unary
              | 'EB[i,j]>=q' unary | 'CB[i,j]>=q' unary
              | 'F'|'G'|'X'|'P'|'H' unary | primary
    primary ::= 'true' | 'false' | 'does[i](act)' | atom | '(' formula ')'
    and     ::= unary ('&' unary)*
    or      ::= and ('|' and)*
    implies ::= or ('->' implies)?          (right associative)
    iff     ::= implies ('<->' iff)?        (right associative)
    v}
    where [⋈ ∈ {>=, >, <=, <, =}] and [q] is a rational ([3/4], [0.95],
    [1]). [K], [B], [E], [C], [EB], [CB], [F], [G], [X], [P], [H],
    [true], [false] and [does] are reserved words; atoms are other
    identifiers matching [\[A-Za-z_\]\[A-Za-z0-9_'\]*]. *)

exception Parse_error of string
(** Raised on malformed input, with a human-readable description
    including the offending position. *)

val parse : string -> Formula.t
(** @raise Parse_error on malformed input. *)
