lib/logic/semantics.ml: Belief Bitset Fact Formula Gstate Hashtbl List Pak_pps Pak_rational Printf Q Tree
