lib/logic/axioms.mli: Format Formula Pak_pps Semantics
