lib/logic/formula.mli: Format Pak_rational Q
