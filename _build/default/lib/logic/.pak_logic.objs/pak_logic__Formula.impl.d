lib/logic/formula.ml: Buffer Format List Pak_rational Printf Q Stdlib String
