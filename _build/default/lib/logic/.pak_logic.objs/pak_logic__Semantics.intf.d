lib/logic/semantics.mli: Fact Formula Gstate Pak_pps Pak_rational Tree
