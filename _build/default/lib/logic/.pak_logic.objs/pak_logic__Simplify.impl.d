lib/logic/simplify.ml: Formula List Pak_rational Q
