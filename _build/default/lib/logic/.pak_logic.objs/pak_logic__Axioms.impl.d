lib/logic/axioms.ml: Format Formula List Pak_rational Q Semantics
