lib/logic/parser.ml: Formula List Pak_rational Printf Q String
