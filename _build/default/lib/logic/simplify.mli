(** Semantics-preserving formula simplification.

    Rewrites a formula to an equivalent, never-larger one:
    constant folding through every connective and modality (e.g.
    [K_i true = true], [B_i^{≥0} ϕ = true], [F false = false]),
    double-negation elimination, idempotence ([ϕ ∧ ϕ = ϕ]), absorption
    of trivial belief grades, and flattening of degenerate group
    operators ([E_{i} ϕ = K_i ϕ]).

    The equivalence is with respect to {!Semantics.eval} on every pps
    and valuation (property-tested in the suite); syntactic equality of
    the results is {e not} guaranteed to be canonical — this is a
    simplifier, not a decision procedure. *)

val simplify : Formula.t -> Formula.t
(** Idempotent: [simplify (simplify f) = simplify f]. The result's
    {!Formula.size} never exceeds the input's. *)
