(** Modal axiom checking over a pps.

    The knowledge modality of this library is interpreted over the
    information partitions of a pps, so the S5 axioms must be valid for
    every agent, fact and system; the graded-belief modality [B^{≥1}]
    is the S5 knowledge's "certainty" companion (equal to [K] on
    systems where every world has positive measure, which is every
    pps). This module instantiates the schemas at given base formulas
    and model-checks them — a machine-checked sanity layer under the
    paper's epistemic reasoning, and a demonstration harness for the
    logic layer.

    Each checker returns one {!report} per instantiated schema. *)

type report = {
  name : string;          (** e.g. ["T (truth)"] *)
  schema : string;        (** e.g. ["K_i p -> p"] *)
  formula : Formula.t;    (** the instantiated formula *)
  valid : bool;
}

val knowledge_s5 :
  Pak_pps.Tree.t -> valuation:Semantics.valuation -> agent:int -> base:Formula.t -> report list
(** K (distribution), T (truth), 4 (positive introspection),
    5 (negative introspection), and the derived D (consistency). *)

val certainty_kd45 :
  Pak_pps.Tree.t -> valuation:Semantics.valuation -> agent:int -> base:Formula.t -> report list
(** The KD45-style schemas for certainty [B^{≥1}]: K, D, 4, 5 — plus
    the interaction axioms [K_i p -> B_i^{≥1} p] (knowledge yields
    certainty) and, specific to pps (posteriors from a full-support
    prior), [B_i^{≥1} p -> K_i p]. *)

val graded_coherence :
  Pak_pps.Tree.t -> valuation:Semantics.valuation -> agent:int -> base:Formula.t -> report list
(** Coherence of the graded-belief family: monotonicity in the grade
    ([B^{≥3/4} p -> B^{≥1/2} p]), complementation
    ([B^{≥3/4} p -> B^{<1/2} !p] and [B^{=1/2} p <-> B^{=1/2} !p]),
    and introspection of graded beliefs
    ([B^{≥3/4} p -> B^{≥1} B^{≥3/4} p]: an agent knows its own degrees
    of belief, since they are functions of its local state). *)

val all :
  Pak_pps.Tree.t -> valuation:Semantics.valuation -> agent:int -> base:Formula.t -> report list

val all_valid : report list -> bool
val pp_report : Format.formatter -> report -> unit
