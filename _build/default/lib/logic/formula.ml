open Pak_rational

type cmp = Geq | Gt | Leq | Lt | Eq

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Knows of int * t
  | Believes of int * cmp * Q.t * t
  | Does of int * string
  | Eventually of t
  | Globally of t
  | Next of t
  | Once of t
  | Historically of t
  | EveryoneKnows of int list * t
  | CommonKnows of int list * t
  | EveryoneBelieves of int list * Q.t * t
  | CommonBelief of int list * Q.t * t

let atom s = Atom s
let neg f = Not f
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let ( ==> ) a b = Implies (a, b)
let ( <=> ) a b = Iff (a, b)

let conj = function [] -> True | f :: fs -> List.fold_left ( &&& ) f fs
let disj = function [] -> False | f :: fs -> List.fold_left ( ||| ) f fs

let k i f = Knows (i, f)
let b_geq i q f = Believes (i, Geq, q, f)
let does i act = Does (i, act)

let rec size = function
  | True | False | Atom _ | Does _ -> 1
  | Not f | Knows (_, f) | Believes (_, _, _, f)
  | Eventually f | Globally f | Next f | Once f | Historically f
  | EveryoneKnows (_, f) | CommonKnows (_, f)
  | EveryoneBelieves (_, _, f) | CommonBelief (_, _, f) ->
    1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> 1 + size a + size b

let rec collect_agents acc = function
  | True | False | Atom _ -> acc
  | Not f | Eventually f | Globally f | Next f | Once f | Historically f ->
    collect_agents acc f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
    collect_agents (collect_agents acc a) b
  | Knows (i, f) | Believes (i, _, _, f) -> collect_agents (i :: acc) f
  | Does (i, _) -> i :: acc
  | EveryoneKnows (g, f) | CommonKnows (g, f)
  | EveryoneBelieves (g, _, f) | CommonBelief (g, _, f) ->
    collect_agents (g @ acc) f

let agents f = List.sort_uniq compare (collect_agents [] f)

let rec collect_atoms acc = function
  | True | False | Does _ -> acc
  | Atom s -> s :: acc
  | Not f | Eventually f | Globally f | Next f | Once f | Historically f
  | Knows (_, f) | Believes (_, _, _, f)
  | EveryoneKnows (_, f) | CommonKnows (_, f)
  | EveryoneBelieves (_, _, f) | CommonBelief (_, _, f) ->
    collect_atoms acc f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
    collect_atoms (collect_atoms acc a) b

let atoms f = List.sort_uniq String.compare (collect_atoms [] f)

let equal = ( = )
let compare = Stdlib.compare

let cmp_to_string = function
  | Geq -> ">="
  | Gt -> ">"
  | Leq -> "<="
  | Lt -> "<"
  | Eq -> "="

let pp_cmp fmt c = Format.pp_print_string fmt (cmp_to_string c)

let group_to_string g = String.concat "," (List.map string_of_int g)

(* Precedence levels for minimal parenthesization (higher binds
   tighter): iff 1, implies 2, or 3, and 4, unary 5. *)
let rec prec = function
  | Iff _ -> 1
  | Implies _ -> 2
  | Or _ -> 3
  | And _ -> 4
  | _ -> 5

and to_buf buf level f =
  let open Printf in
  let paren needed body =
    if needed then Buffer.add_char buf '(';
    body ();
    if needed then Buffer.add_char buf ')'
  in
  let p = prec f in
  match f with
  | True -> Buffer.add_string buf "true"
  | False -> Buffer.add_string buf "false"
  | Atom s -> Buffer.add_string buf s
  | Not g ->
    Buffer.add_string buf "!";
    to_buf buf 5 g
  | And (a, b) ->
    paren (p < level) (fun () ->
        to_buf buf 4 a;
        Buffer.add_string buf " & ";
        to_buf buf 5 b)
  | Or (a, b) ->
    paren (p < level) (fun () ->
        to_buf buf 3 a;
        Buffer.add_string buf " | ";
        to_buf buf 4 b)
  | Implies (a, b) ->
    (* right associative *)
    paren (p < level) (fun () ->
        to_buf buf 3 a;
        Buffer.add_string buf " -> ";
        to_buf buf 2 b)
  | Iff (a, b) ->
    paren (p < level) (fun () ->
        to_buf buf 2 a;
        Buffer.add_string buf " <-> ";
        to_buf buf 1 b)
  | Knows (i, g) ->
    Buffer.add_string buf (sprintf "K[%d] " i);
    to_buf buf 5 g
  | Believes (i, c, q, g) ->
    Buffer.add_string buf (sprintf "B[%d]%s%s " i (cmp_to_string c) (Q.to_string q));
    to_buf buf 5 g
  | Does (i, act) -> Buffer.add_string buf (sprintf "does[%d](%s)" i act)
  | Eventually g ->
    Buffer.add_string buf "F ";
    to_buf buf 5 g
  | Globally g ->
    Buffer.add_string buf "G ";
    to_buf buf 5 g
  | Next g ->
    Buffer.add_string buf "X ";
    to_buf buf 5 g
  | Once g ->
    Buffer.add_string buf "P ";
    to_buf buf 5 g
  | Historically g ->
    Buffer.add_string buf "H ";
    to_buf buf 5 g
  | EveryoneKnows (grp, g) ->
    Buffer.add_string buf (sprintf "E[%s] " (group_to_string grp));
    to_buf buf 5 g
  | CommonKnows (grp, g) ->
    Buffer.add_string buf (sprintf "C[%s] " (group_to_string grp));
    to_buf buf 5 g
  | EveryoneBelieves (grp, q, g) ->
    Buffer.add_string buf (sprintf "EB[%s]>=%s " (group_to_string grp) (Q.to_string q));
    to_buf buf 5 g
  | CommonBelief (grp, q, g) ->
    Buffer.add_string buf (sprintf "CB[%s]>=%s " (group_to_string grp) (Q.to_string q));
    to_buf buf 5 g

let to_string f =
  let buf = Buffer.create 64 in
  to_buf buf 0 f;
  Buffer.contents buf

let pp fmt f = Format.pp_print_string fmt (to_string f)
