(** Formulas of a probabilistic epistemic logic over pps.

    The language combines:
    - propositional connectives over atoms interpreted by a valuation
      on global states;
    - knowledge [K_i ϕ] ("ϕ holds at all points the agent cannot
      distinguish from the current one", i.e. with the same local
      state) and group operators [E_G]/[C_G] (everyone/common
      knowledge);
    - graded belief [B_i^{⋈q} ϕ] ("the agent's degree of belief
      {!Pak_pps.Belief.degree} in ϕ compares as ⋈ with q"), the formula
      counterpart of the paper's [β_i(ϕ)], with group counterparts
      [EB_G^q] and Monderer–Samet common [q]-belief [CB_G^q];
    - action occurrence [does_i(α)];
    - linear-time operators within a run (future [F]/[G]/[X], past
      [P]/[H]).

    Agents are 0-based indices. Printing produces the concrete syntax
    accepted by {!Parser.parse} (round-trip safe). *)

open Pak_rational

type cmp = Geq | Gt | Leq | Lt | Eq

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Knows of int * t
  | Believes of int * cmp * Q.t * t
  | Does of int * string
  | Eventually of t
  | Globally of t
  | Next of t
  | Once of t
  | Historically of t
  | EveryoneKnows of int list * t
  | CommonKnows of int list * t
  | EveryoneBelieves of int list * Q.t * t
  | CommonBelief of int list * Q.t * t

(** {1 Constructors} *)

val atom : string -> t
val neg : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val ( ==> ) : t -> t -> t
val ( <=> ) : t -> t -> t
val conj : t list -> t
val disj : t list -> t
val k : int -> t -> t
val b_geq : int -> Q.t -> t -> t
(** [b_geq i q ϕ] is [B_i^{≥q} ϕ]. *)

val does : int -> string -> t

(** {1 Inspection} *)

val size : t -> int
(** Number of connectives and modalities (atoms count 1). *)

val agents : t -> int list
(** Agents mentioned, sorted, without duplicates. *)

val atoms : t -> string list
(** Atom names mentioned, sorted, without duplicates. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Printing} *)

val pp_cmp : Format.formatter -> cmp -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Concrete syntax, parseable by {!Parser.parse}:
    [!], [&], [|], [->], [<->] (with the usual precedences),
    [K\[i\]], [B\[i\]>=q], [does\[i\](act)], [F], [G], [X], [P], [H],
    [E\[i,j\]], [C\[i,j\]], [EB\[i,j\]>=q], [CB\[i,j\]>=q],
    [true], [false]. *)
