(** Model checking of {!Formula.t} over a pps.

    A formula is evaluated to a {!Pak_pps.Fact.t} — its set of
    satisfying points — given a valuation interpreting atoms at global
    states. Knowledge [K_i] quantifies over the points the agent cannot
    distinguish (same local state, hence by synchrony the same time);
    graded belief [B_i^{⋈q}] compares the agent's posterior degree of
    belief against [q]; the group fixpoints [C_G]/[CB_G^q] are computed
    by finite iteration, which terminates because the lattice of point
    sets is finite. *)

open Pak_pps

type valuation = string -> Gstate.t -> bool
(** [valuation atom state] decides the atom at a global state.
    Unknown atoms should raise or return [false] consistently. *)

val eval : Tree.t -> valuation:valuation -> Formula.t -> Fact.t
(** Evaluate a formula to the fact (set of points) where it holds.
    Subformulas are memoized, so shared structure is evaluated once. *)

val sat : Tree.t -> valuation:valuation -> Formula.t -> run:int -> time:int -> bool
(** [(T, r, t) ⊨ ϕ]. *)

val valid : Tree.t -> valuation:valuation -> Formula.t -> bool
(** True at every point of the system. *)

val valid_initially : Tree.t -> valuation:valuation -> Formula.t -> bool
(** True at time 0 of every run. *)

val probability : Tree.t -> valuation:valuation -> Formula.t -> Pak_rational.Q.t
(** [µ_T] of the runs whose time-0 point satisfies the formula. For
    formulas whose fact is a fact about runs this is the probability of
    the formula; exposed for reporting. *)
