open Pak_rational

type report = {
  name : string;
  schema : string;
  formula : Formula.t;
  valid : bool;
}

let check tree ~valuation entries =
  List.map
    (fun (name, schema, formula) ->
      { name; schema; formula; valid = Semantics.valid tree ~valuation formula })
    entries

let knowledge_s5 tree ~valuation ~agent ~base =
  let open Formula in
  let k f = Knows (agent, f) in
  let p = base in
  let q = Not base in
  check tree ~valuation
    [ ("K (distribution)", "K(p -> q) -> Kp -> Kq",
       k (p ==> q) ==> (k p ==> k q));
      ("T (truth)", "Kp -> p", k p ==> p);
      ("4 (positive introspection)", "Kp -> KKp", k p ==> k (k p));
      ("5 (negative introspection)", "!Kp -> K!Kp", neg (k p) ==> k (neg (k p)));
      ("D (consistency)", "Kp -> !K!p", k p ==> neg (k (neg p)))
    ]

let certainty_kd45 tree ~valuation ~agent ~base =
  let open Formula in
  let b f = Believes (agent, Geq, Q.one, f) in
  let k f = Knows (agent, f) in
  let p = base in
  let q = Not base in
  check tree ~valuation
    [ ("K for certainty", "B1(p -> q) -> B1 p -> B1 q",
       b (p ==> q) ==> (b p ==> b q));
      ("D for certainty", "B1 p -> !B1 !p", b p ==> neg (b (neg p)));
      ("4 for certainty", "B1 p -> B1 B1 p", b p ==> b (b p));
      ("5 for certainty", "!B1 p -> B1 !B1 p", neg (b p) ==> b (neg (b p)));
      ("knowledge yields certainty", "Kp -> B1 p", k p ==> b p);
      ("certainty is knowledge in a pps", "B1 p -> Kp", b p ==> k p)
    ]

let graded_coherence tree ~valuation ~agent ~base =
  let open Formula in
  let b cmp num den f = Believes (agent, cmp, Q.of_ints num den, f) in
  let p = base in
  check tree ~valuation
    [ ("grade monotonicity", "B>=3/4 p -> B>=1/2 p",
       b Geq 3 4 p ==> b Geq 1 2 p);
      ("complementation", "B>=3/4 p -> B<=1/4 !p",
       b Geq 3 4 p ==> b Leq 1 4 (neg p));
      ("complement symmetry", "B=1/2 p <-> B=1/2 !p",
       Iff (b Eq 1 2 p, b Eq 1 2 (neg p)));
      ("belief self-knowledge", "B>=3/4 p -> B>=1 B>=3/4 p",
       b Geq 3 4 p ==> b Geq 1 1 (b Geq 3 4 p));
      ("belief introspection via K", "B>=3/4 p -> K B>=3/4 p",
       b Geq 3 4 p ==> Knows (agent, b Geq 3 4 p));
      ("total grades", "B>=1/2 p | B<=1/2 p",
       Or (b Geq 1 2 p, b Leq 1 2 p))
    ]

let all tree ~valuation ~agent ~base =
  knowledge_s5 tree ~valuation ~agent ~base
  @ certainty_kd45 tree ~valuation ~agent ~base
  @ graded_coherence tree ~valuation ~agent ~base

let all_valid reports = List.for_all (fun r -> r.valid) reports

let pp_report fmt r =
  Format.fprintf fmt "%-32s %-36s %s" r.name r.schema (if r.valid then "valid" else "INVALID")
