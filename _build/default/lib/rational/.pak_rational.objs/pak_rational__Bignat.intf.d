lib/rational/bignat.mli: Format
