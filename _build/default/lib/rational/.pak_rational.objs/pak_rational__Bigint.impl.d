lib/rational/bigint.ml: Bignat Format Stdlib String
