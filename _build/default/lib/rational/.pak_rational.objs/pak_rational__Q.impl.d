lib/rational/q.ml: Bigint Bignat Buffer Format List Seq Stdlib String
