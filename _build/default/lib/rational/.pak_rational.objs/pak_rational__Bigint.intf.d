lib/rational/bigint.mli: Bignat Format
