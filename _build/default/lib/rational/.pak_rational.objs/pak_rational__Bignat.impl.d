lib/rational/bignat.ml: Array Buffer Format List Printf Seq Stdlib String
