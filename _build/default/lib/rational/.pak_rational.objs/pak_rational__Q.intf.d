lib/rational/q.mli: Bigint Bignat Format
