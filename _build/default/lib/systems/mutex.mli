(** Relaxed mutual exclusion with a noisy arbiter (the paper's
    Section 1 motivation: "upon entry to the critical section, it
    should be empty with very high probability").

    Two agents contend for a critical section. At time 0 each requests
    independently with probability [p_req] (a mixed action step). An
    arbiter — part of the probabilistic environment — grants requests:
    a sole requester is always granted; when both request, with
    probability [err] the arbiter erroneously grants {e both}, and
    otherwise grants one of the two uniformly at random. At time 1, a
    granted agent enters the critical section ([enter] — deterministic
    given its local state, so Lemma 4.3(a) applies).

    The probabilistic constraint is
    [µ(ϕ_alone@enter_i | enter_i) ≥ p] with ϕ_alone = "the other agent
    is not entering". *)

open Pak_rational
open Pak_pps

val enter : string

val tree : ?p_req:Q.t -> ?err:Q.t -> unit -> Tree.t
(** Defaults: [p_req = 1/2], [err = 1/100].
    @raise Invalid_argument for non-probability parameters or
    [p_req = 0] (enter never performed). *)

val phi_alone : Tree.t -> agent:int -> Fact.t
(** "The other agent is not currently entering" for the given agent. *)

type analysis = {
  p_req : Q.t;
  err : Q.t;
  mu_alone_given_enter : Q.t;   (** µ(ϕ_alone@enter_0 | enter_0) *)
  belief_granted : Q.t;         (** agent 0's belief in ϕ_alone when entering *)
  expected_belief : Q.t;        (** = µ (Theorem 6.2) *)
  enter_deterministic : bool;   (** true: protocol enters iff granted *)
  independent : bool;           (** true by Lemma 4.3(a) *)
}

val analyze : ?p_req:Q.t -> ?err:Q.t -> unit -> analysis
