(** A toy interactive proof, after the paper's Section 1 motivation
    (references [6, 21]): soundness amplification as a probabilistic
    constraint with a threshold exponentially close to 1 — the regime
    where Section 7's remark makes PAK bite hardest.

    A statement is true with prior probability [p_true] (held by the
    prover, agent 1). The verifier (agent 0) runs [rounds] independent
    challenge rounds: in each, the environment draws a random challenge
    and the prover answers. When the statement is true the (honest)
    prover always answers correctly; when it is false the (cheating)
    prover answers correctly only with probability [cheat] per round
    (1/2 in the classic setting). After all rounds the verifier accepts
    iff every answer was correct.

    The soundness constraint is [µ(true@accept | accept) ≥ p]; its
    exact value is

    {v p_true / (p_true + (1 − p_true)·cheat^rounds), v}

    which approaches 1 exponentially in [rounds]. Correspondingly
    (Corollary 7.2 with ε² = 1 − µ), when the verifier accepts it must,
    with probability exponentially close to 1, hold a belief
    exponentially close to 1 that the statement is true — and here the
    implication is tight: the verifier's belief when accepting is
    exactly µ at its single accepting information state. *)

open Pak_rational
open Pak_pps

val verifier : int
val prover : int
val accept : string

val tree : ?p_true:Q.t -> ?cheat:Q.t -> rounds:int -> unit -> Tree.t
(** Defaults: [p_true = 1/2], [cheat = 1/2].
    @raise Invalid_argument for non-probability parameters,
    [rounds < 1], or [p_true = 0] (acceptance impossible… the verifier
    still accepts on a lucky cheater unless [cheat = 0] too; only the
    jointly degenerate case is rejected). *)

val true_fact : Tree.t -> Fact.t
(** "The statement is true" — a past-based fact about runs. *)

type analysis = {
  rounds : int;
  mu_true_given_accept : Q.t;   (** the soundness value above, exactly *)
  accept_measure : Q.t;         (** µ(R_accept) *)
  belief_at_accept : Q.t;       (** verifier's posterior at its accepting state *)
  expected_belief : Q.t;        (** = µ (Theorem 6.2) *)
  pak_eps : Q.t option;
      (** the ε of Corollary 7.2 when [1 − µ] is a square of a
          rational, i.e. ε = √(1−µ); [None] otherwise *)
  independent : bool;
}

val analyze : ?p_true:Q.t -> ?cheat:Q.t -> rounds:int -> unit -> analysis
