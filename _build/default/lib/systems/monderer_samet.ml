open Pak_rational
open Pak_pps

let flat states =
  match states with
  | [] -> invalid_arg "Monderer_samet.flat: no states"
  | (first, _) :: _ ->
    let n_agents = List.length first in
    let b = Tree.Builder.create ~n_agents in
    List.iteri
      (fun idx (locals, prob) ->
        if List.length locals <> n_agents then
          invalid_arg "Monderer_samet.flat: inconsistent number of agents";
        ignore
          (Tree.Builder.add_initial b ~prob
             (Gstate.of_labels (Printf.sprintf "w%d" idx) locals)))
      states;
    Tree.Builder.finalize b

let random_flat ~n_agents ~n_states ~label_alphabet ~seed =
  if n_states < 1 then invalid_arg "Monderer_samet.random_flat: need at least one state";
  (* Small multiplicative generator; adequate for label/weight choice. *)
  let state = ref (seed lxor 0x2545F491) in
  let next bound =
    state := (!state * 6_364_136_223_846_793 + 1442695) land max_int;
    !state mod bound
  in
  let weights = List.init n_states (fun _ -> 1 + next 9) in
  let total = Q.of_int (List.fold_left ( + ) 0 weights) in
  flat
    (List.map
       (fun w ->
         ( List.init n_agents (fun i -> Printf.sprintf "s%d_%d" i (next label_alphabet)),
           Q.div (Q.of_int w) total ))
       weights)

let expected_posterior fact ~agent =
  let t = Fact.tree fact in
  let acc = ref Q.zero in
  for run = 0 to Tree.n_runs t - 1 do
    acc :=
      Q.add !acc (Q.mul (Tree.run_measure t run) (Belief.degree fact ~agent ~run ~time:0))
  done;
  !acc

type report = {
  prior : Q.t;
  expected_posterior : Q.t;
  identity : bool;
}

let check fact ~agent =
  let t = Fact.tree fact in
  let ev = ref (Tree.empty_event t) in
  for run = 0 to Tree.n_runs t - 1 do
    if Fact.holds fact ~run ~time:0 then ev := Bitset.add !ev run
  done;
  let prior = Tree.measure t !ev in
  let expected = expected_posterior fact ~agent in
  { prior; expected_posterior = expected; identity = Q.equal prior expected }
