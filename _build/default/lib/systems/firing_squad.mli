(** The relaxed firing squad of Example 1.

    Two agents, Alice and Bob, over unreliable synchronous channels
    (each message independently lost with probability [loss], default
    0.1). Alice holds a bit [go] (1 with probability [p_go], default
    1/2). Under protocol FS:
    - round 1: if [go = 1] Alice sends two messages to Bob;
    - round 2: Bob replies 'Yes' if he received at least one message,
      'No' otherwise;
    - round 3 (time 2): Alice fires iff [go = 1]; Bob fires iff he
      received at least one of Alice's messages.

    The specification is [µ(ϕ_both @ fire_A | fire_A) ≥ 0.95] where
    [ϕ_both] = "both agents are currently firing".

    The {!Improved} variant implements the Section 8 discussion: Alice
    additionally refrains from firing when she received Bob's 'No',
    which raises the success probability from 0.99 to 990/991 =
    0.99899….

    With the default parameters the exact quantities of the paper are
    reproduced; both are exposed parametrically in [loss] and [p_go]
    for the benchmark sweeps. *)

open Pak_rational
open Pak_pps

type variant = Original | Improved

val alice : int
(** Agent index of Alice (0). *)

val bob : int
(** Agent index of Bob (1). *)

val fire : string
(** Label of the firing action (same label for both agents; actions are
    identified by (agent, label) pairs). *)

val tree : ?loss:Q.t -> ?p_go:Q.t -> variant -> Tree.t
(** Compile the FS protocol to its pps. Defaults: [loss = 1/10],
    [p_go = 1/2].
    @raise Invalid_argument if [loss] or [p_go] is not a probability,
    or if they are so degenerate that Alice never fires ([p_go = 0]),
    making [fire_A] improper. *)

val phi_both : Tree.t -> Fact.t
(** [ϕ_both]: both agents are currently firing. *)

val fire_b_fact : Tree.t -> Fact.t
(** [fire_B]: Bob is currently firing (the condition of Alice's beliefs
    discussed in the example). *)

(** Exact analysis of a compiled FS system, mirroring every number in
    Example 1 and Section 8. *)
type analysis = {
  mu_both_given_fire_a : Q.t;
      (** µ(ϕ_both@fire_A | fire_A) — 99/100 for Original, 990/991 for
          Improved, at default parameters *)
  spec_satisfied : bool;  (** ≥ 19/20 *)
  belief_heard_yes : Q.t option;
      (** β_A(fire_B) when Alice fires having heard 'Yes' (1) *)
  belief_heard_nothing : Q.t option;
      (** … having heard nothing (99/100) *)
  belief_heard_no : Q.t option;
      (** … having heard 'No' (0 for Original; [None] for Improved,
          where Alice does not fire in that state) *)
  threshold_met_measure : Q.t;
      (** µ(β_A(fire_B)@fire_A ≥ 19/20 | fire_A) — 991/1000 for
          Original *)
  expected_belief : Q.t;
      (** E(β_A(fire_B)@fire_A | fire_A) — equals
          µ(fire_B@fire_A | fire_A) by Theorem 6.2 *)
  independent : bool;
}

val analyze : ?loss:Q.t -> ?p_go:Q.t -> variant -> analysis
