(** Flat (static) systems and the Monderer–Samet 1989 result that
    Section 6.1 identifies as the action-free special case of
    Theorem 6.2.

    A flat pps consists of the root and its children only: every run is
    a single initial global state, there are no actions, and an agent's
    belief at (the only) time 0 is its posterior given its local state.
    Monderer and Samet showed that if an agent's {e expected} posterior
    degree of belief in ϕ is at least p, then the prior probability of
    ϕ is at least p. The library verifies the sharper law-of-total-
    probability identity: the expected posterior {e equals} the
    prior. *)

open Pak_rational
open Pak_pps

val flat : (string list * Q.t) list -> Tree.t
(** [flat states] builds the one-level pps whose initial states have
    the given per-agent local labels and probabilities (which must sum
    to 1). All states must agree on the number of agents.
    @raise Invalid_argument on an empty list or inconsistent arities;
    the underlying builder rejects bad probabilities. *)

val random_flat : n_agents:int -> n_states:int -> label_alphabet:int -> seed:int -> Tree.t
(** A deterministic pseudo-random flat system for property tests. *)

val expected_posterior : Fact.t -> agent:int -> Q.t
(** [E_µ(β_i(ϕ))] over all runs, at time 0. *)

type report = {
  prior : Q.t;              (** µ(ϕ) *)
  expected_posterior : Q.t; (** E(β_i(ϕ)) *)
  identity : bool;          (** the two are equal, exactly *)
}

val check : Fact.t -> agent:int -> report
(** The Monderer–Samet comparison on any tree (not only flat ones),
    evaluated at time 0 with ϕ restricted to its time-0 truth value. *)
