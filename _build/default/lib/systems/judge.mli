(** The judge example: acting only under strong belief ("beyond a
    reasonable doubt", Section 1).

    A defendant (agent 1) is guilty with probability [p_guilt]; the
    truth is fixed at time 0 and never changes. The judge (agent 0)
    observes [rounds] independent noisy evidence signals from the
    environment: a signal is {e incriminating} with probability
    [accuracy] if the defendant is guilty, and with probability
    [1 − accuracy] if innocent. After all evidence, the judge convicts
    iff at least [convict_at] signals were incriminating.

    The probabilistic constraint is [µ(guilty@convict | convict) ≥ p]:
    a convicted defendant should be guilty with high probability. The
    judge's belief when convicting is the exact posterior given the
    number of incriminating signals, so this family exercises
    Theorem 6.2 and the PAK corollary on a statistically natural
    system. *)

open Pak_rational
open Pak_pps

val judge : int
val defendant : int
val convict : string

val tree : ?p_guilt:Q.t -> ?accuracy:Q.t -> rounds:int -> convict_at:int -> unit -> Tree.t
(** Defaults: [p_guilt = 1/2], [accuracy = 9/10].
    @raise Invalid_argument for non-probability parameters,
    [rounds < 1], a [convict_at] outside [0..rounds], or parameters
    under which the judge never convicts (improper action). *)

val guilty_fact : Tree.t -> Fact.t

type analysis = {
  rounds : int;
  convict_at : int;
  mu_guilty_given_convict : Q.t;
  posterior_by_count : (int * Q.t) list;
      (** judge's posterior in guilt for each incriminating-signal
          count at which she convicts *)
  expected_belief : Q.t;   (** = µ (Theorem 6.2) *)
  independent : bool;
}

val analyze :
  ?p_guilt:Q.t -> ?accuracy:Q.t -> rounds:int -> convict_at:int -> unit -> analysis
