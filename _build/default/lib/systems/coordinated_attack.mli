(** A k-round coordinated-attack system over a lossy channel, in the
    style of Fischer–Zuck (the paper's Section 1 motivation and [20]).

    General A (agent 0) holds a bit [go] (1 with probability [p_go]).
    In each of the [rounds] communication rounds, A sends an "attack"
    message to general B (agent 1) if [go = 1]; B sends an
    acknowledgement back in every round after it has first heard from
    A. Each message is lost independently with probability [loss]. At
    time [rounds], A attacks iff [go = 1] and B attacks iff it heard
    from A.

    The probabilistic constraint of interest is
    [µ(ϕ_both@attack_A | attack_A) ≥ p] with ϕ_both = "both are
    currently attacking"; its exact value is [1 − loss^rounds]. A's
    degree of belief in ϕ_both when attacking depends on how many
    acknowledgements she received: any ack gives certainty, none gives
    a conditional probability < 1. The PAK corollary (7.2) is
    exercised against this family in the benchmarks. *)

open Pak_rational
open Pak_pps

val general_a : int
val general_b : int
val attack : string

val tree : ?loss:Q.t -> ?p_go:Q.t -> rounds:int -> unit -> Tree.t
(** Defaults: [loss = 1/10], [p_go = 1/2].
    @raise Invalid_argument for non-probability parameters, [p_go = 0]
    (attack_A never performed) or [rounds < 1]. *)

val phi_both : Tree.t -> Fact.t
val attack_b_fact : Tree.t -> Fact.t

type analysis = {
  rounds : int;
  loss : Q.t;
  mu_both_given_attack_a : Q.t;  (** 1 − loss^rounds, exactly *)
  belief_with_ack : Q.t option;  (** 1 when at least one ack arrived *)
  belief_no_ack : Q.t;           (** A's belief having heard nothing back *)
  expected_belief : Q.t;         (** = µ (Theorem 6.2) *)
  threshold_met_measure : Q.t -> Q.t;
      (** µ(β_A(ϕ)@attack_A ≥ q | attack_A) as a function of q *)
  independent : bool;
}

val analyze : ?loss:Q.t -> ?p_go:Q.t -> rounds:int -> unit -> analysis
