open Pak_rational
open Pak_pps

let i = 0
let j = 1
let alpha = "alpha"

let tree ~p ~eps =
  if not (Q.gt eps Q.zero && Q.lt eps p && Q.lt p Q.one) then
    invalid_arg "Threshold_gap.tree: need 0 < eps < p < 1";
  let b = Tree.Builder.create ~n_agents:2 in
  let s0 =
    Tree.Builder.add_initial b ~prob:(Q.one_minus p) (Gstate.of_labels "e" [ "i0"; "bit0" ])
  in
  let s1 = Tree.Builder.add_initial b ~prob:p (Gstate.of_labels "e" [ "i0"; "bit1" ]) in
  (* Round 1: j sends m_j or the revealing m'_j. *)
  let send parent ~prob ~payload ~bit =
    Tree.Builder.add_child b ~parent ~prob
      ~acts:[| "env"; "recv"; "send_" ^ payload |]
      (Gstate.of_labels "e" [ "got_" ^ payload; bit ])
  in
  let eps_over_p = Q.div eps p in
  let n_r = send s0 ~prob:Q.one ~payload:"mj" ~bit:"bit0" in
  let n_r' = send s1 ~prob:(Q.one_minus eps_over_p) ~payload:"mj" ~bit:"bit1" in
  let n_r'' = send s1 ~prob:eps_over_p ~payload:"mj'" ~bit:"bit1" in
  (* Round 2: i performs alpha unconditionally at time 1. *)
  List.iter
    (fun (parent, bit) ->
      ignore
        (Tree.Builder.add_child b ~parent ~prob:Q.one ~acts:[| "env"; alpha; "noop" |]
           (Gstate.of_labels "e" [ "done"; bit ])))
    [ (n_r, "bit0"); (n_r', "bit1"); (n_r'', "bit1") ];
  Tree.Builder.finalize b

let phi t = Fact.of_state_pred t (fun g -> Gstate.local g j = "bit1")

type analysis = {
  p : Q.t;
  eps : Q.t;
  mu : Q.t;
  pooled_belief : Q.t;
  revealing_belief : Q.t;
  threshold_met_measure : Q.t;
  expected_belief : Q.t;
  independent : bool;
}

let analyze ~p ~eps =
  let t = tree ~p ~eps in
  let phi = phi t in
  let belief label =
    Belief.degree_at_lstate phi (Tree.lkey_make ~agent:i ~time:1 ~label)
  in
  { p;
    eps;
    mu = Constr.mu_given_action phi ~agent:i ~act:alpha;
    pooled_belief = belief "got_mj";
    revealing_belief = belief "got_mj'";
    threshold_met_measure =
      Tree.cond t
        (Belief.threshold_event phi ~agent:i ~act:alpha ~cmp:`Geq p)
        ~given:(Action.runs_performing t ~agent:i ~act:alpha);
    expected_belief = Belief.expected_at_action phi ~agent:i ~act:alpha;
    independent = Independence.holds phi ~agent:i ~act:alpha
  }
