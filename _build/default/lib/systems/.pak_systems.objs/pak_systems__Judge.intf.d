lib/systems/judge.mli: Fact Pak_pps Pak_rational Q Tree
