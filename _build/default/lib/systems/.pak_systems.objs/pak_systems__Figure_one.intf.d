lib/systems/figure_one.mli: Fact Pak_pps Pak_rational Q Tree
