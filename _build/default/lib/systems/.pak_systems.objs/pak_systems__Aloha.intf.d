lib/systems/aloha.mli: Fact Pak_pps Pak_rational Q Tree
