lib/systems/coordinated_attack.mli: Fact Pak_pps Pak_rational Q Tree
