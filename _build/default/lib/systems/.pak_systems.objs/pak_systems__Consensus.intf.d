lib/systems/consensus.mli: Fact Pak_pps Pak_rational Q Tree
