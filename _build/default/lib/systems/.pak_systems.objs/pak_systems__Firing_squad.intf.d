lib/systems/firing_squad.mli: Fact Pak_pps Pak_rational Q Tree
