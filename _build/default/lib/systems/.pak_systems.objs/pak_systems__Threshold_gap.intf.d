lib/systems/threshold_gap.mli: Fact Pak_pps Pak_rational Q Tree
