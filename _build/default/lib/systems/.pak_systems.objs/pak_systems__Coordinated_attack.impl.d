lib/systems/coordinated_attack.ml: Action Array Belief Constr Dist Fact Independence List Pak_dist Pak_pps Pak_protocol Pak_rational Printf Protocol Q Tree
