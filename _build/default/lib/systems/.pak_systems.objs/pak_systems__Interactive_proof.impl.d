lib/systems/interactive_proof.ml: Action Array Belief Bigint Constr Dist Fact Gstate Independence List Pak_dist Pak_pps Pak_protocol Pak_rational Protocol Q Tree
