lib/systems/judge.ml: Action Array Belief Constr Dist Fact Gstate Independence List Pak_dist Pak_pps Pak_protocol Pak_rational Printf Protocol Q String Tree
