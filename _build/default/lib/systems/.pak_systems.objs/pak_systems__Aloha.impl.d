lib/systems/aloha.ml: Action Array Belief Constr Dist Fact Fun Gstate Independence List Pak_dist Pak_pps Pak_protocol Pak_rational Printf Protocol Q String Tree
