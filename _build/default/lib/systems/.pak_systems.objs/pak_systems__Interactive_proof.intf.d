lib/systems/interactive_proof.mli: Fact Pak_pps Pak_rational Q Tree
