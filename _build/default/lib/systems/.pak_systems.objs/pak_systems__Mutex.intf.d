lib/systems/mutex.mli: Fact Pak_pps Pak_rational Q Tree
