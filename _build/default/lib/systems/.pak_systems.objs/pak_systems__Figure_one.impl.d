lib/systems/figure_one.ml: Belief Constr Fact Gstate Independence Pak_pps Pak_rational Q Theorems Tree
