lib/systems/firing_squad.ml: Action Array Belief Constr Dist Fact Independence List Option Pak_dist Pak_pps Pak_protocol Pak_rational Printf Protocol Q Tree
