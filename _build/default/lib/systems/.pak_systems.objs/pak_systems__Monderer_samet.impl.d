lib/systems/monderer_samet.ml: Belief Bitset Fact Gstate List Pak_pps Pak_rational Printf Q Tree
