lib/systems/threshold_gap.ml: Action Belief Constr Fact Gstate Independence List Pak_pps Pak_rational Q Tree
