lib/systems/mutex.ml: Action Array Belief Constr Dist Fact Independence Pak_dist Pak_pps Pak_protocol Pak_rational Printf Protocol Q Tree
