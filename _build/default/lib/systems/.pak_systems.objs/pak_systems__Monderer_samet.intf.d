lib/systems/monderer_samet.mli: Fact Pak_pps Pak_rational Q Tree
