open Pak_rational
open Pak_dist
open Pak_pps
open Pak_protocol

let judge = 0
let defendant = 1
let convict = "convict"

type ls = J of { inc : int } | D of { guilty : bool }
type env_ls = { e_guilty : bool }
type act = Noop | Signal of bool | Convict | Acquit

let act_label = function
  | Noop -> "noop"
  | Signal true -> "sig_inc"
  | Signal false -> "sig_exc"
  | Convict -> convict
  | Acquit -> "acquit"

let spec ~p_guilt ~accuracy ~rounds ~convict_at : (env_ls, ls, act) Protocol.spec =
  { n_agents = 2;
    horizon = rounds + 1;
    init =
      List.filter
        (fun (_, p) -> not (Q.is_zero p))
        [ (({ e_guilty = true }, [| J { inc = 0 }; D { guilty = true } |]), p_guilt);
          (({ e_guilty = false }, [| J { inc = 0 }; D { guilty = false } |]), Q.one_minus p_guilt)
        ];
    env_protocol =
      (fun ~time env ->
        if time >= rounds then Dist.return Noop
        else begin
          let p_inc = if env.e_guilty then accuracy else Q.one_minus accuracy in
          Dist.coin p_inc ~yes:(Signal true) ~no:(Signal false)
        end);
    agent_protocol =
      (fun ~agent ~time ls ->
        Dist.return
          (match (agent, ls) with
           | 0, J j when time = rounds -> if j.inc >= convict_at then Convict else Acquit
           | _ -> Noop));
    transition =
      (fun ~time:_ (env, locals) env_act _ ->
        match (env_act, locals.(0)) with
        | Signal s, J j -> (env, [| J { inc = j.inc + (if s then 1 else 0) }; locals.(1) |])
        | _ -> (env, locals));
    halts = (fun ~time:_ _ -> false);
    env_label = (fun env -> if env.e_guilty then "G" else "I");
    agent_label =
      (fun ~agent ls ->
        match (agent, ls) with
        | 0, J j -> Printf.sprintf "inc%d" j.inc
        | 1, D d -> (if d.guilty then "guilty" else "innocent")
        | _ -> invalid_arg "Judge.agent_label: state/agent mismatch");
    act_label
  }

let tree ?(p_guilt = Q.half) ?(accuracy = Q.of_ints 9 10) ~rounds ~convict_at () =
  if rounds < 1 then invalid_arg "Judge.tree: rounds must be at least 1";
  if convict_at < 0 || convict_at > rounds then
    invalid_arg "Judge.tree: convict_at must lie in 0..rounds";
  if not (Q.is_probability p_guilt) then invalid_arg "Judge.tree: p_guilt not a probability";
  if not (Q.is_probability accuracy) then invalid_arg "Judge.tree: accuracy not a probability";
  let t = Protocol.compile (spec ~p_guilt ~accuracy ~rounds ~convict_at) in
  if not (Action.is_performed t ~agent:judge ~act:convict) then
    invalid_arg "Judge.tree: parameters make conviction impossible (improper action)";
  t

let guilty_fact t = Fact.of_state_pred t (fun g -> Gstate.local g defendant = "guilty")

type analysis = {
  rounds : int;
  convict_at : int;
  mu_guilty_given_convict : Q.t;
  posterior_by_count : (int * Q.t) list;
  expected_belief : Q.t;
  independent : bool;
}

let analyze ?(p_guilt = Q.half) ?(accuracy = Q.of_ints 9 10) ~rounds ~convict_at () =
  let t = tree ~p_guilt ~accuracy ~rounds ~convict_at () in
  let guilty = guilty_fact t in
  let posterior_by_count =
    Action.performing_lstates t ~agent:judge ~act:convict
    |> List.map (fun k ->
           let label = Tree.lkey_label k in
           let count = int_of_string (String.sub label 3 (String.length label - 3)) in
           (count, Belief.degree_at_lstate guilty k))
    |> List.sort compare
  in
  { rounds;
    convict_at;
    mu_guilty_given_convict = Constr.mu_given_action guilty ~agent:judge ~act:convict;
    posterior_by_count;
    expected_belief = Belief.expected_at_action guilty ~agent:judge ~act:convict;
    independent = Independence.holds guilty ~agent:judge ~act:convict
  }
