open Pak_rational
open Pak_dist
open Pak_pps
open Pak_protocol

type ls = { value : int; heard : bool }
type env_ls = unit
type act = Noop | Send | Decide of int | Coin of bool

let decide_act v = Printf.sprintf "decide%d" v

let act_label = function
  | Noop -> "noop"
  | Send -> "send"
  | Decide v -> decide_act v
  | Coin d -> if d then "coin_D" else "coin_L"

let spec ~loss ~p_one ~rounds : (env_ls, ls, act) Protocol.spec =
  let deliver = Q.one_minus loss in
  let init =
    (* independent random initial bits *)
    List.concat_map
      (fun (v0, p0) ->
        List.filter_map
          (fun (v1, p1) ->
            let p = Q.mul p0 p1 in
            if Q.is_zero p then None
            else Some (((), [| { value = v0; heard = false }; { value = v1; heard = false } |]), p))
          [ (1, p_one); (0, Q.one_minus p_one) ])
      [ (1, p_one); (0, Q.one_minus p_one) ]
  in
  { n_agents = 2;
    horizon = rounds + 1;
    init;
    env_protocol =
      (fun ~time () ->
        if time < rounds then Dist.coin deliver ~yes:(Coin true) ~no:(Coin false)
        else Dist.return Noop);
    agent_protocol =
      (fun ~agent ~time ls ->
        Dist.return
          (if time < rounds then (if agent = 0 then Send else Noop)
           else Decide ls.value));
    transition =
      (fun ~time:_ ((), locals) env_act _ ->
        match env_act with
        | Coin true ->
          ((), [| locals.(0); { value = locals.(0).value; heard = true } |])
        | _ -> ((), locals));
    halts = (fun ~time:_ _ -> false);
    env_label = (fun () -> "net");
    agent_label =
      (fun ~agent:_ ls -> Printf.sprintf "v%d_h%d" ls.value (if ls.heard then 1 else 0));
    act_label
  }

let tree ?(loss = Q.of_ints 1 10) ?(p_one = Q.half) ~rounds () =
  if rounds < 1 then invalid_arg "Consensus.tree: rounds must be at least 1";
  if not (Q.is_probability loss) then invalid_arg "Consensus.tree: loss not a probability";
  if not (Q.is_probability p_one) then invalid_arg "Consensus.tree: p_one not a probability";
  Protocol.compile (spec ~loss ~p_one ~rounds)

let agreement t =
  Fact.of_state_pred t (fun g ->
      (* labels are "v<bit>_h<flag>"; values agree iff the bit chars do *)
      (Gstate.local g 0).[1] = (Gstate.local g 1).[1])

type analysis = {
  rounds : int;
  loss : Q.t;
  mu_agree_given_decide : (int * Q.t) list;
  expected_belief : (int * Q.t) list;
  independent : bool;
}

let analyze ?(loss = Q.of_ints 1 10) ?(p_one = Q.half) ~rounds () =
  let t = tree ~loss ~p_one ~rounds () in
  let agree = agreement t in
  let per_value f =
    List.filter_map
      (fun v ->
        let act = decide_act v in
        if Action.is_proper t ~agent:0 ~act then Some (v, f act) else None)
      [ 0; 1 ]
  in
  { rounds;
    loss;
    mu_agree_given_decide = per_value (fun act -> Constr.mu_given_action agree ~agent:0 ~act);
    expected_belief = per_value (fun act -> Belief.expected_at_action agree ~agent:0 ~act);
    independent =
      List.for_all
        (fun v ->
          let act = decide_act v in
          (not (Action.is_proper t ~agent:0 ~act)) || Independence.holds agree ~agent:0 ~act)
        [ 0; 1 ]
  }
