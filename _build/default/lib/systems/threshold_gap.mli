(** The parametric construction T̂(p, ε) of Theorem 5.2 (Figure 2).

    Two agents: [j] holds a bit fixed at time 0 ([bit = 1] with
    probability [p]); [i] receives one message from [j] and then
    performs α unconditionally at time 1. When [bit = 0], j surely
    sends [m_j]; when [bit = 1], j sends [m_j] with probability
    [1 − ε/p] and a revealing message [m'_j] with probability [ε/p].

    The constraint [µ(ϕ@α | α) ≥ p] holds with equality for
    [ϕ = "bit = 1"], yet the agent's belief meets the threshold p only
    with probability ε: at the pooled state (received [m_j]) the belief
    is [(p − ε)/(1 − ε) < p], and only the measure-ε revealing run has
    belief 1. Since ε is arbitrary, no positive lower bound exists on
    the measure of runs in which the threshold must be met — the
    content of Theorem 5.2. *)

open Pak_rational
open Pak_pps

val i : int
(** The acting agent (0). *)

val j : int
(** The bit-holding agent (1). *)

val alpha : string

val tree : p:Q.t -> eps:Q.t -> Tree.t
(** @raise Invalid_argument unless [0 < ε < p < 1]. *)

val phi : Tree.t -> Fact.t
(** ["bit = 1"], a past-based fact about runs. *)

type analysis = {
  p : Q.t;
  eps : Q.t;
  mu : Q.t;                    (** µ(ϕ@α | α); equals p exactly *)
  pooled_belief : Q.t;         (** belief at the [m_j] state: (p−ε)/(1−ε) *)
  revealing_belief : Q.t;      (** belief at the [m'_j] state: 1 *)
  threshold_met_measure : Q.t; (** µ(β_i(ϕ)@α ≥ p | α); equals ε exactly *)
  expected_belief : Q.t;       (** equals p (Theorem 6.2) *)
  independent : bool;
}

val analyze : p:Q.t -> eps:Q.t -> analysis
