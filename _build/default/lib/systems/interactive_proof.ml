open Pak_rational
open Pak_dist
open Pak_pps
open Pak_protocol

let verifier = 0
let prover = 1
let accept = "accept"

type v_ls = Ok | Failed
type p_ls = Stmt_true | Stmt_false
type ls = V of v_ls | P of p_ls
type env_ls = { e_true : bool }
type act = Noop | Answer | Correct | Wrong | Accept | Reject

let act_label = function
  | Noop -> "noop"
  | Answer -> "answer"
  | Correct -> "correct"
  | Wrong -> "wrong"
  | Accept -> accept
  | Reject -> "reject"

let spec ~p_true ~cheat ~rounds : (env_ls, ls, act) Protocol.spec =
  { n_agents = 2;
    horizon = rounds + 1;
    init =
      List.filter
        (fun (_, p) -> not (Q.is_zero p))
        [ (({ e_true = true }, [| V Ok; P Stmt_true |]), p_true);
          (({ e_true = false }, [| V Ok; P Stmt_false |]), Q.one_minus p_true)
        ];
    env_protocol =
      (fun ~time env ->
        if time >= rounds then Dist.return Noop
        else if env.e_true then Dist.return Correct
        else Dist.coin cheat ~yes:Correct ~no:Wrong);
    agent_protocol =
      (fun ~agent ~time ls ->
        Dist.return
          (match (agent, ls) with
           | 0, V v when time = rounds -> if v = Ok then Accept else Reject
           | 1, P _ when time < rounds -> Answer
           | _ -> Noop));
    transition =
      (fun ~time:_ (env, locals) env_act _ ->
        match (env_act, locals.(0)) with
        | Wrong, V Ok -> (env, [| V Failed; locals.(1) |])
        | _ -> (env, locals));
    halts = (fun ~time:_ _ -> false);
    env_label = (fun env -> if env.e_true then "T" else "F");
    agent_label =
      (fun ~agent ls ->
        match (agent, ls) with
        | 0, V Ok -> "ok"
        | 0, V Failed -> "failed"
        | 1, P Stmt_true -> "true"
        | 1, P Stmt_false -> "false"
        | _ -> invalid_arg "Interactive_proof.agent_label: state/agent mismatch");
    act_label
  }

let tree ?(p_true = Q.half) ?(cheat = Q.half) ~rounds () =
  if rounds < 1 then invalid_arg "Interactive_proof.tree: rounds must be at least 1";
  if not (Q.is_probability p_true) then
    invalid_arg "Interactive_proof.tree: p_true not a probability";
  if not (Q.is_probability cheat) then
    invalid_arg "Interactive_proof.tree: cheat not a probability";
  if Q.is_zero p_true && Q.is_zero cheat then
    invalid_arg "Interactive_proof.tree: acceptance impossible (improper action)";
  Protocol.compile (spec ~p_true ~cheat ~rounds)

let true_fact t = Fact.of_state_pred t (fun g -> Gstate.local g prover = "true")

type analysis = {
  rounds : int;
  mu_true_given_accept : Q.t;
  accept_measure : Q.t;
  belief_at_accept : Q.t;
  expected_belief : Q.t;
  pak_eps : Q.t option;
  independent : bool;
}

(* Exact square root of a rational when it exists. *)
let q_sqrt q =
  let isqrt_opt bignat =
    match Pak_rational.Bignat.to_int_opt bignat with
    | None -> None
    | Some n ->
      let r = int_of_float (sqrt (float_of_int n)) in
      let candidates = [ r - 1; r; r + 1 ] in
      List.find_opt (fun c -> c >= 0 && c * c = n) candidates
  in
  if Q.sign q < 0 then None
  else
    match (isqrt_opt (Bigint.to_bignat (Q.num q)), isqrt_opt (Q.den q)) with
    | Some n, Some d -> Some (Q.of_ints n d)
    | _ -> None

let analyze ?(p_true = Q.half) ?(cheat = Q.half) ~rounds () =
  let t = tree ~p_true ~cheat ~rounds () in
  let phi = true_fact t in
  let mu = Constr.mu_given_action phi ~agent:verifier ~act:accept in
  { rounds;
    mu_true_given_accept = mu;
    accept_measure = Tree.measure t (Action.runs_performing t ~agent:verifier ~act:accept);
    belief_at_accept =
      (match Belief.min_at_action phi ~agent:verifier ~act:accept with
       | Some b -> b
       | None -> Q.one);
    expected_belief = Belief.expected_at_action phi ~agent:verifier ~act:accept;
    pak_eps = q_sqrt (Q.one_minus mu);
    independent = Independence.holds phi ~agent:verifier ~act:accept
  }
