(** A bounded randomized-agreement system over a lossy channel,
    representative of the "protocols that succeed with high
    probability" class the paper targets (e.g. [34, 19] in its related
    work).

    Two agents start with independent random bits ([p_one] each). For
    [rounds] rounds, agent 0 transmits its (fixed) value; agent 1
    adopts the value on first receipt. At time [rounds] each agent
    decides its current value (actions [decide0]/[decide1], proper by
    construction). Messages are lost independently with probability
    [loss].

    Agreement = "both agents decide the same value" — a fact about
    runs. The probabilistic constraint analyzed is
    [µ(agree@decide_v | decide_v) ≥ p] for agent 0's decision on value
    [v]; its exact value is [1 − p_other·loss^rounds]-style and is
    computed, not assumed. *)

open Pak_rational
open Pak_pps

val tree : ?loss:Q.t -> ?p_one:Q.t -> rounds:int -> unit -> Tree.t
(** Defaults: [loss = 1/10], [p_one = 1/2].
    @raise Invalid_argument for non-probability parameters or
    [rounds < 1]; degenerate [p_one] ∈ {0,1} leaves one decision value
    unused (that action is then improper — callers analyzing it will
    get {!Pak_pps.Action.Not_proper}). *)

val decide_act : int -> string
(** [decide_act v] is the label of the "decide value v" action
    (v ∈ {0,1}). *)

val agreement : Tree.t -> Fact.t
(** Both agents' current values coincide (state-based; at decision time
    this is exactly "both decide the same"). *)

type analysis = {
  rounds : int;
  loss : Q.t;
  mu_agree_given_decide : (int * Q.t) list;
      (** per decided value v of agent 0: µ(agree@decide_v | decide_v) *)
  expected_belief : (int * Q.t) list;  (** = µ per value (Theorem 6.2) *)
  independent : bool;
}

val analyze : ?loss:Q.t -> ?p_one:Q.t -> rounds:int -> unit -> analysis
