open Pak_rational
open Pak_dist
open Pak_pps
open Pak_protocol

(* An agent's local state is its own observation history, one character
   per elapsed slot: 'i' = stayed idle, 'c' = transmitted and collided.
   A successful transmission moves the agent to Done (suffix 's'). *)
type ls = Active of string | Done of string
type act = Tx of int | Wait

let tx ~slot = Printf.sprintf "tx%d" slot

let act_label = function Tx slot -> tx ~slot | Wait -> "wait"

let agent_label ~agent:_ = function
  | Active h -> "a:" ^ h
  | Done h -> "d:" ^ h

let spec ~p_tx ~n ~slots : (unit, ls, act) Protocol.spec =
  { n_agents = n;
    horizon = slots;
    init = [ (((), Array.make n (Active "")), Q.one) ];
    env_protocol = (fun ~time:_ () -> Dist.return Wait);
    agent_protocol =
      (fun ~agent:_ ~time ls ->
        match ls with
        | Active _ -> Dist.coin p_tx ~yes:(Tx time) ~no:Wait
        | Done _ -> Dist.return Wait);
    transition =
      (fun ~time ((), locals) _ agent_acts ->
        let transmitters = ref 0 in
        Array.iter (fun a -> if a = Tx time then incr transmitters) agent_acts;
        let next i ls =
          match (ls, agent_acts.(i)) with
          | Active h, Tx _ -> if !transmitters = 1 then Done (h ^ "s") else Active (h ^ "c")
          | Active h, Wait -> Active (h ^ "i")
          | (Done _ as d), _ -> d
        in
        ((), Array.mapi next locals));
    halts = (fun ~time:_ ((), locals) ->
        Array.for_all (function Done _ -> true | Active _ -> false) locals);
    env_label = (fun () -> "chan");
    agent_label;
    act_label
  }

let tree ?(p_tx = Q.half) ~n ~slots () =
  if n < 2 then invalid_arg "Aloha.tree: need at least two agents";
  if slots < 1 then invalid_arg "Aloha.tree: need at least one slot";
  if not (Q.gt p_tx Q.zero && Q.leq p_tx Q.one) then
    invalid_arg "Aloha.tree: p_tx must lie in (0,1]";
  Protocol.compile (spec ~p_tx ~n ~slots)

let phi_free t ~agent ~slot =
  let others =
    List.filter (fun j -> j <> agent) (List.init (Tree.n_agents t) Fun.id)
  in
  Fact.not_
    (Fact.disj t (List.map (fun j -> Fact.does t ~agent:j ~act:(tx ~slot)) others))

type analysis = {
  n : int;
  slots : int;
  p_tx : Q.t;
  mu_free_by_slot : (int * Q.t) list;
  belief_by_slot : (int * Q.t) list;
  throughput : Q.t;
  independent : bool;
}

let analyze ?(p_tx = Q.half) ~n ~slots () =
  let t = tree ~p_tx ~n ~slots () in
  let slots_list = List.init slots Fun.id in
  let per_slot f =
    List.filter_map
      (fun slot ->
        let act = tx ~slot in
        if Action.is_proper t ~agent:0 ~act then Some (slot, f slot act) else None)
      slots_list
  in
  let throughput =
    let acc = ref Q.zero in
    for run = 0 to Tree.n_runs t - 1 do
      let last = Tree.run_length t run - 1 in
      let state = Tree.node_state t (Tree.run_node t ~run ~time:last) in
      let done_count = ref 0 in
      for i = 0 to n - 1 do
        if String.length (Gstate.local state i) > 0 && (Gstate.local state i).[0] = 'd' then
          incr done_count
      done;
      acc := Q.add !acc (Q.mul (Tree.run_measure t run) (Q.of_ints !done_count n))
    done;
    !acc
  in
  { n;
    slots;
    p_tx;
    mu_free_by_slot =
      per_slot (fun slot act -> Constr.mu_given_action (phi_free t ~agent:0 ~slot) ~agent:0 ~act);
    belief_by_slot =
      per_slot (fun slot act ->
          match Belief.min_at_action (phi_free t ~agent:0 ~slot) ~agent:0 ~act with
          | Some b -> b
          | None -> Q.one);
    throughput;
    independent =
      List.for_all
        (fun slot ->
          let act = tx ~slot in
          (not (Action.is_proper t ~agent:0 ~act))
          || Independence.holds (phi_free t ~agent:0 ~slot) ~agent:0 ~act)
        slots_list
  }
