(** The single-agent counterexample of Figure 1 (Sections 4 and 6).

    One agent, one initial state [g0]; at time 0 the agent performs a
    mixed action step choosing [α] or [α' ≠ α], each with probability
    1/2. The resulting pps has two runs and exhibits both failures the
    paper uses it for:

    - {b Sufficiency fails} (Section 4): for [ψ = ¬does_i(α)], the
      agent's belief [β_i(ψ) = 1/2] whenever it performs α, yet
      [µ(ψ@α | α) = 0] — believing at threshold 1/2 does not yield the
      constraint, because ψ is not local-state independent of α.
    - {b The expectation identity fails} (Section 6): for
      [ϕ = does_i(α)], [µ(ϕ@α | α) = 1] but [E(β_i(ϕ)@α | α) = 1/2].

    Parametric in the mixing probability for the benchmark sweeps. *)

open Pak_rational
open Pak_pps

val agent : int
val alpha : string
val alpha' : string

val tree : ?p_alpha:Q.t -> unit -> Tree.t
(** The two-run pps; [p_alpha] (default 1/2) is the probability of
    choosing α. @raise Invalid_argument unless [0 < p_alpha < 1] (both
    runs must exist). *)

val psi : Tree.t -> Fact.t
(** [ψ = ¬does_i(α)], the Section 4 condition. *)

val phi : Tree.t -> Fact.t
(** [ϕ = does_i(α)], the Section 6 condition. *)

type analysis = {
  belief_psi_at_alpha : Q.t;      (** β_i(ψ) when performing α = 1 − p_alpha *)
  mu_psi : Q.t;                   (** µ(ψ@α | α) = 0 *)
  psi_independent : bool;         (** false *)
  mu_phi : Q.t;                   (** µ(ϕ@α | α) = 1 *)
  expected_belief_phi : Q.t;      (** E(β_i(ϕ)@α | α) = p_alpha *)
  phi_independent : bool;         (** false *)
  theorem62_vacuous : bool;       (** identity fails but hypothesis too *)
}

val analyze : ?p_alpha:Q.t -> unit -> analysis
