open Pak_rational
open Pak_dist
open Pak_pps
open Pak_protocol

let general_a = 0
let general_b = 1
let attack = "attack"

type a_ls = { go : bool; acks : int }
type b_ls = { heard : int } (* how many of A's messages arrived so far *)
type ls = A of a_ls | B of b_ls
type env_ls = { e_go : bool; e_b_heard : bool }

type act =
  | Noop
  | Send_m          (* A's per-round attack message *)
  | Send_ack        (* B's acknowledgement *)
  | Attack | Skip
  | Coins of bool option * bool option
      (* environment: delivery of (A→B message, B→A ack); None = not sent *)

let act_label = function
  | Noop -> "noop"
  | Send_m -> "send_m"
  | Send_ack -> "send_ack"
  | Attack -> attack
  | Skip -> "skip"
  | Coins (m, a) ->
    let c = function None -> '-' | Some true -> 'D' | Some false -> 'L' in
    Printf.sprintf "coins_%c%c" (c m) (c a)

let coin_opt ~deliver present =
  if present then Dist.coin deliver ~yes:(Some true) ~no:(Some false)
  else Dist.return None

let spec ~loss ~p_go ~rounds : (env_ls, ls, act) Protocol.spec =
  let deliver = Q.one_minus loss in
  { n_agents = 2;
    horizon = rounds + 1;
    init =
      List.filter
        (fun (_, p) -> not (Q.is_zero p))
        [ (({ e_go = true; e_b_heard = false }, [| A { go = true; acks = 0 }; B { heard = 0 } |]), p_go);
          ( ({ e_go = false; e_b_heard = false }, [| A { go = false; acks = 0 }; B { heard = 0 } |]),
            Q.one_minus p_go )
        ];
    env_protocol =
      (fun ~time env ->
        if time >= rounds then Dist.return (Coins (None, None))
        else
          Dist.map
            (fun (m, a) -> Coins (m, a))
            (Dist.product
               (coin_opt ~deliver env.e_go)
               (coin_opt ~deliver env.e_b_heard)));
    agent_protocol =
      (fun ~agent ~time ls ->
        Dist.return
          (match (agent, ls) with
           | 0, A a ->
             if time < rounds then (if a.go then Send_m else Noop)
             else if a.go then Attack
             else Skip
           | 1, B b ->
             if time < rounds then (if b.heard > 0 then Send_ack else Noop)
             else if b.heard > 0 then Attack
             else Skip
           | _ -> Noop));
    transition =
      (fun ~time:_ (env, locals) env_act _agent_acts ->
        let a = match locals.(0) with A a -> a | B _ -> assert false in
        let b = match locals.(1) with B b -> b | A _ -> assert false in
        match env_act with
        | Coins (m, ack) ->
          let b' = { heard = b.heard + (match m with Some true -> 1 | _ -> 0) } in
          let a' = { a with acks = a.acks + (match ack with Some true -> 1 | _ -> 0) } in
          ({ env with e_b_heard = b'.heard > 0 }, [| A a'; B b' |])
        | _ -> (env, locals));
    halts = (fun ~time:_ _ -> false);
    env_label =
      (fun env ->
        Printf.sprintf "go%d_bh%d" (if env.e_go then 1 else 0) (if env.e_b_heard then 1 else 0));
    agent_label =
      (fun ~agent ls ->
        match (agent, ls) with
        | 0, A a -> Printf.sprintf "go%d_acks%d" (if a.go then 1 else 0) a.acks
        | 1, B b -> Printf.sprintf "heard%d" b.heard
        | _ -> invalid_arg "Coordinated_attack.agent_label: state/agent mismatch");
    act_label
  }

let tree ?(loss = Q.of_ints 1 10) ?(p_go = Q.half) ~rounds () =
  if rounds < 1 then invalid_arg "Coordinated_attack.tree: rounds must be at least 1";
  if not (Q.is_probability loss) then
    invalid_arg "Coordinated_attack.tree: loss not a probability";
  if not (Q.is_probability p_go) then
    invalid_arg "Coordinated_attack.tree: p_go not a probability";
  if Q.is_zero p_go then
    invalid_arg "Coordinated_attack.tree: p_go = 0 makes attack_A improper";
  Protocol.compile (spec ~loss ~p_go ~rounds)

let attack_b_fact t = Fact.does t ~agent:general_b ~act:attack
let phi_both t = Fact.and_ (Fact.does t ~agent:general_a ~act:attack) (attack_b_fact t)

type analysis = {
  rounds : int;
  loss : Q.t;
  mu_both_given_attack_a : Q.t;
  belief_with_ack : Q.t option;
  belief_no_ack : Q.t;
  expected_belief : Q.t;
  threshold_met_measure : Q.t -> Q.t;
  independent : bool;
}

let analyze ?(loss = Q.of_ints 1 10) ?(p_go = Q.half) ~rounds () =
  let t = tree ~loss ~p_go ~rounds () in
  let both = phi_both t in
  let states = Action.performing_lstates t ~agent:general_a ~act:attack in
  let belief_for pred =
    match List.filter pred states with
    | [] -> None
    | ks ->
      (* All matching states share the same belief in this family; take
         the minimum to be conservative. *)
      Some
        (List.fold_left
           (fun acc k -> Q.min acc (Belief.degree_at_lstate both k))
           Q.one ks)
  in
  let no_ack =
    match belief_for (fun k -> Tree.lkey_label k = Printf.sprintf "go1_acks%d" 0) with
    | Some q -> q
    | None -> Q.one
  in
  let r_alpha = Action.runs_performing t ~agent:general_a ~act:attack in
  { rounds;
    loss;
    mu_both_given_attack_a = Constr.mu_given_action both ~agent:general_a ~act:attack;
    belief_with_ack = belief_for (fun k -> Tree.lkey_label k <> "go1_acks0");
    belief_no_ack = no_ack;
    expected_belief = Belief.expected_at_action both ~agent:general_a ~act:attack;
    threshold_met_measure =
      (fun q ->
        Tree.cond t
          (Belief.threshold_event both ~agent:general_a ~act:attack ~cmp:`Geq q)
          ~given:r_alpha);
    independent = Independence.holds both ~agent:general_a ~act:attack
  }
