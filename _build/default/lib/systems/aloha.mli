(** Slotted-ALOHA-style random access (the paper's reference [1] —
    symmetry breaking by randomization, a canonical source of
    probabilistic protocols).

    [n] agents each hold one packet. In every one of [slots] rounds,
    every agent still holding a packet transmits with probability
    [p_tx] (a mixed action step); a transmission succeeds — the agent
    is done — iff it was the only transmission in the slot. Agents
    observe only their own outcome (success or not); they do not learn
    who else transmitted, only that {e someone} collided with them.

    The probabilistic constraint of interest for agent [i] in slot [t]
    is [µ(ϕ_free@tx_i^t | tx_i^t) ≥ p] where ϕ_free = "no other agent
    is transmitting now". Transmission actions are tagged with their
    slot, making each proper. *)

open Pak_rational
open Pak_pps

val tx : slot:int -> string
(** The transmit action label for a slot ([tx0], [tx1], …). *)

val tree : ?p_tx:Q.t -> n:int -> slots:int -> unit -> Tree.t
(** Defaults: [p_tx = 1/2].
    @raise Invalid_argument if [n < 2], [slots < 1], or [p_tx] is not in
    (0,1] (with 0 nobody ever transmits and no action is proper). *)

val phi_free : Tree.t -> agent:int -> slot:int -> Fact.t
(** "No agent other than [agent] transmits in [slot]" (evaluated at the
    points of that slot; a fact about runs via the slot tag). *)

type analysis = {
  n : int;
  slots : int;
  p_tx : Q.t;
  mu_free_by_slot : (int * Q.t) list;
      (** per slot t: µ(ϕ_free@tx_0^t | tx_0^t) — rises with t as other
          agents drain *)
  belief_by_slot : (int * Q.t) list;
      (** agent 0's belief in ϕ_free when transmitting in slot t (equal
          across its information states within a slot in this model) *)
  throughput : Q.t;  (** expected fraction of agents done by the horizon *)
  independent : bool;
}

val analyze : ?p_tx:Q.t -> n:int -> slots:int -> unit -> analysis
