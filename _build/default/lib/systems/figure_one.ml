open Pak_rational
open Pak_pps

let agent = 0
let alpha = "alpha"
let alpha' = "alpha'"

let tree ?(p_alpha = Q.half) () =
  if not (Q.gt p_alpha Q.zero && Q.lt p_alpha Q.one) then
    invalid_arg "Figure_one.tree: p_alpha must lie strictly between 0 and 1";
  let b = Tree.Builder.create ~n_agents:1 in
  let g0 = Tree.Builder.add_initial b ~prob:Q.one (Gstate.of_labels "e0" [ "g0" ]) in
  ignore
    (Tree.Builder.add_child b ~parent:g0 ~prob:p_alpha ~acts:[| "env"; alpha |]
       (Gstate.of_labels "e1" [ "g1" ]));
  ignore
    (Tree.Builder.add_child b ~parent:g0 ~prob:(Q.one_minus p_alpha) ~acts:[| "env"; alpha' |]
       (Gstate.of_labels "e1" [ "g1" ]));
  Tree.Builder.finalize b

let psi t = Fact.not_ (Fact.does t ~agent ~act:alpha)
let phi t = Fact.does t ~agent ~act:alpha

type analysis = {
  belief_psi_at_alpha : Q.t;
  mu_psi : Q.t;
  psi_independent : bool;
  mu_phi : Q.t;
  expected_belief_phi : Q.t;
  phi_independent : bool;
  theorem62_vacuous : bool;
}

let analyze ?(p_alpha = Q.half) () =
  let t = tree ~p_alpha () in
  let psi = psi t and phi = phi t in
  let report = Theorems.expectation_identity phi ~agent ~act:alpha in
  (* α is performed in run 0 at time 0. *)
  { belief_psi_at_alpha = Belief.at_action psi ~agent ~act:alpha ~run:0;
    mu_psi = Constr.mu_given_action psi ~agent ~act:alpha;
    psi_independent = Independence.holds psi ~agent ~act:alpha;
    mu_phi = report.Theorems.mu;
    expected_belief_phi = report.Theorems.expected_belief;
    phi_independent = report.Theorems.independent;
    theorem62_vacuous = report.Theorems.respected && not report.Theorems.identity
  }
