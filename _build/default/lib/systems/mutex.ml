open Pak_rational
open Pak_dist
open Pak_pps
open Pak_protocol

let enter = "enter"

type ls = Init | Waiting of { requested : bool; granted : bool } | Done

type act =
  | Request | Idle
  | Enter | Stay
  | Arb of { both_on_err : bool; favor : int }
  | Env_noop

let act_label = function
  | Request -> "request"
  | Idle -> "idle"
  | Enter -> enter
  | Stay -> "stay"
  | Arb a -> Printf.sprintf "arb_%c%d" (if a.both_on_err then 'E' else 'n') a.favor
  | Env_noop -> "env_noop"

let agent_label ~agent:_ = function
  | Init -> "init"
  | Waiting w ->
    Printf.sprintf "req%d_grant%d" (if w.requested then 1 else 0) (if w.granted then 1 else 0)
  | Done -> "done"

let spec ~p_req ~err : (unit, ls, act) Protocol.spec =
  let arbiter =
    (* Error coin and uniform tie-break, drawn independently; only
       consulted when both agents request. *)
    Dist.bind (Dist.bernoulli err) (fun both_on_err ->
        Dist.map (fun favor -> Arb { both_on_err; favor }) (Dist.uniform [ 0; 1 ]))
  in
  { n_agents = 2;
    horizon = 2;
    init = [ (((), [| Init; Init |]), Q.one) ];
    env_protocol =
      (fun ~time _ -> if time = 0 then arbiter else Dist.return Env_noop);
    agent_protocol =
      (fun ~agent:_ ~time ls ->
        match (time, ls) with
        | 0, Init -> Dist.coin p_req ~yes:Request ~no:Idle
        | 1, Waiting w -> Dist.return (if w.granted then Enter else Stay)
        | _ -> Dist.return Stay);
    transition =
      (fun ~time (env, locals) env_act agent_acts ->
        match time with
        | 0 ->
          let req i = agent_acts.(i) = Request in
          let granted =
            match env_act with
            | Arb a ->
              (match (req 0, req 1) with
               | true, true -> if a.both_on_err then [| true; true |] else [| a.favor = 0; a.favor = 1 |]
               | r0, r1 -> [| r0; r1 |])
            | _ -> [| false; false |]
          in
          (env, Array.init 2 (fun i -> Waiting { requested = req i; granted = granted.(i) }))
        | _ -> (env, Array.map (fun _ -> Done) locals));
    halts = (fun ~time:_ _ -> false);
    env_label = (fun () -> "arb");
    agent_label;
    act_label
  }

let tree ?(p_req = Q.half) ?(err = Q.of_ints 1 100) () =
  if not (Q.is_probability p_req) then invalid_arg "Mutex.tree: p_req not a probability";
  if not (Q.is_probability err) then invalid_arg "Mutex.tree: err not a probability";
  if Q.is_zero p_req then invalid_arg "Mutex.tree: p_req = 0 makes enter improper";
  Protocol.compile (spec ~p_req ~err)

let phi_alone t ~agent = Fact.not_ (Fact.does t ~agent:(1 - agent) ~act:enter)

type analysis = {
  p_req : Q.t;
  err : Q.t;
  mu_alone_given_enter : Q.t;
  belief_granted : Q.t;
  expected_belief : Q.t;
  enter_deterministic : bool;
  independent : bool;
}

let analyze ?(p_req = Q.half) ?(err = Q.of_ints 1 100) () =
  let t = tree ~p_req ~err () in
  let phi = phi_alone t ~agent:0 in
  let granted_state = Tree.lkey_make ~agent:0 ~time:1 ~label:"req1_grant1" in
  { p_req;
    err;
    mu_alone_given_enter = Constr.mu_given_action phi ~agent:0 ~act:enter;
    belief_granted = Belief.degree_at_lstate phi granted_state;
    expected_belief = Belief.expected_at_action phi ~agent:0 ~act:enter;
    enter_deterministic = Action.is_deterministic t ~agent:0 ~act:enter;
    independent = Independence.holds phi ~agent:0 ~act:enter
  }
