open Pak_rational
open Pak_dist
open Pak_pps
open Pak_protocol

type variant = Original | Improved

let alice = 0
let bob = 1
let fire = "fire"

(* Local and environment states. Alice's state records her bit and, from
   time 2 on, what she heard back from Bob; Bob's records how many of
   Alice's two round-1 messages he received. The environment is
   omniscient (it knows go) so it only flips delivery coins for messages
   that are actually sent. *)
type heard = Nothing | Heard_yes | Heard_no
type alice_ls = { go : bool; heard : heard }
type bob_ls = { got : int }
type ls = A of alice_ls | B of bob_ls
type env_ls = { e_go : bool; bob_got : int }

type act =
  | Noop
  | Send_both          (* Alice, round 1 *)
  | Send_yes | Send_no (* Bob, round 2 *)
  | Fire | Skip        (* both, round 3 *)
  | Coins of bool * bool (* environment, round 1: delivery of m1, m2 *)
  | Coin of bool         (* environment, round 2: delivery of Bob's reply *)
  | Env_noop

let act_label = function
  | Noop -> "noop"
  | Send_both -> "send_both"
  | Send_yes -> "yes"
  | Send_no -> "no"
  | Fire -> fire
  | Skip -> "skip"
  | Coins (a, b) ->
    Printf.sprintf "coins_%c%c" (if a then 'D' else 'L') (if b then 'D' else 'L')
  | Coin a -> Printf.sprintf "coin_%c" (if a then 'D' else 'L')
  | Env_noop -> "env_noop"

let heard_label = function Nothing -> "none" | Heard_yes -> "yes" | Heard_no -> "no"

let agent_label ~agent ls =
  match (agent, ls) with
  | 0, A a -> Printf.sprintf "go%d_heard_%s" (if a.go then 1 else 0) (heard_label a.heard)
  | 1, B b -> Printf.sprintf "got%d" b.got
  | _ -> invalid_arg "Firing_squad.agent_label: state/agent mismatch"

let spec variant ~loss ~p_go : (env_ls, ls, act) Protocol.spec =
  let deliver = Q.one_minus loss in
  let coin2 =
    Dist.of_list
      [ (Coins (true, true), Q.mul deliver deliver);
        (Coins (true, false), Q.mul deliver loss);
        (Coins (false, true), Q.mul loss deliver);
        (Coins (false, false), Q.mul loss loss)
      ]
  in
  let coin1 = Dist.coin deliver ~yes:(Coin true) ~no:(Coin false) in
  { n_agents = 2;
    horizon = 3;
    init =
      List.filter
        (fun (_, p) -> not (Q.is_zero p))
        [ ( ({ e_go = true; bob_got = 0 }, [| A { go = true; heard = Nothing }; B { got = 0 } |]),
            p_go );
          ( ({ e_go = false; bob_got = 0 }, [| A { go = false; heard = Nothing }; B { got = 0 } |]),
            Q.one_minus p_go )
        ];
    env_protocol =
      (fun ~time env ->
        match time with
        | 0 -> if env.e_go then coin2 else Dist.return Env_noop
        | 1 -> coin1 (* Bob always replies *)
        | _ -> Dist.return Env_noop);
    agent_protocol =
      (fun ~agent ~time ls ->
        Dist.return
          (match (agent, time, ls) with
           | 0, 0, A a -> if a.go then Send_both else Noop
           | 0, 2, A a ->
             let fires =
               match variant with
               | Original -> a.go
               | Improved -> a.go && a.heard <> Heard_no
             in
             if fires then Fire else Skip
           | 1, 1, B b -> if b.got >= 1 then Send_yes else Send_no
           | 1, 2, B b -> if b.got >= 1 then Fire else Skip
           | _ -> Noop));
    transition =
      (fun ~time (env, locals) env_act agent_acts ->
        let a = match locals.(0) with A a -> a | B _ -> assert false in
        let b = match locals.(1) with B b -> b | A _ -> assert false in
        match time with
        | 0 ->
          let got =
            match (agent_acts.(0), env_act) with
            | Send_both, Coins (d1, d2) -> (if d1 then 1 else 0) + if d2 then 1 else 0
            | _ -> 0
          in
          ({ env with bob_got = got }, [| A a; B { got } |])
        | 1 ->
          let heard =
            match (agent_acts.(1), env_act) with
            | Send_yes, Coin true -> Heard_yes
            | Send_no, Coin true -> Heard_no
            | _ -> Nothing
          in
          (env, [| A { a with heard }; B b |])
        | _ -> (env, locals));
    halts = (fun ~time:_ _ -> false);
    env_label = (fun env -> Printf.sprintf "go%d_bgot%d" (if env.e_go then 1 else 0) env.bob_got);
    agent_label;
    act_label
  }

let tree ?(loss = Q.of_ints 1 10) ?(p_go = Q.half) variant =
  if not (Q.is_probability loss) then invalid_arg "Firing_squad.tree: loss not a probability";
  if not (Q.is_probability p_go) then invalid_arg "Firing_squad.tree: p_go not a probability";
  if Q.is_zero p_go then
    invalid_arg "Firing_squad.tree: p_go = 0 makes fire_A improper (never performed)";
  Protocol.compile (spec variant ~loss ~p_go)

let fire_b_fact t = Fact.does t ~agent:bob ~act:fire
let phi_both t = Fact.and_ (Fact.does t ~agent:alice ~act:fire) (fire_b_fact t)

type analysis = {
  mu_both_given_fire_a : Q.t;
  spec_satisfied : bool;
  belief_heard_yes : Q.t option;
  belief_heard_nothing : Q.t option;
  belief_heard_no : Q.t option;
  threshold_met_measure : Q.t;
  expected_belief : Q.t;
  independent : bool;
}

let analyze ?(loss = Q.of_ints 1 10) ?(p_go = Q.half) variant =
  let t = tree ~loss ~p_go variant in
  let both = phi_both t in
  let fb = fire_b_fact t in
  let firing_states = Action.performing_lstates t ~agent:alice ~act:fire in
  let belief_at heard =
    List.find_opt (fun k -> Tree.lkey_label k = Printf.sprintf "go1_heard_%s" heard) firing_states
    |> Option.map (fun k -> Belief.degree_at_lstate fb k)
  in
  let threshold = Q.of_ints 19 20 in
  let r_alpha = Action.runs_performing t ~agent:alice ~act:fire in
  let mu = Constr.mu_given_action both ~agent:alice ~act:fire in
  { mu_both_given_fire_a = mu;
    spec_satisfied = Q.geq mu threshold;
    belief_heard_yes = belief_at "yes";
    belief_heard_nothing = belief_at "none";
    belief_heard_no = belief_at "no";
    threshold_met_measure =
      Tree.cond t
        (Belief.threshold_event fb ~agent:alice ~act:fire ~cmp:`Geq threshold)
        ~given:r_alpha;
    expected_belief = Belief.expected_at_action fb ~agent:alice ~act:fire;
    independent = Independence.holds both ~agent:alice ~act:fire
  }
