exception Not_proper of string

let occurrences tree ~agent ~act =
  Tree.fold_points tree ~init:[] ~f:(fun acc ~run ~time ->
      match Tree.action_at tree ~agent ~run ~time with
      | Some a when a = act -> (run, time) :: acc
      | Some _ | None -> acc)
  |> List.rev

let runs_performing tree ~agent ~act =
  List.fold_left
    (fun ev (run, _) -> Bitset.add ev run)
    (Tree.empty_event tree)
    (occurrences tree ~agent ~act)

let count_in_run tree ~agent ~act ~run =
  let n = ref 0 in
  for time = 0 to Tree.run_length tree run - 1 do
    match Tree.action_at tree ~agent ~run ~time with
    | Some a when a = act -> incr n
    | Some _ | None -> ()
  done;
  !n

let time_performed tree ~agent ~act ~run =
  let len = Tree.run_length tree run in
  let rec go time =
    if time >= len then None
    else
      match Tree.action_at tree ~agent ~run ~time with
      | Some a when a = act -> Some time
      | Some _ | None -> go (time + 1)
  in
  go 0

let is_performed tree ~agent ~act = occurrences tree ~agent ~act <> []

let is_proper tree ~agent ~act =
  is_performed tree ~agent ~act
  && (let ok = ref true in
      for run = 0 to Tree.n_runs tree - 1 do
        if count_in_run tree ~agent ~act ~run > 1 then ok := false
      done;
      !ok)

let check_proper tree ~agent ~act =
  if not (is_proper tree ~agent ~act) then
    raise (Not_proper (Printf.sprintf "agent %d, action %s" agent act))

let is_deterministic tree ~agent ~act =
  List.for_all
    (fun key ->
      let time = Tree.lkey_time key in
      let occ = Tree.lstate_runs tree key in
      let performs run =
        match Tree.action_at tree ~agent ~run ~time with
        | Some a -> a = act
        | None -> false
      in
      (* All runs through this local state must agree. *)
      match Bitset.to_list occ with
      | [] -> true
      | first :: rest ->
        let v = performs first in
        List.for_all (fun r -> performs r = v) rest)
    (Tree.lstates tree ~agent)

let performing_lstates tree ~agent ~act =
  occurrences tree ~agent ~act
  |> List.map (fun (run, time) -> Tree.lkey tree ~agent ~run ~time)
  |> List.sort_uniq compare

let performed_at_lstate tree ~agent ~act key =
  if Tree.lkey_agent key <> agent then
    invalid_arg "Action.performed_at_lstate: local state belongs to another agent";
  let time = Tree.lkey_time key in
  Bitset.filter
    (fun run ->
      match Tree.action_at tree ~agent ~run ~time with
      | Some a -> a = act
      | None -> false)
    (Tree.lstate_runs tree key)
