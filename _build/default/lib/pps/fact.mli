(** Facts (events over points) of a purely probabilistic system.

    A fact over a pps [T] is a set of points of [T] — the points at
    which the fact is true (paper, Section 2.3). Facts are materialized
    as truth tables over points at construction time, so all later
    queries are table lookups. A fact is tied to the tree it was built
    from; combining facts from different trees raises.

    The [@]-operators turn facts into {e events} (sets of runs):
    [at_lstate] is the paper's [ϕ@ℓ_i] and [at_action] is [ϕ@α]. *)

open Pak_rational

type t

(** {1 Constructors} *)

val of_pred : Tree.t -> (run:int -> time:int -> bool) -> t
(** Most general constructor: an arbitrary point predicate. *)

val of_state_pred : Tree.t -> (Gstate.t -> bool) -> t
(** A fact about the current global state ("the critical section is
    empty"). Such facts are always past-based. *)

val of_run_pred : Tree.t -> (int -> bool) -> t
(** A fact about runs ("all agents decide the same value"): true at
    every point of a run or at none. *)

val tt : Tree.t -> t
val ff : Tree.t -> t

val does : Tree.t -> agent:int -> act:string -> t
(** [does_i(α)]: the agent performs the action at the current point. *)

val does_env : Tree.t -> act:string -> t

val local_label_is : Tree.t -> agent:int -> label:string -> t
(** The agent's current local-state label equals [label]. *)

(** {1 Connectives} *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t
val iff : t -> t -> t
val conj : Tree.t -> t list -> t
val disj : Tree.t -> t list -> t

(** {1 Temporal operators (within a run)} *)

val eventually : t -> t
(** "ϕ holds at some point of the current run" — a fact about runs. *)

val globally : t -> t
(** "ϕ holds at every point of the current run" — a fact about runs. *)

val once : t -> t
(** "ϕ held at some point at or before now" (past diamond). *)

val historically : t -> t
(** "ϕ has held at every point up to now" (past box). *)

val next : t -> t
(** "ϕ holds at the next point"; false at a run's final point. *)

val at_time : Tree.t -> int -> t -> t
(** [at_time tree k ϕ]: "ϕ holds at time [k] of the current run" — a
    fact about runs (false in runs shorter than [k+1]). *)

(** {1 Queries} *)

val tree : t -> Tree.t
val holds : t -> run:int -> time:int -> bool

val is_about_runs : t -> bool
(** Same truth value at every point of each run (Section 2.3). *)

val is_past_based : t -> bool
(** Truth at [(r,t)] depends only on the prefix of [r] up to [t]
    (Section 4) — equivalently, constant across the runs through each
    node. Past-based facts are local-state independent of every proper
    action (Lemma 4.3(b)). *)

val event_of_run_fact : t -> Bitset.t
(** The set of runs satisfying a fact about runs.
    @raise Invalid_argument if the fact is not about runs. *)

(** {1 The [@]-operators} *)

val at_lstate : t -> Tree.lkey -> Bitset.t
(** [ϕ@ℓ]: the event that the local state occurs in the run and ϕ holds
    at the (unique, by synchrony) point where it does. *)

val and_action_at_lstate : t -> agent:int -> act:string -> Tree.lkey -> Bitset.t
(** [[ϕ∧α]@ℓ]: ℓ occurs, ϕ holds there, and the agent performs the
    action there (the conjunction used by Definition 4.1). *)

val at_action : t -> agent:int -> act:string -> Bitset.t
(** [ϕ@α]: the action is performed in the run and ϕ holds at the unique
    point where it is. Requires a proper action.
    @raise Action.Not_proper otherwise. *)

(** {1 Measure shortcuts} *)

val prob : t -> Bitset.t -> Q.t
(** [prob fact ev] is [µ_T(ev)] on the fact's tree — convenience for
    report code. *)

val pp : Format.formatter -> t -> unit
(** Prints the fact as its set of satisfying points. *)
