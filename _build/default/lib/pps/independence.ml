open Pak_rational

type failure = {
  lstate : Tree.lkey;
  belief : Q.t;
  act_prob : Q.t;
  joint : Q.t;
}

let failures fact ~agent ~act =
  let tree = Fact.tree fact in
  List.filter_map
    (fun key ->
      let given = Tree.lstate_runs tree key in
      let belief = Tree.cond tree (Fact.at_lstate fact key) ~given in
      let act_prob =
        Tree.cond tree (Action.performed_at_lstate tree ~agent ~act key) ~given
      in
      let joint =
        Tree.cond tree (Fact.and_action_at_lstate fact ~agent ~act key) ~given
      in
      if Q.equal (Q.mul belief act_prob) joint then None
      else Some { lstate = key; belief; act_prob; joint })
    (Tree.lstates tree ~agent)

let holds fact ~agent ~act = failures fact ~agent ~act = []

let pp_failure fmt f =
  Format.fprintf fmt "@[at %a: µ(ϕ@@ℓ|ℓ)=%a · µ(α@@ℓ|ℓ)=%a ≠ µ([ϕ∧α]@@ℓ|ℓ)=%a@]"
    Tree.pp_lkey f.lstate Q.pp f.belief Q.pp f.act_prob Q.pp f.joint
