(** Textual serialization of pps trees.

    A tree serializes to a small s-expression document:

    {v
    (pps (agents 2)
      (node (parent -1) (prob 1/2) (acts) (env "e") (locals "a" "b"))
      (node (parent 0) (prob 9/10) (acts "env" "x" "y") (env "e") (locals "a" "c")))
    v}

    Nodes appear in id order (so parents always precede children), with
    [parent -1] marking initial states. Labels are quoted strings with
    ["\\"]-escapes for quotes and backslashes; probabilities are exact
    rationals. Parsing rebuilds the tree through {!Tree.Builder}, so
    every structural invariant is re-validated on load; a parsed tree
    is observationally identical to the original (same runs, measures,
    labels, actions — checked in the test suite). *)

val to_string : Tree.t -> string

exception Parse_error of string

val of_string : string -> Tree.t
(** @raise Parse_error on malformed documents.
    @raise Invalid_argument when the document is well-formed but
    violates a tree invariant (bad probabilities, duplicate joint
    actions, …) — the same errors {!Tree.Builder} raises. *)
