open Pak_rational

type restriction = {
  kept : Tree.lkey list;
  dropped : Tree.lkey list;
  original_mu : Q.t;
  restricted_mu : Q.t option;
  original_action_measure : Q.t;
  restricted_action_measure : Q.t;
}

let restrict fact ~agent ~act ~min_belief =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  let states = Action.performing_lstates tree ~agent ~act in
  let kept, dropped =
    List.partition
      (fun key -> Q.geq (Belief.degree_at_lstate fact key) min_belief)
      states
  in
  let event_at keys =
    List.fold_left
      (fun ev key -> Bitset.union ev (Action.performed_at_lstate tree ~agent ~act key))
      (Tree.empty_event tree) keys
  in
  let kept_event = event_at kept in
  let kept_measure = Tree.measure tree kept_event in
  let phi_at_alpha = Fact.at_action fact ~agent ~act in
  { kept;
    dropped;
    original_mu = Constr.mu_given_action fact ~agent ~act;
    restricted_mu =
      (if Q.is_zero kept_measure then None
       else Some (Tree.cond tree phi_at_alpha ~given:kept_event));
    original_action_measure =
      Tree.measure tree (Action.runs_performing tree ~agent ~act);
    restricted_action_measure = kept_measure
  }

let best fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  List.fold_left
    (fun acc key -> Q.max acc (Belief.degree_at_lstate fact key))
    Q.zero
    (Action.performing_lstates tree ~agent ~act)

let frontier fact ~agent ~act =
  let tree = Fact.tree fact in
  Action.check_proper tree ~agent ~act;
  let levels =
    Action.performing_lstates tree ~agent ~act
    |> List.map (fun key -> Belief.degree_at_lstate fact key)
    |> List.sort_uniq Q.compare
  in
  List.filter_map
    (fun level ->
      let r = restrict fact ~agent ~act ~min_belief:level in
      Option.map (fun mu -> (level, mu, r.restricted_action_measure)) r.restricted_mu)
    levels

let pp_restriction fmt r =
  let pp_keys fmt keys =
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
      Tree.pp_lkey fmt keys
  in
  Format.fprintf fmt
    "@[<v>restriction: kept [@[%a@]], dropped [@[%a@]]@ µ: %a -> %s@ µ(action): %a -> %a@]"
    pp_keys r.kept pp_keys r.dropped Q.pp r.original_mu
    (match r.restricted_mu with Some m -> Q.to_string m | None -> "(never acts)")
    Q.pp r.original_action_measure Q.pp r.restricted_action_measure
