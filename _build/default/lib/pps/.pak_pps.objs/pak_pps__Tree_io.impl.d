lib/pps/tree_io.ml: Array Buffer Gstate Hashtbl List Pak_rational Printf Q String Tree
