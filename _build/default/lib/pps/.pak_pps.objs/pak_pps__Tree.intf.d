lib/pps/tree.mli: Bitset Format Gstate Pak_rational Q
