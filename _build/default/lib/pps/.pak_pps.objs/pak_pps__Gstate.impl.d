lib/pps/gstate.ml: Array Format Printf Stdlib String
