lib/pps/simulate.mli: Bitset Pak_rational Q Tree
