lib/pps/policy.ml: Action Belief Bitset Constr Fact Format List Option Pak_rational Q Tree
