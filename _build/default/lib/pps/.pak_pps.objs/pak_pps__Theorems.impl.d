lib/pps/theorems.ml: Action Belief Constr Fact Format Independence List Pak_rational Printf Q Tree
