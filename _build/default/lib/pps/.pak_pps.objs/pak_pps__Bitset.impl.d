lib/pps/bitset.ml: Array Format List
