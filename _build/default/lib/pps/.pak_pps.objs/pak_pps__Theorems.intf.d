lib/pps/theorems.mli: Fact Format Pak_rational Q
