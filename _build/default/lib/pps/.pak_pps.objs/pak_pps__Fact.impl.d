lib/pps/fact.ml: Action Array Bitset Format Fun Gstate List Tree
