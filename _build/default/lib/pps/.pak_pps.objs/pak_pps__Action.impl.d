lib/pps/action.ml: Bitset List Printf Tree
