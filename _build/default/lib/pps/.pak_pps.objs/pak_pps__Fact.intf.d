lib/pps/fact.mli: Bitset Format Gstate Pak_rational Q Tree
