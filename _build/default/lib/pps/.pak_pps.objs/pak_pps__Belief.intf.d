lib/pps/belief.mli: Bitset Fact Pak_rational Q Tree
