lib/pps/reference.ml: Action Fact Gstate List Pak_rational Printf Q Tree
