lib/pps/gen.mli: Fact Tree
