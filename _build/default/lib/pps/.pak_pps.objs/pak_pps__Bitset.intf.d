lib/pps/bitset.mli: Format
