lib/pps/jeffrey.mli: Bitset Pak_rational Q Tree
