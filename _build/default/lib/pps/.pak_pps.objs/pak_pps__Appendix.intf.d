lib/pps/appendix.mli: Fact Format Pak_rational Q Tree
