lib/pps/gstate.mli: Format
