lib/pps/independence.ml: Action Fact Format List Pak_rational Q Tree
