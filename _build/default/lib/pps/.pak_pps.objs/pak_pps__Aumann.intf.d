lib/pps/aumann.mli: Fact Pak_rational Q
