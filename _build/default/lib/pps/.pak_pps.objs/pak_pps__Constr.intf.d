lib/pps/constr.mli: Fact Format Pak_rational Q
