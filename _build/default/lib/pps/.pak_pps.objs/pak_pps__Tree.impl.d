lib/pps/tree.ml: Array Bitset Buffer Format Gstate Hashtbl List Pak_rational Printf Q String
