lib/pps/gen.ml: Action Array Fact Gstate Hashtbl List Pak_rational Printf Q Tree
