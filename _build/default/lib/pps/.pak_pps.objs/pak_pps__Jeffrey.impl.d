lib/pps/jeffrey.ml: Action Bitset List Pak_rational Q Tree
