lib/pps/belief.ml: Action Bitset Fact List Pak_rational Q Tree
