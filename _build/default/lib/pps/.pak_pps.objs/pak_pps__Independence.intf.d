lib/pps/independence.mli: Fact Format Pak_rational Q Tree
