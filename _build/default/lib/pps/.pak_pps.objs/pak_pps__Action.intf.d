lib/pps/action.mli: Bitset Tree
