lib/pps/aumann.ml: Array Belief Bitset Fact Fun Hashtbl List Option Pak_rational Q Tree
