lib/pps/kripke.mli: Fact Pak_rational Q Tree
