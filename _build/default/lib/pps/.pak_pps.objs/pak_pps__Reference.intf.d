lib/pps/reference.mli: Fact Pak_rational Q Tree
