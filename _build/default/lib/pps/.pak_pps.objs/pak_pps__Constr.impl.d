lib/pps/constr.ml: Action Fact Format Independence Pak_rational Q Tree
