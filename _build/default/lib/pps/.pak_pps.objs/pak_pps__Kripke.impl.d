lib/pps/kripke.ml: Array Buffer Fact Hashtbl List Pak_rational Printf Q Tree
