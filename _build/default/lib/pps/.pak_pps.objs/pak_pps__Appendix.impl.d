lib/pps/appendix.ml: Action Belief Bitset Fact Format Independence List Pak_rational Q Tree
