lib/pps/simulate.ml: Array Bitset Hashtbl List Pak_rational Q Tree
