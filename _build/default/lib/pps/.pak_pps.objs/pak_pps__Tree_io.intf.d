lib/pps/tree_io.mli: Tree
