lib/pps/policy.mli: Fact Format Pak_rational Q Tree
